file(REMOVE_RECURSE
  "CMakeFiles/conair_frontend.dir/codegen.cpp.o"
  "CMakeFiles/conair_frontend.dir/codegen.cpp.o.d"
  "CMakeFiles/conair_frontend.dir/compile.cpp.o"
  "CMakeFiles/conair_frontend.dir/compile.cpp.o.d"
  "CMakeFiles/conair_frontend.dir/lexer.cpp.o"
  "CMakeFiles/conair_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/conair_frontend.dir/parser.cpp.o"
  "CMakeFiles/conair_frontend.dir/parser.cpp.o.d"
  "libconair_frontend.a"
  "libconair_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conair_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
