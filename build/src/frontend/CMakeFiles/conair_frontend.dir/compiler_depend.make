# Empty compiler generated dependencies file for conair_frontend.
# This may be replaced when dependencies are built.
