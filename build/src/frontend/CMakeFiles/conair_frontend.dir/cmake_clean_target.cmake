file(REMOVE_RECURSE
  "libconair_frontend.a"
)
