# Empty dependencies file for conair_baselines.
# This may be replaced when dependencies are built.
