file(REMOVE_RECURSE
  "CMakeFiles/conair_baselines.dir/baselines.cpp.o"
  "CMakeFiles/conair_baselines.dir/baselines.cpp.o.d"
  "libconair_baselines.a"
  "libconair_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conair_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
