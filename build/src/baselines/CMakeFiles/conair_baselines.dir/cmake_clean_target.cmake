file(REMOVE_RECURSE
  "libconair_baselines.a"
)
