file(REMOVE_RECURSE
  "CMakeFiles/conair_vm.dir/interp.cpp.o"
  "CMakeFiles/conair_vm.dir/interp.cpp.o.d"
  "CMakeFiles/conair_vm.dir/regmap.cpp.o"
  "CMakeFiles/conair_vm.dir/regmap.cpp.o.d"
  "libconair_vm.a"
  "libconair_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conair_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
