
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/interp.cpp" "src/vm/CMakeFiles/conair_vm.dir/interp.cpp.o" "gcc" "src/vm/CMakeFiles/conair_vm.dir/interp.cpp.o.d"
  "/root/repo/src/vm/regmap.cpp" "src/vm/CMakeFiles/conair_vm.dir/regmap.cpp.o" "gcc" "src/vm/CMakeFiles/conair_vm.dir/regmap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/conair_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/conair_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
