# Empty dependencies file for conair_vm.
# This may be replaced when dependencies are built.
