file(REMOVE_RECURSE
  "libconair_vm.a"
)
