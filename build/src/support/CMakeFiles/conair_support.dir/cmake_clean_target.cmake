file(REMOVE_RECURSE
  "libconair_support.a"
)
