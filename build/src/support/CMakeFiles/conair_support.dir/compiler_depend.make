# Empty compiler generated dependencies file for conair_support.
# This may be replaced when dependencies are built.
