file(REMOVE_RECURSE
  "CMakeFiles/conair_support.dir/diag.cpp.o"
  "CMakeFiles/conair_support.dir/diag.cpp.o.d"
  "CMakeFiles/conair_support.dir/str.cpp.o"
  "CMakeFiles/conair_support.dir/str.cpp.o.d"
  "libconair_support.a"
  "libconair_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conair_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
