file(REMOVE_RECURSE
  "libconair_analysis.a"
)
