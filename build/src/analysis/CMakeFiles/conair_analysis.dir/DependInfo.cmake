
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/callgraph.cpp" "src/analysis/CMakeFiles/conair_analysis.dir/callgraph.cpp.o" "gcc" "src/analysis/CMakeFiles/conair_analysis.dir/callgraph.cpp.o.d"
  "/root/repo/src/analysis/cfg_utils.cpp" "src/analysis/CMakeFiles/conair_analysis.dir/cfg_utils.cpp.o" "gcc" "src/analysis/CMakeFiles/conair_analysis.dir/cfg_utils.cpp.o.d"
  "/root/repo/src/analysis/dominators.cpp" "src/analysis/CMakeFiles/conair_analysis.dir/dominators.cpp.o" "gcc" "src/analysis/CMakeFiles/conair_analysis.dir/dominators.cpp.o.d"
  "/root/repo/src/analysis/mem2reg.cpp" "src/analysis/CMakeFiles/conair_analysis.dir/mem2reg.cpp.o" "gcc" "src/analysis/CMakeFiles/conair_analysis.dir/mem2reg.cpp.o.d"
  "/root/repo/src/analysis/memory_class.cpp" "src/analysis/CMakeFiles/conair_analysis.dir/memory_class.cpp.o" "gcc" "src/analysis/CMakeFiles/conair_analysis.dir/memory_class.cpp.o.d"
  "/root/repo/src/analysis/slicing.cpp" "src/analysis/CMakeFiles/conair_analysis.dir/slicing.cpp.o" "gcc" "src/analysis/CMakeFiles/conair_analysis.dir/slicing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/conair_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/conair_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
