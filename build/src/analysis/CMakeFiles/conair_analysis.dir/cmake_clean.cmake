file(REMOVE_RECURSE
  "CMakeFiles/conair_analysis.dir/callgraph.cpp.o"
  "CMakeFiles/conair_analysis.dir/callgraph.cpp.o.d"
  "CMakeFiles/conair_analysis.dir/cfg_utils.cpp.o"
  "CMakeFiles/conair_analysis.dir/cfg_utils.cpp.o.d"
  "CMakeFiles/conair_analysis.dir/dominators.cpp.o"
  "CMakeFiles/conair_analysis.dir/dominators.cpp.o.d"
  "CMakeFiles/conair_analysis.dir/mem2reg.cpp.o"
  "CMakeFiles/conair_analysis.dir/mem2reg.cpp.o.d"
  "CMakeFiles/conair_analysis.dir/memory_class.cpp.o"
  "CMakeFiles/conair_analysis.dir/memory_class.cpp.o.d"
  "CMakeFiles/conair_analysis.dir/slicing.cpp.o"
  "CMakeFiles/conair_analysis.dir/slicing.cpp.o.d"
  "libconair_analysis.a"
  "libconair_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conair_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
