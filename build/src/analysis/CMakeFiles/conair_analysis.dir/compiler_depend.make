# Empty compiler generated dependencies file for conair_analysis.
# This may be replaced when dependencies are built.
