# Empty compiler generated dependencies file for conair_apps.
# This may be replaced when dependencies are built.
