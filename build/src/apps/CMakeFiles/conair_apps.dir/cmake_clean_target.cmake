file(REMOVE_RECURSE
  "libconair_apps.a"
)
