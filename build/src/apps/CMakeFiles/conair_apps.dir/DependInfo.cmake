
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/fft.cpp" "src/apps/CMakeFiles/conair_apps.dir/fft.cpp.o" "gcc" "src/apps/CMakeFiles/conair_apps.dir/fft.cpp.o.d"
  "/root/repo/src/apps/harness.cpp" "src/apps/CMakeFiles/conair_apps.dir/harness.cpp.o" "gcc" "src/apps/CMakeFiles/conair_apps.dir/harness.cpp.o.d"
  "/root/repo/src/apps/hawknl.cpp" "src/apps/CMakeFiles/conair_apps.dir/hawknl.cpp.o" "gcc" "src/apps/CMakeFiles/conair_apps.dir/hawknl.cpp.o.d"
  "/root/repo/src/apps/httrack.cpp" "src/apps/CMakeFiles/conair_apps.dir/httrack.cpp.o" "gcc" "src/apps/CMakeFiles/conair_apps.dir/httrack.cpp.o.d"
  "/root/repo/src/apps/mozilla_js.cpp" "src/apps/CMakeFiles/conair_apps.dir/mozilla_js.cpp.o" "gcc" "src/apps/CMakeFiles/conair_apps.dir/mozilla_js.cpp.o.d"
  "/root/repo/src/apps/mozilla_xp.cpp" "src/apps/CMakeFiles/conair_apps.dir/mozilla_xp.cpp.o" "gcc" "src/apps/CMakeFiles/conair_apps.dir/mozilla_xp.cpp.o.d"
  "/root/repo/src/apps/mysql1.cpp" "src/apps/CMakeFiles/conair_apps.dir/mysql1.cpp.o" "gcc" "src/apps/CMakeFiles/conair_apps.dir/mysql1.cpp.o.d"
  "/root/repo/src/apps/mysql2.cpp" "src/apps/CMakeFiles/conair_apps.dir/mysql2.cpp.o" "gcc" "src/apps/CMakeFiles/conair_apps.dir/mysql2.cpp.o.d"
  "/root/repo/src/apps/patterns.cpp" "src/apps/CMakeFiles/conair_apps.dir/patterns.cpp.o" "gcc" "src/apps/CMakeFiles/conair_apps.dir/patterns.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/conair_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/conair_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/sqlite.cpp" "src/apps/CMakeFiles/conair_apps.dir/sqlite.cpp.o" "gcc" "src/apps/CMakeFiles/conair_apps.dir/sqlite.cpp.o.d"
  "/root/repo/src/apps/transmission.cpp" "src/apps/CMakeFiles/conair_apps.dir/transmission.cpp.o" "gcc" "src/apps/CMakeFiles/conair_apps.dir/transmission.cpp.o.d"
  "/root/repo/src/apps/zsnes.cpp" "src/apps/CMakeFiles/conair_apps.dir/zsnes.cpp.o" "gcc" "src/apps/CMakeFiles/conair_apps.dir/zsnes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/conair/CMakeFiles/conair_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/conair_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/conair_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/conair_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/conair_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/conair_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
