file(REMOVE_RECURSE
  "CMakeFiles/conair_apps.dir/fft.cpp.o"
  "CMakeFiles/conair_apps.dir/fft.cpp.o.d"
  "CMakeFiles/conair_apps.dir/harness.cpp.o"
  "CMakeFiles/conair_apps.dir/harness.cpp.o.d"
  "CMakeFiles/conair_apps.dir/hawknl.cpp.o"
  "CMakeFiles/conair_apps.dir/hawknl.cpp.o.d"
  "CMakeFiles/conair_apps.dir/httrack.cpp.o"
  "CMakeFiles/conair_apps.dir/httrack.cpp.o.d"
  "CMakeFiles/conair_apps.dir/mozilla_js.cpp.o"
  "CMakeFiles/conair_apps.dir/mozilla_js.cpp.o.d"
  "CMakeFiles/conair_apps.dir/mozilla_xp.cpp.o"
  "CMakeFiles/conair_apps.dir/mozilla_xp.cpp.o.d"
  "CMakeFiles/conair_apps.dir/mysql1.cpp.o"
  "CMakeFiles/conair_apps.dir/mysql1.cpp.o.d"
  "CMakeFiles/conair_apps.dir/mysql2.cpp.o"
  "CMakeFiles/conair_apps.dir/mysql2.cpp.o.d"
  "CMakeFiles/conair_apps.dir/patterns.cpp.o"
  "CMakeFiles/conair_apps.dir/patterns.cpp.o.d"
  "CMakeFiles/conair_apps.dir/registry.cpp.o"
  "CMakeFiles/conair_apps.dir/registry.cpp.o.d"
  "CMakeFiles/conair_apps.dir/sqlite.cpp.o"
  "CMakeFiles/conair_apps.dir/sqlite.cpp.o.d"
  "CMakeFiles/conair_apps.dir/transmission.cpp.o"
  "CMakeFiles/conair_apps.dir/transmission.cpp.o.d"
  "CMakeFiles/conair_apps.dir/zsnes.cpp.o"
  "CMakeFiles/conair_apps.dir/zsnes.cpp.o.d"
  "libconair_apps.a"
  "libconair_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conair_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
