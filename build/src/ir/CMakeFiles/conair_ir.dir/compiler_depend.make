# Empty compiler generated dependencies file for conair_ir.
# This may be replaced when dependencies are built.
