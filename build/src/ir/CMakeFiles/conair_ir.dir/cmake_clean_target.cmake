file(REMOVE_RECURSE
  "libconair_ir.a"
)
