file(REMOVE_RECURSE
  "CMakeFiles/conair_ir.dir/builder.cpp.o"
  "CMakeFiles/conair_ir.dir/builder.cpp.o.d"
  "CMakeFiles/conair_ir.dir/ir_core.cpp.o"
  "CMakeFiles/conair_ir.dir/ir_core.cpp.o.d"
  "CMakeFiles/conair_ir.dir/parser.cpp.o"
  "CMakeFiles/conair_ir.dir/parser.cpp.o.d"
  "CMakeFiles/conair_ir.dir/printer.cpp.o"
  "CMakeFiles/conair_ir.dir/printer.cpp.o.d"
  "CMakeFiles/conair_ir.dir/verifier.cpp.o"
  "CMakeFiles/conair_ir.dir/verifier.cpp.o.d"
  "libconair_ir.a"
  "libconair_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conair_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
