
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/conair/driver.cpp" "src/conair/CMakeFiles/conair_core.dir/driver.cpp.o" "gcc" "src/conair/CMakeFiles/conair_core.dir/driver.cpp.o.d"
  "/root/repo/src/conair/failure_sites.cpp" "src/conair/CMakeFiles/conair_core.dir/failure_sites.cpp.o" "gcc" "src/conair/CMakeFiles/conair_core.dir/failure_sites.cpp.o.d"
  "/root/repo/src/conair/interproc.cpp" "src/conair/CMakeFiles/conair_core.dir/interproc.cpp.o" "gcc" "src/conair/CMakeFiles/conair_core.dir/interproc.cpp.o.d"
  "/root/repo/src/conair/optimizer.cpp" "src/conair/CMakeFiles/conair_core.dir/optimizer.cpp.o" "gcc" "src/conair/CMakeFiles/conair_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/conair/regions.cpp" "src/conair/CMakeFiles/conair_core.dir/regions.cpp.o" "gcc" "src/conair/CMakeFiles/conair_core.dir/regions.cpp.o.d"
  "/root/repo/src/conair/transform.cpp" "src/conair/CMakeFiles/conair_core.dir/transform.cpp.o" "gcc" "src/conair/CMakeFiles/conair_core.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/conair_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/conair_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/conair_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
