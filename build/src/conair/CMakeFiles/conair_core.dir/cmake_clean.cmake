file(REMOVE_RECURSE
  "CMakeFiles/conair_core.dir/driver.cpp.o"
  "CMakeFiles/conair_core.dir/driver.cpp.o.d"
  "CMakeFiles/conair_core.dir/failure_sites.cpp.o"
  "CMakeFiles/conair_core.dir/failure_sites.cpp.o.d"
  "CMakeFiles/conair_core.dir/interproc.cpp.o"
  "CMakeFiles/conair_core.dir/interproc.cpp.o.d"
  "CMakeFiles/conair_core.dir/optimizer.cpp.o"
  "CMakeFiles/conair_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/conair_core.dir/regions.cpp.o"
  "CMakeFiles/conair_core.dir/regions.cpp.o.d"
  "CMakeFiles/conair_core.dir/transform.cpp.o"
  "CMakeFiles/conair_core.dir/transform.cpp.o.d"
  "libconair_core.a"
  "libconair_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conair_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
