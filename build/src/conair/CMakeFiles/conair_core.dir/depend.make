# Empty dependencies file for conair_core.
# This may be replaced when dependencies are built.
