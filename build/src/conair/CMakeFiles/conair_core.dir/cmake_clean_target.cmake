file(REMOVE_RECURSE
  "libconair_core.a"
)
