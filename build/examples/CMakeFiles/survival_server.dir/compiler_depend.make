# Empty compiler generated dependencies file for survival_server.
# This may be replaced when dependencies are built.
