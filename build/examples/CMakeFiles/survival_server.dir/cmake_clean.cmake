file(REMOVE_RECURSE
  "CMakeFiles/survival_server.dir/survival_server.cpp.o"
  "CMakeFiles/survival_server.dir/survival_server.cpp.o.d"
  "survival_server"
  "survival_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survival_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
