file(REMOVE_RECURSE
  "CMakeFiles/fixmode_patch.dir/fixmode_patch.cpp.o"
  "CMakeFiles/fixmode_patch.dir/fixmode_patch.cpp.o.d"
  "fixmode_patch"
  "fixmode_patch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixmode_patch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
