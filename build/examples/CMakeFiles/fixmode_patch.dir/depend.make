# Empty dependencies file for fixmode_patch.
# This may be replaced when dependencies are built.
