# Empty compiler generated dependencies file for deadlock_recovery.
# This may be replaced when dependencies are built.
