# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fixmode_patch "/root/repo/build/examples/fixmode_patch")
set_tests_properties(example_fixmode_patch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_survival_server "/root/repo/build/examples/survival_server")
set_tests_properties(example_survival_server PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_deadlock_recovery "/root/repo/build/examples/deadlock_recovery")
set_tests_properties(example_deadlock_recovery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_minicc_recovers "/root/repo/build/examples/minicc" "--conair" "--delay" "1:5000" "/root/repo/examples/data/racy_counter.mc")
set_tests_properties(example_minicc_recovers PROPERTIES  PASS_REGULAR_EXPRESSION "value=42" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_minicc_deadlock "/root/repo/build/examples/minicc" "--conair" "--delay" "1:2000" "--delay" "2:300" "/root/repo/examples/data/two_lock_server.mc")
set_tests_properties(example_minicc_deadlock PROPERTIES  PASS_REGULAR_EXPRESSION "requests=1 bytes=512" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
