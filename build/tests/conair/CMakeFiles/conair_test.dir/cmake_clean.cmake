file(REMOVE_RECURSE
  "CMakeFiles/conair_test.dir/driver_invariants_test.cpp.o"
  "CMakeFiles/conair_test.dir/driver_invariants_test.cpp.o.d"
  "CMakeFiles/conair_test.dir/end_to_end_test.cpp.o"
  "CMakeFiles/conair_test.dir/end_to_end_test.cpp.o.d"
  "CMakeFiles/conair_test.dir/failure_sites_test.cpp.o"
  "CMakeFiles/conair_test.dir/failure_sites_test.cpp.o.d"
  "CMakeFiles/conair_test.dir/footnote5_test.cpp.o"
  "CMakeFiles/conair_test.dir/footnote5_test.cpp.o.d"
  "CMakeFiles/conair_test.dir/interproc_test.cpp.o"
  "CMakeFiles/conair_test.dir/interproc_test.cpp.o.d"
  "CMakeFiles/conair_test.dir/local_writes_test.cpp.o"
  "CMakeFiles/conair_test.dir/local_writes_test.cpp.o.d"
  "CMakeFiles/conair_test.dir/optimizer_test.cpp.o"
  "CMakeFiles/conair_test.dir/optimizer_test.cpp.o.d"
  "CMakeFiles/conair_test.dir/regions_test.cpp.o"
  "CMakeFiles/conair_test.dir/regions_test.cpp.o.d"
  "CMakeFiles/conair_test.dir/transform_test.cpp.o"
  "CMakeFiles/conair_test.dir/transform_test.cpp.o.d"
  "conair_test"
  "conair_test.pdb"
  "conair_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
