
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/conair/driver_invariants_test.cpp" "tests/conair/CMakeFiles/conair_test.dir/driver_invariants_test.cpp.o" "gcc" "tests/conair/CMakeFiles/conair_test.dir/driver_invariants_test.cpp.o.d"
  "/root/repo/tests/conair/end_to_end_test.cpp" "tests/conair/CMakeFiles/conair_test.dir/end_to_end_test.cpp.o" "gcc" "tests/conair/CMakeFiles/conair_test.dir/end_to_end_test.cpp.o.d"
  "/root/repo/tests/conair/failure_sites_test.cpp" "tests/conair/CMakeFiles/conair_test.dir/failure_sites_test.cpp.o" "gcc" "tests/conair/CMakeFiles/conair_test.dir/failure_sites_test.cpp.o.d"
  "/root/repo/tests/conair/footnote5_test.cpp" "tests/conair/CMakeFiles/conair_test.dir/footnote5_test.cpp.o" "gcc" "tests/conair/CMakeFiles/conair_test.dir/footnote5_test.cpp.o.d"
  "/root/repo/tests/conair/interproc_test.cpp" "tests/conair/CMakeFiles/conair_test.dir/interproc_test.cpp.o" "gcc" "tests/conair/CMakeFiles/conair_test.dir/interproc_test.cpp.o.d"
  "/root/repo/tests/conair/local_writes_test.cpp" "tests/conair/CMakeFiles/conair_test.dir/local_writes_test.cpp.o" "gcc" "tests/conair/CMakeFiles/conair_test.dir/local_writes_test.cpp.o.d"
  "/root/repo/tests/conair/optimizer_test.cpp" "tests/conair/CMakeFiles/conair_test.dir/optimizer_test.cpp.o" "gcc" "tests/conair/CMakeFiles/conair_test.dir/optimizer_test.cpp.o.d"
  "/root/repo/tests/conair/regions_test.cpp" "tests/conair/CMakeFiles/conair_test.dir/regions_test.cpp.o" "gcc" "tests/conair/CMakeFiles/conair_test.dir/regions_test.cpp.o.d"
  "/root/repo/tests/conair/transform_test.cpp" "tests/conair/CMakeFiles/conair_test.dir/transform_test.cpp.o" "gcc" "tests/conair/CMakeFiles/conair_test.dir/transform_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/conair/CMakeFiles/conair_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/conair_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/conair_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/conair_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/conair_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/conair_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/conair_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
