# Empty compiler generated dependencies file for conair_test.
# This may be replaced when dependencies are built.
