
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/callgraph_test.cpp" "tests/analysis/CMakeFiles/analysis_test.dir/callgraph_test.cpp.o" "gcc" "tests/analysis/CMakeFiles/analysis_test.dir/callgraph_test.cpp.o.d"
  "/root/repo/tests/analysis/dominators_test.cpp" "tests/analysis/CMakeFiles/analysis_test.dir/dominators_test.cpp.o" "gcc" "tests/analysis/CMakeFiles/analysis_test.dir/dominators_test.cpp.o.d"
  "/root/repo/tests/analysis/mem2reg_test.cpp" "tests/analysis/CMakeFiles/analysis_test.dir/mem2reg_test.cpp.o" "gcc" "tests/analysis/CMakeFiles/analysis_test.dir/mem2reg_test.cpp.o.d"
  "/root/repo/tests/analysis/memory_class_test.cpp" "tests/analysis/CMakeFiles/analysis_test.dir/memory_class_test.cpp.o" "gcc" "tests/analysis/CMakeFiles/analysis_test.dir/memory_class_test.cpp.o.d"
  "/root/repo/tests/analysis/slicing_test.cpp" "tests/analysis/CMakeFiles/analysis_test.dir/slicing_test.cpp.o" "gcc" "tests/analysis/CMakeFiles/analysis_test.dir/slicing_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/conair_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/conair_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/conair_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
