
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property/dominator_property_test.cpp" "tests/property/CMakeFiles/property_test.dir/dominator_property_test.cpp.o" "gcc" "tests/property/CMakeFiles/property_test.dir/dominator_property_test.cpp.o.d"
  "/root/repo/tests/property/program_gen.cpp" "tests/property/CMakeFiles/property_test.dir/program_gen.cpp.o" "gcc" "tests/property/CMakeFiles/property_test.dir/program_gen.cpp.o.d"
  "/root/repo/tests/property/property_test.cpp" "tests/property/CMakeFiles/property_test.dir/property_test.cpp.o" "gcc" "tests/property/CMakeFiles/property_test.dir/property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/conair/CMakeFiles/conair_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/conair_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/conair_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/conair_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/conair_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/conair_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/conair_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
