file(REMOVE_RECURSE
  "CMakeFiles/ir_test.dir/core_test.cpp.o"
  "CMakeFiles/ir_test.dir/core_test.cpp.o.d"
  "CMakeFiles/ir_test.dir/parser_robustness_test.cpp.o"
  "CMakeFiles/ir_test.dir/parser_robustness_test.cpp.o.d"
  "CMakeFiles/ir_test.dir/roundtrip_test.cpp.o"
  "CMakeFiles/ir_test.dir/roundtrip_test.cpp.o.d"
  "CMakeFiles/ir_test.dir/verifier_test.cpp.o"
  "CMakeFiles/ir_test.dir/verifier_test.cpp.o.d"
  "ir_test"
  "ir_test.pdb"
  "ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
