file(REMOVE_RECURSE
  "../bench/bench_table3_recovery"
  "../bench/bench_table3_recovery.pdb"
  "CMakeFiles/bench_table3_recovery.dir/bench_table3_recovery.cpp.o"
  "CMakeFiles/bench_table3_recovery.dir/bench_table3_recovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
