# Empty dependencies file for bench_table3_recovery.
# This may be replaced when dependencies are built.
