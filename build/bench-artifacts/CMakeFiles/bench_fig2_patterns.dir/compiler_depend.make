# Empty compiler generated dependencies file for bench_fig2_patterns.
# This may be replaced when dependencies are built.
