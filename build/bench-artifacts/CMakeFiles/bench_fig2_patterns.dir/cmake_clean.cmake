file(REMOVE_RECURSE
  "../bench/bench_fig2_patterns"
  "../bench/bench_fig2_patterns.pdb"
  "CMakeFiles/bench_fig2_patterns.dir/bench_fig2_patterns.cpp.o"
  "CMakeFiles/bench_fig2_patterns.dir/bench_fig2_patterns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
