# Empty compiler generated dependencies file for bench_table5_reexec_points.
# This may be replaced when dependencies are built.
