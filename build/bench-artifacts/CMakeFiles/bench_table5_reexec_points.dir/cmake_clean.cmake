file(REMOVE_RECURSE
  "../bench/bench_table5_reexec_points"
  "../bench/bench_table5_reexec_points.pdb"
  "CMakeFiles/bench_table5_reexec_points.dir/bench_table5_reexec_points.cpp.o"
  "CMakeFiles/bench_table5_reexec_points.dir/bench_table5_reexec_points.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_reexec_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
