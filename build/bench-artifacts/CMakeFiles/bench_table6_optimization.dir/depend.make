# Empty dependencies file for bench_table6_optimization.
# This may be replaced when dependencies are built.
