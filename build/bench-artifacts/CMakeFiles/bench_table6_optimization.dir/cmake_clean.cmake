file(REMOVE_RECURSE
  "../bench/bench_table6_optimization"
  "../bench/bench_table6_optimization.pdb"
  "CMakeFiles/bench_table6_optimization.dir/bench_table6_optimization.cpp.o"
  "CMakeFiles/bench_table6_optimization.dir/bench_table6_optimization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
