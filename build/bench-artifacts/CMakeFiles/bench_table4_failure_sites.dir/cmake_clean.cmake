file(REMOVE_RECURSE
  "../bench/bench_table4_failure_sites"
  "../bench/bench_table4_failure_sites.pdb"
  "CMakeFiles/bench_table4_failure_sites.dir/bench_table4_failure_sites.cpp.o"
  "CMakeFiles/bench_table4_failure_sites.dir/bench_table4_failure_sites.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_failure_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
