# Empty dependencies file for bench_table4_failure_sites.
# This may be replaced when dependencies are built.
