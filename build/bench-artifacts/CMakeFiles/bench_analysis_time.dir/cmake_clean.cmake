file(REMOVE_RECURSE
  "../bench/bench_analysis_time"
  "../bench/bench_analysis_time.pdb"
  "CMakeFiles/bench_analysis_time.dir/bench_analysis_time.cpp.o"
  "CMakeFiles/bench_analysis_time.dir/bench_analysis_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analysis_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
