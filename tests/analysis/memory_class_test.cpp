#include <gtest/gtest.h>

#include "analysis/memory_class.h"
#include "ir/parser.h"

namespace conair::analysis {
namespace {

using ir::Function;
using ir::Instruction;
using ir::Opcode;

std::unique_ptr<ir::Module> mod;

Instruction *
taggedInst(Function *f, const std::string &tag)
{
    for (auto &bb : f->blocks())
        for (auto &inst : bb->insts())
            if (inst->tag() == tag)
                return inst.get();
    return nullptr;
}

class MemoryClassTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        DiagEngine d;
        mod = ir::parseModule(R"(
global @g : i64[4]
global @p : ptr[1]

func @f(ptr %arg) -> i64 {
entry:
    %0 = alloca 1                     #"stack"
    %1 = load i64, %0                 #"stack_load"
    %2 = load i64, @g                 #"global_load"
    %3 = ptradd @g, 2
    %4 = load i64, %3                 #"global_elem_load"
    %5 = load ptr, @p                 #"ptrvar_fetch"
    %6 = load i64, %5                 #"ptrvar_deref"
    %7 = call $malloc(4)
    %8 = load i64, %7                 #"heap_deref"
    %9 = load i64, %arg               #"arg_deref"
    %10 = ptradd %5, 1
    store 0, %10                      #"ptrvar_store"
    store 1, %0                       #"stack_store"
    ret %1
}
)",
                             d);
        ASSERT_TRUE(mod) << d.str();
        f_ = mod->findFunction("f");
    }

    Function *f_;
};

TEST_F(MemoryClassTest, StackAccessesAreLocal)
{
    EXPECT_EQ(classifyAddress(
                  addressOf(taggedInst(f_, "stack_load"))),
              AddrRoot::StackSlot);
    EXPECT_FALSE(isSharedRead(taggedInst(f_, "stack_load")));
    EXPECT_FALSE(isPotentialSegfaultSite(taggedInst(f_, "stack_load")));
    EXPECT_FALSE(isPotentialSegfaultSite(taggedInst(f_, "stack_store")));
}

TEST_F(MemoryClassTest, DirectGlobalsShareButDontFault)
{
    Instruction *g = taggedInst(f_, "global_load");
    EXPECT_EQ(classifyAddress(addressOf(g)), AddrRoot::GlobalDirect);
    EXPECT_TRUE(isSharedRead(g));
    EXPECT_FALSE(isPotentialSegfaultSite(g));

    // Same through constant-offset ptradd.
    Instruction *ge = taggedInst(f_, "global_elem_load");
    EXPECT_EQ(classifyAddress(addressOf(ge)), AddrRoot::GlobalDirect);
    EXPECT_TRUE(isSharedRead(ge));
    EXPECT_FALSE(isPotentialSegfaultSite(ge));
}

TEST_F(MemoryClassTest, PointerVariableDerefsFault)
{
    for (const char *tag : {"ptrvar_deref", "heap_deref", "arg_deref"}) {
        Instruction *inst = taggedInst(f_, tag);
        ASSERT_NE(inst, nullptr) << tag;
        EXPECT_EQ(classifyAddress(addressOf(inst)), AddrRoot::PointerVar)
            << tag;
        EXPECT_TRUE(isPotentialSegfaultSite(inst)) << tag;
        EXPECT_TRUE(isSharedRead(inst)) << tag;
    }
}

TEST_F(MemoryClassTest, StoresThroughPointerVariablesFault)
{
    Instruction *st = taggedInst(f_, "ptrvar_store");
    EXPECT_TRUE(isPotentialSegfaultSite(st));
    EXPECT_FALSE(isSharedRead(st)); // stores are not reads
}

TEST_F(MemoryClassTest, FetchingThePointerItselfIsGlobalRead)
{
    // `load ptr, @p` reads the global directly; dereferencing the result
    // is the faulting part.
    Instruction *fetch = taggedInst(f_, "ptrvar_fetch");
    EXPECT_EQ(classifyAddress(addressOf(fetch)), AddrRoot::GlobalDirect);
    EXPECT_FALSE(isPotentialSegfaultSite(fetch));
    EXPECT_TRUE(isSharedRead(fetch));
}

TEST_F(MemoryClassTest, NullClassifies)
{
    EXPECT_EQ(classifyAddress(mod->getNull()), AddrRoot::Null);
}

} // namespace
} // namespace conair::analysis
