#include <gtest/gtest.h>

#include "analysis/callgraph.h"
#include "ir/parser.h"

namespace conair::analysis {
namespace {

TEST(CallGraph, FindsDirectCallersAndThreadEntries)
{
    DiagEngine d;
    auto m = ir::parseModule(R"(
func @leaf(i64 %x) -> i64 {
entry:
    ret %x
}

func @mid(i64 %x) -> i64 {
entry:
    %0 = call @leaf(%x)
    %1 = call @leaf(%0)
    ret %1
}

func @worker(i64 %arg) -> i64 {
entry:
    %0 = call @mid(%arg)
    ret %0
}

func @main() -> i64 {
entry:
    %0 = call $thread_create(@worker, 1)
    %1 = call @mid(2)
    call $thread_join(%0)
    ret %1
}
)",
                            d);
    ASSERT_TRUE(m) << d.str();
    CallGraph cg(*m);

    auto *leaf = m->findFunction("leaf");
    auto *mid = m->findFunction("mid");
    auto *worker = m->findFunction("worker");
    auto *main_fn = m->findFunction("main");

    EXPECT_EQ(cg.callersOf(leaf).size(), 2u);
    for (const CallEdge &e : cg.callersOf(leaf))
        EXPECT_EQ(e.caller, mid);

    ASSERT_EQ(cg.callersOf(mid).size(), 2u);
    EXPECT_EQ(cg.callersOf(mid)[0].caller, worker);
    EXPECT_EQ(cg.callersOf(mid)[1].caller, main_fn);

    EXPECT_TRUE(cg.callersOf(worker).empty()); // spawned, not called
    ASSERT_EQ(cg.threadEntries().size(), 1u);
    EXPECT_EQ(cg.threadEntries()[0], worker);

    EXPECT_EQ(cg.edges().size(), 4u);
}

TEST(CallGraph, DeduplicatesThreadEntries)
{
    DiagEngine d;
    auto m = ir::parseModule(R"(
func @w(i64 %x) -> i64 {
entry:
    ret %x
}

func @main() -> i64 {
entry:
    %0 = call $thread_create(@w, 1)
    %1 = call $thread_create(@w, 2)
    call $thread_join(%0)
    call $thread_join(%1)
    ret 0
}
)",
                            d);
    ASSERT_TRUE(m) << d.str();
    CallGraph cg(*m);
    EXPECT_EQ(cg.threadEntries().size(), 1u);
}

} // namespace
} // namespace conair::analysis
