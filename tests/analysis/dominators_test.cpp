#include <gtest/gtest.h>

#include "analysis/dominators.h"
#include "ir/parser.h"

namespace conair::analysis {
namespace {

using ir::BasicBlock;
using ir::Function;

std::unique_ptr<ir::Module>
parse(const std::string &text)
{
    DiagEngine d;
    auto m = ir::parseModule(text, d);
    EXPECT_TRUE(m) << d.str();
    return m;
}

BasicBlock *
block(Function *f, const std::string &name)
{
    for (auto &bb : f->blocks())
        if (bb->name() == name)
            return bb.get();
    return nullptr;
}

const char *diamond = R"(
func @f(i64 %x) -> i64 {
entry:
    %0 = icmp.slt %x, 0
    condbr %0, left, right
left:
    br join
right:
    br join
join:
    %1 = phi i64 [1, left], [2, right]
    ret %1
}
)";

TEST(DomTree, DiamondDominators)
{
    auto m = parse(diamond);
    Function *f = m->findFunction("f");
    DomTree dt(*f);
    BasicBlock *entry = block(f, "entry");
    BasicBlock *left = block(f, "left");
    BasicBlock *right = block(f, "right");
    BasicBlock *join = block(f, "join");

    EXPECT_EQ(dt.idom(entry), nullptr);
    EXPECT_EQ(dt.idom(left), entry);
    EXPECT_EQ(dt.idom(right), entry);
    EXPECT_EQ(dt.idom(join), entry);
    EXPECT_TRUE(dt.dominates(entry, join));
    EXPECT_FALSE(dt.dominates(left, join));
    EXPECT_TRUE(dt.dominates(join, join));
}

TEST(DomTree, DiamondFrontiers)
{
    auto m = parse(diamond);
    Function *f = m->findFunction("f");
    DomTree dt(*f);
    BasicBlock *left = block(f, "left");
    BasicBlock *right = block(f, "right");
    BasicBlock *join = block(f, "join");

    ASSERT_EQ(dt.frontier(left).size(), 1u);
    EXPECT_EQ(dt.frontier(left)[0], join);
    ASSERT_EQ(dt.frontier(right).size(), 1u);
    EXPECT_EQ(dt.frontier(right)[0], join);
    EXPECT_TRUE(dt.frontier(join).empty());
}

TEST(DomTree, DiamondPostDominators)
{
    auto m = parse(diamond);
    Function *f = m->findFunction("f");
    DomTree pdt(*f, /*post=*/true);
    BasicBlock *entry = block(f, "entry");
    BasicBlock *left = block(f, "left");
    BasicBlock *join = block(f, "join");

    EXPECT_TRUE(pdt.dominates(join, entry));
    EXPECT_TRUE(pdt.dominates(join, left));
    EXPECT_FALSE(pdt.dominates(left, entry));
    EXPECT_EQ(pdt.idom(left), join);
    EXPECT_EQ(pdt.idom(entry), join);
}

TEST(DomTree, LoopDominance)
{
    auto m = parse(R"(
func @loop(i64 %n) -> i64 {
entry:
    br head
head:
    %0 = phi i64 [0, entry], [%1, body]
    %2 = icmp.slt %0, %n
    condbr %2, body, done
body:
    %1 = add %0, 1
    br head
done:
    ret %0
}
)");
    Function *f = m->findFunction("loop");
    DomTree dt(*f);
    BasicBlock *head = block(f, "head");
    BasicBlock *body = block(f, "body");
    BasicBlock *done = block(f, "done");

    EXPECT_EQ(dt.idom(body), head);
    EXPECT_EQ(dt.idom(done), head);
    EXPECT_TRUE(dt.dominates(head, body));
    EXPECT_FALSE(dt.dominates(body, done));
    // head is in body's dominance frontier (back edge).
    bool found = false;
    for (BasicBlock *fr : dt.frontier(body))
        found |= fr == head;
    EXPECT_TRUE(found);
}

TEST(DomTree, InstructionDominance)
{
    auto m = parse(diamond);
    Function *f = m->findFunction("f");
    DomTree dt(*f);
    ir::Instruction *cmp = block(f, "entry")->front();
    ir::Instruction *phi = block(f, "join")->front();
    EXPECT_TRUE(dt.dominatesInst(cmp, phi));
    EXPECT_FALSE(dt.dominatesInst(phi, cmp));
    // Same-block ordering.
    ir::Instruction *ret = block(f, "join")->back();
    EXPECT_TRUE(dt.dominatesInst(phi, ret));
    EXPECT_FALSE(dt.dominatesInst(ret, phi));
}

TEST(DomTree, RpoStartsAtEntry)
{
    auto m = parse(diamond);
    Function *f = m->findFunction("f");
    DomTree dt(*f);
    ASSERT_FALSE(dt.rpo().empty());
    EXPECT_EQ(dt.rpo().front(), f->entry());
    EXPECT_EQ(dt.rpo().size(), 4u);
}

TEST(VerifySSA, AcceptsValidAndRejectsBroken)
{
    auto m = parse(diamond);
    Function *f = m->findFunction("f");
    DiagEngine d;
    EXPECT_TRUE(verifySSA(*f, d)) << d.str();

    // Move the phi's operand definition after its use: simulate by using
    // a value from 'left' inside 'right' (no dominance).
    auto m2 = parse(R"(
func @g(i64 %x) -> i64 {
entry:
    condbr true, left, right
left:
    %0 = add %x, 1
    br join
right:
    %1 = add %0, 2
    br join
join:
    %2 = phi i64 [%0, left], [%1, right]
    ret %2
}
)");
    DiagEngine d2;
    EXPECT_FALSE(verifySSA(*m2->findFunction("g"), d2));
}

} // namespace
} // namespace conair::analysis
