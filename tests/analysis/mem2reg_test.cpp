#include <gtest/gtest.h>

#include "analysis/dominators.h"
#include "analysis/mem2reg.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace conair::analysis {
namespace {

using ir::Function;
using ir::Instruction;
using ir::Opcode;

std::unique_ptr<ir::Module>
parse(const std::string &text)
{
    DiagEngine d;
    auto m = ir::parseModule(text, d);
    EXPECT_TRUE(m) << d.str();
    return m;
}

unsigned
countOp(const Function &f, Opcode op)
{
    unsigned n = 0;
    for (const auto &bb : f.blocks())
        for (const auto &inst : bb->insts())
            n += inst->opcode() == op;
    return n;
}

void
expectValid(const ir::Module &m)
{
    DiagEngine d;
    ASSERT_TRUE(ir::verifyModule(m, d)) << d.str() << ir::printModule(m);
    for (const auto &f : m.functions()) {
        DiagEngine d2;
        ASSERT_TRUE(verifySSA(*f, d2)) << d2.str() << ir::printModule(m);
    }
}

TEST(Mem2Reg, PromotesStraightLine)
{
    auto m = parse(R"(
func @f() -> i64 {
entry:
    %0 = alloca 1
    store 1, %0
    %1 = load i64, %0
    %2 = add %1, 41
    store %2, %0
    %3 = load i64, %0
    ret %3
}
)");
    Mem2RegStats s = promoteToSSA(*m->findFunction("f"));
    EXPECT_EQ(s.promoted, 1u);
    EXPECT_EQ(s.phisInserted, 0u);
    EXPECT_EQ(countOp(*m->findFunction("f"), Opcode::Alloca), 0u);
    EXPECT_EQ(countOp(*m->findFunction("f"), Opcode::Load), 0u);
    EXPECT_EQ(countOp(*m->findFunction("f"), Opcode::Store), 0u);
    expectValid(*m);
}

TEST(Mem2Reg, InsertsPhiAtJoin)
{
    auto m = parse(R"(
func @f(i64 %x) -> i64 {
entry:
    %0 = alloca 1
    store 0, %0
    %1 = icmp.slt %x, 0
    condbr %1, neg, done
neg:
    store 1, %0
    br done
done:
    %2 = load i64, %0
    ret %2
}
)");
    Function *f = m->findFunction("f");
    Mem2RegStats s = promoteToSSA(*f);
    EXPECT_EQ(s.promoted, 1u);
    EXPECT_EQ(s.phisInserted, 1u);
    EXPECT_EQ(countOp(*f, Opcode::Phi), 1u);
    expectValid(*m);
}

TEST(Mem2Reg, LoopVariableGetsPhi)
{
    auto m = parse(R"(
func @sum(i64 %n) -> i64 {
entry:
    %acc = alloca 1
    store 0, %acc
    %i = alloca 1
    store 0, %i
    br head
head:
    %0 = load i64, %i
    %1 = icmp.slt %0, %n
    condbr %1, body, done
body:
    %2 = load i64, %acc
    %3 = load i64, %i
    %4 = add %2, %3
    store %4, %acc
    %5 = add %3, 1
    store %5, %i
    br head
done:
    %6 = load i64, %acc
    ret %6
}
)");
    Function *f = m->findFunction("sum");
    Mem2RegStats s = promoteToSSA(*f);
    EXPECT_EQ(s.promoted, 2u);
    EXPECT_GE(s.phisInserted, 2u);
    EXPECT_EQ(countOp(*f, Opcode::Alloca), 0u);
    expectValid(*m);
}

TEST(Mem2Reg, SkipsAddressTakenSlot)
{
    auto m = parse(R"(
func @escape(i64 %x) -> i64 {
entry:
    %0 = alloca 1
    store %x, %0
    %1 = ptradd %0, 0
    %2 = load i64, %1
    ret %2
}
)");
    Function *f = m->findFunction("escape");
    Mem2RegStats s = promoteToSSA(*f);
    EXPECT_EQ(s.promoted, 0u);
    EXPECT_EQ(s.unpromoted, 1u);
    EXPECT_EQ(countOp(*f, Opcode::Alloca), 1u);
    expectValid(*m);
}

TEST(Mem2Reg, SkipsArrays)
{
    auto m = parse(R"(
func @arr() -> i64 {
entry:
    %0 = alloca 8
    store 5, %0
    %1 = load i64, %0
    ret %1
}
)");
    Function *f = m->findFunction("arr");
    Mem2RegStats s = promoteToSSA(*f);
    EXPECT_EQ(s.promoted, 0u);
    EXPECT_EQ(s.unpromoted, 1u);
    expectValid(*m);
}

TEST(Mem2Reg, LoadBeforeStoreBecomesZero)
{
    auto m = parse(R"(
func @uninit() -> i64 {
entry:
    %0 = alloca 1
    %1 = load i64, %0
    ret %1
}
)");
    Function *f = m->findFunction("uninit");
    promoteToSSA(*f);
    expectValid(*m);
    // The ret operand must now be the constant 0.
    const Instruction *ret = f->entry()->back();
    ASSERT_EQ(ret->opcode(), Opcode::Ret);
    ASSERT_EQ(ret->operand(0)->kind(), ir::ValueKind::ConstInt);
    EXPECT_EQ(static_cast<const ir::ConstInt *>(ret->operand(0))->value(),
              0);
}

TEST(Mem2Reg, GlobalAccessesUntouched)
{
    auto m = parse(R"(
global @g : i64[1]

func @f() -> i64 {
entry:
    store 3, @g
    %0 = load i64, @g
    ret %0
}
)");
    Function *f = m->findFunction("f");
    promoteToSSA(*f);
    EXPECT_EQ(countOp(*f, Opcode::Load), 1u);
    EXPECT_EQ(countOp(*f, Opcode::Store), 1u);
    expectValid(*m);
}

} // namespace
} // namespace conair::analysis
