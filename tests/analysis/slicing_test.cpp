#include <gtest/gtest.h>

#include "analysis/slicing.h"
#include "ir/parser.h"

namespace conair::analysis {
namespace {

using ir::Function;
using ir::Instruction;

struct Parsed
{
    std::unique_ptr<ir::Module> m;
    Function *f;

    explicit Parsed(const std::string &text)
    {
        DiagEngine d;
        m = ir::parseModule(text, d);
        EXPECT_TRUE(m) << d.str();
        f = m->functions().front().get();
    }

    Instruction *
    tagged(const std::string &tag) const
    {
        for (auto &bb : f->blocks())
            for (auto &inst : bb->insts())
                if (inst->tag() == tag)
                    return inst.get();
        return nullptr;
    }
};

TEST(Slicing, FollowsDataDependences)
{
    Parsed p(R"(
global @g : i64[1]

func @f() -> i64 {
entry:
    %0 = load i64, @g        #"shared_read"
    %1 = add %0, 1           #"dep1"
    %2 = mul %1, 2           #"dep2"
    %3 = add 5, 5            #"unrelated"
    %4 = icmp.slt %2, 100    #"cond"
    condbr %4, ok, fail
ok:
    ret %2
fail:
    call $assert_fail("f:8: assert failed")
    unreachable
}
)");
    ControlDeps cd(*p.f);
    SliceResult slice =
        backwardSlice(*p.f, {p.tagged("cond")}, cd);
    EXPECT_TRUE(slice.contains(p.tagged("cond")));
    EXPECT_TRUE(slice.contains(p.tagged("dep2")));
    EXPECT_TRUE(slice.contains(p.tagged("dep1")));
    EXPECT_TRUE(slice.contains(p.tagged("shared_read")));
    EXPECT_FALSE(slice.contains(p.tagged("unrelated")));
    EXPECT_TRUE(slice.args.empty());
}

TEST(Slicing, StopsAtLoads)
{
    // The address computation feeding a load is NOT on the slice: the
    // load is an endpoint (Fig 8 of the paper).
    Parsed p(R"(
global @tbl : i64[8]

func @f(i64 %i) -> i64 {
entry:
    %0 = ptradd @tbl, %i     #"addr"
    %1 = load i64, %0        #"the_load"
    %2 = add %1, 1           #"use"
    ret %2
}
)");
    ControlDeps cd(*p.f);
    SliceResult slice = backwardSlice(*p.f, {p.tagged("use")}, cd);
    EXPECT_TRUE(slice.contains(p.tagged("the_load")));
    EXPECT_FALSE(slice.contains(p.tagged("addr")));
    // %i feeds only the address, so it must not be on the slice either.
    EXPECT_TRUE(slice.args.empty());
}

TEST(Slicing, ReachesArguments)
{
    Parsed p(R"(
func @get_state(ptr %thd) -> i64 {
entry:
    %0 = icmp.ne %thd, null  #"check"
    condbr %0, ok, fail
ok:
    %1 = load i64, %thd
    ret %1
fail:
    ret 0
}
)");
    ControlDeps cd(*p.f);
    SliceResult slice = backwardSlice(*p.f, {p.tagged("check")}, cd);
    ASSERT_EQ(slice.args.size(), 1u);
    EXPECT_EQ((*slice.args.begin())->name(), "thd");
}

TEST(Slicing, IncludesControlDependence)
{
    // The value merged at the phi is control-dependent on the branch;
    // the branch condition reads a global, which must land on the slice.
    Parsed p(R"(
global @mode : i64[1]

func @f() -> i64 {
entry:
    %0 = load i64, @mode     #"mode_read"
    %1 = icmp.eq %0, 1       #"branch_cond"
    condbr %1, a, b
a:
    %2 = add 10, 0
    br join
b:
    %3 = add 20, 0
    br join
join:
    %4 = phi i64 [%2, a], [%3, b]
    %5 = add %4, 1           #"seed"
    ret %5
}
)");
    ControlDeps cd(*p.f);
    SliceResult slice = backwardSlice(*p.f, {p.tagged("seed")}, cd);
    EXPECT_TRUE(slice.contains(p.tagged("branch_cond")));
    EXPECT_TRUE(slice.contains(p.tagged("mode_read")));
}

TEST(ControlDeps, DiamondArmsDependOnBranch)
{
    Parsed p(R"(
func @f(i64 %x) -> i64 {
entry:
    %0 = icmp.slt %x, 0
    condbr %0, a, b
a:
    br join
b:
    br join
join:
    ret 0
}
)");
    ControlDeps cd(*p.f);
    ir::BasicBlock *a = nullptr, *b = nullptr, *join = nullptr,
                   *entry = nullptr;
    for (auto &bb : p.f->blocks()) {
        if (bb->name() == "a") a = bb.get();
        if (bb->name() == "b") b = bb.get();
        if (bb->name() == "join") join = bb.get();
        if (bb->name() == "entry") entry = bb.get();
    }
    const Instruction *branch = entry->terminator();
    ASSERT_EQ(cd.of(a).size(), 1u);
    EXPECT_EQ(cd.of(a)[0], branch);
    ASSERT_EQ(cd.of(b).size(), 1u);
    EXPECT_EQ(cd.of(b)[0], branch);
    EXPECT_TRUE(cd.of(join).empty());
    EXPECT_TRUE(cd.of(entry).empty());
}

TEST(ControlDeps, LoopBodyDependsOnHeader)
{
    Parsed p(R"(
func @f(i64 %n) -> i64 {
entry:
    br head
head:
    %0 = phi i64 [0, entry], [%1, body]
    %2 = icmp.slt %0, %n
    condbr %2, body, done
body:
    %1 = add %0, 1
    br head
done:
    ret %0
}
)");
    ControlDeps cd(*p.f);
    ir::BasicBlock *head = nullptr, *body = nullptr;
    for (auto &bb : p.f->blocks()) {
        if (bb->name() == "head") head = bb.get();
        if (bb->name() == "body") body = bb.get();
    }
    const Instruction *branch = head->terminator();
    bool body_dep = false;
    for (auto *t : cd.of(body))
        body_dep |= t == branch;
    EXPECT_TRUE(body_dep);
    // The loop header is control dependent on its own branch.
    bool head_dep = false;
    for (auto *t : cd.of(head))
        head_dep |= t == branch;
    EXPECT_TRUE(head_dep);
}

} // namespace
} // namespace conair::analysis
