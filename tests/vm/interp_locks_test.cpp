/**
 * @file
 * Regression tests for timed-lock edge cases and scheduler-hint
 * accounting.
 *
 * Two historic bugs are pinned here:
 *  - timedlock(m, 0) used to park the thread on an already-expired
 *    deadline, surrendering the CPU for a whole scheduling round
 *    before the timeout was delivered;
 *  - a timeout large enough to wrap the virtual-clock deadline used to
 *    produce a deadline in the past, i.e. an instant spurious timeout
 *    where "wait practically forever" was requested.
 */
#include <gtest/gtest.h>

#include "tests/vm/vm_test_util.h"

namespace conair::vm {
namespace {

using testutil::runC;

TEST(InterpLocks, ZeroTimeoutTimedLockIsAnImmediateTryLock)
{
    // The holder spins (stays runnable) while owning the mutex.  A
    // zero-timeout acquisition must report the timeout to the caller
    // immediately: if it parks the thread even briefly, the scheduler
    // hands the spinner a full quantum first and the measured wait
    // explodes past the bound.
    RunResult r = runC(R"(
mutex m;
int stop;
int holder(int x) {
    lock(m);
    int spins = 0;
    while (stop == 0) {
        spins = spins + 1;
    }
    unlock(m);
    return spins;
}
int main() {
    int t = spawn(holder, 0);
    hint(2);
    int before = time();
    int rc = timedlock(m, 0);
    int waited = time() - before;
    stop = 1;
    join(t);
    if (rc != 1) { return 100; }
    if (waited > 50) { return 101; }
    return 0;
}
)",
                       [] {
                           VmConfig cfg;
                           cfg.policy = SchedPolicy::RoundRobin;
                           cfg.quantum = 10000;
                           cfg.delays = {{2, 200}};
                           return cfg;
                       }());
    EXPECT_EQ(r.outcome, Outcome::Success);
    EXPECT_EQ(r.exitCode, 0);
}

TEST(InterpLocks, ZeroTimeoutOnAFreeMutexStillAcquires)
{
    RunResult r = runC(R"(
mutex m;
int main() {
    int rc = timedlock(m, 0);
    if (rc != 0) { return 1; }
    unlock(m);
    return 0;
}
)");
    EXPECT_EQ(r.outcome, Outcome::Success);
    EXPECT_EQ(r.exitCode, 0);
}

TEST(InterpLocks, HugeTimeoutWaitsInsteadOfWrappingIntoThePast)
{
    // timeout = -1 reaches the VM as 2^64-1 ticks; the deadline must
    // saturate ("wait forever"), not wrap around the virtual clock
    // into an instant timeout.  The holder releases after its delay,
    // so the waiter must eventually acquire (rc == 0).
    RunResult r = runC(R"(
mutex m;
int holder(int x) {
    lock(m);
    hint(1);
    unlock(m);
    return 0;
}
int main() {
    int t = spawn(holder, 0);
    hint(2);
    int forever = -1;
    int rc = timedlock(m, forever);
    if (rc == 0) { unlock(m); }
    join(t);
    return rc;
}
)",
                       [] {
                           VmConfig cfg;
                           cfg.delays = {{1, 3000}, {2, 500}};
                           return cfg;
                       }());
    EXPECT_EQ(r.outcome, Outcome::Success);
    EXPECT_EQ(r.exitCode, 0) << "spurious timeout from a wrapped deadline";
}

TEST(InterpLocks, SaturatedDeadlineStillHangChecksAsADeadlock)
{
    // A saturated deadline must not exempt the thread from deadlock
    // detection semantics: if nobody ever unlocks, the run terminates
    // via the sleeper fast-forward delivering the (astronomically
    // late) timeout rather than spinning the VM forever.  What matters
    // is termination with the timeout result, not a hang.
    RunResult r = runC(R"(
mutex m;
int holder(int x) {
    lock(m);
    int spins = 0;
    while (spins >= 0) {
        spins = spins + 1;
    }
    unlock(m);
    return 0;
}
int main() {
    int t = spawn(holder, 0);
    hint(2);
    int forever = -1;
    int rc = timedlock(m, forever);
    return rc;
}
)",
                       [] {
                           VmConfig cfg;
                           cfg.delays = {{2, 200}};
                           cfg.maxSteps = 200'000;
                           return cfg;
                       }());
    // The spinner burns the step budget: the run times out, it does
    // not crash or wrap into a bogus early wake.
    EXPECT_EQ(r.outcome, Outcome::Timeout);
}

TEST(InterpHints, UnconfiguredHintsAllocateNoTracking)
{
    // Hint fire-counting is per configured delay rule, not per hint id
    // seen at run time: a program spraying unique hint ids must not
    // grow any accounting structure.
    RunResult r = runC(R"(
int main() {
    int i = 0;
    while (i < 500) {
        hint(3);
        hint(4);
        hint(5);
        hint(6);
        i = i + 1;
    }
    return 0;
}
)",
                       [] {
                           VmConfig cfg;
                           cfg.delays = {{7, 50}}; // never executed
                           return cfg;
                       }());
    EXPECT_EQ(r.outcome, Outcome::Success);
    EXPECT_EQ(r.stats.hintRulesTracked, 1u);
}

TEST(InterpHints, NoRulesMeansNoTracking)
{
    RunResult r = runC(R"(
int main() {
    hint(1);
    hint(2);
    return 0;
}
)");
    EXPECT_EQ(r.outcome, Outcome::Success);
    EXPECT_EQ(r.stats.hintRulesTracked, 0u);
}

TEST(InterpHints, DuplicateRulesForOneHintCollapseToTheLast)
{
    // Two rules for the same hint id: the later one wins (map-override
    // semantics), and only one tracking slot exists for the pair.
    RunResult r = runC(R"(
int main() {
    hint(1);
    return 0;
}
)",
                       [] {
                           VmConfig cfg;
                           cfg.policy = SchedPolicy::RoundRobin;
                           cfg.delays = {{1, 9000}, {1, 40}};
                           return cfg;
                       }());
    EXPECT_EQ(r.outcome, Outcome::Success);
    EXPECT_EQ(r.stats.hintRulesTracked, 1u);
    // The 40-tick rule fired, not the 9000-tick one.
    EXPECT_LT(r.clock, 1000u);
    EXPECT_GE(r.clock, 40u);
}

} // namespace
} // namespace conair::vm
