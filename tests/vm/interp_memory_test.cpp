#include "tests/vm/vm_test_util.h"

namespace conair::vm {
namespace {

using testutil::runC;

TEST(InterpMemory, GlobalsAreInitialised)
{
    RunResult r = runC(R"(
int scalar = 7;
int arr[4] = {1, 2, 3, 4};
double d = 2.5;
int main() {
    return scalar + arr[0] + arr[3] + (d > 2.0);
}
)");
    EXPECT_EQ(r.exitCode, 13);
}

TEST(InterpMemory, UninitialisedGlobalsAreZero)
{
    RunResult r = runC(R"(
int g;
int arr[3];
int main() { return g + arr[0] + arr[2]; }
)");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(InterpMemory, MallocFreeLifecycle)
{
    RunResult r = runC(R"(
int main() {
    int* p = malloc(4);
    p[0] = 10;
    p[3] = 32;
    int v = p[0] + p[3];
    free(p);
    return v;
}
)");
    EXPECT_EQ(r.outcome, Outcome::Success);
    EXPECT_EQ(r.exitCode, 42);
}

TEST(InterpMemory, NullDerefSegfaults)
{
    RunResult r = runC(R"(
int* gp;
int main() { return gp[0]; }
)");
    EXPECT_EQ(r.outcome, Outcome::Segfault);
    EXPECT_NE(r.failureTag.find("deref.main."), std::string::npos);
}

TEST(InterpMemory, UseAfterFreeSegfaults)
{
    RunResult r = runC(R"(
int main() {
    int* p = malloc(2);
    free(p);
    return p[0];
}
)");
    EXPECT_EQ(r.outcome, Outcome::Segfault);
}

TEST(InterpMemory, HeapOutOfBoundsSegfaults)
{
    RunResult r = runC(R"(
int main() {
    int* p = malloc(2);
    return p[5];
}
)");
    EXPECT_EQ(r.outcome, Outcome::Segfault);
}

TEST(InterpMemory, GlobalOutOfBoundsSegfaults)
{
    RunResult r = runC(R"(
int arr[2];
int main() {
    int i = 10;
    return arr[i];
}
)");
    EXPECT_EQ(r.outcome, Outcome::Segfault);
}

TEST(InterpMemory, DoubleFreeTraps)
{
    RunResult r = runC(R"(
int main() {
    int* p = malloc(1);
    free(p);
    free(p);
    return 0;
}
)");
    EXPECT_EQ(r.outcome, Outcome::Trap);
}

TEST(InterpMemory, FreeNullIsNoop)
{
    RunResult r = runC(R"(
int* gp;
int main() { free(gp); return 0; }
)");
    EXPECT_EQ(r.outcome, Outcome::Success);
}

TEST(InterpMemory, DanglingStackPointerSegfaults)
{
    RunResult r = runC(R"(
int* leak(int x) {
    int local[2];
    local[0] = x;
    return local;
}
int main() {
    int* p = leak(5);
    return p[0];
}
)");
    EXPECT_EQ(r.outcome, Outcome::Segfault);
}

TEST(InterpMemory, PointerArithmeticWalksCells)
{
    RunResult r = runC(R"(
int main() {
    int* p = malloc(5);
    int* q = p;
    for (int i = 0; i < 5; i++) {
        *q = i * i;
        q = q + 1;
    }
    int acc = 0;
    for (int i = 0; i < 5; i++) acc += p[i];
    free(p);
    return acc;   // 0+1+4+9+16
}
)");
    EXPECT_EQ(r.exitCode, 30);
}

TEST(InterpMemory, AddressOfLocalWorksWithinLifetime)
{
    RunResult r = runC(R"(
void set(int* out, int v) { *out = v; }
int main() {
    int x = 0;
    set(&x, 9);
    return x;
}
)");
    EXPECT_EQ(r.exitCode, 9);
}

TEST(InterpMemory, SharedHeapBetweenThreads)
{
    RunResult r = runC(R"(
int* shared;
int worker(int n) {
    shared[n] = n * 10;
    return 0;
}
int main() {
    shared = malloc(4);
    int t1 = spawn(worker, 1);
    int t2 = spawn(worker, 2);
    join(t1); join(t2);
    return shared[1] + shared[2];
}
)");
    EXPECT_EQ(r.exitCode, 30);
}

TEST(InterpMemory, DoubleArraysKeepPrecision)
{
    RunResult r = runC(R"(
double samples[3] = {0.25, 0.5, 0.125};
int main() {
    double acc = 0.0;
    for (int i = 0; i < 3; i++) acc += samples[i];
    return acc == 0.875;
}
)");
    EXPECT_EQ(r.exitCode, 1);
}

} // namespace
} // namespace conair::vm
