/**
 * @file
 * Unit tests of the whole-program checkpoint machinery (the Rx-style
 * baseline): snapshot cost accounting, output sandboxing, and the
 * multi-checkpoint walk-back that escapes doomed snapshots.
 */
#include "tests/vm/vm_test_util.h"

namespace conair::vm {
namespace {

using testutil::compileC;
using testutil::runC;

TEST(WpCheckpoint, SnapshotsChargeVirtualTime)
{
    const char *src = R"(
int data[64];
int main() {
    for (int i = 0; i < 2000; i++) { data[i % 64] = i; }
    return 0;
}
)";
    VmConfig plain;
    RunResult a = runC(src, plain);

    VmConfig wp;
    wp.wpCheckpointInterval = 500;
    wp.wpSnapshotCostPerCell = 1.0;
    RunResult b = runC(src, wp);

    EXPECT_GT(b.stats.wpSnapshots, 3u);
    EXPECT_GT(b.stats.wpSnapshotCost, 0u);
    EXPECT_EQ(b.stats.steps - b.stats.wpSnapshotCost, a.stats.steps);
    // Behaviour itself is unchanged on clean runs.
    EXPECT_EQ(a.exitCode, b.exitCode);
}

TEST(WpCheckpoint, OutputIsRolledBackWithState)
{
    // The program prints, then fails; rollback must retract the output
    // produced after the restored snapshot (output sandboxing).
    const char *src = R"(
int attempts;
int main() {
    attempts = attempts + 1;
    print("attempt\n");
    assert(attempts >= 2);   // fails on the first try only...
    print("done\n");
    return 0;
}
)";
    // ...except state rolls back too, so it fails forever; after the
    // budget the failure surfaces with exactly one attempt visible.
    VmConfig wp;
    wp.wpCheckpointInterval = 1'000'000; // only the start snapshot
    wp.wpMaxRecoveries = 3;
    RunResult r = runC(src, wp);
    EXPECT_EQ(r.outcome, Outcome::AssertFail);
    EXPECT_EQ(r.stats.wpRecoveries, 3u);
    EXPECT_EQ(r.output, "attempt\n");
}

TEST(WpCheckpoint, WalkBackEscapesDoomedSnapshot)
{
    // A snapshot taken between the two racy reads captures a doomed
    // state; the walk-back to an older snapshot escapes it once the
    // transient delay is spent.
    const char *src = R"(
int flag = 1;
int flipper(int x) {
    flag = 0;
    hint(2);
    flag = 1;
    return 0;
}
int main() {
    int t = spawn(flipper, 0);
    int first = flag;
    hint(1);
    assert(flag == first);
    join(t);
    print("ok\n");
    return 0;
}
)";
    VmConfig wp;
    wp.quantum = 30;
    wp.delays = {{1, 2'000, 1}, {2, 6'000, 1}}; // transient anomaly
    wp.wpCheckpointInterval = 40; // snapshots land inside the window
    wp.wpMaxRecoveries = 10;
    RunResult r = runC(src, wp);
    EXPECT_EQ(r.outcome, Outcome::Success) << r.failureMsg;
    EXPECT_EQ(r.output, "ok\n");
    EXPECT_GE(r.stats.wpRecoveries, 1u);
}

TEST(WpCheckpoint, DisabledByDefault)
{
    RunResult r = runC("int main() { return 3; }", {});
    EXPECT_EQ(r.stats.wpSnapshots, 0u);
    EXPECT_EQ(r.exitCode, 3);
}

} // namespace
} // namespace conair::vm
