/**
 * @file
 * Phi parallel-copy edge cases on all three execution engines.
 *
 * SSA phi nodes at a block head are one atomic parallel copy: every
 * incoming value is read before any destination is written.  The
 * classic ways to get this wrong — swap cycles, the lost-copy
 * problem, self-referential phis — are pinned here as regression
 * tests, and each program runs on Reference, Decoded, and Fused so
 * every phi-copy implementation (the tree walk, jumpToDecoded's
 * scratch copy, and the fused engine's pre-resolved inline edges)
 * faces the same cases.  Blocks with more phis than the fused
 * engine's inline-edge capacity (kMaxInlinePhi) are included so the
 * delegated slow path is covered too.
 */
#include <string>

#include <gtest/gtest.h>

#include "tests/vm/vm_test_util.h"

namespace conair::vm {
namespace {

using testutil::parseIR;

/** Runs @p irText on every engine (plus the fused engine without the
 *  scheduler burst, which forces per-step resyncs through the fused
 *  jump path) and checks the exit code and tick identity. */
void
expectExitOnAllEngines(const std::string &irText, int64_t expected,
                       const std::string &ctx)
{
    auto m = parseIR(irText);
    ASSERT_TRUE(m) << ctx;

    struct Variant
    {
        const char *name;
        ExecEngine engine;
        bool burst;
    };
    const Variant variants[] = {
        {"reference", ExecEngine::Reference, false},
        {"decoded", ExecEngine::Decoded, true},
        {"fused", ExecEngine::Fused, true},
        {"fused/no-burst", ExecEngine::Fused, false},
    };

    RunResult first;
    for (size_t i = 0; i < std::size(variants); ++i) {
        VmConfig cfg;
        cfg.engine = variants[i].engine;
        cfg.schedFastPath = variants[i].burst;
        RunResult r = runProgram(*m, cfg);
        ASSERT_EQ(r.outcome, Outcome::Success)
            << ctx << " [" << variants[i].name << "] " << r.failureMsg;
        EXPECT_EQ(r.exitCode, expected)
            << ctx << " [" << variants[i].name << "]";
        if (i == 0) {
            first = r;
            continue;
        }
        EXPECT_EQ(r.clock, first.clock)
            << ctx << " [" << variants[i].name << "]";
        EXPECT_EQ(r.stats.steps, first.stats.steps)
            << ctx << " [" << variants[i].name << "]";
        EXPECT_EQ(r.memDigest, first.memDigest)
            << ctx << " [" << variants[i].name << "]";
    }
}

TEST(PhiEdge, SwapCycle)
{
    // (a, b) swap every iteration; sequential copy order would give
    // b = a(new) and collapse the pair.
    expectExitOnAllEngines(R"(
func @main() -> i64 {
entry:
    br loop
loop:
    %a = phi i64 [1, entry], [%b, loop]
    %b = phi i64 [2, entry], [%a, loop]
    %i = phi i64 [0, entry], [%n, loop]
    %n = add %i, 1
    %c = icmp.slt %n, 5
    condbr %c, loop, done
done:
    %r = mul %a, 10
    %s = add %r, %b
    ret %s
}
)",
                           12, "swap");
}

TEST(PhiEdge, ThreeWayRotation)
{
    // a <- b <- c <- a: a cycle longer than a single swap; any
    // partially-sequential copy breaks the rotation.
    expectExitOnAllEngines(R"(
func @main() -> i64 {
entry:
    br loop
loop:
    %a = phi i64 [1, entry], [%b, loop]
    %b = phi i64 [2, entry], [%c, loop]
    %c = phi i64 [3, entry], [%a, loop]
    %i = phi i64 [0, entry], [%n, loop]
    %n = add %i, 1
    %t = icmp.slt %n, 5
    condbr %t, loop, done
done:
    %r1 = mul %a, 100
    %r2 = mul %b, 10
    %r3 = add %r1, %r2
    %r4 = add %r3, %c
    ret %r4
}
)",
                           // 4 iterations rotate (1,2,3) -> (2,3,1)
                           // -> (3,1,2) -> (1,2,3) -> (2,3,1).
                           231, "rotation");
}

TEST(PhiEdge, LostCopy)
{
    // The lost-copy problem: %i is live out of the loop while the
    // back edge redefines it; the exit must see the value from the
    // *final* iteration, not the next one (%n).
    expectExitOnAllEngines(R"(
func @main() -> i64 {
entry:
    br loop
loop:
    %i = phi i64 [0, entry], [%n, loop]
    %n = add %i, 1
    %c = icmp.slt %n, 5
    condbr %c, loop, done
done:
    ret %i
}
)",
                           4, "lost-copy");
}

TEST(PhiEdge, SelfReferentialPhi)
{
    // %x feeds itself along the back edge: the copy x <- x must be a
    // no-op every iteration, not read a clobbered temporary.
    expectExitOnAllEngines(R"(
func @main() -> i64 {
entry:
    br loop
loop:
    %x = phi i64 [7, entry], [%x, loop]
    %i = phi i64 [0, entry], [%n, loop]
    %n = add %i, %x
    %c = icmp.slt %n, 50
    condbr %c, loop, done
done:
    %r = add %x, %n
    ret %r
}
)",
                           // n: 7, 14, ..., 56 stops; 7 + 56 = 63.
                           63, "self-phi");
}

TEST(PhiEdge, PhiEdgesOnBothCondbrTargets)
{
    // A diamond whose condbr feeds phi copies on *both* targets, then
    // a merge phi, then a back edge — every branch record shape the
    // fused engine pre-resolves (taken edge, fallthrough edge, merge)
    // carries copies here.
    expectExitOnAllEngines(R"(
func @main() -> i64 {
entry:
    br head
head:
    %i = phi i64 [0, entry], [%i2, join]
    %acc = phi i64 [0, entry], [%acc2, join]
    %c = icmp.slt %i, 6
    condbr %c, body, done
body:
    %par = and %i, 1
    %z = icmp.eq %par, 0
    condbr %z, even, odd
even:
    %x = phi i64 [%acc, body]
    %x2 = add %x, 10
    br join
odd:
    %y = phi i64 [%acc, body]
    %y2 = add %y, 1
    br join
join:
    %m = phi i64 [%x2, even], [%y2, odd]
    %acc2 = add %m, 0
    %i2 = add %i, 1
    br head
done:
    ret %acc
}
)",
                           // i = 0,2,4 add 10; i = 1,3,5 add 1.
                           33, "diamond");
}

TEST(PhiEdge, MoreThanInlineCapacityPhis)
{
    // Ten phis in one block — beyond the fused engine's inline-edge
    // capacity (kMaxInlinePhi = 8) — rotating as one long cycle, so
    // the delegated phi-copy slow path handles a full parallel copy.
    expectExitOnAllEngines(R"(
func @main() -> i64 {
entry:
    br loop
loop:
    %p0 = phi i64 [0, entry], [%p1, loop]
    %p1 = phi i64 [1, entry], [%p2, loop]
    %p2 = phi i64 [2, entry], [%p3, loop]
    %p3 = phi i64 [3, entry], [%p4, loop]
    %p4 = phi i64 [4, entry], [%p5, loop]
    %p5 = phi i64 [5, entry], [%p6, loop]
    %p6 = phi i64 [6, entry], [%p7, loop]
    %p7 = phi i64 [7, entry], [%p8, loop]
    %p8 = phi i64 [8, entry], [%p9, loop]
    %p9 = phi i64 [9, entry], [%p0, loop]
    %i = phi i64 [0, entry], [%n, loop]
    %n = add %i, 1
    %c = icmp.slt %n, 4
    condbr %c, loop, done
done:
    %d1 = mul %p0, 100
    %d2 = mul %p1, 10
    %d3 = add %d1, %d2
    %d4 = add %d3, %p9
    ret %d4
}
)",
                           // 3 rotations: p0 = 3, p1 = 4, p9 = 2.
                           342, "wide-phi");
}

} // namespace
} // namespace conair::vm
