/**
 * @file
 * Tests of the ConAir runtime intrinsics (checkpoint / try_rollback /
 * compensation / ptr_check) at the IR level, independent of the static
 * transformation pass.
 */
#include "tests/vm/vm_test_util.h"

namespace conair::vm {
namespace {

using testutil::parseIR;

RunResult
runIR(const std::string &text, VmConfig cfg = {})
{
    auto m = parseIR(text);
    if (!m)
        return {};
    return runProgram(*m, cfg);
}

TEST(ConAirRuntime, RollbackReexecutesRegion)
{
    // The region re-reads @flag; a second thread sets it.  The retry
    // loop must roll back until the assert-equivalent condition holds.
    RunResult r = runIR(R"(
global @flag : i64[1]

func @setter(i64 %arg) -> i64 {
entry:
    sched_hint 1
    store 1, @flag
    ret 0
}

func @main() -> i64 {
entry:
    %t = call $thread_create(@setter, 0)
    call $conair.checkpoint(0)
    br region
region:
    %v = load i64, @flag
    %ok = icmp.eq %v, 1
    condbr %ok, good, fail
fail:
    call $conair.try_rollback(5) #"site5"
    call $assert_fail("flag was 0")
    unreachable
good:
    call $conair.recovered(5)
    call $thread_join(%t)
    ret %v
}
)",
                        [] {
                            VmConfig cfg;
                            cfg.delays = {{1, 2'000}};
                            return cfg;
                        }());
    EXPECT_EQ(r.outcome, Outcome::Success);
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_GE(r.stats.rollbacks, 1u);
    ASSERT_EQ(r.stats.recoveries.size(), 1u);
    EXPECT_EQ(r.stats.recoveries[0].siteTag, "site5");
    EXPECT_GE(r.stats.recoveries[0].retries, 1u);
    EXPECT_GT(r.stats.recoveries[0].endClock,
              r.stats.recoveries[0].startClock);
}

TEST(ConAirRuntime, RetryBudgetExhaustionFallsThrough)
{
    // Nothing ever sets @flag, so rollback can never succeed; after
    // maxRetries the original assert failure must surface.
    VmConfig cfg;
    cfg.maxRetries = 50;
    RunResult r = runIR(R"(
global @flag : i64[1]

func @main() -> i64 {
entry:
    call $conair.checkpoint(0)
    br region
region:
    %v = load i64, @flag
    %ok = icmp.eq %v, 1
    condbr %ok, good, fail
fail:
    call $conair.try_rollback(5)
    call $assert_fail("flag never set")
    unreachable
good:
    ret %v
}
)",
                        cfg);
    EXPECT_EQ(r.outcome, Outcome::AssertFail);
    EXPECT_EQ(r.stats.rollbacks, 50u);
}

TEST(ConAirRuntime, NoCheckpointMeansNoRollback)
{
    RunResult r = runIR(R"(
func @main() -> i64 {
entry:
    call $conair.try_rollback(1)
    call $assert_fail("no checkpoint taken")
    unreachable
}
)");
    EXPECT_EQ(r.outcome, Outcome::AssertFail);
    EXPECT_EQ(r.stats.rollbacks, 0u);
}

TEST(ConAirRuntime, CompensationFreesRegionAllocations)
{
    // The region mallocs on every attempt; compensation must free the
    // allocation of the failed attempt, so exactly one block stays live.
    RunResult r = runIR(R"(
global @flag : i64[1]

func @setter(i64 %arg) -> i64 {
entry:
    sched_hint 1
    store 1, @flag
    ret 0
}

func @main() -> i64 {
entry:
    %t = call $thread_create(@setter, 0)
    call $conair.checkpoint(0)
    br region
region:
    %p = call $malloc(4)
    call $conair.note_alloc(%p)
    %v = load i64, @flag
    %ok = icmp.eq %v, 1
    condbr %ok, good, fail
fail:
    call $conair.try_rollback(9)
    call $assert_fail("never")
    unreachable
good:
    store 7, %p
    %r = load i64, %p
    call $thread_join(%t)
    ret %r
}
)",
                        [] {
                            VmConfig cfg;
                            cfg.delays = {{1, 1'000}};
                            return cfg;
                        }());
    EXPECT_EQ(r.outcome, Outcome::Success);
    EXPECT_EQ(r.exitCode, 7);
    EXPECT_GE(r.stats.rollbacks, 1u);
    EXPECT_EQ(r.stats.compensationFrees, r.stats.rollbacks);
}

TEST(ConAirRuntime, CompensationReleasesRegionLocks)
{
    // Deadlock recovery (HawkNL pattern, Fig 11): thread 2's region
    // re-acquires @slock; rolling back must release it so thread 1 can
    // finish, after which the retry succeeds.
    RunResult r = runIR(R"(
mutex @nlock
mutex @slock

func @closer(i64 %arg) -> i64 {
entry:
    call $mutex_lock(@nlock)
    sched_hint 1
    call $mutex_lock(@slock)
    call $mutex_unlock(@slock)
    call $mutex_unlock(@nlock)
    ret 0
}

func @main() -> i64 {
entry:
    %t = call $thread_create(@closer, 0)
    sched_hint 2
    call $conair.checkpoint(0)
    br region
region:
    %r1 = call $mutex_timedlock(@slock, 500)
    %ok1 = icmp.eq %r1, 0
    condbr %ok1, havelock, fail
havelock:
    call $conair.note_lock(@slock)
    %r2 = call $mutex_timedlock(@nlock, 500)
    %ok2 = icmp.eq %r2, 0
    condbr %ok2, good, fail
fail:
    call $conair.backoff()
    call $conair.try_rollback(3)
    call $assert_fail("deadlock unrecovered")
    unreachable
good:
    call $conair.recovered(3)
    call $mutex_unlock(@nlock)
    call $mutex_unlock(@slock)
    call $thread_join(%t)
    ret 77
}
)",
                        [] {
                            VmConfig cfg;
                            // closer grabs nlock then stalls; main grabs
                            // slock and hits the timed nlock acquisition.
                            cfg.delays = {{1, 3'000}, {2, 100}};
                            return cfg;
                        }());
    EXPECT_EQ(r.outcome, Outcome::Success);
    EXPECT_EQ(r.exitCode, 77);
    EXPECT_GE(r.stats.rollbacks, 1u);
    EXPECT_GE(r.stats.compensationUnlocks, 1u);
    EXPECT_EQ(r.stats.recoveries.size(), 1u);
}

TEST(ConAirRuntime, PtrCheckClassifiesPointers)
{
    RunResult r = runIR(R"(
global @g : i64[2]

func @main() -> i64 {
entry:
    %a = call $conair.ptr_check(null)
    %p = call $malloc(2)
    %b = call $conair.ptr_check(%p)
    call $free(%p)
    %c = call $conair.ptr_check(%p)
    %d = call $conair.ptr_check(@g)
    %e = ptradd @g, 9
    %f = call $conair.ptr_check(%e)
    %za = zext %a
    %zb = zext %b
    %zc = zext %c
    %zd = zext %d
    %zf = zext %f
    %s1 = mul %za, 10000
    %s2 = mul %zb, 1000
    %s3 = mul %zc, 100
    %s4 = mul %zd, 10
    %t1 = add %s1, %s2
    %t2 = add %t1, %s3
    %t3 = add %t2, %s4
    %t4 = add %t3, %zf
    ret %t4
}
)");
    // null invalid, live heap valid, freed invalid, global valid,
    // out-of-bounds invalid: 0*10000 + 1*1000 + 0*100 + 1*10 + 0.
    EXPECT_EQ(r.outcome, Outcome::Success);
    EXPECT_EQ(r.exitCode, 1010);
}

TEST(ConAirRuntime, CheckpointsAreCountedAsDynamicReexecPoints)
{
    RunResult r = runIR(R"(
func @main() -> i64 {
entry:
    br loop
loop:
    %i = phi i64 [0, entry], [%n, loop]
    call $conair.checkpoint(0)
    %n = add %i, 1
    %c = icmp.slt %n, 10
    condbr %c, loop, done
done:
    ret 0
}
)");
    EXPECT_EQ(r.outcome, Outcome::Success);
    EXPECT_EQ(r.stats.checkpointsExecuted, 10u);
}

TEST(ConAirRuntime, InterproceduralRollbackUnwindsFrames)
{
    // Checkpoint in the caller; the callee fails and rolls back across
    // the frame boundary (MozillaXP pattern, Fig 10).
    RunResult r = runIR(R"(
global @mthd : ptr[1]

func @init(i64 %arg) -> i64 {
entry:
    sched_hint 1
    %p = call $malloc(2)
    store 42, %p
    store %p, @mthd
    ret 0
}

func @get_state(ptr %thd) -> i64 {
entry:
    %ok = call $conair.ptr_check(%thd)
    condbr %ok, good, fail
fail:
    call $conair.try_rollback(4)
    call $assert_fail("segv")
    unreachable
good:
    call $conair.recovered(4)
    %v = load i64, %thd
    ret %v
}

func @main() -> i64 {
entry:
    %t = call $thread_create(@init, 0)
    call $conair.checkpoint(0)
    br get
get:
    %p = load ptr, @mthd
    %v = call @get_state(%p)
    call $thread_join(%t)
    ret %v
}
)",
                        [] {
                            VmConfig cfg;
                            cfg.delays = {{1, 2'000}};
                            return cfg;
                        }());
    EXPECT_EQ(r.outcome, Outcome::Success);
    EXPECT_EQ(r.exitCode, 42);
    EXPECT_GE(r.stats.rollbacks, 1u);
    EXPECT_EQ(r.stats.recoveries.size(), 1u);
}

TEST(ConAirRuntime, RecoveredHookIsZeroCost)
{
    // Two identical programs, one with conair.recovered: step counts
    // must match exactly.
    const char *with = R"(
func @main() -> i64 {
entry:
    %a = add 1, 2
    call $conair.recovered(0)
    ret %a
}
)";
    const char *without = R"(
func @main() -> i64 {
entry:
    %a = add 1, 2
    ret %a
}
)";
    RunResult rw = runIR(with);
    RunResult ro = runIR(without);
    EXPECT_EQ(rw.stats.steps, ro.stats.steps);
    EXPECT_EQ(rw.clock, ro.clock);
}

} // namespace
} // namespace conair::vm
