/**
 * @file
 * Differential testing of the three execution engines.
 *
 * The pre-decoded engine (ExecEngine::Decoded, with its scheduler fast
 * path and memory-handle cache) and the superinstruction engine
 * (ExecEngine::Fused) must be *tick-for-tick* identical to the
 * reference tree-walking engine: same outcome, output, failure
 * diagnostics, virtual clock, step counts, final-memory digest, and
 * recovery events for every program and seed.  These tests run the bundled example
 * programs and the whole Table 2 application registry (hardened and
 * unhardened, clean and failure-forcing schedules, plus the
 * whole-program-checkpoint and chaos modes) under both engines and
 * every hot-path-knob combination, and require equality.
 */
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/harness.h"
#include "tests/vm/vm_test_util.h"

#ifndef CONAIR_EXAMPLES_DIR
#define CONAIR_EXAMPLES_DIR "examples/data"
#endif

namespace conair::vm {
namespace {

using testutil::compileC;

/** Equality over everything semantic a run reports.  Engine-internal
 *  counters (decodedInsts, fastPathSteps, memCache*, hintRulesTracked)
 *  are deliberately excluded: they describe *how* the engine ran, not
 *  what the program did. */
void
expectSameRun(const RunResult &a, const RunResult &b,
              const std::string &ctx)
{
    EXPECT_EQ(a.outcome, b.outcome) << ctx;
    EXPECT_EQ(a.exitCode, b.exitCode) << ctx;
    EXPECT_EQ(a.output, b.output) << ctx;
    EXPECT_EQ(a.failureMsg, b.failureMsg) << ctx;
    EXPECT_EQ(a.failureTag, b.failureTag) << ctx;
    EXPECT_EQ(a.clock, b.clock) << ctx;
    EXPECT_EQ(a.memDigest, b.memDigest) << ctx;

    const RunStats &s = a.stats;
    const RunStats &t = b.stats;
    EXPECT_EQ(s.steps, t.steps) << ctx;
    EXPECT_EQ(s.threadsSpawned, t.threadsSpawned) << ctx;
    EXPECT_EQ(s.checkpointsExecuted, t.checkpointsExecuted) << ctx;
    EXPECT_EQ(s.rollbacks, t.rollbacks) << ctx;
    EXPECT_EQ(s.compensationFrees, t.compensationFrees) << ctx;
    EXPECT_EQ(s.compensationUnlocks, t.compensationUnlocks) << ctx;
    EXPECT_EQ(s.backoffs, t.backoffs) << ctx;
    EXPECT_EQ(s.wpSnapshots, t.wpSnapshots) << ctx;
    EXPECT_EQ(s.wpRecoveries, t.wpRecoveries) << ctx;
    EXPECT_EQ(s.wpSnapshotCost, t.wpSnapshotCost) << ctx;
    EXPECT_EQ(s.chaosRollbacks, t.chaosRollbacks) << ctx;
    ASSERT_EQ(s.recoveries.size(), t.recoveries.size()) << ctx;
    for (size_t i = 0; i < s.recoveries.size(); ++i) {
        const RecoveryEvent &x = s.recoveries[i];
        const RecoveryEvent &y = t.recoveries[i];
        EXPECT_EQ(x.siteTag, y.siteTag) << ctx << " recovery " << i;
        EXPECT_EQ(x.retries, y.retries) << ctx << " recovery " << i;
        EXPECT_EQ(x.startClock, y.startClock) << ctx << " recovery " << i;
        EXPECT_EQ(x.endClock, y.endClock) << ctx << " recovery " << i;
    }
}

/** Every hot-path knob combination that must agree: the decoded
 *  production default, each optimisation disabled on its own, and the
 *  reference engine with and without the scheduler fast path. */
std::vector<std::pair<const char *, VmConfig>>
engineVariants(VmConfig base)
{
    base.engine = ExecEngine::Decoded;
    base.schedFastPath = true;
    base.memHandleCache = true;

    VmConfig no_burst = base;
    no_burst.schedFastPath = false;
    VmConfig no_cache = base;
    no_cache.memHandleCache = false;
    VmConfig ref = base;
    ref.engine = ExecEngine::Reference;
    ref.schedFastPath = false;
    VmConfig ref_burst = base;
    ref_burst.engine = ExecEngine::Reference;
    VmConfig fused = base;
    fused.engine = ExecEngine::Fused;
    VmConfig fused_no_burst = fused;
    fused_no_burst.schedFastPath = false;

    return {{"decoded", base},
            {"decoded/no-burst", no_burst},
            {"decoded/no-memcache", no_cache},
            {"reference", ref},
            {"reference/burst", ref_burst},
            {"fused", fused},
            {"fused/no-burst", fused_no_burst}};
}

void
diffAllVariants(const ir::Module &m, const VmConfig &base,
                const std::string &ctx)
{
    auto variants = engineVariants(base);
    RunResult first = runProgram(m, variants[0].second);
    for (size_t i = 1; i < variants.size(); ++i) {
        RunResult r = runProgram(m, variants[i].second);
        expectSameRun(first, r,
                      ctx + " [" + variants[i].first + " vs decoded]");
    }
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(DecodeDiff, ExampleProgramsAgreeAcrossSeedsAndPolicies)
{
    const char *files[] = {"racy_counter.mc", "two_lock_server.mc"};
    for (const char *name : files) {
        std::string src =
            readFile(std::string(CONAIR_EXAMPLES_DIR) + "/" + name);
        auto m = compileC(src);
        ASSERT_TRUE(m);
        for (uint64_t seed : {1, 2, 3, 17}) {
            VmConfig cfg;
            cfg.seed = seed;
            diffAllVariants(*m, cfg,
                            std::string(name) + " random seed " +
                                std::to_string(seed));
        }
        VmConfig rr;
        rr.policy = SchedPolicy::RoundRobin;
        diffAllVariants(*m, rr, std::string(name) + " round-robin");

        // Forced interleaving: the examples document hint id 1.
        VmConfig forced;
        forced.delays = {{1, 5000}};
        diffAllVariants(*m, forced, std::string(name) + " forced");
    }
}

TEST(DecodeDiff, AppRegistryAgreesHardenedAndUnhardened)
{
    for (const apps::AppSpec &app : apps::allApps()) {
        apps::HardenOptions harden;
        apps::PreparedApp hardened = apps::prepareApp(app, harden);
        apps::HardenOptions plain_opts;
        plain_opts.applyConAir = false;
        apps::PreparedApp plain = apps::prepareApp(app, plain_opts);

        for (uint64_t seed : {1, 2}) {
            VmConfig buggy = app.buggyConfig;
            buggy.seed = seed;
            diffAllVariants(*hardened.module, buggy,
                            app.name + " hardened buggy seed " +
                                std::to_string(seed));
        }
        VmConfig clean = app.cleanConfig;
        clean.seed = 1;
        diffAllVariants(*hardened.module, clean,
                        app.name + " hardened clean");

        VmConfig buggy = app.buggyConfig;
        buggy.seed = 1;
        diffAllVariants(*plain.module, buggy, app.name + " unhardened");
    }
}

TEST(DecodeDiff, WholeProgramCheckpointModeAgrees)
{
    // The wp baseline exercises snapshot/restore, which rewinds the
    // block-id counters — the one case that must flush every
    // memory-handle cache.  Run a failing app under it on both engines.
    const apps::AppSpec *app = apps::findApp("MySQL1");
    ASSERT_NE(app, nullptr);
    apps::HardenOptions plain_opts;
    plain_opts.applyConAir = false;
    apps::PreparedApp plain = apps::prepareApp(*app, plain_opts);

    VmConfig cfg = app->buggyConfig;
    cfg.seed = 1;
    cfg.wpCheckpointInterval = 2000;
    cfg.wpMaxRecoveries = 4;
    diffAllVariants(*plain.module, cfg, "MySQL1 wp-checkpoint");
}

TEST(DecodeDiff, ChaosRollbackModeAgrees)
{
    // Chaos injection draws from its own RNG on every eligible step;
    // eligibility depends on the idempotent-window bookkeeping both
    // engines must maintain identically (DecodedInst::dirties vs the
    // interpreter-local predicate).
    const apps::AppSpec *app = apps::findApp("MySQL1");
    ASSERT_NE(app, nullptr);
    apps::HardenOptions harden;
    apps::PreparedApp hardened = apps::prepareApp(*app, harden);

    VmConfig cfg = app->cleanConfig;
    cfg.seed = 3;
    cfg.chaosRollbackEveryN = 200;
    diffAllVariants(*hardened.module, cfg, "MySQL1 chaos");
}

TEST(DecodeDiff, RecursionAndDeepCallsAgree)
{
    // Pre-decoded call records link callee bodies up front, including
    // recursion; make sure frames, alloca lifetimes, and the stack
    // cache invalidation on frame pops line up with the reference.
    auto m = compileC(R"(
int depth(int n) {
    int local[8];
    local[0] = n;
    if (n <= 0) { return local[0]; }
    int r = depth(n - 1);
    return r + local[0];
}
int worker(int x) {
    int acc = 0;
    int i = 0;
    while (i < 20) {
        acc = acc + depth(12);
        i = i + 1;
    }
    return acc;
}
int main() {
    int t = spawn(worker, 0);
    int mine = depth(30);
    join(t);
    print(mine);
    return 0;
}
)");
    ASSERT_TRUE(m);
    for (uint64_t seed : {1, 9}) {
        VmConfig cfg;
        cfg.seed = seed;
        diffAllVariants(*m, cfg, "recursion seed " + std::to_string(seed));
    }
}

} // namespace
} // namespace conair::vm
