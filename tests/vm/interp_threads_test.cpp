#include "tests/vm/vm_test_util.h"

namespace conair::vm {
namespace {

using testutil::runC;

TEST(InterpThreads, SpawnAndJoin)
{
    RunResult r = runC(R"(
int result;
int worker(int n) {
    result = n * 2;
    return 0;
}
int main() {
    int t = spawn(worker, 21);
    join(t);
    return result;
}
)");
    EXPECT_EQ(r.outcome, Outcome::Success);
    EXPECT_EQ(r.exitCode, 42);
    EXPECT_EQ(r.stats.threadsSpawned, 1u);
}

TEST(InterpThreads, ManyThreadsAccumulateUnderLock)
{
    RunResult r = runC(R"(
int total;
mutex m;
int worker(int n) {
    for (int i = 0; i < n; i++) {
        lock(m);
        total += 1;
        unlock(m);
    }
    return 0;
}
int main() {
    int t1 = spawn(worker, 100);
    int t2 = spawn(worker, 100);
    int t3 = spawn(worker, 100);
    join(t1); join(t2); join(t3);
    return total;
}
)");
    EXPECT_EQ(r.outcome, Outcome::Success);
    EXPECT_EQ(r.exitCode, 300);
}

TEST(InterpThreads, RacyIncrementLosesUpdates)
{
    // Without a lock, the interleaved read-modify-write must lose
    // updates under at least one seed — demonstrating the VM exposes
    // real races.
    const char *src = R"(
int total;
int worker(int n) {
    for (int i = 0; i < n; i++) {
        int tmp = total;
        yield();
        total = tmp + 1;
    }
    return 0;
}
int main() {
    int t1 = spawn(worker, 50);
    int t2 = spawn(worker, 50);
    join(t1); join(t2);
    return total;
}
)";
    bool lost = false;
    for (uint64_t seed = 1; seed <= 5 && !lost; ++seed) {
        VmConfig cfg;
        cfg.seed = seed;
        cfg.quantum = 3;
        RunResult r = runC(src, cfg);
        EXPECT_EQ(r.outcome, Outcome::Success);
        lost |= r.exitCode < 100;
    }
    EXPECT_TRUE(lost);
}

TEST(InterpThreads, MutexProvidesExclusion)
{
    // With the lock held across the read-modify-write, no update is
    // lost under any seed.
    const char *src = R"(
int total;
mutex m;
int worker(int n) {
    for (int i = 0; i < n; i++) {
        lock(m);
        int tmp = total;
        yield();
        total = tmp + 1;
        unlock(m);
    }
    return 0;
}
int main() {
    int t1 = spawn(worker, 30);
    int t2 = spawn(worker, 30);
    join(t1); join(t2);
    return total;
}
)";
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        VmConfig cfg;
        cfg.seed = seed;
        cfg.quantum = 3;
        RunResult r = runC(src, cfg);
        EXPECT_EQ(r.outcome, Outcome::Success) << seed;
        EXPECT_EQ(r.exitCode, 60) << seed;
    }
}

TEST(InterpThreads, ClassicDeadlockHangs)
{
    RunResult r = runC(R"(
mutex a;
mutex b;
int t1(int x) {
    lock(a);
    hint(1);
    lock(b);
    unlock(b);
    unlock(a);
    return 0;
}
int t2(int x) {
    lock(b);
    hint(2);
    lock(a);
    unlock(a);
    unlock(b);
    return 0;
}
int main() {
    int x = spawn(t1, 0);
    int y = spawn(t2, 0);
    join(x); join(y);
    return 0;
}
)",
                       [] {
                           VmConfig cfg;
                           cfg.delays = {{1, 500}, {2, 500}};
                           cfg.hangTimeout = 20'000;
                           return cfg;
                       }());
    EXPECT_EQ(r.outcome, Outcome::Hang);
}

TEST(InterpThreads, TimedLockTimesOutInsteadOfHanging)
{
    RunResult r = runC(R"(
mutex a;
mutex b;
int t1(int x) {
    lock(a);
    hint(1);
    int rc = timedlock(b, 2000);
    if (rc == 0) unlock(b);
    unlock(a);
    return 0;
}
int t2(int x) {
    lock(b);
    hint(2);
    int rc = timedlock(a, 2000);
    if (rc == 0) unlock(a);
    unlock(b);
    return 0;
}
int main() {
    int x = spawn(t1, 0);
    int y = spawn(t2, 0);
    join(x); join(y);
    return 0;
}
)",
                       [] {
                           VmConfig cfg;
                           cfg.delays = {{1, 500}, {2, 500}};
                           return cfg;
                       }());
    EXPECT_EQ(r.outcome, Outcome::Success);
}

TEST(InterpThreads, DelayRuleForcesOrdering)
{
    // The delayed thread must observe the other thread's write.
    const char *src = R"(
int flag;
int observed;
int writer(int x) {
    flag = 1;
    return 0;
}
int main() {
    int t = spawn(writer, 0);
    hint(7);
    observed = flag;
    join(t);
    return observed;
}
)";
    VmConfig with_delay;
    with_delay.delays = {{7, 10'000}};
    EXPECT_EQ(runC(src, with_delay).exitCode, 1);
}

TEST(InterpThreads, SleepAdvancesVirtualClock)
{
    RunResult r = runC(R"(
int main() {
    int before = time();
    sleep(5000);
    int after = time();
    return after - before >= 5000;
}
)");
    EXPECT_EQ(r.exitCode, 1);
}

TEST(InterpThreads, JoinUnknownThreadTraps)
{
    RunResult r = runC("int main() { join(99); return 0; }");
    EXPECT_EQ(r.outcome, Outcome::Trap);
}

TEST(InterpThreads, UnlockNotHeldTraps)
{
    RunResult r = runC(R"(
mutex m;
int main() { unlock(m); return 0; }
)");
    EXPECT_EQ(r.outcome, Outcome::Trap);
}

TEST(InterpThreads, SelfDeadlockHangs)
{
    VmConfig cfg;
    cfg.hangTimeout = 10'000;
    RunResult r = runC(R"(
mutex m;
int main() { lock(m); lock(m); return 0; }
)",
                       cfg);
    EXPECT_EQ(r.outcome, Outcome::Hang);
}

TEST(InterpThreads, HeapCellCanActAsMutex)
{
    RunResult r = runC(R"(
int total;
int* locks;
int worker(int n) {
    for (int i = 0; i < n; i++) {
        lock(locks);
        total += 1;
        unlock(locks);
    }
    return 0;
}
int main() {
    locks = malloc(1);
    int t1 = spawn(worker, 40);
    int t2 = spawn(worker, 40);
    join(t1); join(t2);
    return total;
}
)");
    EXPECT_EQ(r.outcome, Outcome::Success);
    EXPECT_EQ(r.exitCode, 80);
}

} // namespace
} // namespace conair::vm
