#include "tests/vm/vm_test_util.h"

namespace conair::vm {
namespace {

using testutil::runC;

TEST(InterpBasic, ExitCode)
{
    RunResult r = runC("int main() { return 42; }");
    EXPECT_EQ(r.outcome, Outcome::Success);
    EXPECT_EQ(r.exitCode, 42);
}

TEST(InterpBasic, ArithmeticAndLoops)
{
    RunResult r = runC(R"(
int main() {
    int acc = 0;
    for (int i = 1; i <= 10; i++) acc += i;
    return acc;
}
)");
    EXPECT_EQ(r.exitCode, 55);
}

TEST(InterpBasic, DoubleArithmetic)
{
    RunResult r = runC(R"(
int main() {
    double x = 1.5;
    double y = x * 4.0 - 1.0;   // 5.0
    print(y, "\n");
    return y > 4.9 && y < 5.1;
}
)");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_EQ(r.output, "5\n");
}

TEST(InterpBasic, FunctionsAndRecursion)
{
    RunResult r = runC(R"(
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }
)");
    EXPECT_EQ(r.exitCode, 144);
}

TEST(InterpBasic, GlobalState)
{
    RunResult r = runC(R"(
int counter = 10;
int bump(int by) { counter += by; return counter; }
int main() {
    bump(5);
    bump(1);
    return counter;
}
)");
    EXPECT_EQ(r.exitCode, 16);
}

TEST(InterpBasic, PrintFormatting)
{
    RunResult r = runC(R"(
int main() {
    print("n=", 7, " f=", 2.5, " done\n");
    return 0;
}
)");
    EXPECT_EQ(r.output, "n=7 f=2.5 done\n");
}

TEST(InterpBasic, AssertPassAndFail)
{
    EXPECT_EQ(runC("int main() { assert(1 == 1); return 0; }").outcome,
              Outcome::Success);
    RunResult r = runC("int main() { assert(1 == 2); return 0; }");
    EXPECT_EQ(r.outcome, Outcome::AssertFail);
    EXPECT_NE(r.failureMsg.find("assert failed"), std::string::npos);
    EXPECT_NE(r.failureTag.find("assert.main."), std::string::npos);
}

TEST(InterpBasic, OracleFailIsDistinct)
{
    RunResult r = runC("int main() { oracle(0); return 0; }");
    EXPECT_EQ(r.outcome, Outcome::OracleFail);
}

TEST(InterpBasic, DivisionByZeroTraps)
{
    RunResult r = runC("int main() { int z = 0; return 5 / z; }");
    EXPECT_EQ(r.outcome, Outcome::Trap);
}

TEST(InterpBasic, ShortCircuitProtectsNullDeref)
{
    RunResult r = runC(R"(
int* gp;
int main() {
    if (gp && gp[0] == 1) return 1;
    return 2;
}
)");
    EXPECT_EQ(r.outcome, Outcome::Success);
    EXPECT_EQ(r.exitCode, 2);
}

TEST(InterpBasic, LogicalOperatorsAsValues)
{
    RunResult r = runC(R"(
int main() {
    int a = 3 > 2;        // 1
    int b = (a && 0) + (a || 0) + !a; // 0 + 1 + 0
    return a * 10 + b;
}
)");
    EXPECT_EQ(r.exitCode, 11);
}

TEST(InterpBasic, TimeIsMonotonicAndPositive)
{
    RunResult r = runC(R"(
int main() {
    int t1 = time();
    int t2 = time();
    return t1 > 0 && t2 >= t1;
}
)");
    EXPECT_EQ(r.exitCode, 1);
}

TEST(InterpBasic, InstructionBudgetTimeout)
{
    VmConfig cfg;
    cfg.maxSteps = 10'000;
    RunResult r = runC("int main() { while (1) {} return 0; }", cfg);
    EXPECT_EQ(r.outcome, Outcome::Timeout);
}

TEST(InterpBasic, DeterministicAcrossRuns)
{
    const char *src = R"(
int main() {
    int acc = 0;
    for (int i = 0; i < 100; i++) acc += rand(10);
    return acc;
}
)";
    RunResult a = runC(src);
    RunResult b = runC(src);
    EXPECT_EQ(a.exitCode, b.exitCode);
    EXPECT_EQ(a.stats.steps, b.stats.steps);
}

TEST(InterpBasic, NegativeNumbersAndModulo)
{
    RunResult r = runC(R"(
int main() {
    int a = -17;
    int b = a % 5;      // -2 in C semantics
    int c = a / 5;      // -3
    return b * 100 + c; // -203
}
)");
    EXPECT_EQ(r.exitCode, -203);
}

TEST(InterpBasic, ImplicitIntDoubleConversions)
{
    RunResult r = runC(R"(
double scale(int x) { return x * 1.5; }
int main() {
    int y = scale(4);  // 6.0 -> 6
    return y;
}
)");
    EXPECT_EQ(r.exitCode, 6);
}

} // namespace
} // namespace conair::vm
