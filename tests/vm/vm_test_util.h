/**
 * @file
 * Shared helpers for VM tests: compile MiniC or parse MiniIR, then run.
 */
#pragma once

#include <gtest/gtest.h>

#include "frontend/compile.h"
#include "ir/parser.h"
#include "vm/interp.h"

namespace conair::vm::testutil {

inline std::unique_ptr<ir::Module>
compileC(const std::string &src)
{
    DiagEngine d;
    auto m = fe::compileMiniC(src, d);
    EXPECT_TRUE(m) << d.str();
    return m;
}

inline std::unique_ptr<ir::Module>
parseIR(const std::string &text)
{
    DiagEngine d;
    auto m = ir::parseModule(text, d);
    EXPECT_TRUE(m) << d.str();
    return m;
}

inline RunResult
runC(const std::string &src, VmConfig cfg = {})
{
    auto m = compileC(src);
    if (!m)
        return {};
    return runProgram(*m, cfg);
}

} // namespace conair::vm::testutil
