/**
 * @file
 * Scheduler and control-transfer semantics: policy determinism, delay
 * rules, and the phi parallel-copy rule.
 */
#include "tests/vm/vm_test_util.h"

namespace conair::vm {
namespace {

using testutil::parseIR;
using testutil::runC;

TEST(InterpSched, PhiParallelCopySwap)
{
    // The classic swap: both phis must read the *pre-jump* values.
    // A naive sequential phi evaluation would compute b = a(new).
    RunResult r = [&] {
        auto m = parseIR(R"(
func @main() -> i64 {
entry:
    br loop
loop:
    %a = phi i64 [1, entry], [%b, loop]
    %b = phi i64 [2, entry], [%a, loop]
    %i = phi i64 [0, entry], [%n, loop]
    %n = add %i, 1
    %c = icmp.slt %n, 5
    condbr %c, loop, done
done:
    %r = mul %a, 10
    %s = add %r, %b
    ret %s
}
)");
        return runProgram(*m);
    }();
    ASSERT_EQ(r.outcome, Outcome::Success);
    // After 5 iterations the pair has swapped 4 times: (a,b) = (1,2)
    // -> (2,1) -> (1,2) -> (2,1) -> (1,2).
    EXPECT_EQ(r.exitCode, 12);
}

TEST(InterpSched, RoundRobinIsSeedIndependent)
{
    const char *src = R"(
int order[4];
int next_slot;
int worker(int id) {
    order[next_slot] = id;     // racy by design; RR makes it stable
    next_slot = next_slot + 1;
    return 0;
}
int main() {
    int a = spawn(worker, 1);
    int b = spawn(worker, 2);
    join(a); join(b);
    return order[0] * 10 + order[1];
}
)";
    VmConfig cfg;
    cfg.policy = SchedPolicy::RoundRobin;
    cfg.quantum = 1000;
    int64_t first = runC(src, cfg).exitCode;
    for (uint64_t seed = 2; seed <= 5; ++seed) {
        cfg.seed = seed;
        EXPECT_EQ(runC(src, cfg).exitCode, first) << seed;
    }
}

TEST(InterpSched, RandomPolicyVariesWithSeed)
{
    const char *src = R"(
int winner;
int worker(int id) {
    if (winner == 0) { winner = id; }
    return 0;
}
int main() {
    int a = spawn(worker, 1);
    int b = spawn(worker, 2);
    join(a); join(b);
    return winner;
}
)";
    // Across many seeds both orderings must appear.
    bool one = false, two = false;
    for (uint64_t seed = 1; seed <= 40 && !(one && two); ++seed) {
        VmConfig cfg;
        cfg.seed = seed;
        cfg.quantum = 3;
        int64_t w = runC(src, cfg).exitCode;
        one |= w == 1;
        two |= w == 2;
    }
    EXPECT_TRUE(one);
    EXPECT_TRUE(two);
}

TEST(InterpSched, DelayRuleMaxFiresLimitsEffect)
{
    const char *src = R"(
int main() {
    int t0 = time();
    hint(1);
    int t1 = time();
    hint(1);
    int t2 = time();
    int first = t1 - t0;
    int second = t2 - t1;
    return (first >= 1000) * 10 + (second >= 1000);
}
)";
    // Unlimited: both hint executions stall.
    VmConfig unlimited;
    unlimited.delays = {{1, 1'000, 0}};
    EXPECT_EQ(runC(src, unlimited).exitCode, 11);
    // maxFires = 1: only the first stalls.
    VmConfig once;
    once.delays = {{1, 1'000, 1}};
    EXPECT_EQ(runC(src, once).exitCode, 10);
}

TEST(InterpSched, HintsWithoutRulesAreFree)
{
    const char *src = R"(
int main() {
    int t0 = time();
    hint(42);
    hint(43);
    int t1 = time();
    return t1 - t0 < 10;
}
)";
    EXPECT_EQ(runC(src, {}).exitCode, 1);
}

TEST(InterpSched, VirtualClockAdvancesThroughSleepGaps)
{
    // With every thread asleep, the clock jumps rather than spins.
    const char *src = R"(
int main() {
    sleep(100000);
    return time() > 100000;
}
)";
    RunResult r = runC(src, {});
    EXPECT_EQ(r.exitCode, 1);
    // The jump must not burn instruction budget.
    EXPECT_LT(r.stats.steps, 1000u);
}

TEST(InterpSched, YieldRotatesFairly)
{
    const char *src = R"(
int turns[2];
int spinner(int id) {
    for (int i = 0; i < 50; i++) {
        turns[id] = turns[id] + 1;
        yield();
    }
    return 0;
}
int main() {
    int a = spawn(spinner, 0);
    int b = spawn(spinner, 1);
    join(a); join(b);
    return turns[0] == 50 && turns[1] == 50;
}
)";
    EXPECT_EQ(runC(src, {}).exitCode, 1);
}

} // namespace
} // namespace conair::vm
