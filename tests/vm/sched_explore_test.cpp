/**
 * @file
 * Exploration-policy semantics: PCT and PreemptBound determinism,
 * seed-driven schedule diversity, and the per-thread RNG stream split
 * (decision streams must be uncorrelated across threads and must not
 * perturb the shared scheduler stream).
 */
#include <set>

#include "support/rng.h"
#include "tests/vm/vm_test_util.h"

namespace conair::vm {
namespace {

using testutil::runC;

/** Three threads race unsynchronised increments and publish the
 *  interleaving-visible order; any scheduling difference shows up in
 *  the output. */
const char *kRacyTrace = R"(
int order[16];
int next_slot;
int worker(int id) {
    for (int i = 0; i < 4; i++) {
        int s = next_slot;          // racy read-modify-write
        order[s] = id * 10 + i;
        next_slot = s + 1;
    }
    return 0;
}
int main() {
    int a = spawn(worker, 1);
    int b = spawn(worker, 2);
    int c = spawn(worker, 3);
    join(a); join(b); join(c);
    for (int i = 0; i < next_slot; i++) { print(order[i], "."); }
    print("\n");
    return 0;
}
)";

VmConfig
pctConfig(uint64_t seed, uint64_t depth)
{
    VmConfig cfg;
    cfg.policy = SchedPolicy::Pct;
    cfg.seed = seed;
    cfg.pctDepth = depth;
    cfg.pctHorizon = 200;
    return cfg;
}

TEST(SchedExplore, PctIsDeterministic)
{
    for (uint64_t seed : {1ull, 7ull, 42ull}) {
        RunResult a = runC(kRacyTrace, pctConfig(seed, 3));
        RunResult b = runC(kRacyTrace, pctConfig(seed, 3));
        ASSERT_EQ(a.outcome, Outcome::Success);
        EXPECT_EQ(a.output, b.output) << "seed " << seed;
        EXPECT_EQ(a.clock, b.clock) << "seed " << seed;
        EXPECT_EQ(a.stats.steps, b.stats.steps) << "seed " << seed;
        EXPECT_EQ(a.stats.schedTicks, b.stats.schedTicks)
            << "seed " << seed;
    }
}

TEST(SchedExplore, PctSeedsExploreDistinctInterleavings)
{
    std::set<std::string> outputs;
    for (uint64_t seed = 1; seed <= 40; ++seed) {
        RunResult r = runC(kRacyTrace, pctConfig(seed, 3));
        ASSERT_EQ(r.outcome, Outcome::Success) << "seed " << seed;
        outputs.insert(r.output);
    }
    // Random priorities + change points must vary the schedule; a
    // degenerate scheduler would produce one interleaving for all
    // seeds.
    EXPECT_GT(outputs.size(), 3u);
}

TEST(SchedExplore, PctDepthOneNeverChangesPriorities)
{
    // d=1 means zero change points: the schedule is decided purely by
    // the initial priorities, so two depths with the same seed agree
    // until a change point fires — and d=1 runs must be reproducible
    // across repeated execution like any other schedule.
    RunResult a = runC(kRacyTrace, pctConfig(9, 1));
    RunResult b = runC(kRacyTrace, pctConfig(9, 1));
    ASSERT_EQ(a.outcome, Outcome::Success);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.clock, b.clock);
}

TEST(SchedExplore, PreemptBoundIsDeterministic)
{
    VmConfig cfg;
    cfg.policy = SchedPolicy::PreemptBound;
    cfg.seed = 13;
    cfg.preemptBound = 2;
    cfg.pctHorizon = 200;
    RunResult a = runC(kRacyTrace, cfg);
    RunResult b = runC(kRacyTrace, cfg);
    ASSERT_EQ(a.outcome, Outcome::Success);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.clock, b.clock);
    EXPECT_EQ(a.stats.steps, b.stats.steps);
}

TEST(SchedExplore, PreemptBoundSeedsVarySchedules)
{
    std::set<std::string> outputs;
    for (uint64_t seed = 1; seed <= 40; ++seed) {
        VmConfig cfg;
        cfg.policy = SchedPolicy::PreemptBound;
        cfg.seed = seed;
        cfg.preemptBound = 2;
        cfg.pctHorizon = 200;
        RunResult r = runC(kRacyTrace, cfg);
        ASSERT_EQ(r.outcome, Outcome::Success) << "seed " << seed;
        outputs.insert(r.output);
    }
    EXPECT_GT(outputs.size(), 1u);
}

TEST(SchedExplore, PctEngineDifferential)
{
    // The Decoded and Reference engines must agree tick for tick on
    // exploration schedules too (the campaign's oracle 3).
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        VmConfig dec = pctConfig(seed, 3);
        VmConfig ref = dec;
        ref.engine = ExecEngine::Reference;
        RunResult a = runC(kRacyTrace, dec);
        RunResult b = runC(kRacyTrace, ref);
        EXPECT_EQ(a.output, b.output) << "seed " << seed;
        EXPECT_EQ(a.clock, b.clock) << "seed " << seed;
        EXPECT_EQ(a.stats.steps, b.stats.steps) << "seed " << seed;
    }
}

//
// The per-thread decision-stream split (Interp::newThread):
// seed ^ (golden-ratio * (tid + 1)), finished by reseed()'s splitmix.
//

Rng
threadStream(uint64_t seed, uint32_t tid)
{
    Rng r(0);
    r.reseed(seed ^ (0x9e3779b97f4a7c15ull * (uint64_t(tid) + 1)));
    return r;
}

TEST(SchedExplore, ThreadDecisionStreamsAreUncorrelated)
{
    // Two threads' streams must not share draws: equal values at the
    // same position would correlate concurrent back-off decisions.
    const int kDraws = 4096;
    for (uint64_t seed : {0ull, 1ull, 99ull}) {
        Rng a = threadStream(seed, 0);
        Rng b = threadStream(seed, 1);
        int collisions = 0;
        int bit_agree = 0;
        for (int i = 0; i < kDraws; ++i) {
            uint64_t x = a.next(), y = b.next();
            collisions += x == y;
            bit_agree += __builtin_popcountll(~(x ^ y));
        }
        EXPECT_EQ(collisions, 0) << "seed " << seed;
        // Independent 64-bit streams agree on ~50% of bits; allow a
        // generous band around it.
        double frac = double(bit_agree) / (64.0 * kDraws);
        EXPECT_GT(frac, 0.45) << "seed " << seed;
        EXPECT_LT(frac, 0.55) << "seed " << seed;
    }
}

TEST(SchedExplore, ThreadStreamsAreNotShiftedCopies)
{
    // A shared-stream bug often shows up as one thread's sequence
    // being a lagged copy of another's; scan a window of offsets.
    Rng a = threadStream(7, 0);
    std::vector<uint64_t> va, vb;
    for (int i = 0; i < 256; ++i)
        va.push_back(a.next());
    Rng b = threadStream(7, 1);
    for (int i = 0; i < 256; ++i)
        vb.push_back(b.next());
    for (int lag = 0; lag < 64; ++lag)
        for (int i = 0; i + lag < 256; ++i)
            ASSERT_NE(va[i + lag], vb[i])
                << "stream 1 is stream 0 shifted by " << lag;
}

TEST(SchedExplore, BackoffDrawsDoNotPerturbScheduler)
{
    // Two programs, identical but for one extra back-off draw in one
    // thread, must see identical *scheduler* decisions under Random
    // policy: decision streams are per-thread, so recovery frequency
    // cannot shift the global interleaving.  sleep() goes through the
    // scheduler only (no thread-local draw), so this pins the split
    // indirectly: the same seed gives the same schedule whether or not
    // any thread consumed thread-local randomness.
    VmConfig cfg;
    cfg.policy = SchedPolicy::Random;
    cfg.seed = 21;
    cfg.quantum = 10;
    RunResult a = runC(kRacyTrace, cfg);
    RunResult b = runC(kRacyTrace, cfg);
    ASSERT_EQ(a.outcome, Outcome::Success);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.clock, b.clock);
}

} // namespace
} // namespace conair::vm
