/**
 * @file
 * Outcome naming: every enumerator has a distinct printable name, and
 * operator<< streams it (so EXPECT_EQ failures print "segfault", not a
 * raw integer).
 */
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "vm/stats.h"

namespace conair::vm {
namespace {

const Outcome kAll[] = {
    Outcome::Success, Outcome::AssertFail, Outcome::OracleFail,
    Outcome::Segfault, Outcome::Hang,      Outcome::Timeout,
    Outcome::Trap,
};

TEST(Outcome, EveryValueHasADistinctName)
{
    std::set<std::string> names;
    for (Outcome o : kAll) {
        std::string name = outcomeName(o);
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "unknown") << int(o);
        names.insert(name);
    }
    EXPECT_EQ(names.size(), std::size(kAll));
}

TEST(Outcome, ExactNames)
{
    EXPECT_STREQ(outcomeName(Outcome::Success), "success");
    EXPECT_STREQ(outcomeName(Outcome::AssertFail), "assert-fail");
    EXPECT_STREQ(outcomeName(Outcome::OracleFail), "oracle-fail");
    EXPECT_STREQ(outcomeName(Outcome::Segfault), "segfault");
    EXPECT_STREQ(outcomeName(Outcome::Hang), "hang");
    EXPECT_STREQ(outcomeName(Outcome::Timeout), "timeout");
    EXPECT_STREQ(outcomeName(Outcome::Trap), "trap");
}

TEST(Outcome, StreamOperatorMatchesOutcomeName)
{
    for (Outcome o : kAll) {
        std::ostringstream os;
        os << o;
        EXPECT_EQ(os.str(), outcomeName(o));
    }
}

} // namespace
} // namespace conair::vm
