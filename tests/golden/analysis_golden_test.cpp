/**
 * @file
 * Golden regression test for the static ConAir analysis numbers.
 *
 * Pins, for every registered kernel, the Table 4 failure-site counts
 * (per kind) and the Table 6 optimizer picture: re-execution points
 * with the §4.2 optimizer on and off, plus the sites it drops.  These
 * numbers are pure functions of the kernel sources and the analysis —
 * any drift means either an intentional analysis change (re-bless with
 * `analysis_golden_test --update`) or an accidental regression.
 *
 * The golden file lives next to this test (GOLDEN_DIR is injected by
 * CMake) so updates are reviewed like any other source change.  A
 * mismatch prints a unified diff plus the exact re-bless command
 * (tests/support/golden_util.h).
 */
#include <gtest/gtest.h>

#include "apps/harness.h"
#include "support/str.h"
#include "tests/support/golden_util.h"

namespace conair::apps {
namespace {

std::string
goldenPath()
{
    return std::string(GOLDEN_DIR) + "/analysis.golden";
}

/** One kernel's line in the golden file. */
std::string
analysisLine(const AppSpec &app)
{
    HardenOptions opt;
    PreparedApp with = prepareApp(app, opt);
    opt.conair.optimize = false;
    PreparedApp without = prepareApp(app, opt);

    const ca::ConAirReport &r = with.report;
    return strfmt("%s assert=%u out=%u seg=%u dead=%u "
                  "points=%u dead_points=%u nondead_points=%u "
                  "opt_dropped=%u points_noopt=%u",
                  app.name.c_str(), r.identified.assertion,
                  r.identified.wrongOutput, r.identified.segfault,
                  r.identified.deadlock, r.staticReexecPoints,
                  r.deadlockPoints, r.nonDeadlockPoints,
                  r.sitesDroppedByOptimizer,
                  without.report.staticReexecPoints);
}

std::string
currentGolden()
{
    std::string text;
    for (const AppSpec &app : allApps())
        text += analysisLine(app) + "\n";
    return text;
}

TEST(AnalysisGolden, MatchesCheckedInNumbers)
{
    // Each golden line is one kernel, so the unified diff printed on
    // a mismatch names the drifted kernel directly.
    testutil::checkGolden(currentGolden(), goldenPath());
}

/** The optimizer must actually earn its keep on the golden numbers:
 *  with it off, every kernel needs at least as many points. */
TEST(AnalysisGolden, OptimizerNeverAddsPoints)
{
    for (const AppSpec &app : allApps()) {
        HardenOptions opt;
        PreparedApp with = prepareApp(app, opt);
        opt.conair.optimize = false;
        PreparedApp without = prepareApp(app, opt);
        EXPECT_LE(with.report.staticReexecPoints,
                  without.report.staticReexecPoints)
            << app.name;
        // Every point serves at least one site kind; a point shared by
        // a deadlock and a non-deadlock site is counted in both
        // buckets, so the sum may exceed the distinct-point total.
        EXPECT_LE(with.report.deadlockPoints,
                  with.report.staticReexecPoints)
            << app.name;
        EXPECT_LE(with.report.nonDeadlockPoints,
                  with.report.staticReexecPoints)
            << app.name;
        EXPECT_GE(with.report.deadlockPoints +
                      with.report.nonDeadlockPoints,
                  with.report.staticReexecPoints)
            << app.name;
    }
}

} // namespace
} // namespace conair::apps

int
main(int argc, char **argv)
{
    return conair::testutil::goldenMain(argc, argv);
}
