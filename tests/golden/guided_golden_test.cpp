/**
 * @file
 * Golden regression test for guided-vs-blind search efficiency.
 *
 * Pins, for a fixed set of kernels and fixed reduced budgets, the
 * seeds-to-first-failure of the blind pct:d2 matrix against the
 * coverage-guided search: the blind ordinal, the guided ordinal, the
 * first failing schedule's token (change points and all), and the
 * corpus size at the moment the search stopped.  The whole guided
 * pipeline is deterministic and worker-count independent
 * (tests/explore/guided_test.cpp), so these numbers are pure
 * functions of the kernels and the search — any drift means either an
 * intentional search change (re-bless with
 * `guided_golden_test --update`) or an accidental regression in the
 * coverage fold, the mutation operators, or the energy schedule.
 *
 * The last line pins the challenge kernel: Relay3's two-window order
 * violation must stay invisible to the blind pct:d2 probe (blind=-)
 * while guided walks its corpus into the failure within the challenge
 * budget.
 *
 * The golden file lives next to this test (GOLDEN_DIR is injected by
 * CMake).  A mismatch prints a unified diff plus the exact re-bless
 * command (tests/support/golden_util.h).
 */
#include <gtest/gtest.h>

#include "apps/harness.h"
#include "explore/campaign.h"
#include "support/str.h"
#include "tests/support/golden_util.h"

namespace conair::explore {
namespace {

std::string
goldenPath()
{
    return std::string(GOLDEN_DIR) + "/guided.golden";
}

/** One guided-vs-blind line.  "blind=-" = the matrix found nothing
 *  within its budget (the challenge shape). */
std::string
guidedLine(const TargetReport &tr)
{
    std::string blind =
        tr.foundFailure
            ? strfmt("%llu", (unsigned long long)
                                 tr.firstFailureScheduleOrdinal)
            : "-";
    const GuidedSummary &gs = tr.guided;
    if (!gs.foundFailure)
        return strfmt("%s blind=%s guided=- corpus=%llu",
                      tr.name.c_str(), blind.c_str(),
                      (unsigned long long)gs.corpusEntries);
    return strfmt("%s blind=%s guided=%llu first=%s corpus=%llu",
                  tr.name.c_str(), blind.c_str(),
                  (unsigned long long)gs.seedsToFirstFailure,
                  gs.firstFailure.token().c_str(),
                  (unsigned long long)gs.corpusEntries);
}

CampaignReport
runGuidedCampaign(const std::vector<std::string> &names, unsigned seeds,
                  uint64_t budget)
{
    std::vector<apps::CampaignApp> prepared;
    std::vector<Target> targets;
    for (const std::string &n : names) {
        const apps::AppSpec *spec = apps::findApp(n);
        EXPECT_NE(spec, nullptr) << n;
        prepared.push_back(apps::prepareCampaignApp(*spec));
    }
    for (const apps::CampaignApp &app : prepared)
        targets.push_back(apps::campaignTarget(app));

    CampaignOptions opts;
    opts.policies = {{vm::SchedPolicy::Pct, 2}};
    opts.seedsPerPolicy = seeds;
    opts.stopAfterFailures = 1;
    opts.maxSteps = 2'000'000;
    opts.searchMode = SearchMode::Guided;
    opts.guidedBudget = budget;
    return runCampaign(targets, opts);
}

std::string
currentGolden()
{
    // Reduced fixed budgets: blind pct:d2 x 32 seeds, guided budget
    // 96 — enough for every kernel here, small enough for the quick
    // label.  The challenge kernel gets the real probe shape (60
    // blind seeds, the 250-schedule challenge budget).
    std::string text = "blind pct:d2 x 32 seeds, guided budget 96\n";
    CampaignReport rep = runGuidedCampaign(
        {"FFT", "HTTrack", "MozillaJS", "Transmission", "SQLite",
         "ZSNES"},
        32, 96);
    for (const TargetReport &tr : rep.targets)
        text += guidedLine(tr) + "\n";

    text += "challenge: blind pct:d2 x 60 seeds, guided budget 250\n";
    CampaignReport crep = runGuidedCampaign({"Relay3"}, 60, 250);
    for (const TargetReport &tr : crep.targets)
        text += guidedLine(tr) + "\n";
    return text;
}

TEST(GuidedGolden, SeedsToFirstFailureMatchCheckedInNumbers)
{
    // Each golden line is one kernel, so the unified diff printed on
    // a mismatch names the drifted kernel directly.
    testutil::checkGolden(currentGolden(), goldenPath());
}

} // namespace
} // namespace conair::explore

int
main(int argc, char **argv)
{
    return conair::testutil::goldenMain(argc, argv);
}
