/**
 * @file
 * Shared plumbing for the record-and-replay tests: compile a kernel,
 * find a failing campaign schedule for it, and record that failure
 * with a replay-grade (Grow) recorder.
 */
#pragma once

#include <gtest/gtest.h>

#include "apps/harness.h"
#include "explore/campaign.h"
#include "obs/replay/replay_log.h"
#include "vm/interp.h"

namespace conair::obs::replay::testutil {

/** One recorded failing run of a kernel's unhardened build. */
struct RecordedFailure
{
    apps::CampaignApp app;
    explore::Target target;
    explore::ScheduleSpec spec;
    vm::VmConfig cfg; ///< the recorded run's exact config (sans recorder)
    vm::RunResult result;
    ReplayLog log;
};

/** The campaign base config for (target, spec) — mirrors
 *  explore::runOneSchedule. */
inline vm::VmConfig
campaignConfig(const explore::Target &t, const explore::ScheduleSpec &s)
{
    vm::VmConfig cfg;
    s.applyTo(cfg);
    cfg.pctHorizon = t.horizon;
    cfg.quantum = t.quantum;
    cfg.maxSteps = 2'000'000;
    return cfg;
}

inline bool
isFailure(const vm::RunResult &r)
{
    return r.outcome != vm::Outcome::Success &&
           r.outcome != vm::Outcome::Timeout;
}

/**
 * Compiles @p name, scans PCT (d2, d3) and Random seeds for a failing
 * schedule of the unhardened build, then re-runs it with a Grow
 * recorder (diagnosis mode when @p diagMode) and builds the ReplayLog.
 * Fails the current test when no failing schedule exists in the scan
 * budget (all ten kernels have one well inside it).
 */
inline bool
recordFailure(const char *name, RecordedFailure &out,
              bool diagMode = false,
              vm::ExecEngine engine = vm::ExecEngine::Decoded)
{
    const apps::AppSpec *spec = apps::findApp(name);
    if (!spec) {
        ADD_FAILURE() << "unknown app " << name;
        return false;
    }
    out.app = apps::prepareCampaignApp(*spec);
    out.target = apps::campaignTarget(out.app);

    // Policy-major scan in the campaign's default matrix order, so the
    // schedule found here is the campaign's first failure (every
    // kernel's seed budget is within 250 — see BENCH_explore.json).
    std::vector<explore::ScheduleSpec> probes;
    for (auto [policy, depth] :
         {std::pair<vm::SchedPolicy, uint32_t>{vm::SchedPolicy::Pct, 2},
          {vm::SchedPolicy::Pct, 3},
          {vm::SchedPolicy::PreemptBound, 2},
          {vm::SchedPolicy::Random, 0}})
        for (uint64_t seed = 1; seed <= 250; ++seed)
            probes.push_back({policy, seed, depth});
    for (const explore::ScheduleSpec &s : probes) {
        vm::VmConfig cfg = campaignConfig(out.target, s);
        cfg.engine = engine;
        vm::RunResult probe = vm::runProgram(*out.target.plain, cfg);
        if (!isFailure(probe))
            continue;

        // Found one: record it replay-grade.
        FlightRecorder rec(4096, RecorderMode::Grow);
        cfg.recorder = &rec;
        cfg.recordSharedAccesses = diagMode;
        out.result = vm::runProgram(*out.target.plain, cfg);
        cfg.recorder = nullptr;
        cfg.recordSharedAccesses = false;
        out.cfg = cfg;
        out.spec = s;

        std::string err;
        if (!buildReplayLog(name, s.token(), cfg, rec, out.result,
                            out.log, err)) {
            ADD_FAILURE() << name << ": buildReplayLog failed: " << err;
            return false;
        }
        return true;
    }
    ADD_FAILURE() << name << ": no failing schedule in scan budget";
    return false;
}

} // namespace conair::obs::replay::testutil
