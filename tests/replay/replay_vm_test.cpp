/**
 * @file
 * Record-and-replay against the real VM: a recorded kernel failure
 * replays tick- and memDigest-identically on every engine, re-records
 * byte-identically, replays cross-engine (record under Reference,
 * replay under Fused), and refuses to replay from a wrapped ring.
 */
#include <gtest/gtest.h>

#include "obs/replay/replay_export.h"
#include "obs/replay/replay_run.h"
#include "tests/replay/replay_test_util.h"

namespace conair::obs::replay {
namespace {

using testutil::RecordedFailure;

TEST(ReplayVm, ReplayIsFaithfulOnAllEngines)
{
    RecordedFailure rf;
    ASSERT_TRUE(testutil::recordFailure("ZSNES", rf));
    ASSERT_FALSE(rf.log.switches.empty());

    for (vm::ExecEngine e :
         {vm::ExecEngine::Decoded, vm::ExecEngine::Reference,
          vm::ExecEngine::Fused}) {
        ReplayRun rr = replayLog(*rf.target.plain, rf.log, e);
        EXPECT_TRUE(rr.faithful)
            << engineName(e) << ": " << rr.mismatch;
        EXPECT_EQ(vm::outcomeName(rr.result.outcome), rf.log.outcome)
            << engineName(e);
        EXPECT_EQ(rr.result.memDigest, rf.log.memDigest)
            << engineName(e);
        EXPECT_EQ(rr.result.stats.steps, rf.log.finalSteps)
            << engineName(e);
    }
}

TEST(ReplayVm, ReplayedRunReRecordsByteIdentically)
{
    RecordedFailure rf;
    ASSERT_TRUE(testutil::recordFailure("ZSNES", rf,
                                        /*diagMode=*/true));
    ASSERT_GT(rf.log.accessCount, 0u);

    // Observe the replay with its own replay-grade recorder; all three
    // referees (fingerprint, lock order, access digest) stay on.
    FlightRecorder rec(4096, RecorderMode::Grow);
    ReplayInstruments ins;
    ins.recorder = &rec;
    ins.recordSharedAccesses = true;
    ins.checkLockOrder = true;
    ReplayRun rr = replayLog(*rf.target.plain, rf.log,
                             rf.log.engine, &ins);
    ASSERT_TRUE(rr.faithful) << rr.mismatch;

    // Rebuilding a log from the replayed run reproduces the original
    // recording byte for byte.
    ReplayLog relog;
    std::string err;
    ASSERT_TRUE(buildReplayLog(rf.log.program, rf.log.scheduleToken,
                               rf.cfg, rec, rr.result, relog, err))
        << err;
    EXPECT_EQ(relog.serialize(), rf.log.serialize());
}

TEST(ReplayVm, CrossEngineRecordReferenceReplayFused)
{
    RecordedFailure rf;
    ASSERT_TRUE(testutil::recordFailure("ZSNES", rf,
                                        /*diagMode=*/false,
                                        vm::ExecEngine::Reference));
    EXPECT_EQ(rf.log.engine, vm::ExecEngine::Reference);

    ReplayRun rr =
        replayLog(*rf.target.plain, rf.log, vm::ExecEngine::Fused);
    EXPECT_TRUE(rr.faithful) << rr.mismatch;
}

TEST(ReplayVm, TolerantReplayOfFullListReproduces)
{
    RecordedFailure rf;
    ASSERT_TRUE(testutil::recordFailure("ZSNES", rf));
    vm::RunResult r = replayTolerant(*rf.target.plain, rf.log,
                                     rf.log.switches,
                                     vm::ExecEngine::Decoded);
    EXPECT_EQ(vm::outcomeName(r.outcome), rf.log.outcome);
    EXPECT_EQ(r.failureTag, rf.log.failureTag);
}

TEST(ReplayVm, StrictReplayFlagsPerturbedLog)
{
    RecordedFailure rf;
    ASSERT_TRUE(testutil::recordFailure("ZSNES", rf));

    // A tampered fingerprint must be reported, not shrugged off.
    ReplayLog tampered = rf.log;
    tampered.finalSteps += 1;
    ReplayRun rr = replayLog(*rf.target.plain, tampered,
                             vm::ExecEngine::Decoded);
    EXPECT_FALSE(rr.faithful);
    EXPECT_NE(rr.mismatch.find("steps"), std::string::npos)
        << rr.mismatch;

    // A switch to a thread that cannot run at that point is a strict
    // divergence (tolerant mode exists for exactly this).
    ASSERT_FALSE(rf.log.switches.empty());
    ReplayLog broken = rf.log;
    broken.switches[0].tid = 9999;
    rr = replayLog(*rf.target.plain, broken, vm::ExecEngine::Decoded);
    EXPECT_FALSE(rr.faithful);
}

TEST(ReplayVm, WrappedRingRecordingRefusesToBecomeALog)
{
    RecordedFailure rf;
    ASSERT_TRUE(testutil::recordFailure("ZSNES", rf));

    // Re-run the same failing schedule with a tiny ring: it wraps, and
    // buildReplayLog must hard-error with the drop count rather than
    // produce a log that replays a truncated prefix.
    FlightRecorder tiny(1); // RecorderMode::Ring
    vm::VmConfig cfg = rf.cfg;
    cfg.recorder = &tiny;
    cfg.recordSharedAccesses = true;
    vm::RunResult r = vm::runProgram(*rf.target.plain, cfg);
    ASSERT_GT(tiny.droppedAll(), 0u);

    ReplayLog log;
    std::string err;
    EXPECT_FALSE(buildReplayLog(rf.log.program, rf.log.scheduleToken,
                                rf.cfg, tiny, r, log, err));
    EXPECT_NE(err.find("events dropped"), std::string::npos) << err;
    EXPECT_NE(err.find(std::to_string(tiny.droppedAll())),
              std::string::npos)
        << err;
}

TEST(ReplayVm, LogRoundTripsThroughDisk)
{
    RecordedFailure rf;
    ASSERT_TRUE(testutil::recordFailure("ZSNES", rf));

    std::string path =
        ::testing::TempDir() + "/conair_replay_roundtrip.log";
    std::string err;
    ASSERT_TRUE(saveReplayLog(path, rf.log, err)) << err;
    ReplayLog loaded;
    ASSERT_TRUE(loadReplayLog(path, loaded, err)) << err;
    EXPECT_EQ(loaded, rf.log);

    ReplayRun rr =
        replayLog(*rf.target.plain, loaded, vm::ExecEngine::Decoded);
    EXPECT_TRUE(rr.faithful) << rr.mismatch;
}

TEST(ReplayVm, TimelineRendersRecordedRun)
{
    RecordedFailure rf;
    ASSERT_TRUE(testutil::recordFailure("ZSNES", rf));
    std::string t = replayTimeline(rf.log);
    EXPECT_NE(t.find("ZSNES"), std::string::npos);
    EXPECT_NE(t.find(rf.log.outcome), std::string::npos);
    EXPECT_EQ(t, replayTimeline(rf.log));
}

} // namespace
} // namespace conair::obs::replay
