/**
 * @file
 * The ReplayLog model: byte-identical serialisation round-trips,
 * strict rejection of malformed logs, the wrapped-ring refusal, and
 * Grow-mode recording.
 */
#include <gtest/gtest.h>

#include "obs/replay/replay_export.h"
#include "obs/replay/replay_log.h"

namespace conair::obs::replay {
namespace {

ReplayLog
sampleLog()
{
    ReplayLog log;
    log.program = "MySQL1";
    log.scheduleToken = "pct:d2:s17";
    log.engine = vm::ExecEngine::Reference;
    log.policy = vm::SchedPolicy::Pct;
    log.depth = 2;
    log.horizon = 1234;
    log.quantum = 40;
    log.seed = 17;
    log.appSeed = 99;
    log.maxSteps = 2'000'000;
    log.hangTimeout = 100'000;
    log.maxRetries = -1;
    log.backoffMax = 32;
    log.chaosEveryN = 0;
    log.chaosMaxRollbacks = 10'000;
    log.delays.push_back({3, 200, 1});
    log.switches = {{10, 1}, {57, 0}, {213, 2}};
    log.locks = {{12, 1, 5}, {60, 0, 5}};
    log.accessCount = 42;
    log.accessDigest = 0xdeadbeefcafef00dull;
    log.outcome = "segfault";
    log.failureTag = "buf_read.12";
    log.exitCode = 0;
    log.finalClock = 4417;
    log.finalSteps = 390;
    log.schedTicks = 77;
    log.memDigest = 0x0123456789abcdefull;
    return log;
}

TEST(ReplayLog, SerializeParsesBackByteIdentically)
{
    const ReplayLog log = sampleLog();
    const std::string text = log.serialize();

    ReplayLog parsed;
    std::string err;
    ASSERT_TRUE(parseReplayLog(text, parsed, err)) << err;
    EXPECT_EQ(parsed, log);
    EXPECT_EQ(parsed.serialize(), text);
}

TEST(ReplayLog, EngineNamesRoundTrip)
{
    for (vm::ExecEngine e :
         {vm::ExecEngine::Decoded, vm::ExecEngine::Reference,
          vm::ExecEngine::Fused}) {
        vm::ExecEngine back{};
        ASSERT_TRUE(engineFromName(engineName(e), back));
        EXPECT_EQ(back, e);
    }
    vm::ExecEngine e{};
    EXPECT_FALSE(engineFromName("turbo", e));
}

TEST(ReplayLog, ParserRejectsMalformedInput)
{
    const std::string good = sampleLog().serialize();
    ReplayLog out;
    std::string err;

    // Every corruption must produce a parse error naming its line.
    auto corrupt = [&](const std::string &from, const std::string &to) {
        std::string text = good;
        size_t pos = text.find(from);
        ASSERT_NE(pos, std::string::npos) << from;
        text.replace(pos, from.size(), to);
        EXPECT_FALSE(parseReplayLog(text, out, err)) << from;
        EXPECT_NE(err.find("line"), std::string::npos) << err;
    };

    corrupt("conair-replay v1", "conair-replay v2");
    corrupt("engine reference", "engine quantum");
    corrupt("policy pct", "policy lotto");
    corrupt("seed 17", "seed banana");
    corrupt("seed 17", "seed 18446744073709551616"); // overflow
    corrupt("seed 17", "seed +17");                  // sign prefix
    corrupt("depth 2", "depth 4294967296");          // > uint32
    corrupt("exit 0", "exit --1");
    corrupt("memdigest", "memdigest 0x"); // becomes key w/ junk value
    corrupt("accesses 42", "accesses fortytwo");
    corrupt("switches 3", "switches 2");  // count/list mismatch
    corrupt("s 57 0", "s 5 0");           // steps not increasing
    corrupt("s 213 2", "switch 213 2");   // bad record marker
    corrupt("l 60 0 5", "l 60 junk 5");
    corrupt("end", "fin");
    corrupt("steps 390", "stepz 390");    // unknown key

    // Truncation (drop the tail from a marker on) must also fail.
    for (const char *marker : {"s 213", "locks 2", "end"}) {
        std::string text = good.substr(0, good.find(marker));
        EXPECT_FALSE(parseReplayLog(text, out, err)) << marker;
    }
    EXPECT_FALSE(parseReplayLog("", out, err));
}

TEST(ReplayLog, ParserReportsLineNumbers)
{
    std::string text = sampleLog().serialize();
    size_t pos = text.find("quantum 40");
    text.replace(pos, 10, "quantum x");
    ReplayLog out;
    std::string err;
    ASSERT_FALSE(parseReplayLog(text, out, err));
    // "quantum" is the 8th line of the fixed serialisation order.
    EXPECT_NE(err.find("line 8"), std::string::npos) << err;
    EXPECT_NE(err.find("quantum"), std::string::npos) << err;
}

TEST(ReplayLog, WrappedRingRefusesToBuildWithDropCount)
{
    FlightRecorder rec(2); // RecorderMode::Ring
    for (uint64_t i = 0; i < 5; ++i)
        rec.record(0, EventKind::SchedSwitch, i * 10, i * 10, 0, 1);
    ASSERT_EQ(rec.droppedAll(), 3u);

    vm::VmConfig cfg;
    vm::RunResult result;
    ReplayLog log;
    std::string err;
    EXPECT_FALSE(
        buildReplayLog("app", "", cfg, rec, result, log, err));
    EXPECT_NE(err.find("3 events dropped"), std::string::npos) << err;
}

TEST(ReplayLog, GrowModeNeverDropsAndBuilds)
{
    FlightRecorder rec(2, RecorderMode::Grow);
    for (uint64_t i = 0; i < 100; ++i)
        rec.record(uint32_t(i % 3), EventKind::SchedSwitch, i * 4,
                   i * 4, 0, 3);
    EXPECT_EQ(rec.droppedAll(), 0u);
    EXPECT_EQ(rec.mode(), RecorderMode::Grow);

    vm::VmConfig cfg;
    vm::RunResult result;
    ReplayLog log;
    std::string err;
    ASSERT_TRUE(buildReplayLog("app", "", cfg, rec, result, log, err))
        << err;
    EXPECT_EQ(log.switches.size(), 100u);
}

TEST(ReplayLog, WholeProgramCheckpointRunsRefuse)
{
    FlightRecorder rec(64, RecorderMode::Grow);
    vm::VmConfig cfg;
    cfg.wpCheckpointInterval = 100;
    vm::RunResult result;
    ReplayLog log;
    std::string err;
    EXPECT_FALSE(
        buildReplayLog("app", "", cfg, rec, result, log, err));
    EXPECT_NE(err.find("checkpoint"), std::string::npos) << err;
}

TEST(ReplayLog, CorruptSwitchOrderRefusesToBuild)
{
    FlightRecorder rec(64, RecorderMode::Grow);
    rec.record(0, EventKind::SchedSwitch, 50, 50, 0, 2);
    rec.record(1, EventKind::SchedSwitch, 50, 40, 0, 2); // regresses
    vm::VmConfig cfg;
    vm::RunResult result;
    ReplayLog log;
    std::string err;
    EXPECT_FALSE(
        buildReplayLog("app", "", cfg, rec, result, log, err));
    EXPECT_NE(err.find("corrupt"), std::string::npos) << err;
}

TEST(ReplayTimeline, RendersDeterministically)
{
    const ReplayLog log = sampleLog();
    const std::string t = replayTimeline(log);
    EXPECT_EQ(t, replayTimeline(log));
    EXPECT_NE(t.find("MySQL1"), std::string::npos);
    EXPECT_NE(t.find("token pct:d2:s17"), std::string::npos);
    EXPECT_NE(t.find("switch -> T1"), std::string::npos);
    EXPECT_NE(t.find("T1 acquires mutex block 5"), std::string::npos);
    EXPECT_NE(t.find("end: segfault (buf_read.12)"),
              std::string::npos);
    // Chronological: the step-10 switch renders before the step-12
    // lock, which renders before the step-57 switch.
    EXPECT_LT(t.find("switch -> T1"), t.find("acquires mutex"));
    EXPECT_LT(t.find("acquires mutex"), t.find("switch -> T0"));
}

} // namespace
} // namespace conair::obs::replay
