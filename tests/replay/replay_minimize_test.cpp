/**
 * @file
 * Replay-based ddmin minimisation: shrinking a recorded failing
 * schedule preserves the failure (and the postmortem diagnosis
 * verdict), and the minimised log still replays faithfully on every
 * engine — for all ten Table 2 kernels in the full sweep.
 */
#include <gtest/gtest.h>

#include "obs/replay/minimize.h"
#include "tests/replay/replay_test_util.h"

namespace conair::obs::replay {
namespace {

using testutil::RecordedFailure;

void
checkMinimized(const RecordedFailure &rf, const MinimizeResult &res)
{
    ASSERT_TRUE(res.ok) << rf.log.program << ": " << res.err;
    EXPECT_EQ(res.originalSwitches, rf.log.switches.size());
    EXPECT_LE(res.minimizedSwitches, res.originalSwitches)
        << rf.log.program;

    // Same failure, and the minimised log replays faithfully on every
    // engine (its fingerprint was re-recorded, then strictly verified
    // by minimizeReplayLog itself; re-verify Decoded + Fused here).
    EXPECT_EQ(res.minimized.outcome, rf.log.outcome) << rf.log.program;
    EXPECT_EQ(res.minimized.failureTag, rf.log.failureTag)
        << rf.log.program;
    for (vm::ExecEngine e :
         {vm::ExecEngine::Decoded, vm::ExecEngine::Fused}) {
        ReplayRun rr = replayLog(*rf.target.plain, res.minimized, e);
        EXPECT_TRUE(rr.faithful)
            << rf.log.program << " on " << engineName(e) << ": "
            << rr.mismatch;
    }
}

TEST(ReplayMinimize, ShrinksAndPreservesFailure)
{
    RecordedFailure rf;
    ASSERT_TRUE(testutil::recordFailure("ZSNES", rf));

    MinimizeOptions opts;
    MinimizeResult res =
        minimizeReplayLog(*rf.target.plain, rf.log, opts);
    checkMinimized(rf, res);
    EXPECT_GT(res.probes, 0u);
}

TEST(ReplayMinimize, ProbeBudgetIsHonoured)
{
    RecordedFailure rf;
    ASSERT_TRUE(testutil::recordFailure("ZSNES", rf));

    MinimizeOptions opts;
    opts.maxProbes = 3;
    MinimizeResult res =
        minimizeReplayLog(*rf.target.plain, rf.log, opts);
    // Budget exhaustion is not failure: we still get a verified
    // (possibly unshrunken) log from a bounded number of probes.
    ASSERT_TRUE(res.ok) << res.err;
    EXPECT_LE(res.probes, 4u); // baseline + <= maxProbes ddmin probes
    checkMinimized(rf, res);
}

// The full sweep: every Table 2 kernel's recorded failure minimises
// with the failure and the diagnosis verdict preserved.
TEST(ReplayMinimizeFull, AllTenKernelsPreserveOutcomeAndVerdict)
{
    for (const apps::AppSpec &app : apps::allApps()) {
        SCOPED_TRACE(app.name);
        RecordedFailure rf;
        ASSERT_TRUE(testutil::recordFailure(app.name.c_str(), rf,
                                            /*diagMode=*/true));

        MinimizeOptions opts;
        opts.preserveVerdict = true;
        MinimizeResult res =
            minimizeReplayLog(*rf.target.plain, rf.log, opts);
        checkMinimized(rf, res);
    }
}

} // namespace
} // namespace conair::obs::replay
