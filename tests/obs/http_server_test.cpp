/**
 * @file
 * Embedded telemetry HTTP server tests (src/obs/serve/).  Pins the
 * contract the header promises:
 *
 *  - >= 64 concurrent scrapes all answer 200 with consistent bodies;
 *  - malformed and oversized requests answer 400, non-GET methods
 *    405, unknown paths 404 — never a crash or a hang;
 *  - stop() joins every thread cleanly, even with scrapers in flight;
 *  - a /metrics body passes the Prometheus exposition line grammar.
 */
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/serve/http_server.h"

namespace conair {
namespace {

using obs::serve::HttpResponse;
using obs::serve::HttpServer;
using obs::serve::httpGet;

/** Sends @p raw verbatim to 127.0.0.1:@p port and returns the full
 *  response text ("" on transport failure) — the misbehaving client
 *  httpGet() refuses to be. */
std::string
rawRequest(uint16_t port, const std::string &raw)
{
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                sizeof(addr)) != 0) {
        close(fd);
        return "";
    }
    size_t off = 0;
    while (off < raw.size()) {
        ssize_t n = send(fd, raw.data() + off, raw.size() - off, 0);
        if (n <= 0)
            break;
        off += size_t(n);
    }
    std::string out;
    char buf[4096];
    ssize_t n;
    while ((n = recv(fd, buf, sizeof(buf), 0)) > 0)
        out.append(buf, size_t(n));
    close(fd);
    return out;
}

/** A started server with one stable route. */
struct ServerFixture
{
    HttpServer server;

    ServerFixture()
    {
        server.route("/metrics", [] {
            HttpResponse r;
            r.contentType = "text/plain; version=0.0.4; charset=utf-8";
            r.body = "# HELP conair_up 1 when the campaign is live.\n"
                     "# TYPE conair_up gauge\n"
                     "conair_up 1\n";
            return r;
        });
        std::string err;
        EXPECT_TRUE(server.start(0, err)) << err;
        EXPECT_NE(server.port(), 0);
    }
};

TEST(HttpServer, SixtyFourConcurrentScrapesAreConsistent)
{
    ServerFixture f;
    constexpr int kScrapers = 64;
    constexpr int kRequestsEach = 4;

    std::atomic<int> ok{0}, wrong{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kScrapers; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < kRequestsEach; ++i) {
                int status = 0;
                std::string body, err;
                if (!httpGet(f.server.port(), "/metrics", status, body,
                             err) ||
                    status != 200 ||
                    body.find("conair_up 1") == std::string::npos)
                    ++wrong;
                else
                    ++ok;
            }
        });
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(wrong.load(), 0);
    EXPECT_EQ(ok.load(), kScrapers * kRequestsEach);
    EXPECT_GE(f.server.requestsServed(),
              uint64_t(kScrapers * kRequestsEach));
}

TEST(HttpServer, MalformedAndOversizedRequestsAnswer400)
{
    ServerFixture f;

    // No HTTP at all.
    std::string resp = rawRequest(f.server.port(), "not http\r\n\r\n");
    EXPECT_NE(resp.find("400"), std::string::npos) << resp;

    // Bare newline torso.
    resp = rawRequest(f.server.port(), "\r\n\r\n");
    EXPECT_NE(resp.find("400"), std::string::npos) << resp;

    // Oversized request (> 8 KiB) must be rejected, not buffered.
    std::string huge = "GET /metrics HTTP/1.1\r\nX-Pad: ";
    huge.append(16 * 1024, 'a');
    huge += "\r\n\r\n";
    resp = rawRequest(f.server.port(), huge);
    EXPECT_NE(resp.find("400"), std::string::npos) << resp;

    EXPECT_GE(f.server.badRequests(), 3u);

    // The server still answers well-formed requests afterwards.
    int status = 0;
    std::string body, err;
    ASSERT_TRUE(httpGet(f.server.port(), "/metrics", status, body, err))
        << err;
    EXPECT_EQ(status, 200);
}

TEST(HttpServer, UnknownPath404AndNonGet405)
{
    ServerFixture f;

    int status = 0;
    std::string body, err;
    ASSERT_TRUE(httpGet(f.server.port(), "/nope", status, body, err))
        << err;
    EXPECT_EQ(status, 404);

    std::string resp = rawRequest(
        f.server.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_NE(resp.find("405"), std::string::npos) << resp;

    // Query strings are ignored for routing.
    ASSERT_TRUE(
        httpGet(f.server.port(), "/metrics?x=1", status, body, err))
        << err;
    EXPECT_EQ(status, 200);
}

TEST(HttpServer, StopJoinsCleanlyWithScrapersInFlight)
{
    ServerFixture f;
    std::atomic<bool> stop{false};
    std::vector<std::thread> scrapers;
    for (int t = 0; t < 8; ++t)
        scrapers.emplace_back([&] {
            while (!stop.load()) {
                int status = 0;
                std::string body, err;
                // Failures are expected once the server goes down;
                // the property under test is no crash and no hang.
                httpGet(f.server.port(), "/metrics", status, body, err);
            }
        });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    f.server.stop();
    EXPECT_FALSE(f.server.running());
    stop.store(true);
    for (std::thread &t : scrapers)
        t.join();
    // Idempotent: a second stop (and the destructor's) is a no-op.
    f.server.stop();
}

/** Minimal Prometheus text-exposition (format 0.0.4) line check:
 *  every line is a comment, blank, or `name{labels} value`. */
bool
promLineOk(const std::string &line)
{
    if (line.empty() || line[0] == '#')
        return true;
    size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size())
        return false;
    std::string name = line.substr(0, sp);
    size_t brace = name.find('{');
    if (brace != std::string::npos) {
        if (name.back() != '}')
            return false;
        name = name.substr(0, brace);
    }
    if (!isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_')
        return false;
    for (char c : name)
        if (!isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != ':')
            return false;
    // The value parses as a double (inf/nan spellings included).
    char *end = nullptr;
    std::string value = line.substr(sp + 1);
    strtod(value.c_str(), &end);
    return end && *end == '\0';
}

TEST(HttpServer, MetricsBodyPassesExpositionGrammar)
{
    // A real registry behind the route, with awkward label values the
    // exposition escaping must handle.
    obs::MetricsRegistry reg;
    reg.add("rollbacks", 3);
    reg.add("retries_by_site/site\"with\\odd\nchars");
    reg.observe("recovery_latency_us", 12,
                obs::MetricsRegistry::latencyBucketsUs());
    reg.observe("recovery_latency_us", 80,
                obs::MetricsRegistry::latencyBucketsUs());

    HttpServer server;
    server.route("/metrics", [&reg] {
        HttpResponse r;
        r.contentType = "text/plain; version=0.0.4; charset=utf-8";
        r.body = reg.toPrometheusText();
        return r;
    });
    std::string err;
    ASSERT_TRUE(server.start(0, err)) << err;

    int status = 0;
    std::string body;
    ASSERT_TRUE(httpGet(server.port(), "/metrics", status, body, err))
        << err;
    EXPECT_EQ(status, 200);
    ASSERT_FALSE(body.empty());
    EXPECT_EQ(body.back(), '\n') << "exposition must end with newline";

    std::istringstream lines(body);
    std::string line;
    while (std::getline(lines, line))
        EXPECT_TRUE(promLineOk(line)) << "bad exposition line: " << line;
}

TEST(HttpServer, CountersCoverEveryResponseClass)
{
    // 404 and 405 get their own counters next to served/bad, and the
    // exposition block appended to /metrics carries all four with the
    // conair_http_ prefix.
    ServerFixture f;

    int status = 0;
    std::string body, err;
    ASSERT_TRUE(httpGet(f.server.port(), "/missing", status, body, err))
        << err;
    EXPECT_EQ(status, 404);
    rawRequest(f.server.port(),
               "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    rawRequest(f.server.port(),
               "DELETE /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    rawRequest(f.server.port(), "junk\r\n\r\n");
    ASSERT_TRUE(httpGet(f.server.port(), "/metrics", status, body, err))
        << err;

    EXPECT_EQ(f.server.notFound(), 1u);
    EXPECT_EQ(f.server.methodNotAllowed(), 2u);
    EXPECT_GE(f.server.badRequests(), 1u);
    // Served counts successfully routed responses only — the one
    // well-formed /metrics scrape above.
    EXPECT_GE(f.server.requestsServed(), 1u);

    std::string prom = f.server.prometheusCounters();
    EXPECT_NE(prom.find("# TYPE conair_http_requests_served counter"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE conair_http_bad_requests counter"),
              std::string::npos);
    EXPECT_NE(prom.find("conair_http_not_found 1"), std::string::npos)
        << prom;
    EXPECT_NE(prom.find("conair_http_method_not_allowed 2"),
              std::string::npos)
        << prom;

    // The block itself passes the exposition grammar, so appending it
    // to a /metrics body keeps the whole scrape parseable.
    std::istringstream lines(prom);
    std::string line;
    while (std::getline(lines, line))
        EXPECT_TRUE(promLineOk(line)) << "bad exposition line: " << line;
}

TEST(HttpGet, DeadlineCoversServerThatNeverResponds)
{
    // A bare listening socket: the kernel completes the TCP handshake
    // into the backlog, but nothing ever reads the request or writes a
    // byte back.  Per-operation timeouts alone would let httpGet hang
    // forever on such a peer; the overall deadline must not.
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)),
              0);
    ASSERT_EQ(listen(fd, 8), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len),
              0);
    uint16_t port = ntohs(addr.sin_port);

    int status = 0;
    std::string body, err;
    auto t0 = std::chrono::steady_clock::now();
    bool ok = httpGet(port, "/metrics", status, body, err,
                      /*deadlineMs=*/300);
    double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    close(fd);

    EXPECT_FALSE(ok);
    EXPECT_NE(err.find("deadline"), std::string::npos) << err;
    // Returned promptly: well under the per-operation 2 s cap, let
    // alone the old unbounded wait.
    EXPECT_LT(elapsed, 2.0);
}

} // namespace
} // namespace conair
