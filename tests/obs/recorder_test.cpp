/**
 * @file
 * FlightRecorder unit tests: ring wraparound keeps the newest events,
 * per-kind totals survive overwrites, merged() respects record order,
 * and the exporters render deterministically.
 */
#include <gtest/gtest.h>

#include "obs/trace.h"
#include "obs/trace_export.h"

namespace conair::obs {
namespace {

TEST(FlightRecorder, KeepsEverythingBelowCapacity)
{
    FlightRecorder rec(8);
    for (uint64_t i = 0; i < 5; ++i)
        rec.record(0, EventKind::Checkpoint, i * 10, i, i);
    auto evs = rec.threadEvents(0);
    ASSERT_EQ(evs.size(), 5u);
    for (uint64_t i = 0; i < 5; ++i) {
        EXPECT_EQ(evs[i].seq, i);
        EXPECT_EQ(evs[i].clock, i * 10);
        EXPECT_EQ(evs[i].a, i);
    }
    EXPECT_EQ(rec.totalRecorded(0), 5u);
    EXPECT_EQ(rec.dropped(0), 0u);
}

TEST(FlightRecorder, WraparoundKeepsNewestEvents)
{
    FlightRecorder rec(4);
    for (uint64_t i = 0; i < 10; ++i)
        rec.record(0, EventKind::Rollback, i, i, i);
    auto evs = rec.threadEvents(0);
    ASSERT_EQ(evs.size(), 4u);
    // The newest 4 of 10, oldest first: seq 6, 7, 8, 9.
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(evs[i].seq, 6 + i);
    EXPECT_EQ(rec.totalRecorded(0), 10u);
    EXPECT_EQ(rec.dropped(0), 6u);
    // Per-kind totals survive the overwrites.
    EXPECT_EQ(rec.totalOf(EventKind::Rollback), 10u);
}

TEST(FlightRecorder, PerThreadRingsAreIndependent)
{
    FlightRecorder rec(2);
    rec.record(0, EventKind::Checkpoint, 1, 1);
    rec.record(3, EventKind::Rollback, 2, 2);
    EXPECT_EQ(rec.threadCount(), 4u);
    EXPECT_EQ(rec.threadEvents(0).size(), 1u);
    EXPECT_EQ(rec.threadEvents(1).size(), 0u);
    EXPECT_EQ(rec.threadEvents(3).size(), 1u);
    EXPECT_EQ(rec.threadEvents(99).size(), 0u); // out of range: empty
    EXPECT_EQ(rec.totalRecorded(99), 0u);
}

TEST(FlightRecorder, MergedIsInRecordOrderAcrossThreads)
{
    FlightRecorder rec(16);
    rec.record(1, EventKind::Checkpoint, 5, 1);
    rec.record(0, EventKind::Rollback, 6, 2);
    rec.record(1, EventKind::RecoveryDone, 7, 3);
    auto evs = rec.merged();
    ASSERT_EQ(evs.size(), 3u);
    EXPECT_EQ(evs[0].kind, EventKind::Checkpoint);
    EXPECT_EQ(evs[1].kind, EventKind::Rollback);
    EXPECT_EQ(evs[2].kind, EventKind::RecoveryDone);
    EXPECT_EQ(evs[0].seq, 0u);
    EXPECT_EQ(evs[2].seq, 2u);
}

TEST(FlightRecorder, ClearForgetsEventsAndTotals)
{
    FlightRecorder rec(4);
    rec.record(0, EventKind::Backoff, 1, 1);
    rec.clear();
    EXPECT_EQ(rec.threadCount(), 0u);
    EXPECT_EQ(rec.totalRecordedAll(), 0u);
    EXPECT_EQ(rec.totalOf(EventKind::Backoff), 0u);
    EXPECT_EQ(rec.capacity(), 4u);
}

TEST(FlightRecorder, CapacityClampsToOne)
{
    FlightRecorder rec(0);
    EXPECT_EQ(rec.capacity(), 1u);
    rec.record(0, EventKind::Checkpoint, 1, 1);
    rec.record(0, EventKind::Rollback, 2, 2);
    auto evs = rec.threadEvents(0);
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_EQ(evs[0].kind, EventKind::Rollback);
}

TEST(EventKindName, AllKindsNamed)
{
    for (size_t k = 0; k < kEventKindCount; ++k) {
        const char *name = eventKindName(EventKind(k));
        EXPECT_STRNE(name, "unknown") << k;
        EXPECT_GT(std::string(name).size(), 0u);
    }
}

TEST(TraceExport, ChromeJsonIsDeterministic)
{
    FlightRecorder rec(8);
    rec.record(0, EventKind::Checkpoint, 10, 1, 0, 3);
    rec.record(0, EventKind::Rollback, 20, 2, 1, 2, "site.a");
    rec.record(0, EventKind::RecoveryDone, 30, 3, 1, 10, "site.a");
    std::string a = chromeTraceJson(rec, "proc");
    std::string b = chromeTraceJson(rec, "proc");
    EXPECT_EQ(a, b);
    // The recovery episode renders as a duration event.
    EXPECT_NE(a.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(a.find("recovery x1"), std::string::npos);
    // Per-kind totals land in otherData.
    EXPECT_NE(a.find("\"rollback\": 1"), std::string::npos);
}

TEST(TraceExport, TimelineSkipsSchedulerNoise)
{
    FlightRecorder rec(8);
    rec.record(0, EventKind::SchedSwitch, 1, 1);
    rec.record(0, EventKind::Rollback, 2, 2, 1, 0, "s");
    std::string tl = recoveryTimeline(rec);
    EXPECT_EQ(tl.find("sched-switch"), std::string::npos);
    EXPECT_NE(tl.find("rollback"), std::string::npos);
}

TEST(TraceExport, TimelineReportsDrops)
{
    FlightRecorder rec(2);
    for (int i = 0; i < 5; ++i)
        rec.record(0, EventKind::Rollback, i, i);
    std::string tl = recoveryTimeline(rec);
    EXPECT_NE(tl.find("3 earlier events dropped"), std::string::npos);
}

} // namespace
} // namespace conair::obs
