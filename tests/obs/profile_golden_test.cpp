/**
 * @file
 * Byte-for-byte golden regression test for the recovery-cost profile
 * exporters.
 *
 * Replays one campaign repro token (ZSNES under pct:d2:s2, the same
 * cell the trace golden pins) with collectProfile on, and renders the
 * *deterministic axis* — speedscope JSON, folded stacks, the hot-phase
 * table, and the ProfileAgg JSON — against profile.golden.  Wall-clock
 * cells are measured microseconds and deliberately excluded; only the
 * phase/episode attribution is byte-pinned.  Any change to the phase
 * taxonomy, episode bookkeeping, or the exporters shows up as a diff
 * here.
 *
 * Re-bless after an *intentional* change with
 * `obs_profile_golden_test --update`; a mismatch prints a unified diff
 * plus that exact command (tests/support/golden_util.h).
 */
#include <string>

#include <gtest/gtest.h>

#include "apps/harness.h"
#include "explore/campaign.h"
#include "obs/profile/profile_export.h"
#include "support/json.h"
#include "tests/support/golden_util.h"

namespace conair {
namespace {

std::string
goldenPath()
{
    return std::string(GOLDEN_DIR) + "/profile.golden";
}

/** The artifact under test: the hardened-leg profile of one repro
 *  schedule, rendered the same way bench_explore --repro --profile
 *  renders it (minus the nondeterministic wall cells). */
std::string
currentGolden()
{
    const apps::AppSpec *spec = apps::findApp("ZSNES");
    if (!spec)
        return "<ZSNES missing>";
    apps::CampaignApp app = apps::prepareCampaignApp(*spec);
    explore::Target target = apps::campaignTarget(app);

    explore::ScheduleSpec sched;
    EXPECT_TRUE(explore::parseScheduleToken("pct:d2:s2", sched));

    explore::CampaignOptions opts;
    opts.maxSteps = 4'000'000;
    opts.collectProfile = true;

    explore::ScheduleOutcome o =
        explore::runOneSchedule(target, sched, opts);
    EXPECT_TRUE(o.ran);
    EXPECT_FALSE(o.diverged) << o.divergenceMsg;
    EXPECT_TRUE(o.hasProfile);

    // The hardened leg must actually recover here, so the golden pins
    // nonzero recovery-tax rendering, not an all-zero table.
    EXPECT_GT(o.profile.episodes, 0u);
    EXPECT_GT(o.profile.reexecSteps, 0u);

    obs::prof::ProfileDoc doc;
    doc.phaseGroups.emplace_back("ZSNES pct:d2:s2", o.profile);

    std::string out;
    out += "=== speedscope ===\n";
    out += obs::prof::speedscopeJson(doc, "ZSNES pct:d2:s2");
    out += "\n=== folded stacks ===\n";
    out += obs::prof::foldedStacks(doc);
    out += "=== hot phases ===\n";
    out += obs::prof::hotPhaseTable(doc);
    out += "=== profile json ===\n";
    JsonWriter w(2);
    o.profile.writeJson(w);
    out += w.str();
    out += "\n";
    return out;
}

TEST(ProfileGolden, MatchesGoldenFile)
{
    testutil::checkGolden(currentGolden(), goldenPath());
}

} // namespace
} // namespace conair

int
main(int argc, char **argv)
{
    return conair::testutil::goldenMain(argc, argv);
}
