/**
 * @file
 * Byte-for-byte golden regression test for the Chrome trace exporter.
 *
 * Replays one campaign repro token (ZSNES under pct:d2:s2 — a failing
 * schedule whose hardened leg recovers, the same cell bench_explore
 * --repro exercises) with flight recorders on both Decoded legs,
 * renders the two-process Chrome trace JSON plus the recovery
 * timeline, and compares against trace.golden byte for byte.
 * Any change to event ordering, payload encoding, timestamp formatting,
 * or the exporters themselves shows up as a diff here.
 *
 * Re-bless after an *intentional* format change with:
 *   ./obs_trace_golden_test --update
 */
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "apps/harness.h"
#include "explore/campaign.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace conair {

bool updateGolden = false;

namespace {

std::string
goldenPath()
{
    return std::string(GOLDEN_DIR) + "/trace.golden";
}

/** The artifact under test: both legs of one repro replay, rendered
 *  the same way bench_explore --repro --trace renders them, plus the
 *  human-readable timeline of the hardened leg. */
std::string
currentGolden()
{
    const apps::AppSpec *spec = apps::findApp("ZSNES");
    if (!spec)
        return "<ZSNES missing>";
    apps::CampaignApp app = apps::prepareCampaignApp(*spec);
    explore::Target target = apps::campaignTarget(app);

    explore::ScheduleSpec sched;
    EXPECT_TRUE(explore::parseScheduleToken("pct:d2:s2", sched));

    explore::CampaignOptions opts;
    opts.maxSteps = 4'000'000;
    opts.collectMetrics = true;

    // Small rings keep the golden file reviewable; dropped events are
    // part of the pinned output (totals still cover them).
    obs::FlightRecorder plainRec(256), hardRec(256);
    explore::ScheduleInstruments ins;
    ins.unhardened = &plainRec;
    ins.hardened = &hardRec;
    explore::ScheduleOutcome o =
        explore::runOneSchedule(target, sched, opts, &ins);
    EXPECT_TRUE(o.ran);
    EXPECT_FALSE(o.diverged) << o.divergenceMsg;

    // The hardened leg must actually recover here, so the golden file
    // pins recovery-episode rendering, not just checkpoints.
    EXPECT_GT(o.hardenedRollbacks, 0u);
    EXPECT_TRUE(o.hardenedCorrect);

    std::string json = obs::chromeTraceJson(
        {{&plainRec, "ZSNES unhardened pct:d2:s2", 1},
         {&hardRec, "ZSNES hardened pct:d2:s2", 2}});
    std::string out;
    out += "=== chrome trace (two processes) ===\n";
    out += json;
    out += "\n=== hardened recovery timeline ===\n";
    out += obs::recoveryTimeline(hardRec);
    out += "=== hardened metrics ===\n";
    out += o.metrics.toJson();
    out += "\n";
    return out;
}

TEST(TraceGolden, MatchesGoldenFile)
{
    std::string current = currentGolden();

    if (updateGolden) {
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out.is_open()) << goldenPath();
        out << current;
        SUCCEED() << "golden file updated";
        return;
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in.is_open())
        << goldenPath() << " missing; run with --update to create it";
    std::stringstream buf;
    buf << in.rdbuf();
    std::string expected = buf.str();

    std::istringstream cs(current), es(expected);
    std::string cline, eline;
    size_t lineno = 0;
    while (true) {
        bool cg = bool(std::getline(cs, cline));
        bool eg = bool(std::getline(es, eline));
        ++lineno;
        if (!cg && !eg)
            break;
        if (!cg)
            cline = "<missing line>";
        if (!eg)
            eline = "<missing line>";
        ASSERT_EQ(cline, eline)
            << "trace.golden line " << lineno
            << " diverged; if the exporter change is intentional, "
               "re-bless with: ./obs_trace_golden_test --update";
    }
    // Line-wise equality established; pin the bytes too (trailing
    // whitespace / final newline).
    EXPECT_EQ(current, expected);
}

} // namespace
} // namespace conair

int
main(int argc, char **argv)
{
    // Strip our flag before gtest sees the argument list.
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update") {
            conair::updateGolden = true;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
