/**
 * @file
 * Byte-for-byte golden regression test for the Chrome trace exporter.
 *
 * Replays one campaign repro token (ZSNES under pct:d2:s2 — a failing
 * schedule whose hardened leg recovers, the same cell bench_explore
 * --repro exercises) with flight recorders on both Decoded legs,
 * renders the two-process Chrome trace JSON plus the recovery
 * timeline, and compares against trace.golden byte for byte.
 * Any change to event ordering, payload encoding, timestamp formatting,
 * or the exporters themselves shows up as a diff here.
 *
 * Re-bless after an *intentional* format change with
 * `obs_trace_golden_test --update`; a mismatch prints a unified diff
 * plus that exact command (tests/support/golden_util.h).
 */
#include <string>

#include <gtest/gtest.h>

#include "apps/harness.h"
#include "explore/campaign.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "tests/support/golden_util.h"

namespace conair {
namespace {

std::string
goldenPath()
{
    return std::string(GOLDEN_DIR) + "/trace.golden";
}

/** The artifact under test: both legs of one repro replay, rendered
 *  the same way bench_explore --repro --trace renders them, plus the
 *  human-readable timeline of the hardened leg. */
std::string
currentGolden()
{
    const apps::AppSpec *spec = apps::findApp("ZSNES");
    if (!spec)
        return "<ZSNES missing>";
    apps::CampaignApp app = apps::prepareCampaignApp(*spec);
    explore::Target target = apps::campaignTarget(app);

    explore::ScheduleSpec sched;
    EXPECT_TRUE(explore::parseScheduleToken("pct:d2:s2", sched));

    explore::CampaignOptions opts;
    opts.maxSteps = 4'000'000;
    opts.collectMetrics = true;

    // Small rings keep the golden file reviewable; dropped events are
    // part of the pinned output (totals still cover them).
    obs::FlightRecorder plainRec(256), hardRec(256);
    explore::ScheduleInstruments ins;
    ins.unhardened = &plainRec;
    ins.hardened = &hardRec;
    explore::ScheduleOutcome o =
        explore::runOneSchedule(target, sched, opts, &ins);
    EXPECT_TRUE(o.ran);
    EXPECT_FALSE(o.diverged) << o.divergenceMsg;

    // The hardened leg must actually recover here, so the golden file
    // pins recovery-episode rendering, not just checkpoints.
    EXPECT_GT(o.hardenedRollbacks, 0u);
    EXPECT_TRUE(o.hardenedCorrect);

    std::string json = obs::chromeTraceJson(
        {{&plainRec, "ZSNES unhardened pct:d2:s2", 1},
         {&hardRec, "ZSNES hardened pct:d2:s2", 2}});
    std::string out;
    out += "=== chrome trace (two processes) ===\n";
    out += json;
    out += "\n=== hardened recovery timeline ===\n";
    out += obs::recoveryTimeline(hardRec);
    out += "=== hardened metrics ===\n";
    out += o.metrics.toJson();
    out += "\n";
    return out;
}

TEST(TraceGolden, MatchesGoldenFile)
{
    testutil::checkGolden(currentGolden(), goldenPath());
}

} // namespace
} // namespace conair

int
main(int argc, char **argv)
{
    return conair::testutil::goldenMain(argc, argv);
}
