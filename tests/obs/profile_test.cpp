/**
 * @file
 * Recovery-cost profiler unit tests (src/obs/profile/): step
 * classification, episode lifecycle bookkeeping, aggregate fold/merge
 * algebra, and the exporters' structural invariants.  The end-to-end
 * properties — passivity on all three engines and worker-count
 * independence — live in vm_profile_test.cpp and campaign_test.cpp;
 * byte-exact rendering is pinned by profile_golden_test.cpp.
 */
#include <gtest/gtest.h>

#include "obs/profile/profile.h"
#include "obs/profile/profile_export.h"
#include "support/json.h"

namespace conair::obs::prof {
namespace {

TEST(ClassifyPhase, MapsOpcodesAndBuiltins)
{
    using ir::Builtin;
    using ir::Opcode;
    EXPECT_EQ(classifyPhase(Opcode::Load, Builtin::None),
              Phase::Memory);
    EXPECT_EQ(classifyPhase(Opcode::Store, Builtin::None),
              Phase::Memory);
    EXPECT_EQ(classifyPhase(Opcode::Add, Builtin::None),
              Phase::Dispatch);
    EXPECT_EQ(classifyPhase(Opcode::CondBr, Builtin::None),
              Phase::Dispatch);
    // The builtin only matters on Call steps.
    EXPECT_EQ(classifyPhase(Opcode::Add, Builtin::MutexLock),
              Phase::Dispatch);

    EXPECT_EQ(classifyPhase(Opcode::Call, Builtin::MutexLock),
              Phase::Sync);
    EXPECT_EQ(classifyPhase(Opcode::Call, Builtin::ThreadJoin),
              Phase::Sync);
    EXPECT_EQ(classifyPhase(Opcode::Call, Builtin::Yield), Phase::Sync);
    EXPECT_EQ(classifyPhase(Opcode::Call, Builtin::Malloc),
              Phase::Memory);
    EXPECT_EQ(classifyPhase(Opcode::Call, Builtin::Free),
              Phase::Memory);
    EXPECT_EQ(classifyPhase(Opcode::Call, Builtin::CaCheckpoint),
              Phase::CheckpointSave);
    EXPECT_EQ(classifyPhase(Opcode::Call, Builtin::CaCheckpointLocals),
              Phase::CheckpointSave);
    EXPECT_EQ(classifyPhase(Opcode::Call, Builtin::CaTryRollback),
              Phase::Rollback);
    EXPECT_EQ(classifyPhase(Opcode::Call, Builtin::CaBackoff),
              Phase::Backoff);
    // Plain calls (user functions, prints, compensation notes).
    EXPECT_EQ(classifyPhase(Opcode::Call, Builtin::None),
              Phase::Dispatch);
    EXPECT_EQ(classifyPhase(Opcode::Call, Builtin::PrintI64),
              Phase::Dispatch);
}

TEST(PhaseName, AllEightAreStableAndDistinct)
{
    const char *expected[kPhaseCount] = {
        "dispatch", "memory",          "sync",     "lock_wait",
        "checkpoint_save", "rollback", "reexec",   "backoff"};
    for (size_t i = 0; i < kPhaseCount; ++i)
        EXPECT_STREQ(phaseName(Phase(i)), expected[i]);
}

TEST(PhaseProfiler, EpisodeLifecycleRollsUpTheTax)
{
    PhaseProfiler p;
    EXPECT_TRUE(p.empty());

    // Normal execution: 10 dispatch steps since the last checkpoint.
    p.onCheckpoint(0);
    p.onSteps(0, Phase::Dispatch, 10);

    // First rollback opens the episode: the 10 steps are wasted, the
    // checkpoint distance is recorded.
    p.onRollback(0, "assert.f.1", 7);
    p.onSteps(0, Phase::Reexec, 4); // re-execution toward the site
    p.onBackoff(0, 3);

    // Second retry wastes the 4 re-executed steps too.
    p.onRollback(0, "assert.f.1", 7);
    p.onSteps(0, Phase::Reexec, 5);
    p.onRecovered(0, 2, 100, 140);

    ASSERT_EQ(p.episodes().size(), 1u);
    const EpisodeCost &ep = p.episodes()[0];
    EXPECT_EQ(ep.siteTag, "assert.f.1");
    EXPECT_EQ(ep.tid, 0u);
    EXPECT_EQ(ep.retries, 2u);
    EXPECT_EQ(ep.ckptDistanceTicks, 7u);
    EXPECT_EQ(ep.reexecSteps, 9u);
    EXPECT_EQ(ep.wastedSteps, 14u); // 10 before + 4 re-executed
    EXPECT_EQ(ep.backoffTicks, 3u);
    EXPECT_EQ(ep.startClock, 100u);
    EXPECT_EQ(ep.endClock, 140u);

    EXPECT_EQ(p.phaseTicks(Phase::Dispatch), 10u);
    EXPECT_EQ(p.phaseTicks(Phase::Reexec), 9u);
    EXPECT_EQ(p.phaseTicks(Phase::Backoff), 3u);
    EXPECT_EQ(p.totalTicks(), 22u);

    p.clear();
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.episodes().size(), 0u);
}

TEST(PhaseProfiler, RecoveredWithoutRollbackIsNoEpisode)
{
    // CaRecovered fires on every success pass of a hardened site; only
    // sites that actually rolled back have an episode to close.
    PhaseProfiler p;
    p.onStep(1, Phase::Dispatch);
    p.onRecovered(1, 0, 10, 10);
    EXPECT_TRUE(p.episodes().empty());
}

TEST(PhaseProfiler, ThreadsKeepIndependentEpisodes)
{
    PhaseProfiler p;
    p.onRollback(1, "site.a", 2);
    p.onRollback(2, "site.b", 5);
    p.onSteps(1, Phase::Reexec, 3);
    p.onSteps(2, Phase::Reexec, 8);
    p.onRecovered(2, 1, 0, 9);
    p.onRecovered(1, 1, 0, 11);
    ASSERT_EQ(p.episodes().size(), 2u);
    // Closed in completion order, each with its own thread's numbers.
    EXPECT_EQ(p.episodes()[0].siteTag, "site.b");
    EXPECT_EQ(p.episodes()[0].reexecSteps, 8u);
    EXPECT_EQ(p.episodes()[1].siteTag, "site.a");
    EXPECT_EQ(p.episodes()[1].reexecSteps, 3u);
}

TEST(PhaseProfiler, WaitsBookTicksNotSteps)
{
    PhaseProfiler p;
    p.onWait(Phase::LockWait, 12);
    p.onWait(Phase::LockWait, 3);
    EXPECT_EQ(p.phaseTicks(Phase::LockWait), 15u);
    // Waits never touch the per-thread step-since-checkpoint counter:
    // a rollback right after sees zero wasted steps.
    p.onRollback(0, "s", 1);
    p.onRecovered(0, 1, 0, 1);
    EXPECT_EQ(p.episodes()[0].wastedSteps, 0u);
}

TEST(ProfileAgg, AddFoldsARunAndMergeIsAssociative)
{
    PhaseProfiler p;
    p.onSteps(0, Phase::Dispatch, 6);
    p.onRollback(0, "assert.f.1", 4);
    p.onSteps(0, Phase::Reexec, 2);
    p.onRecovered(0, 1, 0, 10);

    ProfileAgg a;
    EXPECT_TRUE(a.empty());
    a.add(p);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a.runs, 1u);
    EXPECT_EQ(a.episodes, 1u);
    EXPECT_EQ(a.retries, 1u);
    EXPECT_EQ(a.reexecSteps, 2u);
    EXPECT_EQ(a.wastedSteps, 6u);
    EXPECT_EQ(a.ckptDistanceTicks, 4u);
    EXPECT_EQ(a.episodesBySite.at("assert.f.1"), 1u);
    EXPECT_EQ(a.reexecBySite.at("assert.f.1"), 2u);
    EXPECT_DOUBLE_EQ(a.reexecPerEpisode(), 2.0);

    ProfileAgg b;
    b.add(p);
    b.add(p);

    // (a + b) == (b + a): merge is commutative on every field, which
    // is what lets the campaign fold per-cell aggregates in matrix
    // order regardless of which worker produced them.
    ProfileAgg ab = a, ba = b;
    ab.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab, ba);
    EXPECT_EQ(ab.runs, 3u);
    EXPECT_EQ(ab.episodes, 3u);
    EXPECT_EQ(ab.totalTicks(), 3 * p.totalTicks());
}

TEST(ProfileAgg, JsonShapeIsStable)
{
    ProfileAgg a;
    PhaseProfiler p;
    p.onSteps(0, Phase::Memory, 5);
    p.onRollback(0, "oracle.g.2", 1);
    p.onRecovered(0, 1, 0, 2);
    a.add(p);

    JsonWriter w(0);
    a.writeJson(w);
    std::string j = w.str();
    for (const char *key :
         {"\"runs\"", "\"total_ticks\"", "\"phases\"", "\"dispatch\"",
          "\"backoff\"", "\"recovery_tax\"", "\"episodes\"",
          "\"reexec_steps_per_episode\"", "\"by_site\"",
          "\"oracle.g.2\""})
        EXPECT_NE(j.find(key), std::string::npos) << key << " in " << j;

    JsonWriter w2(0);
    a.writeJson(w2);
    EXPECT_EQ(j, w2.str()); // deterministic byte-for-byte
}

/** A small two-group doc with one wall cell, used by the exporter
 *  tests below. */
ProfileDoc
sampleDoc()
{
    PhaseProfiler p;
    p.onSteps(0, Phase::Dispatch, 70);
    p.onSteps(0, Phase::Memory, 20);
    p.onRollback(0, "assert.f.1", 3);
    p.onSteps(0, Phase::Reexec, 10);
    p.onRecovered(0, 1, 0, 50);

    ProfileDoc doc;
    ProfileAgg a;
    a.add(p);
    doc.phaseGroups.emplace_back("ZSNES/pct:d2", a);
    ProfileAgg b;
    b.add(p);
    b.add(p);
    doc.phaseGroups.emplace_back("ZSNES/random", b);
    doc.wall.push_back({"ZSNES", "pct:d2", "hardened", 1234, 2});
    return doc;
}

TEST(Exporters, SpeedscopeIsStructurallyValid)
{
    ProfileDoc doc = sampleDoc();
    std::string j = speedscopeJson(doc, "unit test");

    EXPECT_NE(
        j.find("https://www.speedscope.app/file-format-schema.json"),
        std::string::npos);
    EXPECT_NE(j.find("\"name\": \"unit test\""), std::string::npos);
    EXPECT_NE(j.find("\"frames\""), std::string::npos);
    EXPECT_NE(j.find("\"type\": \"sampled\""), std::string::npos);
    EXPECT_NE(j.find("\"phases (virtual ticks)\""), std::string::npos);
    // The wall cell produced the second profile.
    EXPECT_NE(j.find("\"campaign wall clock\""), std::string::npos);
    EXPECT_NE(j.find("\"microseconds\""), std::string::npos);
    // Group labels and phase names are interned as frames.
    EXPECT_NE(j.find("\"ZSNES/pct:d2\""), std::string::npos);
    EXPECT_NE(j.find("\"reexec\""), std::string::npos);

    // Without wall cells only the deterministic profile is emitted.
    doc.wall.clear();
    std::string noWall = speedscopeJson(doc, "unit test");
    EXPECT_EQ(noWall.find("campaign wall clock"), std::string::npos);
    EXPECT_EQ(noWall, speedscopeJson(doc, "unit test")); // deterministic
}

TEST(Exporters, FoldedStacksOneLinePerNonzeroCell)
{
    ProfileDoc doc = sampleDoc();
    std::string folded = foldedStacks(doc);
    EXPECT_NE(folded.find("ZSNES/pct:d2;dispatch 70\n"),
              std::string::npos)
        << folded;
    EXPECT_NE(folded.find("ZSNES/pct:d2;reexec 10\n"),
              std::string::npos);
    EXPECT_NE(folded.find("ZSNES/random;memory 40\n"),
              std::string::npos);
    EXPECT_NE(folded.find("wall;ZSNES;pct:d2;hardened 1234\n"),
              std::string::npos);
    // Zero-tick phases are omitted entirely.
    EXPECT_EQ(folded.find("lock_wait"), std::string::npos);
    EXPECT_EQ(folded.find(" 0\n"), std::string::npos);
}

TEST(Exporters, HotPhaseTableRanksAndSumsTheTax)
{
    ProfileDoc doc = sampleDoc();
    std::string table = hotPhaseTable(doc);
    // dispatch (210 over both groups) outranks memory (60).
    size_t dispatchAt = table.find("dispatch");
    size_t memoryAt = table.find("memory");
    ASSERT_NE(dispatchAt, std::string::npos);
    ASSERT_NE(memoryAt, std::string::npos);
    EXPECT_LT(dispatchAt, memoryAt);
    EXPECT_NE(table.find("total"), std::string::npos);
    // The tax line aggregates all groups: 3 episodes, 3 retries.
    EXPECT_NE(table.find("recovery tax: 3 episodes, 3 retries"),
              std::string::npos)
        << table;

    // topN truncates the ranking but never the total line.
    std::string top1 = hotPhaseTable(doc, 1);
    EXPECT_NE(top1.find("dispatch"), std::string::npos);
    EXPECT_EQ(top1.find("memory"), std::string::npos);
    EXPECT_NE(top1.find("total"), std::string::npos);
}

} // namespace
} // namespace conair::obs::prof
