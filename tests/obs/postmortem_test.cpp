/**
 * @file
 * Postmortem diagnosis engine tests.
 *
 * The centerpiece runs every bundled kernel under its failure-forcing
 * schedule in diagnosis recording mode, feeds the trace to
 * obs::pm::diagnose(), and asserts that the reconstructed racy pair
 * names the kernel's documented racing variable and that the verdict
 * matches the Table 2 root-cause taxonomy ("A Vio." / "O Vio." /
 * "A/O Vio." / deadlock).  This pins the whole chain: VM shared-access
 * events -> trace indexing -> backward-slice join -> verdict ladder.
 */
#include <set>

#include <gtest/gtest.h>

#include "apps/harness.h"
#include "obs/postmortem/diagnosis.h"
#include "obs/trace.h"
#include "support/json.h"
#include "vm/interp.h"

namespace conair {
namespace {

using obs::pm::Verdict;

/** The shared variable (or mutex) at the heart of each kernel's bug —
 *  the name diagnosis must reconstruct from the trace. */
const char *
expectedRacingVariable(const std::string &app)
{
    if (app == "FFT")
        return "im_energy";
    if (app == "HawkNL")
        return "nlock";
    if (app == "HTTrack")
        return "opt";
    if (app == "MozillaJS")
        return "gc_lock";
    if (app == "MozillaXP")
        return "m_thd";
    if (app == "MySQL1")
        return "log_open";
    if (app == "MySQL2")
        return "table_cache";
    if (app == "SQLite")
        return "db_mutex";
    if (app == "Transmission")
        return "session_bandwidth";
    if (app == "ZSNES")
        return "sound_ready";
    return "";
}

/** Runs one kernel's scripted buggy schedule (hardened build, so the
 *  run recovers) in diagnosis mode and returns the report.  Seeds are
 *  probed until one actually exercises recovery. */
obs::pm::RecoveryReport
diagnoseKernel(const apps::AppSpec &spec, uint64_t *seedUsed)
{
    apps::PreparedApp p =
        apps::prepareApp(spec, apps::HardenOptions{});
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        obs::FlightRecorder rec(65536);
        vm::RunResult r = apps::runBuggy(p, seed, &rec, nullptr, true);
        if (r.stats.rollbacks == 0)
            continue;
        if (seedUsed)
            *seedUsed = seed;
        return obs::pm::diagnose(rec, *p.module, spec.name);
    }
    ADD_FAILURE() << spec.name
                  << ": no seed in 1..8 exercised recovery";
    return {};
}

TEST(Postmortem, DiagnosesEveryKernelsDocumentedBug)
{
    for (const apps::AppSpec &spec : apps::allApps()) {
        SCOPED_TRACE(spec.name);
        uint64_t seed = 0;
        obs::pm::RecoveryReport rep = diagnoseKernel(spec, &seed);
        ASSERT_FALSE(rep.episodes.empty())
            << spec.name << ": no recovery episodes in the trace";

        const obs::pm::EpisodeReport *ep = rep.primary();
        ASSERT_NE(ep, nullptr);
        EXPECT_NE(ep->verdict, Verdict::Unknown)
            << spec.name << " seed " << seed;
        EXPECT_TRUE(obs::pm::verdictMatchesRootCause(
            ep->verdict, apps::rootCauseName(spec.rootCause)))
            << spec.name << ": verdict "
            << obs::pm::verdictName(ep->verdict) << " vs root cause "
            << apps::rootCauseName(spec.rootCause);
        EXPECT_EQ(ep->variable, expectedRacingVariable(spec.name))
            << spec.name;
        EXPECT_TRUE(ep->recovered) << spec.name;
        EXPECT_TRUE(ep->failingAccess.valid) << spec.name;
        EXPECT_TRUE(ep->racingAccess.valid) << spec.name;
        // The pair is a genuine cross-thread conflict.
        if (ep->failingAccess.valid && ep->racingAccess.valid)
            EXPECT_NE(ep->failingAccess.tid, ep->racingAccess.tid)
                << spec.name;
    }
}

TEST(Postmortem, ReportExportersAreDeterministic)
{
    const apps::AppSpec *spec = apps::findApp("MySQL1");
    ASSERT_NE(spec, nullptr);
    obs::pm::RecoveryReport a = diagnoseKernel(*spec, nullptr);
    obs::pm::RecoveryReport b = diagnoseKernel(*spec, nullptr);
    EXPECT_EQ(obs::pm::renderText(a), obs::pm::renderText(b));
    EXPECT_EQ(obs::pm::toJson(a), obs::pm::toJson(b));
}

TEST(Postmortem, TextReportCarriesTheInterleavingDiagram)
{
    const apps::AppSpec *spec = apps::findApp("MySQL1");
    ASSERT_NE(spec, nullptr);
    obs::pm::RecoveryReport rep = diagnoseKernel(*spec, nullptr);
    std::string text = obs::pm::renderText(rep);
    EXPECT_NE(text.find("=== recovery diagnosis: MySQL1"),
              std::string::npos);
    EXPECT_NE(text.find("(failing)"), std::string::npos);
    EXPECT_NE(text.find("(racing)"), std::string::npos);
    EXPECT_NE(text.find("scheduler switch"), std::string::npos);
    EXPECT_NE(text.find("log_open"), std::string::npos);
}

TEST(Postmortem, JsonReportIsWellFormed)
{
    const apps::AppSpec *spec = apps::findApp("ZSNES");
    ASSERT_NE(spec, nullptr);
    obs::pm::RecoveryReport rep = diagnoseKernel(*spec, nullptr);
    std::string json = obs::pm::toJson(rep);
    for (const char *key :
         {"\"program\"", "\"episodes\"", "\"verdict\"", "\"variable\"",
          "\"switch_window\"", "\"failing_access\"",
          "\"racing_access\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
}

TEST(Postmortem, VerdictTaxonomyMapping)
{
    using obs::pm::verdictMatchesRootCause;
    EXPECT_TRUE(verdictMatchesRootCause(Verdict::Deadlock, "deadlock"));
    EXPECT_FALSE(
        verdictMatchesRootCause(Verdict::OrderViolation, "deadlock"));
    EXPECT_TRUE(verdictMatchesRootCause(Verdict::AtomicityViolation,
                                        "A Vio."));
    EXPECT_TRUE(verdictMatchesRootCause(Verdict::LostUpdate, "A Vio."));
    EXPECT_FALSE(
        verdictMatchesRootCause(Verdict::OrderViolation, "A Vio."));
    EXPECT_TRUE(
        verdictMatchesRootCause(Verdict::OrderViolation, "O Vio."));
    EXPECT_FALSE(verdictMatchesRootCause(Verdict::AtomicityViolation,
                                         "O Vio."));
    EXPECT_TRUE(verdictMatchesRootCause(Verdict::AtomicityViolation,
                                        "A/O Vio."));
    EXPECT_TRUE(
        verdictMatchesRootCause(Verdict::OrderViolation, "A/O Vio."));
    EXPECT_FALSE(
        verdictMatchesRootCause(Verdict::Deadlock, "A/O Vio."));
    EXPECT_FALSE(verdictMatchesRootCause(Verdict::Unknown, "A Vio."));
}

TEST(Postmortem, VerdictNamesRoundTripExhaustively)
{
    using obs::pm::verdictFromName;
    using obs::pm::verdictName;
    const Verdict all[] = {
        Verdict::AtomicityViolation, Verdict::OrderViolation,
        Verdict::LostUpdate, Verdict::Deadlock, Verdict::Unknown};
    // name -> verdict -> name is the identity for every enumerator,
    // and all five names are distinct.
    std::set<std::string> names;
    for (Verdict v : all) {
        std::string name = verdictName(v);
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate verdict name " << name;
        Verdict back = Verdict::Unknown;
        ASSERT_TRUE(verdictFromName(name, back)) << name;
        EXPECT_EQ(back, v) << name;
    }
    // Unrecognised names are rejected and leave the out-param alone.
    Verdict out = Verdict::Deadlock;
    EXPECT_FALSE(verdictFromName("", out));
    EXPECT_FALSE(verdictFromName("race-condition", out));
    EXPECT_FALSE(verdictFromName("Lost-Update", out)); // case-sensitive
    EXPECT_EQ(out, Verdict::Deadlock);
}

TEST(Postmortem, VerdictTaxonomyTruthTableIsExhaustive)
{
    using obs::pm::verdictMatchesRootCause;
    // Every (verdict, Table 2 root-cause label) cell, spelled out: the
    // compatibility relation is part of the fix engine's dispatch
    // contract, so no cell may drift silently.
    struct Row
    {
        Verdict v;
        bool deadlock, aVio, oVio, aoVio;
    };
    const Row table[] = {
        {Verdict::AtomicityViolation, false, true, false, true},
        {Verdict::OrderViolation, false, false, true, true},
        {Verdict::LostUpdate, false, true, false, true},
        {Verdict::Deadlock, true, false, false, false},
        {Verdict::Unknown, false, false, false, false},
    };
    for (const Row &r : table) {
        EXPECT_EQ(verdictMatchesRootCause(r.v, "deadlock"), r.deadlock)
            << obs::pm::verdictName(r.v);
        EXPECT_EQ(verdictMatchesRootCause(r.v, "A Vio."), r.aVio)
            << obs::pm::verdictName(r.v);
        EXPECT_EQ(verdictMatchesRootCause(r.v, "O Vio."), r.oVio)
            << obs::pm::verdictName(r.v);
        EXPECT_EQ(verdictMatchesRootCause(r.v, "A/O Vio."), r.aoVio)
            << obs::pm::verdictName(r.v);
        // Unknown labels match nothing.
        EXPECT_FALSE(verdictMatchesRootCause(r.v, "B Vio."));
        EXPECT_FALSE(verdictMatchesRootCause(r.v, ""));
    }
}

TEST(Postmortem, PackedCellAddressRoundTrips)
{
    for (uint8_t seg : {0, 1, 2, 3})
        for (uint32_t block : {0u, 1u, 7u, 4095u})
            for (int64_t off : {int64_t(0), int64_t(1), int64_t(255),
                                int64_t((1 << 24) - 1)}) {
                uint64_t packed = obs::packCellAddr(seg, block, off);
                EXPECT_EQ(obs::cellSeg(packed), seg);
                EXPECT_EQ(obs::cellBlock(packed), block);
                EXPECT_EQ(obs::cellOffset(packed), off);
            }
}

TEST(Postmortem, EmptyTraceProducesEmptyReport)
{
    const apps::AppSpec *spec = apps::findApp("MySQL1");
    ASSERT_NE(spec, nullptr);
    apps::PreparedApp p =
        apps::prepareApp(*spec, apps::HardenOptions{});
    obs::FlightRecorder rec(64); // never attached to a run
    obs::pm::RecoveryReport rep =
        obs::pm::diagnose(rec, *p.module, "MySQL1");
    EXPECT_TRUE(rep.episodes.empty());
    EXPECT_EQ(rep.events, 0u);
    EXPECT_EQ(rep.primary(), nullptr);
    // Both exporters cope with an empty report.
    EXPECT_NE(obs::pm::renderText(rep).find("no recovery episodes"),
              std::string::npos);
    EXPECT_FALSE(obs::pm::toJson(rep).empty());
}

} // namespace
} // namespace conair
