/**
 * @file
 * VM <-> flight-recorder integration tests.  Two properties are pinned:
 *
 *  1. *Passivity.*  Attaching a recorder and a metrics registry is pure
 *     observation — the instrumented run is tick-for-tick identical to
 *     the bare run (same outcome, clock, steps, output, and counters).
 *     This is the contract that lets the campaign engine keep its
 *     tick-identity differential oracle meaningful while tracing.
 *
 *  2. *Consistency.*  The recorder's per-kind totals and the metrics
 *     counters agree with RunStats, even when the ring wrapped and
 *     dropped events — totals are maintained outside the ring.
 */
#include <gtest/gtest.h>

#include "apps/harness.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "vm/interp.h"

namespace conair {
namespace {

/** MySQL1 under its failure-forcing schedule: rolls back and recovers,
 *  so every recovery-related event kind fires. */
const apps::AppSpec &
mysqlSpec()
{
    const apps::AppSpec *spec = apps::findApp("MySQL1");
    EXPECT_NE(spec, nullptr);
    return *spec;
}

TEST(VmTrace, RecordingDoesNotPerturbExecution)
{
    apps::PreparedApp p =
        apps::prepareApp(mysqlSpec(), apps::HardenOptions{});
    vm::RunResult bare = apps::runBuggy(p, 1);

    obs::FlightRecorder rec(4096);
    obs::MetricsRegistry met;
    vm::RunResult traced = apps::runBuggy(p, 1, &rec, &met);

    EXPECT_EQ(traced.outcome, bare.outcome);
    EXPECT_EQ(traced.exitCode, bare.exitCode);
    EXPECT_EQ(traced.clock, bare.clock);
    EXPECT_EQ(traced.output, bare.output);
    EXPECT_EQ(traced.stats.steps, bare.stats.steps);
    EXPECT_EQ(traced.stats.schedTicks, bare.stats.schedTicks);
    EXPECT_EQ(traced.stats.rollbacks, bare.stats.rollbacks);
    EXPECT_EQ(traced.stats.checkpointsExecuted,
              bare.stats.checkpointsExecuted);
    EXPECT_EQ(traced.stats.recoveries.size(),
              bare.stats.recoveries.size());
    // The run actually exercised recovery, so the test is not vacuous.
    EXPECT_GT(traced.stats.rollbacks, 0u);
}

TEST(VmTrace, DiagnosisModeDoesNotPerturbExecution)
{
    // recordSharedAccesses adds a SharedLoad/SharedStore event per
    // non-stack memory access — by far the chattiest recording mode —
    // and must still be pure observation: tick-for-tick identical to
    // the bare run.
    apps::PreparedApp p =
        apps::prepareApp(mysqlSpec(), apps::HardenOptions{});
    vm::RunResult bare = apps::runBuggy(p, 1);

    obs::FlightRecorder rec(65536);
    obs::MetricsRegistry met;
    vm::RunResult diag = apps::runBuggy(p, 1, &rec, &met, true);

    EXPECT_EQ(diag.outcome, bare.outcome);
    EXPECT_EQ(diag.exitCode, bare.exitCode);
    EXPECT_EQ(diag.clock, bare.clock);
    EXPECT_EQ(diag.output, bare.output);
    EXPECT_EQ(diag.stats.steps, bare.stats.steps);
    EXPECT_EQ(diag.stats.schedTicks, bare.stats.schedTicks);
    EXPECT_EQ(diag.stats.rollbacks, bare.stats.rollbacks);
    EXPECT_EQ(diag.stats.checkpointsExecuted,
              bare.stats.checkpointsExecuted);
    EXPECT_EQ(diag.stats.recoveries.size(),
              bare.stats.recoveries.size());
    // Diagnosis mode actually recorded shared traffic (not vacuous).
    EXPECT_GT(rec.totalOf(obs::EventKind::SharedLoad), 0u);
    EXPECT_GT(rec.totalOf(obs::EventKind::SharedStore), 0u);
    EXPECT_GT(diag.stats.rollbacks, 0u);
}

TEST(VmTrace, SharedAccessesOffByDefault)
{
    // A recorder without recordSharedAccesses sees the recovery story
    // but zero SharedLoad/SharedStore events — diagnosis mode is
    // strictly opt-in.
    apps::PreparedApp p =
        apps::prepareApp(mysqlSpec(), apps::HardenOptions{});
    obs::FlightRecorder rec(4096);
    vm::RunResult r = apps::runBuggy(p, 1, &rec, nullptr);
    ASSERT_EQ(r.outcome, vm::Outcome::Success);
    EXPECT_GT(rec.totalOf(obs::EventKind::Rollback), 0u);
    EXPECT_EQ(rec.totalOf(obs::EventKind::SharedLoad), 0u);
    EXPECT_EQ(rec.totalOf(obs::EventKind::SharedStore), 0u);
}

TEST(VmTrace, DisabledModeRecordsNothing)
{
    // recorder == nullptr is the production default; nothing observable
    // may leak.  (A freshly constructed recorder left unattached must
    // also stay empty.)
    apps::PreparedApp p =
        apps::prepareApp(mysqlSpec(), apps::HardenOptions{});
    obs::FlightRecorder rec(64);
    vm::RunResult r = apps::runBuggy(p, 1, nullptr, nullptr);
    EXPECT_EQ(r.outcome, vm::Outcome::Success);
    EXPECT_EQ(rec.totalRecordedAll(), 0u);
    EXPECT_EQ(rec.threadCount(), 0u);
}

TEST(VmTrace, TotalsMatchRunStats)
{
    apps::PreparedApp p =
        apps::prepareApp(mysqlSpec(), apps::HardenOptions{});
    obs::FlightRecorder rec(4096);
    obs::MetricsRegistry met;
    vm::RunResult r = apps::runBuggy(p, 1, &rec, &met);
    ASSERT_EQ(r.outcome, vm::Outcome::Success);

    using K = obs::EventKind;
    EXPECT_EQ(rec.totalOf(K::Rollback), r.stats.rollbacks);
    EXPECT_EQ(rec.totalOf(K::Checkpoint), r.stats.checkpointsExecuted);
    EXPECT_EQ(rec.totalOf(K::RecoveryDone), r.stats.recoveries.size());
    EXPECT_EQ(rec.totalOf(K::Backoff), r.stats.backoffs);
    EXPECT_EQ(rec.totalOf(K::CompensationFree),
              r.stats.compensationFrees);
    EXPECT_EQ(rec.totalOf(K::CompensationUnlock),
              r.stats.compensationUnlocks);
    // ThreadSpawn also fires for the initial main thread, which the
    // spawn() builtin counter does not include.
    EXPECT_EQ(rec.totalOf(K::ThreadSpawn), r.stats.threadsSpawned + 1);
    EXPECT_EQ(rec.totalOf(K::ChaosRollback), r.stats.chaosRollbacks);

    EXPECT_EQ(met.counter("rollbacks"), r.stats.rollbacks);
    EXPECT_EQ(met.counter("checkpoints"), r.stats.checkpointsExecuted);
    EXPECT_EQ(met.counter("recoveries"), r.stats.recoveries.size());
    EXPECT_EQ(met.counter("backoffs"), r.stats.backoffs);
    const obs::Histogram *lat = met.histogram("recovery_latency_us");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count, r.stats.recoveries.size());
}

TEST(VmTrace, TotalsSurviveRingWraparound)
{
    apps::PreparedApp p =
        apps::prepareApp(mysqlSpec(), apps::HardenOptions{});
    // A tiny ring guarantees drops; totals must still match RunStats.
    obs::FlightRecorder rec(8);
    vm::RunResult r = apps::runBuggy(p, 1, &rec, nullptr);
    ASSERT_EQ(r.outcome, vm::Outcome::Success);
    EXPECT_GT(rec.droppedAll(), 0u);
    EXPECT_EQ(rec.totalOf(obs::EventKind::Checkpoint),
              r.stats.checkpointsExecuted);
    EXPECT_EQ(rec.totalOf(obs::EventKind::Rollback), r.stats.rollbacks);
}

TEST(VmTrace, TraceIsDeterministicAcrossRuns)
{
    apps::PreparedApp p =
        apps::prepareApp(mysqlSpec(), apps::HardenOptions{});
    std::string first, second;
    for (std::string *out : {&first, &second}) {
        obs::FlightRecorder rec(4096);
        obs::MetricsRegistry met;
        vm::RunResult r = apps::runBuggy(p, 1, &rec, &met);
        ASSERT_EQ(r.outcome, vm::Outcome::Success);
        *out = obs::chromeTraceJson(rec, "MySQL1") + "\n---\n" +
               met.toJson() + "\n---\n" + obs::recoveryTimeline(rec);
    }
    EXPECT_EQ(first, second);
}

TEST(VmTrace, RecorderSeesLockTraffic)
{
    apps::PreparedApp p =
        apps::prepareApp(mysqlSpec(), apps::HardenOptions{});
    obs::FlightRecorder rec(4096);
    vm::RunResult r = apps::runBuggy(p, 1, &rec, nullptr);
    ASSERT_EQ(r.outcome, vm::Outcome::Success);
    EXPECT_GT(rec.totalOf(obs::EventKind::LockAcquire), 0u);
}

TEST(VmTrace, FailureSiteFiresOnUnhardenedFailure)
{
    // A *recovered* hardened run never reaches the terminal failure
    // path, so FailureSite belongs to the unhardened leg of the story.
    apps::HardenOptions plain;
    plain.applyConAir = false;
    apps::PreparedApp p = apps::prepareApp(mysqlSpec(), plain);
    obs::FlightRecorder rec(4096);
    vm::RunResult r = apps::runBuggy(p, 1, &rec, nullptr);
    ASSERT_NE(r.outcome, vm::Outcome::Success);
    EXPECT_EQ(rec.totalOf(obs::EventKind::FailureSite), 1u);
}

} // namespace
} // namespace conair
