/**
 * @file
 * Byte-for-byte golden regression test for the postmortem diagnosis
 * exporters.
 *
 * Replays ZSNES under pct:d2:s2 (the campaign repro token the
 * acceptance criteria name) in diagnosis recording mode, diagnoses the
 * hardened leg, and pins both the human-readable report (with the
 * ASCII interleaving diagram) and the JSON document against
 * diagnosis.golden.  Any change to the verdict ladder, pair selection,
 * evidence wording, or either exporter shows up as a diff here.
 *
 * Re-bless after an *intentional* change with:
 *   ./obs_diagnosis_golden_test --update
 */
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "apps/harness.h"
#include "explore/campaign.h"
#include "obs/postmortem/diagnosis.h"
#include "obs/trace.h"

namespace conair {

bool updateGolden = false;

namespace {

std::string
goldenPath()
{
    return std::string(GOLDEN_DIR) + "/diagnosis.golden";
}

std::string
currentGolden()
{
    const apps::AppSpec *spec = apps::findApp("ZSNES");
    if (!spec)
        return "<ZSNES missing>";
    apps::CampaignApp app = apps::prepareCampaignApp(*spec);
    explore::Target target = apps::campaignTarget(app);

    explore::ScheduleSpec sched;
    EXPECT_TRUE(explore::parseScheduleToken("pct:d2:s2", sched));

    obs::FlightRecorder plainRec(65536), hardRec(65536);
    explore::ScheduleInstruments ins;
    ins.unhardened = &plainRec;
    ins.hardened = &hardRec;
    ins.recordSharedAccesses = true;
    explore::ScheduleOutcome o = explore::runOneSchedule(
        target, sched, explore::CampaignOptions{}, &ins);
    EXPECT_TRUE(o.ran);
    EXPECT_FALSE(o.diverged) << o.divergenceMsg;
    // The schedule must exercise recovery so the golden pins a real
    // episode, not an empty report.
    EXPECT_GT(o.hardenedRollbacks, 0u);

    obs::pm::RecoveryReport rep = obs::pm::diagnose(
        hardRec, *target.hardened, "ZSNES", sched.token());

    std::string out;
    out += "=== text report ===\n";
    out += obs::pm::renderText(rep);
    out += "=== json report ===\n";
    out += obs::pm::toJson(rep);
    out += "\n";
    return out;
}

TEST(DiagnosisGolden, MatchesGoldenFile)
{
    std::string current = currentGolden();

    if (updateGolden) {
        std::ofstream out(goldenPath());
        ASSERT_TRUE(out.is_open()) << goldenPath();
        out << current;
        SUCCEED() << "golden file updated";
        return;
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in.is_open())
        << goldenPath() << " missing; run with --update to create it";
    std::stringstream buf;
    buf << in.rdbuf();
    std::string expected = buf.str();

    std::istringstream cs(current), es(expected);
    std::string cline, eline;
    size_t lineno = 0;
    while (true) {
        bool cg = bool(std::getline(cs, cline));
        bool eg = bool(std::getline(es, eline));
        ++lineno;
        if (!cg && !eg)
            break;
        if (!cg)
            cline = "<missing line>";
        if (!eg)
            eline = "<missing line>";
        ASSERT_EQ(cline, eline)
            << "diagnosis.golden line " << lineno
            << " diverged; if the diagnosis change is intentional, "
               "re-bless with: ./obs_diagnosis_golden_test --update";
    }
    EXPECT_EQ(current, expected);
}

} // namespace
} // namespace conair

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update") {
            conair::updateGolden = true;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
