/**
 * @file
 * Byte-for-byte golden regression test for the postmortem diagnosis
 * exporters.
 *
 * Replays ZSNES under pct:d2:s2 (the campaign repro token the
 * acceptance criteria name) in diagnosis recording mode, diagnoses the
 * hardened leg, and pins both the human-readable report (with the
 * ASCII interleaving diagram) and the JSON document against
 * diagnosis.golden.  Any change to the verdict ladder, pair selection,
 * evidence wording, or either exporter shows up as a diff here.
 *
 * Re-bless after an *intentional* change with
 * `obs_diagnosis_golden_test --update`; a mismatch prints a unified
 * diff plus that exact command (tests/support/golden_util.h).
 */
#include <string>

#include <gtest/gtest.h>

#include "apps/harness.h"
#include "explore/campaign.h"
#include "obs/postmortem/diagnosis.h"
#include "obs/trace.h"
#include "tests/support/golden_util.h"

namespace conair {
namespace {

std::string
goldenPath()
{
    return std::string(GOLDEN_DIR) + "/diagnosis.golden";
}

std::string
currentGolden()
{
    const apps::AppSpec *spec = apps::findApp("ZSNES");
    if (!spec)
        return "<ZSNES missing>";
    apps::CampaignApp app = apps::prepareCampaignApp(*spec);
    explore::Target target = apps::campaignTarget(app);

    explore::ScheduleSpec sched;
    EXPECT_TRUE(explore::parseScheduleToken("pct:d2:s2", sched));

    obs::FlightRecorder plainRec(65536), hardRec(65536);
    explore::ScheduleInstruments ins;
    ins.unhardened = &plainRec;
    ins.hardened = &hardRec;
    ins.recordSharedAccesses = true;
    explore::ScheduleOutcome o = explore::runOneSchedule(
        target, sched, explore::CampaignOptions{}, &ins);
    EXPECT_TRUE(o.ran);
    EXPECT_FALSE(o.diverged) << o.divergenceMsg;
    // The schedule must exercise recovery so the golden pins a real
    // episode, not an empty report.
    EXPECT_GT(o.hardenedRollbacks, 0u);

    obs::pm::RecoveryReport rep = obs::pm::diagnose(
        hardRec, *target.hardened, "ZSNES", sched.token());

    std::string out;
    out += "=== text report ===\n";
    out += obs::pm::renderText(rep);
    out += "=== json report ===\n";
    out += obs::pm::toJson(rep);
    out += "\n";
    return out;
}

TEST(DiagnosisGolden, MatchesGoldenFile)
{
    testutil::checkGolden(currentGolden(), goldenPath());
}

} // namespace
} // namespace conair

int
main(int argc, char **argv)
{
    return conair::testutil::goldenMain(argc, argv);
}
