/**
 * @file
 * Byte-for-byte golden regression test for the Prometheus text
 * exposition renderer (MetricsRegistry::toPrometheusText).
 *
 * Builds one registry holding every stock instrument plus a
 * pathological `retries_by_site/<tag>` whose tag exercises all three
 * escape cases (backslash, double quote, newline), renders it, and
 * compares against metrics_prom.golden byte for byte.  This pins the
 * exposition-format conformance work: HELP/TYPE lines per family,
 * label-value escaping, cumulative `_bucket`/`_sum`/`_count` series,
 * and the `_p50`/`_p95`/`_p99` estimated-quantile gauge families.
 *
 * Re-bless after an *intentional* format change with
 * `obs_metrics_prom_golden_test --update`; a mismatch prints a unified
 * diff plus that exact command (tests/support/golden_util.h).
 */
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "tests/support/golden_util.h"

namespace conair {
namespace {

std::string
goldenPath()
{
    return std::string(GOLDEN_DIR) + "/metrics_prom.golden";
}

/** One registry shaped like a real hardened campaign run: every stock
 *  counter and histogram populated, plus tagged retry counters with
 *  characters the exposition format must escape. */
std::string
currentGolden()
{
    obs::MetricsRegistry reg;

    reg.add("checkpoints", 240);
    reg.add("rollbacks", 7);
    reg.add("recoveries", 6);
    reg.add("backoffs", 2);
    reg.add("compensation_frees", 1);
    reg.add("compensation_unlocks", 3);
    reg.add("chaos_rollbacks", 0);
    reg.add("retries_by_site/apache1.log_write", 4);
    // The escaping gauntlet: backslash, quote, and newline in a label
    // value, all of which 0.0.4 requires escaped as \\ \" \n.
    reg.add("retries_by_site/odd\\site\"quoted\"\nsecond_line", 3);

    for (uint64_t v : {3u, 12u, 45u, 45u, 220u, 1800u})
        reg.observe("recovery_latency_us", v,
                    obs::MetricsRegistry::latencyBucketsUs());
    for (uint64_t v : {1u, 1u, 2u, 5u})
        reg.observe("recovery_retries", v,
                    obs::MetricsRegistry::retryBuckets());
    for (uint64_t v : {8u, 90u, 400u})
        reg.observe("ckpt_to_failure_ticks", v,
                    obs::MetricsRegistry::tickDistanceBuckets());

    return reg.toPrometheusText();
}

TEST(MetricsPromGolden, MatchesGoldenFile)
{
    testutil::checkGolden(currentGolden(), goldenPath());
}

} // namespace
} // namespace conair

int
main(int argc, char **argv)
{
    return conair::testutil::goldenMain(argc, argv);
}
