/**
 * @file
 * VM <-> recovery-cost profiler integration tests.  The load-bearing
 * property is *passivity*: attaching a PhaseProfiler through
 * VmConfig::profiler is pure observation — the profiled run is tick-
 * and memDigest-identical to a bare one on all three engines, with and
 * without chaos injection.  This is the contract that lets the
 * campaign profile every hardened leg while the bare Reference/Fused
 * replicas keep the tick-identity oracle meaningful.
 *
 * Non-vacuity is asserted throughout: the runs under test really roll
 * back and recover, so the profiler ends up with open-and-closed
 * episodes, re-execution ticks, and rollback steps — not zeros.
 */
#include <gtest/gtest.h>

#include "apps/harness.h"
#include "obs/metrics.h"
#include "obs/profile/profile.h"
#include "obs/profile/profile_export.h"
#include "obs/trace.h"
#include "vm/interp.h"

namespace conair {
namespace {

using obs::prof::Phase;
using obs::prof::PhaseProfiler;
using obs::prof::ProfileAgg;

const char *
engineName(vm::ExecEngine e)
{
    switch (e) {
      case vm::ExecEngine::Decoded: return "Decoded";
      case vm::ExecEngine::Reference: return "Reference";
      case vm::ExecEngine::Fused: return "Fused";
    }
    return "?";
}

const apps::AppSpec &
mysqlSpec()
{
    const apps::AppSpec *spec = apps::findApp("MySQL1");
    EXPECT_NE(spec, nullptr);
    return *spec;
}

/** Field-by-field fingerprint equality of a bare and an instrumented
 *  run — the same fields the replay referee checks. */
void
expectIdentical(const vm::RunResult &bare, const vm::RunResult &prof,
                const char *what)
{
    EXPECT_EQ(prof.outcome, bare.outcome) << what;
    EXPECT_EQ(prof.exitCode, bare.exitCode) << what;
    EXPECT_EQ(prof.clock, bare.clock) << what;
    EXPECT_EQ(prof.output, bare.output) << what;
    EXPECT_EQ(prof.stats.steps, bare.stats.steps) << what;
    EXPECT_EQ(prof.stats.schedTicks, bare.stats.schedTicks) << what;
    EXPECT_EQ(prof.stats.rollbacks, bare.stats.rollbacks) << what;
    EXPECT_EQ(prof.stats.checkpointsExecuted,
              bare.stats.checkpointsExecuted)
        << what;
    EXPECT_EQ(prof.stats.recoveries.size(), bare.stats.recoveries.size())
        << what;
    EXPECT_EQ(prof.memDigest, bare.memDigest) << what;
}

TEST(VmProfile, ProfiledRunIsTickIdenticalOnAllThreeEngines)
{
    apps::PreparedApp p =
        apps::prepareApp(mysqlSpec(), apps::HardenOptions{});

    for (vm::ExecEngine engine :
         {vm::ExecEngine::Reference, vm::ExecEngine::Decoded,
          vm::ExecEngine::Fused}) {
        vm::VmConfig cfg = mysqlSpec().buggyConfig;
        cfg.seed = 1;
        cfg.engine = engine;
        vm::RunResult bare = vm::runProgram(*p.module, cfg);

        PhaseProfiler prof;
        cfg.profiler = &prof;
        vm::RunResult instrumented = vm::runProgram(*p.module, cfg);
        expectIdentical(bare, instrumented, engineName(engine));

        // Not vacuous: the run recovered and the profiler saw it.
        ASSERT_GT(instrumented.stats.rollbacks, 0u);
        EXPECT_FALSE(prof.empty());
        EXPECT_GT(prof.episodes().size(), 0u);
        EXPECT_GT(prof.phaseTicks(Phase::Rollback), 0u);
        EXPECT_GT(prof.phaseTicks(Phase::Reexec), 0u);
        EXPECT_GT(prof.phaseTicks(Phase::Dispatch), 0u);
    }
}

TEST(VmProfile, EnginesAgreeOnTheProfileItself)
{
    // Stronger than passivity: because all three engines retire the
    // same steps in the same order, the *profiler contents* must be
    // identical too — same phase ticks, same episodes, same tax.
    apps::PreparedApp p =
        apps::prepareApp(mysqlSpec(), apps::HardenOptions{});

    ProfileAgg agg[3];
    size_t i = 0;
    for (vm::ExecEngine engine :
         {vm::ExecEngine::Reference, vm::ExecEngine::Decoded,
          vm::ExecEngine::Fused}) {
        vm::VmConfig cfg = mysqlSpec().buggyConfig;
        cfg.seed = 1;
        cfg.engine = engine;
        PhaseProfiler prof;
        cfg.profiler = &prof;
        vm::RunResult r = vm::runProgram(*p.module, cfg);
        ASSERT_EQ(r.outcome, vm::Outcome::Success) << r.failureMsg;
        agg[i++].add(prof);
    }
    EXPECT_EQ(agg[0], agg[1]);
    EXPECT_EQ(agg[1], agg[2]);
}

TEST(VmProfile, ProfiledChaosRunStaysPassive)
{
    // Chaos injection exercises the rollback machinery on otherwise
    // clean schedules; the profiler must stay passive there too, and
    // the injected sites must not move.
    apps::PreparedApp p =
        apps::prepareApp(mysqlSpec(), apps::HardenOptions{});

    for (vm::ExecEngine engine :
         {vm::ExecEngine::Reference, vm::ExecEngine::Decoded,
          vm::ExecEngine::Fused}) {
        vm::VmConfig cfg = mysqlSpec().cleanConfig;
        cfg.seed = 11;
        cfg.engine = engine;
        cfg.chaosRollbackEveryN = 32;
        vm::RunResult bare = vm::runProgram(*p.module, cfg);
        ASSERT_FALSE(bare.stats.chaosSites.empty());

        PhaseProfiler prof;
        cfg.profiler = &prof;
        vm::RunResult instrumented = vm::runProgram(*p.module, cfg);
        expectIdentical(bare, instrumented, engineName(engine));
        EXPECT_EQ(instrumented.stats.chaosSites, bare.stats.chaosSites);
        EXPECT_EQ(instrumented.stats.chaosRollbacks,
                  bare.stats.chaosRollbacks);
        EXPECT_FALSE(prof.empty());
    }
}

TEST(VmProfile, HarnessOverloadAndRecorderComposePassively)
{
    // The minicc path attaches recorder + metrics + profiler at once;
    // the composition must still be pure observation.
    apps::PreparedApp p =
        apps::prepareApp(mysqlSpec(), apps::HardenOptions{});
    vm::RunResult bare = apps::runBuggy(p, 1);

    obs::FlightRecorder rec(4096);
    obs::MetricsRegistry met;
    PhaseProfiler prof;
    vm::RunResult all =
        apps::runBuggy(p, 1, &rec, &met, /*recordSharedAccesses=*/false,
                       &prof);
    expectIdentical(bare, all, "recorder+metrics+profiler");

    // Each instrument saw the same recovery story.
    ASSERT_GT(all.stats.rollbacks, 0u);
    EXPECT_EQ(rec.totalOf(obs::EventKind::Rollback),
              all.stats.rollbacks);
    EXPECT_EQ(met.counter("rollbacks"), all.stats.rollbacks);
    uint64_t profRetries = 0;
    for (const obs::prof::EpisodeCost &ep : prof.episodes())
        profRetries += ep.retries;
    EXPECT_EQ(profRetries, all.stats.rollbacks);
    EXPECT_EQ(prof.episodes().size(), all.stats.recoveries.size());
}

TEST(VmProfile, ProfileIsDeterministicAcrossRuns)
{
    // Same (program, config, seed) => bit-identical profiler contents
    // and byte-identical exports.  This is what makes the goldens and
    // the worker-count-independence fold possible at all.
    apps::PreparedApp p =
        apps::prepareApp(mysqlSpec(), apps::HardenOptions{});

    std::string first, second;
    ProfileAgg firstAgg, secondAgg;
    for (auto [out, agg] : {std::pair{&first, &firstAgg},
                            std::pair{&second, &secondAgg}}) {
        PhaseProfiler prof;
        vm::RunResult r = apps::runBuggy(p, 1, nullptr, nullptr, false,
                                         &prof);
        ASSERT_EQ(r.outcome, vm::Outcome::Success);
        agg->add(prof);
        obs::prof::ProfileDoc doc;
        doc.phaseGroups.emplace_back("MySQL1", *agg);
        *out = obs::prof::speedscopeJson(doc, "determinism") + "\n---\n" +
               obs::prof::foldedStacks(doc) + "\n---\n" +
               obs::prof::hotPhaseTable(doc);
    }
    EXPECT_EQ(firstAgg, secondAgg);
    EXPECT_EQ(first, second);
}

TEST(VmProfile, RecoveryTaxIsNonzeroOnEveryKernel)
{
    // The paper's Table 2 registry: every kernel's failure-forcing run
    // under the hardened build must pay a measurable recovery tax —
    // episodes closed, steps re-executed.  (bench_explore enforces the
    // same bound over the full campaign matrix; this is the one-seed
    // tier-1 version.)
    for (const apps::AppSpec &spec : apps::allApps()) {
        apps::PreparedApp p =
            apps::prepareApp(spec, apps::HardenOptions{});
        PhaseProfiler prof;
        vm::RunResult r = apps::runBuggy(p, 1, nullptr, nullptr, false,
                                         &prof);
        ProfileAgg agg;
        agg.add(prof);
        EXPECT_GT(agg.episodes, 0u) << spec.name;
        EXPECT_GT(agg.reexecSteps, 0u) << spec.name;
        EXPECT_GT(agg.retries, 0u) << spec.name;
        EXPECT_FALSE(agg.episodesBySite.empty()) << spec.name;
        (void)r;
    }
}

} // namespace
} // namespace conair
