/**
 * @file
 * MetricsRegistry unit tests: counter arithmetic, histogram bucket
 * placement, registry merge semantics, and the JSON serialization the
 * campaign report embeds.
 */
#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace conair::obs {
namespace {

TEST(Histogram, ObservePlacesValuesInBuckets)
{
    Histogram h;
    h.bounds = {10, 100, 1000};
    h.counts.assign(h.bounds.size() + 1, 0);
    h.observe(5);    // <= 10
    h.observe(10);   // <= 10 (bounds are inclusive upper edges)
    h.observe(11);   // <= 100
    h.observe(1001); // overflow
    EXPECT_EQ(h.counts[0], 2u);
    EXPECT_EQ(h.counts[1], 1u);
    EXPECT_EQ(h.counts[2], 0u);
    EXPECT_EQ(h.counts[3], 1u);
    EXPECT_EQ(h.count, 4u);
    EXPECT_EQ(h.sum, 5u + 10u + 11u + 1001u);
    EXPECT_EQ(h.max, 1001u);
    EXPECT_DOUBLE_EQ(h.mean(), double(h.sum) / 4.0);
}

TEST(Histogram, MergeAddsBucketwise)
{
    Histogram a, b;
    a.bounds = b.bounds = {10, 100};
    a.counts.assign(3, 0);
    b.counts.assign(3, 0);
    a.observe(1);
    b.observe(50);
    b.observe(5000);
    a.merge(b);
    EXPECT_EQ(a.count, 3u);
    EXPECT_EQ(a.counts[0], 1u);
    EXPECT_EQ(a.counts[1], 1u);
    EXPECT_EQ(a.counts[2], 1u);
    EXPECT_EQ(a.max, 5000u);
}

TEST(MetricsRegistry, CountersAccumulate)
{
    MetricsRegistry reg;
    EXPECT_TRUE(reg.empty());
    reg.add("rollbacks");
    reg.add("rollbacks", 4);
    EXPECT_EQ(reg.counter("rollbacks"), 5u);
    EXPECT_EQ(reg.counter("missing"), 0u);
    EXPECT_FALSE(reg.empty());
}

TEST(MetricsRegistry, ObserveCreatesHistogramOnFirstUse)
{
    MetricsRegistry reg;
    EXPECT_EQ(reg.histogram("lat"), nullptr);
    reg.observe("lat", 7, MetricsRegistry::latencyBucketsUs());
    reg.observe("lat", 300, MetricsRegistry::latencyBucketsUs());
    const Histogram *h = reg.histogram("lat");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 2u);
    EXPECT_EQ(h->max, 300u);
}

TEST(MetricsRegistry, ObserveBoundsAreFirstUseWins)
{
    // The bucket ladder is fixed by the first observe() of a name:
    // later observes with the *same* ladder fold in normally, and a
    // mismatched ladder is a caller bug — debug builds assert, release
    // builds keep the original ladder (counts stay coherent either
    // way).
    MetricsRegistry reg;
    reg.observe("lat", 7, MetricsRegistry::latencyBucketsUs());
    reg.observe("lat", 300, MetricsRegistry::latencyBucketsUs());
    const Histogram *h = reg.histogram("lat");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->bounds, MetricsRegistry::latencyBucketsUs());
    EXPECT_EQ(h->count, 2u);

    EXPECT_DEBUG_DEATH(
        reg.observe("lat", 1, MetricsRegistry::retryBuckets()),
        "bucket bounds differ from the histogram's first use");
#ifdef NDEBUG
    // Release builds took the observation into the original ladder.
    EXPECT_EQ(reg.histogram("lat")->bounds,
              MetricsRegistry::latencyBucketsUs());
    EXPECT_EQ(reg.histogram("lat")->count, 3u);
#endif
}

TEST(MetricsRegistry, MergeCombinesCountersAndHistograms)
{
    MetricsRegistry a, b;
    a.add("rollbacks", 2);
    b.add("rollbacks", 3);
    b.add("recoveries", 1);
    a.observe("retries", 2, MetricsRegistry::retryBuckets());
    b.observe("retries", 9, MetricsRegistry::retryBuckets());
    a.merge(b);
    EXPECT_EQ(a.counter("rollbacks"), 5u);
    EXPECT_EQ(a.counter("recoveries"), 1u);
    ASSERT_NE(a.histogram("retries"), nullptr);
    EXPECT_EQ(a.histogram("retries")->count, 2u);
    EXPECT_EQ(a.histogram("retries")->max, 9u);
}

TEST(MetricsRegistry, MergeIsOrderInsensitiveOnDisjointKeys)
{
    MetricsRegistry a, b, ab, ba;
    a.add("x", 1);
    b.add("y", 2);
    ab = a;
    ab.merge(b);
    ba = b;
    ba.merge(a);
    EXPECT_EQ(ab, ba);
}

TEST(MetricsRegistry, JsonIsSortedAndDeterministic)
{
    MetricsRegistry reg;
    reg.add("zeta", 1);
    reg.add("alpha", 2);
    reg.observe("lat", 42, MetricsRegistry::latencyBucketsUs());
    std::string j = reg.toJson();
    EXPECT_EQ(j, reg.toJson());
    // Map storage sorts keys.
    EXPECT_LT(j.find("alpha"), j.find("zeta"));
    EXPECT_NE(j.find("\"counters\""), std::string::npos);
    EXPECT_NE(j.find("\"histograms\""), std::string::npos);
    EXPECT_NE(j.find("\"mean\""), std::string::npos);
}

TEST(MetricsRegistry, ClearResetsEverything)
{
    MetricsRegistry reg;
    reg.add("x");
    reg.observe("h", 1, MetricsRegistry::retryBuckets());
    reg.clear();
    EXPECT_TRUE(reg.empty());
    EXPECT_EQ(reg.counter("x"), 0u);
    EXPECT_EQ(reg.histogram("h"), nullptr);
}

TEST(Histogram, QuantileInterpolatesWithinBuckets)
{
    Histogram h;
    h.bounds = {10, 100, 1000};
    h.counts.assign(4, 0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0); // empty
    for (uint64_t v = 1; v <= 100; ++v)
        h.observe(v); // uniform 1..100: 10 in [0,10], 90 in (10,100]
    // p50 = rank 50 -> 40th of 90 entries in the (10, 100] bucket.
    double p50 = h.quantile(0.5);
    EXPECT_GT(p50, 10.0);
    EXPECT_LE(p50, 100.0);
    EXPECT_NEAR(p50, 50.0, 10.0);
    // Quantiles are monotone and accessors agree with quantile().
    EXPECT_LE(h.p50(), h.p95());
    EXPECT_LE(h.p95(), h.p99());
    EXPECT_DOUBLE_EQ(h.p95(), h.quantile(0.95));
}

TEST(Histogram, QuantileClampsOverflowToObservedMax)
{
    Histogram h;
    h.bounds = {10};
    h.counts.assign(2, 0);
    h.observe(5);
    h.observe(70000); // overflow bucket
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 70000.0);
    // Interpolation never exceeds the observed max either.
    Histogram g;
    g.bounds = {1000};
    g.counts.assign(2, 0);
    g.observe(3);
    EXPECT_LE(g.quantile(0.99), 3.0);
}

TEST(MetricsRegistry, JsonCarriesQuantiles)
{
    MetricsRegistry reg;
    reg.observe("lat", 42, MetricsRegistry::latencyBucketsUs());
    std::string j = reg.toJson();
    EXPECT_NE(j.find("\"p50\""), std::string::npos);
    EXPECT_NE(j.find("\"p95\""), std::string::npos);
    EXPECT_NE(j.find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistry, PrometheusTextExposition)
{
    MetricsRegistry reg;
    reg.add("rollbacks", 3);
    reg.add("site/assert.foo.3", 2); // '/' splits into a site label
    reg.observe("recovery_latency_us", 7,
                MetricsRegistry::latencyBucketsUs());
    reg.observe("recovery_latency_us", 5000,
                MetricsRegistry::latencyBucketsUs());
    std::string t = reg.toPrometheusText();

    EXPECT_NE(t.find("# TYPE rollbacks counter"), std::string::npos);
    EXPECT_NE(t.find("rollbacks 3"), std::string::npos);
    EXPECT_NE(t.find("site{site=\"assert.foo.3\"} 2"),
              std::string::npos);
    EXPECT_NE(t.find("# TYPE recovery_latency_us histogram"),
              std::string::npos);
    EXPECT_NE(t.find("recovery_latency_us_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(t.find("recovery_latency_us_sum 5007"),
              std::string::npos);
    EXPECT_NE(t.find("recovery_latency_us_count 2"),
              std::string::npos);
    // Cumulative buckets: every le count is <= the +Inf count and
    // non-decreasing in bound order.
    EXPECT_EQ(t, reg.toPrometheusText()); // deterministic
}

TEST(MetricsRegistry, BucketLaddersAreSorted)
{
    for (const auto &bounds : {MetricsRegistry::latencyBucketsUs(),
                               MetricsRegistry::retryBuckets(),
                               MetricsRegistry::tickDistanceBuckets()}) {
        ASSERT_FALSE(bounds.empty());
        for (size_t i = 1; i < bounds.size(); ++i)
            EXPECT_LT(bounds[i - 1], bounds[i]);
    }
}

} // namespace
} // namespace conair::obs
