/**
 * @file
 * Interleaving-coverage tests (src/obs/coverage/).  Four properties
 * are pinned:
 *
 *  1. *Fold semantics.*  Each EdgeKind fires exactly when its
 *     definition says: SyncSync on consecutive sync-relevant events
 *     across a thread change, SwitchWindow around a SchedSwitch,
 *     RacyPair on a foreign shared store followed by a shared access
 *     to the same cell.  Scheduler noise and annotation events never
 *     produce edges.
 *
 *  2. *Determinism.*  Same trace, same fold, same digest — and the
 *     digest is a set-union invariant (insertion order into the
 *     CoverageMap does not matter).
 *
 *  3. *CoverageMap.*  Lock-free inserts return the novelty bit
 *     correctly, concurrent inserts from many threads converge on the
 *     set union, and overflow is counted instead of silently dropped.
 *
 *  4. *Passivity.*  A run with coverage-grade recording attached
 *     (recorder + diagnosis mode) is tick-for-tick identical to the
 *     bare run on all three execution engines — including memDigest.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "apps/harness.h"
#include "obs/coverage/coverage.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "vm/interp.h"

namespace conair {
namespace {

using obs::EventKind;
using obs::FlightRecorder;
using namespace obs::cov;

// FNV-1a offset basis: the digest of the empty edge set.
constexpr uint64_t kEmptyDigest = 14695981039346656037ull;

TEST(CoverageFold, SyncSyncFiresAcrossThreadChangeOnly)
{
    FlightRecorder rec(256);
    // Two lock acquires by the same thread: no edge.
    rec.record(0, EventKind::LockAcquire, 10, 1, 7, 0, "site.a");
    rec.record(0, EventKind::LockAcquire, 12, 2, 8, 0, "site.b");
    // Then thread 1 touches a lock: one SyncSync edge (b -> c).
    rec.record(1, EventKind::LockAcquire, 14, 3, 9, 0, "site.c");

    CoverageFold fold = foldCoverage(rec);
    ASSERT_EQ(fold.edges.size(), 1u);
    EXPECT_EQ(fold.edges[0].kind, EdgeKind::SyncSync);
    EXPECT_EQ(fold.perKind[size_t(EdgeKind::SyncSync)], 1u);
    EXPECT_EQ(fold.perKind[size_t(EdgeKind::SwitchWindow)], 0u);
    EXPECT_EQ(fold.perKind[size_t(EdgeKind::RacyPair)], 0u);
    // Discovery point is the destination event.
    EXPECT_EQ(fold.edges[0].tid, 1u);
    EXPECT_EQ(fold.edges[0].clock, 14u);
    EXPECT_EQ(fold.edges[0].step, 3u);
}

TEST(CoverageFold, SwitchWindowSpansSchedulerNoise)
{
    FlightRecorder rec(256);
    rec.record(0, EventKind::LockAcquire, 10, 1, 7, 0, "site.a");
    rec.record(0, EventKind::SchedSwitch, 11, 1, 0, 2);
    // Noise between the switch and the first real event is skipped.
    rec.record(1, EventKind::SchedPoint, 11, 1, 0, 0);
    rec.record(1, EventKind::Checkpoint, 12, 2, 3, 5, "site.b");

    CoverageFold fold = foldCoverage(rec);
    ASSERT_EQ(fold.edges.size(), 1u);
    EXPECT_EQ(fold.edges[0].kind, EdgeKind::SwitchWindow);
    EXPECT_EQ(fold.perKind[size_t(EdgeKind::SwitchWindow)], 1u);
}

TEST(CoverageFold, RacyPairNeedsForeignStoreOnSameCell)
{
    FlightRecorder rec(256);
    // Store by t0 on cell 5, load by t1 on cell 5: racy pair.
    rec.record(0, EventKind::SharedStore, 10, 1, 5, 42, "w.x");
    rec.record(1, EventKind::SharedLoad, 12, 2, 5, 42, "r.x");
    // Load by t1 on a *different* cell: no new racy pair.
    rec.record(1, EventKind::SharedLoad, 13, 3, 6, 0, "r.y");
    // Store + load by the same thread on cell 7: no racy pair.
    rec.record(0, EventKind::SharedStore, 14, 4, 7, 1, "w.z");
    rec.record(0, EventKind::SharedLoad, 15, 5, 7, 1, "r.z");

    CoverageFold fold = foldCoverage(rec);
    EXPECT_EQ(fold.perKind[size_t(EdgeKind::RacyPair)], 1u);
    auto racy = std::find_if(fold.edges.begin(), fold.edges.end(),
                             [](const Edge &e) {
                                 return e.kind == EdgeKind::RacyPair;
                             });
    ASSERT_NE(racy, fold.edges.end());
    EXPECT_EQ(racy->tid, 1u);
    EXPECT_EQ(racy->clock, 12u);
}

TEST(CoverageFold, SchedulerNoiseAloneProducesNoEdges)
{
    FlightRecorder rec(256);
    rec.record(0, EventKind::ThreadSpawn, 1, 0, 1, 0);
    rec.record(0, EventKind::SchedSwitch, 2, 0, 0, 2);
    rec.record(1, EventKind::SchedPoint, 3, 0, 0, 0);
    rec.record(1, EventKind::SchedSwitch, 4, 0, 1, 2);

    CoverageFold fold = foldCoverage(rec);
    EXPECT_TRUE(fold.edges.empty());
}

TEST(CoverageFold, DedupKeepsFirstDiscoveryAndSortsByKey)
{
    FlightRecorder once(256), thrice(256);
    for (int round = 0; round < 3; ++round) {
        // The same interleaving pattern repeated: an edge seen in
        // round one keeps its round-one discovery point.
        FlightRecorder *recs[] = {&thrice, round == 0 ? &once : nullptr};
        for (FlightRecorder *r : recs) {
            if (!r)
                continue;
            r->record(0, EventKind::SharedStore,
                      uint64_t(100 * round + 10), uint64_t(round), 5, 0,
                      "w.x");
            r->record(1, EventKind::SharedLoad,
                      uint64_t(100 * round + 12), uint64_t(round), 5, 0,
                      "r.x");
        }
    }
    CoverageFold first = foldCoverage(once);
    CoverageFold fold = foldCoverage(thrice);
    ASSERT_FALSE(first.edges.empty());
    for (const Edge &e : first.edges) {
        auto it = std::find_if(fold.edges.begin(), fold.edges.end(),
                               [&](const Edge &x) {
                                   return x.key == e.key;
                               });
        ASSERT_NE(it, fold.edges.end());
        EXPECT_EQ(it->clock, e.clock) << "discovery point not the first";
    }
    EXPECT_TRUE(std::is_sorted(
        fold.edges.begin(), fold.edges.end(),
        [](const Edge &x, const Edge &y) { return x.key < y.key; }));
    for (const Edge &e : fold.edges)
        EXPECT_NE(e.key, 0u) << "0 is the map's empty-slot sentinel";
}

TEST(CoverageFold, SwitchWindowAndSyncSyncNeverDoubleCountOnePair)
{
    // One interleaving fact, two candidate folds: a SchedSwitch
    // between a sync-relevant event on t0 and one on t1 closes the
    // switch window on exactly the (from, to) site pair the
    // cross-thread sync fold would also record.  Two kinds mean two
    // distinct keys, so without the per-run pair dedup the same fact
    // would be charged twice — inflating novelty counts and the
    // guided explorer's mutation energy downstream.
    FlightRecorder rec(256);
    rec.record(0, EventKind::SharedStore, 10, 1, 5, 0, "w.x");
    rec.record(0, EventKind::SchedSwitch, 11, 1, 0, 1);
    // Different cell so RacyPair (distinct endpoint semantics, store
    // site on the same address) stays out of the picture.
    rec.record(1, EventKind::SharedLoad, 12, 2, 6, 0, "r.y");

    CoverageFold fold = foldCoverage(rec);
    ASSERT_EQ(fold.edges.size(), 1u);
    // The window check runs first, so SwitchWindow owns the pair.
    EXPECT_EQ(fold.edges[0].kind, EdgeKind::SwitchWindow);
    EXPECT_EQ(fold.perKind[size_t(EdgeKind::SwitchWindow)], 1u);
    EXPECT_EQ(fold.perKind[size_t(EdgeKind::SyncSync)], 0u);
}

TEST(CoverageFold, DistinctPairsKeepBothWindowAndSyncEdges)
{
    // Control for the dedup above: when the window closes on a
    // *different* from-site than the last sync event (a non-sync
    // event slid in between), the two folds record genuinely
    // different pairs and both edges survive.
    FlightRecorder rec(256);
    rec.record(0, EventKind::LockAcquire, 10, 1, 7, 0, "site.a");
    rec.record(0, EventKind::Checkpoint, 11, 2, 3, 0, "site.b");
    rec.record(0, EventKind::SchedSwitch, 12, 2, 0, 1);
    rec.record(1, EventKind::LockAcquire, 13, 3, 8, 0, "site.c");

    CoverageFold fold = foldCoverage(rec);
    // SwitchWindow: b -> c; SyncSync: a -> c.
    ASSERT_EQ(fold.edges.size(), 2u);
    EXPECT_EQ(fold.perKind[size_t(EdgeKind::SwitchWindow)], 1u);
    EXPECT_EQ(fold.perKind[size_t(EdgeKind::SyncSync)], 1u);
}

TEST(CoverageFold, RefoldingAnnotatedTraceIsStable)
{
    FlightRecorder rec(256);
    rec.record(0, EventKind::SharedStore, 10, 1, 5, 0, "w.x");
    rec.record(1, EventKind::SharedLoad, 12, 2, 5, 0, "r.x");

    CoverageFold before = foldCoverage(rec);
    annotateRecorder(rec, before.edges, before.edges.size());
    CoverageFold after = foldCoverage(rec);

    EXPECT_EQ(coverageDigest(after.edges), coverageDigest(before.edges));
    EXPECT_EQ(after.edges.size(), before.edges.size());
}

TEST(CoverageDigest, EmptySetDigestIsOffsetBasisAndOrderInvariant)
{
    EXPECT_EQ(coverageDigest(std::vector<uint64_t>{}), kEmptyDigest);

    FlightRecorder rec(256);
    rec.record(0, EventKind::LockAcquire, 10, 1, 7, 0, "a");
    rec.record(1, EventKind::LockAcquire, 12, 2, 8, 0, "b");
    rec.record(0, EventKind::SharedStore, 14, 3, 5, 0, "w");
    rec.record(1, EventKind::SharedLoad, 16, 4, 5, 0, "r");
    CoverageFold fold = foldCoverage(rec);
    ASSERT_GE(fold.edges.size(), 2u);

    // Key-vector digest and edge-vector digest agree.
    std::vector<uint64_t> keys;
    for (const Edge &e : fold.edges)
        keys.push_back(e.key);
    EXPECT_EQ(coverageDigest(keys), coverageDigest(fold.edges));

    // Same trace folded twice: identical digest.
    EXPECT_EQ(coverageDigest(foldCoverage(rec).edges),
              coverageDigest(fold.edges));
}

TEST(CoverageAnnotate, EventsReachTimelineAndChromeTrace)
{
    FlightRecorder rec(256);
    rec.record(0, EventKind::SharedStore, 10, 1, 5, 0, "w.x");
    rec.record(1, EventKind::SharedLoad, 12, 2, 5, 0, "r.x");
    CoverageFold fold = foldCoverage(rec);
    ASSERT_FALSE(fold.edges.empty());
    annotateRecorder(rec, fold.edges, fold.edges.size());

    EXPECT_EQ(rec.totalOf(EventKind::CoverageNovel), fold.edges.size());
    EXPECT_EQ(rec.totalOf(EventKind::CoverageSnapshot), 1u);

    std::string timeline = obs::recoveryTimeline(rec);
    EXPECT_NE(timeline.find("coverage-novel"), std::string::npos);
    EXPECT_NE(timeline.find("coverage-snapshot"), std::string::npos);
    EXPECT_NE(timeline.find("kind=racy-pair"), std::string::npos);

    std::string chrome = obs::chromeTraceJson(rec, "annotated");
    EXPECT_NE(chrome.find("coverage-novel"), std::string::npos);
    EXPECT_NE(chrome.find("coverage-snapshot"), std::string::npos);
}

TEST(CoverageMap, NoveltyBitAndSnapshotDigest)
{
    FlightRecorder rec(256);
    rec.record(0, EventKind::LockAcquire, 10, 1, 7, 0, "a");
    rec.record(1, EventKind::LockAcquire, 12, 2, 8, 0, "b");
    rec.record(0, EventKind::SharedStore, 14, 3, 5, 0, "w");
    rec.record(1, EventKind::SharedLoad, 16, 4, 5, 0, "r");
    CoverageFold fold = foldCoverage(rec);
    ASSERT_GE(fold.edges.size(), 2u);

    CoverageMap map;
    EXPECT_TRUE(map.insert(fold.edges[0]));
    EXPECT_FALSE(map.insert(fold.edges[0])) << "second insert not novel";
    EXPECT_EQ(map.distinctEdges(), 1u);

    // insertAll counts only what was new.
    EXPECT_EQ(map.insertAll(fold.edges), fold.edges.size() - 1);
    EXPECT_EQ(map.insertAll(fold.edges), 0u);
    EXPECT_EQ(map.distinctEdges(), fold.edges.size());
    EXPECT_EQ(map.dropped(), 0u);

    // snapshot() returns the sorted set; its digest matches the fold's.
    std::vector<Edge> snap = map.snapshot();
    ASSERT_EQ(snap.size(), fold.edges.size());
    EXPECT_EQ(map.digest(), coverageDigest(fold.edges));
}

TEST(CoverageMap, ConcurrentInsertsConvergeOnSetUnion)
{
    // 16 synthetic folds with heavy overlap, hammered by 8 threads.
    std::vector<std::vector<Edge>> folds(16);
    std::set<uint64_t> unionKeys;
    for (size_t f = 0; f < folds.size(); ++f) {
        for (uint64_t i = 0; i < 200; ++i) {
            Edge e;
            e.key = 1 + (f * 97 + i * 13) % 512; // collides across folds
            e.from = e.key * 3;
            e.to = e.key * 5;
            e.kind = EdgeKind(e.key % kEdgeKindCount);
            folds[f].push_back(e);
            unionKeys.insert(e.key);
        }
    }

    CoverageMap map(1 << 12);
    std::atomic<uint64_t> novelTotal{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&, t] {
            for (size_t f = t % folds.size(), n = 0; n < folds.size();
                 ++n, f = (f + 1) % folds.size())
                novelTotal += map.insertAll(folds[f]);
        });
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(map.distinctEdges(), unionKeys.size());
    EXPECT_EQ(novelTotal.load(), unionKeys.size())
        << "each edge must be novel exactly once across all threads";
    EXPECT_EQ(map.dropped(), 0u);

    std::vector<uint64_t> sorted(unionKeys.begin(), unionKeys.end());
    EXPECT_EQ(map.digest(), coverageDigest(sorted));
}

TEST(CoverageMap, OverflowIsCountedNotSilent)
{
    CoverageMap tiny(8); // rounds up to the 1024 floor
    ASSERT_EQ(tiny.capacity(), 1024u);
    uint64_t inserted = 0;
    for (uint64_t i = 1; i <= 4096; ++i) {
        Edge e;
        e.key = (i << 1) | 1; // distinct, never the 0 sentinel
        e.kind = EdgeKind::SyncSync;
        inserted += tiny.insert(e);
    }
    EXPECT_LE(tiny.distinctEdges(), tiny.capacity());
    EXPECT_GT(tiny.dropped(), 0u);
    EXPECT_EQ(tiny.distinctEdges() + tiny.dropped(), 4096u);
    EXPECT_EQ(tiny.distinctEdges(), inserted);
}

/** Coverage-grade recording (recorder + diagnosis mode) must be pure
 *  observation on every engine — the passivity contract the campaign's
 *  bare differential replicas re-prove on every schedule. */
TEST(CoveragePassivity, InstrumentedRunTickIdenticalOnAllEngines)
{
    const apps::AppSpec *spec = apps::findApp("ZSNES");
    ASSERT_NE(spec, nullptr);
    apps::HardenOptions hopts;
    hopts.applyConAir = false;
    apps::PreparedApp p = apps::prepareApp(*spec, hopts);

    for (vm::ExecEngine engine :
         {vm::ExecEngine::Reference, vm::ExecEngine::Decoded,
          vm::ExecEngine::Fused}) {
        vm::VmConfig cfg;
        cfg.policy = vm::SchedPolicy::Pct;
        cfg.seed = 7;
        cfg.engine = engine;
        vm::RunResult bare = apps::runUnderSchedule(p, cfg);

        obs::FlightRecorder rec(65536);
        obs::MetricsRegistry met;
        vm::VmConfig icfg = cfg;
        icfg.recorder = &rec;
        icfg.metrics = &met;
        icfg.recordSharedAccesses = true;
        vm::RunResult instrumented = apps::runUnderSchedule(p, icfg);

        EXPECT_EQ(instrumented.outcome, bare.outcome);
        EXPECT_EQ(instrumented.exitCode, bare.exitCode);
        EXPECT_EQ(instrumented.clock, bare.clock);
        EXPECT_EQ(instrumented.output, bare.output);
        EXPECT_EQ(instrumented.memDigest, bare.memDigest);
        EXPECT_EQ(instrumented.stats.steps, bare.stats.steps);
        EXPECT_EQ(instrumented.stats.schedTicks, bare.stats.schedTicks);

        // And the trace actually yields coverage (non-vacuous).
        CoverageFold fold = foldCoverage(rec);
        EXPECT_GT(fold.edges.size(), 0u)
            << "engine " << int(engine) << " produced no edges";
    }
}

} // namespace
} // namespace conair
