/**
 * @file
 * Tests of the §4.3 inter-procedural recovery analysis, built around
 * the MozillaXP pattern (Fig 10).
 */
#include "tests/conair/conair_test_util.h"

namespace conair::ca {
namespace {

using testutil::parseIR;
using testutil::siteByTag;
using testutil::taggedInst;

// GetState(thd) dereferences its parameter; Get() loads the shared
// pointer @mthd and passes it down.  Recovery must reexecute the load
// in the caller.
const char *mozilla_xp = R"(
global @mthd : ptr[1]
global @scratch : i64[1]

func @get_state(ptr %thd) -> i64 {
entry:
    %0 = load i64, %thd #"site"
    ret %0
}

func @get(i64 %unused) -> i64 {
entry:
    store 0, @scratch #"caller_store"
    %0 = load ptr, @mthd #"caller_load"
    %1 = call @get_state(%0) #"the_call"
    ret %1
}
)";

TEST(Interproc, PromotesParameterDerefIntoCaller)
{
    auto m = parseIR(mozilla_xp);
    ir::Instruction *site_inst = taggedInst(*m, "site");
    FailureSite site{site_inst, FailureKind::Segfault, 1, false};
    Region region = computeRegion(site_inst, RegionPolicy{});
    ASSERT_TRUE(region.cleanToEntry);

    analysis::CallGraph cg(*m);
    InterprocDecision d = analyzeInterproc(site, region, cg,
                                           RegionPolicy{}, {});
    ASSERT_TRUE(d.promoted);
    ASSERT_EQ(d.callerPoints.size(), 1u);
    // The caller point is right after the store, so the @mthd load is
    // re-executed on rollback.
    EXPECT_EQ(d.callerPoints[0].after,
              taggedInst(*m, "caller_store"));
    EXPECT_EQ(d.depthUsed, 1u);
}

TEST(Interproc, RequiresCriticalParameterOnSlice)
{
    // The dereferenced pointer comes from a global read inside the
    // callee, not from a parameter: condition (2) fails (and the site
    // is intra-procedurally recoverable anyway).
    auto m = parseIR(R"(
global @p : ptr[1]

func @callee(i64 %unused) -> i64 {
entry:
    %0 = load ptr, @p
    %1 = load i64, %0 #"site"
    ret %1
}

func @main() -> i64 {
entry:
    %0 = call @callee(0)
    ret %0
}
)");
    ir::Instruction *site_inst = taggedInst(*m, "site");
    FailureSite site{site_inst, FailureKind::Segfault, 1, false};
    Region region = computeRegion(site_inst, RegionPolicy{});
    analysis::CallGraph cg(*m);
    InterprocDecision d = analyzeInterproc(site, region, cg,
                                           RegionPolicy{}, {});
    EXPECT_FALSE(d.promoted);
}

TEST(Interproc, DirtyPathBlocksPromotion)
{
    auto m = parseIR(R"(
global @sink : i64[1]

func @callee(ptr %p) -> i64 {
entry:
    store 1, @sink
    %0 = load i64, %p #"site"
    ret %0
}

func @main() -> i64 {
entry:
    %0 = call $malloc(1)
    %1 = call @callee(%0)
    ret %1
}
)");
    ir::Instruction *site_inst = taggedInst(*m, "site");
    FailureSite site{site_inst, FailureKind::Segfault, 1, false};
    Region region = computeRegion(site_inst, RegionPolicy{});
    EXPECT_FALSE(region.cleanToEntry);
    analysis::CallGraph cg(*m);
    InterprocDecision d = analyzeInterproc(site, region, cg,
                                           RegionPolicy{}, {});
    EXPECT_FALSE(d.promoted);
}

TEST(Interproc, ClimbsThroughCleanWrappers)
{
    // site <- inner <- wrapper <- main; inner and wrapper are pure
    // forwarding functions, main loads the shared pointer.
    auto m = parseIR(R"(
global @p : ptr[1]
global @scratch : i64[1]

func @inner(ptr %x) -> i64 {
entry:
    %0 = load i64, %x #"site"
    ret %0
}

func @wrapper(ptr %y) -> i64 {
entry:
    %0 = call @inner(%y) #"call_in_wrapper"
    ret %0
}

func @main() -> i64 {
entry:
    store 0, @scratch #"main_store"
    %0 = load ptr, @p
    %1 = call @wrapper(%0)
    ret %1
}
)");
    ir::Instruction *site_inst = taggedInst(*m, "site");
    FailureSite site{site_inst, FailureKind::Segfault, 1, false};
    Region region = computeRegion(site_inst, RegionPolicy{});
    analysis::CallGraph cg(*m);
    InterprocDecision d = analyzeInterproc(site, region, cg,
                                           RegionPolicy{}, {});
    ASSERT_TRUE(d.promoted);
    EXPECT_EQ(d.depthUsed, 2u);
    ASSERT_EQ(d.callerPoints.size(), 1u);
    EXPECT_EQ(d.callerPoints[0].after, taggedInst(*m, "main_store"));
}

TEST(Interproc, DepthLimitForcesGiveUp)
{
    auto m = parseIR(R"(
global @p : ptr[1]

func @l0(ptr %x) -> i64 {
entry:
    %0 = load i64, %x #"site"
    ret %0
}

func @l1(ptr %x) -> i64 {
entry:
    %0 = call @l0(%x)
    ret %0
}

func @l2(ptr %x) -> i64 {
entry:
    %0 = call @l1(%x)
    ret %0
}

func @main() -> i64 {
entry:
    %0 = load ptr, @p
    %1 = call @l2(%0)
    ret %1
}
)");
    ir::Instruction *site_inst = taggedInst(*m, "site");
    FailureSite site{site_inst, FailureKind::Segfault, 1, false};
    Region region = computeRegion(site_inst, RegionPolicy{});
    analysis::CallGraph cg(*m);

    InterprocOptions deep;
    deep.maxDepth = 3;
    InterprocDecision d3 = analyzeInterproc(site, region, cg,
                                            RegionPolicy{}, deep);
    EXPECT_TRUE(d3.promoted);
    EXPECT_EQ(d3.depthUsed, 3u);

    InterprocOptions shallow;
    shallow.maxDepth = 2;
    InterprocDecision d2 = analyzeInterproc(site, region, cg,
                                            RegionPolicy{}, shallow);
    EXPECT_FALSE(d2.promoted);
    EXPECT_TRUE(d2.gaveUp);
}

TEST(Interproc, NoCallersMeansNoPromotion)
{
    auto m = parseIR(R"(
func @main(i64 %x) -> i64 {
entry:
    %0 = add %x, 0
    %1 = icmp.ne %0, 0
    condbr %1, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"site"
    unreachable
}
)");
    ir::Instruction *site_inst = taggedInst(*m, "site");
    FailureSite site{site_inst, FailureKind::Assertion, 1, false};
    Region region = computeRegion(site_inst, RegionPolicy{});
    analysis::CallGraph cg(*m);
    InterprocDecision d = analyzeInterproc(site, region, cg,
                                           RegionPolicy{}, {});
    EXPECT_FALSE(d.promoted);
}

TEST(Interproc, DriverIntegration)
{
    auto m = parseIR(mozilla_xp);
    ConAirReport r = applyConAir(*m);
    const SiteReport *site = siteByTag(r, "site");
    ASSERT_NE(site, nullptr);
    EXPECT_TRUE(site->interproc);
    EXPECT_TRUE(site->recoverable);
    EXPECT_EQ(r.interprocSites, 1u);
    // The checkpoint landed in @get, not in @get_state.
    bool in_get = false, in_get_state = false;
    for (auto &f : m->functions()) {
        for (auto &bb : f->blocks()) {
            for (auto &inst : bb->insts()) {
                if (inst->opcode() == ir::Opcode::Call &&
                    inst->builtin() == ir::Builtin::CaCheckpoint) {
                    in_get |= f->name() == "get";
                    in_get_state |= f->name() == "get_state";
                }
            }
        }
    }
    EXPECT_TRUE(in_get);
    EXPECT_FALSE(in_get_state);
}

} // namespace
} // namespace conair::ca
