/**
 * @file
 * Tests of the §4.2 unnecessary-rollback elimination, mirroring the
 * paper's Fig 7 examples.
 */
#include "tests/conair/conair_test_util.h"

namespace conair::ca {
namespace {

using testutil::parseIR;
using testutil::taggedInst;

Recoverability
classifySite(ir::Module &m, const std::string &tag, FailureKind kind)
{
    ir::Instruction *inst = taggedInst(m, tag);
    EXPECT_NE(inst, nullptr);
    FailureSite site{inst, kind, 1, kind == FailureKind::WrongOutput};
    Region region = computeRegion(inst, RegionPolicy{});
    analysis::ControlDeps cdeps(*inst->parent()->parent());
    return classifyRecoverability(site, region, cdeps);
}

TEST(Optimizer, Fig7aLockWithBareRegionIsUnrecoverable)
{
    // Reexecution: lock(&L) with nothing before it — rolling back
    // releases nothing, the deadlock peers stay stuck.
    auto m = parseIR(R"(
mutex @L

func @main() -> i64 {
entry:
    store 1, @L
    call $mutex_lock(@L) #"site"
    ret 0
}
)");
    // (The store only bounds the region right before the lock.)
    EXPECT_EQ(classifySite(*m, "site", FailureKind::Deadlock),
              Recoverability::NoLockInRegion);
}

TEST(Optimizer, Fig7bLockAfterLockIsRecoverable)
{
    auto m = parseIR(R"(
mutex @L0
mutex @L

func @main() -> i64 {
entry:
    call $mutex_lock(@L0)
    call $mutex_lock(@L) #"site"
    ret 0
}
)");
    EXPECT_EQ(classifySite(*m, "site", FailureKind::Deadlock),
              Recoverability::Recoverable);
}

TEST(Optimizer, Fig7cLocalOnlyAssertIsUnrecoverable)
{
    // tmp = tmp + 1; assert(tmp): replaying pure register arithmetic
    // can never change the outcome.
    auto m = parseIR(R"(
func @main(i64 %tmp0) -> i64 {
entry:
    %0 = add %tmp0, 1
    %1 = icmp.ne %0, 0
    condbr %1, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"site"
    unreachable
}
)");
    EXPECT_EQ(classifySite(*m, "site", FailureKind::Assertion),
              Recoverability::NoSharedReadOnSlice);
}

TEST(Optimizer, Fig7dGlobalReadAssertIsRecoverable)
{
    // tmp = global_x; assert(tmp): the re-read can observe another
    // thread's write.
    auto m = parseIR(R"(
global @global_x : i64[1]

func @main() -> i64 {
entry:
    %0 = load i64, @global_x
    %1 = icmp.ne %0, 0
    condbr %1, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"site"
    unreachable
}
)");
    EXPECT_EQ(classifySite(*m, "site", FailureKind::Assertion),
              Recoverability::Recoverable);
}

TEST(Optimizer, SharedReadOutsideRegionDoesNotHelp)
{
    // The global read sits before a store, i.e. outside the region:
    // reexecution never re-reads it.
    auto m = parseIR(R"(
global @g : i64[1]
global @sink : i64[1]

func @main() -> i64 {
entry:
    %0 = load i64, @g
    store %0, @sink
    %1 = icmp.ne %0, 0
    condbr %1, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"site"
    unreachable
}
)");
    EXPECT_EQ(classifySite(*m, "site", FailureKind::Assertion),
              Recoverability::NoSharedReadOnSlice);
}

TEST(Optimizer, SegfaultSiteWithPointerReloadIsRecoverable)
{
    // Dereference of a freshly loaded global pointer: the reload can
    // observe the initialising thread (HTTrack/MozillaXP pattern).
    auto m = parseIR(R"(
global @p : ptr[1]

func @main() -> i64 {
entry:
    %0 = load ptr, @p
    %1 = load i64, %0 #"site"
    ret %1
}
)");
    EXPECT_EQ(classifySite(*m, "site", FailureKind::Segfault),
              Recoverability::Recoverable);
}

TEST(Optimizer, SegfaultOnParameterPointerIsUnrecoverable)
{
    // The pointer arrives as an argument: nothing inside the region
    // re-reads shared state (this is what §4.3 later rescues).
    auto m = parseIR(R"(
func @get_state(ptr %thd) -> i64 {
entry:
    %0 = load i64, %thd #"site"
    ret %0
}
)");
    EXPECT_EQ(classifySite(*m, "site", FailureKind::Segfault),
              Recoverability::NoSharedReadOnSlice);
}

TEST(Optimizer, ControlDependentSharedReadQualifies)
{
    // The assert's own operand chain is local, but the branch deciding
    // whether the failing path runs reads a global inside the region.
    auto m = parseIR(R"(
global @mode : i64[1]

func @main(i64 %x) -> i64 {
entry:
    %0 = load i64, @mode
    %1 = icmp.eq %0, 1
    condbr %1, checkx, ok
checkx:
    %2 = icmp.sge %x, 0
    condbr %2, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"site"
    unreachable
}
)");
    EXPECT_EQ(classifySite(*m, "site", FailureKind::Assertion),
              Recoverability::Recoverable);
}

TEST(Optimizer, DriverDropsUnrecoverableSites)
{
    auto m = parseIR(R"(
func @main(i64 %x) -> i64 {
entry:
    %0 = add %x, 1
    %1 = icmp.ne %0, 0
    condbr %1, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"site"
    unreachable
}
)");
    ConAirOptions opts;
    opts.interproc = false; // isolate §4.2
    ConAirReport r = applyConAir(*m, opts);
    EXPECT_EQ(r.identified.assertion, 1u);
    EXPECT_EQ(r.recoverable.assertion, 0u);
    EXPECT_EQ(r.sitesDroppedByOptimizer, 1u);
    EXPECT_EQ(r.staticReexecPoints, 0u);
    EXPECT_EQ(testutil::countBuiltinCalls(*m,
                                          ir::Builtin::CaTryRollback),
              0u);
}

TEST(Optimizer, DisablingOptimizationKeepsEverything)
{
    auto m = parseIR(R"(
func @main(i64 %x) -> i64 {
entry:
    %0 = add %x, 1
    %1 = icmp.ne %0, 0
    condbr %1, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"site"
    unreachable
}
)");
    ConAirOptions opts;
    opts.optimize = false;
    opts.interproc = false;
    ConAirReport r = applyConAir(*m, opts);
    EXPECT_EQ(r.recoverable.assertion, 1u);
    EXPECT_GE(r.staticReexecPoints, 1u);
    EXPECT_EQ(testutil::countBuiltinCalls(*m,
                                          ir::Builtin::CaTryRollback),
              1u);
}

} // namespace
} // namespace conair::ca
