/**
 * @file
 * Structural tests of the §3.3 code transformation (Fig 6 golden
 * shape, lock conversion, pointer checks, compensation hooks).
 */
#include "tests/conair/conair_test_util.h"

#include "ir/printer.h"

namespace conair::ca {
namespace {

using ir::Builtin;
using testutil::countBuiltinCalls;
using testutil::parseIR;

TEST(Transform, Fig6AssertShape)
{
    auto m = parseIR(R"(
global @g : i64[1]

func @main() -> i64 {
entry:
    store 1, @g
    %0 = load i64, @g
    %1 = icmp.sgt %0, 0
    condbr %1, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"assert.main.1"
    unreachable
}
)");
    ConAirReport r = applyConAir(*m);
    EXPECT_EQ(r.staticReexecPoints, 1u);
    EXPECT_EQ(countBuiltinCalls(*m, Builtin::CaCheckpoint), 1u);
    EXPECT_EQ(countBuiltinCalls(*m, Builtin::CaTryRollback), 1u);
    EXPECT_EQ(countBuiltinCalls(*m, Builtin::CaRecovered), 1u);

    // Golden shape: checkpoint right after the store; try_rollback
    // right before assert_fail.
    std::string text = ir::printModule(*m);
    size_t store_at = text.find("store 1, @g");
    size_t ckpt_at = text.find("call $conair.checkpoint");
    size_t retry_at = text.find("call $conair.try_rollback");
    size_t assert_at = text.find("call $assert_fail");
    ASSERT_NE(store_at, std::string::npos);
    EXPECT_LT(store_at, ckpt_at);
    EXPECT_LT(ckpt_at, retry_at);
    EXPECT_LT(retry_at, assert_at);
}

TEST(Transform, SharedReexecPointInsertedOnce)
{
    // Two asserts guarded by the same region boundary share one
    // checkpoint (§3.3: "ConAir makes sure to insert just one").
    auto m = parseIR(R"(
global @g : i64[1]

func @main() -> i64 {
entry:
    store 1, @g
    %0 = load i64, @g
    %1 = icmp.sgt %0, 0
    condbr %1, mid, fail1
mid:
    %2 = icmp.slt %0, 100
    condbr %2, ok, fail2
ok:
    ret 0
fail1:
    call $assert_fail("a") #"assert.main.1"
    unreachable
fail2:
    call $assert_fail("b") #"assert.main.2"
    unreachable
}
)");
    ConAirReport r = applyConAir(*m);
    EXPECT_EQ(r.identified.assertion, 2u);
    EXPECT_EQ(r.staticReexecPoints, 1u);
    EXPECT_EQ(countBuiltinCalls(*m, Builtin::CaCheckpoint), 1u);
    EXPECT_EQ(countBuiltinCalls(*m, Builtin::CaTryRollback), 2u);
}

TEST(Transform, DeadlockConversionShape)
{
    auto m = parseIR(R"(
mutex @a
mutex @b

func @main() -> i64 {
entry:
    call $mutex_lock(@a) #"lock.main.1"
    call $mutex_lock(@b) #"lock.main.2"
    call $mutex_unlock(@b)
    call $mutex_unlock(@a)
    ret 0
}
)");
    ConAirReport r = applyConAir(*m);
    // Site 1 has no lock in its region -> reverted to plain lock.
    // Site 2 (holds @a) converts to timedlock + back-off + retry.
    EXPECT_EQ(r.identified.deadlock, 2u);
    EXPECT_EQ(r.recoverable.deadlock, 1u);
    EXPECT_EQ(r.transform.locksConverted, 1u);
    EXPECT_EQ(countBuiltinCalls(*m, Builtin::MutexTimedLock), 1u);
    EXPECT_EQ(countBuiltinCalls(*m, Builtin::CaBackoff), 1u);
    // Plain locks remaining: the unconverted site + the give-up
    // fallback inside the converted site's fail path.
    EXPECT_EQ(countBuiltinCalls(*m, Builtin::MutexLock), 2u);
    // Every acquisition (plain or converted) logs compensation.
    EXPECT_GE(countBuiltinCalls(*m, Builtin::CaNoteLock), 3u);
}

TEST(Transform, SegfaultSiteGetsPtrCheck)
{
    auto m = parseIR(R"(
global @p : ptr[1]

func @main() -> i64 {
entry:
    %0 = load ptr, @p
    %1 = load i64, %0 #"deref.main.1"
    ret %1
}
)");
    ConAirReport r = applyConAir(*m);
    EXPECT_EQ(r.identified.segfault, 1u);
    EXPECT_EQ(r.recoverable.segfault, 1u);
    EXPECT_EQ(r.transform.ptrChecksInserted, 1u);
    EXPECT_EQ(countBuiltinCalls(*m, Builtin::CaPtrCheck), 1u);
    EXPECT_EQ(countBuiltinCalls(*m, Builtin::CaTryRollback), 1u);
}

TEST(Transform, MallocSitesGetCompensationHooks)
{
    auto m = parseIR(R"(
func @main() -> i64 {
entry:
    %0 = call $malloc(4)
    %1 = call $malloc(8)
    call $free(%0)
    call $free(%1)
    ret 0
}
)");
    applyConAir(*m);
    EXPECT_EQ(countBuiltinCalls(*m, Builtin::CaNoteAlloc), 2u);
}

TEST(Transform, OracleFreeOutputSitesGetNoRetryLoop)
{
    auto m = parseIR(R"(
global @g : i64[1]

func @main() -> i64 {
entry:
    %0 = load i64, @g
    call $print_i64(%0) #"out.main.1"
    ret 0
}
)");
    ConAirReport r = applyConAir(*m);
    EXPECT_EQ(r.identified.wrongOutput, 1u);
    // Hardened (checkpoint) but no retry: no oracle to check against.
    EXPECT_GE(r.staticReexecPoints, 1u);
    EXPECT_EQ(countBuiltinCalls(*m, Builtin::CaTryRollback), 0u);
}

TEST(Transform, TransformedModuleStillRuns)
{
    auto m = parseIR(R"(
global @g : i64[1] = [5]
mutex @mu

func @main() -> i64 {
entry:
    call $mutex_lock(@mu) #"lock.main.1"
    %0 = load i64, @g
    %1 = icmp.sgt %0, 0
    condbr %1, ok, fail
ok:
    call $mutex_unlock(@mu)
    %2 = call $malloc(2)
    store %0, %2
    %3 = load i64, %2
    call $free(%2)
    ret %3
fail:
    call $assert_fail("boom") #"assert.main.1"
    unreachable
}
)");
    applyConAir(*m);
    vm::RunResult r = vm::runProgram(*m);
    EXPECT_EQ(r.outcome, vm::Outcome::Success) << r.failureMsg;
    EXPECT_EQ(r.exitCode, 5);
}

TEST(Transform, FixModeTouchesOnlyNamedSite)
{
    auto m = parseIR(R"(
global @g : i64[1]
global @h : i64[1]

func @main() -> i64 {
entry:
    %0 = load i64, @g
    %1 = icmp.sge %0, 0
    condbr %1, mid, fail1
mid:
    %2 = load i64, @h
    %3 = icmp.sge %2, 0
    condbr %3, ok, fail2
ok:
    ret 0
fail1:
    call $assert_fail("a") #"assert.main.1"
    unreachable
fail2:
    call $assert_fail("b") #"assert.main.2"
    unreachable
}
)");
    ConAirOptions opts;
    opts.mode = Mode::Fix;
    opts.fixTags = {"assert.main.2"};
    ConAirReport r = applyConAir(*m, opts);
    EXPECT_EQ(r.identified.total(), 1u);
    EXPECT_EQ(countBuiltinCalls(*m, Builtin::CaTryRollback), 1u);
    // The retry call carries the named site's tag.
    bool tagged = false;
    for (auto &f : m->functions())
        for (auto &bb : f->blocks())
            for (auto &inst : bb->insts())
                if (inst->builtin() == Builtin::CaTryRollback)
                    tagged = inst->tag() == "assert.main.2";
    EXPECT_TRUE(tagged);
}

TEST(Transform, VerifierCleanOnComplexInput)
{
    DiagEngine d;
    auto m = fe::compileMiniC(R"(
int table[64];
int* cache;
mutex big;
int hits;

int lookup(int key) {
    lock(big);
    int v = table[key % 64];
    unlock(big);
    if (cache) {
        if (cache[0] == key) hits += 1;
    }
    assert(v >= 0);
    return v;
}

int refill(int n) {
    cache = malloc(16);
    for (int i = 0; i < n; i++) {
        lock(big);
        table[i % 64] = i;
        unlock(big);
    }
    return 0;
}

int main() {
    int t = spawn(refill, 100);
    int acc = 0;
    for (int i = 0; i < 50; i++) acc += lookup(i);
    join(t);
    print("acc=", acc, "\n");
    return 0;
}
)",
                              d);
    ASSERT_TRUE(m) << d.str();
    ConAirReport r = applyConAir(*m); // verifyAfter fatals on bugs
    EXPECT_GT(r.identified.total(), 0u);
    vm::RunResult run = vm::runProgram(*m);
    EXPECT_EQ(run.outcome, vm::Outcome::Success) << run.failureMsg;
}

} // namespace
} // namespace conair::ca
