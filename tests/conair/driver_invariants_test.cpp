/**
 * @file
 * Pipeline-level invariants, swept across every bundled application:
 * the relationships between report fields and the transformed IR that
 * must hold regardless of input program.
 */
#include <gtest/gtest.h>

#include "apps/harness.h"
#include "ir/verifier.h"
#include "tests/conair/conair_test_util.h"

namespace conair::ca {
namespace {

class DriverInvariants : public ::testing::TestWithParam<std::string>
{
  protected:
    apps::PreparedApp
    prepared(ConAirOptions opts = {}) const
    {
        apps::HardenOptions h;
        h.conair = opts;
        return apps::prepareApp(*apps::findApp(GetParam()), h);
    }
};

TEST_P(DriverInvariants, RecoverableNeverExceedsIdentified)
{
    apps::PreparedApp p = prepared();
    const ConAirReport &r = p.report;
    EXPECT_LE(r.recoverable.assertion, r.identified.assertion);
    EXPECT_LE(r.recoverable.wrongOutput, r.identified.wrongOutput);
    EXPECT_LE(r.recoverable.segfault, r.identified.segfault);
    EXPECT_LE(r.recoverable.deadlock, r.identified.deadlock);
    EXPECT_EQ(r.identified.total() - r.recoverable.total(),
              r.sitesDroppedByOptimizer);
}

TEST_P(DriverInvariants, StaticPointsMatchInsertedCheckpoints)
{
    apps::PreparedApp p = prepared();
    EXPECT_EQ(p.report.staticReexecPoints,
              p.report.transform.checkpointsInserted);
    EXPECT_EQ(p.report.staticReexecPoints,
              testutil::countBuiltinCalls(*p.module,
                                          ir::Builtin::CaCheckpoint));
}

TEST_P(DriverInvariants, SiteReportsCoverEveryIdentifiedSite)
{
    apps::PreparedApp p = prepared();
    EXPECT_EQ(p.report.sites.size(), p.report.identified.total());
    unsigned interproc = 0;
    for (const SiteReport &s : p.report.sites) {
        interproc += s.interproc;
        if (s.interproc)
            EXPECT_TRUE(s.recoverable)
                << s.tag << ": promoted sites are never optimized away";
    }
    EXPECT_EQ(interproc, p.report.interprocSites);
}

TEST_P(DriverInvariants, TransformedModuleVerifies)
{
    apps::PreparedApp p = prepared();
    DiagEngine d;
    EXPECT_TRUE(ir::verifyModule(*p.module, d)) << d.str();
}

TEST_P(DriverInvariants, OptimizerOnlyRemovesPoints)
{
    ConAirOptions with;
    ConAirOptions without;
    without.optimize = false;
    apps::PreparedApp a = prepared(with);
    apps::PreparedApp b = prepared(without);
    EXPECT_LE(a.report.staticReexecPoints,
              b.report.staticReexecPoints);
    EXPECT_EQ(b.report.sitesDroppedByOptimizer, 0u);
}

TEST_P(DriverInvariants, FixModeIsASubsetOfSurvival)
{
    apps::PreparedApp survival = prepared();
    apps::HardenOptions fix;
    fix.conair.mode = Mode::Fix;
    fix.conair.fixTags =
        apps::observedFailureTags(*apps::findApp(GetParam()));
    apps::PreparedApp fixed =
        apps::prepareApp(*apps::findApp(GetParam()), fix);
    EXPECT_LE(fixed.report.identified.total(),
              survival.report.identified.total());
    EXPECT_LE(fixed.report.staticReexecPoints,
              survival.report.staticReexecPoints);
    EXPECT_GE(fixed.report.identified.total(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, DriverInvariants,
    ::testing::Values("FFT", "HawkNL", "HTTrack", "MozillaXP",
                      "MozillaJS", "MySQL1", "MySQL2", "Transmission",
                      "SQLite", "ZSNES"),
    [](const auto &info) { return info.param; });

} // namespace
} // namespace conair::ca
