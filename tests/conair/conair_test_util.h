/**
 * @file
 * Shared helpers for ConAir pass tests.
 */
#pragma once

#include <gtest/gtest.h>

#include "conair/driver.h"
#include "frontend/compile.h"
#include "ir/parser.h"
#include "vm/interp.h"

namespace conair::ca::testutil {

inline std::unique_ptr<ir::Module>
compileC(const std::string &src)
{
    DiagEngine d;
    auto m = fe::compileMiniC(src, d);
    EXPECT_TRUE(m) << d.str();
    return m;
}

inline std::unique_ptr<ir::Module>
parseIR(const std::string &text)
{
    DiagEngine d;
    auto m = ir::parseModule(text, d);
    EXPECT_TRUE(m) << d.str();
    return m;
}

inline ir::Instruction *
taggedInst(ir::Module &m, const std::string &tag)
{
    for (auto &f : m.functions())
        for (auto &bb : f->blocks())
            for (auto &inst : bb->insts())
                if (inst->tag() == tag)
                    return inst.get();
    return nullptr;
}

inline const SiteReport *
siteByTag(const ConAirReport &r, const std::string &tag)
{
    for (const SiteReport &s : r.sites)
        if (s.tag == tag)
            return &s;
    return nullptr;
}

inline unsigned
countBuiltinCalls(const ir::Module &m, ir::Builtin b)
{
    unsigned n = 0;
    for (const auto &f : m.functions())
        for (const auto &bb : f->blocks())
            for (const auto &inst : bb->insts())
                n += inst->opcode() == ir::Opcode::Call &&
                     inst->builtin() == b;
    return n;
}

} // namespace conair::ca::testutil
