/**
 * @file
 * Paper §4.3 footnote 5: when a site is promoted to inter-procedural
 * recovery, the reexecution point at its function's entry is removed —
 * and any *other* site that relied on that entry point silently rides
 * along, rolling back to the caller's checkpoint ("which is fine").
 */
#include "tests/conair/conair_test_util.h"

namespace conair::ca {
namespace {

using ir::Builtin;
using testutil::countBuiltinCalls;
using testutil::parseIR;
using testutil::siteByTag;

// foo has two failure sites: the parameter dereference (promoted to
// inter-procedural recovery) and an assert on a global (ordinarily
// intra-procedural with the entry as its reexecution point).
const char *module_text = R"(
global @p : ptr[1]
global @ok : i64[1]

func @foo(ptr %x) -> i64 {
entry:
    %v = load i64, %x #"site_deref"
    %g = load i64, @ok
    %c = icmp.eq %g, 1
    condbr %c, good, fail2
good:
    ret %v
fail2:
    call $assert_fail("not ok") #"site_assert"
    unreachable
}

func @setter(i64 %unused) -> i64 {
entry:
    sched_hint 1
    %b = call $malloc(2)
    store 9, %b
    store %b, @p
    store 1, @ok
    ret 0
}

func @main() -> i64 {
entry:
    %t = call $thread_create(@setter, 0)
    %ptr = load ptr, @p
    %r = call @foo(%ptr)
    call $thread_join(%t)
    ret %r
}
)";

TEST(Footnote5, EntryPointRemovedSiblingRidesAlong)
{
    auto m = parseIR(module_text);
    ConAirReport report = applyConAir(*m);

    const SiteReport *deref = siteByTag(report, "site_deref");
    const SiteReport *assrt = siteByTag(report, "site_assert");
    ASSERT_NE(deref, nullptr);
    ASSERT_NE(assrt, nullptr);
    EXPECT_TRUE(deref->interproc);
    EXPECT_TRUE(deref->recoverable);
    // The assert stays formally intra-procedural and recoverable...
    EXPECT_FALSE(assrt->interproc);
    EXPECT_TRUE(assrt->recoverable);

    // ...but its foo-entry checkpoint is gone: every checkpoint lives
    // in the caller now.
    for (auto &f : m->functions()) {
        unsigned ckpts = 0;
        for (auto &bb : f->blocks())
            for (auto &inst : bb->insts())
                ckpts += inst->opcode() == ir::Opcode::Call &&
                         inst->builtin() == Builtin::CaCheckpoint;
        if (f->name() == "foo")
            EXPECT_EQ(ckpts, 0u) << "entry checkpoint must be removed";
        if (f->name() == "main")
            EXPECT_GE(ckpts, 1u);
    }
}

TEST(Footnote5, BothSitesRecoverThroughTheCallerCheckpoint)
{
    auto m = parseIR(module_text);
    applyConAir(*m);
    vm::VmConfig cfg;
    cfg.delays = {{1, 4'000}};
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        cfg.seed = seed;
        vm::RunResult r = vm::runProgram(*m, cfg);
        EXPECT_EQ(r.outcome, vm::Outcome::Success)
            << "seed " << seed << ": " << r.failureMsg;
        EXPECT_EQ(r.exitCode, 9);
        EXPECT_GE(r.stats.rollbacks, 1u);
    }
}

TEST(Footnote5, WithoutInterprocTheEntryPointStays)
{
    auto m = parseIR(module_text);
    ConAirOptions opts;
    opts.interproc = false;
    ConAirReport report = applyConAir(*m, opts);
    const SiteReport *assrt = siteByTag(report, "site_assert");
    ASSERT_NE(assrt, nullptr);
    EXPECT_TRUE(assrt->recoverable);
    unsigned foo_ckpts = 0;
    for (auto &bb : m->findFunction("foo")->blocks())
        for (auto &inst : bb->insts())
            foo_ckpts += inst->opcode() == ir::Opcode::Call &&
                         inst->builtin() == Builtin::CaCheckpoint;
    EXPECT_EQ(foo_ckpts, 1u);
}

} // namespace
} // namespace conair::ca
