/**
 * @file
 * End-to-end recovery tests: MiniC programs with seeded concurrency
 * bugs, a forced buggy interleaving (delay rules standing in for the
 * paper's injected sleeps), and the full ConAir pipeline.  Each test
 * checks the paper's core claim: the untransformed program fails, the
 * hardened program recovers and produces the correct result.
 */
#include "tests/conair/conair_test_util.h"

namespace conair::ca {
namespace {

using testutil::compileC;
using vm::Outcome;
using vm::RunResult;
using vm::VmConfig;

struct E2E
{
    std::string src;
    VmConfig cfg;

    RunResult
    runOriginal() const
    {
        auto m = compileC(src);
        return runProgram(*m, cfg);
    }

    RunResult
    runHardened(ConAirOptions opts = {}) const
    {
        auto m = compileC(src);
        applyConAir(*m, opts);
        return runProgram(*m, cfg);
    }
};

//
// 1. Order violation -> assertion failure (ZSNES/Transmission shape).
//

E2E
orderViolationAssert()
{
    E2E e;
    e.src = R"(
int initialized;
int init_thread(int x) {
    hint(1);
    initialized = 1;
    return 0;
}
int main() {
    int t = spawn(init_thread, 0);
    assert(initialized == 1);
    join(t);
    return 0;
}
)";
    e.cfg.delays = {{1, 5'000}};
    return e;
}

TEST(EndToEnd, OrderViolationAssertFailsWithoutConAir)
{
    RunResult r = orderViolationAssert().runOriginal();
    EXPECT_EQ(r.outcome, Outcome::AssertFail);
}

TEST(EndToEnd, OrderViolationAssertRecoversWithConAir)
{
    RunResult r = orderViolationAssert().runHardened();
    EXPECT_EQ(r.outcome, Outcome::Success) << r.failureMsg;
    EXPECT_GE(r.stats.rollbacks, 1u);
    ASSERT_GE(r.stats.recoveries.size(), 1u);
    EXPECT_GE(r.stats.recoveries[0].retries, 1u);
}

//
// 2. RAR atomicity violation -> assertion failure (MySQL2 shape).
//

E2E
rarAtomicityAssert()
{
    E2E e;
    e.src = R"(
int in_use = 1;
int clearer(int x) {
    hint(2);
    in_use = 0;     // transiently clear...
    hint(3);
    in_use = 1;     // ...and restore (non-atomic pair)
    return 0;
}
int main() {
    int t = spawn(clearer, 0);
    int first = in_use;
    hint(1);
    if (first == 1) {
        assert(in_use == 1);   // RAR atomicity assumption
    }
    join(t);
    return 0;
}
)";
    // main reads in_use (1) and stalls; clearer zeroes it inside the
    // window; main's second read violates the atomicity assumption.
    e.cfg.delays = {{1, 1'000}, {2, 200}, {3, 5'000}};
    e.cfg.seed = 3;
    return e;
}

TEST(EndToEnd, RarAtomicityFailsWithoutConAir)
{
    // The interleaving is timing sensitive; at least one seed must
    // expose it.
    bool failed = false;
    for (uint64_t seed = 1; seed <= 8 && !failed; ++seed) {
        E2E e = rarAtomicityAssert();
        e.cfg.seed = seed;
        failed = e.runOriginal().outcome == Outcome::AssertFail;
    }
    EXPECT_TRUE(failed);
}

TEST(EndToEnd, RarAtomicityRecoversWithConAir)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        E2E e = rarAtomicityAssert();
        e.cfg.seed = seed;
        RunResult r = e.runHardened();
        EXPECT_EQ(r.outcome, Outcome::Success)
            << "seed " << seed << ": " << r.failureMsg;
    }
}

//
// 3. Order violation -> segmentation fault (HTTrack shape).
//

E2E
segfaultOrderViolation()
{
    E2E e;
    e.src = R"(
int* opt;
int init_opt(int x) {
    hint(1);
    opt = malloc(4);
    opt[0] = 99;
    return 0;
}
int main() {
    int t = spawn(init_opt, 0);
    int v = opt[0];
    join(t);
    return v;
}
)";
    e.cfg.delays = {{1, 5'000}};
    return e;
}

TEST(EndToEnd, SegfaultFailsWithoutConAir)
{
    RunResult r = segfaultOrderViolation().runOriginal();
    EXPECT_EQ(r.outcome, Outcome::Segfault);
}

TEST(EndToEnd, SegfaultRecoversWithConAir)
{
    RunResult r = segfaultOrderViolation().runHardened();
    EXPECT_EQ(r.outcome, Outcome::Success) << r.failureMsg;
    EXPECT_EQ(r.exitCode, 99);
    EXPECT_GE(r.stats.rollbacks, 1u);
}

//
// 4. WAW atomicity violation -> wrong output, with oracle (MySQL1).
//

E2E
wawWrongOutput()
{
    E2E e;
    e.src = R"(
int log_state;   // 0 closed, 1 open
int flipper(int x) {
    log_state = 0;   // transiently close...
    hint(2);
    log_state = 1;   // ...then reopen (non-atomic pair)
    return 0;
}
int main() {
    log_state = 1;
    int t = spawn(flipper, 0);
    hint(1);
    oracle(log_state == 1);
    print("log=", log_state, "\n");
    join(t);
    return 0;
}
)";
    e.cfg.delays = {{1, 100}, {2, 5'000}};
    return e;
}

TEST(EndToEnd, WawWrongOutputFailsOracleWithoutRecovery)
{
    // Untransformed: oracle_fail aborts (it is the detector itself).
    RunResult r = wawWrongOutput().runOriginal();
    EXPECT_EQ(r.outcome, Outcome::OracleFail);
}

TEST(EndToEnd, WawWrongOutputRecoversWithOracle)
{
    RunResult r = wawWrongOutput().runHardened();
    EXPECT_EQ(r.outcome, Outcome::Success) << r.failureMsg;
    EXPECT_EQ(r.output, "log=1\n");
}

//
// 5. Deadlock (HawkNL shape, Fig 11).
//

E2E
abbaDeadlock()
{
    E2E e;
    e.src = R"(
mutex nlock;
mutex slock;
int n_sockets = 1;

int closer(int x) {
    lock(nlock);
    hint(1);
    lock(slock);
    unlock(slock);
    unlock(nlock);
    return 0;
}

int main() {
    int t = spawn(closer, 0);
    hint(2);
    lock(slock);
    if (n_sockets) {
        lock(nlock);
        n_sockets = 0;
        unlock(nlock);
    }
    unlock(slock);
    join(t);
    return n_sockets;
}
)";
    e.cfg.delays = {{1, 400}, {2, 200}};
    e.cfg.hangTimeout = 100'000;
    return e;
}

TEST(EndToEnd, DeadlockHangsWithoutConAir)
{
    RunResult r = abbaDeadlock().runOriginal();
    EXPECT_EQ(r.outcome, Outcome::Hang);
}

TEST(EndToEnd, DeadlockRecoversWithConAir)
{
    RunResult r = abbaDeadlock().runHardened();
    EXPECT_EQ(r.outcome, Outcome::Success) << r.failureMsg;
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_GE(r.stats.compensationUnlocks, 1u);
}

//
// 6. Inter-procedural recovery (MozillaXP shape, Fig 10).
//

E2E
mozillaXpInterproc()
{
    E2E e;
    e.src = R"(
int* m_thd;

int get_state(int* thd) {
    return thd[0];
}

int get(int x) {
    int* local = m_thd;
    int s = get_state(local);
    return s;
}

int init_thd(int x) {
    hint(1);
    int* p = malloc(2);
    p[0] = 7;
    m_thd = p;
    return 0;
}

int main() {
    int t = spawn(init_thd, 0);
    int v = get(0);
    join(t);
    return v;
}
)";
    e.cfg.delays = {{1, 5'000}};
    return e;
}

TEST(EndToEnd, InterprocFailsWithoutConAir)
{
    RunResult r = mozillaXpInterproc().runOriginal();
    EXPECT_EQ(r.outcome, Outcome::Segfault);
}

TEST(EndToEnd, InterprocRecoversWithConAir)
{
    RunResult r = mozillaXpInterproc().runHardened();
    EXPECT_EQ(r.outcome, Outcome::Success) << r.failureMsg;
    EXPECT_EQ(r.exitCode, 7);
    EXPECT_GE(r.stats.rollbacks, 1u);
}

TEST(EndToEnd, InterprocNeededForThisBug)
{
    // With §4.3 disabled the parameter dereference cannot be saved:
    // the optimizer removes the (useless) intra-procedural recovery
    // and the failure persists.
    E2E e = mozillaXpInterproc();
    ConAirOptions opts;
    opts.interproc = false;
    RunResult r = e.runHardened(opts);
    EXPECT_EQ(r.outcome, Outcome::Segfault);
}

//
// Semantic preservation: hardened clean runs behave identically.
//

TEST(EndToEnd, SemanticsPreservedOnCleanRuns)
{
    const char *src = R"(
int table[16];
mutex m;
int acc;

int worker(int n) {
    for (int i = 0; i < n; i++) {
        lock(m);
        table[i % 16] += i;
        acc += table[i % 16];
        unlock(m);
    }
    return 0;
}

int main() {
    int t1 = spawn(worker, 20);
    int t2 = spawn(worker, 20);
    join(t1); join(t2);
    int* p = malloc(4);
    p[0] = acc;
    assert(p[0] == acc);
    print("acc=", acc, "\n");
    int v = p[0];
    free(p);
    return v % 256;
}
)";
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        VmConfig cfg;
        cfg.seed = seed;
        auto m1 = compileC(src);
        RunResult orig = runProgram(*m1, cfg);
        auto m2 = compileC(src);
        applyConAir(*m2);
        RunResult hard = runProgram(*m2, cfg);
        EXPECT_EQ(orig.outcome, Outcome::Success);
        EXPECT_EQ(hard.outcome, Outcome::Success) << hard.failureMsg;
        EXPECT_EQ(orig.output, hard.output) << "seed " << seed;
        EXPECT_EQ(orig.exitCode, hard.exitCode) << "seed " << seed;
    }
}

TEST(EndToEnd, RecoveryIs1000For1000)
{
    // The paper's bar: 1000/1000 successful recoveries.  Scaled to 100
    // seeds here to keep the suite fast; the benches run the full 1000.
    E2E e = orderViolationAssert();
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        e.cfg.seed = seed;
        RunResult r = e.runHardened();
        ASSERT_EQ(r.outcome, Outcome::Success)
            << "seed " << seed << ": " << r.failureMsg;
    }
}

} // namespace
} // namespace conair::ca
