#include "tests/conair/conair_test_util.h"

namespace conair::ca {
namespace {

using testutil::compileC;

const char *mixed_src = R"(
int shared;
int* table;
mutex m;

int worker(int n) {
    lock(m);
    shared += n;
    unlock(m);
    assert(shared >= 0);
    return table[n];
}

int main() {
    table = malloc(8);
    int t = spawn(worker, 3);
    print("shared=", shared, "\n");
    join(t);
    return 0;
}
)";

TEST(FailureSites, SurvivalModeFindsAllKinds)
{
    auto m = compileC(mixed_src);
    auto sites = identifyFailureSites(*m, {});
    SiteCounts c = countByKind(sites);
    EXPECT_EQ(c.assertion, 1u);
    // print("shared=", shared, "\n") = 2 string pieces + 1 int piece.
    EXPECT_EQ(c.wrongOutput, 3u);
    // table[n] load via the global pointer.
    EXPECT_GE(c.segfault, 1u);
    EXPECT_EQ(c.deadlock, 1u);
}

TEST(FailureSites, DirectGlobalAccessIsNotASegfaultSite)
{
    auto m = compileC(R"(
int g;
int main() {
    g = 1;
    return g;
}
)");
    auto sites = identifyFailureSites(*m, {});
    EXPECT_EQ(countByKind(sites).segfault, 0u);
}

TEST(FailureSites, PointerDerefsAreSegfaultSites)
{
    auto m = compileC(R"(
int* p;
int main() {
    p = malloc(2);
    p[0] = 1;        // store through pointer variable
    int v = p[1];    // load through pointer variable
    return v;
}
)");
    auto sites = identifyFailureSites(*m, {});
    EXPECT_EQ(countByKind(sites).segfault, 2u);
}

TEST(FailureSites, OracleSitesAreRecoverableWrongOutput)
{
    auto m = compileC(R"(
int x;
int main() {
    oracle(x == 0);
    print(x);
    return 0;
}
)");
    auto sites = identifyFailureSites(*m, {});
    unsigned with_oracle = 0, without = 0;
    for (const FailureSite &s : sites) {
        if (s.kind != FailureKind::WrongOutput)
            continue;
        (s.hasOracle ? with_oracle : without) += 1;
    }
    EXPECT_EQ(with_oracle, 1u);
    EXPECT_EQ(without, 1u);
}

TEST(FailureSites, FixModeSelectsByTag)
{
    auto m = compileC(mixed_src);
    FailureSiteOptions opts;
    opts.mode = Mode::Fix;
    opts.fixTags = {"assert.worker.10"};
    auto sites = identifyFailureSites(*m, opts);
    ASSERT_EQ(sites.size(), 1u);
    EXPECT_EQ(sites[0].kind, FailureKind::Assertion);
    EXPECT_EQ(sites[0].inst->tag(), "assert.worker.10");
}

TEST(FailureSites, FixModeUnknownTagSelectsNothing)
{
    auto m = compileC(mixed_src);
    FailureSiteOptions opts;
    opts.mode = Mode::Fix;
    opts.fixTags = {"assert.nowhere.1"};
    EXPECT_TRUE(identifyFailureSites(*m, opts).empty());
}

TEST(FailureSites, IdsAreDenseAndUnique)
{
    auto m = compileC(mixed_src);
    auto sites = identifyFailureSites(*m, {});
    std::unordered_set<int64_t> ids;
    for (const FailureSite &s : sites)
        EXPECT_TRUE(ids.insert(s.id).second);
    EXPECT_EQ(ids.size(), sites.size());
}

TEST(FailureSites, StackArrayAccessIsNotASite)
{
    auto m = compileC(R"(
int main() {
    int a[4];
    a[1] = 2;
    return a[1];
}
)");
    auto sites = identifyFailureSites(*m, {});
    EXPECT_EQ(countByKind(sites).segfault, 0u);
}

} // namespace
} // namespace conair::ca
