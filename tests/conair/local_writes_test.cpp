/**
 * @file
 * The Fig 4 "regions with local-variable writes" design point: longer
 * regions whose checkpoints save the frame's stack slots.  The paper
 * sketches this as the next point right of ConAir on the spectrum
 * (more bugs recovered / more overhead); these tests pin down its
 * semantics against the base design.
 */
#include "tests/conair/conair_test_util.h"

#include "apps/harness.h"

namespace conair::ca {
namespace {

using ir::Builtin;
using testutil::compileC;
using testutil::countBuiltinCalls;
using testutil::parseIR;
using testutil::taggedInst;

TEST(LocalWrites, StackStoresStopBoundingRegions)
{
    auto m = parseIR(R"(
global @g : i64[1]

func @main() -> i64 {
entry:
    %0 = alloca 2
    %1 = load i64, @g
    %2 = ptradd %0, 0
    store %1, %2 #"local_store"
    %3 = icmp.sge %1, 0
    condbr %3, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"site"
    unreachable
}
)");
    RegionPolicy base;
    Region r1 = computeRegion(taggedInst(*m, "site"), base);
    ASSERT_EQ(r1.points.size(), 1u);
    EXPECT_EQ(r1.points[0].after, taggedInst(*m, "local_store"));

    RegionPolicy locals;
    locals.allowLocalWrites = true;
    Region r2 = computeRegion(taggedInst(*m, "site"), locals);
    ASSERT_EQ(r2.points.size(), 1u);
    EXPECT_TRUE(r2.points[0].isFunctionEntry());
    EXPECT_TRUE(r2.insts.count(taggedInst(*m, "local_store")));
}

TEST(LocalWrites, GlobalStoresStillBound)
{
    auto m = parseIR(R"(
global @g : i64[1]

func @main() -> i64 {
entry:
    store 1, @g #"shared_store"
    %0 = load i64, @g
    %1 = icmp.sge %0, 0
    condbr %1, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"site"
    unreachable
}
)");
    RegionPolicy locals;
    locals.allowLocalWrites = true;
    Region r = computeRegion(taggedInst(*m, "site"), locals);
    ASSERT_EQ(r.points.size(), 1u);
    EXPECT_EQ(r.points[0].after, taggedInst(*m, "shared_store"));
}

TEST(LocalWrites, SlicerTracesThroughRegionStackStores)
{
    // oracle on a value staged through a local buffer: only the
    // extended slicer sees the shared read feeding the store.
    auto m = parseIR(R"(
global @flag : i64[1]

func @main() -> i64 {
entry:
    %0 = alloca 1
    %1 = load i64, @flag #"shared_read"
    store %1, %0 #"stage"
    %2 = load i64, %0 #"reload"
    %3 = icmp.eq %2, 1
    condbr %3, ok, fail
ok:
    ret 0
fail:
    call $oracle_fail("wrong") #"site"
    unreachable
}
)");
    ir::Instruction *site = taggedInst(*m, "site");
    FailureSite fs{site, FailureKind::WrongOutput, 1, true};
    analysis::ControlDeps cdeps(*site->parent()->parent());

    RegionPolicy base;
    Region r1 = computeRegion(site, base);
    EXPECT_EQ(classifyRecoverability(fs, r1, cdeps, base),
              Recoverability::NoSharedReadOnSlice);

    RegionPolicy locals;
    locals.allowLocalWrites = true;
    Region r2 = computeRegion(site, locals);
    EXPECT_EQ(classifyRecoverability(fs, r2, cdeps, locals),
              Recoverability::Recoverable);
}

// A bug whose recovery NEEDS the extended regions: the failing thread
// stages the shared flag through an address-taken local before the
// oracle checks the staged copy.
const char *staged_src = R"(
int flag;
int setter(int x) {
    hint(1);
    flag = 1;
    return 0;
}
int main() {
    int t = spawn(setter, 0);
    int staged[1];
    staged[0] = flag;       // local store of the shared read
    int v = staged[0];
    oracle(v == 1);
    print("v=", v, "\n");
    join(t);
    return 0;
}
)";

vm::VmConfig
stagedSchedule()
{
    vm::VmConfig cfg;
    cfg.delays = {{1, 4'000}};
    cfg.maxRetries = 2'000;
    return cfg;
}

TEST(LocalWrites, ExtendedRegionsRecoverStagedOracle)
{
    // Base ConAir: the region cannot cross the local store, so the
    // retry replays the stale staged value forever.
    {
        auto m = compileC(staged_src);
        ConAirOptions opts; // base policy
        applyConAir(*m, opts);
        vm::RunResult r = vm::runProgram(*m, stagedSchedule());
        EXPECT_EQ(r.outcome, vm::Outcome::OracleFail);
    }
    // Local-writes policy: the checkpoint saves the frame's slots, the
    // region reaches back across the store, and reexecution re-stages
    // the (eventually published) flag.
    {
        auto m = compileC(staged_src);
        ConAirOptions opts;
        opts.regionPolicy.allowLocalWrites = true;
        applyConAir(*m, opts);
        EXPECT_GT(countBuiltinCalls(*m, Builtin::CaCheckpointLocals),
                  0u);
        EXPECT_EQ(countBuiltinCalls(*m, Builtin::CaCheckpoint), 0u);
        vm::RunResult r = vm::runProgram(*m, stagedSchedule());
        EXPECT_EQ(r.outcome, vm::Outcome::Success) << r.failureMsg;
        EXPECT_EQ(r.output, "v=1\n");
        EXPECT_GT(r.stats.rollbacks, 0u);
    }
}

TEST(LocalWrites, AppsStillRecoverUnderExtendedPolicy)
{
    for (const char *name : {"HTTrack", "MySQL2", "HawkNL"}) {
        const apps::AppSpec *app = apps::findApp(name);
        apps::HardenOptions opts;
        opts.conair.regionPolicy.allowLocalWrites = true;
        apps::PreparedApp p = apps::prepareApp(*app, opts);
        vm::RunResult r = apps::runBuggy(p, 1);
        EXPECT_TRUE(apps::runIsCorrect(*app, r))
            << name << ": " << vm::outcomeName(r.outcome) << " "
            << r.failureMsg;
    }
}

TEST(LocalWrites, SemanticsPreservedOnCleanRuns)
{
    const apps::AppSpec *app = apps::findApp("MySQL1");
    apps::HardenOptions plain;
    plain.applyConAir = false;
    apps::PreparedApp base = apps::prepareApp(*app, plain);
    apps::HardenOptions ext;
    ext.conair.regionPolicy.allowLocalWrites = true;
    apps::PreparedApp hard = apps::prepareApp(*app, ext);
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        vm::RunResult a = apps::runClean(base, seed);
        vm::RunResult b = apps::runClean(hard, seed);
        ASSERT_EQ(a.outcome, vm::Outcome::Success);
        ASSERT_EQ(b.outcome, vm::Outcome::Success) << b.failureMsg;
        EXPECT_EQ(a.output, b.output);
    }
}

} // namespace
} // namespace conair::ca
