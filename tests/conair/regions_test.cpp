#include "tests/conair/conair_test_util.h"

namespace conair::ca {
namespace {

using testutil::parseIR;
using testutil::taggedInst;

TEST(Regions, StoreBoundsTheRegion)
{
    auto m = parseIR(R"(
global @g : i64[1]

func @main() -> i64 {
entry:
    store 1, @g #"the_store"
    %0 = load i64, @g
    %1 = add %0, 1
    %2 = icmp.sgt %1, 0
    condbr %2, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"site"
    unreachable
}
)");
    Region r = computeRegion(taggedInst(*m, "site"), RegionPolicy{});
    ASSERT_EQ(r.points.size(), 1u);
    EXPECT_FALSE(r.points[0].isFunctionEntry());
    EXPECT_EQ(r.points[0].after, taggedInst(*m, "the_store"));
    EXPECT_FALSE(r.cleanToEntry);
    EXPECT_FALSE(r.reachesEntry);
    // The loads/arithmetic between store and site are in the region.
    EXPECT_EQ(r.insts.size(), 4u); // load, add, icmp, condbr
}

TEST(Regions, CleanPathReachesFunctionEntry)
{
    auto m = parseIR(R"(
global @g : i64[1]

func @main() -> i64 {
entry:
    %0 = load i64, @g
    %1 = icmp.sgt %0, 0
    condbr %1, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"site"
    unreachable
}
)");
    Region r = computeRegion(taggedInst(*m, "site"), RegionPolicy{});
    ASSERT_EQ(r.points.size(), 1u);
    EXPECT_TRUE(r.points[0].isFunctionEntry());
    EXPECT_TRUE(r.cleanToEntry);
    EXPECT_TRUE(r.reachesEntry);
}

TEST(Regions, BranchingProducesOnePointPerDirtyPath)
{
    auto m = parseIR(R"(
global @g : i64[2]

func @main(i64 %x) -> i64 {
entry:
    %0 = icmp.slt %x, 0
    condbr %0, left, right
left:
    store 1, @g #"store_left"
    br join
right:
    %1 = ptradd @g, 1
    store 2, %1 #"store_right"
    br join
join:
    %2 = load i64, @g
    %3 = icmp.sge %2, 0
    condbr %3, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"site"
    unreachable
}
)");
    Region r = computeRegion(taggedInst(*m, "site"), RegionPolicy{});
    EXPECT_EQ(r.points.size(), 2u);
    std::unordered_set<const ir::Instruction *> afters;
    for (const Position &p : r.points) {
        EXPECT_FALSE(p.isFunctionEntry());
        afters.insert(p.after);
    }
    EXPECT_TRUE(afters.count(taggedInst(*m, "store_left")));
    EXPECT_TRUE(afters.count(taggedInst(*m, "store_right")));
    EXPECT_FALSE(r.cleanToEntry);
}

TEST(Regions, MixedCleanAndDirtyPaths)
{
    auto m = parseIR(R"(
global @g : i64[1]

func @main(i64 %x) -> i64 {
entry:
    %0 = icmp.slt %x, 0
    condbr %0, dirty, join
dirty:
    store 1, @g #"the_store"
    br join
join:
    %1 = load i64, @g
    %2 = icmp.sge %1, 0
    condbr %2, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"site"
    unreachable
}
)");
    Region r = computeRegion(taggedInst(*m, "site"), RegionPolicy{});
    EXPECT_EQ(r.points.size(), 2u); // after store + function entry
    EXPECT_TRUE(r.reachesEntry);
    EXPECT_FALSE(r.cleanToEntry); // one path is dirty
}

TEST(Regions, CallsDestroyIdempotency)
{
    auto m = parseIR(R"(
func @helper() -> i64 {
entry:
    ret 1
}

func @main() -> i64 {
entry:
    %0 = call @helper() #"the_call"
    %1 = icmp.sgt %0, 0
    condbr %1, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"site"
    unreachable
}
)");
    Region r = computeRegion(taggedInst(*m, "site"), RegionPolicy{});
    ASSERT_EQ(r.points.size(), 1u);
    EXPECT_EQ(r.points[0].after, taggedInst(*m, "the_call"));
}

TEST(Regions, OutputCallsDestroyIdempotency)
{
    auto m = parseIR(R"(
global @g : i64[1]

func @main() -> i64 {
entry:
    call $print_str("hello") #"io"
    %0 = load i64, @g
    %1 = icmp.sgt %0, -1
    condbr %1, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"site"
    unreachable
}
)");
    Region r = computeRegion(taggedInst(*m, "site"), RegionPolicy{});
    ASSERT_EQ(r.points.size(), 1u);
    EXPECT_EQ(r.points[0].after, taggedInst(*m, "io"));
}

TEST(Regions, LibraryExtensionAdmitsMallocAndLock)
{
    auto m = parseIR(R"(
mutex @mu

func @main() -> i64 {
entry:
    %0 = call $malloc(4) #"alloc"
    call $mutex_lock(@mu) #"acq"
    %1 = icmp.ne %0, null
    condbr %1, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"site"
    unreachable
}
)");
    RegionPolicy with;
    Region r1 = computeRegion(taggedInst(*m, "site"), with);
    ASSERT_EQ(r1.points.size(), 1u);
    EXPECT_TRUE(r1.points[0].isFunctionEntry());
    EXPECT_TRUE(r1.insts.count(taggedInst(*m, "alloc")));
    EXPECT_TRUE(r1.insts.count(taggedInst(*m, "acq")));

    RegionPolicy without;
    without.allowCompensableCalls = false;
    Region r2 = computeRegion(taggedInst(*m, "site"), without);
    ASSERT_EQ(r2.points.size(), 1u);
    EXPECT_EQ(r2.points[0].after, taggedInst(*m, "acq"));
}

TEST(Regions, FreeAndUnlockStayDestroying)
{
    auto m = parseIR(R"(
mutex @mu

func @main() -> i64 {
entry:
    %0 = call $malloc(4)
    call $free(%0) #"rel"
    %1 = icmp.eq %0, null
    condbr %1, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"site"
    unreachable
}
)");
    Region r = computeRegion(taggedInst(*m, "site"), RegionPolicy{});
    ASSERT_EQ(r.points.size(), 1u);
    EXPECT_EQ(r.points[0].after, taggedInst(*m, "rel"));
}

TEST(Regions, LoopBodyRegionTerminates)
{
    // A clean loop between the site and the entry: the walk must
    // terminate and find the entry point.
    auto m = parseIR(R"(
global @g : i64[1]

func @main(i64 %n) -> i64 {
entry:
    br head
head:
    %0 = phi i64 [0, entry], [%1, body]
    %1 = add %0, 1
    %2 = icmp.slt %1, %n
    condbr %2, body, after
body:
    br head
after:
    %3 = load i64, @g
    %4 = icmp.sge %3, 0
    condbr %4, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"site"
    unreachable
}
)");
    Region r = computeRegion(taggedInst(*m, "site"), RegionPolicy{});
    ASSERT_EQ(r.points.size(), 1u);
    EXPECT_TRUE(r.points[0].isFunctionEntry());
    EXPECT_TRUE(r.cleanToEntry);
}

TEST(Regions, SchedHintIsNeutral)
{
    auto m = parseIR(R"(
global @g : i64[1]

func @main() -> i64 {
entry:
    sched_hint 1
    %0 = load i64, @g
    %1 = icmp.sge %0, 0
    condbr %1, ok, fail
ok:
    ret 0
fail:
    call $assert_fail("boom") #"site"
    unreachable
}
)");
    Region r = computeRegion(taggedInst(*m, "site"), RegionPolicy{});
    ASSERT_EQ(r.points.size(), 1u);
    EXPECT_TRUE(r.points[0].isFunctionEntry());
}

TEST(Regions, CallerRegionEndsBeforeCall)
{
    auto m = parseIR(R"(
global @p : ptr[1]

func @callee(ptr %x) -> i64 {
entry:
    %0 = load i64, %x
    ret %0
}

func @main() -> i64 {
entry:
    store 0, @p #"setup"
    %0 = load ptr, @p
    %1 = call @callee(%0) #"the_call"
    ret %1
}
)");
    Region r =
        computeCallerRegion(taggedInst(*m, "the_call"), RegionPolicy{});
    ASSERT_EQ(r.points.size(), 1u);
    EXPECT_EQ(r.points[0].after, taggedInst(*m, "setup"));
    // The pointer load before the call is inside the caller region.
    EXPECT_EQ(r.insts.size(), 1u);
}

} // namespace
} // namespace conair::ca
