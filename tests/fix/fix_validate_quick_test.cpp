/**
 * @file
 * Quick end-to-end validation of synthesized fixes on two kernels —
 * one wait-for-value (ZSNES) and one existing-mutex lock-guard
 * (MySQL1).  A trimmed campaign matrix keeps this in the quick label;
 * the 250-seed sweep over all ten kernels is fix_validate_test.cpp.
 */
#include <gtest/gtest.h>

#include "fix/fix.h"
#include "fix/validate.h"
#include "tests/fix/fix_test_util.h"

namespace conair::fixtest {
namespace {

class FixValidateQuick : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FixValidateQuick, PatchMeetsEveryObligation)
{
    ScriptedFailure sf;
    std::string err;
    ASSERT_TRUE(
        recordScriptedFailure(GetParam(), /*wantLog=*/true, sf, err))
        << err;
    fix::FixPlan plan = fix::synthesizeFix(*sf.target.plain, sf.report);
    ASSERT_TRUE(plan.ok) << plan.error;

    fix::ValidationOptions vopts;
    vopts.campaign.seedsPerPolicy = 5;
    vopts.campaign.workers = 4;
    vopts.campaign.maxSteps = 2'000'000;
    vopts.cleanConfig = sf.app.spec->cleanConfig;
    fix::ValidationResult val =
        fix::validatePatch(*plan.patched, sf.target, &sf.log, vopts);

    EXPECT_TRUE(val.ok()) << val.error;
    // Obligation 1: the minimised failing schedule is gone.
    EXPECT_TRUE(val.replayChecked);
    EXPECT_TRUE(val.replayFailureGone) << val.replayDetail;
    // Obligation 2: nothing fails anywhere in the matrix, on any
    // engine, and no deadlock was traded in.
    EXPECT_TRUE(val.campaignRan);
    EXPECT_GT(val.schedules, 0u);
    EXPECT_EQ(val.failing, 0u);
    EXPECT_EQ(val.deadlocks, 0u);
    EXPECT_EQ(val.divergences, 0u);
    // Obligation 3: the patch is not a livelock in disguise.
    EXPECT_TRUE(val.overheadChecked);
    EXPECT_TRUE(val.overheadOk);
    EXPECT_LE(val.overhead, 1.3);
}

INSTANTIATE_TEST_SUITE_P(TwoKernels, FixValidateQuick,
                         ::testing::Values("ZSNES", "MySQL1"),
                         [](const auto &info) { return info.param; });

TEST(FixValidateQuick2, UnpatchedBuildFailsValidation)
{
    // Control experiment: validating the *original* module against
    // itself must trip the campaign obligation — the failing schedule
    // still fails — proving the validator can actually say no.
    ScriptedFailure sf;
    std::string err;
    ASSERT_TRUE(
        recordScriptedFailure("ZSNES", /*wantLog=*/true, sf, err))
        << err;
    fix::ValidationOptions vopts;
    vopts.campaign.seedsPerPolicy = 5;
    vopts.campaign.workers = 4;
    vopts.campaign.maxSteps = 2'000'000;
    vopts.cleanConfig = sf.app.spec->cleanConfig;
    fix::ValidationResult val =
        fix::validatePatch(*sf.target.plain, sf.target, &sf.log, vopts);
    EXPECT_FALSE(val.ok());
    EXPECT_FALSE(val.replayFailureGone);
}

} // namespace
} // namespace conair::fixtest
