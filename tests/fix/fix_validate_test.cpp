/**
 * @file
 * The exhaustive regression proof (full label): for every one of the
 * ten kernels, the synthesized fix survives the paper-scale campaign
 * matrix — 250 seeds per (policy, depth) entry, differential and
 * fused-differential oracles armed — with zero failing schedules,
 * zero deadlock schedules, zero cross-engine divergences, the
 * minimised failing replay no longer reproducing, and clean-run
 * overhead within the 1.3x acceptance bound.
 */
#include <gtest/gtest.h>

#include "fix/fix.h"
#include "fix/validate.h"
#include "tests/fix/fix_test_util.h"

namespace conair::fixtest {
namespace {

class FixValidateFull : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FixValidateFull, PatchIsRegressionFreeAtCampaignScale)
{
    ScriptedFailure sf;
    std::string err;
    ASSERT_TRUE(
        recordScriptedFailure(GetParam(), /*wantLog=*/true, sf, err))
        << err;
    fix::FixPlan plan = fix::synthesizeFix(*sf.target.plain, sf.report);
    ASSERT_TRUE(plan.ok) << plan.error;

    fix::ValidationOptions vopts;
    vopts.campaign.seedsPerPolicy = 250;
    vopts.campaign.workers = 4;
    vopts.cleanConfig = sf.app.spec->cleanConfig;
    fix::ValidationResult val =
        fix::validatePatch(*plan.patched, sf.target, &sf.log, vopts);

    EXPECT_TRUE(val.ok()) << val.error;
    EXPECT_TRUE(val.replayChecked);
    EXPECT_TRUE(val.replayFailureGone) << val.replayDetail;
    EXPECT_TRUE(val.campaignRan);
    EXPECT_EQ(val.schedules,
              vopts.campaign.seedsPerPolicy *
                  vopts.campaign.policies.size());
    EXPECT_EQ(val.failing, 0u);
    EXPECT_EQ(val.deadlocks, 0u);
    EXPECT_EQ(val.divergences, 0u);
    EXPECT_TRUE(val.overheadOk);
    EXPECT_LE(val.overhead, 1.3);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, FixValidateFull,
    ::testing::Values("FFT", "HawkNL", "HTTrack", "MozillaXP",
                      "MozillaJS", "MySQL1", "MySQL2", "Transmission",
                      "SQLite", "ZSNES"),
    [](const auto &info) { return info.param; });

} // namespace
} // namespace conair::fixtest
