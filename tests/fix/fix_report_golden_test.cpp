/**
 * @file
 * Golden regression test for the patch report, text and JSON.
 *
 * The synthesis half is rendered live: ZSNES's campaign schedule
 * pct:d2:s2 (the rediscovered first failure the exploration bench
 * reports) is recorded, diagnosed, and fixed — the VM is
 * deterministic, so the report is byte-stable.  The validation half
 * is rendered from hand-built ValidationResult fixtures (one
 * VALIDATED, one NOT VALIDATED) so the golden pins the full format
 * without re-running a campaign.  Re-bless with `--update`.
 */
#include <gtest/gtest.h>

#include "apps/harness.h"
#include "explore/schedule.h"
#include "fix/fix.h"
#include "fix/report.h"
#include "fix/validate.h"
#include "obs/postmortem/diagnosis.h"
#include "tests/support/golden_util.h"
#include "vm/interp.h"

namespace conair::fixtest {
namespace {

/** The bench_explore campaign config for (target, token). */
vm::VmConfig
campaignConfig(const explore::Target &target,
               const explore::ScheduleSpec &s)
{
    vm::VmConfig cfg;
    s.applyTo(cfg);
    cfg.pctHorizon = target.horizon;
    cfg.quantum = target.quantum;
    cfg.maxSteps = 4'000'000;
    cfg.maxRetries = 200;
    return cfg;
}

fix::FixPlan
synthesizeZsnesFix()
{
    const apps::AppSpec *spec = apps::findApp("ZSNES");
    EXPECT_NE(spec, nullptr);
    static apps::CampaignApp app = apps::prepareCampaignApp(*spec);
    explore::Target target = apps::campaignTarget(app);

    explore::ScheduleSpec s;
    std::string tokErr;
    EXPECT_TRUE(explore::parseScheduleToken("pct:d2:s2", s, tokErr))
        << tokErr;

    // Diagnosis-grade recording of the hardened leg (recovery lets
    // the racing partner land in the trace; the unhardened leg dies
    // at the assert first).
    obs::FlightRecorder rec(4096, obs::RecorderMode::Grow);
    vm::VmConfig cfg = campaignConfig(target, s);
    cfg.recorder = &rec;
    cfg.recordSharedAccesses = true;
    vm::runProgram(*target.hardened, cfg);
    obs::pm::RecoveryReport rep = obs::pm::diagnose(
        rec, *target.hardened, "ZSNES", s.token());
    return fix::synthesizeFix(*target.plain, rep);
}

TEST(FixReportGolden, TextAndJsonMatchTheGolden)
{
    fix::FixPlan plan = synthesizeZsnesFix();
    ASSERT_TRUE(plan.ok) << plan.error;

    fix::ValidationResult good;
    good.replayChecked = true;
    good.replayFailureGone = true;
    good.replayDetail = "success";
    good.campaignRan = true;
    good.schedules = 1000;
    good.failing = 0;
    good.deadlocks = 0;
    good.divergences = 0;
    good.inconclusive = 2;
    good.overheadChecked = true;
    good.overhead = 1.0421;
    good.overheadOk = true;

    fix::ValidationResult bad;
    bad.replayChecked = true;
    bad.replayFailureGone = false;
    bad.replayDetail = "assert-fail (assert.sound_thread.59)";
    bad.campaignRan = true;
    bad.schedules = 1000;
    bad.failing = 3;
    bad.overheadChecked = true;
    bad.overhead = 1.0421;
    bad.overheadOk = true;
    bad.error = "minimized replay still fails on the patched build: "
                "assert-fail (assert.sound_thread.59)";

    std::string artifact;
    artifact += "================ patch report (text) ================\n";
    artifact += fix::renderPatchText(plan);
    artifact += "========== patch report (text, validated) ==========\n";
    artifact += fix::renderPatchText(plan, &good);
    artifact += "======== patch report (text, not validated) ========\n";
    artifact += fix::renderPatchText(plan, &bad);
    artifact += "================ patch report (json) ================\n";
    artifact += fix::patchToJson(plan, &good);
    artifact += "\n";

    testutil::checkGolden(artifact,
                          std::string(GOLDEN_DIR) +
                              "/fix_report.golden");
}

} // namespace
} // namespace conair::fixtest

int
main(int argc, char **argv)
{
    return conair::testutil::goldenMain(argc, argv);
}
