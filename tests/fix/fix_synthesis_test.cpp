/**
 * @file
 * Fix synthesis over all ten bug kernels (quick label).
 *
 * For every kernel: record its scripted first failure, diagnose it,
 * synthesize the fix, and pin the whole static contract —
 *
 *  - the verdict matches the kernel's Table 2 root cause and the fix
 *    strategy matches the verdict (wait-for-value for order bugs,
 *    lock-guard for atomicity/lost-update, lock-order for deadlocks);
 *  - the patched module re-verifies and its IR text round-trips;
 *  - the recorded (ddmin-minimised) failing schedule, replayed
 *    tolerantly against the patched build, no longer fails.
 *
 * The dynamic regression proof (full campaign matrix on the patched
 * build) lives in fix_validate_quick_test.cpp / fix_validate_test.cpp.
 */
#include <gtest/gtest.h>

#include "fix/fix.h"
#include "fix/report.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "obs/replay/replay_run.h"
#include "support/diag.h"
#include "tests/fix/fix_test_util.h"

namespace conair::fixtest {
namespace {

using fix::Strategy;

/** The strategy each kernel's diagnosis must dispatch to, plus the
 *  lock the guard fixes are expected to reuse ("" = fresh or none). */
struct Expected
{
    Strategy strategy;
    const char *variable;
    const char *existingMutex;
};

Expected
expectedFix(const std::string &app)
{
    if (app == "FFT")
        return {Strategy::WaitForValue, "im_energy", ""};
    if (app == "HawkNL")
        return {Strategy::LockOrder, "nlock", ""};
    if (app == "HTTrack")
        return {Strategy::WaitForValue, "opt", ""};
    if (app == "MozillaJS")
        return {Strategy::LockOrder, "gc_lock", ""};
    if (app == "MozillaXP")
        return {Strategy::WaitForValue, "m_thd", ""};
    if (app == "MySQL1")
        return {Strategy::LockGuard, "log_open", "log_lock"};
    if (app == "MySQL2")
        return {Strategy::LockGuard, "table_cache", "cache_lock"};
    if (app == "SQLite")
        return {Strategy::LockOrder, "db_mutex", ""};
    if (app == "Transmission")
        return {Strategy::WaitForValue, "session_bandwidth", ""};
    if (app == "ZSNES")
        return {Strategy::WaitForValue, "sound_ready", ""};
    return {Strategy::None, "", ""};
}

class FixSynthesis : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FixSynthesis, SynthesizesTheVerdictMatchedPatch)
{
    const std::string name = GetParam();
    ScriptedFailure sf;
    std::string err;
    ASSERT_TRUE(recordScriptedFailure(name, /*wantLog=*/true, sf, err))
        << err;

    const Expected exp = expectedFix(name);
    const obs::pm::EpisodeReport *primary = sf.report.primary();
    ASSERT_NE(primary, nullptr);
    EXPECT_TRUE(obs::pm::verdictMatchesRootCause(
        primary->verdict, apps::rootCauseName(sf.app.spec->rootCause)))
        << obs::pm::verdictName(primary->verdict) << " vs "
        << apps::rootCauseName(sf.app.spec->rootCause);

    fix::FixPlan plan = fix::synthesizeFix(*sf.target.plain, sf.report);
    ASSERT_TRUE(plan.ok) << plan.error;
    ASSERT_NE(plan.patched, nullptr);
    EXPECT_EQ(plan.strategy, exp.strategy)
        << fix::strategyName(plan.strategy);
    EXPECT_EQ(plan.variable, exp.variable);
    EXPECT_FALSE(plan.edits.empty());
    if (*exp.existingMutex) {
        EXPECT_TRUE(plan.usedExistingMutex);
        EXPECT_EQ(plan.mutexName, exp.existingMutex);
    }

    // The patch is a well-formed module: verifier-clean and
    // print/parse round-trippable.
    DiagEngine d;
    EXPECT_TRUE(ir::verifyModule(*plan.patched, d)) << d.str();
    std::string printed = ir::printModule(*plan.patched);
    DiagEngine d2;
    auto reparsed = ir::parseModule(printed, d2);
    ASSERT_NE(reparsed, nullptr) << d2.str();
    EXPECT_EQ(ir::printModule(*reparsed), printed);

    // The minimised failing schedule no longer reproduces: tolerant
    // replay of the recorded switches ends fully correct.
    ASSERT_TRUE(sf.hasLog);
    vm::RunResult r = obs::replay::replayTolerant(
        *plan.patched, sf.log, sf.log.switches, sf.log.engine);
    EXPECT_EQ(r.outcome, vm::Outcome::Success)
        << vm::outcomeName(r.outcome) << " @ " << r.failureTag;
    if (sf.target.checkOutput)
        EXPECT_EQ(r.output, sf.target.expectedOutput);
    EXPECT_EQ(r.exitCode, sf.target.expectedExit);

    // And the patch report names the essentials.
    std::string text = fix::renderPatchText(plan);
    EXPECT_NE(text.find(name), std::string::npos);
    EXPECT_NE(text.find(fix::strategyName(plan.strategy)),
              std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, FixSynthesis,
    ::testing::Values("FFT", "HawkNL", "HTTrack", "MozillaXP",
                      "MozillaJS", "MySQL1", "MySQL2", "Transmission",
                      "SQLite", "ZSNES"),
    [](const auto &info) { return info.param; });

TEST(FixSynthesisErrors, UnknownVerdictHasNoStrategy)
{
    const apps::AppSpec *spec = apps::findApp("ZSNES");
    ASSERT_NE(spec, nullptr);
    apps::CampaignApp app = apps::prepareCampaignApp(*spec);

    obs::pm::RecoveryReport rep;
    rep.program = "ZSNES";
    obs::pm::EpisodeReport ep;
    ep.verdict = obs::pm::Verdict::Unknown;
    ep.variable = "sound_ready";
    rep.episodes.push_back(ep);

    fix::FixPlan plan =
        fix::synthesizeFix(*app.plain.module, rep);
    EXPECT_FALSE(plan.ok);
    EXPECT_EQ(plan.strategy, Strategy::None);
    EXPECT_NE(plan.error.find("verdict"), std::string::npos)
        << plan.error;
    EXPECT_EQ(plan.patched, nullptr);
}

TEST(FixSynthesisErrors, EmptyReportIsRejected)
{
    const apps::AppSpec *spec = apps::findApp("ZSNES");
    ASSERT_NE(spec, nullptr);
    apps::CampaignApp app = apps::prepareCampaignApp(*spec);
    fix::FixPlan plan =
        fix::synthesizeFix(*app.plain.module, obs::pm::RecoveryReport{});
    EXPECT_FALSE(plan.ok);
    EXPECT_FALSE(plan.error.empty());
}

TEST(FixSynthesisErrors, StrategyNamesAreStable)
{
    EXPECT_STREQ(fix::strategyName(Strategy::None), "none");
    EXPECT_STREQ(fix::strategyName(Strategy::WaitForValue),
                 "wait-for-value");
    EXPECT_STREQ(fix::strategyName(Strategy::LockGuard), "lock-guard");
    EXPECT_STREQ(fix::strategyName(Strategy::LockOrder), "lock-order");
}

} // namespace
} // namespace conair::fixtest
