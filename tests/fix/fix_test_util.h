/**
 * @file
 * Shared front half for the fix-synthesis tests: record one failing
 * run of a kernel's scripted buggy schedule, diagnose it postmortem,
 * and (optionally) build + ddmin-minimise the failing run's replay
 * log — everything synthesizeFix()/validatePatch() consume.
 *
 * Diagnosis prefers the hardened leg under the same schedule: ConAir
 * recovery retries until the racing partner's access lands in the
 * trace, whereas the unhardened leg dies at the failure site first
 * (the same leg-selection rule bench_explore uses).
 */
#pragma once

#include <memory>
#include <string>

#include "apps/harness.h"
#include "obs/postmortem/diagnosis.h"
#include "obs/replay/minimize.h"
#include "obs/replay/replay_log.h"
#include "vm/interp.h"

namespace conair::fixtest {

/** Everything the scripted-failure front half produced. */
struct ScriptedFailure
{
    apps::CampaignApp app;      ///< owns both module builds
    explore::Target target;     ///< borrows app's modules
    obs::pm::RecoveryReport report;
    obs::replay::ReplayLog log; ///< minimised when hasLog
    bool hasLog = false;
};

/**
 * Fills @p out for kernel @p name.  Probes the scripted buggy
 * schedule over seeds 1..8 for a failing unhardened run; returns
 * false with a one-line @p err when the kernel is unknown, no seed
 * fails, or the diagnosis is empty.
 */
inline bool
recordScriptedFailure(const std::string &name, bool wantLog,
                      ScriptedFailure &out, std::string &err)
{
    const apps::AppSpec *spec = apps::findApp(name);
    if (!spec) {
        err = "unknown app '" + name + "'";
        return false;
    }
    out.app = apps::prepareCampaignApp(*spec);
    out.target = apps::campaignTarget(out.app);

    auto rec = std::make_unique<obs::FlightRecorder>(
        4096, obs::RecorderMode::Grow);
    vm::VmConfig cfg;
    vm::RunResult fail;
    bool gotFailure = false;
    for (uint64_t seed = 1; seed <= 8 && !gotFailure; ++seed) {
        rec = std::make_unique<obs::FlightRecorder>(
            4096, obs::RecorderMode::Grow);
        cfg = spec->buggyConfig;
        cfg.seed = seed;
        cfg.recorder = rec.get();
        cfg.recordSharedAccesses = true;
        fail = vm::runProgram(*out.target.plain, cfg);
        cfg.recorder = nullptr;
        cfg.recordSharedAccesses = false;
        gotFailure = !apps::runIsCorrect(*spec, fail);
    }
    if (!gotFailure) {
        err = name + ": scripted buggy schedule never failed "
                     "(seeds 1..8)";
        return false;
    }

    obs::FlightRecorder hardRec(4096, obs::RecorderMode::Grow);
    {
        vm::VmConfig hcfg = cfg;
        hcfg.recorder = &hardRec;
        hcfg.recordSharedAccesses = true;
        vm::runProgram(*out.target.hardened, hcfg);
    }
    bool useHard =
        hardRec.totalOf(obs::EventKind::RecoveryDone) > 0 ||
        hardRec.totalOf(obs::EventKind::FailureSite) > 0;
    out.report = obs::pm::diagnose(
        useHard ? hardRec : *rec,
        useHard ? *out.target.hardened : *out.target.plain, name);
    if (out.report.episodes.empty()) {
        err = name + ": diagnosis produced no episodes";
        return false;
    }

    if (wantLog) {
        std::string lerr;
        if (!obs::replay::buildReplayLog(name, "", cfg, *rec, fail,
                                         out.log, lerr)) {
            err = name + ": replay log build failed: " + lerr;
            return false;
        }
        obs::replay::MinimizeResult mres =
            obs::replay::minimizeReplayLog(*out.target.plain, out.log,
                                           {});
        if (mres.ok)
            out.log = mres.minimized;
        out.hasLog = true;
    }
    return true;
}

} // namespace conair::fixtest
