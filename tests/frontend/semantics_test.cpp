/**
 * @file
 * MiniC end-to-end language-semantics tests: every construct compiled
 * and executed, checking C-like behaviour on the VM.
 */
#include <gtest/gtest.h>

#include "frontend/compile.h"
#include "vm/interp.h"

namespace conair::fe {
namespace {

int64_t
evalMain(const std::string &src)
{
    DiagEngine d;
    auto m = compileMiniC(src, d);
    EXPECT_TRUE(m) << d.str();
    if (!m)
        return INT64_MIN;
    vm::RunResult r = vm::runProgram(*m);
    EXPECT_EQ(r.outcome, vm::Outcome::Success) << r.failureMsg;
    return r.exitCode;
}

TEST(Semantics, OperatorPrecedence)
{
    EXPECT_EQ(evalMain("int main() { return 2 + 3 * 4; }"), 14);
    EXPECT_EQ(evalMain("int main() { return (2 + 3) * 4; }"), 20);
    EXPECT_EQ(evalMain("int main() { return 20 - 8 / 2 - 1; }"), 15);
    EXPECT_EQ(evalMain("int main() { return 1 << 3 | 1; }"), 9);
    EXPECT_EQ(evalMain("int main() { return 7 & 3 ^ 1; }"), 2);
}

TEST(Semantics, ComparisonChainsViaLogicalOps)
{
    EXPECT_EQ(evalMain("int main() { return 1 < 2 && 2 < 3; }"), 1);
    EXPECT_EQ(evalMain("int main() { return 1 < 2 && 3 < 2; }"), 0);
    EXPECT_EQ(evalMain("int main() { return 0 || 5; }"), 1);
    EXPECT_EQ(evalMain("int main() { return !(3 == 3); }"), 0);
}

TEST(Semantics, ShortCircuitSideEffectOrder)
{
    EXPECT_EQ(evalMain(R"(
int calls;
int bump() { calls = calls + 1; return 1; }
int main() {
    int r = 0 && bump();
    int s = 1 || bump();
    return calls * 10 + r + s;   // bump never called
}
)"),
              1);
}

TEST(Semantics, CompoundAssignAndIncrements)
{
    EXPECT_EQ(evalMain(R"(
int main() {
    int x = 10;
    x += 5;
    x -= 3;
    x++;
    ++x;
    x--;
    return x;   // 13
}
)"),
              13);
}

TEST(Semantics, NestedLoopsWithBreakContinue)
{
    EXPECT_EQ(evalMain(R"(
int main() {
    int acc = 0;
    for (int i = 0; i < 5; i++) {
        if (i == 3) continue;
        for (int j = 0; j < 5; j++) {
            if (j > i) break;
            acc += 1;
        }
    }
    return acc;   // rows 0,1,2,4 -> 1+2+3+5 = 11
}
)"),
              11);
}

TEST(Semantics, RecursionAndMutualCalls)
{
    // No prototypes needed: all functions are pre-declared.
    EXPECT_EQ(evalMain(R"(
int is_even(int n) {
    if (n == 0) return 1;
    return is_odd(n - 1);
}
int is_odd(int n) {
    if (n == 0) return 0;
    return is_even(n - 1);
}
int main() { return is_even(10) * 10 + is_odd(7); }
)"),
              11);
}

TEST(Semantics, PointerToPointer)
{
    EXPECT_EQ(evalMain(R"(
int main() {
    int x = 5;
    int* p = &x;
    int** pp = &p;
    **pp = 9;
    return x;
}
)"),
              9);
}

TEST(Semantics, PointerArithmeticAndCompare)
{
    EXPECT_EQ(evalMain(R"(
int main() {
    int* p = malloc(8);
    int* q = p + 3;
    q[0] = 7;
    int eq = (p + 3) == q;
    int ne = p != q;
    int v = p[3];
    free(p);
    return eq * 100 + ne * 10 + v % 10;
}
)"),
              117);
}

TEST(Semantics, DoubleMathAndConversion)
{
    EXPECT_EQ(evalMain(R"(
double mix(int a, double b) { return a / 4.0 + b; }
int main() {
    double d = mix(10, 0.5);   // 3.0
    int i = d * 2.0;           // 6
    double neg = -d;
    return i + (neg < 0.0);
}
)"),
              7);
}

TEST(Semantics, GlobalArrayInitialisers)
{
    EXPECT_EQ(evalMain(R"(
int primes[5] = {2, 3, 5, 7, 11};
double weights[2] = {0.5, 1.5};
int main() {
    int acc = 0;
    for (int i = 0; i < 5; i++) acc += primes[i];
    return acc + (weights[0] + weights[1] == 2.0);  // 28 + 1
}
)"),
              29);
}

TEST(Semantics, VariableShadowingInBlocks)
{
    EXPECT_EQ(evalMain(R"(
int main() {
    int x = 1;
    {
        int x = 2;
        x = x + 1;
    }
    return x;
}
)"),
              1);
}

TEST(Semantics, ForScopeIsPerStatement)
{
    EXPECT_EQ(evalMain(R"(
int main() {
    int acc = 0;
    for (int i = 0; i < 3; i++) acc += i;
    for (int i = 10; i < 12; i++) acc += i;
    return acc;   // 3 + 21
}
)"),
              24);
}

TEST(Semantics, NegativeDivisionTruncatesTowardZero)
{
    EXPECT_EQ(evalMain("int main() { return -7 / 2; }"), -3);
    EXPECT_EQ(evalMain("int main() { return -7 % 2; }"), -1);
    EXPECT_EQ(evalMain("int main() { return 7 / -2; }"), -3);
}

TEST(Semantics, FunctionArgumentsAreByValue)
{
    EXPECT_EQ(evalMain(R"(
int clobber(int x) { x = 999; return x; }
int main() {
    int v = 5;
    clobber(v);
    return v;
}
)"),
              5);
}

} // namespace
} // namespace conair::fe
