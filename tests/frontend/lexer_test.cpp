#include <gtest/gtest.h>

#include "frontend/lexer.h"

namespace conair::fe {
namespace {

std::vector<Token>
lexOk(const std::string &src)
{
    DiagEngine d;
    auto toks = lex(src, d);
    EXPECT_FALSE(d.hasErrors()) << d.str();
    return toks;
}

TEST(Lexer, KeywordsAndIdents)
{
    auto t = lexOk("int foo while whiles");
    ASSERT_EQ(t.size(), 5u); // + End
    EXPECT_EQ(t[0].kind, Tk::KwInt);
    EXPECT_EQ(t[1].kind, Tk::Ident);
    EXPECT_EQ(t[1].text, "foo");
    EXPECT_EQ(t[2].kind, Tk::KwWhile);
    EXPECT_EQ(t[3].kind, Tk::Ident); // not a keyword
    EXPECT_EQ(t[4].kind, Tk::End);
}

TEST(Lexer, NumbersIntAndFloat)
{
    auto t = lexOk("42 3.5 1e3 0 7.");
    EXPECT_EQ(t[0].kind, Tk::IntLit);
    EXPECT_EQ(t[0].ival, 42);
    EXPECT_EQ(t[1].kind, Tk::FloatLit);
    EXPECT_DOUBLE_EQ(t[1].fval, 3.5);
    EXPECT_EQ(t[2].kind, Tk::FloatLit);
    EXPECT_DOUBLE_EQ(t[2].fval, 1000.0);
    EXPECT_EQ(t[3].kind, Tk::IntLit);
    EXPECT_EQ(t[4].kind, Tk::FloatLit);
}

TEST(Lexer, MultiCharOperators)
{
    auto t = lexOk("== != <= >= && || << >> += -= ++ --");
    Tk expect[] = {Tk::Eq, Tk::Ne, Tk::Le, Tk::Ge, Tk::AmpAmp,
                   Tk::PipePipe, Tk::Shl, Tk::Shr, Tk::PlusAssign,
                   Tk::MinusAssign, Tk::PlusPlus, Tk::MinusMinus};
    for (size_t i = 0; i < std::size(expect); ++i)
        EXPECT_EQ(t[i].kind, expect[i]) << i;
}

TEST(Lexer, StringsWithEscapes)
{
    auto t = lexOk(R"("hello\nworld")");
    ASSERT_EQ(t[0].kind, Tk::StrLit);
    EXPECT_EQ(t[0].text, "hello\nworld");
}

TEST(Lexer, CommentsAreSkipped)
{
    auto t = lexOk("a // line comment\nb /* block\ncomment */ c");
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0].text, "a");
    EXPECT_EQ(t[1].text, "b");
    EXPECT_EQ(t[2].text, "c");
}

TEST(Lexer, TracksLineNumbers)
{
    auto t = lexOk("a\nb\n  c");
    EXPECT_EQ(t[0].loc.line, 1u);
    EXPECT_EQ(t[1].loc.line, 2u);
    EXPECT_EQ(t[2].loc.line, 3u);
    EXPECT_EQ(t[2].loc.col, 3u);
}

TEST(Lexer, UnterminatedStringIsError)
{
    DiagEngine d;
    lex("\"oops", d);
    EXPECT_TRUE(d.hasErrors());
}

TEST(Lexer, StrayCharacterIsError)
{
    DiagEngine d;
    lex("a ? b", d);
    EXPECT_TRUE(d.hasErrors());
}

} // namespace
} // namespace conair::fe
