#include <gtest/gtest.h>

#include "analysis/dominators.h"
#include "frontend/compile.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace conair::fe {
namespace {

using ir::Builtin;
using ir::Function;
using ir::Instruction;
using ir::Opcode;

std::unique_ptr<ir::Module>
compileOk(const std::string &src, bool promote = true)
{
    DiagEngine d;
    CompileOptions opts;
    opts.promoteToSSA = promote;
    auto m = compileMiniC(src, d, opts);
    EXPECT_TRUE(m) << d.str();
    return m;
}

void
compileErr(const std::string &src)
{
    DiagEngine d;
    auto m = compileMiniC(src, d);
    EXPECT_FALSE(m);
    EXPECT_TRUE(d.hasErrors());
}

unsigned
countOp(const Function &f, Opcode op)
{
    unsigned n = 0;
    for (const auto &bb : f.blocks())
        for (const auto &inst : bb->insts())
            n += inst->opcode() == op;
    return n;
}

unsigned
countBuiltin(const Function &f, Builtin b)
{
    unsigned n = 0;
    for (const auto &bb : f.blocks())
        for (const auto &inst : bb->insts())
            n += inst->opcode() == Opcode::Call && inst->builtin() == b;
    return n;
}

TEST(Codegen, MinimalMain)
{
    auto m = compileOk("int main() { return 7; }");
    Function *main_fn = m->findFunction("main");
    ASSERT_NE(main_fn, nullptr);
    EXPECT_EQ(main_fn->returnType(), ir::Type::I64);
}

TEST(Codegen, SSAPromotionRemovesScalarSlots)
{
    auto m = compileOk(R"(
int main() {
    int x = 1;
    int y = x + 2;
    x = y * 3;
    return x;
}
)");
    Function *f = m->findFunction("main");
    EXPECT_EQ(countOp(*f, Opcode::Alloca), 0u);
    EXPECT_EQ(countOp(*f, Opcode::Load), 0u);
}

TEST(Codegen, WithoutPromotionKeepsSlots)
{
    auto m = compileOk("int main() { int x = 1; return x; }",
                       /*promote=*/false);
    Function *f = m->findFunction("main");
    EXPECT_GE(countOp(*f, Opcode::Alloca), 1u);
    EXPECT_GE(countOp(*f, Opcode::Store), 1u);
}

TEST(Codegen, AddressTakenLocalStaysInMemory)
{
    auto m = compileOk(R"(
int main() {
    int x = 1;
    int* p = &x;
    *p = 5;
    return x;
}
)");
    Function *f = m->findFunction("main");
    // x stays as an alloca because its address escapes; p promotes.
    EXPECT_EQ(countOp(*f, Opcode::Alloca), 1u);
}

TEST(Codegen, LocalArraysAreAllocas)
{
    auto m = compileOk(R"(
int main() {
    int a[4];
    a[0] = 1;
    a[1] = a[0] + 1;
    return a[1];
}
)");
    Function *f = m->findFunction("main");
    EXPECT_EQ(countOp(*f, Opcode::Alloca), 1u);
    EXPECT_GE(countOp(*f, Opcode::PtrAdd), 3u);
}

TEST(Codegen, GlobalsLowerToGlobalAccesses)
{
    auto m = compileOk(R"(
int counter = 3;
int main() {
    counter = counter + 1;
    return counter;
}
)");
    ASSERT_NE(m->findGlobal("counter"), nullptr);
    EXPECT_EQ(m->findGlobal("counter")->initInt()[0], 3);
    Function *f = m->findFunction("main");
    EXPECT_GE(countOp(*f, Opcode::Load), 2u);
    EXPECT_GE(countOp(*f, Opcode::Store), 1u);
}

TEST(Codegen, AssertLowersToCondBrAndAssertFail)
{
    auto m = compileOk(R"(
int main() {
    int x = 5;
    assert(x > 0);
    return x;
}
)");
    Function *f = m->findFunction("main");
    EXPECT_EQ(countBuiltin(*f, Builtin::AssertFail), 1u);
    EXPECT_GE(countOp(*f, Opcode::Unreachable), 1u);
    // The assert-fail call carries a fix-mode tag.
    bool tagged = false;
    for (const auto &bb : f->blocks())
        for (const auto &inst : bb->insts())
            if (inst->builtin() == Builtin::AssertFail)
                tagged = inst->tag().rfind("assert.main.", 0) == 0;
    EXPECT_TRUE(tagged);
}

TEST(Codegen, OracleLowersToOracleFail)
{
    auto m = compileOk(R"(
int main() {
    int x = 1;
    oracle(x == 1);
    print("x=", x, "\n");
    return 0;
}
)");
    Function *f = m->findFunction("main");
    EXPECT_EQ(countBuiltin(*f, Builtin::OracleFail), 1u);
    EXPECT_EQ(countBuiltin(*f, Builtin::PrintStr), 2u);
    EXPECT_EQ(countBuiltin(*f, Builtin::PrintI64), 1u);
}

TEST(Codegen, ThreadingBuiltins)
{
    auto m = compileOk(R"(
mutex lk;
int worker(int n) {
    lock(lk);
    unlock(lk);
    return n;
}
int main() {
    int t = spawn(worker, 9);
    join(t);
    return 0;
}
)");
    Function *main_fn = m->findFunction("main");
    EXPECT_EQ(countBuiltin(*main_fn, Builtin::ThreadCreate), 1u);
    EXPECT_EQ(countBuiltin(*main_fn, Builtin::ThreadJoin), 1u);
    Function *w = m->findFunction("worker");
    EXPECT_EQ(countBuiltin(*w, Builtin::MutexLock), 1u);
    EXPECT_EQ(countBuiltin(*w, Builtin::MutexUnlock), 1u);
}

TEST(Codegen, ShortCircuitGeneratesBranches)
{
    auto m = compileOk(R"(
int* gp;
int main() {
    if (gp && gp[0] > 2) {
        return 1;
    }
    return 0;
}
)");
    // Null guard must evaluate gp[0] only after gp != null: the deref
    // load must sit in a block distinct from the first compare's block.
    Function *f = m->findFunction("main");
    const ir::BasicBlock *deref_block = nullptr;
    const ir::BasicBlock *first_cmp_block = f->entry();
    for (const auto &bb : f->blocks())
        for (const auto &inst : bb->insts())
            if (inst->opcode() == Opcode::Load &&
                inst->tag().rfind("deref.", 0) == 0)
                deref_block = bb.get();
    ASSERT_NE(deref_block, nullptr);
    EXPECT_NE(deref_block, first_cmp_block);
}

TEST(Codegen, MixedArithmeticPromotesToDouble)
{
    auto m = compileOk(R"(
double half(int x) { return x / 2.0; }
int main() { return 0; }
)");
    Function *f = m->findFunction("half");
    EXPECT_EQ(countOp(*f, Opcode::SiToFp), 1u);
    EXPECT_EQ(countOp(*f, Opcode::FDiv), 1u);
}

TEST(Codegen, HintLowersToSchedHint)
{
    auto m = compileOk("int main() { hint(3); return 0; }");
    Function *f = m->findFunction("main");
    EXPECT_EQ(countOp(*f, Opcode::SchedHint), 1u);
}

TEST(Codegen, SSAFormIsValid)
{
    auto m = compileOk(R"(
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() {
    int acc = 0;
    for (int i = 0; i < 10; i++) {
        acc += fib(i);
    }
    return acc;
}
)");
    for (const auto &f : m->functions()) {
        DiagEngine d;
        EXPECT_TRUE(analysis::verifySSA(*f, d))
            << d.str() << ir::printModule(*m);
    }
}

TEST(Codegen, Errors)
{
    compileErr("int main() { return y; }");             // unknown var
    compileErr("int main() { int x; x(); return 0; }"); // unknown func
    compileErr("int main() { double d; return *d; }"); // deref non-ptr
    compileErr("int main() { int a[3]; a = 0; return 0; }");
    compileErr("void main2() { return 1; }  int main() { return 0; }");
    compileErr("int main() { break; }");
    compileErr("mutex m; int main() { m = 3; return 0; }");
    compileErr("int main() { int x = \"str\"; return x; }");
}

TEST(Codegen, BreakAndContinueTargetLoops)
{
    auto m = compileOk(R"(
int main() {
    int n = 0;
    for (int i = 0; i < 10; i++) {
        if (i == 3) continue;
        if (i == 7) break;
        n += 1;
    }
    return n;
}
)");
    EXPECT_NE(m, nullptr);
}

TEST(Codegen, WhileConditionReloadsGlobal)
{
    // Spin-wait loops must re-read the global each iteration.
    auto m = compileOk(R"(
int flag;
int main() {
    while (!flag) { yield(); }
    return flag;
}
)");
    Function *f = m->findFunction("main");
    unsigned loads = countOp(*f, Opcode::Load);
    EXPECT_GE(loads, 2u); // one in the loop header per iteration + final
}

} // namespace
} // namespace conair::fe
