#include <gtest/gtest.h>

#include "frontend/parser.h"

namespace conair::fe {
namespace {

std::unique_ptr<Program>
parseOk(const std::string &src)
{
    DiagEngine d;
    auto p = parseProgram(src, d);
    EXPECT_TRUE(p) << d.str();
    return p;
}

void
parseErr(const std::string &src)
{
    DiagEngine d;
    auto p = parseProgram(src, d);
    EXPECT_FALSE(p);
    EXPECT_TRUE(d.hasErrors());
}

TEST(Parser, GlobalsAndMutexes)
{
    auto p = parseOk(R"(
int counter = 5;
double weights[4] = {1.0, 2.0, 3.0, 4.0};
mutex lk;
int* head;
int table[100];
)");
    ASSERT_EQ(p->globals.size(), 5u);
    EXPECT_EQ(p->globals[0].name, "counter");
    ASSERT_TRUE(p->globals[0].hasInit);
    EXPECT_EQ(p->globals[0].initInt[0], 5);
    EXPECT_EQ(p->globals[1].arraySize, 4);
    EXPECT_EQ(p->globals[1].initFp.size(), 4u);
    EXPECT_TRUE(p->globals[2].isMutex);
    EXPECT_EQ(p->globals[3].type.ptr, 1);
    EXPECT_EQ(p->globals[4].arraySize, 100);
}

TEST(Parser, FunctionSignature)
{
    auto p = parseOk("double scale(double x, int* out) { return x; }");
    ASSERT_EQ(p->functions.size(), 1u);
    const FuncDecl &f = *p->functions[0];
    EXPECT_EQ(f.name, "scale");
    EXPECT_TRUE(f.returnType.isDouble());
    ASSERT_EQ(f.params.size(), 2u);
    EXPECT_TRUE(f.params[0].type.isDouble());
    EXPECT_EQ(f.params[1].type.ptr, 1);
}

TEST(Parser, PrecedenceShapesTree)
{
    auto p = parseOk("int main() { int x = 1 + 2 * 3; return x; }");
    const Stmt &decl = *p->functions[0]->body->kids[0];
    ASSERT_EQ(decl.kind, StmtKind::VarDecl);
    const Expr &sum = *decl.expr;
    ASSERT_EQ(sum.kind, ExprKind::Binary);
    EXPECT_EQ(sum.text, "+");
    EXPECT_EQ(sum.kids[1]->text, "*"); // * binds tighter
}

TEST(Parser, AssignIsRightAssociative)
{
    auto p = parseOk("int main() { int a; int b; a = b = 3; return a; }");
    const Stmt &st = *p->functions[0]->body->kids[2];
    const Expr &outer = *st.expr;
    ASSERT_EQ(outer.kind, ExprKind::Assign);
    EXPECT_EQ(outer.kids[1]->kind, ExprKind::Assign);
}

TEST(Parser, ControlFlowStatements)
{
    auto p = parseOk(R"(
int main() {
    int i;
    for (i = 0; i < 10; i = i + 1) {
        if (i == 5) break;
        else continue;
    }
    while (i > 0) i = i - 1;
    return i;
}
)");
    const Stmt &body = *p->functions[0]->body;
    EXPECT_EQ(body.kids[1]->kind, StmtKind::For);
    EXPECT_EQ(body.kids[2]->kind, StmtKind::While);
}

TEST(Parser, UnaryAndPointerExpr)
{
    auto p = parseOk("int main() { int x; int* p; p = &x; *p = -*p; "
                     "return p[0]; }");
    const Stmt &ret = *p->functions[0]->body->kids.back();
    ASSERT_EQ(ret.kind, StmtKind::Return);
    EXPECT_EQ(ret.expr->kind, ExprKind::Index);
}

TEST(Parser, IncrementSugar)
{
    auto p = parseOk("int main() { int i = 0; i++; ++i; i--; return i; }");
    const Stmt &st = *p->functions[0]->body->kids[1];
    ASSERT_EQ(st.kind, StmtKind::ExprStmt);
    EXPECT_EQ(st.expr->kind, ExprKind::Assign);
    EXPECT_EQ(st.expr->text, "+=");
}

TEST(Parser, CallsWithArguments)
{
    auto p = parseOk(R"(
int work(int a, int b) { return a + b; }
int main() { return work(1, work(2, 3)); }
)");
    const Stmt &ret = *p->functions[1]->body->kids[0];
    ASSERT_EQ(ret.expr->kind, ExprKind::Call);
    EXPECT_EQ(ret.expr->kids.size(), 2u);
    EXPECT_EQ(ret.expr->kids[1]->kind, ExprKind::Call);
}

TEST(Parser, Errors)
{
    parseErr("int main() { return 0 }");     // missing ';'
    parseErr("int main() { if (x) }");       // missing statement body
    parseErr("int main( { return 0; }");     // bad parameter list
    parseErr("banana main() { return 0; }"); // unknown type
    parseErr("int main() { int a[x]; return 0; }"); // non-const size
}

} // namespace
} // namespace conair::fe
