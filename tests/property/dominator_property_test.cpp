/**
 * @file
 * Property test: the Cooper-Harvey-Kennedy dominator tree agrees with
 * the *definition* of dominance (a dominates b iff every entry->b path
 * passes through a, i.e. removing a disconnects b), checked by brute
 * force over the CFGs of randomly generated programs.
 */
#include <gtest/gtest.h>

#include <unordered_set>

#include "analysis/dominators.h"
#include "frontend/compile.h"
#include "tests/property/program_gen.h"

namespace conair::proptest {
namespace {

using ir::BasicBlock;
using ir::Function;

/** Blocks reachable from entry without passing through @p removed. */
std::unordered_set<const BasicBlock *>
reachableAvoiding(const Function &f, const BasicBlock *removed)
{
    std::unordered_set<const BasicBlock *> seen;
    std::vector<const BasicBlock *> work;
    const BasicBlock *entry = f.entry();
    if (entry == removed)
        return seen;
    seen.insert(entry);
    work.push_back(entry);
    while (!work.empty()) {
        const BasicBlock *bb = work.back();
        work.pop_back();
        for (const BasicBlock *s :
             const_cast<BasicBlock *>(bb)->successors()) {
            if (s == removed)
                continue;
            if (seen.insert(s).second)
                work.push_back(s);
        }
    }
    return seen;
}

class DomProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DomProperty, TreeMatchesBruteForceDefinition)
{
    DiagEngine d;
    auto m = fe::compileMiniC(generateProgram(GetParam()), d);
    ASSERT_TRUE(m) << d.str();

    for (const auto &f : m->functions()) {
        analysis::DomTree dt(*f);
        auto all = reachableAvoiding(*f, nullptr);
        for (const auto &a : f->blocks()) {
            if (!dt.isReachable(a.get()))
                continue;
            auto without_a = reachableAvoiding(*f, a.get());
            for (const auto &b : f->blocks()) {
                if (!dt.isReachable(b.get()) || !all.count(b.get()))
                    continue;
                bool brute = a.get() == b.get() ||
                             !without_a.count(b.get());
                EXPECT_EQ(dt.dominates(a.get(), b.get()), brute)
                    << "@" << f->name() << ": " << a->name()
                    << " dom " << b->name();
            }
        }
    }
}

TEST_P(DomProperty, IdomIsTheUniqueClosestStrictDominator)
{
    DiagEngine d;
    auto m = fe::compileMiniC(generateProgram(GetParam()), d);
    ASSERT_TRUE(m) << d.str();

    for (const auto &f : m->functions()) {
        analysis::DomTree dt(*f);
        for (const auto &b : f->blocks()) {
            if (!dt.isReachable(b.get()))
                continue;
            BasicBlock *idom = dt.idom(b.get());
            if (b.get() == f->entry()) {
                EXPECT_EQ(idom, nullptr);
                continue;
            }
            ASSERT_NE(idom, nullptr) << b->name();
            EXPECT_TRUE(dt.strictlyDominates(idom, b.get()));
            // Every other strict dominator of b dominates the idom.
            for (const auto &c : f->blocks()) {
                if (!dt.isReachable(c.get()))
                    continue;
                if (dt.strictlyDominates(c.get(), b.get()))
                    EXPECT_TRUE(dt.dominates(c.get(), idom))
                        << c->name() << " vs idom " << idom->name();
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomProperty,
                         ::testing::Range<uint64_t>(100, 110));

} // namespace
} // namespace conair::proptest
