/**
 * @file
 * A seeded random MiniC program generator for property-based testing.
 *
 * Generated programs are deterministic by construction so results can
 * be compared across configurations:
 *  - loops are bounded counters, division/modulo operands are made
 *    non-zero, array indices stay in bounds;
 *  - all shared-global updates in worker threads are commutative
 *    (additions under one mutex), so the final state is independent of
 *    the interleaving;
 *  - main prints a digest of every global after joining the workers.
 */
#pragma once

#include <string>
#include <vector>

#include "support/rng.h"
#include "support/str.h"

namespace conair::proptest {

/** Shape knobs for generated programs. */
struct GenOptions
{
    unsigned maxFunctions = 3;  ///< helper functions besides main
    unsigned maxStmtsPerBlock = 6;
    unsigned maxDepth = 3;      ///< nesting depth of if/for
    unsigned numGlobals = 4;
    unsigned arraySize = 8;
    bool withThreads = true;    ///< spawn locked commutative workers
    bool withPointers = true;   ///< a malloc'd buffer + derefs
    bool withAsserts = true;    ///< always-true asserts (failure sites)

    /**
     * Shared-heap mode: main mallocs a buffer visible to worker
     * threads, which update its cells commutatively (additions) under
     * per-slot locks, and main digests the buffer after joining.  Each
     * slot maps to one fixed mutex (chosen by `slot % numMutexes`), so
     * every cell is consistently guarded and the final heap state is
     * interleaving-independent — while the engines get exercised on
     * multi-threaded heap loads/stores and a variety of lock objects.
     */
    bool sharedHeap = false;

    /** Lock variety for sharedHeap: number of heap-guarding mutexes
     *  (clamped to [1, 3]); only meaningful with sharedHeap. */
    unsigned numMutexes = 1;

    /**
     * Adversarial mode: emit shared-global updates that genuinely race
     * and assert oracles that fire under the wrong interleaving.
     *  - a closer/observer pair races a transient state flag (the
     *    MySQL1-style WAW window): the observer's assert is
     *    *recoverable* — its idempotent region re-reads the flag;
     *  - unlocked read-modify-write workers race a counter whose final
     *    value main asserts: a lost update is *unrecoverable*, and the
     *    hardened program must surface the same assert failure.
     * Outputs are schedule-dependent by design, so adversarial
     * programs are explored with output checking off; the property is
     * unhardened-failure => hardened recovery or same failure kind,
     * plus engine agreement (see property_test.cpp).
     */
    bool adversarial = false;
};

/** Generates one program from @p seed. */
std::string generateProgram(uint64_t seed, const GenOptions &opts = {});

} // namespace conair::proptest
