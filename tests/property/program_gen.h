/**
 * @file
 * A seeded random MiniC program generator for property-based testing.
 *
 * Generated programs are deterministic by construction so results can
 * be compared across configurations:
 *  - loops are bounded counters, division/modulo operands are made
 *    non-zero, array indices stay in bounds;
 *  - all shared-global updates in worker threads are commutative
 *    (additions under one mutex), so the final state is independent of
 *    the interleaving;
 *  - main prints a digest of every global after joining the workers.
 */
#pragma once

#include <string>
#include <vector>

#include "support/rng.h"
#include "support/str.h"

namespace conair::proptest {

/** Shape knobs for generated programs. */
struct GenOptions
{
    unsigned maxFunctions = 3;  ///< helper functions besides main
    unsigned maxStmtsPerBlock = 6;
    unsigned maxDepth = 3;      ///< nesting depth of if/for
    unsigned numGlobals = 4;
    unsigned arraySize = 8;
    bool withThreads = true;    ///< spawn locked commutative workers
    bool withPointers = true;   ///< a malloc'd buffer + derefs
    bool withAsserts = true;    ///< always-true asserts (failure sites)
};

/** Generates one program from @p seed. */
std::string generateProgram(uint64_t seed, const GenOptions &opts = {});

} // namespace conair::proptest
