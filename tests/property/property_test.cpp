/**
 * @file
 * Property-based tests over randomly generated MiniC programs.
 *
 * Invariants checked per seed:
 *  1. the front-end output verifies (structurally and as SSA);
 *  2. the IR text round-trips through print -> parse -> print;
 *  3. SSA promotion does not change program behaviour;
 *  4. the ConAir transformation preserves semantics on clean runs
 *     under several schedules (the paper's correctness property);
 *  5. injected chaos rollbacks inside clean windows never change
 *     behaviour — §2.2's idempotency argument, tested mechanically;
 *  6. on *adversarial* programs whose shared-global updates genuinely
 *     race, the exploration campaign's oracles hold: engines agree on
 *     every schedule, and wherever the unhardened program fails the
 *     hardened one either recovers or fails the same way.
 */
#include <gtest/gtest.h>

#include "analysis/dominators.h"
#include "apps/harness.h"
#include "conair/driver.h"
#include "explore/campaign.h"
#include "frontend/compile.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "tests/property/program_gen.h"
#include "vm/interp.h"

namespace conair::proptest {
namespace {

class RandomProgram : public ::testing::TestWithParam<uint64_t>
{
  protected:
    std::string
    source() const
    {
        return generateProgram(GetParam());
    }

    static std::unique_ptr<ir::Module>
    compile(const std::string &src, bool promote = true)
    {
        DiagEngine d;
        fe::CompileOptions opts;
        opts.promoteToSSA = promote;
        auto m = fe::compileMiniC(src, d, opts);
        EXPECT_TRUE(m) << d.str() << "\n--- source ---\n" << src;
        return m;
    }
};

TEST_P(RandomProgram, CompilesAndVerifies)
{
    auto m = compile(source());
    ASSERT_TRUE(m);
    DiagEngine d;
    EXPECT_TRUE(ir::verifyModule(*m, d)) << d.str();
    for (const auto &f : m->functions()) {
        DiagEngine d2;
        EXPECT_TRUE(analysis::verifySSA(*f, d2)) << d2.str();
    }
}

TEST_P(RandomProgram, IrTextRoundTrips)
{
    auto m = compile(source());
    ASSERT_TRUE(m);
    std::string p1 = ir::printModule(*m);
    DiagEngine d;
    auto m2 = ir::parseModule(p1, d);
    ASSERT_TRUE(m2) << d.str() << p1;
    EXPECT_EQ(ir::printModule(*m2), p1);
}

TEST_P(RandomProgram, SsaPromotionPreservesBehaviour)
{
    std::string src = source();
    auto promoted = compile(src, true);
    auto memory = compile(src, false);
    ASSERT_TRUE(promoted && memory);
    vm::VmConfig cfg;
    cfg.seed = GetParam() * 31 + 1;
    vm::RunResult a = vm::runProgram(*promoted, cfg);
    vm::RunResult b = vm::runProgram(*memory, cfg);
    ASSERT_EQ(a.outcome, vm::Outcome::Success)
        << a.failureMsg << "\n" << src;
    ASSERT_EQ(b.outcome, vm::Outcome::Success) << b.failureMsg;
    // Step counts differ (loads/stores vs registers); results must not.
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.exitCode, b.exitCode);
}

TEST_P(RandomProgram, ConAirPreservesSemantics)
{
    std::string src = source();
    auto original = compile(src);
    auto hardened = compile(src);
    ASSERT_TRUE(original && hardened);
    ca::ConAirReport report = ca::applyConAir(*hardened);
    EXPECT_GT(report.identified.total(), 0u);
    for (uint64_t s = 1; s <= 3; ++s) {
        vm::VmConfig cfg;
        cfg.seed = GetParam() * 131 + s;
        cfg.quantum = 20 + s * 17;
        vm::RunResult a = vm::runProgram(*original, cfg);
        vm::RunResult b = vm::runProgram(*hardened, cfg);
        ASSERT_EQ(a.outcome, vm::Outcome::Success)
            << a.failureMsg << "\n" << src;
        ASSERT_EQ(b.outcome, vm::Outcome::Success)
            << b.failureMsg << "\n" << src;
        EXPECT_EQ(a.output, b.output) << "schedule seed " << cfg.seed;
        EXPECT_EQ(a.exitCode, b.exitCode);
    }
}

TEST_P(RandomProgram, ChaosRollbacksAreInvisible)
{
    std::string src = source();
    auto baseline = compile(src);
    auto chaotic = compile(src);
    ASSERT_TRUE(baseline && chaotic);
    ca::applyConAir(*baseline);
    ca::applyConAir(*chaotic);

    vm::VmConfig plain;
    plain.seed = GetParam() + 5;
    vm::RunResult a = vm::runProgram(*baseline, plain);

    vm::VmConfig chaos = plain;
    chaos.chaosRollbackEveryN = 40;
    vm::RunResult b = vm::runProgram(*chaotic, chaos);

    ASSERT_EQ(a.outcome, vm::Outcome::Success) << a.failureMsg;
    ASSERT_EQ(b.outcome, vm::Outcome::Success)
        << b.failureMsg << "\n" << src;
    EXPECT_EQ(a.output, b.output)
        << b.stats.chaosRollbacks << " chaos rollbacks\n" << src;
    EXPECT_EQ(a.exitCode, b.exitCode);
    // (Some seeds inject nothing — windows can be sparse; the
    // ChaosInjectionFires test below guarantees non-vacuity.)
}

TEST(ChaosMode, ChaosInjectionFires)
{
    // A hot idempotent window: the assert's region re-reads a global
    // inside a loop, so checkpoints and clean windows abound.
    DiagEngine d;
    auto m = fe::compileMiniC(R"(
int g = 1;
int main() {
    int acc = 0;
    for (int i = 0; i < 500; i++) {
        assert(g == 1);
        acc = acc + g;
    }
    print("acc=", acc, "\n");
    return 0;
}
)",
                              d);
    ASSERT_TRUE(m) << d.str();
    ca::applyConAir(*m);
    vm::VmConfig cfg;
    cfg.chaosRollbackEveryN = 16;
    vm::RunResult r = vm::runProgram(*m, cfg);
    ASSERT_EQ(r.outcome, vm::Outcome::Success) << r.failureMsg;
    EXPECT_EQ(r.output, "acc=500\n");
    EXPECT_GT(r.stats.chaosRollbacks, 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram,
                         ::testing::Range<uint64_t>(1, 21));

//
// Adversarial programs through the campaign engine.  Unlike the
// commutative generator above, these programs race by design, so
// correctness is judged by the campaign's differential oracles, not by
// output stability.
//

TEST(AdversarialCampaign, RecoveryPropertyHolds)
{
    GenOptions gopts;
    gopts.adversarial = true;

    uint64_t failing = 0;
    for (uint64_t genSeed = 1; genSeed <= 3; ++genSeed) {
        std::string src = generateProgram(genSeed, gopts);
        DiagEngine d;
        auto plain = fe::compileMiniC(src, d);
        ASSERT_TRUE(plain) << d.str() << "\n" << src;
        DiagEngine d2;
        auto hardened = fe::compileMiniC(src, d2);
        ASSERT_TRUE(hardened);
        ca::ConAirReport rep = ca::applyConAir(*hardened);
        EXPECT_GT(rep.identified.total(), 0u);

        explore::Target t;
        t.name = strfmt("adv%llu", (unsigned long long)genSeed);
        t.plain = plain.get();
        t.hardened = hardened.get();
        t.checkOutput = false; // outputs are schedule-dependent
        t.mustRecover = false; // lost updates are unrecoverable
        t.horizon = explore::calibrateHorizon(*plain, 4'000'000);
        t.quantum = 16;

        explore::CampaignOptions copts;
        copts.seedsPerPolicy = 10;
        copts.workers = 4;
        copts.maxSteps = 2'000'000;
        explore::CampaignReport report =
            explore::runCampaign({t}, copts);

        ASSERT_EQ(report.targets.size(), 1u);
        const explore::TargetReport &tr = report.targets[0];
        EXPECT_EQ(tr.divergences, 0u)
            << "engines disagree on " << tr.firstFailure.token() << "\n"
            << src;
        EXPECT_EQ(tr.hardenedDifferentFailure, 0u)
            << "hardened failure kind changed\n" << src;
        failing += tr.failingSchedules;
    }
    // Non-vacuity: the adversarial races must actually fire somewhere
    // in the matrix, else the property above holds trivially.
    EXPECT_GT(failing, 0u) << "no adversarial schedule failed";
}

//
// Chaos injection on the ten real bug kernels: clean and failing runs.
//

class AppChaos : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AppChaos, CleanRunsUnchangedUnderChaos)
{
    const apps::AppSpec *app = apps::findApp(GetParam());
    ASSERT_NE(app, nullptr);
    apps::PreparedApp p = apps::prepareApp(*app, apps::HardenOptions{});

    vm::VmConfig plain = app->cleanConfig;
    plain.seed = 2;
    vm::RunResult a = vm::runProgram(*p.module, plain);

    vm::VmConfig chaos = plain;
    chaos.chaosRollbackEveryN = 64;
    vm::RunResult b = vm::runProgram(*p.module, chaos);

    ASSERT_EQ(a.outcome, vm::Outcome::Success) << a.failureMsg;
    ASSERT_EQ(b.outcome, vm::Outcome::Success) << b.failureMsg;
    EXPECT_EQ(a.output, b.output)
        << b.stats.chaosRollbacks << " chaos rollbacks";
    EXPECT_EQ(a.exitCode, b.exitCode);
}

TEST_P(AppChaos, RecoveryStillWorksUnderChaos)
{
    const apps::AppSpec *app = apps::findApp(GetParam());
    apps::PreparedApp p = apps::prepareApp(*app, apps::HardenOptions{});
    vm::VmConfig cfg = app->buggyConfig;
    cfg.seed = 3;
    cfg.chaosRollbackEveryN = 128;
    vm::RunResult r = vm::runProgram(*p.module, cfg);
    EXPECT_EQ(r.outcome, vm::Outcome::Success) << r.failureMsg;
    EXPECT_TRUE(apps::runIsCorrect(*app, r)) << r.output;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppChaos,
    ::testing::Values("FFT", "HawkNL", "HTTrack", "MozillaXP",
                      "MozillaJS", "MySQL1", "MySQL2", "Transmission",
                      "SQLite", "ZSNES"),
    [](const auto &info) { return info.param; });

} // namespace
} // namespace conair::proptest
