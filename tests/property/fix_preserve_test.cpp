/**
 * @file
 * Property: the fix transform never changes failure-free behaviour.
 *
 * Adversarial generator programs carry a genuine lost update — racer
 * workers do an unlocked read-modify-write of `racy_total` that main
 * asserts at exit (see program_gen.h).  A synthetic lost-update
 * diagnosis for that counter drives synthesizeFix, and per seed we
 * check the patch is behaviour-preserving where it must be:
 *
 *  1. the patched module verifies and the lock-guard wraps only the
 *     racing updater (a fresh mutex — nothing else touches the
 *     counter under a lock);
 *  2. on every schedule where both builds run failure-free, output
 *     and exit code are identical — and the patched build never
 *     fails the lost-update oracle itself.  (Adversarial programs
 *     also carry an untouched closer/observer flag race; the
 *     inserted lock legitimately perturbs interleavings, so that
 *     *other* race may fire on different schedules than before, but
 *     any patched failure must be the observer's, never main's
 *     racy_total assert.)
 *  3. the patched build is engine-independent: Decoded, Reference,
 *     and Fused agree on output, exit code, and the full memory
 *     digest for every probed schedule.
 */
#include <gtest/gtest.h>

#include "fix/fix.h"
#include "frontend/compile.h"
#include "ir/verifier.h"
#include "obs/postmortem/diagnosis.h"
#include "support/str.h"
#include "tests/property/program_gen.h"
#include "vm/interp.h"

namespace conair::proptest {
namespace {

class FixPreserve : public ::testing::TestWithParam<uint64_t>
{
  protected:
    static std::unique_ptr<ir::Module>
    compileAdversarial(uint64_t seed, std::string &src)
    {
        GenOptions gopts;
        gopts.adversarial = true;
        src = generateProgram(seed, gopts);
        DiagEngine d;
        auto m = fe::compileMiniC(src, d);
        EXPECT_TRUE(m) << d.str() << "\n--- source ---\n" << src;
        return m;
    }

    /** The synthetic diagnosis every adversarial program admits: the
     *  racer workers lose updates to `racy_total`. */
    static obs::pm::RecoveryReport
    lostUpdateReport(uint64_t seed)
    {
        obs::pm::RecoveryReport rep;
        rep.program = strfmt("adv%llu", (unsigned long long)seed);
        obs::pm::EpisodeReport ep;
        ep.verdict = obs::pm::Verdict::LostUpdate;
        ep.variable = "racy_total";
        ep.siteTag = "assert.racer.1";
        rep.episodes.push_back(ep);
        return rep;
    }
};

TEST_P(FixPreserve, PatchNeverChangesFailureFreeBehaviour)
{
    const uint64_t seed = GetParam();
    std::string src;
    auto original = compileAdversarial(seed, src);
    ASSERT_TRUE(original);

    fix::FixPlan plan =
        fix::synthesizeFix(*original, lostUpdateReport(seed));
    ASSERT_TRUE(plan.ok) << plan.error << "\n" << src;
    ASSERT_NE(plan.patched, nullptr);
    EXPECT_EQ(plan.strategy, fix::Strategy::LockGuard);
    EXPECT_FALSE(plan.usedExistingMutex)
        << "nothing else locks racy_total; the guard must be fresh";
    DiagEngine d;
    ASSERT_TRUE(ir::verifyModule(*plan.patched, d)) << d.str();

    unsigned preserved = 0;
    for (uint64_t s = 1; s <= 12; ++s) {
        vm::VmConfig cfg;
        cfg.seed = seed * 977 + s;
        cfg.quantum = 10 + s * 7;
        vm::RunResult orig = vm::runProgram(*original, cfg);
        vm::RunResult pat = vm::runProgram(*plan.patched, cfg);

        // Property 2: mutually failure-free schedules keep their
        // behaviour, and a patched failure is only ever the untouched
        // observer race — the lost-update oracle (main's racy_total
        // assert) must be gone for good.
        if (orig.outcome == vm::Outcome::Success &&
            pat.outcome == vm::Outcome::Success) {
            EXPECT_EQ(pat.output, orig.output)
                << "schedule seed " << cfg.seed << "\n" << src;
            EXPECT_EQ(pat.exitCode, orig.exitCode);
            ++preserved;
        }
        if (pat.outcome != vm::Outcome::Success) {
            EXPECT_NE(pat.failureMsg.find("observer"),
                      std::string::npos)
                << "patched build failed outside the untouched flag "
                   "race, seed "
                << cfg.seed << ": " << pat.failureMsg << "\n" << src;
        }

        // Property 3: the patched build is engine-independent.
        vm::VmConfig rcfg = cfg;
        rcfg.engine = vm::ExecEngine::Reference;
        vm::RunResult ref = vm::runProgram(*plan.patched, rcfg);
        vm::VmConfig fcfg = cfg;
        fcfg.engine = vm::ExecEngine::Fused;
        vm::RunResult fus = vm::runProgram(*plan.patched, fcfg);
        EXPECT_EQ(ref.outcome, pat.outcome) << "seed " << cfg.seed;
        EXPECT_EQ(ref.output, pat.output) << "seed " << cfg.seed;
        EXPECT_EQ(ref.exitCode, pat.exitCode);
        EXPECT_EQ(ref.memDigest, pat.memDigest)
            << "reference engine digest diverged, seed " << cfg.seed;
        EXPECT_EQ(fus.outcome, pat.outcome) << "seed " << cfg.seed;
        EXPECT_EQ(fus.output, pat.output) << "seed " << cfg.seed;
        EXPECT_EQ(fus.exitCode, pat.exitCode);
        EXPECT_EQ(fus.memDigest, pat.memDigest)
            << "fused engine digest diverged, seed " << cfg.seed;
    }
    // Non-vacuity: property 2 must have been exercised.
    EXPECT_GT(preserved, 0u)
        << "no failure-free schedule found for seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixPreserve,
                         ::testing::Range<uint64_t>(1, 9));

} // namespace
} // namespace conair::proptest
