#include "tests/property/program_gen.h"

namespace conair::proptest {

namespace {

/** Emits statements/expressions with bounded, well-defined behavior. */
class Generator
{
  public:
    Generator(uint64_t seed, const GenOptions &opts)
        : rng_(seed), opts_(opts)
    {}

    std::string
    run()
    {
        emitGlobals();
        unsigned helpers = 1 + rng_.range(opts_.maxFunctions);
        for (unsigned i = 0; i < helpers; ++i)
            emitHelper(i);
        if (opts_.withThreads)
            emitWorker();
        if (opts_.sharedHeap && opts_.withThreads)
            emitHeapWorker();
        if (opts_.adversarial)
            emitAdversarialWorkers();
        emitMain(helpers);
        return out_;
    }

  private:
    //
    // Expressions.  All integer-typed; depth-bounded; `vars` holds the
    // names of in-scope int variables.
    //

    std::string
    expr(const std::vector<std::string> &vars, unsigned depth)
    {
        if (depth == 0 || rng_.chance(2, 5)) {
            // Leaf: variable or literal.
            if (!vars.empty() && rng_.chance(3, 5))
                return vars[rng_.range(vars.size())];
            return strfmt("%lld", (long long)rng_.rangeInclusive(-9, 99));
        }
        std::string lhs = expr(vars, depth - 1);
        std::string rhs = expr(vars, depth - 1);
        switch (rng_.range(8)) {
          case 0: return "(" + lhs + " + " + rhs + ")";
          case 1: return "(" + lhs + " - " + rhs + ")";
          case 2: return "(" + lhs + " * " + rhs + ")";
          case 3:
            // Non-zero divisor by construction.
            return "(" + lhs + " / ((" + rhs + ") % 7 + 8))";
          case 4:
            return "(" + lhs + " % ((" + rhs + ") % 5 + 6))";
          case 5: return "(" + lhs + " ^ " + rhs + ")";
          case 6:
            return "((" + lhs + " < " + rhs + ") + (" + lhs + " & 15))";
          default:
            return "(" + lhs + " + (" + rhs + " >> 3))";
        }
    }

    /** An in-bounds index expression for the fixed-size array. */
    std::string
    index(const std::vector<std::string> &vars, unsigned depth)
    {
        // ((e % N) + N) % N is always in [0, N).
        std::string e = expr(vars, depth);
        return strfmt("(((%s) %% %u + %u) %% %u)", e.c_str(),
                      opts_.arraySize, opts_.arraySize, opts_.arraySize);
    }

    //
    // Statements.
    //

    void
    block(std::vector<std::string> vars, unsigned depth,
          const std::string &ind)
    {
        unsigned stmts = 1 + rng_.range(opts_.maxStmtsPerBlock);
        for (unsigned s = 0; s < stmts; ++s)
            statement(vars, depth, ind);
    }

    void
    statement(std::vector<std::string> &vars, unsigned depth,
              const std::string &ind)
    {
        switch (rng_.range(depth > 0 ? 7 : 5)) {
          case 0: { // new local
            std::string name = strfmt("v%u", varCounter_++);
            line(ind + "int " + name + " = " + expr(vars, 2) + ";");
            vars.push_back(name);
            break;
          }
          case 1: { // assignment — never to a loop counter ("i..."),
                    // which would unbound the loop
            std::vector<std::string> targets;
            for (const std::string &v : vars)
                if (v[0] == 'v')
                    targets.push_back(v);
            if (targets.empty())
                break;
            const std::string &v = targets[rng_.range(targets.size())];
            line(ind + v + " = " + expr(vars, 2) + ";");
            break;
          }
          case 2: { // global array update
            line(ind +
                 strfmt("garr[%s] = garr[%s] + %s;",
                        index(vars, 1).c_str(), index(vars, 1).c_str(),
                        expr(vars, 1).c_str()));
            break;
          }
          case 3: { // scalar global update
            unsigned g = rng_.range(opts_.numGlobals);
            line(ind + strfmt("g%u = g%u + %s;", g, g,
                              expr(vars, 1).c_str()));
            break;
          }
          case 4: { // tautological assert: a failure site, never fires
            if (!opts_.withAsserts)
                break;
            std::string e = expr(vars, 1);
            line(ind + strfmt("assert((%s) - (%s) == 0);", e.c_str(),
                              e.c_str()));
            break;
          }
          case 5: { // if/else
            line(ind + "if (" + expr(vars, 2) + " > " + expr(vars, 1) +
                 ") {");
            block(vars, depth - 1, ind + "    ");
            if (rng_.chance(1, 2)) {
                line(ind + "} else {");
                block(vars, depth - 1, ind + "    ");
            }
            line(ind + "}");
            break;
          }
          default: { // bounded for loop
            std::string i = strfmt("i%u", varCounter_++);
            unsigned bound = 1 + rng_.range(6);
            line(ind + strfmt("for (int %s = 0; %s < %u; %s++) {",
                              i.c_str(), i.c_str(), bound, i.c_str()));
            auto inner = vars;
            inner.push_back(i);
            block(inner, depth - 1, ind + "    ");
            line(ind + "}");
            break;
          }
        }
    }

    //
    // Top-level pieces.
    //

    void
    emitGlobals()
    {
        for (unsigned g = 0; g < opts_.numGlobals; ++g)
            line(strfmt("int g%u = %lld;", g,
                        (long long)rng_.rangeInclusive(-5, 5)));
        line(strfmt("int garr[%u];", opts_.arraySize));
        line("int shared_total;");
        line("mutex mx;");
        if (opts_.withPointers)
            line("int* buf;");
        if (opts_.sharedHeap) {
            line("int* shbuf;");
            for (unsigned l = 0; l < heapLocks(); ++l)
                line(strfmt("mutex hlk%u;", l));
        }
        if (opts_.adversarial) {
            line("int state_flag = 1;");
            line("int racy_total;");
        }
        line("");
    }

    void
    emitHelper(unsigned id)
    {
        line(strfmt("int helper%u(int a, int b) {", id));
        std::vector<std::string> vars{"a", "b"};
        block(vars, opts_.maxDepth, "    ");
        line("    return " + expr(vars, 2) + ";");
        line("}");
        line("");
    }

    void
    emitWorker()
    {
        // Commutative locked updates: the final shared_total is the
        // same under every interleaving.
        line("int worker(int n) {");
        line("    for (int i = 0; i < n; i++) {");
        line("        lock(mx);");
        line(strfmt("        shared_total = shared_total + i %% %u + 1;",
                    3 + unsigned(rng_.range(5))));
        line("        unlock(mx);");
        line("    }");
        line("    return 0;");
        line("}");
        line("");
    }

    unsigned
    heapLocks() const
    {
        unsigned m = opts_.numMutexes;
        return m < 1 ? 1 : (m > 3 ? 3 : m);
    }

    /**
     * A worker over the malloc'd shared buffer.  Every slot maps to a
     * fixed mutex (slot % numMutexes), so concurrent workers never
     * update a cell under different locks; the updates are commutative
     * additions, keeping the final heap deterministic under every
     * interleaving while exercising heap loads/stores from multiple
     * threads and several distinct lock objects.
     */
    void
    emitHeapWorker()
    {
        unsigned locks = heapLocks();
        unsigned stride = 1 + unsigned(rng_.range(opts_.arraySize));
        unsigned delta = 1 + unsigned(rng_.range(4));
        line("int heapworker(int n) {");
        line("    for (int i = 0; i < n; i++) {");
        line(strfmt("        int s = (i * %u) %% %u;", stride,
                    opts_.arraySize));
        std::string ind = "        ";
        for (unsigned l = 0; l < locks; ++l) {
            bool last = l + 1 == locks;
            if (!last)
                line(ind + strfmt("if (s %% %u == %u) {", locks, l));
            std::string body = last ? ind : ind + "    ";
            line(body + strfmt("lock(hlk%u);", l));
            line(body + strfmt("shbuf[s] = shbuf[s] + i %% %u + 1;",
                               delta));
            line(body + strfmt("unlock(hlk%u);", l));
            if (!last) {
                line(ind + "} else {");
                ind += "    ";
            }
        }
        for (unsigned l = 1; l < locks; ++l) {
            ind.resize(ind.size() - 4);
            line(ind + "}");
        }
        line("    }");
        line("    return 0;");
        line("}");
        line("");
    }

    /**
     * Workers whose shared-global updates genuinely race.  The closer
     * transiently drops state_flag (MySQL1's rotator shape) while the
     * observer asserts it — the observer's idempotent region re-reads
     * the flag, so a hardened program recovers by retrying.  The racer
     * pair performs unlocked read-modify-writes; a lost update is
     * permanent, so the hardened program must surface main's final
     * assert exactly like the unhardened one does.
     */
    void
    emitAdversarialWorkers()
    {
        closerIters_ = 3 + unsigned(rng_.range(4));
        observerIters_ = 5 + unsigned(rng_.range(6));
        racerIters1_ = 3 + unsigned(rng_.range(5));
        racerIters2_ = 3 + unsigned(rng_.range(5));
        unsigned window = 1 + unsigned(rng_.range(4));

        line("int closer(int n) {");
        line("    for (int i = 0; i < n; i++) {");
        line("        state_flag = 0;");
        line("        int pad = 0;");
        line(strfmt("        for (int j = 0; j < %u; j++) "
                    "{ pad = pad + j; }",
                    window));
        line("        state_flag = 1 + pad * 0;");
        line("    }");
        line("    return 0;");
        line("}");
        line("");
        line("int observer(int n) {");
        line("    int seen = 0;");
        line("    for (int i = 0; i < n; i++) {");
        line("        int f = state_flag;");
        line("        assert(f == 1);");
        line("        seen = seen + f;");
        line("    }");
        line("    assert(seen == n);");
        line("    return 0;");
        line("}");
        line("");
        line("int racer(int n) {");
        line("    for (int i = 0; i < n; i++) {");
        line("        int r = racy_total;");
        line("        r = r + 1;");
        line("        racy_total = r;");
        line("    }");
        line("    return 0;");
        line("}");
        line("");
    }

    void
    emitMain(unsigned helpers)
    {
        line("int main() {");
        std::vector<std::string> vars;
        bool heapWorkers = opts_.sharedHeap && opts_.withThreads;
        if (opts_.sharedHeap) {
            // Initialise before any worker can observe the buffer.
            line(strfmt("    shbuf = malloc(%u);", opts_.arraySize));
            line(strfmt("    for (int i = 0; i < %u; i++) "
                        "{ shbuf[i] = i * 2; }",
                        opts_.arraySize));
        }
        if (opts_.withThreads) {
            line("    int t1 = spawn(worker, 7);");
            line("    int t2 = spawn(worker, 5);");
        }
        if (heapWorkers) {
            line(strfmt("    int h1 = spawn(heapworker, %u);",
                        4 + unsigned(rng_.range(6))));
            line(strfmt("    int h2 = spawn(heapworker, %u);",
                        4 + unsigned(rng_.range(6))));
        }
        if (opts_.adversarial) {
            line(strfmt("    int ta = spawn(closer, %u);", closerIters_));
            line(strfmt("    int tb = spawn(observer, %u);",
                        observerIters_));
            line(strfmt("    int tc = spawn(racer, %u);", racerIters1_));
            line(strfmt("    int td = spawn(racer, %u);", racerIters2_));
        }
        if (opts_.withPointers) {
            line(strfmt("    buf = malloc(%u);", opts_.arraySize));
            line(strfmt("    for (int i = 0; i < %u; i++) "
                        "{ buf[i] = i * 3; }",
                        opts_.arraySize));
        }
        block(vars, opts_.maxDepth, "    ");
        for (unsigned h = 0; h < helpers; ++h) {
            std::string name = strfmt("r%u", varCounter_++);
            line(strfmt("    int %s = helper%u(%s, %s);", name.c_str(),
                        h, expr(vars, 1).c_str(),
                        expr(vars, 1).c_str()));
            vars.push_back(name);
        }
        if (opts_.withPointers) {
            line(strfmt(
                "    int pdigest = buf[%s];",
                index(vars, 1).c_str()));
            vars.push_back("pdigest");
        }
        if (opts_.withThreads) {
            line("    join(t1);");
            line("    join(t2);");
        }
        if (heapWorkers) {
            line("    join(h1);");
            line("    join(h2);");
        }
        if (opts_.adversarial) {
            line("    join(ta);");
            line("    join(tb);");
            line("    join(tc);");
            line("    join(td);");
            // The lost-update oracle: under a clean interleaving this
            // holds; a racy one trips it in both program variants.
            line(strfmt("    assert(racy_total == %u);",
                        racerIters1_ + racerIters2_));
        }
        // Digest everything observable.
        std::string digest = "0";
        for (unsigned g = 0; g < opts_.numGlobals; ++g)
            digest += strfmt(" + g%u * %u", g, 3 + g);
        line("    int digest = " + digest + ";");
        line(strfmt("    for (int i = 0; i < %u; i++) "
                    "{ digest = digest * 31 + garr[i]; }",
                    opts_.arraySize));
        for (const std::string &v : vars)
            line("    digest = digest * 7 + " + v + ";");
        if (opts_.withThreads)
            line("    digest = digest * 13 + shared_total;");
        if (opts_.sharedHeap)
            line(strfmt("    for (int i = 0; i < %u; i++) "
                        "{ digest = digest * 37 + shbuf[i]; }",
                        opts_.arraySize));
        if (opts_.adversarial)
            line("    digest = digest * 17 + racy_total"
                 " + state_flag;");
        line("    print(\"digest=\", digest % 1000003, \"\\n\");");
        line("    return 0;");
        line("}");
    }

    void
    line(const std::string &s)
    {
        out_ += s;
        out_ += '\n';
    }

    Rng rng_;
    GenOptions opts_;
    std::string out_;
    unsigned varCounter_ = 0;
    unsigned closerIters_ = 0;
    unsigned observerIters_ = 0;
    unsigned racerIters1_ = 0;
    unsigned racerIters2_ = 0;
};

} // namespace

std::string
generateProgram(uint64_t seed, const GenOptions &opts)
{
    return Generator(seed, opts).run();
}

} // namespace conair::proptest
