/**
 * @file
 * Cross-engine differential fuzzer.
 *
 * Every seed generates a MiniC program (multi-threaded, shared
 * globals/heap, a variety of locks; some seeds adversarial so failure
 * paths get fuzzed too), compiles it plain and ConAir-hardened, and
 * runs both builds under a seed-derived schedule on all three
 * execution engines.  Reference, Decoded, and Fused must agree on the
 * complete observable run: outcome, output, exit code, failure
 * diagnostics, virtual clock, step and scheduling-tick counts, and
 * the final-memory digest.  Any divergence prints the generator seed
 * and the source so the case can be replayed directly.
 *
 * Seed count defaults to a quick-ctest batch; CI sets
 * CONAIR_FUZZ_SEEDS=500 for the sanitizer smoke sweep (see
 * .github/workflows/ci.yml and docs/TESTING.md).
 */
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "conair/driver.h"
#include "frontend/compile.h"
#include "tests/property/program_gen.h"
#include "vm/interp.h"

namespace conair::proptest {
namespace {

uint64_t
seedCount()
{
    if (const char *env = std::getenv("CONAIR_FUZZ_SEEDS")) {
        long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return uint64_t(n);
    }
    return 40; // quick default; CI smoke raises this to >= 500
}

/** Per-seed program shape: sweep the generator knobs so the corpus
 *  covers threads on/off, shared heap, lock variety, pointers, and
 *  (every fifth seed) genuinely racing adversarial programs. */
GenOptions
optionsFor(uint64_t seed)
{
    GenOptions o;
    o.maxFunctions = 1 + unsigned(seed % 3);
    o.maxStmtsPerBlock = 3 + unsigned(seed % 5);
    o.maxDepth = 2 + unsigned(seed % 2);
    o.numGlobals = 2 + unsigned(seed % 4);
    o.arraySize = 4 + unsigned(seed % 8);
    o.withThreads = seed % 4 != 1;
    o.withPointers = seed % 3 != 2;
    o.sharedHeap = o.withThreads && seed % 2 == 0;
    o.numMutexes = 1 + unsigned(seed % 3);
    o.adversarial = seed % 5 == 0;
    return o;
}

/** Per-seed schedule: cycle the policy axis and vary quantum/seed so
 *  the same program body is explored under different interleavings. */
vm::VmConfig
configFor(uint64_t seed)
{
    vm::VmConfig cfg;
    cfg.seed = seed * 977 + 11;
    cfg.quantum = 8 + seed % 57;
    cfg.maxSteps = 2'000'000;
    switch (seed % 4) {
      case 0: cfg.policy = vm::SchedPolicy::Random; break;
      case 1: cfg.policy = vm::SchedPolicy::RoundRobin; break;
      case 2:
        cfg.policy = vm::SchedPolicy::Pct;
        cfg.pctDepth = 2 + seed % 3;
        cfg.pctHorizon = 500 + seed % 1500;
        break;
      default:
        cfg.policy = vm::SchedPolicy::PreemptBound;
        cfg.preemptBound = 1 + seed % 3;
        break;
    }
    return cfg;
}

/** Everything semantic a run reports, including the scheduling-tick
 *  count (engine-internal counters like decodedInsts/fusedSteps/
 *  memCache* are excluded — they describe how the engine ran). */
void
expectIdenticalRun(const vm::RunResult &a, const vm::RunResult &b,
                   const std::string &ctx)
{
    EXPECT_EQ(a.outcome, b.outcome) << ctx;
    EXPECT_EQ(a.exitCode, b.exitCode) << ctx;
    EXPECT_EQ(a.output, b.output) << ctx;
    EXPECT_EQ(a.failureMsg, b.failureMsg) << ctx;
    EXPECT_EQ(a.failureTag, b.failureTag) << ctx;
    EXPECT_EQ(a.clock, b.clock) << ctx;
    EXPECT_EQ(a.memDigest, b.memDigest) << ctx;
    EXPECT_EQ(a.stats.steps, b.stats.steps) << ctx;
    EXPECT_EQ(a.stats.schedTicks, b.stats.schedTicks) << ctx;
    EXPECT_EQ(a.stats.threadsSpawned, b.stats.threadsSpawned) << ctx;
    EXPECT_EQ(a.stats.checkpointsExecuted, b.stats.checkpointsExecuted)
        << ctx;
    EXPECT_EQ(a.stats.rollbacks, b.stats.rollbacks) << ctx;
    EXPECT_EQ(a.stats.backoffs, b.stats.backoffs) << ctx;
    EXPECT_EQ(a.stats.chaosRollbacks, b.stats.chaosRollbacks) << ctx;
    ASSERT_EQ(a.stats.recoveries.size(), b.stats.recoveries.size())
        << ctx;
    for (size_t i = 0; i < a.stats.recoveries.size(); ++i) {
        EXPECT_EQ(a.stats.recoveries[i].siteTag,
                  b.stats.recoveries[i].siteTag)
            << ctx << " recovery " << i;
        EXPECT_EQ(a.stats.recoveries[i].retries,
                  b.stats.recoveries[i].retries)
            << ctx << " recovery " << i;
    }
}

/** Runs @p m on all three engines and requires identical runs. */
void
diffEngines(const ir::Module &m, vm::VmConfig cfg,
            const std::string &ctx)
{
    cfg.engine = vm::ExecEngine::Decoded;
    vm::RunResult dec = vm::runProgram(m, cfg);
    cfg.engine = vm::ExecEngine::Reference;
    vm::RunResult ref = vm::runProgram(m, cfg);
    cfg.engine = vm::ExecEngine::Fused;
    vm::RunResult fus = vm::runProgram(m, cfg);
    expectIdenticalRun(dec, ref, ctx + " [reference vs decoded]");
    expectIdenticalRun(dec, fus, ctx + " [fused vs decoded]");
}

TEST(EngineFuzz, AllEnginesAgreeOnRandomPrograms)
{
    uint64_t seeds = seedCount();
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
        GenOptions gopts = optionsFor(seed);
        std::string src = generateProgram(seed, gopts);
        std::string ctx = strfmt("fuzz seed %llu\n--- source ---\n%s",
                                 (unsigned long long)seed, src.c_str());

        DiagEngine d;
        auto plain = fe::compileMiniC(src, d);
        ASSERT_TRUE(plain) << d.str() << "\n" << ctx;
        DiagEngine d2;
        auto hardened = fe::compileMiniC(src, d2);
        ASSERT_TRUE(hardened) << d2.str();
        ca::ConAirReport rep = ca::applyConAir(*hardened);
        EXPECT_GT(rep.identified.total(), 0u) << ctx;

        vm::VmConfig cfg = configFor(seed);
        diffEngines(*plain, cfg, "plain " + ctx);
        diffEngines(*hardened, cfg, "hardened " + ctx);

        // Every third seed also fuzzes the rollback machinery: chaos
        // injection forces checkpoint/restore traffic through all
        // three engines on the hardened build.
        if (seed % 3 == 0) {
            vm::VmConfig chaos = cfg;
            chaos.chaosRollbackEveryN = 64;
            diffEngines(*hardened, chaos, "chaos " + ctx);
        }
    }
}

} // namespace
} // namespace conair::proptest
