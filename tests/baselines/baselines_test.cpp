#include <gtest/gtest.h>

#include "baselines/baselines.h"

namespace conair::bl {
namespace {

using apps::AppSpec;
using apps::HardenOptions;
using apps::PreparedApp;

PreparedApp
original(const std::string &name)
{
    const AppSpec *app = apps::findApp(name);
    EXPECT_NE(app, nullptr);
    HardenOptions opts;
    opts.applyConAir = false;
    return apps::prepareApp(*app, opts);
}

TEST(WpCheckpoint, SurvivesTransientOrderViolation)
{
    PreparedApp p = original("HTTrack");
    WpRunResult r = runWithWpCheckpoint(p, 1, WpOptions{});
    EXPECT_TRUE(r.recovered)
        << vm::outcomeName(r.run.outcome) << " " << r.run.failureMsg;
    EXPECT_GE(r.run.stats.wpRecoveries, 1u);
    EXPECT_GE(r.run.stats.wpSnapshots, 1u);
}

TEST(WpCheckpoint, SurvivesTransientAssertFailure)
{
    PreparedApp p = original("ZSNES");
    WpRunResult r = runWithWpCheckpoint(p, 2, WpOptions{});
    EXPECT_TRUE(r.recovered)
        << vm::outcomeName(r.run.outcome) << " " << r.run.failureMsg;
}

TEST(WpCheckpoint, SurvivesTransientDeadlock)
{
    PreparedApp p = original("SQLite");
    WpRunResult r = runWithWpCheckpoint(p, 1, WpOptions{});
    EXPECT_TRUE(r.recovered)
        << vm::outcomeName(r.run.outcome) << " " << r.run.failureMsg;
}

TEST(WpCheckpoint, OverheadIsFarAboveConAir)
{
    const AppSpec *app = apps::findApp("HTTrack");
    double wp = measureWpOverhead(*app, WpOptions{}, 3);
    double conair = apps::measureOverhead(*app, HardenOptions{}, 3);
    // The whole point of Fig 4's left end: no memory-state checkpoint.
    EXPECT_GT(wp, 10 * conair);
    EXPECT_GT(wp, 0.02); // snapshots are macroscopically expensive
}

TEST(WpCheckpoint, RecoveryBudgetBoundsRetries)
{
    PreparedApp p = original("ZSNES");
    WpOptions opts;
    opts.maxRecoveries = 0; // no rollback allowed
    WpRunResult r = runWithWpCheckpoint(p, 1, opts);
    EXPECT_FALSE(r.recovered);
    EXPECT_EQ(r.run.outcome, p.spec->expectedFailure);
}

TEST(Restart, RecoversButPaysFullRerun)
{
    // MySQL2's RAR violation is the paper's fastest recovery (8 µs,
    // one retry); restarting the server costs orders of magnitude more
    // (Table 7's 8 µs vs 836,177 µs row).
    PreparedApp p = original("MySQL2");
    RestartResult r = measureRestart(p, 1);
    EXPECT_TRUE(r.recovered);
    EXPECT_GT(r.restartMicros, 0.0);
    PreparedApp hardened =
        apps::prepareApp(*apps::findApp("MySQL2"), HardenOptions{});
    vm::RunResult cr = apps::runBuggy(hardened, 1);
    ASSERT_EQ(cr.outcome, vm::Outcome::Success);
    ASSERT_FALSE(cr.stats.recoveries.empty());
    // (virtual-time µs; both measured on the same VM substrate)
    EXPECT_GT(r.restartMicros, 20 * cr.stats.recoveries[0].micros());
}

TEST(Restart, AllAppsRecoverByRestart)
{
    for (const AppSpec &app : apps::allApps()) {
        HardenOptions opts;
        opts.applyConAir = false;
        PreparedApp p = apps::prepareApp(app, opts);
        RestartResult r = measureRestart(p, 3);
        EXPECT_TRUE(r.recovered) << app.name;
    }
}

} // namespace
} // namespace conair::bl
