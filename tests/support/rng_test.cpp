#include "support/rng.h"

#include <gtest/gtest.h>

namespace conair {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.range(17), 17u);
}

TEST(Rng, RangeInclusiveCoversEndpoints)
{
    Rng r(9);
    bool lo = false, hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = r.rangeInclusive(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        lo |= v == -2;
        hi |= v == 2;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(Rng, RangeIsUnbiasedForHugeBounds)
{
    // Regression: `next() % bound` over-represents low residues.  For
    // bound = 3 * 2^62, the low quarter of the range used to come up
    // with probability 1/2 instead of 1/3 — a 50 % skew, not a
    // rounding error.  Lemire rejection sampling must put the
    // empirical rate back at 1/3.
    const uint64_t bound = 3ull << 62;
    const uint64_t quarter = 1ull << 62;
    Rng r(1234);
    int low = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        low += r.range(bound) < quarter;
    double frac = double(low) / n;
    EXPECT_NEAR(frac, 1.0 / 3.0, 0.02)
        << "modulo bias: low residues over-represented";
}

TEST(Rng, RangeNearMaxBoundStaysUniform)
{
    // bound = 2^63 + 1 is the worst case for modulo reduction (almost
    // half the raw draws used to land on doubled residues).  Check the
    // top/bottom halves balance.
    const uint64_t bound = (1ull << 63) + 1;
    Rng r(77);
    int high = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        high += r.range(bound) >= (1ull << 62);
    double frac = double(high) / n;
    EXPECT_NEAR(frac, 0.5, 0.02);
}

TEST(Rng, RangeInclusiveFullSpanDoesNotDivideByZero)
{
    // Regression: rangeInclusive(INT64_MIN, INT64_MAX) computed
    // hi - lo + 1 == 0 and handed range() a zero bound (modulo by
    // zero).  The full span must instead return the raw draw.
    Rng r(5);
    bool neg = false, pos = false;
    for (int i = 0; i < 256; ++i) {
        int64_t v = r.rangeInclusive(INT64_MIN, INT64_MAX);
        neg |= v < 0;
        pos |= v >= 0;
    }
    EXPECT_TRUE(neg);
    EXPECT_TRUE(pos);
}

TEST(Rng, RangeInclusiveWideSpansStayInBounds)
{
    Rng r(6);
    for (int i = 0; i < 512; ++i) {
        int64_t v = r.rangeInclusive(INT64_MIN + 1, INT64_MAX - 1);
        EXPECT_GT(v, INT64_MIN);
        EXPECT_LT(v, INT64_MAX);
    }
    for (int i = 0; i < 512; ++i) {
        int64_t v = r.rangeInclusive(0, INT64_MAX);
        EXPECT_GE(v, 0);
    }
}

TEST(Rng, RangeBoundOneIsAlwaysZero)
{
    Rng r(8);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(r.range(1), 0u);
}

} // namespace
} // namespace conair
