#include "support/rng.h"

#include <gtest/gtest.h>

namespace conair {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.range(17), 17u);
}

TEST(Rng, RangeInclusiveCoversEndpoints)
{
    Rng r(9);
    bool lo = false, hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = r.rangeInclusive(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        lo |= v == -2;
        hi |= v == 2;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

} // namespace
} // namespace conair
