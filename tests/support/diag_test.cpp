#include "support/diag.h"

#include <gtest/gtest.h>

namespace conair {
namespace {

TEST(DiagEngine, CountsErrorsOnly)
{
    DiagEngine d;
    EXPECT_FALSE(d.hasErrors());
    d.warning({1, 1}, "w");
    d.note({1, 2}, "n");
    EXPECT_FALSE(d.hasErrors());
    d.error({2, 3}, "e");
    EXPECT_TRUE(d.hasErrors());
    EXPECT_EQ(d.numErrors(), 1u);
    EXPECT_EQ(d.diags().size(), 3u);
}

TEST(DiagEngine, RendersLocations)
{
    DiagEngine d;
    d.error({10, 4}, "boom");
    EXPECT_EQ(d.str(), "10:4: error: boom\n");
}

TEST(DiagEngine, RendersUnknownLocation)
{
    DiagEngine d;
    d.error({}, "no loc");
    EXPECT_EQ(d.str(), "error: no loc\n");
}

TEST(SrcLoc, Validity)
{
    EXPECT_FALSE(SrcLoc{}.valid());
    EXPECT_TRUE((SrcLoc{1, 1}).valid());
}

} // namespace
} // namespace conair
