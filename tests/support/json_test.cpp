/**
 * @file
 * JsonWriter / jsonEscape unit tests: escaping, nesting, indentation,
 * and the numeric formatting the bench artifacts rely on.
 */
#include <gtest/gtest.h>

#include "support/json.h"

namespace conair {
namespace {

TEST(JsonEscape, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonWriter, CompactObject)
{
    JsonWriter w;
    w.beginObject();
    w.key("a").value(1);
    w.key("b").value("x");
    w.key("c").value(true);
    w.endObject();
    EXPECT_EQ(w.str(), "{\"a\":1,\"b\":\"x\",\"c\":true}");
}

TEST(JsonWriter, IndentedNesting)
{
    JsonWriter w(2);
    w.beginObject();
    w.key("xs").beginArray();
    w.value(1);
    w.value(2);
    w.endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
}

TEST(JsonWriter, EmptyContainers)
{
    JsonWriter w(2);
    w.beginObject();
    w.key("o").beginObject().endObject();
    w.key("a").beginArray().endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\n  \"o\": {},\n  \"a\": []\n}");
}

TEST(JsonWriter, NumericFormats)
{
    JsonWriter w;
    w.beginArray();
    w.value(uint64_t(18446744073709551615ull));
    w.value(int64_t(-5));
    w.value(1.5, "%.1f");
    w.value(0.123456789); // default %.6g
    w.endArray();
    EXPECT_EQ(w.str(), "[18446744073709551615,-5,1.5,0.123457]");
}

TEST(JsonWriter, RawValuePassesThrough)
{
    JsonWriter w;
    w.beginObject();
    w.key("r").rawValue("[1,2]");
    w.endObject();
    EXPECT_EQ(w.str(), "{\"r\":[1,2]}");
}

TEST(JsonWriter, StringsAreEscaped)
{
    JsonWriter w;
    w.beginObject();
    w.key("path\"x").value("a\nb");
    w.endObject();
    EXPECT_EQ(w.str(), "{\"path\\\"x\":\"a\\nb\"}");
}

} // namespace
} // namespace conair
