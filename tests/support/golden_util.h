/**
 * @file
 * Shared machinery for golden-file regression tests.
 *
 * Every golden test follows the same protocol: render the artifact,
 * compare it byte-for-byte against a checked-in file, and offer a
 * `--update` flag that re-blesses the file instead.  This header
 * centralises the protocol so a mismatch always reports the same two
 * things, whichever golden drifted:
 *
 *  1. a unified diff (golden -> current) of the drift, hunked with
 *     context like `diff -u`, so the reviewer sees *what* changed
 *     without re-running anything;
 *  2. the exact re-bless command — the test binary's own invocation
 *     path plus `--update` — ready to copy-paste if the change is
 *     intentional.
 *
 * Usage: call goldenMain() from the test binary's main() (it strips
 * `--update` before gtest parses the argument list), and checkGolden()
 * from the test body.
 */
#pragma once

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace conair::testutil {

/** Re-bless state shared between goldenMain() and checkGolden(). */
inline bool &
goldenUpdateFlag()
{
    static bool update = false;
    return update;
}

/** The test binary's invocation path (argv[0]), for the re-bless
 *  command printed on mismatch. */
inline std::string &
goldenBinaryPath()
{
    static std::string path = "<golden test binary>";
    return path;
}

/** The copy-pasteable command that re-blesses this binary's goldens. */
inline std::string
reblessCommand()
{
    return goldenBinaryPath() + " --update";
}

inline std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur + "\n\\ No newline at end of file");
    return lines;
}

/**
 * A unified diff (expected -> current), hunked with @p context lines
 * like `diff -u`.  Matching prefix/suffix lines are trimmed first;
 * the middle region gets a minimal line diff (LCS) when it is small
 * enough, and degrades to one whole-region hunk for huge drifts.
 * Output is capped at @p maxLines diff lines so a wholesale format
 * change does not flood the test log.
 */
inline std::string
unifiedDiff(const std::string &expected, const std::string &current,
            unsigned context = 3, size_t maxLines = 160)
{
    std::vector<std::string> e = splitLines(expected);
    std::vector<std::string> c = splitLines(current);

    // Trim the common prefix and suffix: golden drifts are almost
    // always local, and this keeps the LCS below cheap.
    size_t pre = 0;
    while (pre < e.size() && pre < c.size() && e[pre] == c[pre])
        ++pre;
    size_t suf = 0;
    while (suf < e.size() - pre && suf < c.size() - pre &&
           e[e.size() - 1 - suf] == c[c.size() - 1 - suf])
        ++suf;
    if (e.size() == pre + suf && c.size() == pre + suf)
        return "";

    // Back off so the hunk builder still has context lines to show.
    pre -= std::min(pre, size_t(context));
    suf -= std::min(suf, size_t(context));

    size_t ne = e.size() - pre - suf;
    size_t nc = c.size() - pre - suf;

    // Edit script over the middle: Keep / Del (expected) / Ins
    // (current).  Minimal when the DP table is affordable.
    enum class Op : char { Keep, Del, Ins };
    std::vector<Op> ops;
    if (ne * nc <= 1'000'000) {
        std::vector<std::vector<uint32_t>> lcs(
            ne + 1, std::vector<uint32_t>(nc + 1, 0));
        for (size_t i = ne; i-- > 0;)
            for (size_t j = nc; j-- > 0;)
                lcs[i][j] = e[pre + i] == c[pre + j]
                                ? lcs[i + 1][j + 1] + 1
                                : std::max(lcs[i + 1][j], lcs[i][j + 1]);
        size_t i = 0, j = 0;
        while (i < ne || j < nc) {
            if (i < ne && j < nc && e[pre + i] == c[pre + j]) {
                ops.push_back(Op::Keep), ++i, ++j;
            } else if (i < ne &&
                       (j == nc || lcs[i + 1][j] >= lcs[i][j + 1])) {
                ops.push_back(Op::Del), ++i;
            } else {
                ops.push_back(Op::Ins), ++j;
            }
        }
    } else {
        ops.assign(ne, Op::Del);
        ops.insert(ops.end(), nc, Op::Ins);
    }

    // Group into hunks: a run of more than 2*context Keeps splits.
    struct Hunk
    {
        size_t opBegin, opEnd; ///< range into ops
        size_t eBegin, cBegin; ///< line offsets into the middle
    };
    std::vector<Hunk> hunks;
    size_t ei = 0, ci = 0, keepRun = 0, opBegin = 0;
    size_t hunkE = 0, hunkC = 0;
    bool open = false;
    for (size_t k = 0; k <= ops.size(); ++k) {
        bool keep = k < ops.size() && ops[k] == Op::Keep;
        if (k < ops.size() && !keep) {
            if (!open) {
                size_t back = std::min(keepRun, size_t(context));
                opBegin = k - back;
                hunkE = ei - back;
                hunkC = ci - back;
                open = true;
            }
            keepRun = 0;
        }
        if (open && (k == ops.size() ||
                     (keep && keepRun >= 2 * size_t(context)))) {
            size_t opEnd = k - (keep ? keepRun : 0);
            opEnd = std::min(opEnd + context, k);
            hunks.push_back({opBegin, opEnd, hunkE, hunkC});
            open = false;
        }
        if (keep)
            ++keepRun;
        if (k < ops.size()) {
            if (ops[k] != Op::Ins)
                ++ei;
            if (ops[k] != Op::Del)
                ++ci;
        }
    }

    std::ostringstream out;
    out << "--- golden\n+++ current\n";
    size_t emitted = 0;
    for (const Hunk &h : hunks) {
        size_t eCount = 0, cCount = 0;
        for (size_t k = h.opBegin; k < h.opEnd; ++k) {
            eCount += ops[k] != Op::Ins;
            cCount += ops[k] != Op::Del;
        }
        out << "@@ -" << pre + h.eBegin + 1 << "," << eCount << " +"
            << pre + h.cBegin + 1 << "," << cCount << " @@\n";
        size_t ie = h.eBegin, ic = h.cBegin;
        for (size_t k = h.opBegin; k < h.opEnd; ++k) {
            if (emitted++ >= maxLines) {
                out << "... (diff truncated)\n";
                return out.str();
            }
            switch (ops[k]) {
              case Op::Keep:
                out << " " << e[pre + ie] << "\n";
                ++ie, ++ic;
                break;
              case Op::Del:
                out << "-" << e[pre + ie] << "\n";
                ++ie;
                break;
              case Op::Ins:
                out << "+" << c[pre + ic] << "\n";
                ++ic;
                break;
            }
        }
    }
    return out.str();
}

/**
 * The golden protocol: with `--update` rewrite @p path from
 * @p current; otherwise compare byte-for-byte and, on mismatch, fail
 * with the unified diff and the exact re-bless command.
 */
inline void
checkGolden(const std::string &current, const std::string &path)
{
    if (goldenUpdateFlag()) {
        std::ofstream out(path);
        ASSERT_TRUE(out.is_open()) << "cannot write " << path;
        out << current;
        SUCCEED() << "updated " << path;
        return;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open())
        << "missing golden file " << path << "\ncreate it with:\n  "
        << reblessCommand();
    std::stringstream buf;
    buf << in.rdbuf();
    std::string expected = buf.str();

    if (current == expected)
        return;
    ADD_FAILURE() << path << " drifted from the rendered artifact.\n"
                  << unifiedDiff(expected, current)
                  << "If the change is intentional, re-bless with:\n  "
                  << reblessCommand();
}

/** Drop-in main() for golden test binaries: records argv[0] for the
 *  re-bless command and strips `--update` before gtest parses args. */
inline int
goldenMain(int argc, char **argv)
{
    goldenBinaryPath() = argv[0];
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update") {
            goldenUpdateFlag() = true;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}

} // namespace conair::testutil
