/**
 * @file
 * The golden-test diff renderer (tests/support/golden_util.h) is test
 * infrastructure every golden failure message depends on, so its
 * hunking behaviour is pinned here: localized drifts become one
 * context hunk, far-apart drifts become separate hunks, and huge
 * drifts are truncated instead of flooding the log.
 */
#include <string>

#include <gtest/gtest.h>

#include "support/str.h"
#include "tests/support/golden_util.h"

namespace conair::testutil {
namespace {

std::string
lines(std::initializer_list<const char *> ls)
{
    std::string out;
    for (const char *l : ls) {
        out += l;
        out += '\n';
    }
    return out;
}

TEST(GoldenDiff, IdenticalTextsDiffEmpty)
{
    std::string t = lines({"a", "b", "c"});
    EXPECT_EQ(unifiedDiff(t, t), "");
}

TEST(GoldenDiff, SingleChangeGetsOneContextHunk)
{
    std::string e = lines({"l1", "l2", "l3", "l4", "l5", "l6", "l7",
                           "l8", "l9"});
    std::string c = lines({"l1", "l2", "l3", "l4", "CHANGED", "l6",
                           "l7", "l8", "l9"});
    std::string d = unifiedDiff(e, c);
    EXPECT_NE(d.find("--- golden\n+++ current\n"), std::string::npos)
        << d;
    EXPECT_NE(d.find("@@ -2,7 +2,7 @@\n"), std::string::npos) << d;
    EXPECT_NE(d.find("-l5\n"), std::string::npos) << d;
    EXPECT_NE(d.find("+CHANGED\n"), std::string::npos) << d;
    // Context, not noise: untouched far lines stay out of the hunk.
    EXPECT_EQ(d.find(" l1\n"), std::string::npos) << d;
    EXPECT_NE(d.find(" l4\n"), std::string::npos) << d;
}

TEST(GoldenDiff, InsertionAndDeletionRender)
{
    std::string e = lines({"a", "b", "c"});
    std::string ins = lines({"a", "b", "new", "c"});
    std::string d1 = unifiedDiff(e, ins);
    EXPECT_NE(d1.find("+new\n"), std::string::npos) << d1;
    EXPECT_EQ(d1.find("-"), d1.find("--- golden")) << d1; // no del line

    std::string d2 = unifiedDiff(ins, e);
    EXPECT_NE(d2.find("-new\n"), std::string::npos) << d2;
}

TEST(GoldenDiff, FarApartChangesSplitIntoTwoHunks)
{
    std::string e, c;
    for (int i = 0; i < 30; ++i) {
        e += strfmt("line%d\n", i).c_str();
        c += strfmt("line%d\n", i).c_str();
    }
    // Drift line 2 and line 27 — far beyond 2*context apart.
    std::string e2 = e, c2 = c;
    c2.replace(c2.find("line2\n"), 6, "DRIFT\n");
    c2.replace(c2.find("line27\n"), 7, "DRIFT2\n");
    std::string d = unifiedDiff(e2, c2);
    size_t first = d.find("@@ -");
    ASSERT_NE(first, std::string::npos) << d;
    size_t second = d.find("@@ -", first + 1);
    EXPECT_NE(second, std::string::npos)
        << "expected two hunks, got:\n" << d;
    EXPECT_NE(d.find("+DRIFT\n"), std::string::npos) << d;
    EXPECT_NE(d.find("+DRIFT2\n"), std::string::npos) << d;
}

TEST(GoldenDiff, HugeDriftIsTruncated)
{
    std::string e, c;
    for (int i = 0; i < 2000; ++i) {
        e += strfmt("old%d\n", i).c_str();
        c += strfmt("new%d\n", i).c_str();
    }
    std::string d = unifiedDiff(e, c);
    EXPECT_NE(d.find("(diff truncated)"), std::string::npos);
    EXPECT_LT(d.size(), 40'000u);
}

TEST(GoldenDiff, MissingFinalNewlineIsVisible)
{
    std::string e = "a\nb\n";
    std::string c = "a\nb";
    std::string d = unifiedDiff(e, c);
    EXPECT_NE(d.find("No newline at end of file"), std::string::npos)
        << d;
}

} // namespace
} // namespace conair::testutil
