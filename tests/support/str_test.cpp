#include "support/str.h"

#include <gtest/gtest.h>

namespace conair {
namespace {

TEST(StrFmt, FormatsBasicTypes)
{
    EXPECT_EQ(strfmt("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(strfmt("%s", "hello"), "hello");
    EXPECT_EQ(strfmt("%lld", (long long)-9007199254740993ll),
              "-9007199254740993");
}

TEST(StrFmt, EmptyFormat)
{
    EXPECT_EQ(strfmt("%s", ""), "");
}

TEST(Join, JoinsWithSeparator)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({"solo"}, ", "), "solo");
    EXPECT_EQ(join({}, ", "), "");
}

TEST(FpToStr, RoundTripsExactly)
{
    for (double v : {0.0, 1.0, -1.5, 3.141592653589793, 1e-300, 1e300,
                     0.1, 2.2250738585072014e-308}) {
        std::string s = fpToStr(v);
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
}

TEST(FpToStr, IntegralValuesKeepFloatMarker)
{
    // Must parse back as a float token, not an integer.
    EXPECT_NE(fpToStr(4.0).find_first_of(".e"), std::string::npos);
}

TEST(Escape, RoundTrips)
{
    for (std::string s : {"plain", "with\nnewline", "tab\there",
                          "quote\"inside", "back\\slash", ""}) {
        EXPECT_EQ(unescape(escape(s)), s);
    }
}

TEST(StartsWith, Basics)
{
    EXPECT_TRUE(startsWith("conair", "con"));
    EXPECT_TRUE(startsWith("x", ""));
    EXPECT_FALSE(startsWith("con", "conair"));
}

} // namespace
} // namespace conair
