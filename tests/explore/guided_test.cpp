/**
 * @file
 * Coverage-guided exploration (src/explore/guided.h): mutation
 * determinism, the point-materialisation mirror, corpus round-trips
 * with the strict parser, worker-count independence of the whole
 * search (corpus digest, guided summary, seeds-to-first-failure), and
 * the replay obligation — every persisted corpus entry replays
 * strictly on all three engines.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "apps/harness.h"
#include "explore/guided.h"
#include "obs/replay/replay_log.h"
#include "obs/replay/replay_run.h"
#include "obs/trace.h"
#include "vm/interp.h"

namespace conair::explore {
namespace {

CorpusEntry
sampleEntry()
{
    CorpusEntry e;
    e.spec = {vm::SchedPolicy::Pct, 17, 3};
    e.spec.points = {120, 340};
    e.novelEdges = {3, 9, 11};
    e.ordinal = 1;
    return e;
}

TEST(MutOps, NamesRoundTrip)
{
    for (size_t i = 0; i < kMutOpCount; ++i) {
        MutOp parsed;
        ASSERT_TRUE(mutOpFromName(mutOpName(MutOp(i)), parsed));
        EXPECT_EQ(parsed, MutOp(i));
    }
    MutOp op;
    EXPECT_FALSE(mutOpFromName("fresh", op));
    EXPECT_FALSE(mutOpFromName("NUDGE", op));
    EXPECT_FALSE(mutOpFromName("", op));
}

// The mutation-determinism property: a mutation is a pure function of
// (entry, operator, RNG state).  Same seed, same mutated token —
// that's what makes the whole guided search replayable and
// worker-count independent.
TEST(MutateSpec, SameEntryAndRngSeedSameMutatedToken)
{
    CorpusEntry e = sampleEntry();
    for (size_t opi = 0; opi < kMutOpCount; ++opi) {
        for (uint64_t seed = 1; seed <= 64; ++seed) {
            Rng r1(seed), r2(seed);
            ScheduleSpec a, b;
            bool okA = mutateSpec(e, MutOp(opi), 2'000, 24, r1, a);
            bool okB = mutateSpec(e, MutOp(opi), 2'000, 24, r2, b);
            ASSERT_EQ(okA, okB) << mutOpName(MutOp(opi));
            if (okA)
                EXPECT_EQ(a.token(), b.token())
                    << mutOpName(MutOp(opi)) << " seed " << seed;
        }
    }
    // Different RNG seeds must be able to produce different nudges;
    // otherwise the "RNG state" half of the property is vacuous.
    Rng r1(1), r2(2);
    ScheduleSpec a, b;
    ASSERT_TRUE(mutateSpec(e, MutOp::Nudge, 2'000, 24, r1, a));
    ASSERT_TRUE(mutateSpec(e, MutOp::Nudge, 2'000, 24, r2, b));
    EXPECT_NE(a.token(), b.token());
}

TEST(MutateSpec, OutputsStayCanonical)
{
    // Property sweep: whatever the entry and operator, a successful
    // mutation yields strictly increasing points >= 1 on a systematic
    // policy with depth >= 1 — i.e. a spec whose token parses back.
    Rng rng(7);
    for (int iter = 0; iter < 2'000; ++iter) {
        CorpusEntry e;
        e.spec.policy = rng.chance(1, 2) ? vm::SchedPolicy::Pct
                                         : vm::SchedPolicy::PreemptBound;
        e.spec.depth = uint32_t(1 + rng.range(4));
        e.spec.seed = rng.next();
        for (uint64_t n = rng.range(4); n > 0; --n)
            e.spec.points.push_back(1 + rng.range(500));
        std::sort(e.spec.points.begin(), e.spec.points.end());
        e.spec.points.erase(std::unique(e.spec.points.begin(),
                                        e.spec.points.end()),
                            e.spec.points.end());

        MutOp op = MutOp(rng.range(kMutOpCount));
        ScheduleSpec out;
        if (!mutateSpec(e, op, 500, 24, rng, out))
            continue;
        ASSERT_FALSE(out.points.empty()) << mutOpName(op);
        ASSERT_GE(out.depth, 1u) << mutOpName(op);
        for (size_t i = 0; i < out.points.size(); ++i) {
            ASSERT_GE(out.points[i], 1u) << mutOpName(op);
            if (i > 0)
                ASSERT_GT(out.points[i], out.points[i - 1])
                    << mutOpName(op);
        }
        ScheduleSpec parsed;
        std::string err;
        ASSERT_TRUE(parseScheduleToken(out.token(), parsed, err))
            << out.token() << ": " << err;
        EXPECT_EQ(parsed, out);
    }
}

TEST(MutateSpec, InapplicableOperatorsReturnFalse)
{
    Rng rng(3);
    ScheduleSpec out;

    CorpusEntry onePoint = sampleEntry();
    onePoint.spec.points = {50};
    EXPECT_FALSE(mutateSpec(onePoint, MutOp::Drop, 2'000, 24, rng, out));

    CorpusEntry pb = sampleEntry();
    pb.spec.policy = vm::SchedPolicy::PreemptBound;
    pb.spec.depth = 2;
    EXPECT_FALSE(
        mutateSpec(pb, MutOp::DepthBump, 2'000, 24, rng, out));

    CorpusEntry rand;
    rand.spec = {vm::SchedPolicy::Random, 1, 0};
    for (size_t opi = 0; opi < kMutOpCount; ++opi)
        EXPECT_FALSE(mutateSpec(rand, MutOp(opi), 2'000, 24, rng, out))
            << mutOpName(MutOp(opi));
}

TEST(MutateSpec, CrossPolicySwapsFamilies)
{
    Rng rng(5);
    ScheduleSpec out;
    CorpusEntry e = sampleEntry(); // pct:d3, 2 points
    ASSERT_TRUE(mutateSpec(e, MutOp::CrossPolicy, 2'000, 24, rng, out));
    EXPECT_EQ(out.policy, vm::SchedPolicy::PreemptBound);
    EXPECT_EQ(out.depth, 2u); // bound == point count
    EXPECT_EQ(out.points, e.spec.points);

    CorpusEntry back;
    back.spec = out;
    ASSERT_TRUE(
        mutateSpec(back, MutOp::CrossPolicy, 2'000, 24, rng, out));
    EXPECT_EQ(out.policy, vm::SchedPolicy::Pct);
    EXPECT_EQ(out.depth, 3u); // points + 1 priority bands
}

TEST(MutateSpec, NearAddStaysInTheAnchorNeighbourhood)
{
    // The two-window probe: the inserted point lands within 4x the
    // nudge radius of one of the entry's existing points.
    CorpusEntry e = sampleEntry(); // points {120, 340}
    const uint64_t nudgeMax = 24;
    Rng rng(11);
    for (int iter = 0; iter < 200; ++iter) {
        ScheduleSpec out;
        ASSERT_TRUE(
            mutateSpec(e, MutOp::NearAdd, 2'000, nudgeMax, rng, out));
        ASSERT_EQ(out.depth, e.spec.depth + 1);
        // Exactly one new point, near an anchor.
        std::vector<uint64_t> added;
        for (uint64_t p : out.points)
            if (p != 120 && p != 340)
                added.push_back(p);
        ASSERT_LE(added.size(), 1u);
        if (added.empty())
            continue; // landed on an existing point and deduped
        uint64_t p = added[0];
        uint64_t d1 = p > 120 ? p - 120 : 120 - p;
        uint64_t d2 = p > 340 ? p - 340 : 340 - p;
        EXPECT_LE(std::min(d1, d2), 4 * nudgeMax) << p;
    }
}

TEST(CorpusEntryEnergy, RacyEdgesWeighHeavier)
{
    CorpusEntry plain = sampleEntry(); // 3 novel edges, racy 0
    EXPECT_EQ(plain.energy(), 3u);
    CorpusEntry racy = sampleEntry();
    racy.racy = 2;
    EXPECT_EQ(racy.energy(), 3u + 2 * kRacyEnergyBoost);
}

//
// Corpus serialisation.
//

Corpus
sampleCorpus()
{
    Corpus c;
    c.program = "ZSNES";
    CorpusEntry fresh = sampleEntry();
    fresh.op = "fresh";
    c.entries.push_back(fresh);

    CorpusEntry mut;
    mut.spec = {vm::SchedPolicy::PreemptBound, 17, 2};
    mut.spec.points = {120, 364};
    mut.novelEdges = {0x10, 0xfedcba9876543210ull};
    mut.racy = 2;
    mut.ordinal = 9;
    mut.op = "nudge";
    mut.parent = fresh.spec.token();
    c.entries.push_back(mut);
    return c;
}

TEST(Corpus, SerialisesByteIdenticallyThroughParse)
{
    Corpus c = sampleCorpus();
    std::string text = c.serialize();

    Corpus parsed;
    std::string err;
    ASSERT_TRUE(parseCorpus(text, parsed, err)) << err;
    EXPECT_EQ(parsed.program, c.program);
    ASSERT_EQ(parsed.entries.size(), c.entries.size());
    for (size_t i = 0; i < c.entries.size(); ++i)
        EXPECT_EQ(parsed.entries[i], c.entries[i]) << i;

    EXPECT_EQ(parsed.serialize(), text);
    EXPECT_EQ(parsed.digest(), c.digest());
}

TEST(Corpus, DigestIgnoresProgramNameOnly)
{
    Corpus a = sampleCorpus();
    Corpus b = a;
    b.program = "Renamed";
    EXPECT_EQ(a.digest(), b.digest());

    Corpus c = a;
    c.entries[0].novelEdges.push_back(0x99);
    EXPECT_NE(a.digest(), c.digest());
}

TEST(Corpus, TruncationAlwaysFailsWithALineNumberedError)
{
    std::string text = sampleCorpus().serialize();
    std::vector<std::string> lines;
    std::istringstream is(text);
    for (std::string l; std::getline(is, l);)
        lines.push_back(l);
    ASSERT_GT(lines.size(), 3u);

    for (size_t keep = 0; keep < lines.size(); ++keep) {
        std::string prefix;
        for (size_t i = 0; i < keep; ++i)
            prefix += lines[i] + "\n";
        Corpus out;
        std::string err;
        EXPECT_FALSE(parseCorpus(prefix, out, err))
            << "prefix of " << keep << " lines parsed";
        EXPECT_NE(err.find("corpus line"), std::string::npos) << err;
    }
}

TEST(Corpus, StrictParserNamesTheOffendingLine)
{
    const std::string good = sampleCorpus().serialize();
    auto replaceOnce = [&](const std::string &from,
                           const std::string &to) {
        std::string t = good;
        size_t at = t.find(from);
        EXPECT_NE(at, std::string::npos) << from;
        t.replace(at, from.size(), to);
        return t;
    };

    struct Case
    {
        std::string text;
        const char *expect;
    };
    const Case cases[] = {
        {replaceOnce("conair-corpus v1", "conair-corpus v2"),
         "unsupported version"},
        {replaceOnce("conair-corpus v1", "replay-log v1"),
         "bad header"},
        {replaceOnce("program ZSNES", "program  ZSNES"),
         "expected 'program"},
        {replaceOnce("entries 2", "entries two"), "expected 'entries"},
        {replaceOnce("entry 1", "entry 7"), "out of order"},
        {replaceOnce("ordinal 1", "ordinal 0"), "ordinal must be"},
        {replaceOnce("racy 2", "racy -2"), "expected 'racy"},
        {replaceOnce("op nudge", "op splice"),
         "unknown mutation operator"},
        {replaceOnce("token pct:d3:s17:c120,340",
                     "token pct:d3:s17:c340,120"),
         "bad schedule token"},
        {replaceOnce("parent pct:d3:s17:c120,340", "parent bogus"),
         "bad parent token"},
        {replaceOnce("edges 3", "edges 2"), "does not match"},
        {replaceOnce("edges 2 0000000000000010",
                     "edges 2 000000000000001g"),
         "bad edge key"},
        {replaceOnce("edges 2 0000000000000010 fedcba9876543210",
                     "edges 2 fedcba9876543210 0000000000000010"),
         "strictly increasing"},
        {good + "extra\n", "trailing content"},
        {replaceOnce("end", "fin"), "expected 'end'"},
    };
    for (const Case &tc : cases) {
        Corpus out;
        std::string err;
        EXPECT_FALSE(parseCorpus(tc.text, out, err)) << tc.expect;
        EXPECT_NE(err.find("corpus line"), std::string::npos) << err;
        EXPECT_NE(err.find(tc.expect), std::string::npos)
            << "want '" << tc.expect << "' in: " << err;
    }
}

TEST(Corpus, SaveLoadRoundTripsAndMissingFileFails)
{
    Corpus c = sampleCorpus();
    std::string path =
        ::testing::TempDir() + "guided_corpus_roundtrip.corpus";
    std::string err;
    ASSERT_TRUE(saveCorpus(path, c, err)) << err;

    Corpus loaded;
    ASSERT_TRUE(loadCorpus(path, loaded, err)) << err;
    EXPECT_EQ(loaded.serialize(), c.serialize());
    EXPECT_EQ(loaded.digest(), c.digest());
    std::remove(path.c_str());

    EXPECT_FALSE(loadCorpus(path, loaded, err));
    EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
}

//
// The guided driver on real kernels.
//

class GuidedFixture : public ::testing::Test
{
  protected:
    static apps::CampaignApp
    prepare(const char *name)
    {
        const apps::AppSpec *spec = apps::findApp(name);
        EXPECT_NE(spec, nullptr) << name;
        return apps::prepareCampaignApp(*spec);
    }

    static CampaignOptions
    smallOptions()
    {
        CampaignOptions opts;
        opts.maxSteps = 2'000'000;
        return opts;
    }
};

// derivePoints must mirror the scheduler's own sampling exactly: a
// spec re-run with its materialised points pinned is the *same
// schedule*, tick for tick.
TEST_F(GuidedFixture, DerivedPointsReproduceTheSampledSchedule)
{
    apps::CampaignApp app = prepare("ZSNES");
    Target t = apps::campaignTarget(app);
    CampaignOptions opts = smallOptions();
    opts.collectCoverage = true;

    for (uint64_t seed = 1; seed <= 6; ++seed) {
        ScheduleSpec sampled{vm::SchedPolicy::Pct, seed, 3};
        ScheduleOutcome a = runOneSchedule(t, sampled, opts);

        ScheduleSpec pinned = sampled;
        pinned.points = derivePoints(sampled, t.horizon);
        ASSERT_EQ(pinned.points.size(), 2u); // depth - 1 draws
        ScheduleOutcome b = runOneSchedule(t, pinned, opts);

        EXPECT_EQ(a.unhardened, b.unhardened) << seed;
        EXPECT_EQ(a.unhardenedCorrect, b.unhardenedCorrect) << seed;
        EXPECT_EQ(a.steps, b.steps) << seed;
        ASSERT_EQ(a.coverage.size(), b.coverage.size()) << seed;
        for (size_t i = 0; i < a.coverage.size(); ++i)
            EXPECT_EQ(a.coverage[i].key, b.coverage[i].key) << seed;
    }
}

TEST_F(GuidedFixture, SearchIsIndependentOfWorkerCount)
{
    apps::CampaignApp app = prepare("ZSNES");
    Target t = apps::campaignTarget(app);

    GuidedOptions g;
    g.budget = 24;
    g.batch = 8;
    g.stopAtFirstFailure = false; // exercise the whole budget

    CampaignOptions opts = smallOptions();
    opts.workers = 1;
    GuidedResult serial = runGuided(t, opts, g);
    opts.workers = 4;
    GuidedResult parallel = runGuided(t, opts, g);

    EXPECT_EQ(serial.schedules, parallel.schedules);
    EXPECT_EQ(serial.freshSchedules, parallel.freshSchedules);
    EXPECT_EQ(serial.mutatedSchedules, parallel.mutatedSchedules);
    EXPECT_EQ(serial.freshNovel, parallel.freshNovel);
    EXPECT_EQ(serial.mutationNovel, parallel.mutationNovel);
    for (size_t op = 0; op < kMutOpCount; ++op) {
        EXPECT_EQ(serial.perOp[op], parallel.perOp[op]);
        EXPECT_EQ(serial.perOpNovel[op], parallel.perOpNovel[op]);
    }
    EXPECT_EQ(serial.foundFailure, parallel.foundFailure);
    EXPECT_EQ(serial.seedsToFirstFailure,
              parallel.seedsToFirstFailure);
    EXPECT_EQ(serial.firstFailure, parallel.firstFailure);
    EXPECT_EQ(serial.distinctEdges, parallel.distinctEdges);
    EXPECT_EQ(serial.coverageDigest, parallel.coverageDigest);
    EXPECT_EQ(serial.divergences, parallel.divergences);
    EXPECT_EQ(serial.unrecovered, parallel.unrecovered);
    // The corpus is the search's full state: byte identity, not just
    // digest equality.
    EXPECT_EQ(serial.corpus.serialize(), parallel.corpus.serialize());
    EXPECT_EQ(serial.corpus.digest(), parallel.corpus.digest());

    // The search did something guided: schedules ran, the corpus is
    // non-trivial, and ZSNES's failure was rediscovered.
    EXPECT_EQ(serial.schedules, g.budget);
    EXPECT_GT(serial.corpus.entries.size(), 0u);
    EXPECT_TRUE(serial.foundFailure);
    EXPECT_EQ(serial.divergences, 0u);
    EXPECT_EQ(serial.unrecovered, 0u);
}

TEST_F(GuidedFixture, CampaignGuidedBlocksWorkerIndependentAndSaved)
{
    // The campaign-level view of the same property: 1 vs 4 workers
    // produce identical kernels[].guided summaries, identical corpus
    // digests, and the persisted corpus file re-parses to the digest
    // the summary reports.
    std::vector<apps::CampaignApp> prepared;
    prepared.push_back(prepare("ZSNES"));
    prepared.push_back(prepare("HTTrack"));
    std::vector<Target> targets;
    for (const apps::CampaignApp &a : prepared)
        targets.push_back(apps::campaignTarget(a));

    CampaignOptions opts = smallOptions();
    opts.seedsPerPolicy = 4;
    opts.policies = {{vm::SchedPolicy::Pct, 2}};
    opts.searchMode = SearchMode::Guided;
    opts.guidedBudget = 16;
    opts.collectCoverage = true;

    opts.workers = 1;
    CampaignReport serial = runCampaign(targets, opts);

    opts.workers = 4;
    opts.corpusDir = ::testing::TempDir() + "guided_test_corpora";
    CampaignReport parallel = runCampaign(targets, opts);

    ASSERT_EQ(serial.targets.size(), parallel.targets.size());
    for (size_t i = 0; i < serial.targets.size(); ++i) {
        const TargetReport &a = serial.targets[i];
        const TargetReport &b = parallel.targets[i];
        ASSERT_TRUE(a.hasGuided) << a.name;
        ASSERT_TRUE(b.hasGuided) << b.name;
        EXPECT_EQ(a.guided.schedules, b.guided.schedules) << a.name;
        EXPECT_EQ(a.guided.freshSchedules, b.guided.freshSchedules)
            << a.name;
        EXPECT_EQ(a.guided.mutatedSchedules,
                  b.guided.mutatedSchedules)
            << a.name;
        EXPECT_EQ(a.guided.corpusEntries, b.guided.corpusEntries)
            << a.name;
        EXPECT_EQ(a.guided.corpusDigest, b.guided.corpusDigest)
            << a.name;
        EXPECT_EQ(a.guided.foundFailure, b.guided.foundFailure)
            << a.name;
        EXPECT_EQ(a.guided.seedsToFirstFailure,
                  b.guided.seedsToFirstFailure)
            << a.name;
        EXPECT_EQ(a.guided.blindSeedsToFirstFailure,
                  b.guided.blindSeedsToFirstFailure)
            << a.name;
        EXPECT_EQ(a.guided.distinctEdges, b.guided.distinctEdges)
            << a.name;
        EXPECT_EQ(a.guided.coverageDigest, b.guided.coverageDigest)
            << a.name;
        EXPECT_EQ(a.guided.mutationYield, b.guided.mutationYield)
            << a.name;

        // Only the second run persisted; the file must re-parse to
        // the reported digest.
        ASSERT_FALSE(b.guided.corpusPath.empty()) << b.name;
        ASSERT_TRUE(b.guided.error.empty()) << b.guided.error;
        Corpus onDisk;
        std::string err;
        ASSERT_TRUE(loadCorpus(b.guided.corpusPath, onDisk, err))
            << err;
        EXPECT_EQ(onDisk.program, b.name);
        EXPECT_EQ(onDisk.digest(), b.guided.corpusDigest) << b.name;
        EXPECT_EQ(onDisk.entries.size(), b.guided.corpusEntries);
    }
}

// The replay obligation: every corpus entry is a *pinned* schedule
// (points materialised), so a recorded run of it must build a replay
// log that replays faithfully on all three engines.
TEST_F(GuidedFixture, PersistedCorpusEntriesReplayOnAllThreeEngines)
{
    apps::CampaignApp app = prepare("ZSNES");
    Target t = apps::campaignTarget(app);

    GuidedOptions g;
    g.budget = 10;
    g.stopAtFirstFailure = false;
    CampaignOptions opts = smallOptions();
    GuidedResult gr = runGuided(t, opts, g);
    ASSERT_GT(gr.corpus.entries.size(), 0u);

    std::string path = ::testing::TempDir() + "zsnes_replay.corpus";
    std::string err;
    ASSERT_TRUE(saveCorpus(path, gr.corpus, err)) << err;
    Corpus corpus;
    ASSERT_TRUE(loadCorpus(path, corpus, err)) << err;
    std::remove(path.c_str());

    size_t checked = 0;
    for (const CorpusEntry &e : corpus.entries) {
        if (checked >= 4) // three engines each; keep tier-1 fast
            break;
        ++checked;
        ASSERT_FALSE(e.spec.points.empty()) << e.spec.token();

        vm::VmConfig cfg;
        e.spec.applyTo(cfg);
        cfg.pctHorizon = t.horizon;
        cfg.quantum = t.quantum;
        cfg.maxSteps = opts.maxSteps;
        cfg.maxRetries = opts.maxRetries;
        obs::FlightRecorder rec(4096, obs::RecorderMode::Grow);
        cfg.recorder = &rec;
        cfg.recordSharedAccesses = true;
        vm::RunResult run = vm::runProgram(*t.plain, cfg);
        cfg.recorder = nullptr;
        cfg.recordSharedAccesses = false;

        obs::replay::ReplayLog log;
        ASSERT_TRUE(obs::replay::buildReplayLog(
            t.name, e.spec.token(), cfg, rec, run, log, err))
            << e.spec.token() << ": " << err;

        for (vm::ExecEngine engine :
             {vm::ExecEngine::Decoded, vm::ExecEngine::Reference,
              vm::ExecEngine::Fused}) {
            obs::replay::ReplayRun rr =
                obs::replay::replayLog(*t.plain, log, engine);
            EXPECT_TRUE(rr.faithful)
                << e.spec.token() << " engine " << int(engine) << ": "
                << rr.mismatch;
        }
    }
    EXPECT_GT(checked, 0u);
}

// The challenge kernel earns its name: blind pct:d2 cannot fail it
// (one change point, a two-window bug), guided search finds it.
TEST_F(GuidedFixture, GuidedFindsRelay3WhereBlindPctD2Cannot)
{
    apps::CampaignApp app = prepare("Relay3");
    Target t = apps::campaignTarget(app);
    CampaignOptions opts = smallOptions();

    // Blind probe: a slice of the full 1000-seed probe the bench
    // gates on; enough to catch a regression that makes the kernel
    // easy.
    for (uint64_t seed = 1; seed <= 60; ++seed) {
        ScheduleOutcome o = runOneSchedule(
            t, ScheduleSpec{vm::SchedPolicy::Pct, seed, 2}, opts);
        EXPECT_TRUE(o.unhardenedCorrect || o.unhardenedInconclusive)
            << "blind pct:d2 s" << seed << " failed Relay3";
        EXPECT_FALSE(o.diverged) << o.divergenceMsg;
    }

    GuidedOptions g;
    g.basePolicy = vm::SchedPolicy::Pct;
    g.baseDepth = 2;
    g.budget = 250;
    GuidedResult gr = runGuided(t, opts, g);
    EXPECT_TRUE(gr.foundFailure)
        << "guided search missed Relay3 in " << g.budget;
    EXPECT_LE(gr.seedsToFirstFailure, 250u);
    EXPECT_GT(gr.mutatedSchedules, 0u);
    EXPECT_EQ(gr.divergences, 0u);
    EXPECT_EQ(gr.unrecovered, 0u);
}

} // namespace
} // namespace conair::explore
