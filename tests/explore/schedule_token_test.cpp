/**
 * @file
 * The hardened repro-token parser: strict rejection of malformed
 * tokens with one-line errors, plus a small property/fuzz sweep — a
 * token either parses to a spec that round-trips, or fails cleanly;
 * mistyped tokens must never silently explore a different schedule.
 */
#include <gtest/gtest.h>

#include "explore/campaign.h"

namespace conair::explore {
namespace {

TEST(ScheduleTokenStrict, AcceptsCanonicalTokens)
{
    const ScheduleSpec specs[] = {
        {vm::SchedPolicy::Pct, 1, 1},
        {vm::SchedPolicy::Pct, 18446744073709551615ull, 4294967295u},
        {vm::SchedPolicy::PreemptBound, 7, 2},
        {vm::SchedPolicy::Random, 0, 0},
        {vm::SchedPolicy::RoundRobin, 42, 0},
    };
    for (const ScheduleSpec &s : specs) {
        ScheduleSpec parsed;
        std::string err;
        ASSERT_TRUE(parseScheduleToken(s.token(), parsed, err))
            << s.token() << ": " << err;
        EXPECT_EQ(parsed, s) << s.token();
        EXPECT_TRUE(err.empty());
    }
    // Field order is free; depth on non-PCT policies is tolerated.
    ScheduleSpec parsed;
    std::string err;
    ASSERT_TRUE(parseScheduleToken("pct:s5:d2", parsed, err)) << err;
    EXPECT_EQ(parsed, (ScheduleSpec{vm::SchedPolicy::Pct, 5, 2}));
    EXPECT_TRUE(parseScheduleToken("random:d3:s1", parsed, err));
}

TEST(ScheduleTokenStrict, RejectsMalformedWithOneLineError)
{
    const char *bad[] = {
        "",                                  // no policy
        "pct",                               // no seed
        "pct:d3",                            // no seed
        "pct:s1",                            // PCT needs depth
        "pb:s1",                             // PB needs depth
        "pct:d0:s1",                         // zero depth
        "warp:d1:s1",                        // bad policy
        "PCT:d1:s1",                         // case matters
        "pct:d3:s1x",                        // trailing junk
        "pct:d:s1",                          // empty number
        "pct:d3:s",                          // empty number
        "pct:d3:s+1",                        // sign prefix
        "pct:d3:s-1",                        // negative
        "pct:d3:s 1",                        // embedded space
        "pct:d3:s0x10",                      // hex
        "pct:d3:s18446744073709551616",      // u64 overflow
        "pct:d4294967296:s1",                // depth > u32
        "pct:d3:s1:s2",                      // duplicate seed
        "pct:d3:d2:s1",                      // duplicate depth
        "pct:d3:q1:s1",                      // unknown field
        "pct::s1",                           // empty field
        "rr:s1:",                            // trailing separator
    };
    for (const char *tok : bad) {
        ScheduleSpec s;
        std::string err;
        EXPECT_FALSE(parseScheduleToken(tok, s, err)) << tok;
        EXPECT_FALSE(err.empty()) << tok;
        EXPECT_EQ(err.find('\n'), std::string::npos) << err;
        EXPECT_NE(err.find(tok), std::string::npos)
            << "error should quote the token: " << err;
    }
}

TEST(ScheduleTokenStrict, PointsFieldRoundTripsOnSystematicPolicies)
{
    // The c field pins explicit change points (VmConfig::schedPoints):
    // strictly increasing ticks >= 1, pct/pb only, at most once.
    ScheduleSpec s{vm::SchedPolicy::Pct, 17, 3};
    s.points = {120, 340};
    EXPECT_EQ(s.token(), "pct:d3:s17:c120,340");

    ScheduleSpec parsed;
    std::string err;
    ASSERT_TRUE(parseScheduleToken(s.token(), parsed, err)) << err;
    EXPECT_EQ(parsed, s);

    ScheduleSpec pb{vm::SchedPolicy::PreemptBound, 5, 2};
    pb.points = {1};
    ASSERT_TRUE(parseScheduleToken("pb:d2:s5:c1", parsed, err)) << err;
    EXPECT_EQ(parsed, pb);

    // Field order is free, like d and s.
    ASSERT_TRUE(parseScheduleToken("pct:c9,10:d2:s3", parsed, err))
        << err;
    EXPECT_EQ(parsed.points, (std::vector<uint64_t>{9, 10}));

    // applyTo carries the points into the VM config.
    vm::VmConfig cfg;
    s.applyTo(cfg);
    EXPECT_EQ(cfg.schedPoints, s.points);
}

TEST(ScheduleTokenStrict, RejectsMalformedPointsField)
{
    const char *bad[] = {
        "pct:d3:s1:c",            // empty list
        "pct:d3:s1:c0",           // tick 0
        "pct:d3:s1:c5,5",         // not strictly increasing
        "pct:d3:s1:c9,3",         // decreasing
        "pct:d3:s1:c1,,2",        // empty item
        "pct:d3:s1:c1,",          // trailing comma
        "pct:d3:s1:c1x",          // junk in a tick
        "pct:d3:s1:c-1",          // sign
        "pct:d3:s1:c1:c2",        // duplicate c field
        "random:s1:c1",           // random takes no points
        "rr:s1:c1",               // rr takes no points
        "pct:d3:s1:c18446744073709551616", // overflow
    };
    for (const char *tok : bad) {
        ScheduleSpec s;
        std::string err;
        EXPECT_FALSE(parseScheduleToken(tok, s, err)) << tok;
        EXPECT_FALSE(err.empty()) << tok;
        EXPECT_EQ(err.find('\n'), std::string::npos) << err;
    }
}

// Property sweep: random mutations of valid tokens either parse to a
// spec whose canonical token parses back to the same spec, or fail
// cleanly with a one-line error.  The parser must never produce a
// spec that disagrees with its own serialisation (the "silent
// different schedule" failure mode), and must never crash.
TEST(ScheduleTokenStrict, FuzzedTokensParseOrFailCleanly)
{
    uint64_t rng = 0x9e3779b97f4a7c15ull;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    const std::string alphabet = "pctrbandomsd0123456789:+- x\tq";

    unsigned parsedOk = 0;
    for (int iter = 0; iter < 20'000; ++iter) {
        std::string tok;
        switch (next() % 3) {
          case 0: // fully random
            for (uint64_t len = next() % 24; len > 0; --len)
                tok += alphabet[next() % alphabet.size()];
            break;
          case 1: { // mutated valid token
            ScheduleSpec s{vm::SchedPolicy::Pct, next() % 1000,
                           uint32_t(1 + next() % 5)};
            tok = s.token();
            size_t pos = next() % tok.size();
            tok[pos] = alphabet[next() % alphabet.size()];
            break;
          }
          default: { // structurally valid
            ScheduleSpec s{next() % 2 == 0 ? vm::SchedPolicy::Pct
                                           : vm::SchedPolicy::Random,
                           next(), uint32_t(1 + next() % 9)};
            tok = s.token();
            break;
          }
        }

        ScheduleSpec s;
        std::string err;
        if (parseScheduleToken(tok, s, err)) {
            ++parsedOk;
            EXPECT_TRUE(err.empty()) << tok;
            // Canonical round-trip: the spec's own token re-parses to
            // the identical spec.
            ScheduleSpec again;
            ASSERT_TRUE(parseScheduleToken(s.token(), again, err))
                << tok << " -> " << s.token() << ": " << err;
            EXPECT_EQ(again, s) << tok;
        } else {
            EXPECT_FALSE(err.empty()) << tok;
            EXPECT_EQ(err.find('\n'), std::string::npos) << err;
        }
    }
    // The structurally-valid third keeps the sweep from degenerating
    // into rejection-only coverage.
    EXPECT_GT(parsedOk, 5'000u);
}

} // namespace
} // namespace conair::explore
