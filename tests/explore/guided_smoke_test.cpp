/**
 * @file
 * Quick-label guided-exploration smoke: a two-kernel guided campaign
 * small enough for `ctest -L quick` — the guided pass runs, admits a
 * corpus, rediscovers both failures, and stays clean under the engine
 * and recovery oracles.  The heavy property and worker-independence
 * tests live in guided_test.cpp (full label).
 */
#include <gtest/gtest.h>

#include "apps/harness.h"
#include "explore/guided.h"
#include "explore/telemetry.h"

namespace conair::explore {
namespace {

TEST(GuidedSmoke, TwoKernelGuidedCampaign)
{
    std::vector<apps::CampaignApp> prepared;
    std::vector<Target> targets;
    for (const char *name : {"ZSNES", "HTTrack"}) {
        const apps::AppSpec *spec = apps::findApp(name);
        ASSERT_NE(spec, nullptr) << name;
        prepared.push_back(apps::prepareCampaignApp(*spec));
        targets.push_back(apps::campaignTarget(prepared.back()));
    }

    CampaignOptions opts;
    opts.seedsPerPolicy = 4;
    opts.policies = {{vm::SchedPolicy::Pct, 2}};
    opts.maxSteps = 2'000'000;
    opts.searchMode = SearchMode::Guided;
    opts.guidedBudget = 16;

    CampaignTelemetry tel;
    opts.telemetry = &tel;
    CampaignReport rep = runCampaign(targets, opts);
    EXPECT_EQ(rep.divergences, 0u);
    EXPECT_EQ(rep.unrecovered, 0u);

    // The live telemetry surfaces the guided pass: /status carries the
    // corpus size and mutation yield, /metrics the guided gauges.
    std::string status = tel.statusJson();
    EXPECT_NE(status.find("\"guided\""), std::string::npos);
    EXPECT_NE(status.find("\"corpus_entries\""), std::string::npos);
    EXPECT_NE(status.find("\"mutation_yield\""), std::string::npos);
    std::string prom = tel.prometheusText();
    EXPECT_NE(prom.find("conair_guided_corpus_entries"),
              std::string::npos);
    EXPECT_NE(prom.find("conair_guided_mutations_tried"),
              std::string::npos);
    EXPECT_NE(prom.find("conair_guided_fresh_tried"),
              std::string::npos);

    ASSERT_EQ(rep.targets.size(), 2u);
    for (const TargetReport &tr : rep.targets) {
        ASSERT_TRUE(tr.hasGuided) << tr.name;
        EXPECT_EQ(tr.guided.budget, opts.guidedBudget) << tr.name;
        EXPECT_GT(tr.guided.schedules, 0u) << tr.name;
        EXPECT_GT(tr.guided.corpusEntries, 0u) << tr.name;
        EXPECT_NE(tr.guided.corpusDigest, 0u) << tr.name;
        // Both kernels fail under shallow pct, so guided (which stops
        // at the first failure) must rediscover them within the tiny
        // budget.
        EXPECT_TRUE(tr.guided.foundFailure) << tr.name;
        EXPECT_GE(tr.guided.seedsToFirstFailure, 1u) << tr.name;
        EXPECT_LE(tr.guided.seedsToFirstFailure, tr.guided.schedules)
            << tr.name;
        EXPECT_TRUE(tr.guided.error.empty()) << tr.guided.error;
    }
}

} // namespace
} // namespace conair::explore
