/**
 * @file
 * The schedule-exploration campaign engine: token round-trips, the
 * campaign matrix (determinism, worker-count independence, oracle
 * bookkeeping) and chaos-injection determinism on real kernels.
 */
#include <gtest/gtest.h>

#include "apps/harness.h"
#include "explore/campaign.h"
#include "explore/telemetry.h"

namespace conair::explore {
namespace {

TEST(ScheduleToken, RoundTrips)
{
    const ScheduleSpec specs[] = {
        {vm::SchedPolicy::Pct, 17, 3},
        {vm::SchedPolicy::Pct, 1, 2},
        {vm::SchedPolicy::PreemptBound, 5, 2},
        {vm::SchedPolicy::Random, 9, 0},
        {vm::SchedPolicy::RoundRobin, 2, 0},
    };
    for (const ScheduleSpec &s : specs) {
        ScheduleSpec parsed;
        ASSERT_TRUE(parseScheduleToken(s.token(), parsed)) << s.token();
        EXPECT_EQ(parsed, s) << s.token();
    }
}

TEST(ScheduleToken, RejectsMalformedTokens)
{
    ScheduleSpec s;
    EXPECT_FALSE(parseScheduleToken("", s));
    EXPECT_FALSE(parseScheduleToken("pct", s));          // no seed
    EXPECT_FALSE(parseScheduleToken("pct:d3", s));       // no seed
    EXPECT_FALSE(parseScheduleToken("pct:s1", s));       // no depth
    EXPECT_FALSE(parseScheduleToken("warp:d1:s1", s));   // bad policy
    EXPECT_FALSE(parseScheduleToken("pct:d3:s1x", s));   // trailing junk
    EXPECT_FALSE(parseScheduleToken("pct:d:s1", s));     // empty number
}

TEST(ScheduleToken, AppliesToConfig)
{
    ScheduleSpec s{vm::SchedPolicy::Pct, 41, 4};
    vm::VmConfig cfg;
    s.applyTo(cfg);
    EXPECT_EQ(cfg.policy, vm::SchedPolicy::Pct);
    EXPECT_EQ(cfg.seed, 41u);
    EXPECT_EQ(cfg.pctDepth, 4u);
}

//
// Campaign matrix on real kernels.  Small seed counts keep this in
// tier-1 time budgets; bench_explore runs the full-scale version.
//

class CampaignFixture : public ::testing::Test
{
  protected:
    static CampaignOptions
    smallOptions()
    {
        CampaignOptions opts;
        opts.seedsPerPolicy = 10;
        opts.workers = 4;
        opts.maxSteps = 2'000'000;
        return opts;
    }

    static std::vector<Target>
    targetsFor(const std::vector<apps::CampaignApp> &prepared)
    {
        std::vector<Target> ts;
        for (const apps::CampaignApp &a : prepared)
            ts.push_back(apps::campaignTarget(a));
        return ts;
    }

    static std::vector<apps::CampaignApp>
    prepare(std::initializer_list<const char *> names)
    {
        std::vector<apps::CampaignApp> apps_;
        for (const char *n : names) {
            const apps::AppSpec *spec = apps::findApp(n);
            EXPECT_NE(spec, nullptr) << n;
            apps_.push_back(apps::prepareCampaignApp(*spec));
        }
        return apps_;
    }
};

TEST_F(CampaignFixture, ReportIsIndependentOfWorkerCount)
{
    auto prepared = prepare({"MySQL1", "HawkNL"});
    auto targets = targetsFor(prepared);

    CampaignOptions opts = smallOptions();
    opts.collectMetrics = true;
    opts.workers = 1;
    CampaignReport serial = runCampaign(targets, opts);
    opts.workers = 4;
    CampaignReport parallel = runCampaign(targets, opts);

    ASSERT_EQ(serial.targets.size(), parallel.targets.size());
    EXPECT_EQ(serial.schedules, parallel.schedules);
    for (size_t i = 0; i < serial.targets.size(); ++i) {
        const TargetReport &a = serial.targets[i];
        const TargetReport &b = parallel.targets[i];
        EXPECT_EQ(a.failingSchedules, b.failingSchedules) << a.name;
        EXPECT_EQ(a.inconclusive, b.inconclusive) << a.name;
        EXPECT_EQ(a.failureTags, b.failureTags) << a.name;
        EXPECT_EQ(a.foundFailure, b.foundFailure) << a.name;
        EXPECT_EQ(a.firstFailure, b.firstFailure) << a.name;
        EXPECT_EQ(a.divergences, b.divergences) << a.name;
        EXPECT_EQ(a.unrecovered, b.unrecovered) << a.name;
        EXPECT_EQ(a.totalSteps, b.totalSteps) << a.name;
        EXPECT_EQ(a.chaosRollbacks, b.chaosRollbacks) << a.name;
        // Metrics are merged in matrix order during aggregation, so
        // the per-policy registries are worker-count independent too.
        ASSERT_EQ(a.policyMetrics.size(), opts.policies.size())
            << a.name;
        EXPECT_EQ(a.policyMetrics, b.policyMetrics) << a.name;
        for (size_t pi = 0; pi < a.policyMetrics.size(); ++pi)
            EXPECT_EQ(a.policyMetrics[pi].second.toJson(),
                      b.policyMetrics[pi].second.toJson())
                << a.name << " " << a.policyMetrics[pi].first;
    }
}

TEST_F(CampaignFixture, CoverageIsIndependentOfWorkerCount)
{
    // The interleaving-coverage digest is FNV-1a over *sorted* edge
    // keys — a set-union invariant — so any partition of the same
    // schedule matrix over any number of workers must agree exactly,
    // per target and in the live telemetry map.
    auto prepared = prepare({"ZSNES", "Transmission"});
    auto targets = targetsFor(prepared);

    CampaignOptions opts = smallOptions();
    opts.collectCoverage = true;

    CampaignTelemetry serialTel;
    opts.workers = 1;
    opts.telemetry = &serialTel;
    CampaignReport serial = runCampaign(targets, opts);

    CampaignTelemetry parallelTel;
    opts.workers = 4;
    opts.telemetry = &parallelTel;
    CampaignReport parallel = runCampaign(targets, opts);

    ASSERT_EQ(serial.targets.size(), parallel.targets.size());
    for (size_t i = 0; i < serial.targets.size(); ++i) {
        const TargetReport &a = serial.targets[i];
        const TargetReport &b = parallel.targets[i];
        ASSERT_TRUE(a.hasCoverage) << a.name;
        ASSERT_TRUE(b.hasCoverage) << b.name;
        EXPECT_GT(a.coverageDistinctEdges, 0u) << a.name;
        EXPECT_EQ(a.coverageDistinctEdges, b.coverageDistinctEdges)
            << a.name;
        EXPECT_EQ(a.coverageDigest, b.coverageDigest) << a.name;
        EXPECT_EQ(a.coverageNovelSchedules, b.coverageNovelSchedules)
            << a.name;
        EXPECT_EQ(a.coverageGrowth, b.coverageGrowth) << a.name;
        EXPECT_EQ(a.coverageEdgesAtFirstFailure,
                  b.coverageEdgesAtFirstFailure)
            << a.name;
    }

    // The live map accumulates the union over all targets; its digest
    // must agree between the two runs too.
    EXPECT_GT(serialTel.coverage().distinctEdges(), 0u);
    EXPECT_EQ(serialTel.coverage().digest(),
              parallelTel.coverage().digest());
    EXPECT_EQ(serialTel.coverage().distinctEdges(),
              parallelTel.coverage().distinctEdges());
    EXPECT_EQ(serialTel.schedulesDone(), parallel.schedules);

    // The telemetry renderers produce the documented shapes.
    std::string status = parallelTel.statusJson();
    EXPECT_NE(status.find("\"schedules_done\""), std::string::npos);
    EXPECT_NE(status.find("\"distinct_edges\""), std::string::npos);
    std::string prom = parallelTel.prometheusText();
    EXPECT_NE(prom.find("conair_coverage_distinct_edges"),
              std::string::npos);
    std::string covDump = parallelTel.coverageJson();
    EXPECT_NE(covDump.find("\"digest\""), std::string::npos);
    EXPECT_NE(covDump.find("\"edges\""), std::string::npos);
}

TEST_F(CampaignFixture, ProfileIsIndependentOfWorkerCount)
{
    // The recovery-cost profile is folded per (target, policy) in
    // matrix order, so the deterministic axis — phase ticks, episode
    // counts, the whole recovery tax — must be identical for any
    // worker count.  Wall-clock cells are measured micros and thus
    // excluded, but their *shape* (cell set, span counts) is not.
    auto prepared = prepare({"MySQL1", "ZSNES"});
    auto targets = targetsFor(prepared);

    CampaignOptions opts = smallOptions();
    opts.collectProfile = true;
    opts.workers = 1;
    CampaignReport serial = runCampaign(targets, opts);
    opts.workers = 4;
    CampaignReport parallel = runCampaign(targets, opts);

    ASSERT_EQ(serial.targets.size(), parallel.targets.size());
    uint64_t episodes = 0, reexec = 0;
    for (size_t i = 0; i < serial.targets.size(); ++i) {
        const TargetReport &a = serial.targets[i];
        const TargetReport &b = parallel.targets[i];
        ASSERT_TRUE(a.hasProfile) << a.name;
        ASSERT_TRUE(b.hasProfile) << b.name;

        EXPECT_GT(a.profile.runs, 0u) << a.name;
        episodes += a.profile.episodes;
        reexec += a.profile.reexecSteps;

        EXPECT_EQ(a.profile, b.profile) << a.name;
        ASSERT_EQ(a.policyProfiles.size(), opts.policies.size())
            << a.name;
        EXPECT_EQ(a.policyProfiles, b.policyProfiles) << a.name;

        // The target-wide aggregate is exactly the sum of the policy
        // cells.
        obs::prof::ProfileAgg summed;
        for (const auto &[label, agg] : a.policyProfiles)
            summed.merge(agg);
        EXPECT_EQ(summed, a.profile) << a.name;

        // Wall cells: same (policy, leg) set with the same span
        // counts, whatever the measured micros were.
        ASSERT_EQ(a.wall.size(), b.wall.size()) << a.name;
        for (size_t wi = 0; wi < a.wall.size(); ++wi) {
            EXPECT_EQ(a.wall[wi].kernel, b.wall[wi].kernel);
            EXPECT_EQ(a.wall[wi].policy, b.wall[wi].policy);
            EXPECT_EQ(a.wall[wi].leg, b.wall[wi].leg);
            EXPECT_EQ(a.wall[wi].spans, b.wall[wi].spans)
                << a.name << " " << a.wall[wi].policy << " "
                << a.wall[wi].leg;
        }
    }
    // The matrix really paid a recovery tax somewhere (ZSNES trips
    // within the first couple of PCT seeds), so the equality checks
    // above compared nonzero profiles, not all-zero ones.
    EXPECT_GT(episodes, 0u);
    EXPECT_GT(reexec, 0u);
}

TEST_F(CampaignFixture, OraclesHoldOnRealKernels)
{
    // Order-violation kernels trip on priority orderings alone, so a
    // small matrix still exercises failing schedules end to end.
    auto prepared = prepare({"HTTrack", "ZSNES"});
    auto targets = targetsFor(prepared);

    CampaignReport rep = runCampaign(targets, smallOptions());
    EXPECT_EQ(rep.divergences, 0u) << rep.summary();
    EXPECT_EQ(rep.unrecovered, 0u) << rep.summary();
    EXPECT_GT(rep.schedules, 0u);
    // Schedules with chaos injection on the hardened leg really ran.
    uint64_t chaosRuns = 0;
    for (const TargetReport &tr : rep.targets)
        chaosRuns += tr.chaosRuns;
    EXPECT_GT(chaosRuns, 0u);
}

TEST_F(CampaignFixture, FusedDifferentialHoldsOnAllKernels)
{
    // The opt-in Fused replica joins the tick-identity oracle on every
    // leg: run the whole Table 2 registry and require zero divergence.
    std::vector<apps::CampaignApp> prepared;
    for (const apps::AppSpec &spec : apps::allApps())
        prepared.push_back(apps::prepareCampaignApp(spec));
    auto targets = targetsFor(prepared);

    CampaignOptions opts = smallOptions();
    opts.seedsPerPolicy = 3;
    opts.fusedDifferential = true;
    CampaignReport rep = runCampaign(targets, opts);
    EXPECT_EQ(rep.divergences, 0u) << rep.summary();
    EXPECT_GT(rep.schedules, 0u);
    // Each chaos-free leg ran three engines' worth of VM runs; the
    // aggregate must reflect the extra replicas.
    EXPECT_GT(rep.vmRuns, 2 * rep.schedules);
}

TEST_F(CampaignFixture, StopAfterFailuresSkipsWork)
{
    auto prepared = prepare({"HTTrack"});
    auto targets = targetsFor(prepared);

    CampaignOptions opts = smallOptions();
    opts.workers = 1; // deterministic skip accounting
    opts.stopAfterFailures = 1;
    CampaignReport rep = runCampaign(targets, opts);
    const TargetReport &tr = rep.targets[0];
    if (tr.foundFailure)
        EXPECT_GT(tr.skipped, 0u);
    EXPECT_EQ(tr.schedules + tr.skipped,
              opts.policies.size() * opts.seedsPerPolicy);
}

TEST_F(CampaignFixture, ReproMatchesCampaignResult)
{
    // The --repro workflow: re-running a reported first-failure triple
    // must reproduce the same outcome the campaign recorded.  ZSNES
    // trips within the first couple of PCT seeds, so the small matrix
    // reliably has a triple to replay.
    auto prepared = prepare({"ZSNES"});
    auto targets = targetsFor(prepared);

    CampaignOptions opts = smallOptions();
    CampaignReport rep = runCampaign(targets, opts);
    const TargetReport &tr = rep.targets[0];
    if (!tr.foundFailure)
        GTEST_SKIP() << "no failing schedule in the small matrix";

    ScheduleSpec parsed;
    ASSERT_TRUE(parseScheduleToken(tr.firstFailure.token(), parsed));
    ScheduleOutcome o = runOneSchedule(targets[0], parsed, opts);
    EXPECT_FALSE(o.unhardenedCorrect);
    EXPECT_FALSE(o.unhardenedInconclusive);
    EXPECT_FALSE(o.diverged) << o.divergenceMsg;
}

TEST_F(CampaignFixture, CalibratedHorizonIsTickBased)
{
    auto prepared = prepare({"MySQL1"});
    Target t = apps::campaignTarget(prepared[0]);
    // The horizon counts scheduling ticks (shared stores + sync ops),
    // which is far below the raw instruction count of a clean run.
    vm::RunResult clean = apps::runClean(prepared[0].plain, 1);
    ASSERT_EQ(clean.outcome, vm::Outcome::Success);
    EXPECT_GE(t.horizon, 64u);
    EXPECT_LT(t.horizon, clean.stats.steps);
    EXPECT_GT(clean.stats.schedTicks, 0u);
}

//
// Chaos-injection determinism (VmConfig::chaosRollbackEveryN): the
// campaign explores hardened legs with chaos on, so the injection
// sites themselves must be a pure function of the seed.
//

TEST(ChaosDeterminism, SameSeedSameRollbackSites)
{
    const apps::AppSpec *spec = apps::findApp("MySQL1");
    ASSERT_NE(spec, nullptr);
    apps::PreparedApp p = apps::prepareApp(*spec, apps::HardenOptions{});

    vm::VmConfig cfg = spec->cleanConfig;
    cfg.seed = 11;
    cfg.chaosRollbackEveryN = 32;

    vm::RunResult a = vm::runProgram(*p.module, cfg);
    vm::RunResult b = vm::runProgram(*p.module, cfg);
    ASSERT_EQ(a.outcome, vm::Outcome::Success) << a.failureMsg;
    ASSERT_FALSE(a.stats.chaosSites.empty())
        << "chaos must actually inject for this test to mean anything";
    EXPECT_EQ(a.stats.chaosSites, b.stats.chaosSites);
    EXPECT_EQ(a.stats.chaosRollbacks, b.stats.chaosRollbacks);
    EXPECT_EQ(a.output, b.output);
}

TEST(ChaosDeterminism, DifferentSeedDifferentSites)
{
    const apps::AppSpec *spec = apps::findApp("MySQL1");
    apps::PreparedApp p = apps::prepareApp(*spec, apps::HardenOptions{});

    vm::VmConfig cfg = spec->cleanConfig;
    cfg.chaosRollbackEveryN = 32;
    cfg.seed = 11;
    vm::RunResult a = vm::runProgram(*p.module, cfg);
    cfg.seed = 12;
    vm::RunResult b = vm::runProgram(*p.module, cfg);
    ASSERT_FALSE(a.stats.chaosSites.empty());
    ASSERT_FALSE(b.stats.chaosSites.empty());
    EXPECT_NE(a.stats.chaosSites, b.stats.chaosSites);
    // Chaos may shuffle timing but never correctness.
    EXPECT_EQ(a.outcome, vm::Outcome::Success) << a.failureMsg;
    EXPECT_EQ(b.outcome, vm::Outcome::Success) << b.failureMsg;
}

TEST(ChaosDeterminism, EngineDifferentialHoldsUnderChaos)
{
    const apps::AppSpec *spec = apps::findApp("MySQL1");
    apps::PreparedApp p = apps::prepareApp(*spec, apps::HardenOptions{});

    vm::VmConfig cfg = spec->cleanConfig;
    cfg.seed = 4;
    cfg.chaosRollbackEveryN = 48;
    vm::RunResult a = vm::runProgram(*p.module, cfg);
    cfg.engine = vm::ExecEngine::Reference;
    vm::RunResult b = vm::runProgram(*p.module, cfg);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.clock, b.clock);
    EXPECT_EQ(a.stats.steps, b.stats.steps);
    EXPECT_EQ(a.stats.chaosSites, b.stats.chaosSites);
}

} // namespace
} // namespace conair::explore
