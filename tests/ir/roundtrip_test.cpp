#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace conair::ir {
namespace {

/** Parses, reprints, reparses, and checks the fixed point. */
void
expectRoundTrip(const std::string &text)
{
    DiagEngine d1;
    auto m1 = parseModule(text, d1);
    ASSERT_TRUE(m1) << d1.str();
    std::string p1 = printModule(*m1);

    DiagEngine d2;
    auto m2 = parseModule(p1, d2);
    ASSERT_TRUE(m2) << d2.str() << "\n--- printed ---\n" << p1;
    std::string p2 = printModule(*m2);
    EXPECT_EQ(p1, p2);

    DiagEngine dv;
    EXPECT_TRUE(verifyModule(*m2, dv)) << dv.str() << p2;
}

TEST(RoundTrip, Minimal)
{
    expectRoundTrip(R"(
func @main() -> i64 {
entry:
    ret 0
}
)");
}

TEST(RoundTrip, GlobalsAndMutexes)
{
    expectRoundTrip(R"(
global @counter : i64[1] = [5]
global @weights : f64[3] = [1.5, -2.0, 0.25]
mutex @lk

func @main() -> i64 {
entry:
    %0 = load i64, @counter
    ret %0
}
)");
}

TEST(RoundTrip, ArithmeticAndCompare)
{
    expectRoundTrip(R"(
func @main() -> i64 {
entry:
    %0 = add 1, 2
    %1 = mul %0, %0
    %2 = icmp.slt %1, 100
    %3 = zext %2
    %4 = sitofp %3
    %5 = fadd %4, 0.5
    %6 = fptosi %5
    ret %6
}
)");
}

TEST(RoundTrip, ControlFlowWithPhi)
{
    expectRoundTrip(R"(
func @abs(i64 %x) -> i64 {
entry:
    %0 = icmp.slt %x, 0
    condbr %0, neg, done
neg:
    %1 = sub 0, %x
    br done
done:
    %2 = phi i64 [%x, entry], [%1, neg]
    ret %2
}
)");
}

TEST(RoundTrip, CallsAndBuiltins)
{
    expectRoundTrip(R"(
mutex @m

func @work(i64 %n) -> i64 {
entry:
    ret %n
}

func @main() -> i64 {
entry:
    %0 = call $thread_create(@work, 3)
    call $mutex_lock(@m)
    call $print_str("hello\n")
    call $mutex_unlock(@m)
    call $thread_join(%0)
    %1 = call @work(7)
    %2 = call $mutex_timedlock(@m, 1000)
    call $conair.checkpoint(0)
    ret %1
}
)");
}

TEST(RoundTrip, MemoryOps)
{
    expectRoundTrip(R"(
global @buf : i64[8]

func @main() -> i64 {
entry:
    %0 = alloca 4
    store 42, %0
    %1 = ptradd %0, 2
    store 7, %1
    %2 = load i64, %1
    %3 = call $malloc(16)
    store %2, %3
    call $free(%3)
    %4 = icmp.eq %3, null
    condbr %4, a, b
a:
    ret 0
b:
    %5 = load i64, @buf
    ret %5
}
)");
}

TEST(RoundTrip, TagsSurvive)
{
    DiagEngine d;
    auto m = parseModule(R"(
global @g : i64[1]

func @main() -> i64 {
entry:
    %0 = load i64, @g #"deref.main.3"
    ret %0
}
)",
                         d);
    ASSERT_TRUE(m) << d.str();
    const auto &inst = m->findFunction("main")->entry()->front();
    EXPECT_EQ(inst->tag(), "deref.main.3");
    // And the printer emits it back.
    EXPECT_NE(printModule(*m).find("#\"deref.main.3\""),
              std::string::npos);
}

TEST(RoundTrip, SchedHintAndUnreachable)
{
    expectRoundTrip(R"(
func @main() -> void {
entry:
    sched_hint 42
    condbr true, a, b
a:
    ret
b:
    call $assert_fail("main:3: assert failed")
    unreachable
}
)");
}

TEST(Parser, ReportsUnknownValue)
{
    DiagEngine d;
    auto m = parseModule(R"(
func @main() -> i64 {
entry:
    ret %nope
}
)",
                         d);
    EXPECT_EQ(m, nullptr);
    EXPECT_TRUE(d.hasErrors());
}

TEST(Parser, ReportsUnknownBuiltin)
{
    DiagEngine d;
    auto m = parseModule(R"(
func @main() -> void {
entry:
    call $bogus()
    ret
}
)",
                         d);
    EXPECT_EQ(m, nullptr);
    EXPECT_TRUE(d.hasErrors());
}

TEST(Parser, ForwardPhiReferenceResolves)
{
    DiagEngine d;
    auto m = parseModule(R"(
func @loop(i64 %n) -> i64 {
entry:
    br head
head:
    %0 = phi i64 [0, entry], [%1, head]
    %1 = add %0, 1
    %2 = icmp.slt %1, %n
    condbr %2, head, done
done:
    ret %1
}
)",
                         d);
    ASSERT_TRUE(m) << d.str();
    DiagEngine dv;
    EXPECT_TRUE(verifyModule(*m, dv)) << dv.str();
}

TEST(Printer, BuilderOutputParses)
{
    Module m("built");
    Global *g = m.addGlobal("state", Type::I64, 2);
    Function *f = m.addFunction("main", Type::I64);
    BasicBlock *entry = f->addBlock("entry");
    IRBuilder b(&m);
    b.setInsertAtEnd(entry);
    Instruction *addr = b.ptrAdd(m.getGlobalAddr(g), m.getInt(1));
    Instruction *v = b.load(Type::I64, addr);
    b.callBuiltin(Builtin::PrintI64, {v});
    b.ret(v);

    std::string text = printModule(m);
    DiagEngine d;
    auto parsed = parseModule(text, d);
    ASSERT_TRUE(parsed) << d.str() << text;
    EXPECT_EQ(printModule(*parsed), text);
}

} // namespace
} // namespace conair::ir
