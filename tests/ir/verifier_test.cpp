#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/verifier.h"

namespace conair::ir {
namespace {

/** Builds `func @f() -> i64 { entry: ... }` and hands back the builder. */
struct Fixture
{
    Module m;
    Function *f;
    BasicBlock *entry;
    IRBuilder b{&m};

    Fixture()
    {
        f = m.addFunction("f", Type::I64);
        entry = f->addBlock("entry");
        b.setInsertAtEnd(entry);
    }

    bool
    verify()
    {
        DiagEngine d;
        return verifyModule(m, d);
    }
};

TEST(Verifier, AcceptsWellFormed)
{
    Fixture fx;
    fx.b.ret(fx.m.getInt(0));
    EXPECT_TRUE(fx.verify());
}

TEST(Verifier, RejectsMissingTerminator)
{
    Fixture fx;
    fx.b.binop(Opcode::Add, fx.m.getInt(1), fx.m.getInt(2));
    EXPECT_FALSE(fx.verify());
}

TEST(Verifier, RejectsMidBlockTerminator)
{
    Fixture fx;
    fx.b.ret(fx.m.getInt(0));
    fx.b.binop(Opcode::Add, fx.m.getInt(1), fx.m.getInt(2));
    EXPECT_FALSE(fx.verify());
}

TEST(Verifier, RejectsTypeMismatch)
{
    Fixture fx;
    Instruction *x = fx.b.binop(Opcode::FAdd, fx.m.getFloat(1),
                                fx.m.getFloat(2));
    // i64 add fed a f64 operand.
    auto bad = std::make_unique<Instruction>(Opcode::Add, Type::I64);
    bad->addOperand(x);
    bad->addOperand(fx.m.getInt(1));
    Instruction *badp = fx.entry->append(std::move(bad));
    fx.b.ret(badp);
    EXPECT_FALSE(fx.verify());
}

TEST(Verifier, RejectsWrongReturnType)
{
    Fixture fx;
    auto r = std::make_unique<Instruction>(Opcode::Ret, Type::Void);
    r->addOperand(fx.m.getFloat(1.0));
    fx.entry->append(std::move(r));
    EXPECT_FALSE(fx.verify());
}

TEST(Verifier, RejectsPhiNotMatchingPreds)
{
    Fixture fx;
    BasicBlock *next = fx.f->addBlock("next");
    fx.b.br(next);
    fx.b.setInsertAtEnd(next);
    Instruction *phi = fx.b.phi(Type::I64);
    // Claims an incoming edge from "next" itself, which is not a pred.
    phi->addIncoming(fx.m.getInt(1), next);
    fx.b.ret(phi);
    EXPECT_FALSE(fx.verify());
}

TEST(Verifier, RejectsPhiAfterNonPhi)
{
    Fixture fx;
    BasicBlock *next = fx.f->addBlock("next");
    fx.b.br(next);
    fx.b.setInsertAtEnd(next);
    fx.b.binop(Opcode::Add, fx.m.getInt(1), fx.m.getInt(1));
    Instruction *phi = fx.b.phi(Type::I64);
    phi->addIncoming(fx.m.getInt(1), fx.entry);
    fx.b.ret(phi);
    EXPECT_FALSE(fx.verify());
}

TEST(Verifier, RejectsBadCallArity)
{
    Fixture fx;
    Function *g = fx.m.addFunction("g", Type::I64);
    g->addArg(Type::I64, "x");
    BasicBlock *gb = g->addBlock("entry");
    IRBuilder bg(&fx.m);
    bg.setInsertAtEnd(gb);
    bg.ret(g->arg(0));

    Instruction *call = fx.b.call(g, {}); // missing argument
    fx.b.ret(call);
    EXPECT_FALSE(fx.verify());
}

TEST(Verifier, RejectsBuiltinArgType)
{
    Fixture fx;
    // malloc expects i64, given f64.
    auto call = std::make_unique<Instruction>(Opcode::Call, Type::Ptr);
    call->setBuiltin(Builtin::Malloc);
    call->addOperand(fx.m.getFloat(8.0));
    fx.entry->append(std::move(call));
    fx.b.ret(fx.m.getInt(0));
    EXPECT_FALSE(fx.verify());
}

TEST(Verifier, RejectsCondBrOnInt)
{
    Fixture fx;
    BasicBlock *a = fx.f->addBlock("a");
    BasicBlock *c = fx.f->addBlock("c");
    auto br = std::make_unique<Instruction>(Opcode::CondBr, Type::Void);
    br->addOperand(fx.m.getInt(1)); // i64, not i1
    br->addBlockOp(a);
    br->addBlockOp(c);
    fx.entry->append(std::move(br));
    IRBuilder b2(&fx.m);
    b2.setInsertAtEnd(a);
    b2.ret(fx.m.getInt(0));
    b2.setInsertAtEnd(c);
    b2.ret(fx.m.getInt(0));
    EXPECT_FALSE(fx.verify());
}

TEST(Verifier, RejectsEmptyFunction)
{
    Module m;
    m.addFunction("f", Type::Void);
    DiagEngine d;
    EXPECT_FALSE(verifyModule(m, d));
}

TEST(Verifier, RejectsNonPositiveAlloca)
{
    Fixture fx;
    Instruction *a = fx.b.alloca_(0);
    (void)a;
    fx.b.ret(fx.m.getInt(0));
    EXPECT_FALSE(fx.verify());
}

TEST(Verifier, AcceptsPtrEqualityCompare)
{
    Fixture fx;
    Instruction *p = fx.b.alloca_(1);
    Instruction *c = fx.b.cmp(Opcode::ICmpEq, p, fx.m.getNull());
    fx.b.ret(fx.b.zext(c));
    EXPECT_TRUE(fx.verify());
}

TEST(Verifier, RejectsPtrOrderedCompare)
{
    Fixture fx;
    Instruction *p = fx.b.alloca_(1);
    auto bad = std::make_unique<Instruction>(Opcode::ICmpSlt, Type::I1);
    bad->addOperand(p);
    bad->addOperand(fx.m.getNull());
    Instruction *c = fx.entry->append(std::move(bad));
    fx.b.ret(fx.b.zext(c));
    EXPECT_FALSE(fx.verify());
}

} // namespace
} // namespace conair::ir
