#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/module.h"
#include "ir/printer.h"

namespace conair::ir {
namespace {

TEST(Module, ConstantsAreUniquedWhereExpected)
{
    Module m;
    EXPECT_EQ(m.getInt(7), m.getInt(7));
    EXPECT_NE(m.getInt(7), m.getInt(8));
    EXPECT_EQ(m.getNull(), m.getNull());
    EXPECT_EQ(m.getBool(true), m.getBool(true));
    EXPECT_NE(static_cast<Value *>(m.getBool(false)),
              static_cast<Value *>(m.getInt(0)));
}

TEST(Module, InternedStringsShareIds)
{
    Module m;
    ConstStr *a = m.getStr("hello");
    ConstStr *b = m.getStr("hello");
    ConstStr *c = m.getStr("other");
    EXPECT_EQ(a->id(), b->id());
    EXPECT_NE(a->id(), c->id());
    EXPECT_EQ(m.strAt(a->id()), "hello");
}

TEST(Module, GlobalLookup)
{
    Module m;
    Global *g = m.addGlobal("flag", Type::I64, 1);
    EXPECT_EQ(m.findGlobal("flag"), g);
    EXPECT_EQ(m.findGlobal("missing"), nullptr);
    EXPECT_FALSE(g->isMutex());
    Global *mu = m.addGlobal("lock", Type::I64, 1, true);
    EXPECT_TRUE(mu->isMutex());
}

TEST(UseList, TracksOperands)
{
    Module m;
    Function *f = m.addFunction("f", Type::I64);
    BasicBlock *bb = f->addBlock("entry");
    IRBuilder b(&m);
    b.setInsertAtEnd(bb);
    Instruction *x = b.binop(Opcode::Add, m.getInt(1), m.getInt(2));
    Instruction *y = b.binop(Opcode::Mul, x, x);
    EXPECT_EQ(x->uses().size(), 2u);
    EXPECT_EQ(x->uses()[0].user, y);

    Instruction *z = b.binop(Opcode::Sub, m.getInt(0), m.getInt(0));
    x->replaceAllUsesWith(z);
    EXPECT_TRUE(x->uses().empty());
    EXPECT_EQ(y->operand(0), z);
    EXPECT_EQ(y->operand(1), z);
    EXPECT_EQ(z->uses().size(), 2u);
    b.ret(y);
}

TEST(BasicBlock, InsertAndRemove)
{
    Module m;
    Function *f = m.addFunction("f", Type::Void);
    BasicBlock *bb = f->addBlock("entry");
    IRBuilder b(&m);
    b.setInsertAtEnd(bb);
    Instruction *first = b.binop(Opcode::Add, m.getInt(1), m.getInt(1));
    Instruction *last = b.ret();
    EXPECT_EQ(bb->size(), 2u);
    EXPECT_EQ(bb->terminator(), last);

    b.setInsertBefore(last);
    Instruction *mid = b.binop(Opcode::Mul, m.getInt(2), m.getInt(2));
    EXPECT_EQ(bb->next(first), mid);
    EXPECT_EQ(bb->prev(last), mid);
    EXPECT_EQ(bb->next(last), nullptr);
    EXPECT_EQ(bb->prev(first), nullptr);

    bb->erase(mid);
    EXPECT_EQ(bb->size(), 2u);
    EXPECT_EQ(bb->next(first), last);
}

TEST(Instruction, SuccessorsFollowTerminator)
{
    Module m;
    Function *f = m.addFunction("f", Type::Void);
    BasicBlock *a = f->addBlock("a");
    BasicBlock *t = f->addBlock("t");
    BasicBlock *e = f->addBlock("e");
    IRBuilder b(&m);
    b.setInsertAtEnd(a);
    Instruction *cond = b.cmp(Opcode::ICmpEq, m.getInt(1), m.getInt(1));
    b.condBr(cond, t, e);
    b.setInsertAtEnd(t);
    b.ret();
    b.setInsertAtEnd(e);
    b.ret();

    auto succs = a->successors();
    ASSERT_EQ(succs.size(), 2u);
    EXPECT_EQ(succs[0], t);
    EXPECT_EQ(succs[1], e);
    EXPECT_TRUE(t->successors().empty());

    auto preds = f->predecessorList();
    for (auto &[bb, p] : preds) {
        if (bb == t || bb == e) {
            ASSERT_EQ(p.size(), 1u);
            EXPECT_EQ(p[0], a);
        }
        if (bb == a)
            EXPECT_TRUE(p.empty());
    }
}

TEST(Function, FreshBlockNamesAreUnique)
{
    Module m;
    Function *f = m.addFunction("f", Type::Void);
    BasicBlock *a = f->addBlock("bb");
    BasicBlock *b2 = f->addBlock("bb");
    EXPECT_NE(a->name(), b2->name());
}

TEST(Phi, RemoveIncomingCompacts)
{
    Module m;
    Function *f = m.addFunction("f", Type::I64);
    BasicBlock *a = f->addBlock("a");
    BasicBlock *b2 = f->addBlock("b");
    BasicBlock *c = f->addBlock("c");
    IRBuilder b(&m);
    b.setInsertAtEnd(a);
    b.br(c);
    b.setInsertAtEnd(b2);
    b.br(c);
    b.setInsertAtEnd(c);
    Instruction *phi = b.phi(Type::I64);
    phi->addIncoming(m.getInt(1), a);
    phi->addIncoming(m.getInt(2), b2);
    b.ret(phi);

    phi->removeIncoming(a);
    ASSERT_EQ(phi->numOperands(), 1u);
    EXPECT_EQ(phi->incomingBlock(0), b2);
    EXPECT_EQ(static_cast<ConstInt *>(phi->operand(0))->value(), 2);
}

TEST(Builtins, NamesRoundTrip)
{
    for (auto b : {Builtin::ThreadCreate, Builtin::MutexTimedLock,
                   Builtin::CaCheckpoint, Builtin::CaPtrCheck,
                   Builtin::PrintStr, Builtin::AssertFail}) {
        EXPECT_EQ(builtinFromName(builtinName(b)), b);
    }
    EXPECT_EQ(builtinFromName("no_such_builtin"), Builtin::None);
}

TEST(Opcodes, NamesRoundTrip)
{
    for (auto op : {Opcode::Alloca, Opcode::Load, Opcode::Store,
                    Opcode::FCmpGe, Opcode::Zext, Opcode::SchedHint,
                    Opcode::Unreachable}) {
        Opcode back;
        ASSERT_TRUE(opcodeFromName(opcodeName(op), back));
        EXPECT_EQ(back, op);
    }
}

} // namespace
} // namespace conair::ir
