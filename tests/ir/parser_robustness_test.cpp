/**
 * @file
 * Negative/robustness tests for the MiniIR text parser: malformed
 * inputs must produce diagnostics, never crashes or invalid modules.
 */
#include <gtest/gtest.h>

#include "ir/parser.h"
#include "ir/verifier.h"

namespace conair::ir {
namespace {

void
expectRejected(const std::string &text)
{
    DiagEngine d;
    auto m = parseModule(text, d);
    EXPECT_EQ(m, nullptr) << text;
    EXPECT_TRUE(d.hasErrors()) << text;
}

TEST(ParserRobustness, EmptyInputIsAValidEmptyModule)
{
    DiagEngine d;
    auto m = parseModule("", d);
    ASSERT_NE(m, nullptr);
    EXPECT_TRUE(m->functions().empty());
}

TEST(ParserRobustness, RejectsGarbage)
{
    expectRejected("garbage tokens here");
    expectRejected("func");
    expectRejected("func @f");
    expectRejected("func @f() -> i64");
    expectRejected("global @g");
    expectRejected("global @g : banana[1]");
    expectRejected("mutex");
}

TEST(ParserRobustness, RejectsBodyProblems)
{
    expectRejected(R"(
func @f() -> i64 {
entry:
    %0 = frobnicate 1, 2
    ret %0
}
)");
    expectRejected(R"(
func @f() -> i64 {
    ret 0
}
)"); // instruction before any label
    expectRejected(R"(
func @f() -> i64 {
entry:
    br nowhere
}
)");
    expectRejected(R"(
func @f() -> i64 {
entry:
    %0 = call @missing(1)
    ret %0
}
)");
    expectRejected(R"(
func @f() -> i64 {
entry:
    %0 = load i64, @missing_global
    ret %0
}
)");
}

TEST(ParserRobustness, RejectsDuplicateDefinitions)
{
    expectRejected(R"(
func @f() -> i64 {
entry:
    ret 0
}
func @f() -> i64 {
entry:
    ret 1
}
)");
    expectRejected(R"(
global @g : i64[1]
global @g : i64[1]
)");
    expectRejected("global @g : i64[0]");
}

TEST(ParserRobustness, StrayTokensAfterInstruction)
{
    expectRejected(R"(
func @f() -> i64 {
entry:
    ret 0 ]]]]
}
)");
}

TEST(ParserRobustness, TruncatedInputs)
{
    // Prefixes of a valid program: none may crash.
    const std::string program = R"(
global @g : i64[4] = [1, 2, 3, 4]

func @main() -> i64 {
entry:
    %0 = load i64, @g
    %1 = add %0, 1
    condbr true, a, b
a:
    ret %1
b:
    call $print_str("x")
    ret 0
}
)";
    for (size_t len = 0; len < program.size(); len += 7) {
        DiagEngine d;
        auto m = parseModule(program.substr(0, len), d);
        if (m) {
            DiagEngine dv;
            verifyModule(*m, dv); // must not crash either
        }
    }
    SUCCEED();
}

} // namespace
} // namespace conair::ir
