/**
 * @file
 * Validation of the ten Table 2 bug kernels: clean-run correctness,
 * failure reproduction, ConAir recovery, and semantic preservation —
 * parameterised over every application (paper §5 methodology).
 */
#include <gtest/gtest.h>

#include "apps/harness.h"

namespace conair::apps {
namespace {

class AppCase : public ::testing::TestWithParam<std::string>
{
  protected:
    const AppSpec &
    app() const
    {
        const AppSpec *spec = findApp(GetParam());
        EXPECT_NE(spec, nullptr);
        return *spec;
    }
};

TEST_P(AppCase, CleanRunsAreCorrect)
{
    HardenOptions opts;
    opts.applyConAir = false;
    PreparedApp p = prepareApp(app(), opts);
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        vm::RunResult r = runClean(p, seed);
        ASSERT_EQ(r.outcome, vm::Outcome::Success)
            << "seed " << seed << ": " << r.failureMsg;
        EXPECT_EQ(r.output, app().expectedOutput) << "seed " << seed;
        EXPECT_EQ(r.exitCode, app().expectedExit) << "seed " << seed;
    }
}

TEST_P(AppCase, BuggyScheduleReproducesTheFailure)
{
    HardenOptions opts;
    opts.applyConAir = false;
    PreparedApp p = prepareApp(app(), opts);
    unsigned reproduced = 0;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        vm::RunResult r = runBuggy(p, seed);
        reproduced += r.outcome == app().expectedFailure;
    }
    // §5: "the software fails with almost 100% probability".
    EXPECT_GE(reproduced, 9u) << "failure did not reproduce reliably";
}

TEST_P(AppCase, ConAirRecoversTheFailure)
{
    PreparedApp p = prepareApp(app(), HardenOptions{});
    RecoveryTrial trial = runRecoveryTrial(p, 20);
    EXPECT_TRUE(trial.allCorrect())
        << trial.correct << "/" << trial.runs << " correct, "
        << trial.failures << " failures, " << trial.wrongOutput
        << " wrong outputs, " << trial.otherBad << " other";
    EXPECT_GT(trial.totalRollbacks, 0u);
}

TEST_P(AppCase, HardenedCleanRunsPreserveSemantics)
{
    HardenOptions plain;
    plain.applyConAir = false;
    PreparedApp base = prepareApp(app(), plain);
    PreparedApp hard = prepareApp(app(), HardenOptions{});
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        vm::RunResult rb = runClean(base, seed);
        vm::RunResult rh = runClean(hard, seed);
        ASSERT_EQ(rb.outcome, vm::Outcome::Success) << rb.failureMsg;
        ASSERT_EQ(rh.outcome, vm::Outcome::Success) << rh.failureMsg;
        EXPECT_EQ(rb.output, rh.output) << "seed " << seed;
        EXPECT_EQ(rb.exitCode, rh.exitCode) << "seed " << seed;
    }
}

TEST_P(AppCase, SurvivalModeFindsSites)
{
    PreparedApp p = prepareApp(app(), HardenOptions{});
    EXPECT_GT(p.report.identified.total(), 0u);
    EXPECT_GT(p.report.staticReexecPoints, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppCase,
    ::testing::Values("FFT", "HawkNL", "HTTrack", "MozillaXP",
                      "MozillaJS", "MySQL1", "MySQL2", "Transmission",
                      "SQLite", "ZSNES"),
    [](const auto &info) { return info.param; });

TEST(AppsRegistry, HasAllTenTable2Rows)
{
    EXPECT_EQ(allApps().size(), 10u);
    EXPECT_EQ(allApps().front().name, "FFT");
    EXPECT_EQ(allApps().back().name, "ZSNES");
    EXPECT_EQ(findApp("nope"), nullptr);
}

TEST(AppsInterproc, InterprocAppsNeedSection43)
{
    for (const char *name : {"MozillaXP", "Transmission"}) {
        const AppSpec *app = findApp(name);
        ASSERT_TRUE(app->needsInterproc);
        HardenOptions opts;
        opts.conair.interproc = false;
        PreparedApp p = prepareApp(*app, opts);
        vm::RunResult r = runBuggy(p, 1);
        EXPECT_EQ(r.outcome, app->expectedFailure)
            << name << " should not recover without interprocedural "
            << "reexecution";
    }
}

TEST(AppsOracle, WrongOutputAppsFailSilentlyWithoutOracle)
{
    for (const char *name : {"FFT", "MySQL1"}) {
        const AppSpec *app = findApp(name);
        ASSERT_TRUE(app->needsOracle);
        HardenOptions opts;
        opts.stripOracles = true;
        PreparedApp p = prepareApp(*app, opts);
        vm::RunResult r = runBuggy(p, 1);
        // No oracle: the run "succeeds" with wrong output — the paper's
        // conditional-recovery caveat (Table 3 footnote).
        EXPECT_EQ(r.outcome, vm::Outcome::Success) << name;
        EXPECT_NE(r.output, app->expectedOutput) << name;
    }
}

TEST(AppsOverhead, SurvivalModeOverheadIsSmall)
{
    // Table 3's headline: < 1% run-time overhead.  The kernels execute
    // tens of thousands of instructions (vs the paper's billions), so
    // each checkpoint weighs proportionally more; 1.5% is the bound the
    // miniatures must stay under (measured values are ~0.0-1.0%).
    for (const AppSpec &app : allApps()) {
        double oh = measureOverhead(app, HardenOptions{}, 5);
        EXPECT_LT(oh, 0.015) << app.name << " overhead " << oh;
        EXPECT_GE(oh, 0.0) << app.name;
    }
}

} // namespace
} // namespace conair::apps
