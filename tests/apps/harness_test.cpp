/**
 * @file
 * Tests of the experiment harness itself: failure-tag observation (the
 * fix-mode input), oracle stripping, and trial accounting.
 */
#include <gtest/gtest.h>

#include "apps/harness.h"

namespace conair::apps {
namespace {

TEST(Harness, ObservedTagsPointAtRealSites)
{
    // Assertion failure: the tag names the assert.
    auto tags = observedFailureTags(*findApp("ZSNES"));
    ASSERT_EQ(tags.size(), 1u);
    EXPECT_EQ(tags[0].rfind("assert.sound_thread.", 0), 0u) << tags[0];

    // Segfault: the tag names the dereference.
    tags = observedFailureTags(*findApp("HTTrack"));
    ASSERT_EQ(tags.size(), 1u);
    EXPECT_EQ(tags[0].rfind("deref.fetch_page.", 0), 0u) << tags[0];

    // Hang: one tag per blocked lock site (both deadlock parties).
    tags = observedFailureTags(*findApp("HawkNL"));
    ASSERT_EQ(tags.size(), 2u);
    for (const std::string &t : tags)
        EXPECT_EQ(t.rfind("lock.nl_", 0), 0u) << t;
}

TEST(Harness, StripOraclesRemovesOnlyOracleLines)
{
    const AppSpec *app = findApp("MySQL1");
    HardenOptions strip;
    strip.applyConAir = false;
    strip.stripOracles = true;
    PreparedApp p = prepareApp(*app, strip);
    // The stripped program still runs correctly on clean schedules.
    vm::RunResult r = runClean(p, 1);
    EXPECT_EQ(r.outcome, vm::Outcome::Success) << r.failureMsg;
    EXPECT_EQ(r.output, app->expectedOutput);
}

TEST(Harness, RecoveryTrialAccountsEveryRun)
{
    const AppSpec *app = findApp("MySQL2");
    PreparedApp hardened = prepareApp(*app, HardenOptions{});
    RecoveryTrial t = runRecoveryTrial(hardened, 12);
    EXPECT_EQ(t.runs, 12u);
    EXPECT_EQ(t.correct + t.failures + t.wrongOutput + t.otherBad,
              t.runs);
    EXPECT_TRUE(t.allCorrect());
    EXPECT_GT(t.recoveryMicrosAvg, 0.0);
    EXPECT_GE(t.recoveryMicrosMax, t.recoveryMicrosAvg);

    HardenOptions plain;
    plain.applyConAir = false;
    PreparedApp original = prepareApp(*app, plain);
    RecoveryTrial o = runRecoveryTrial(original, 12);
    EXPECT_FALSE(o.allCorrect());
    EXPECT_EQ(o.failures, 12u);
    EXPECT_EQ(o.totalRollbacks, 0u);
}

TEST(Harness, RunIsCorrectChecksAllThreeDimensions)
{
    const AppSpec *app = findApp("FFT");
    vm::RunResult r;
    r.outcome = vm::Outcome::Success;
    r.exitCode = app->expectedExit;
    r.output = app->expectedOutput;
    EXPECT_TRUE(runIsCorrect(*app, r));
    r.output = "wrong";
    EXPECT_FALSE(runIsCorrect(*app, r));
    r.output = app->expectedOutput;
    r.exitCode = app->expectedExit + 1;
    EXPECT_FALSE(runIsCorrect(*app, r));
    r.exitCode = app->expectedExit;
    r.outcome = vm::Outcome::Hang;
    EXPECT_FALSE(runIsCorrect(*app, r));
}

TEST(Harness, MeasureOverheadIsNonNegativeAndStable)
{
    const AppSpec *app = findApp("SQLite");
    double a = measureOverhead(*app, HardenOptions{}, 3);
    double b = measureOverhead(*app, HardenOptions{}, 3);
    EXPECT_GE(a, 0.0);
    EXPECT_DOUBLE_EQ(a, b); // deterministic VM => deterministic number
}

} // namespace
} // namespace conair::apps
