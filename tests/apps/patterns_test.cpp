/**
 * @file
 * Fig 2 pattern verdicts as tests (the bench prints the same data):
 * idempotent reexecution recovers WAW and RAR atomicity violations and
 * provably cannot recover RAW and WAR (§2.2).
 */
#include <gtest/gtest.h>

#include "apps/patterns.h"
#include "conair/driver.h"
#include "frontend/compile.h"
#include "vm/interp.h"

namespace conair::apps {
namespace {

class Fig2 : public ::testing::TestWithParam<std::string>
{
  protected:
    const PatternSpec &
    pattern() const
    {
        for (const PatternSpec &p : fig2Patterns())
            if (p.name == GetParam())
                return p;
        ADD_FAILURE() << "unknown pattern";
        static PatternSpec dummy;
        return dummy;
    }

    static std::unique_ptr<ir::Module>
    compile(const std::string &src)
    {
        DiagEngine d;
        auto m = fe::compileMiniC(src, d);
        EXPECT_TRUE(m) << d.str();
        return m;
    }
};

TEST_P(Fig2, OriginalFailsAsDescribed)
{
    const PatternSpec &p = pattern();
    auto m = compile(p.source);
    vm::VmConfig cfg = p.buggyConfig;
    cfg.seed = 1;
    EXPECT_EQ(vm::runProgram(*m, cfg).outcome, p.expectedFailure);
}

TEST_P(Fig2, RecoverabilityMatchesSection22)
{
    const PatternSpec &p = pattern();
    unsigned ok = 0;
    const unsigned runs = 10;
    for (unsigned seed = 1; seed <= runs; ++seed) {
        auto m = compile(p.source);
        ca::applyConAir(*m);
        vm::VmConfig cfg = p.buggyConfig;
        cfg.seed = seed;
        ok += vm::runProgram(*m, cfg).outcome == vm::Outcome::Success;
    }
    if (p.recoverableByConAir)
        EXPECT_EQ(ok, runs) << p.name << " should always recover";
    else
        EXPECT_EQ(ok, 0u) << p.name << " should never recover";
}

TEST_P(Fig2, UnrecoverablePatternsSurfaceTheOriginalFailure)
{
    const PatternSpec &p = pattern();
    if (p.recoverableByConAir)
        GTEST_SKIP() << "only meaningful for unrecoverable patterns";
    auto m = compile(p.source);
    ca::applyConAir(*m);
    vm::VmConfig cfg = p.buggyConfig;
    cfg.seed = 1;
    vm::RunResult r = vm::runProgram(*m, cfg);
    // After the retry budget exhausts, the failure must be the
    // original one (correctness: ConAir never invents new outcomes).
    EXPECT_EQ(r.outcome, p.expectedFailure);
    EXPECT_GT(r.stats.rollbacks, 0u); // it did try
}

INSTANTIATE_TEST_SUITE_P(Patterns, Fig2,
                         ::testing::Values("WAW", "RAW", "RAR", "WAR"),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace conair::apps
