/**
 * @file
 * Fix mode (paper §3.1.2): generating a safe temporary patch for a
 * failure whose *root cause* is unknown.
 *
 * Workflow a developer would follow:
 *   1. a user reports a crash in the MozillaXP-style component code,
 *   2. one failing run yields the failure site (the crash location),
 *   3. ConAir fix mode hardens exactly that site — here requiring the
 *      §4.3 inter-procedural reexecution point in the caller,
 *   4. the "patched" build survives the schedule that crashed before.
 *
 * The example prints the transformed functions so the inserted
 * checkpoint (caller) and retry loop (callee) are visible — the code a
 * temporary patch would ship.
 *
 * Build & run:  ./build/examples/fixmode_patch
 */
#include <cstdio>

#include "apps/harness.h"
#include "ir/printer.h"

using namespace conair;
using namespace conair::apps;

int
main()
{
    const AppSpec *app = findApp("MozillaXP");

    // Step 1-2: reproduce the reported failure once; the run hands us
    // the site a developer would read off the crash report.
    std::vector<std::string> tags = observedFailureTags(*app);
    std::printf("observed failure site(s):");
    for (const std::string &t : tags)
        std::printf(" %s", t.c_str());
    std::printf("\n\n");

    // Step 3: fix mode — harden only those sites.
    HardenOptions fix;
    fix.conair.mode = ca::Mode::Fix;
    fix.conair.fixTags = tags;
    PreparedApp patched = prepareApp(*app, fix);

    for (const ca::SiteReport &site : patched.report.sites) {
        std::printf("site %-24s recoverable=%s interprocedural=%s\n",
                    site.tag.c_str(), site.recoverable ? "yes" : "no",
                    site.interproc ? "yes" : "no");
    }
    std::printf("reexecution points inserted: %u\n\n",
                patched.report.staticReexecPoints);

    std::printf("--- patched callee (retry loop before the deref) "
                "---\n%s\n",
                ir::printFunction(
                    *patched.module->findFunction("get_state"))
                    .c_str());
    std::printf("--- patched caller (checkpoint hoisted here by "
                "interprocedural analysis) ---\n%s\n",
                ir::printFunction(*patched.module->findFunction("get"))
                    .c_str());

    // Step 4: the crash schedule no longer kills the program.
    vm::RunResult run = runBuggy(patched, 1);
    std::printf("patched run under the crashing schedule: %s\n",
                vm::outcomeName(run.outcome));
    std::printf("output: %s", run.output.c_str());
    bool ok = runIsCorrect(*app, run);
    std::printf("correct: %s\n", ok ? "yes" : "no");
    return ok ? 0 : 1;
}
