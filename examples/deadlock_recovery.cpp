/**
 * @file
 * Deadlock recovery walkthrough (paper Fig 11 / §4.1 / §4.2) on the
 * HawkNL kernel:
 *
 *  - the §4.2 optimizer keeps recovery code only at the acquisition
 *    whose region re-acquires another lock (nlShutdown's), reverting
 *    the hopeless one (nlClose's) to a plain lock;
 *  - the surviving site becomes a timed lock; on timeout the runtime
 *    backs off, *releases the region's locks* (compensation) and rolls
 *    back, letting the peer finish.
 *
 * Build & run:  ./build/examples/deadlock_recovery
 */
#include <cstdio>

#include "apps/harness.h"

using namespace conair;
using namespace conair::apps;

int
main()
{
    const AppSpec *app = findApp("HawkNL");
    PreparedApp hardened = prepareApp(*app, HardenOptions{});

    std::printf("--- §4.2 recoverability verdicts for the lock "
                "sites ---\n");
    for (const ca::SiteReport &site : hardened.report.sites) {
        if (site.kind != ca::FailureKind::Deadlock)
            continue;
        std::printf("  %-22s -> %s\n", site.tag.c_str(),
                    site.recoverable
                        ? "timed lock + rollback (recoverable)"
                        : "reverted to plain lock (no lock in "
                          "region)");
    }
    std::printf("locks converted: %u, compensation hooks: %u\n\n",
                hardened.report.transform.locksConverted,
                hardened.report.transform.compensationHooks);

    std::printf("--- original vs hardened under the ABBA schedule "
                "---\n");
    HardenOptions plain;
    plain.applyConAir = false;
    PreparedApp original = prepareApp(*app, plain);
    vm::RunResult dead = runBuggy(original, 1);
    std::printf("original: %s (%s)\n", vm::outcomeName(dead.outcome),
                dead.failureMsg.c_str());

    vm::RunResult ok = runBuggy(hardened, 1);
    std::printf("hardened: %s, output: %s", vm::outcomeName(ok.outcome),
                ok.output.c_str());
    std::printf("  lock timeouts survived via backoff+rollback: %llu\n",
                (unsigned long long)ok.stats.rollbacks);
    std::printf("  locks released by compensation: %llu\n",
                (unsigned long long)ok.stats.compensationUnlocks);
    for (const vm::RecoveryEvent &ev : ok.stats.recoveries)
        std::printf("  deadlock broken at %s after %llu retries "
                    "(%.1f virtual us)\n",
                    ev.siteTag.c_str(), (unsigned long long)ev.retries,
                    ev.micros());
    return ok.outcome == vm::Outcome::Success ? 0 : 1;
}
