/**
 * @file
 * minicc — command-line driver for the whole stack: compile a MiniC
 * file, optionally harden it with ConAir, and run it on the MiniVM.
 *
 * Usage:
 *   minicc [options] file.mc
 *   minicc [options] --app NAME
 *     --conair             harden with survival-mode ConAir
 *     --fix TAG            harden only the site TAG (repeatable)
 *     --fix                (bare, with --app) synthesize a *source
 *                          fix* instead of hardening: diagnose one
 *                          scripted failing run postmortem, derive
 *                          the verdict-matched patch (wait loop /
 *                          lock guard / lock reorder), and print the
 *                          patch report; --print-ir adds the patched
 *                          module.  See docs/FIXING.md.
 *     --no-interproc       disable §4.3 inter-procedural recovery
 *     --no-optimize        disable the §4.2 optimizer
 *     --print-ir           dump the (possibly transformed) MiniIR
 *     --report             print the ConAir pipeline report
 *     --seed N             scheduler seed (default 1)
 *     --quantum N          preemption quantum (default 50)
 *     --delay HINT:TICKS   stall hint(HINT) for TICKS (repeatable)
 *     --max-steps N        instruction budget
 *     --app NAME           run a bundled bug kernel (FFT, MySQL1, ...)
 *                          under its failure-forcing schedule instead
 *                          of compiling a file; implies --conair
 *     --trace FILE         write a Chrome trace_event JSON of the run
 *                          (load in Perfetto; see docs/OBSERVABILITY.md)
 *     --metrics FILE       write the run's metrics registry JSON
 *     --profile [FILE]     attach the recovery-cost phase profiler
 *                          (passive — the run is tick-identical with
 *                          or without it) and print the hot-phase
 *                          table to stderr; with FILE, also write the
 *                          speedscope JSON there and folded flamegraph
 *                          stacks next to it (.folded extension).
 *                          With --serve, adds a GET /profile endpoint.
 *                          See docs/OBSERVABILITY.md, "Profiling".
 *     --timeline           print the recovery timeline to stderr
 *     --diagnose           run in diagnosis recording mode and print a
 *                          postmortem root-cause report (racy pair,
 *                          interleaving diagram, verdict) to stderr
 *     --serve PORT         after the run, expose its telemetry on
 *                          127.0.0.1:PORT — GET /metrics (Prometheus
 *                          text), /status (run summary JSON),
 *                          /coverage (interleaving-coverage edge dump)
 *                          — then shut down after --serve-seconds.
 *                          PORT 0 binds an ephemeral port (printed to
 *                          stderr).  Implies diagnosis-grade recording.
 *     --serve-seconds N    how long --serve stays up (default 5)
 *
 * Example (examples/data/racy_counter.mc ships with the repo):
 *   minicc --conair --delay 1:5000 examples/data/racy_counter.mc
 *   minicc --app MySQL1 --trace trace.json --timeline
 *   minicc --app ZSNES --diagnose
 *   minicc --app ZSNES --fix --print-ir
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "apps/harness.h"
#include "conair/driver.h"
#include "fix/fix.h"
#include "fix/report.h"
#include "frontend/compile.h"
#include "ir/printer.h"
#include "obs/coverage/coverage.h"
#include "obs/metrics.h"
#include "obs/postmortem/diagnosis.h"
#include "obs/profile/profile_export.h"
#include "obs/serve/http_server.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "support/json.h"
#include "support/str.h"
#include "vm/interp.h"

using namespace conair;

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: minicc [--conair] [--fix [TAG]] [--print-ir] "
                 "[--report]\n"
                 "              [--seed N] [--quantum N] "
                 "[--delay HINT:TICKS]\n"
                 "              [--no-interproc] [--no-optimize] "
                 "[--max-steps N]\n"
                 "              [--trace FILE] [--metrics FILE] "
                 "[--profile [FILE]]\n"
                 "              [--timeline] [--diagnose]\n"
                 "              [--serve PORT [--serve-seconds N]]\n"
                 "              file.mc | --app NAME\n");
}

bool
writeArtifact(const std::string &path, const std::string &content,
              const char *what)
{
    std::ofstream f(path);
    if (!f) {
        std::fprintf(stderr, "minicc: cannot write %s %s\n", what,
                     path.c_str());
        return false;
    }
    f << content;
    std::fprintf(stderr, "; wrote %s %s\n", what, path.c_str());
    return true;
}

/**
 * --serve: post-run telemetry exposition.  The run is already done —
 * the handlers render snapshots of its recorder fold and metrics
 * registry, so serving cannot perturb anything.  Blocks for
 * @p seconds, then shuts the server down.
 */
int
serveRunTelemetry(unsigned port, unsigned seconds,
                  const std::string &name, const vm::RunResult &run,
                  const obs::FlightRecorder &recorder,
                  const obs::MetricsRegistry &metrics,
                  const obs::prof::ProfileDoc *profile)
{
    obs::cov::CoverageFold cov = obs::cov::foldCoverage(recorder);

    std::string prom = metrics.toPrometheusText();
    auto gauge = [&prom](const char *n, const char *help, uint64_t v) {
        prom += strfmt("# HELP %s %s\n# TYPE %s gauge\n%s %llu\n", n,
                       help, n, n, (unsigned long long)v);
    };
    gauge("conair_run_steps", "Instructions the run executed.",
          run.stats.steps);
    gauge("conair_run_rollbacks", "ConAir rollbacks during the run.",
          run.stats.rollbacks);
    gauge("conair_coverage_distinct_edges",
          "Distinct interleaving-coverage edges in the run's trace.",
          cov.edges.size());

    JsonWriter sw(2);
    sw.beginObject();
    sw.key("run").beginObject();
    sw.key("program").value(name);
    sw.key("outcome").value(vm::outcomeName(run.outcome));
    sw.key("exit_code").value(int64_t(run.exitCode));
    sw.key("steps").value(run.stats.steps);
    sw.key("clock").value(run.clock);
    sw.key("rollbacks").value(run.stats.rollbacks);
    sw.key("recoveries").value(uint64_t(run.stats.recoveries.size()));
    sw.endObject();
    sw.key("coverage").beginObject();
    sw.key("distinct_edges").value(uint64_t(cov.edges.size()));
    sw.key("by_kind").beginObject();
    for (size_t k = 0; k < obs::cov::kEdgeKindCount; ++k)
        sw.key(obs::cov::edgeKindName(obs::cov::EdgeKind(k)))
            .value(cov.perKind[k]);
    sw.endObject();
    sw.endObject();
    sw.endObject();
    std::string status = sw.str() + "\n";

    JsonWriter cw(2);
    cw.beginObject();
    cw.key("distinct_edges").value(uint64_t(cov.edges.size()));
    cw.key("digest").value(
        strfmt("%016llx",
               (unsigned long long)obs::cov::coverageDigest(cov.edges)));
    cw.key("edges").beginArray();
    for (const obs::cov::Edge &e : cov.edges) {
        cw.beginObject();
        cw.key("key").value(
            strfmt("%016llx", (unsigned long long)e.key));
        cw.key("kind").value(obs::cov::edgeKindName(e.kind));
        cw.key("from").value(
            strfmt("%016llx", (unsigned long long)e.from));
        cw.key("to").value(strfmt("%016llx", (unsigned long long)e.to));
        cw.endObject();
    }
    cw.endArray();
    cw.endObject();
    std::string coverage = cw.str() + "\n";

    obs::serve::HttpServer server;
    server.route("/metrics", [prom, &server] {
        obs::serve::HttpResponse r;
        r.contentType = "text/plain; version=0.0.4; charset=utf-8";
        // The run's metrics plus the server's own request counters —
        // the telemetry plane monitors itself.
        r.body = prom + server.prometheusCounters();
        return r;
    });
    server.route("/status", [status] {
        obs::serve::HttpResponse r;
        r.contentType = "application/json";
        r.body = status;
        return r;
    });
    server.route("/coverage", [coverage] {
        obs::serve::HttpResponse r;
        r.contentType = "application/json";
        r.body = coverage;
        return r;
    });
    std::string routes = "/metrics /status /coverage";
    if (profile) {
        std::string body =
            obs::prof::speedscopeJson(*profile, name) + "\n";
        server.route("/profile", [body] {
            obs::serve::HttpResponse r;
            r.contentType = "application/json";
            r.body = body;
            return r;
        });
        routes += " /profile";
    }
    std::string err;
    if (port > 65535 || !server.start(uint16_t(port), err)) {
        std::fprintf(stderr, "minicc: --serve: %s\n",
                     port > 65535 ? "port out of range" : err.c_str());
        return 2;
    }
    std::fprintf(stderr,
                 "; serving run telemetry on 127.0.0.1:%u for %u "
                 "second(s) (%s)\n",
                 unsigned(server.port()), seconds, routes.c_str());
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    server.stop();
    std::fprintf(stderr, "; telemetry server: %llu requests served\n",
                 (unsigned long long)server.requestsServed());
    return 0;
}

/** Folds the run's profiler into @p doc, prints the hot-phase table
 *  to stderr, and (when @p path is set) writes the speedscope JSON
 *  plus folded flamegraph stacks.  False on a write failure. */
bool
emitProfile(const obs::prof::PhaseProfiler &profiler,
            const std::string &name, const std::string &path,
            obs::prof::ProfileDoc &doc)
{
    obs::prof::ProfileAgg agg;
    agg.add(profiler);
    doc.phaseGroups.emplace_back(name, agg);
    std::fprintf(stderr, "%s",
                 obs::prof::hotPhaseTable(doc).c_str());
    if (path.empty())
        return true;
    if (!writeArtifact(path,
                       obs::prof::speedscopeJson(doc, name) + "\n",
                       "profile"))
        return false;
    std::string folded = path;
    size_t dot = folded.rfind('.');
    if (dot != std::string::npos &&
        folded.find('/', dot) == std::string::npos)
        folded.resize(dot);
    folded += ".folded";
    return writeArtifact(folded, obs::prof::foldedStacks(doc),
                         "folded stacks");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path, appName, tracePath, metricsPath;
    bool conair = false, print_ir = false, report = false;
    bool timeline = false, diagnose = false, fixSynth = false;
    bool profileOn = false;
    std::string profilePath;
    bool serve = false;
    unsigned servePort = 0, serveSeconds = 5;
    ca::ConAirOptions copts;
    vm::VmConfig cfg;
    cfg.seed = 1;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--conair") {
            conair = true;
        } else if (arg == "--fix") {
            // "--fix TAG" is ConAir's targeted hardening; a bare
            // "--fix" (next arg absent or a flag) asks for fix
            // *synthesis* — only meaningful with --app.
            if (i + 1 < argc && argv[i + 1][0] != '-') {
                conair = true;
                copts.mode = ca::Mode::Fix;
                copts.fixTags.push_back(next());
            } else {
                fixSynth = true;
            }
        } else if (arg == "--no-interproc") {
            copts.interproc = false;
        } else if (arg == "--no-optimize") {
            copts.optimize = false;
        } else if (arg == "--print-ir") {
            print_ir = true;
        } else if (arg == "--report") {
            report = true;
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--quantum") {
            cfg.quantum = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--max-steps") {
            cfg.maxSteps = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--app") {
            appName = next();
        } else if (arg == "--trace") {
            tracePath = next();
        } else if (arg == "--metrics") {
            metricsPath = next();
        } else if (arg == "--profile") {
            // The FILE operand is optional: bare --profile prints the
            // hot-phase table only.
            profileOn = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                profilePath = argv[++i];
        } else if (arg == "--timeline") {
            timeline = true;
        } else if (arg == "--diagnose") {
            diagnose = true;
        } else if (arg == "--serve") {
            serve = true;
            servePort = unsigned(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--serve-seconds") {
            serveSeconds =
                unsigned(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--delay") {
            std::string spec = next();
            size_t colon = spec.find(':');
            if (colon == std::string::npos) {
                usage();
                return 2;
            }
            cfg.delays.push_back(
                {std::strtoull(spec.c_str(), nullptr, 10),
                 std::strtoull(spec.c_str() + colon + 1, nullptr, 10)});
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 2;
        } else {
            path = arg;
        }
    }
    if (path.empty() == appName.empty()) {
        usage();
        return 2;
    }

    // Shared observability hooks for both run paths.  Diagnosis mode
    // needs a deep ring: shared accesses are ~1 event per sched tick.
    // --serve records diagnosis-grade too — shared accesses are the
    // interleaving-coverage sites its /coverage endpoint folds.
    const bool recordShared = diagnose || serve;
    obs::FlightRecorder recorder(recordShared ? 65536 : 8192);
    obs::MetricsRegistry metrics;
    obs::prof::PhaseProfiler profiler;
    obs::prof::ProfileDoc profileDoc;
    const bool observe = !tracePath.empty() || !metricsPath.empty() ||
                         timeline || diagnose || serve || profileOn;

    if (!appName.empty()) {
        // Bundled bug kernel under its failure-forcing schedule, with
        // full survival hardening — the harness path behind Tables 3-7.
        const apps::AppSpec *spec = apps::findApp(appName);
        if (!spec) {
            std::fprintf(stderr, "minicc: unknown app '%s' (have:",
                         appName.c_str());
            for (const apps::AppSpec &a : apps::allApps())
                std::fprintf(stderr, " %s", a.name.c_str());
            std::fprintf(stderr, ")\n");
            return 2;
        }
        if (fixSynth) {
            // Bare --fix: the repair loop's front half — record one
            // scripted failing run, diagnose it postmortem (preferring
            // the hardened leg, whose recovery retries let the racing
            // partner land in the trace), synthesize the patch.
            apps::CampaignApp capp = apps::prepareCampaignApp(*spec);
            auto plainRec = std::make_unique<obs::FlightRecorder>(
                4096, obs::RecorderMode::Grow);
            vm::VmConfig bcfg;
            vm::RunResult fail;
            bool gotFailure = false;
            for (uint64_t seed = 1; seed <= 8 && !gotFailure;
                 ++seed) {
                plainRec = std::make_unique<obs::FlightRecorder>(
                    4096, obs::RecorderMode::Grow);
                bcfg = spec->buggyConfig;
                bcfg.seed = seed;
                bcfg.recorder = plainRec.get();
                bcfg.recordSharedAccesses = true;
                fail = vm::runProgram(*capp.plain.module, bcfg);
                gotFailure = !apps::runIsCorrect(*spec, fail);
            }
            if (!gotFailure) {
                std::fprintf(stderr,
                             "minicc: %s: scripted buggy schedule "
                             "never failed (seeds 1..8) — nothing to "
                             "fix\n",
                             appName.c_str());
                return 1;
            }
            obs::FlightRecorder hardRec(4096,
                                        obs::RecorderMode::Grow);
            bcfg.recorder = &hardRec;
            vm::runProgram(*capp.hardened.module, bcfg);
            bool useHard =
                hardRec.totalOf(obs::EventKind::RecoveryDone) > 0 ||
                hardRec.totalOf(obs::EventKind::FailureSite) > 0;
            obs::pm::RecoveryReport rep = obs::pm::diagnose(
                useHard ? hardRec : *plainRec,
                useHard ? *capp.hardened.module : *capp.plain.module,
                appName);
            fix::FixPlan plan =
                fix::synthesizeFix(*capp.plain.module, rep);
            std::printf("%s", fix::renderPatchText(plan).c_str());
            if (print_ir && plan.ok)
                std::printf("%s",
                            ir::printModule(*plan.patched).c_str());
            return plan.ok ? 0 : 1;
        }
        apps::PreparedApp p =
            apps::prepareApp(*spec, apps::HardenOptions{});
        vm::RunResult run =
            apps::runBuggy(p, cfg.seed, observe ? &recorder : nullptr,
                           observe ? &metrics : nullptr, recordShared,
                           profileOn ? &profiler : nullptr);
        std::fputs(run.output.c_str(), stdout);
        std::fprintf(stderr,
                     "; %s: %s, %llu rollback(s), %zu recovery "
                     "episode(s)\n",
                     appName.c_str(), vm::outcomeName(run.outcome),
                     (unsigned long long)run.stats.rollbacks,
                     run.stats.recoveries.size());
        if (timeline)
            std::fprintf(stderr, "%s",
                         obs::recoveryTimeline(recorder).c_str());
        if (diagnose)
            std::fprintf(stderr, "%s",
                         obs::pm::renderText(
                             obs::pm::diagnose(recorder, *p.module,
                                               appName))
                             .c_str());
        if (!tracePath.empty() &&
            !writeArtifact(tracePath,
                           obs::chromeTraceJson(recorder, appName),
                           "trace"))
            return 2;
        if (!metricsPath.empty() &&
            !writeArtifact(metricsPath, metrics.toJson() + "\n",
                           "metrics"))
            return 2;
        if (profileOn &&
            !emitProfile(profiler, appName, profilePath, profileDoc))
            return 2;
        if (serve &&
            serveRunTelemetry(servePort, serveSeconds, appName, run,
                              recorder, metrics,
                              profileOn ? &profileDoc : nullptr) != 0)
            return 2;
        return run.outcome == vm::Outcome::Success
                   ? int(run.exitCode & 0xff)
                   : 1;
    }

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "minicc: cannot open %s\n", path.c_str());
        return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();

    DiagEngine diags;
    fe::CompileOptions fopts;
    fopts.moduleName = path;
    auto module = fe::compileMiniC(buf.str(), diags, fopts);
    if (!module) {
        std::fprintf(stderr, "%s", diags.str().c_str());
        return 1;
    }

    if (conair) {
        ca::ConAirReport r = ca::applyConAir(*module, copts);
        if (report) {
            std::printf("; conair: %u sites (%u assert / %u output / "
                        "%u segfault / %u deadlock), %u reexecution "
                        "points, %u interprocedural, %u dropped, "
                        "%.0f us\n",
                        r.identified.total(), r.identified.assertion,
                        r.identified.wrongOutput, r.identified.segfault,
                        r.identified.deadlock, r.staticReexecPoints,
                        r.interprocSites, r.sitesDroppedByOptimizer,
                        r.analysisMicros);
        }
    }
    if (print_ir)
        std::printf("%s", ir::printModule(*module).c_str());

    if (observe) {
        cfg.recorder = &recorder;
        cfg.metrics = &metrics;
        cfg.recordSharedAccesses = recordShared;
        if (profileOn)
            cfg.profiler = &profiler;
    }
    vm::RunResult run = vm::runProgram(*module, cfg);
    std::fputs(run.output.c_str(), stdout);
    if (timeline)
        std::fprintf(stderr, "%s",
                     obs::recoveryTimeline(recorder).c_str());
    if (diagnose)
        std::fprintf(stderr, "%s",
                     obs::pm::renderText(
                         obs::pm::diagnose(recorder, *module, path))
                         .c_str());
    if (!tracePath.empty() &&
        !writeArtifact(tracePath, obs::chromeTraceJson(recorder, path),
                       "trace"))
        return 2;
    if (!metricsPath.empty() &&
        !writeArtifact(metricsPath, metrics.toJson() + "\n", "metrics"))
        return 2;
    if (profileOn &&
        !emitProfile(profiler, path, profilePath, profileDoc))
        return 2;
    if (serve && serveRunTelemetry(servePort, serveSeconds, path, run,
                                   recorder, metrics,
                                   profileOn ? &profileDoc : nullptr) !=
                     0)
        return 2;
    if (run.outcome != vm::Outcome::Success) {
        std::fprintf(stderr, "minicc: %s: %s\n",
                     vm::outcomeName(run.outcome),
                     run.failureMsg.c_str());
        return 1;
    }
    if (run.stats.rollbacks) {
        std::fprintf(stderr,
                     "; conair: survived via %llu rollback(s)\n",
                     (unsigned long long)run.stats.rollbacks);
    }
    return int(run.exitCode & 0xff);
}
