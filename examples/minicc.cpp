/**
 * @file
 * minicc — command-line driver for the whole stack: compile a MiniC
 * file, optionally harden it with ConAir, and run it on the MiniVM.
 *
 * Usage:
 *   minicc [options] file.mc
 *     --conair             harden with survival-mode ConAir
 *     --fix TAG            harden only the site TAG (repeatable)
 *     --no-interproc       disable §4.3 inter-procedural recovery
 *     --no-optimize        disable the §4.2 optimizer
 *     --print-ir           dump the (possibly transformed) MiniIR
 *     --report             print the ConAir pipeline report
 *     --seed N             scheduler seed (default 1)
 *     --quantum N          preemption quantum (default 50)
 *     --delay HINT:TICKS   stall hint(HINT) for TICKS (repeatable)
 *     --max-steps N        instruction budget
 *
 * Example (examples/data/racy_counter.mc ships with the repo):
 *   minicc --conair --delay 1:5000 examples/data/racy_counter.mc
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "conair/driver.h"
#include "frontend/compile.h"
#include "ir/printer.h"
#include "vm/interp.h"

using namespace conair;

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: minicc [--conair] [--fix TAG] [--print-ir] "
                 "[--report]\n"
                 "              [--seed N] [--quantum N] "
                 "[--delay HINT:TICKS]\n"
                 "              [--no-interproc] [--no-optimize] "
                 "[--max-steps N] file.mc\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    bool conair = false, print_ir = false, report = false;
    ca::ConAirOptions copts;
    vm::VmConfig cfg;
    cfg.seed = 1;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--conair") {
            conair = true;
        } else if (arg == "--fix") {
            conair = true;
            copts.mode = ca::Mode::Fix;
            copts.fixTags.push_back(next());
        } else if (arg == "--no-interproc") {
            copts.interproc = false;
        } else if (arg == "--no-optimize") {
            copts.optimize = false;
        } else if (arg == "--print-ir") {
            print_ir = true;
        } else if (arg == "--report") {
            report = true;
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--quantum") {
            cfg.quantum = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--max-steps") {
            cfg.maxSteps = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--delay") {
            std::string spec = next();
            size_t colon = spec.find(':');
            if (colon == std::string::npos) {
                usage();
                return 2;
            }
            cfg.delays.push_back(
                {std::strtoull(spec.c_str(), nullptr, 10),
                 std::strtoull(spec.c_str() + colon + 1, nullptr, 10)});
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 2;
        } else {
            path = arg;
        }
    }
    if (path.empty()) {
        usage();
        return 2;
    }

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "minicc: cannot open %s\n", path.c_str());
        return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();

    DiagEngine diags;
    fe::CompileOptions fopts;
    fopts.moduleName = path;
    auto module = fe::compileMiniC(buf.str(), diags, fopts);
    if (!module) {
        std::fprintf(stderr, "%s", diags.str().c_str());
        return 1;
    }

    if (conair) {
        ca::ConAirReport r = ca::applyConAir(*module, copts);
        if (report) {
            std::printf("; conair: %u sites (%u assert / %u output / "
                        "%u segfault / %u deadlock), %u reexecution "
                        "points, %u interprocedural, %u dropped, "
                        "%.0f us\n",
                        r.identified.total(), r.identified.assertion,
                        r.identified.wrongOutput, r.identified.segfault,
                        r.identified.deadlock, r.staticReexecPoints,
                        r.interprocSites, r.sitesDroppedByOptimizer,
                        r.analysisMicros);
        }
    }
    if (print_ir)
        std::printf("%s", ir::printModule(*module).c_str());

    vm::RunResult run = vm::runProgram(*module, cfg);
    std::fputs(run.output.c_str(), stdout);
    if (run.outcome != vm::Outcome::Success) {
        std::fprintf(stderr, "minicc: %s: %s\n",
                     vm::outcomeName(run.outcome),
                     run.failureMsg.c_str());
        return 1;
    }
    if (run.stats.rollbacks) {
        std::fprintf(stderr,
                     "; conair: survived via %llu rollback(s)\n",
                     (unsigned long long)run.stats.rollbacks);
    }
    return int(run.exitCode & 0xff);
}
