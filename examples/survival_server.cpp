/**
 * @file
 * Survival mode in "production": the MySQL1 kernel hardened without
 * any bug knowledge, then run through a fleet of request batches in
 * which the binlog-rotation race occasionally strikes.
 *
 * The same batches kill the unhardened server; the hardened one keeps
 * serving and its outputs stay correct — the paper's deployment story
 * (hardening production software against *hidden* bugs).
 *
 * Build & run:  ./build/examples/survival_server
 */
#include <cstdio>

#include "apps/harness.h"

using namespace conair;
using namespace conair::apps;

int
main()
{
    const AppSpec *app = findApp("MySQL1");
    const unsigned batches = 60;

    HardenOptions plain;
    plain.applyConAir = false;
    PreparedApp original = prepareApp(*app, plain);
    PreparedApp hardened = prepareApp(*app, HardenOptions{});

    std::printf("serving %u request batches; the rotation race is "
                "forced in every batch...\n\n", batches);

    unsigned orig_ok = 0, hard_ok = 0;
    uint64_t rollbacks = 0;
    double recovery_us = 0;
    unsigned recoveries = 0;
    for (unsigned seed = 1; seed <= batches; ++seed) {
        vm::RunResult ro = runBuggy(original, seed);
        orig_ok += runIsCorrect(*app, ro);

        vm::RunResult rh = runBuggy(hardened, seed);
        hard_ok += runIsCorrect(*app, rh);
        rollbacks += rh.stats.rollbacks;
        for (const vm::RecoveryEvent &ev : rh.stats.recoveries) {
            recovery_us += ev.micros();
            ++recoveries;
        }
    }

    std::printf("unhardened server: %u/%u batches correct "
                "(the rest died or logged garbage)\n",
                orig_ok, batches);
    std::printf("hardened server:   %u/%u batches correct\n", hard_ok,
                batches);
    std::printf("rollbacks across the fleet: %llu\n",
                (unsigned long long)rollbacks);
    if (recoveries)
        std::printf("mean recovery latency: %.1f virtual us over %u "
                    "recoveries\n",
                    recovery_us / recoveries, recoveries);
    std::printf("\nsurvival-mode hardening report: %u sites, %u "
                "reexecution points, %u dropped by the optimizer\n",
                hardened.report.identified.total(),
                hardened.report.staticReexecPoints,
                hardened.report.sitesDroppedByOptimizer);
    return hard_ok == batches ? 0 : 1;
}
