/**
 * @file
 * Quickstart: the whole ConAir pipeline on one small buggy program.
 *
 *   1. write a multi-threaded MiniC program with an order violation,
 *   2. run it under a failure-forcing schedule (it crashes),
 *   3. harden it with ConAir (survival mode, no bug knowledge),
 *   4. run it under the same schedule: it recovers and completes.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "conair/driver.h"
#include "frontend/compile.h"
#include "vm/interp.h"

using namespace conair;

namespace {

// A worker dereferences a shared configuration pointer that main
// publishes late — the HTTrack-style order violation.
const char *buggy_program = R"MINIC(
int* config;

int worker(int n) {
    int limit = config[0];    // may run before main publishes config
    int acc = 0;
    for (int i = 0; i < n; i++) {
        if (i < limit) { acc += i; }
    }
    print("acc=", acc, "\n");
    return 0;
}

int main() {
    int t = spawn(worker, 10);
    hint(1);                  // the unlucky production timing
    config = malloc(2);
    config[0] = 100;
    join(t);
    return 0;
}
)MINIC";

vm::VmConfig
buggySchedule()
{
    vm::VmConfig cfg;
    cfg.delays = {{1, 10'000}}; // stall main's initialisation
    return cfg;
}

} // namespace

int
main()
{
    // Compile MiniC -> MiniIR (with SSA promotion, like clang -O0 +
    // mem2reg: the form ConAir's idempotence analysis expects).
    DiagEngine diags;
    auto original = fe::compileMiniC(buggy_program, diags);
    if (!original) {
        std::fprintf(stderr, "%s", diags.str().c_str());
        return 1;
    }

    std::printf("--- original program under the buggy schedule ---\n");
    vm::RunResult crash = vm::runProgram(*original, buggySchedule());
    std::printf("outcome: %s (%s)\n\n", vm::outcomeName(crash.outcome),
                crash.failureMsg.c_str());

    // Harden with ConAir.  Survival mode needs no knowledge of the bug:
    // it finds every potential failure site statically.
    auto hardened = fe::compileMiniC(buggy_program, diags);
    ca::ConAirReport report = ca::applyConAir(*hardened);
    std::printf("--- ConAir survival-mode hardening ---\n");
    std::printf("failure sites: %u (%u assert, %u output, %u segfault, "
                "%u deadlock)\n",
                report.identified.total(), report.identified.assertion,
                report.identified.wrongOutput,
                report.identified.segfault, report.identified.deadlock);
    std::printf("reexecution points (checkpoints): %u\n",
                report.staticReexecPoints);
    std::printf("analysis + transform time: %.0f us\n\n",
                report.analysisMicros);

    std::printf("--- hardened program, same buggy schedule ---\n");
    vm::RunResult ok = vm::runProgram(*hardened, buggySchedule());
    std::printf("outcome: %s\n", vm::outcomeName(ok.outcome));
    std::printf("output:  %s", ok.output.c_str());
    std::printf("rollbacks performed: %llu\n",
                (unsigned long long)ok.stats.rollbacks);
    for (const vm::RecoveryEvent &ev : ok.stats.recoveries) {
        std::printf("recovered site %s after %llu retries in %.1f "
                    "virtual us\n",
                    ev.siteTag.c_str(), (unsigned long long)ev.retries,
                    ev.micros());
    }
    return ok.outcome == vm::Outcome::Success ? 0 : 1;
}
