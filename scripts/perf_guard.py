#!/usr/bin/env python3
"""Perf-trajectory guard: compare a fresh bench JSON artifact against
its committed baseline and fail on throughput regressions.

Usage:
    scripts/perf_guard.py --baseline bench/baselines/BENCH_vm.smoke.json \
        --current build/bench/BENCH_vm.json [--threshold 0.25]

Knows both artifact shapes:

  * BENCH_vm.json  (bench == "vm_throughput"): per-workload
    reference/decoded/fused/traced/diag/prof steps-per-second, matched
    by workload name;
  * BENCH_explore.json (bench == "explore"): campaign
    schedules-per-second.

A metric regresses when  current < baseline * (1 - threshold); every
pinned metric is printed either way, so the CI log doubles as a
throughput-trend record.  Comparing artifacts from different modes
(smoke vs full) or different benches is a configuration error and
fails loudly — a smoke baseline says nothing about a full run.

Bless a new baseline after an intentional change by copying the fresh
artifact over the committed one (docs/TESTING.md, "Perf-trajectory
guard"):

    cp build/bench/BENCH_vm.json bench/baselines/BENCH_vm.smoke.json
"""

import argparse
import json
import sys

# Higher-is-better metrics pinned per artifact kind.
VM_WORKLOAD_METRICS = [
    "reference_steps_per_sec",
    "decoded_steps_per_sec",
    "fused_steps_per_sec",
    "decoded_traced_steps_per_sec",
    "decoded_diag_steps_per_sec",
    "decoded_prof_steps_per_sec",
]
EXPLORE_METRICS = ["schedules_per_sec"]


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"perf_guard: cannot read {path}: {e}")


def check(label, baseline, current, threshold, failures):
    """Prints one metric comparison; records a failure on regression."""
    if not baseline or baseline <= 0:
        print(f"  {label:55s} baseline empty, skipped")
        return
    ratio = current / baseline
    verdict = "ok"
    if current < baseline * (1.0 - threshold):
        verdict = "REGRESSED"
        failures.append(
            f"{label}: {current:.0f} vs baseline {baseline:.0f} "
            f"({ratio:.2f}x, floor {1.0 - threshold:.2f}x)"
        )
    print(
        f"  {label:55s} {current:12.0f} vs {baseline:12.0f} "
        f"({ratio:5.2f}x) {verdict}"
    )


def main():
    ap = argparse.ArgumentParser(
        description="fail on bench throughput regressions vs a "
        "committed baseline"
    )
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional regression (default 0.25 = -25%%)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    for key in ("bench", "mode"):
        b, c = base.get(key), cur.get(key)
        if b != c:
            sys.exit(
                f"perf_guard: {key} mismatch: baseline {args.baseline} "
                f"is '{b}' but current {args.current} is '{c}' — "
                f"comparing them is meaningless.  Regenerate the "
                f"baseline with the same flags (see docs/TESTING.md, "
                f"'Perf-trajectory guard')."
            )

    failures = []
    kind = base.get("bench")
    print(
        f"perf guard: {kind} ({base.get('mode')}), "
        f"threshold -{args.threshold * 100:.0f}%"
    )

    if kind == "vm_throughput":
        base_by_name = {w["name"]: w for w in base.get("workloads", [])}
        cur_by_name = {w["name"]: w for w in cur.get("workloads", [])}
        missing = sorted(set(base_by_name) - set(cur_by_name))
        if missing:
            sys.exit(
                f"perf_guard: workloads {missing} are in the baseline "
                f"but not the current run — mode/flag mismatch?"
            )
        for name, bw in sorted(base_by_name.items()):
            cw = cur_by_name[name]
            for metric in VM_WORKLOAD_METRICS:
                if metric not in bw:
                    continue  # older baseline without the column
                check(
                    f"{name}.{metric}",
                    float(bw[metric]),
                    float(cw.get(metric, 0.0)),
                    args.threshold,
                    failures,
                )
    elif kind == "explore":
        for metric in EXPLORE_METRICS:
            check(
                metric,
                float(base.get(metric, 0.0)),
                float(cur.get(metric, 0.0)),
                args.threshold,
                failures,
            )
    else:
        sys.exit(f"perf_guard: unknown bench kind '{kind}'")

    if failures:
        print("\nperf guard FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print(
            "\nIf the regression is intentional, re-bless the baseline "
            "(docs/TESTING.md, 'Perf-trajectory guard').",
            file=sys.stderr,
        )
        sys.exit(1)
    print("perf guard passed")


if __name__ == "__main__":
    main()
