/**
 * @file
 * Reproduces paper Table 6: the share of reexecution points removed by
 * the §4.2 unnecessary-rollback optimization, separately for deadlock
 * and non-deadlock failure sites, statically and dynamically.
 *
 * Methodology mirrors §6.2: each program is hardened twice (with and
 * without the optimizer); dynamic counts come from one failure-forcing
 * run of each binary.
 */
#include "bench/bench_util.h"

using namespace conair;
using namespace conair::apps;
using namespace conair::bench;

namespace {

std::string
pct(uint64_t removed, uint64_t total)
{
    if (total == 0)
        return "N/A";
    return fmt("%.0f%%", 100.0 * double(removed) / double(total));
}

} // namespace

int
main()
{
    std::printf("=== Table 6: reexecution points removed by the "
                "unnecessary-rollback optimization ===\n\n");

    Table t({"App", "NonDL static", "NonDL dynamic", "DL static",
             "DL dynamic"});

    for (const AppSpec &app : allApps()) {
        HardenOptions with;
        PreparedApp pw = prepareApp(app, with);

        HardenOptions without;
        without.conair.optimize = false;
        PreparedApp po = prepareApp(app, without);

        // Static split comes straight from the pipeline reports.
        unsigned ndl_w = pw.report.nonDeadlockPoints;
        unsigned ndl_o = po.report.nonDeadlockPoints;
        unsigned dl_w = pw.report.deadlockPoints;
        unsigned dl_o = po.report.deadlockPoints;

        // Dynamic: checkpoint executions in one failure-forcing run.
        // The per-kind split uses the static ratio of each binary
        // (points are shared across sites, like in the paper).
        vm::RunResult rw = runBuggy(pw, 1);
        vm::RunResult ro = runBuggy(po, 1);
        auto share = [](uint64_t total, unsigned part, unsigned whole) {
            return whole ? total * part / whole : 0;
        };
        uint64_t total_w = rw.stats.checkpointsExecuted;
        uint64_t total_o = ro.stats.checkpointsExecuted;
        uint64_t dyn_ndl_w = share(total_w, ndl_w, ndl_w + dl_w);
        uint64_t dyn_ndl_o = share(total_o, ndl_o, ndl_o + dl_o);
        uint64_t dyn_dl_w = total_w - dyn_ndl_w;
        uint64_t dyn_dl_o = total_o - dyn_ndl_o;

        t.row({app.name,
               pct(ndl_o - std::min(ndl_o, ndl_w), ndl_o),
               pct(dyn_ndl_o - std::min(dyn_ndl_o, dyn_ndl_w),
                   dyn_ndl_o),
               pct(dl_o - std::min(dl_o, dl_w), dl_o),
               pct(dyn_dl_o - std::min(dyn_dl_o, dyn_dl_w), dyn_dl_o)});
    }
    t.print();
    std::printf("\nPaper shape: deadlock points are heavily optimized "
                "away (30-91%% static); non-deadlock points much less "
                "(segfault sites always keep a qualifying pointer "
                "re-read).\n");
    return 0;
}
