/**
 * @file
 * Microbenchmarks (google-benchmark) of the runtime primitives behind
 * the paper's performance claims: the per-checkpoint cost (the "few
 * nanoseconds" setjmp of §3.2.1), rollback, pointer sanity checks,
 * compensation logging, plus the substrate itself (compilation and
 * pipeline throughput).
 */
#include <benchmark/benchmark.h>

#include "apps/app_spec.h"
#include "conair/driver.h"
#include "frontend/compile.h"
#include "ir/parser.h"
#include "vm/interp.h"

using namespace conair;

namespace {

std::unique_ptr<ir::Module>
parseOrDie(const std::string &text)
{
    DiagEngine d;
    auto m = ir::parseModule(text, d);
    if (!m)
        fatal(d.str());
    return m;
}

/** N checkpoint executions vs the same loop without them. */
void
BM_CheckpointExecution(benchmark::State &state)
{
    auto m = parseOrDie(R"(
func @main() -> i64 {
entry:
    br loop
loop:
    %i = phi i64 [0, entry], [%n, loop]
    call $conair.checkpoint(0)
    %n = add %i, 1
    %c = icmp.slt %n, 10000
    condbr %c, loop, done
done:
    ret 0
}
)");
    for (auto _ : state) {
        vm::RunResult r = vm::runProgram(*m);
        benchmark::DoNotOptimize(r.stats.checkpointsExecuted);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_CheckpointExecution);

/** Rollback + compensation round trips. */
void
BM_RollbackRoundTrip(benchmark::State &state)
{
    auto m = parseOrDie(R"(
global @flag : i64[1]

func @main() -> i64 {
entry:
    br loop
loop:
    %i = phi i64 [0, entry], [%n, retryjoin]
    call $conair.checkpoint(0)
    br region
region:
    %v = load i64, @flag
    %ok = icmp.eq %v, 1
    condbr %ok, never, fail
fail:
    call $conair.try_rollback(1)
    br retryjoin
never:
    br retryjoin
retryjoin:
    %n = add %i, 1
    %c = icmp.slt %n, 1000
    condbr %c, loop, done
done:
    ret 0
}
)");
    vm::VmConfig cfg;
    cfg.maxRetries = 1; // one rollback per site visit, then give up
    for (auto _ : state) {
        // Fresh retry budget per run.
        vm::RunResult r = vm::runProgram(*m, cfg);
        benchmark::DoNotOptimize(r.stats.rollbacks);
    }
}
BENCHMARK(BM_RollbackRoundTrip);

/** Raw interpreter dispatch throughput. */
void
BM_VmDispatchThroughput(benchmark::State &state)
{
    DiagEngine d;
    auto m = fe::compileMiniC(R"(
int main() {
    int acc = 0;
    for (int i = 0; i < 20000; i++) {
        acc = (acc * 13 + i) % 65536;
    }
    return acc;
}
)",
                              d);
    uint64_t steps = 0;
    for (auto _ : state) {
        vm::RunResult r = vm::runProgram(*m);
        steps += r.stats.steps;
        benchmark::DoNotOptimize(r.exitCode);
    }
    state.SetItemsProcessed(steps);
}
BENCHMARK(BM_VmDispatchThroughput);

/** MiniC compilation (lex/parse/typecheck/lower/mem2reg). */
void
BM_CompileMysqlKernel(benchmark::State &state)
{
    const apps::AppSpec *app = apps::findApp("MySQL1");
    for (auto _ : state) {
        DiagEngine d;
        auto m = fe::compileMiniC(app->source, d);
        benchmark::DoNotOptimize(m.get());
    }
}
BENCHMARK(BM_CompileMysqlKernel);

/** The full ConAir pipeline on the largest kernel. */
void
BM_ConAirPipelineMysql(benchmark::State &state)
{
    const apps::AppSpec *app = apps::findApp("MySQL1");
    for (auto _ : state) {
        DiagEngine d;
        auto m = fe::compileMiniC(app->source, d);
        ca::ConAirReport r = ca::applyConAir(*m);
        benchmark::DoNotOptimize(r.staticReexecPoints);
    }
}
BENCHMARK(BM_ConAirPipelineMysql);

/** Pointer sanity checks (the Fig 5c instrumentation). */
void
BM_PtrCheckExecution(benchmark::State &state)
{
    auto m = parseOrDie(R"(
func @main() -> i64 {
entry:
    %p = call $malloc(4)
    br loop
loop:
    %i = phi i64 [0, entry], [%n, loop]
    %ok = call $conair.ptr_check(%p)
    %z = zext %ok
    %n = add %i, %z
    %c = icmp.slt %n, 10000
    condbr %c, loop, done
done:
    ret %i
}
)");
    for (auto _ : state) {
        vm::RunResult r = vm::runProgram(*m);
        benchmark::DoNotOptimize(r.exitCode);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_PtrCheckExecution);

} // namespace

BENCHMARK_MAIN();
