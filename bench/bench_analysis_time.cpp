/**
 * @file
 * Reproduces paper §6.4: ConAir's static analysis + transformation
 * time per application, with and without the inter-procedural pass
 * (the paper reports that inter-procedural analysis dominates).
 */
#include "bench/bench_util.h"

#include <algorithm>

#include "frontend/compile.h"

using namespace conair;
using namespace conair::apps;
using namespace conair::bench;

namespace {

/** Median: robust against the multi-ms scheduler hiccups a virtualised
 *  single-core box injects into µs-scale wall-clock samples. */
double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v.empty() ? 0 : v[v.size() / 2];
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned reps = argUnsigned(argc, argv, "--reps", 30);

    std::printf("=== Section 6.4: static analysis and transformation "
                "time (median of %u runs, microseconds) ===\n\n", reps);

    Table t({"App", "Full pipeline", "No interprocedural", "Interproc "
             "share"});
    for (const AppSpec &app : allApps()) {
        std::vector<double> with_s, without_s;
        for (unsigned i = 0; i < reps; ++i) {
            {
                DiagEngine d;
                auto m = fe::compileMiniC(app.source, d);
                ca::ConAirOptions o;
                with_s.push_back(ca::applyConAir(*m, o).analysisMicros);
            }
            {
                DiagEngine d;
                auto m = fe::compileMiniC(app.source, d);
                ca::ConAirOptions o;
                o.interproc = false;
                without_s.push_back(
                    ca::applyConAir(*m, o).analysisMicros);
            }
        }
        double with = median(with_s);
        double without = median(without_s);
        double share = with > 0 ? (with - without) / with * 100 : 0;
        t.row({app.name, fmt("%.0f", with), fmt("%.0f", without),
               fmt("%.0f%%", share > 0 ? share : 0)});
    }
    t.print();
    std::printf("\nPaper shape: analysis is fast enough for large "
                "programs; the inter-procedural pass is the dominant "
                "cost and can be disabled when the budget is tight.\n");
    return 0;
}
