/**
 * @file
 * Reproduces paper Table 3: per application, whether ConAir recovers
 * the forced failure (fix mode and survival mode) and the run-time
 * overhead of each mode.
 *
 * Methodology (paper §5): the failure-forcing schedule replaces the
 * authors' injected sleeps; recovery is claimed only when all N runs
 * (default 1000) produce fully correct executions; overhead is the
 * mean over 20 clean runs.  Wrong-output apps (FFT, MySQL1) are
 * "conditionally recovered": their recovery needs the developer's
 * oracle() annotation.
 */
#include "bench/bench_util.h"

using namespace conair;
using namespace conair::apps;
using namespace conair::bench;

int
main(int argc, char **argv)
{
    unsigned runs = argUnsigned(argc, argv, "--runs", 1000);
    unsigned oh_runs = argUnsigned(argc, argv, "--overhead-runs", 20);

    std::printf("=== Table 3: overall bug recovery results ===\n");
    std::printf("(recovery over %u failure runs; overhead over %u "
                "clean runs; 'Yes*' = needs the oracle annotation)\n\n",
                runs, oh_runs);

    Table t({"App", "Failure", "Recovered(fix)", "Recovered(survival)",
             "Overhead(fix)", "Overhead(survival)"});

    for (const AppSpec &app : allApps()) {
        // Fix mode: harden only the site(s) observed in one failing
        // run of the original program.
        HardenOptions fix;
        fix.conair.mode = ca::Mode::Fix;
        fix.conair.fixTags = observedFailureTags(app);
        PreparedApp fixed = prepareApp(app, fix);
        RecoveryTrial fix_trial = runRecoveryTrial(fixed, runs);

        // Survival mode: no knowledge of the bug at all.
        HardenOptions survival;
        PreparedApp hardened = prepareApp(app, survival);
        RecoveryTrial sur_trial = runRecoveryTrial(hardened, runs);

        double fix_oh = measureOverhead(app, fix, oh_runs);
        double sur_oh = measureOverhead(app, survival, oh_runs);

        auto verdict = [&](const RecoveryTrial &trial) {
            std::string mark = trial.allCorrect() ? "Yes" : "NO";
            if (trial.allCorrect() && app.needsOracle)
                mark += "*";
            if (!trial.allCorrect())
                mark += fmt(" (%u/%u)", trial.correct, trial.runs);
            return mark;
        };

        t.row({app.name, vm::outcomeName(app.expectedFailure),
               verdict(fix_trial), verdict(sur_trial),
               fmt("%.2f%%", fix_oh * 100),
               fmt("%.2f%%", sur_oh * 100)});
    }
    t.print();
    std::printf("\nPaper shape: every bug recovered (FFT/MySQL1 "
                "conditionally), overhead 0%% fix / <1%% survival.\n");
    return 0;
}
