/**
 * @file
 * Schedule-exploration campaign over the ten bug kernels: PCT and
 * preemption-bounded search rediscover each kernel's buggy
 * interleaving without the hand-scripted trigger delays, while the
 * differential recovery oracle checks every explored schedule three
 * ways (unhardened fails-or-passes, hardened always recovers,
 * Decoded == Reference tick for tick).  See docs/EXPLORATION.md.
 *
 * Results go to stdout and to BENCH_explore.json in the working
 * directory (including per-(kernel, policy) recovery metrics — see
 * docs/OBSERVABILITY.md for the schema).  The exit code is the oracle
 * verdict: nonzero on any engine divergence or unrecovered hardened
 * failure (and, outside smoke mode, on a kernel whose failure was
 * never rediscovered).
 *
 * Flags:
 *   --seeds N     seeds per (policy, depth) entry (default 250; the
 *                 default matrix has 4 entries -> 1000 schedules per
 *                 kernel, 10k per campaign)
 *   --workers N   worker threads (default 4)
 *   --apps a,b    comma-separated kernel subset (default: all ten)
 *   --smoke       CI mode: small seed counts, stop after the first
 *                 failing schedule per kernel, skip the rediscovery
 *                 exit-code gate
 *   --no-speedup  skip the 1-worker vs N-worker speedup measurement
 *   --policies L  comma-separated policy axis, e.g. "pct:d3,pb:d2,random"
 *                 (default: pct:d2,pct:d3,pb:d2,random)
 *   --repro APP TOKEN
 *                 re-run one schedule (token from a campaign report,
 *                 e.g. "pct:d3:s17") and print the full differential
 *                 detail for it
 *   --trace FILE  write a Chrome trace_event JSON of the schedule
 *                 (Perfetto-loadable).  With --repro, traces that
 *                 schedule; in campaign mode, re-runs and traces the
 *                 first failing schedule the campaign found.  The
 *                 trace's rollback/checkpoint totals are cross-checked
 *                 against the run's RunStats (exit 1 on mismatch).
 *   --metrics FILE  write the hardened leg's MetricsRegistry JSON for
 *                 the traced schedule, plus the same registry as
 *                 Prometheus text exposition next to it (FILE with a
 *                 .prom extension)
 *   --timeline    (--repro only) print the human-readable recovery
 *                 timeline to stdout
 *   --diagnose [APP] TOKEN
 *                 replay one schedule in diagnosis recording mode and
 *                 print the postmortem RecoveryReport (racy pair,
 *                 scheduler-switch window, bug-pattern verdict, ASCII
 *                 interleaving diagram).  APP defaults to ZSNES.  As a
 *                 bare flag after --repro APP TOKEN it diagnoses that
 *                 schedule.  See docs/OBSERVABILITY.md.
 *   --diagnose-json FILE
 *                 also write the RecoveryReport as JSON
 *   --abort-dir DIR
 *                 campaign mode: flush-on-abort — when the campaign
 *                 oracle trips (divergence / unrecovered), dump the
 *                 instrumented legs' trace and a diagnosis into DIR
 *   --replay LOG  the O(1) repro path: re-execute a recorded replay
 *                 log (no schedule search) and differentially check
 *                 the run against the recorded fingerprint; exit 0
 *                 iff the replay is faithful.  Combines with
 *                 --engine decoded|reference|fused (cross-engine
 *                 replay; default: the recording's engine),
 *                 --timeline (time-travel interleaving timeline),
 *                 --diagnose, and --trace FILE.
 *   --record-replay FILE
 *                 (--repro only) record the unhardened leg
 *                 replay-grade, strictly verify it, and save it as
 *                 FILE; with --minimize, ddmin-minimise the switch
 *                 list first.  See docs/OBSERVABILITY.md.
 *   --replay-dir DIR
 *                 campaign mode: where the per-kernel minimised
 *                 replay logs go (default: replay-logs)
 *   --fix [APP] [TOKEN]
 *                 synthesize a fix for APP (default ZSNES) from a
 *                 postmortem diagnosis and prove it regression-free:
 *                 the recorded failing schedule is ddmin-minimised and
 *                 replayed against the patched build (failure gone),
 *                 the full campaign matrix re-runs on the patch
 *                 (0 failing / 0 deadlocked / 0 divergent), and the
 *                 clean-run overhead must stay within bound.  With
 *                 TOKEN the failure comes from that campaign schedule;
 *                 without it the kernel's scripted failure-forcing
 *                 schedule is probed over seeds 1..8.  Exit 0 iff the
 *                 patch validated.  See docs/FIXING.md.
 *   --fix-json FILE
 *                 also write the patch + validation report as JSON
 *   --serve PORT  campaign mode: serve live telemetry on
 *                 127.0.0.1:PORT for the duration of the run —
 *                 GET /metrics (Prometheus text exposition),
 *                 GET /status (live campaign JSON), GET /coverage
 *                 (interleaving-coverage edge dump).  PORT 0 binds an
 *                 ephemeral port (printed, and written to
 *                 --serve-port-file when given).  Serving is
 *                 observational only; see docs/OBSERVABILITY.md,
 *                 "Live telemetry endpoints".
 *   --serve-port-file FILE
 *                 write the bound telemetry port to FILE (CI uses
 *                 this with --serve 0)
 *   --profile [FILE]
 *                 print the recovery-cost profile: the top hot-phase
 *                 table over the deterministic per-(kernel, policy)
 *                 phase/episode aggregates, plus the campaign's
 *                 wall-clock self-time cells.  With FILE, also write
 *                 the speedscope JSON there and the folded flamegraph
 *                 stacks next to it (FILE with a .folded extension).
 *                 Works in campaign mode, with --repro (profiles that
 *                 schedule's hardened leg), and with --replay
 *                 (profiles the replayed run).  Campaign mode always
 *                 *collects* the profile — kernels[].profile in
 *                 BENCH_explore.json and the full-mode recovery-tax
 *                 gate depend on it — the flag only controls printing
 *                 and export.  See docs/OBSERVABILITY.md, "Profiling".
 *   --guided      campaign mode: run the coverage-guided search pass
 *                 (src/explore/guided.h) after the blind matrix and
 *                 report it as kernels[].guided.  Always on outside
 *                 smoke mode — the committed BENCH_explore.json pins
 *                 the guided-vs-blind seeds-to-first-failure budgets
 *                 and the full-mode gates below compare them.  Guided
 *                 mode also appends the challenge kernels
 *                 (challengeApps()): each gets a dedicated blind
 *                 pct:d2 probe (1000 seeds full / 40 smoke) that must
 *                 come up empty plus the same guided pass, which must
 *                 find the failure within its budget (full-mode gate).
 *                 See docs/EXPLORATION.md, "Guided exploration".
 *   --guided-budget N
 *                 schedules per kernel for the guided pass (default
 *                 250)
 *   --corpus-dir DIR
 *                 persist each kernel's mutation corpus as
 *                 DIR/<kernel>.corpus ("conair-corpus v1" — see
 *                 docs/EXPLORATION.md for the format)
 *
 * Campaign mode additionally runs the fix pass on every kernel whose
 * failure it rediscovered and diagnosed; the per-kernel result lands
 * in BENCH_explore.json as kernels[].fix, and outside smoke mode a
 * kernel whose patch fails validation fails the bench.
 */
#include "bench/bench_util.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <thread>

#include "explore/campaign.h"
#include "explore/guided.h"
#include "explore/telemetry.h"
#include "fix/fix.h"
#include "fix/report.h"
#include "fix/validate.h"
#include "obs/coverage/coverage.h"
#include "obs/postmortem/diagnosis.h"
#include "obs/profile/profile_export.h"
#include "obs/serve/http_server.h"
#include "obs/replay/minimize.h"
#include "obs/replay/replay_export.h"
#include "obs/replay/replay_run.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "support/json.h"
#include "support/str.h"
#include "vm/interp.h"

using namespace conair;
using namespace conair::apps;
using namespace conair::bench;
using namespace conair::explore;

namespace {

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s + ",") {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    return out;
}

const char *
argString(int argc, char **argv, const char *flag, const char *def)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    return def;
}

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream f(path);
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    f << content;
    return true;
}

/** A flag whose value is optional ("--profile" vs "--profile FILE"):
 *  returns (present, value), the value empty when the next argv entry
 *  is absent or another flag. */
std::pair<bool, std::string>
argOptValue(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0) {
            if (i + 1 < argc && argv[i + 1][0] != '-')
                return {true, argv[i + 1]};
            return {true, std::string()};
        }
    return {false, std::string()};
}

/** Writes the profile artifacts: speedscope JSON at @p path, folded
 *  flamegraph stacks next to it (.folded extension). */
bool
writeProfileArtifacts(const obs::prof::ProfileDoc &doc,
                      const std::string &name, const std::string &path)
{
    if (!writeFile(path, obs::prof::speedscopeJson(doc, name) + "\n"))
        return false;
    std::printf("wrote %s (speedscope JSON)\n", path.c_str());
    std::string folded = path;
    size_t dot = folded.rfind('.');
    if (dot != std::string::npos &&
        folded.find('/', dot) == std::string::npos)
        folded.resize(dot);
    folded += ".folded";
    if (!writeFile(folded, obs::prof::foldedStacks(doc)))
        return false;
    std::printf("wrote %s (folded stacks)\n", folded.c_str());
    return true;
}

/**
 * Traces one (target, schedule) cell and emits the requested
 * artifacts.  Returns false when the trace's wraparound-surviving
 * rollback/checkpoint totals disagree with the run's RunStats — the
 * cross-check the acceptance criteria pin.
 */
bool
traceSchedule(const Target &target, const ScheduleSpec &s,
              CampaignOptions opts, const std::string &appName,
              const std::string &tracePath,
              const std::string &metricsPath, bool timeline)
{
    // Diagnosis-grade recording (shared accesses on): the coverage
    // fold below needs the access sites, and the campaign's coverage
    // legs record the same way — so the cross-checked edge set here is
    // the edge set the campaign counted.  Grown capacity to match.
    obs::FlightRecorder unhardenedRec(65536);
    obs::FlightRecorder hardenedRec(65536);
    ScheduleInstruments ins{&unhardenedRec, &hardenedRec};
    ins.recordSharedAccesses = true;
    opts.collectMetrics = true;
    ScheduleOutcome o = runOneSchedule(target, s, opts, &ins);

    // Fold the unhardened leg's interleaving coverage and annotate the
    // recorder with it, so the trace artifact and timeline carry the
    // coverage-novel / coverage-snapshot events (folding is post-run;
    // it never touches execution).
    obs::cov::CoverageFold cov = obs::cov::foldCoverage(unhardenedRec);
    obs::cov::annotateRecorder(unhardenedRec, cov.edges,
                               cov.edges.size());

    if (!tracePath.empty()) {
        std::vector<obs::TraceProcess> procs = {
            {&unhardenedRec, appName + " unhardened " + s.token(), 1},
            {&hardenedRec, appName + " hardened " + s.token(), 2},
        };
        if (!writeFile(tracePath, obs::chromeTraceJson(procs)))
            return false;
        std::printf("wrote %s (%llu events, %llu dropped by ring "
                    "wraparound)\n",
                    tracePath.c_str(),
                    (unsigned long long)(unhardenedRec.totalRecordedAll() +
                                         hardenedRec.totalRecordedAll()),
                    (unsigned long long)(unhardenedRec.droppedAll() +
                                         hardenedRec.droppedAll()));
    }
    if (!metricsPath.empty()) {
        if (!writeFile(metricsPath, o.metrics.toJson() + "\n"))
            return false;
        std::printf("wrote %s\n", metricsPath.c_str());
        // The same registry in Prometheus text exposition format, for
        // scrape-style consumers (docs/OBSERVABILITY.md).
        std::string promPath = metricsPath;
        size_t dot = promPath.rfind('.');
        if (dot != std::string::npos && promPath.find('/', dot) ==
                                            std::string::npos)
            promPath.resize(dot);
        promPath += ".prom";
        if (!writeFile(promPath, o.metrics.toPrometheusText()))
            return false;
        std::printf("wrote %s\n", promPath.c_str());
    }
    if (timeline) {
        std::printf("--- recovery timeline (hardened leg) ---\n%s",
                    obs::recoveryTimeline(hardenedRec).c_str());
    }

    // Trace-vs-stats cross-check: per-kind totals survive wraparound,
    // so EVERY recovery-relevant event total must equal the hardened
    // leg's RunStats counter exactly — and a mismatch names the
    // counter that diverged instead of hiding behind two of them.
    const vm::RunStats &st = o.hardenedStats;
    const struct
    {
        obs::EventKind kind;
        uint64_t stat;
    } checks[] = {
        {obs::EventKind::Rollback, st.rollbacks},
        {obs::EventKind::Checkpoint, st.checkpointsExecuted},
        {obs::EventKind::CompensationFree, st.compensationFrees},
        {obs::EventKind::CompensationUnlock, st.compensationUnlocks},
        {obs::EventKind::Backoff, st.backoffs},
        {obs::EventKind::ChaosRollback, st.chaosRollbacks},
        // The recorder also logs the main thread's birth, so spawn
        // events run one ahead of the threadsSpawned counter.
        {obs::EventKind::ThreadSpawn, st.threadsSpawned + 1},
        {obs::EventKind::RecoveryDone, st.recoveries.size()},
    };
    bool ok = true;
    for (const auto &c : checks) {
        uint64_t traced = hardenedRec.totalOf(c.kind);
        if (traced != c.stat) {
            std::printf("trace totals vs RunStats: %s DIVERGED "
                        "(trace %llu, stats %llu)\n",
                        obs::eventKindName(c.kind),
                        (unsigned long long)traced,
                        (unsigned long long)c.stat);
            ok = false;
        }
    }
    if (ok)
        std::printf("trace totals vs RunStats: all %zu event kinds "
                    "match (rollbacks %llu, checkpoints %llu, "
                    "recoveries %zu)\n",
                    std::size(checks),
                    (unsigned long long)st.rollbacks,
                    (unsigned long long)st.checkpointsExecuted,
                    st.recoveries.size());

    // Coverage cross-check, same spirit: re-fold the trace
    // independently (annotation events are skipped by the folder, so
    // the annotated recorder re-folds to the same set) and feed a
    // fresh CoverageMap — the map's novel-insert delta and digest must
    // both equal the fold's, and a mismatch names which one diverged.
    obs::cov::CoverageFold refold =
        obs::cov::foldCoverage(unhardenedRec);
    obs::cov::CoverageMap covMap(1024);
    uint64_t mapDelta = covMap.insertAll(refold.edges);
    if (mapDelta != refold.edges.size()) {
        std::printf("coverage cross-check: coverage-edges DIVERGED "
                    "(map delta %llu, trace fold %zu)\n",
                    (unsigned long long)mapDelta, refold.edges.size());
        ok = false;
    }
    if (covMap.digest() != obs::cov::coverageDigest(refold.edges)) {
        std::printf("coverage cross-check: coverage-digest DIVERGED "
                    "(map %016llx, trace fold %016llx)\n",
                    (unsigned long long)covMap.digest(),
                    (unsigned long long)obs::cov::coverageDigest(
                        refold.edges));
        ok = false;
    }
    if (mapDelta == refold.edges.size() &&
        covMap.digest() == obs::cov::coverageDigest(refold.edges))
        std::printf("coverage cross-check: trace fold == map delta "
                    "(%zu distinct edges, digest %016llx)\n",
                    refold.edges.size(),
                    (unsigned long long)covMap.digest());
    return ok;
}

/**
 * Replays (target, schedule) in diagnosis recording mode and prints
 * the postmortem RecoveryReport.  The hardened leg is diagnosed when
 * it tells a recovery story (RecoveryDone / FailureSite events);
 * otherwise the unhardened leg's terminal failure is.  Returns false
 * when no diagnosis could be produced at all.
 */
bool
diagnoseSchedule(const Target &target, const ScheduleSpec &s,
                 CampaignOptions opts, const std::string &appName,
                 const std::string &jsonPath)
{
    obs::FlightRecorder plainRec(65536), hardRec(65536);
    ScheduleInstruments ins{&plainRec, &hardRec};
    ins.recordSharedAccesses = true;
    runOneSchedule(target, s, opts, &ins);

    bool useHard =
        target.hardened &&
        (hardRec.totalOf(obs::EventKind::RecoveryDone) > 0 ||
         hardRec.totalOf(obs::EventKind::FailureSite) > 0);
    obs::pm::RecoveryReport rep = obs::pm::diagnose(
        useHard ? hardRec : plainRec,
        useHard ? *target.hardened : *target.plain, appName, s.token());
    std::printf("diagnosing the %s leg\n",
                useHard ? "hardened" : "unhardened");
    std::printf("%s", obs::pm::renderText(rep).c_str());
    if (!jsonPath.empty()) {
        if (!writeFile(jsonPath, obs::pm::toJson(rep) + "\n"))
            return false;
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return !rep.episodes.empty();
}

/** The campaign base config for (target, spec) — mirrors
 *  explore::runOneSchedule's unhardened leg. */
vm::VmConfig
campaignBaseConfig(const Target &target, const ScheduleSpec &s,
                   const CampaignOptions &opts)
{
    vm::VmConfig cfg;
    s.applyTo(cfg);
    cfg.pctHorizon = target.horizon;
    cfg.quantum = target.quantum;
    cfg.maxSteps = opts.maxSteps;
    cfg.maxRetries = opts.maxRetries;
    return cfg;
}

/**
 * --repro --record-replay: record the unhardened leg of (target,
 * schedule) replay-grade, optionally ddmin-minimise, verify, and save.
 */
int
recordReplayLog(const Target &target, const ScheduleSpec &s,
                const CampaignOptions &opts, const std::string &appName,
                const std::string &path, bool minimize)
{
    vm::VmConfig cfg = campaignBaseConfig(target, s, opts);
    obs::FlightRecorder rec(4096, obs::RecorderMode::Grow);
    cfg.recorder = &rec;
    cfg.recordSharedAccesses = true;
    vm::RunResult r = vm::runProgram(*target.plain, cfg);
    cfg.recorder = nullptr;
    cfg.recordSharedAccesses = false;

    obs::replay::ReplayLog log;
    std::string err;
    if (!obs::replay::buildReplayLog(appName, s.token(), cfg, rec, r,
                                     log, err)) {
        std::fprintf(stderr, "record failed: %s\n", err.c_str());
        return 1;
    }
    if (minimize) {
        obs::replay::MinimizeOptions mo;
        obs::replay::MinimizeResult res =
            obs::replay::minimizeReplayLog(*target.plain, log, mo);
        if (res.ok) {
            std::printf("minimised: %zu -> %zu switches (%llu "
                        "replay probes)\n",
                        res.originalSwitches, res.minimizedSwitches,
                        (unsigned long long)res.probes);
            log = res.minimized;
        } else {
            std::fprintf(stderr, "minimisation skipped: %s\n",
                         res.err.c_str());
        }
    }

    // Never hand out an unverified log: one strict replay must match.
    obs::replay::ReplayRun check =
        obs::replay::replayLog(*target.plain, log, log.engine);
    if (!check.faithful) {
        std::fprintf(stderr, "recorded log failed verification: %s\n",
                     check.mismatch.c_str());
        return 1;
    }
    if (!obs::replay::saveReplayLog(path, log, err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 1;
    }
    std::printf("wrote %s (%zu switches, %zu lock acquisitions, "
                "outcome %s)\n",
                path.c_str(), log.switches.size(), log.locks.size(),
                log.outcome.c_str());
    return 0;
}

int
runRepro(const std::string &appName, const std::string &token,
         const std::string &tracePath, const std::string &metricsPath,
         bool timeline, bool diagnose, const std::string &diagJsonPath,
         const std::string &recordReplayPath, bool minimize,
         bool profile, const std::string &profilePath)
{
    const AppSpec *spec = findApp(appName);
    if (!spec) {
        std::fprintf(stderr, "unknown app '%s'\n", appName.c_str());
        return 2;
    }
    ScheduleSpec s;
    std::string tokErr;
    if (!parseScheduleToken(token, s, tokErr)) {
        std::fprintf(stderr, "%s\n", tokErr.c_str());
        return 2;
    }
    CampaignApp app = prepareCampaignApp(*spec);
    Target target = campaignTarget(app);
    CampaignOptions opts;
    opts.collectProfile = profile;
    ScheduleOutcome o = runOneSchedule(target, s, opts);

    std::printf("=== repro %s %s ===\n", appName.c_str(),
                token.c_str());
    std::printf("unhardened: %s%s%s  (%llu steps)\n",
                vm::outcomeName(o.unhardened),
                o.unhardenedTag.empty() ? "" : " @ ",
                o.unhardenedTag.c_str(), (unsigned long long)o.steps);
    std::printf("  correct: %s  inconclusive: %s\n",
                o.unhardenedCorrect ? "yes" : "no",
                o.unhardenedInconclusive ? "yes" : "no");
    if (o.hardenedRan)
        std::printf("hardened:   %s  correct: %s  chaos: %s "
                    "(%llu chaos rollbacks)\n",
                    vm::outcomeName(o.hardened),
                    o.hardenedCorrect ? "yes" : "no",
                    o.chaos ? "on" : "off",
                    (unsigned long long)o.chaosRollbacks);
    if (o.diverged)
        std::printf("ENGINE DIVERGENCE: %s\n", o.divergenceMsg.c_str());
    else
        std::printf("engines: Decoded == Reference (tick-identical)\n");

    bool profileOk = true;
    if (profile) {
        obs::prof::ProfileDoc doc;
        if (o.hasProfile)
            doc.phaseGroups.emplace_back(appName + " " + token,
                                         o.profile);
        auto wallCell = [&](const char *leg, uint64_t us) {
            if (us)
                doc.wall.push_back({appName, token, leg, us, 1});
        };
        wallCell("unhardened", o.wallUnhardenedUs);
        wallCell("differential", o.wallDifferentialUs);
        wallCell("hardened", o.wallHardenedUs);
        wallCell("hardened_diff", o.wallHardenedDiffUs);
        std::printf("%s", obs::prof::hotPhaseTable(doc).c_str());
        if (!o.hasProfile)
            std::printf("(hardened leg did not run — no "
                        "deterministic phase profile)\n");
        if (!profilePath.empty())
            profileOk = writeProfileArtifacts(
                doc, appName + " " + token, profilePath);
    }

    bool traceOk = true;
    if (!tracePath.empty() || !metricsPath.empty() || timeline)
        traceOk = traceSchedule(target, s, opts, appName, tracePath,
                                metricsPath, timeline);
    bool diagOk = true;
    if (diagnose)
        diagOk = diagnoseSchedule(target, s, opts, appName,
                                  diagJsonPath);
    bool recordOk = true;
    if (!recordReplayPath.empty())
        recordOk = recordReplayLog(target, s, opts, appName,
                                   recordReplayPath, minimize) == 0;
    return o.diverged || !traceOk || !diagOk || !recordOk || !profileOk
               ? 1
               : 0;
}

/**
 * --replay LOG: the O(1) repro path.  Loads a replay log, re-executes
 * it under @p engineArg (default: the engine it was recorded under),
 * and reports the faithfulness verdict — exit 0 iff the replay is
 * fingerprint-identical to the recording.
 */
int
runReplay(const std::string &path, const std::string &engineArg,
          bool timeline, bool diagnose, const std::string &tracePath,
          bool profile, const std::string &profilePath)
{
    obs::replay::ReplayLog log;
    std::string err;
    if (!obs::replay::loadReplayLog(path, log, err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 2;
    }
    const AppSpec *spec = findApp(log.program);
    if (!spec) {
        std::fprintf(stderr, "replay log names unknown app '%s'\n",
                     log.program.c_str());
        return 2;
    }
    vm::ExecEngine engine = log.engine;
    if (!engineArg.empty() &&
        !obs::replay::engineFromName(engineArg, engine)) {
        std::fprintf(stderr, "unknown engine '%s' "
                             "(decoded|reference|fused)\n",
                     engineArg.c_str());
        return 2;
    }
    CampaignApp app = prepareCampaignApp(*spec);
    Target target = campaignTarget(app);

    std::printf("=== replay %s ===\n", path.c_str());
    std::printf("%s %s: recorded under %s, replaying under %s "
                "(%zu switches, %zu lock acquisitions)\n",
                log.program.c_str(),
                log.scheduleToken.empty() ? "(no token)"
                                          : log.scheduleToken.c_str(),
                obs::replay::engineName(log.engine),
                obs::replay::engineName(engine), log.switches.size(),
                log.locks.size());
    std::printf("recorded fingerprint: %s%s%s exit %lld clock %llu "
                "steps %llu memDigest %016llx\n",
                log.outcome.c_str(),
                log.failureTag.empty() ? "" : " @ ",
                log.failureTag.c_str(), (long long)log.exitCode,
                (unsigned long long)log.finalClock,
                (unsigned long long)log.finalSteps,
                (unsigned long long)log.memDigest);

    // Replay with every referee armed: the re-recording feeds the
    // lock-order check, the optional trace artifact, and the optional
    // diagnosis.
    obs::FlightRecorder rec(4096, obs::RecorderMode::Grow);
    obs::prof::PhaseProfiler prof;
    obs::replay::ReplayInstruments ins;
    ins.recorder = &rec;
    ins.recordSharedAccesses = diagnose || log.accessCount > 0;
    ins.checkLockOrder = true;
    // Profiling rides the passivity contract: the profiled replay is
    // still held to the byte-exact fingerprint below.
    if (profile)
        ins.profiler = &prof;
    obs::replay::ReplayRun rr =
        obs::replay::replayLog(*target.plain, log, engine, &ins);

    if (rr.faithful)
        std::printf("replay FAITHFUL: fingerprint, lock order%s match "
                    "the recording\n",
                    log.accessCount > 0 ? ", and access digest" : "");
    else
        std::printf("replay DIVERGED: %s\n", rr.mismatch.c_str());

    if (diagnose) {
        obs::pm::RecoveryReport rep = obs::pm::diagnose(
            rec, *target.plain, log.program, log.scheduleToken);
        std::printf("%s", obs::pm::renderText(rep).c_str());
    }
    if (profile) {
        obs::prof::ProfileDoc doc;
        obs::prof::ProfileAgg agg;
        agg.add(prof);
        doc.phaseGroups.emplace_back(
            log.program + " replay " +
                (log.scheduleToken.empty() ? std::string("(no token)")
                                           : log.scheduleToken),
            agg);
        std::printf("%s", obs::prof::hotPhaseTable(doc).c_str());
        if (!profilePath.empty() &&
            !writeProfileArtifacts(doc, log.program + " replay",
                                   profilePath))
            return 1;
    }
    if (timeline)
        std::printf("--- replay timeline (time travel) ---\n%s",
                    obs::replay::replayTimeline(log).c_str());
    if (!tracePath.empty()) {
        std::vector<obs::TraceProcess> procs = {
            {&rec, log.program + " replay " + log.scheduleToken, 1},
        };
        if (!writeFile(tracePath, obs::chromeTraceJson(procs)))
            return 1;
        std::printf("wrote %s\n", tracePath.c_str());
    }
    return rr.faithful ? 0 : 1;
}

/**
 * Shared strict operand scanner for the modes that take "[APP] [TOKEN]"
 * after a flag (--diagnose, --fix).  Every non-flag operand after the
 * flag is classified exactly once: a string the *strict*
 * parseScheduleToken accepts is the schedule token; otherwise it must
 * name a registered kernel.  Anything else is a one-line error naming
 * both failed interpretations — no positional guessing.
 */
struct AppTokenArgs
{
    bool ok = false;
    std::string app;   ///< kernel name (default already applied)
    std::string token; ///< strict schedule token ("" when absent)
    std::string error; ///< one-line parse error when !ok
};

AppTokenArgs
parseAppTokenOperands(int argc, char **argv, const char *flag,
                      const char *defaultApp)
{
    AppTokenArgs out;
    out.app = defaultApp;
    out.ok = true;
    int at = -1;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            at = i;
    if (at < 0)
        return out;
    bool appSet = false;
    for (int i = at + 1; i < argc && argv[i][0] != '-'; ++i) {
        ScheduleSpec s;
        std::string tokErr;
        if (parseScheduleToken(argv[i], s, tokErr)) {
            if (!out.token.empty()) {
                out.ok = false;
                out.error = std::string(flag) +
                            ": two schedule tokens ('" + out.token +
                            "' and '" + argv[i] + "')";
                return out;
            }
            out.token = argv[i];
        } else if (findApp(argv[i])) {
            if (appSet) {
                out.ok = false;
                out.error = std::string(flag) + ": two kernels ('" +
                            out.app + "' and '" + argv[i] + "')";
                return out;
            }
            out.app = argv[i];
            appSet = true;
        } else {
            out.ok = false;
            out.error = std::string(flag) + ": '" + argv[i] +
                        "' is neither a schedule token (" + tokErr +
                        ") nor a known kernel";
            return out;
        }
    }
    return out;
}

/** --diagnose [APP] TOKEN standalone mode (APP defaults to ZSNES). */
int
runDiagnose(const std::string &appName, const std::string &token,
            const std::string &jsonPath)
{
    const AppSpec *spec = findApp(appName);
    if (!spec) {
        std::fprintf(stderr, "unknown app '%s'\n", appName.c_str());
        return 2;
    }
    ScheduleSpec s;
    std::string tokErr;
    if (!parseScheduleToken(token, s, tokErr)) {
        std::fprintf(stderr, "%s\n", tokErr.c_str());
        return 2;
    }
    CampaignApp app = prepareCampaignApp(*spec);
    Target target = campaignTarget(app);
    return diagnoseSchedule(target, s, CampaignOptions{}, appName,
                            jsonPath)
               ? 0
               : 1;
}

/**
 * --fix [APP] [TOKEN]: the whole closed loop for one kernel —
 * diagnose a failing run, synthesize a fix from the diagnosis,
 * ddmin-minimise the failing schedule, and validate the patch
 * (minimized replay + campaign matrix + clean-run overhead).
 */
int
runFix(const std::string &appName, const std::string &token,
       const std::string &jsonPath, unsigned seeds, unsigned workers)
{
    const AppSpec *spec = findApp(appName);
    if (!spec) {
        std::fprintf(stderr, "unknown app '%s'\n", appName.c_str());
        return 2;
    }
    CampaignApp app = prepareCampaignApp(*spec);
    Target target = campaignTarget(app);
    CampaignOptions opts;

    // Step 1: record one failing run of the unhardened build in
    // diagnosis + replay grade (Grow ring, shared accesses on).
    auto rec = std::make_unique<obs::FlightRecorder>(
        4096, obs::RecorderMode::Grow);
    vm::VmConfig cfg;
    vm::RunResult fail;
    std::string schedToken;
    bool gotFailure = false;
    if (!token.empty()) {
        ScheduleSpec s;
        std::string tokErr;
        if (!parseScheduleToken(token, s, tokErr)) {
            std::fprintf(stderr, "%s\n", tokErr.c_str());
            return 2;
        }
        cfg = campaignBaseConfig(target, s, opts);
        cfg.recorder = rec.get();
        cfg.recordSharedAccesses = true;
        fail = vm::runProgram(*target.plain, cfg);
        cfg.recorder = nullptr;
        cfg.recordSharedAccesses = false;
        schedToken = token;
        gotFailure = !runIsCorrect(*spec, fail);
        if (!gotFailure) {
            std::fprintf(stderr,
                         "%s %s: schedule does not fail (%s) — "
                         "nothing to fix\n",
                         appName.c_str(), token.c_str(),
                         vm::outcomeName(fail.outcome));
            return 1;
        }
    } else {
        // No token: probe the kernel's scripted failure-forcing
        // schedule (the hand-tuned delay rules) over a few seeds.
        for (uint64_t seed = 1; seed <= 8 && !gotFailure; ++seed) {
            rec = std::make_unique<obs::FlightRecorder>(
                4096, obs::RecorderMode::Grow);
            cfg = spec->buggyConfig;
            cfg.seed = seed;
            cfg.recorder = rec.get();
            cfg.recordSharedAccesses = true;
            fail = vm::runProgram(*target.plain, cfg);
            cfg.recorder = nullptr;
            cfg.recordSharedAccesses = false;
            gotFailure = !runIsCorrect(*spec, fail);
        }
        if (!gotFailure) {
            std::fprintf(stderr,
                         "%s: scripted buggy schedule never failed "
                         "over seeds 1..8 — nothing to fix\n",
                         appName.c_str());
            return 1;
        }
    }
    std::printf("recorded failing run: %s%s%s (%llu steps)\n",
                vm::outcomeName(fail.outcome),
                fail.failureTag.empty() ? "" : " @ ",
                fail.failureTag.c_str(),
                (unsigned long long)fail.stats.steps);

    // Step 2: postmortem diagnosis.  Prefer the hardened leg under
    // the same schedule: recovery retries until the enabling write
    // lands, so the racing partner is *in* the trace — the unhardened
    // leg dies at the failure site before the partner ever runs (the
    // diagnoseSchedule() leg-selection rule).
    obs::FlightRecorder hardRec(4096, obs::RecorderMode::Grow);
    {
        vm::VmConfig hcfg = cfg;
        hcfg.recorder = &hardRec;
        hcfg.recordSharedAccesses = true;
        vm::runProgram(*target.hardened, hcfg);
    }
    bool useHard =
        hardRec.totalOf(obs::EventKind::RecoveryDone) > 0 ||
        hardRec.totalOf(obs::EventKind::FailureSite) > 0;
    obs::pm::RecoveryReport rep = obs::pm::diagnose(
        useHard ? hardRec : *rec,
        useHard ? *target.hardened : *target.plain, appName,
        schedToken);
    if (rep.episodes.empty()) {
        std::fprintf(stderr, "%s: diagnosis produced no episodes\n",
                     appName.c_str());
        return 1;
    }
    std::printf("diagnosis: %s on '%s'\n",
                obs::pm::verdictName(rep.primary()->verdict),
                rep.primary()->variable.c_str());

    // Step 3: replay log of the failing run, ddmin-minimised — the
    // "exact buggy interleaving" obligation of the validator.
    obs::replay::ReplayLog log;
    const obs::replay::ReplayLog *logp = nullptr;
    std::string err;
    if (obs::replay::buildReplayLog(appName, schedToken, cfg, *rec,
                                    fail, log, err)) {
        obs::replay::MinimizeResult mres =
            obs::replay::minimizeReplayLog(*target.plain, log, {});
        if (mres.ok) {
            std::printf("minimised failing schedule: %zu -> %zu "
                        "switches\n",
                        mres.originalSwitches, mres.minimizedSwitches);
            log = mres.minimized;
        }
        logp = &log;
    } else {
        std::fprintf(stderr, "replay log skipped: %s\n", err.c_str());
    }

    // Step 4: synthesize, then prove the patch regression-free.
    fix::FixPlan plan = fix::synthesizeFix(*target.plain, rep);
    if (!plan.ok) {
        std::printf("%s", fix::renderPatchText(plan).c_str());
        if (!jsonPath.empty() &&
            writeFile(jsonPath, fix::patchToJson(plan) + "\n"))
            std::printf("wrote %s\n", jsonPath.c_str());
        return 1;
    }
    fix::ValidationOptions vopts;
    vopts.campaign.seedsPerPolicy = seeds;
    vopts.campaign.workers = workers;
    vopts.cleanConfig = spec->cleanConfig;
    std::printf("validating: %s replay + %zu-policy x %u-seed "
                "campaign + overhead bound...\n",
                logp ? "minimized" : "(no)",
                vopts.campaign.policies.size(), seeds);
    fix::ValidationResult val =
        fix::validatePatch(*plan.patched, target, logp, vopts);
    std::printf("%s", fix::renderPatchText(plan, &val).c_str());
    if (!jsonPath.empty()) {
        if (!writeFile(jsonPath, fix::patchToJson(plan, &val) + "\n"))
            return 1;
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return val.ok() ? 0 : 1;
}

void
writeMetricsJson(JsonWriter &w, const TargetReport &tr)
{
    w.key("metrics").beginObject();
    for (const auto &[label, reg] : tr.policyMetrics) {
        w.key(label);
        reg.writeJson(w);
    }
    w.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string tracePath = argString(argc, argv, "--trace", "");
    const std::string metricsPath =
        argString(argc, argv, "--metrics", "");
    const bool timeline = hasFlag(argc, argv, "--timeline");
    const bool diagnose = hasFlag(argc, argv, "--diagnose");
    const std::string diagJsonPath =
        argString(argc, argv, "--diagnose-json", "");
    const auto [profileOn, profilePath] =
        argOptValue(argc, argv, "--profile");

    if (hasFlag(argc, argv, "--replay")) {
        const std::string path = argString(argc, argv, "--replay", "");
        if (path.empty() || path[0] == '-') {
            std::fprintf(stderr,
                         "usage: bench_explore --replay LOG "
                         "[--engine decoded|reference|fused] "
                         "[--timeline] [--diagnose] [--trace F]\n");
            return 2;
        }
        return runReplay(path, argString(argc, argv, "--engine", ""),
                         timeline, diagnose, tracePath, profileOn,
                         profilePath);
    }

    if (hasFlag(argc, argv, "--repro")) {
        // --repro APP TOKEN: the two operands follow the flag.
        const char *app = nullptr, *tok = nullptr;
        for (int i = 1; i < argc; ++i)
            if (std::strcmp(argv[i], "--repro") == 0 && i + 2 < argc) {
                app = argv[i + 1];
                tok = argv[i + 2];
            }
        if (!app || !tok) {
            std::fprintf(stderr,
                         "usage: bench_explore --repro APP TOKEN "
                         "[--trace F] [--metrics F] [--timeline] "
                         "[--diagnose] [--diagnose-json F] "
                         "[--record-replay F [--minimize]]\n");
            return 2;
        }
        return runRepro(app, tok, tracePath, metricsPath, timeline,
                        diagnose, diagJsonPath,
                        argString(argc, argv, "--record-replay", ""),
                        hasFlag(argc, argv, "--minimize"), profileOn,
                        profilePath);
    }

    if (hasFlag(argc, argv, "--fix")) {
        // --fix [APP] [TOKEN]: strict operand classification shared
        // with --diagnose; the default kernel is ZSNES.
        AppTokenArgs fa =
            parseAppTokenOperands(argc, argv, "--fix", "ZSNES");
        if (!fa.ok) {
            std::fprintf(stderr, "%s\n", fa.error.c_str());
            std::fprintf(stderr, "usage: bench_explore --fix [APP] "
                                 "[TOKEN] [--fix-json F] [--seeds N] "
                                 "[--workers N]\n");
            return 2;
        }
        return runFix(fa.app, fa.token,
                      argString(argc, argv, "--fix-json", ""),
                      argUnsigned(argc, argv, "--seeds", 40),
                      argUnsigned(argc, argv, "--workers", 4));
    }

    if (diagnose) {
        // --diagnose [APP] TOKEN: strict operand classification (a
        // lone schedule token runs against ZSNES, the paper's running
        // example); a token is required.
        AppTokenArgs da =
            parseAppTokenOperands(argc, argv, "--diagnose", "ZSNES");
        if (da.ok && !da.token.empty())
            return runDiagnose(da.app, da.token, diagJsonPath);
        if (!da.ok)
            std::fprintf(stderr, "%s\n", da.error.c_str());
        std::fprintf(stderr, "usage: bench_explore --diagnose [APP] "
                             "TOKEN [--diagnose-json F]\n");
        return 2;
    }

    const bool smoke = hasFlag(argc, argv, "--smoke");
    const bool doSpeedup = !hasFlag(argc, argv, "--no-speedup");
    // Guided search always runs in full mode (the committed artifact
    // pins guided-vs-blind budgets and the gates below compare them);
    // smoke opts in with --guided.
    const bool guided = !smoke || hasFlag(argc, argv, "--guided");
    const uint64_t guidedBudget =
        argUnsigned(argc, argv, "--guided-budget", smoke ? 250 : 1500);
    const std::string corpusDir =
        argString(argc, argv, "--corpus-dir", "");
    unsigned seeds =
        argUnsigned(argc, argv, "--seeds", smoke ? 40 : 1250);
    unsigned workers = argUnsigned(argc, argv, "--workers", 4);
    const bool serve = hasFlag(argc, argv, "--serve");
    const unsigned servePort = argUnsigned(argc, argv, "--serve", 0);
    const std::string servePortFile =
        argString(argc, argv, "--serve-port-file", "");

    std::vector<std::string> names =
        splitList(argString(argc, argv, "--apps", ""));
    const bool explicitApps = !names.empty();
    if (names.empty())
        for (const AppSpec &a : allApps())
            names.push_back(a.name);
    // Challenge kernels never join the Table 2 matrix (its per-kernel
    // gates — rediscovery, recovery tax, fix validation — are about
    // the paper's ten bugs); guided mode runs them through a dedicated
    // probe-plus-guided campaign below.  An explicit --apps list is
    // taken literally.
    std::vector<std::string> challengeNames;
    if (guided && !explicitApps)
        for (const AppSpec &a : challengeApps())
            challengeNames.push_back(a.name);
    auto isChallenge = [&](const std::string &n) {
        for (const std::string &c : challengeNames)
            if (c == n)
                return true;
        return false;
    };

    std::printf("=== schedule-exploration campaign (%s) ===\n\n",
                smoke ? "smoke" : "full");
    std::printf("preparing %zu kernels...\n", names.size());

    std::vector<CampaignApp> prepared;
    std::vector<Target> targets;
    prepared.reserve(names.size());
    for (const std::string &n : names) {
        const AppSpec *spec = findApp(n);
        if (!spec) {
            std::fprintf(stderr, "unknown app '%s'\n", n.c_str());
            return 2;
        }
        prepared.push_back(prepareCampaignApp(*spec));
    }
    for (const CampaignApp &app : prepared)
        targets.push_back(campaignTarget(app));

    CampaignOptions opts;
    opts.seedsPerPolicy = seeds;
    opts.workers = workers;
    opts.collectMetrics = true;
    // Every first-failing schedule in BENCH_explore.json carries a
    // postmortem diagnosis (racy pair + verdict); the replay happens
    // after aggregation, outside the worker pool.
    opts.diagnoseFailures = true;
    opts.abortArtifactDir = argString(argc, argv, "--abort-dir", "");
    // Every rediscovered kernel failure leaves a ddmin-minimised,
    // strictly-verified replay log behind — the O(1) repro corpus.
    opts.replayLogDir =
        argString(argc, argv, "--replay-dir", "replay-logs");
    std::string policyList = argString(argc, argv, "--policies", "");
    if (!policyList.empty()) {
        opts.policies.clear();
        for (const std::string &p : splitList(policyList)) {
            ScheduleSpec s;
            if (!parseScheduleToken(p + ":s1", s)) {
                std::fprintf(stderr, "bad policy '%s'\n", p.c_str());
                return 2;
            }
            opts.policies.push_back({s.policy, s.depth});
        }
    }
    if (smoke) {
        // CI cares about the oracle plumbing, not exhaustiveness.
        opts.stopAfterFailures = 1;
        opts.maxSteps = 2'000'000;
    }
    if (guided) {
        opts.searchMode = SearchMode::Guided;
        opts.guidedBudget = guidedBudget;
        opts.corpusDir = corpusDir;
    }
    // Interleaving coverage is always folded in campaign mode: the
    // kernels[].coverage aggregates below (and the full-mode gate on
    // them) want nonzero distinct-edge counts for every kernel.
    opts.collectCoverage = true;
    // Same for the recovery-cost profile: kernels[].profile and the
    // full-mode recovery-tax gate want it on every run, and every
    // profiled hardened leg's bare replicas live-prove the profiler's
    // passivity.  --profile only adds printing/export on top.
    opts.collectProfile = true;

    // --serve: embedded telemetry endpoints for the campaign's
    // lifetime.  The telemetry sink is observational only — workers
    // publish into it, readers snapshot out of it, and the
    // deterministic report never touches it.
    CampaignTelemetry telemetry;
    obs::serve::HttpServer server;
    if (serve) {
        server.route("/metrics", [&telemetry, &server] {
            obs::serve::HttpResponse r;
            r.contentType =
                "text/plain; version=0.0.4; charset=utf-8";
            // The campaign metrics plus the server's own request
            // counters — the telemetry plane monitors itself.
            r.body = telemetry.prometheusText() +
                     server.prometheusCounters();
            return r;
        });
        server.route("/status", [&telemetry] {
            obs::serve::HttpResponse r;
            r.contentType = "application/json";
            r.body = telemetry.statusJson() + "\n";
            return r;
        });
        server.route("/coverage", [&telemetry] {
            obs::serve::HttpResponse r;
            r.contentType = "application/json";
            r.body = telemetry.coverageJson() + "\n";
            return r;
        });
        server.route("/profile", [&telemetry] {
            obs::serve::HttpResponse r;
            r.contentType = "application/json";
            r.body = telemetry.profileJson() + "\n";
            return r;
        });
        std::string err;
        if (servePort > 65535 ||
            !server.start(uint16_t(servePort), err)) {
            std::fprintf(stderr, "--serve: %s\n",
                         servePort > 65535 ? "port out of range"
                                           : err.c_str());
            return 2;
        }
        std::printf("serving telemetry on 127.0.0.1:%u "
                    "(/metrics /status /coverage /profile)\n",
                    unsigned(server.port()));
        if (!servePortFile.empty() &&
            !writeFile(servePortFile,
                       std::to_string(server.port()) + "\n"))
            return 2;
        opts.telemetry = &telemetry;
    }

    std::printf("campaign: %zu kernels x %zu policies x %u seeds, "
                "%u workers%s\n\n",
                targets.size(), opts.policies.size(),
                opts.seedsPerPolicy, opts.workers,
                guided ? ", guided pass on" : "");

    CampaignReport rep = runCampaign(targets, opts);
    std::printf("%s\n", rep.summary().c_str());

    // --trace in campaign mode: replay the first failing schedule the
    // campaign found, flight recorder attached, and emit the trace.
    bool traceOk = true;
    if (!tracePath.empty()) {
        bool traced = false;
        for (size_t ti = 0; ti < rep.targets.size() && !traced; ++ti) {
            const TargetReport &tr = rep.targets[ti];
            if (!tr.foundFailure)
                continue;
            std::printf("tracing first failing schedule: %s %s\n",
                        tr.name.c_str(),
                        tr.firstFailure.token().c_str());
            traceOk = traceSchedule(targets[ti], tr.firstFailure, opts,
                                    tr.name, tracePath, metricsPath,
                                    timeline);
            traced = true;
        }
        if (!traced)
            std::printf("--trace: no failing schedule to trace\n");
    }

    // Fix-synthesis pass: every kernel whose failure the campaign
    // rediscovered and diagnosed gets a synthesized patch, validated
    // in place (minimized replay + campaign re-run on the patched
    // build + overhead bound).  Results land in kernels[].fix.
    std::printf("\n=== fix synthesis ===\n");
    for (size_t ti = 0; ti < rep.targets.size(); ++ti) {
        TargetReport &tr = rep.targets[ti];
        if (!tr.foundFailure || !tr.hasDiagnosis)
            continue;
        tr.fix.attempted = true;
        fix::FixPlan plan =
            fix::synthesizeFix(*targets[ti].plain, tr.diagnosis);
        tr.fix.synthesized = plan.ok;
        tr.fix.strategy = fix::strategyName(plan.strategy);
        tr.fix.verdict = obs::pm::verdictName(plan.verdict);
        tr.fix.variable = plan.variable;
        tr.fix.mutexName = plan.mutexName;
        tr.fix.usedExistingMutex = plan.usedExistingMutex;
        tr.fix.edits = plan.edits.size();
        tr.fix.error = plan.error;
        if (!plan.ok) {
            std::printf("%s", fix::renderPatchText(plan).c_str());
            continue;
        }
        obs::replay::ReplayLog log;
        const obs::replay::ReplayLog *logp = nullptr;
        std::string lerr;
        if (tr.hasReplayLog &&
            obs::replay::loadReplayLog(tr.replayLogPath, log, lerr))
            logp = &log;
        fix::ValidationOptions vopts;
        vopts.campaign = opts;
        // Smoke mode stops the *search* after one failure; the
        // validation campaign must not stop early (it expects zero
        // failures), so just trim its seed budget instead.
        vopts.campaign.stopAfterFailures = 0;
        // The validation re-run is a sub-campaign: keep it out of the
        // live /status counters and skip its coverage folds.
        vopts.campaign.telemetry = nullptr;
        vopts.campaign.collectCoverage = false;
        if (smoke)
            vopts.campaign.seedsPerPolicy =
                std::min(opts.seedsPerPolicy, 12u);
        vopts.cleanConfig = prepared[ti].spec->cleanConfig;
        fix::ValidationResult val =
            fix::validatePatch(*plan.patched, targets[ti], logp,
                               vopts);
        tr.fix.replayChecked = val.replayChecked;
        tr.fix.replayFailureGone = val.replayFailureGone;
        tr.fix.campaignRan = val.campaignRan;
        tr.fix.patchedSchedules = val.schedules;
        tr.fix.patchedFailing = val.failing;
        tr.fix.patchedDeadlocks = val.deadlocks;
        tr.fix.patchedDivergences = val.divergences;
        tr.fix.patchedInconclusive = val.inconclusive;
        tr.fix.overhead = val.overhead;
        tr.fix.overheadOk = val.overheadOk;
        tr.fix.validated = val.ok();
        if (!val.ok() && tr.fix.error.empty())
            tr.fix.error = val.error;
        std::printf("%s", fix::renderPatchText(plan, &val).c_str());
    }

    // Challenge kernels: the explorer's hard mode.  Each one gets a
    // dedicated blind pct:d2 probe — the single-change-point schedule
    // family that structurally cannot trigger a two-window bug — plus
    // the same guided pass as the Table 2 kernels.  The full-mode gate
    // below pins both sides: blind must come up empty over the whole
    // probe budget while guided finds the failure within its own.
    const unsigned probeSeeds = smoke ? 40 : 1000;
    // The challenge bar is fixed: guided must find the two-window
    // failure within 250 schedules, whatever budget the Table 2
    // kernels run with.
    const uint64_t challengeBudget = std::min<uint64_t>(guidedBudget, 250);
    if (!challengeNames.empty()) {
        std::printf("\n=== challenge kernels ===\n");
        std::printf("blind probe pct:d2 x %u seeds + guided budget "
                    "%llu per kernel\n",
                    probeSeeds, (unsigned long long)challengeBudget);
        std::vector<CampaignApp> cprep;
        std::vector<Target> ctargets;
        for (const std::string &n : challengeNames)
            cprep.push_back(prepareCampaignApp(*findApp(n)));
        for (const CampaignApp &app : cprep)
            ctargets.push_back(campaignTarget(app));
        CampaignOptions copts = opts;
        copts.policies = {{vm::SchedPolicy::Pct, 2}};
        copts.seedsPerPolicy = probeSeeds;
        copts.guidedBudget = challengeBudget;
        // A probe hit fails the gate anyway — no point finishing the
        // probe, diagnosing the fluke, or minimising a replay for it.
        copts.stopAfterFailures = 1;
        copts.diagnoseFailures = false;
        copts.replayLogDir.clear();
        // No failure means no recovery episodes: the recovery-tax
        // gate has nothing to measure here, so don't collect.
        copts.collectProfile = false;
        CampaignReport crep = runCampaign(ctargets, copts);
        std::printf("%s\n", crep.summary().c_str());
        rep.divergences += crep.divergences;
        rep.unrecovered += crep.unrecovered;
        for (TargetReport &ctr : crep.targets)
            rep.targets.push_back(std::move(ctr));
    }

    if (guided) {
        std::printf("\n=== guided search ===\n");
        for (const TargetReport &tr : rep.targets) {
            if (!tr.hasGuided)
                continue;
            const GuidedSummary &gs = tr.guided;
            std::printf("%-14s %4llu/%llu schedules  corpus %3llu  "
                        "yield %.3f",
                        tr.name.c_str(),
                        (unsigned long long)gs.schedules,
                        (unsigned long long)gs.budget,
                        (unsigned long long)gs.corpusEntries,
                        gs.mutationYield);
            if (gs.foundFailure)
                std::printf("  found %s @ %llu (blind %llu)",
                            gs.firstFailure.token().c_str(),
                            (unsigned long long)gs.seedsToFirstFailure,
                            (unsigned long long)
                                gs.blindSeedsToFirstFailure);
            else
                std::printf("  no failure");
            std::printf("\n");
        }
    }

    // Parallel speedup: a fixed sub-campaign, 1 worker vs N.  The
    // measurement is honest about the host: with fewer hardware
    // threads than workers (CI containers are often single-core) the
    // workers time-slice one core and the ratio hovers near 1.0, so
    // hw_threads is recorded alongside for interpretation.
    unsigned hw = std::thread::hardware_concurrency();
    double speedup = 0, base_sps = 0, par_sps = 0;
    if (doSpeedup) {
        CampaignOptions sopts = opts;
        sopts.seedsPerPolicy = smoke ? 6 : 25;
        sopts.policies = {{vm::SchedPolicy::Pct, 3}};
        sopts.stopAfterFailures = 0;
        // A timing measurement: no live telemetry, no coverage folds.
        sopts.telemetry = nullptr;
        sopts.collectCoverage = false;
        std::vector<Target> sub(targets.begin(),
                                targets.begin() +
                                    std::min<size_t>(targets.size(), 2));
        sopts.workers = 1;
        CampaignReport r1 = runCampaign(sub, sopts);
        sopts.workers = workers;
        CampaignReport rn = runCampaign(sub, sopts);
        base_sps = r1.schedulesPerSec;
        par_sps = rn.schedulesPerSec;
        if (base_sps > 0)
            speedup = par_sps / base_sps;
        std::printf("parallel speedup (%u workers vs 1): %.2fx "
                    "(%.1f -> %.1f sched/s, %u hardware threads)\n\n",
                    workers, speedup, base_sps, par_sps, hw);
    }

    // Scrape-pressure guard: the same fixed sub-campaign bare, then
    // with 64 threads hammering /metrics throughout — the workers'
    // schedules/sec should not care (the handlers only read snapshots).
    // Informational, not exit-gated: on an oversubscribed CI box the
    // scrapers and workers time-slice the same cores, so the ratio is
    // recorded (with hw_threads) rather than asserted.
    bool guardRan = false;
    double guard_bare_sps = 0, guard_load_sps = 0, guard_ratio = 0;
    uint64_t guard_scrapes = 0;
    if (serve) {
        CampaignOptions gopts = opts;
        gopts.seedsPerPolicy = smoke ? 6 : 25;
        gopts.policies = {{vm::SchedPolicy::Pct, 3}};
        gopts.stopAfterFailures = 0;
        gopts.telemetry = nullptr;
        gopts.collectCoverage = false;
        std::vector<Target> sub(targets.begin(),
                                targets.begin() +
                                    std::min<size_t>(targets.size(), 2));
        CampaignReport bare = runCampaign(sub, gopts);

        std::atomic<bool> stopScrape{false};
        std::atomic<uint64_t> scrapes{0};
        std::vector<std::thread> scrapers;
        scrapers.reserve(64);
        for (int i = 0; i < 64; ++i)
            scrapers.emplace_back([&] {
                while (!stopScrape.load(std::memory_order_relaxed)) {
                    int status = 0;
                    std::string body, err;
                    if (obs::serve::httpGet(server.port(), "/metrics",
                                            status, body, err) &&
                        status == 200)
                        scrapes.fetch_add(1,
                                          std::memory_order_relaxed);
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
                }
            });
        CampaignReport loaded = runCampaign(sub, gopts);
        stopScrape.store(true);
        for (auto &th : scrapers)
            th.join();

        guardRan = true;
        guard_bare_sps = bare.schedulesPerSec;
        guard_load_sps = loaded.schedulesPerSec;
        guard_scrapes = scrapes.load();
        if (guard_bare_sps > 0)
            guard_ratio = guard_load_sps / guard_bare_sps;
        std::printf("serve guard: %.1f sched/s bare vs %.1f under 64 "
                    "concurrent /metrics scrapers (%.2fx, %llu "
                    "scrapes)\n\n",
                    guard_bare_sps, guard_load_sps, guard_ratio,
                    (unsigned long long)guard_scrapes);
    }

    // Recovery-cost profile rollup: every kernel's per-policy
    // aggregates (matrix order, so worker-count independent) plus the
    // wall-clock cells, and a campaign-wide total.
    obs::prof::ProfileAgg profTotal;
    obs::prof::ProfileDoc profDoc;
    bool profileArtifactsOk = true;
    for (const TargetReport &tr : rep.targets) {
        if (!tr.hasProfile)
            continue;
        profTotal.merge(tr.profile);
        for (const auto &[label, agg] : tr.policyProfiles)
            if (!agg.empty())
                profDoc.phaseGroups.emplace_back(
                    tr.name + "/" + label, agg);
        for (const obs::prof::WallCell &c : tr.wall)
            profDoc.wall.push_back(c);
    }
    if (profileOn) {
        std::printf("\n=== recovery-cost profile ===\n%s",
                    obs::prof::hotPhaseTable(profDoc).c_str());
        if (!profilePath.empty())
            profileArtifactsOk = writeProfileArtifacts(
                profDoc, "campaign", profilePath);
    }

    // BENCH_explore.json.
    JsonWriter w(2);
    w.beginObject();
    w.key("bench").value("explore");
    w.key("mode").value(smoke ? "smoke" : "full");
    w.key("workers").value(workers);
    w.key("hw_threads").value(hw);
    w.key("seeds_per_policy").value(seeds);
    w.key("schedules").value(rep.schedules);
    w.key("vm_runs").value(rep.vmRuns);
    w.key("total_steps").value(rep.totalSteps);
    w.key("seconds").value(rep.seconds, "%.3f");
    w.key("schedules_per_sec").value(rep.schedulesPerSec, "%.1f");
    w.key("divergences").value(rep.divergences);
    w.key("unrecovered").value(rep.unrecovered);
    w.key("speedup").beginObject();
    w.key("workers").value(workers);
    w.key("baseline_sched_per_sec").value(base_sps, "%.1f");
    w.key("parallel_sched_per_sec").value(par_sps, "%.1f");
    w.key("speedup").value(speedup, "%.2f");
    w.endObject();
    if (guardRan) {
        w.key("serve_guard").beginObject();
        w.key("scrapers").value(64);
        w.key("scrapes").value(guard_scrapes);
        w.key("bare_sched_per_sec").value(guard_bare_sps, "%.1f");
        w.key("loaded_sched_per_sec").value(guard_load_sps, "%.1f");
        w.key("ratio").value(guard_ratio, "%.2f");
        w.endObject();
    }
    if (!profTotal.empty()) {
        w.key("profile");
        profTotal.writeJson(w);
    }
    w.key("kernels").beginArray();
    for (const TargetReport &tr : rep.targets) {
        w.beginObject();
        w.key("name").value(tr.name);
        w.key("schedules").value(tr.schedules);
        w.key("skipped").value(tr.skipped);
        w.key("failing_schedules").value(tr.failingSchedules);
        w.key("deadlock_schedules").value(tr.deadlockSchedules);
        w.key("inconclusive").value(tr.inconclusive);
        w.key("distinct_failure_tags")
            .value(uint64_t(tr.failureTags.size()));
        w.key("first_failure")
            .value(tr.foundFailure ? tr.firstFailure.token()
                                   : std::string());
        w.key("first_failure_seed_budget")
            .value(tr.firstFailureSeedBudget);
        w.key("divergences").value(tr.divergences);
        w.key("unrecovered").value(tr.unrecovered);
        w.key("hardened_inconclusive").value(tr.hardenedInconclusive);
        w.key("chaos_runs").value(tr.chaosRuns);
        w.key("chaos_rollbacks").value(tr.chaosRollbacks);
        if (tr.hasCoverage) {
            w.key("coverage").beginObject();
            w.key("distinct_edges").value(tr.coverageDistinctEdges);
            w.key("novel_schedules").value(tr.coverageNovelSchedules);
            w.key("novelty_rate")
                .value(tr.coverageNoveltyRate, "%.4f");
            w.key("edges_at_first_failure")
                .value(tr.coverageEdgesAtFirstFailure);
            w.key("digest").value(
                strfmt("%016llx",
                       (unsigned long long)tr.coverageDigest));
            w.key("growth").beginArray();
            for (const auto &[sched, edges] : tr.coverageGrowth) {
                w.beginArray();
                w.value(sched);
                w.value(edges);
                w.endArray();
            }
            w.endArray();
            w.endObject();
        }
        if (isChallenge(tr.name)) {
            // For a challenge kernel the blind matrix above *is* the
            // probe: pct:d2 only, over probeSeeds seeds.
            w.key("challenge").value(true);
            w.key("blind_probe").beginObject();
            w.key("policy").value("pct:d2");
            w.key("seeds").value(probeSeeds);
            w.key("found").value(tr.foundFailure);
            w.key("schedules").value(tr.schedules);
            w.endObject();
        }
        if (tr.hasGuided) {
            const GuidedSummary &gs = tr.guided;
            w.key("guided").beginObject();
            w.key("budget").value(gs.budget);
            w.key("schedules").value(gs.schedules);
            w.key("fresh_schedules").value(gs.freshSchedules);
            w.key("mutated_schedules").value(gs.mutatedSchedules);
            w.key("fresh_novel").value(gs.freshNovel);
            w.key("mutation_novel").value(gs.mutationNovel);
            w.key("mutation_yield").value(gs.mutationYield, "%.4f");
            w.key("ops").beginObject();
            for (size_t op = 0; op < kMutOpCount; ++op) {
                w.key(mutOpName(MutOp(op))).beginObject();
                w.key("tried").value(gs.perOp[op]);
                w.key("novel").value(gs.perOpNovel[op]);
                w.endObject();
            }
            w.endObject();
            w.key("corpus_entries").value(gs.corpusEntries);
            w.key("corpus_digest")
                .value(strfmt("%016llx",
                              (unsigned long long)gs.corpusDigest));
            if (!gs.corpusPath.empty())
                w.key("corpus_path").value(gs.corpusPath);
            w.key("found_failure").value(gs.foundFailure);
            w.key("first_failure")
                .value(gs.foundFailure ? gs.firstFailure.token()
                                       : std::string());
            w.key("seeds_to_first_failure")
                .value(gs.seedsToFirstFailure);
            w.key("blind_seeds_to_first_failure")
                .value(gs.blindSeedsToFirstFailure);
            w.key("distinct_edges").value(gs.distinctEdges);
            w.key("coverage_digest")
                .value(strfmt("%016llx",
                              (unsigned long long)gs.coverageDigest));
            w.key("divergences").value(gs.divergences);
            w.key("unrecovered").value(gs.unrecovered);
            if (!gs.error.empty())
                w.key("error").value(gs.error);
            w.endObject();
        }
        if (tr.hasProfile) {
            w.key("profile").beginObject();
            w.key("total");
            tr.profile.writeJson(w);
            w.key("policies").beginObject();
            for (const auto &[label, agg] : tr.policyProfiles) {
                w.key(label);
                agg.writeJson(w);
            }
            w.endObject();
            w.key("wall").beginArray();
            for (const obs::prof::WallCell &c : tr.wall) {
                w.beginObject();
                w.key("policy").value(c.policy);
                w.key("leg").value(c.leg);
                w.key("micros").value(c.micros);
                w.key("spans").value(c.spans);
                w.endObject();
            }
            w.endArray();
            w.endObject();
        }
        writeMetricsJson(w, tr);
        if (tr.hasDiagnosis) {
            w.key("diagnosis_leg").value(tr.diagnosisLeg);
            w.key("diagnosis");
            obs::pm::writeJson(w, tr.diagnosis);
        }
        if (!tr.abortArtifacts.empty()) {
            w.key("abort_artifacts").beginArray();
            for (const std::string &p : tr.abortArtifacts)
                w.value(p);
            w.endArray();
        }
        if (tr.hasReplayLog || !tr.replayError.empty()) {
            w.key("replay_log").beginObject();
            if (tr.hasReplayLog) {
                w.key("path").value(tr.replayLogPath);
                w.key("switches").value(tr.replayOriginalSwitches);
                w.key("minimized_switches")
                    .value(tr.replayMinimizedSwitches);
                w.key("cross_engine_verified")
                    .value(tr.replayCrossEngineVerified);
            }
            if (!tr.replayError.empty())
                w.key("error").value(tr.replayError);
            w.endObject();
        }
        if (tr.fix.attempted) {
            w.key("fix").beginObject();
            w.key("synthesized").value(tr.fix.synthesized);
            w.key("strategy").value(tr.fix.strategy);
            w.key("verdict").value(tr.fix.verdict);
            w.key("variable").value(tr.fix.variable);
            w.key("mutex").value(tr.fix.mutexName);
            w.key("used_existing_mutex")
                .value(tr.fix.usedExistingMutex);
            w.key("edits").value(tr.fix.edits);
            w.key("replay_checked").value(tr.fix.replayChecked);
            w.key("replay_failure_gone")
                .value(tr.fix.replayFailureGone);
            w.key("campaign_ran").value(tr.fix.campaignRan);
            w.key("patched_schedules").value(tr.fix.patchedSchedules);
            w.key("patched_failing").value(tr.fix.patchedFailing);
            w.key("patched_deadlocks").value(tr.fix.patchedDeadlocks);
            w.key("patched_divergences")
                .value(tr.fix.patchedDivergences);
            w.key("patched_inconclusive")
                .value(tr.fix.patchedInconclusive);
            w.key("overhead").value(tr.fix.overhead, "%.4f");
            w.key("overhead_ok").value(tr.fix.overheadOk);
            w.key("validated").value(tr.fix.validated);
            if (!tr.fix.error.empty())
                w.key("error").value(tr.fix.error);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    std::ofstream out("BENCH_explore.json");
    out << w.str() << "\n";
    out.close();
    std::printf("wrote BENCH_explore.json\n");

    // The oracle verdict gates the exit code.
    int rc = 0;
    if (rep.divergences > 0) {
        std::fprintf(stderr, "FAIL: %llu engine divergences\n",
                     (unsigned long long)rep.divergences);
        rc = 1;
    }
    if (rep.unrecovered > 0) {
        std::fprintf(stderr, "FAIL: %llu unrecovered hardened "
                             "failures\n",
                     (unsigned long long)rep.unrecovered);
        rc = 1;
    }
    if (!traceOk) {
        std::fprintf(stderr,
                     "FAIL: trace totals mismatch RunStats\n");
        rc = 1;
    }
    if (!profileArtifactsOk) {
        std::fprintf(stderr, "FAIL: could not write the profile "
                             "artifacts\n");
        rc = 1;
    }
    if (!opts.replayLogDir.empty()) {
        for (const TargetReport &tr : rep.targets) {
            if (tr.foundFailure && !tr.hasReplayLog) {
                std::fprintf(stderr,
                             "FAIL: %s: no replay log for first "
                             "failure (%s)\n",
                             tr.name.c_str(), tr.replayError.c_str());
                rc = 1;
            }
            if (tr.hasReplayLog && !tr.replayCrossEngineVerified) {
                std::fprintf(stderr,
                             "FAIL: %s: replay log did not verify "
                             "under the Fused engine\n",
                             tr.name.c_str());
                rc = 1;
            }
        }
    }
    // Corpus persistence is an artifact obligation like the profile
    // export: asking for --corpus-dir and not getting the files is a
    // failure in any mode.
    if (!corpusDir.empty()) {
        for (const TargetReport &tr : rep.targets)
            if (tr.hasGuided && !tr.guided.error.empty()) {
                std::fprintf(stderr,
                             "FAIL: %s: corpus not persisted (%s)\n",
                             tr.name.c_str(),
                             tr.guided.error.c_str());
                rc = 1;
            }
    }
    if (!smoke) {
        // Challenge kernels are exempt: their blind leg is a probe
        // that is *supposed* to come up empty (gated the other way
        // below).
        for (const TargetReport &tr : rep.targets)
            if (!tr.foundFailure && !isChallenge(tr.name)) {
                std::fprintf(stderr,
                             "FAIL: %s: no failing schedule found\n",
                             tr.name.c_str());
                rc = 1;
            }
        // Every kernel's schedules must have exercised at least one
        // interleaving edge — an all-zero map means the coverage
        // plumbing broke, not that the kernel is boring.
        for (const TargetReport &tr : rep.targets)
            if (tr.hasCoverage && tr.coverageDistinctEdges == 0) {
                std::fprintf(stderr,
                             "FAIL: %s: zero distinct coverage "
                             "edges\n",
                             tr.name.c_str());
                rc = 1;
            }
        // Recovery-tax gate: every kernel's profiled hardened legs
        // must have paid a measurable recovery tax — recovery means
        // rollback means re-execution, so zero episodes or zero
        // re-executed steps says the profiler lost the recovery
        // story, not that recovery was free.
        for (const TargetReport &tr : rep.targets)
            if (tr.hasProfile && (tr.profile.episodes == 0 ||
                                  tr.profile.reexecSteps == 0)) {
                std::fprintf(
                    stderr,
                    "FAIL: %s: zero recovery tax in the profile "
                    "(%llu episodes, %llu reexec steps over %llu "
                    "profiled runs)\n",
                    tr.name.c_str(),
                    (unsigned long long)tr.profile.episodes,
                    (unsigned long long)tr.profile.reexecSteps,
                    (unsigned long long)tr.profile.runs);
                rc = 1;
            }
        // Close-the-loop gate: every rediscovered failure must end in
        // a synthesized, fully validated patch.
        for (const TargetReport &tr : rep.targets)
            if (tr.fix.attempted && !tr.fix.validated) {
                std::fprintf(stderr,
                             "FAIL: %s: fix not validated (%s)\n",
                             tr.name.c_str(), tr.fix.error.c_str());
                rc = 1;
            }
        if (guided) {
            // Guided efficiency gate over the Table 2 kernels: every
            // failure rediscovered, and the mean seeds-to-first-
            // failure at most half the blind matrix's (integer form:
            // 2 * sum(guided) <= sum(blind), same kernel count on
            // both sides).
            uint64_t blindSum = 0, guidedSum = 0, nGated = 0;
            bool gateable = true;
            for (const TargetReport &tr : rep.targets) {
                if (!tr.hasGuided || isChallenge(tr.name))
                    continue;
                if (!tr.guided.foundFailure) {
                    std::fprintf(stderr,
                                 "FAIL: %s: guided search found no "
                                 "failing schedule within %llu\n",
                                 tr.name.c_str(),
                                 (unsigned long long)tr.guided.budget);
                    rc = 1;
                    gateable = false;
                    continue;
                }
                blindSum += tr.guided.blindSeedsToFirstFailure;
                guidedSum += tr.guided.seedsToFirstFailure;
                ++nGated;
            }
            if (gateable && nGated > 0) {
                double gMean = double(guidedSum) / double(nGated);
                double bMean = double(blindSum) / double(nGated);
                if (2 * guidedSum > blindSum) {
                    std::fprintf(stderr,
                                 "FAIL: guided mean seeds-to-first-"
                                 "failure %.1f exceeds 0.5x the blind "
                                 "mean %.1f\n",
                                 gMean, bMean);
                    rc = 1;
                } else {
                    std::printf("guided efficiency: mean %.1f vs "
                                "blind %.1f seeds-to-first-failure "
                                "(<= 0.5x: ok)\n",
                                gMean, bMean);
                }
            }
            // Challenge gates: blind probe empty, guided finds it.
            for (const TargetReport &tr : rep.targets) {
                if (!isChallenge(tr.name))
                    continue;
                if (tr.foundFailure) {
                    std::fprintf(stderr,
                                 "FAIL: %s: the blind pct:d2 probe "
                                 "found the failure (%s, seed budget "
                                 "%llu) — the kernel no longer needs "
                                 "guidance\n",
                                 tr.name.c_str(),
                                 tr.firstFailure.token().c_str(),
                                 (unsigned long long)
                                     tr.firstFailureSeedBudget);
                    rc = 1;
                }
                if (!tr.hasGuided || !tr.guided.foundFailure) {
                    std::fprintf(stderr,
                                 "FAIL: %s: guided search missed the "
                                 "challenge failure within %llu "
                                 "schedules\n",
                                 tr.name.c_str(),
                                 (unsigned long long)challengeBudget);
                    rc = 1;
                }
            }
        }
    }
    if (serve) {
        std::printf("telemetry server: %llu requests served, %llu "
                    "bad\n",
                    (unsigned long long)server.requestsServed(),
                    (unsigned long long)server.badRequests());
        server.stop();
    }
    return rc;
}
