/**
 * @file
 * Schedule-exploration campaign over the ten bug kernels: PCT and
 * preemption-bounded search rediscover each kernel's buggy
 * interleaving without the hand-scripted trigger delays, while the
 * differential recovery oracle checks every explored schedule three
 * ways (unhardened fails-or-passes, hardened always recovers,
 * Decoded == Reference tick for tick).  See docs/EXPLORATION.md.
 *
 * Results go to stdout and to BENCH_explore.json in the working
 * directory.  The exit code is the oracle verdict: nonzero on any
 * engine divergence or unrecovered hardened failure (and, outside
 * smoke mode, on a kernel whose failure was never rediscovered).
 *
 * Flags:
 *   --seeds N     seeds per (policy, depth) entry (default 250; the
 *                 default matrix has 4 entries -> 1000 schedules per
 *                 kernel, 10k per campaign)
 *   --workers N   worker threads (default 4)
 *   --apps a,b    comma-separated kernel subset (default: all ten)
 *   --smoke       CI mode: small seed counts, stop after the first
 *                 failing schedule per kernel, skip the rediscovery
 *                 exit-code gate
 *   --no-speedup  skip the 1-worker vs N-worker speedup measurement
 *   --policies L  comma-separated policy axis, e.g. "pct:d3,pb:d2,random"
 *                 (default: pct:d2,pct:d3,pb:d2,random)
 *   --repro APP TOKEN
 *                 re-run one schedule (token from a campaign report,
 *                 e.g. "pct:d3:s17") and print the full differential
 *                 detail for it
 */
#include "bench/bench_util.h"

#include <fstream>
#include <thread>

#include "explore/campaign.h"

using namespace conair;
using namespace conair::apps;
using namespace conair::bench;
using namespace conair::explore;

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s)
        if (c == '"' || c == '\\')
            out += std::string("\\") + c;
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    return out;
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s + ",") {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    return out;
}

const char *
argString(int argc, char **argv, const char *flag, const char *def)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    return def;
}

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

int
runRepro(const std::string &appName, const std::string &token)
{
    const AppSpec *spec = findApp(appName);
    if (!spec) {
        std::fprintf(stderr, "unknown app '%s'\n", appName.c_str());
        return 2;
    }
    ScheduleSpec s;
    if (!parseScheduleToken(token, s)) {
        std::fprintf(stderr, "bad schedule token '%s'\n",
                     token.c_str());
        return 2;
    }
    CampaignApp app = prepareCampaignApp(*spec);
    Target target = campaignTarget(app);
    CampaignOptions opts;
    ScheduleOutcome o = runOneSchedule(target, s, opts);

    std::printf("=== repro %s %s ===\n", appName.c_str(),
                token.c_str());
    std::printf("unhardened: %s%s%s  (%llu steps)\n",
                vm::outcomeName(o.unhardened),
                o.unhardenedTag.empty() ? "" : " @ ",
                o.unhardenedTag.c_str(), (unsigned long long)o.steps);
    std::printf("  correct: %s  inconclusive: %s\n",
                o.unhardenedCorrect ? "yes" : "no",
                o.unhardenedInconclusive ? "yes" : "no");
    if (o.hardenedRan)
        std::printf("hardened:   %s  correct: %s  chaos: %s "
                    "(%llu chaos rollbacks)\n",
                    vm::outcomeName(o.hardened),
                    o.hardenedCorrect ? "yes" : "no",
                    o.chaos ? "on" : "off",
                    (unsigned long long)o.chaosRollbacks);
    if (o.diverged)
        std::printf("ENGINE DIVERGENCE: %s\n", o.divergenceMsg.c_str());
    else
        std::printf("engines: Decoded == Reference (tick-identical)\n");
    return o.diverged ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (hasFlag(argc, argv, "--repro")) {
        // --repro APP TOKEN: the two operands follow the flag.
        const char *app = nullptr, *tok = nullptr;
        for (int i = 1; i < argc; ++i)
            if (std::strcmp(argv[i], "--repro") == 0 && i + 2 < argc) {
                app = argv[i + 1];
                tok = argv[i + 2];
            }
        if (!app || !tok) {
            std::fprintf(stderr,
                         "usage: bench_explore --repro APP TOKEN\n");
            return 2;
        }
        return runRepro(app, tok);
    }

    const bool smoke = hasFlag(argc, argv, "--smoke");
    const bool doSpeedup = !hasFlag(argc, argv, "--no-speedup");
    unsigned seeds =
        argUnsigned(argc, argv, "--seeds", smoke ? 40 : 250);
    unsigned workers = argUnsigned(argc, argv, "--workers", 4);

    std::vector<std::string> names =
        splitList(argString(argc, argv, "--apps", ""));
    if (names.empty())
        for (const AppSpec &a : allApps())
            names.push_back(a.name);

    std::printf("=== schedule-exploration campaign (%s) ===\n\n",
                smoke ? "smoke" : "full");
    std::printf("preparing %zu kernels...\n", names.size());

    std::vector<CampaignApp> prepared;
    std::vector<Target> targets;
    prepared.reserve(names.size());
    for (const std::string &n : names) {
        const AppSpec *spec = findApp(n);
        if (!spec) {
            std::fprintf(stderr, "unknown app '%s'\n", n.c_str());
            return 2;
        }
        prepared.push_back(prepareCampaignApp(*spec));
    }
    for (const CampaignApp &app : prepared)
        targets.push_back(campaignTarget(app));

    CampaignOptions opts;
    opts.seedsPerPolicy = seeds;
    opts.workers = workers;
    std::string policyList = argString(argc, argv, "--policies", "");
    if (!policyList.empty()) {
        opts.policies.clear();
        for (const std::string &p : splitList(policyList)) {
            ScheduleSpec s;
            if (!parseScheduleToken(p + ":s1", s)) {
                std::fprintf(stderr, "bad policy '%s'\n", p.c_str());
                return 2;
            }
            opts.policies.push_back({s.policy, s.depth});
        }
    }
    if (smoke) {
        // CI cares about the oracle plumbing, not exhaustiveness.
        opts.stopAfterFailures = 1;
        opts.maxSteps = 2'000'000;
    }

    std::printf("campaign: %zu kernels x %zu policies x %u seeds, "
                "%u workers\n\n",
                targets.size(), opts.policies.size(),
                opts.seedsPerPolicy, opts.workers);

    CampaignReport rep = runCampaign(targets, opts);
    std::printf("%s\n", rep.summary().c_str());

    // Parallel speedup: a fixed sub-campaign, 1 worker vs N.  The
    // measurement is honest about the host: with fewer hardware
    // threads than workers (CI containers are often single-core) the
    // workers time-slice one core and the ratio hovers near 1.0, so
    // hw_threads is recorded alongside for interpretation.
    unsigned hw = std::thread::hardware_concurrency();
    double speedup = 0, base_sps = 0, par_sps = 0;
    if (doSpeedup) {
        CampaignOptions sopts = opts;
        sopts.seedsPerPolicy = smoke ? 6 : 25;
        sopts.policies = {{vm::SchedPolicy::Pct, 3}};
        sopts.stopAfterFailures = 0;
        std::vector<Target> sub(targets.begin(),
                                targets.begin() +
                                    std::min<size_t>(targets.size(), 2));
        sopts.workers = 1;
        CampaignReport r1 = runCampaign(sub, sopts);
        sopts.workers = workers;
        CampaignReport rn = runCampaign(sub, sopts);
        base_sps = r1.schedulesPerSec;
        par_sps = rn.schedulesPerSec;
        if (base_sps > 0)
            speedup = par_sps / base_sps;
        std::printf("parallel speedup (%u workers vs 1): %.2fx "
                    "(%.1f -> %.1f sched/s, %u hardware threads)\n\n",
                    workers, speedup, base_sps, par_sps, hw);
    }

    // BENCH_explore.json.
    std::ofstream out("BENCH_explore.json");
    out << "{\n  \"bench\": \"explore\",\n  \"mode\": \""
        << (smoke ? "smoke" : "full") << "\",\n  \"workers\": "
        << workers << ",\n  \"hw_threads\": " << hw
        << ",\n  \"seeds_per_policy\": " << seeds
        << ",\n  \"schedules\": " << rep.schedules
        << ",\n  \"vm_runs\": " << rep.vmRuns
        << ",\n  \"total_steps\": " << rep.totalSteps
        << ",\n  \"seconds\": " << fmt("%.3f", rep.seconds)
        << ",\n  \"schedules_per_sec\": "
        << fmt("%.1f", rep.schedulesPerSec)
        << ",\n  \"divergences\": " << rep.divergences
        << ",\n  \"unrecovered\": " << rep.unrecovered
        << ",\n  \"speedup\": {\"workers\": " << workers
        << ", \"baseline_sched_per_sec\": " << fmt("%.1f", base_sps)
        << ", \"parallel_sched_per_sec\": " << fmt("%.1f", par_sps)
        << ", \"speedup\": " << fmt("%.2f", speedup)
        << "},\n  \"kernels\": [\n";
    for (size_t i = 0; i < rep.targets.size(); ++i) {
        const TargetReport &tr = rep.targets[i];
        out << "    {\"name\": \"" << jsonEscape(tr.name)
            << "\", \"schedules\": " << tr.schedules
            << ", \"skipped\": " << tr.skipped
            << ", \"failing_schedules\": " << tr.failingSchedules
            << ", \"inconclusive\": " << tr.inconclusive
            << ", \"distinct_failure_tags\": " << tr.failureTags.size()
            << ", \"first_failure\": \""
            << (tr.foundFailure
                    ? jsonEscape(tr.firstFailure.token())
                    : std::string())
            << "\", \"first_failure_seed_budget\": "
            << tr.firstFailureSeedBudget
            << ", \"divergences\": " << tr.divergences
            << ", \"unrecovered\": " << tr.unrecovered
            << ", \"hardened_inconclusive\": " << tr.hardenedInconclusive
            << ", \"chaos_runs\": " << tr.chaosRuns
            << ", \"chaos_rollbacks\": " << tr.chaosRollbacks << "}"
            << (i + 1 < rep.targets.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    out.close();
    std::printf("wrote BENCH_explore.json\n");

    // The oracle verdict gates the exit code.
    int rc = 0;
    if (rep.divergences > 0) {
        std::fprintf(stderr, "FAIL: %llu engine divergences\n",
                     (unsigned long long)rep.divergences);
        rc = 1;
    }
    if (rep.unrecovered > 0) {
        std::fprintf(stderr, "FAIL: %llu unrecovered hardened "
                             "failures\n",
                     (unsigned long long)rep.unrecovered);
        rc = 1;
    }
    if (!smoke) {
        for (const TargetReport &tr : rep.targets)
            if (!tr.foundFailure) {
                std::fprintf(stderr,
                             "FAIL: %s: no failing schedule found\n",
                             tr.name.c_str());
                rc = 1;
            }
    }
    return rc;
}
