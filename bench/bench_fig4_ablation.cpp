/**
 * @file
 * Reproduces paper Fig 4: the reexecution-region design spectrum.
 * Each column is one design point, from ConAir's leftmost choice
 * (idempotent regions, no state saving) to the traditional right end
 * (whole-program checkpoints / restart):
 *
 *   1. idempotent regions WITHOUT the §4.1 library extension
 *      (strictest: no allocation or lock acquisition in regions),
 *   2. ConAir (idempotent regions + compensated malloc/lock),
 *   3. ConAir + local-variable checkpointing (the spectrum's next
 *      point: longer regions, checkpoints save the frame's slots),
 *   4. whole-program checkpoint/rollback (Rx-style),
 *   5. whole-program restart.
 *
 * For each point: how many of the ten Table 2 bugs it survives, its
 * clean-run overhead, and its mean recovery latency — the paper's
 * "more bugs recovered vs more overhead, slower recovery" trade-off.
 */
#include "bench/bench_util.h"

#include "baselines/baselines.h"

using namespace conair;
using namespace conair::apps;
using namespace conair::bench;

namespace {

struct PointResult
{
    unsigned recovered = 0;
    double overheadSum = 0;
    double recoverySum = 0;
    unsigned recoverySamples = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    unsigned runs = argUnsigned(argc, argv, "--runs", 20);
    unsigned oh_runs = argUnsigned(argc, argv, "--overhead-runs", 5);
    const unsigned napps = allApps().size();

    std::printf("=== Fig 4: reexecution-region design spectrum ===\n\n");

    PointResult strict, conair_pt, locals_pt, wp, restart;

    for (const AppSpec &app : allApps()) {
        // 1. Idempotent-only, no library extension.
        HardenOptions no_ext;
        no_ext.conair.regionPolicy.allowCompensableCalls = false;
        PreparedApp p1 = prepareApp(app, no_ext);
        RecoveryTrial t1 = runRecoveryTrial(p1, runs);
        strict.recovered += t1.allCorrect();
        strict.overheadSum += measureOverhead(app, no_ext, oh_runs);
        if (t1.recoveryMicrosAvg > 0) {
            strict.recoverySum += t1.recoveryMicrosAvg;
            ++strict.recoverySamples;
        }

        // 2. ConAir as published.
        HardenOptions full;
        PreparedApp p2 = prepareApp(app, full);
        RecoveryTrial t2 = runRecoveryTrial(p2, runs);
        conair_pt.recovered += t2.allCorrect();
        conair_pt.overheadSum += measureOverhead(app, full, oh_runs);
        if (t2.recoveryMicrosAvg > 0) {
            conair_pt.recoverySum += t2.recoveryMicrosAvg;
            ++conair_pt.recoverySamples;
        }

        // 3. ConAir + local-variable checkpointing.
        HardenOptions locals;
        locals.conair.regionPolicy.allowLocalWrites = true;
        PreparedApp p3 = prepareApp(app, locals);
        RecoveryTrial t3 = runRecoveryTrial(p3, runs);
        locals_pt.recovered += t3.allCorrect();
        locals_pt.overheadSum += measureOverhead(app, locals, oh_runs);
        if (t3.recoveryMicrosAvg > 0) {
            locals_pt.recoverySum += t3.recoveryMicrosAvg;
            ++locals_pt.recoverySamples;
        }

        // 4. Whole-program checkpointing (original binary).
        HardenOptions plain;
        plain.applyConAir = false;
        PreparedApp orig = prepareApp(app, plain);
        unsigned wp_ok = 0;
        double wp_latency = 0;
        unsigned wp_events = 0;
        for (unsigned seed = 1; seed <= runs; ++seed) {
            bl::WpRunResult r =
                bl::runWithWpCheckpoint(orig, seed, bl::WpOptions{});
            wp_ok += r.recovered;
            if (r.recovered) {
                // Rollback latency ~ work redone since the snapshot.
                wp_latency += double(r.run.clock) * vm::kNanosPerStep /
                              1000.0 / (r.run.stats.wpRecoveries + 1);
                ++wp_events;
            }
        }
        wp.recovered += wp_ok == runs;
        wp.overheadSum += bl::measureWpOverhead(app, bl::WpOptions{},
                                                oh_runs);
        if (wp_events) {
            wp.recoverySum += wp_latency / wp_events;
            ++wp.recoverySamples;
        }

        // 5. Restart.
        bl::RestartResult rr = bl::measureRestart(orig, 1);
        restart.recovered += rr.recovered;
        restart.recoverySum += rr.restartMicros;
        ++restart.recoverySamples;
    }

    Table t({"Design point", "Bugs survived", "Overhead (mean)",
             "Recovery (mean us)"});
    auto row = [&](const char *name, const PointResult &p,
                   bool overhead_known) {
        t.row({name, fmt("%u/%u", p.recovered, napps),
               overhead_known ? fmt("%.2f%%",
                                    p.overheadSum / napps * 100)
                              : std::string("~0%"),
               p.recoverySamples
                   ? fmt("%.1f", p.recoverySum / p.recoverySamples)
                   : std::string("-")});
    };
    row("idempotent only (no 4.1 ext.)", strict, true);
    row("ConAir (idempotent + compensation)", conair_pt, true);
    row("ConAir + local-var checkpoints", locals_pt, true);
    row("whole-program checkpoint (Rx-like)", wp, true);
    row("whole-program restart", restart, false);
    t.print();
    std::printf(
        "\nPaper shape (Fig 4): moving right recovers more bugs but "
        "costs more overhead and slower recovery; ConAir's point "
        "recovers most bugs at negligible cost.  (The checkpoint "
        "baseline only escapes *transient* anomalies: it survives by "
        "rescheduling, not by waiting the bug out.  The Table 2 "
        "kernels keep no address-taken locals in their recovery "
        "regions, so the local-var point coincides with ConAir here; "
        "the LocalWrites test suite exercises programs where only the "
        "extended regions recover.)\n");
    return 0;
}
