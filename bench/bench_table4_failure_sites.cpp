/**
 * @file
 * Reproduces paper Table 4: static failure sites hardened by
 * survival-mode ConAir, broken down by failure class.
 *
 * Absolute counts are smaller than the paper's (the kernels are
 * miniatures of 681-KLoC applications), but the structure carries
 * over: segfault sites (pointer-variable dereferences) dominate,
 * deadlock sites are the rarest, assertion-heavy apps (HTTrack) stand
 * out, and the database kernels are the largest.
 */
#include "bench/bench_util.h"

#include "conair/driver.h"
#include "frontend/compile.h"

using namespace conair;
using namespace conair::apps;
using namespace conair::bench;

int
main()
{
    std::printf("=== Table 4: static failure sites hardened by "
                "ConAir (survival mode) ===\n\n");

    Table t({"App", "Assertion", "WrongOutput", "SegFault", "Deadlock",
             "Total"});
    for (const AppSpec &app : allApps()) {
        HardenOptions opts; // survival defaults
        PreparedApp p = prepareApp(app, opts);
        const ca::SiteCounts &c = p.report.identified;
        t.row({app.name, fmt("%u", c.assertion),
               fmt("%u", c.wrongOutput), fmt("%u", c.segfault),
               fmt("%u", c.deadlock), fmt("%u", c.total())});
    }
    t.print();
    std::printf(
        "\nPaper shape: the largest programs (MySQL) harden the most "
        "sites, deadlock sites are the fewest, and counts track code "
        "size.  (In the paper segfault sites dominate because its "
        "full-size C/C++ apps reach almost everything through heap "
        "pointers; the miniatures use direct globals more, so output "
        "sites weigh more here.)\n");
    return 0;
}
