/**
 * @file
 * VM execution-engine throughput: pre-decoded engine (with the
 * scheduler burst fast path and the per-thread memory-handle cache)
 * versus the reference tree-walking interpreter.
 *
 * Unlike the table benches, this one measures *wall-clock* interpreter
 * speed, not virtual time: both engines execute the identical
 * instruction stream (the differential tests pin that down), so
 * steps-per-second is a like-for-like comparison.  Results go to
 * stdout as a table and to BENCH_vm.json in the working directory.
 *
 * Flags:
 *   --runs N    repetitions per (workload, engine) cell; best-of-N
 *               wall time is reported (default 3)
 *   --smoke     shrink workloads for CI: verifies the harness and the
 *               JSON output without waiting on full-size runs
 *   --profile [FILE]
 *               print the per-workload phase profile (hot-phase
 *               table) of the profiled Decoded row; with FILE, also
 *               write the speedscope JSON there and folded flamegraph
 *               stacks next to it.  The profiled row itself always
 *               runs — its step-identity against the bare rows is
 *               part of the divergence gate — the flag only controls
 *               printing and export.
 */
#include "bench/bench_util.h"

#include <chrono>
#include <fstream>

#include "frontend/compile.h"
#include "obs/profile/profile_export.h"
#include "obs/trace.h"
#include "support/json.h"
#include "vm/interp.h"

using namespace conair;
using namespace conair::bench;

namespace {

struct Workload
{
    std::string name;
    std::string source;
    bool singleThread;
};

/** Arithmetic + control flow in one thread: the pure dispatch-speed
 *  case the pre-decoder targets.  (Sources are assembled with string
 *  concatenation — fmt()'s fixed buffer is too small for them.) */
std::string
srcSpin(unsigned outer)
{
    return R"(
int main() {
    int acc = 0;
    int i = 0;
    while (i < )" +
           std::to_string(outer) + R"() {
        int j = 0;
        while (j < 100) {
            acc = acc + j * 3 - (acc / 7);
            j = j + 1;
        }
        i = i + 1;
    }
    return acc & 1;
}
)";
}

/** Loads/stores against a local array plus calls: exercises the
 *  memory-handle cache and the pre-decoded call path. */
std::string
srcMemCalls(unsigned outer)
{
    return R"(
int sum8(int seed) {
    int buf[8];
    int k = 0;
    while (k < 8) {
        buf[k] = seed + k;
        k = k + 1;
    }
    int s = 0;
    k = 0;
    while (k < 8) {
        s = s + buf[k];
        k = k + 1;
    }
    return s;
}
int main() {
    int acc = 0;
    int i = 0;
    while (i < )" +
           std::to_string(outer) + R"() {
        acc = acc + sum8(i);
        i = i + 1;
    }
    return acc & 1;
}
)";
}

/** Contended increments across four threads: the scheduler burst path
 *  has to keep its fast-path bookkeeping while switching threads and
 *  parking on locks. */
std::string
srcThreads(unsigned outer)
{
    std::string n = std::to_string(outer);
    return R"(
mutex m;
int counter;
int worker(int n) {
    int i = 0;
    while (i < )" +
           n + R"() {
        lock(m);
        counter = counter + 1;
        unlock(m);
        i = i + 1;
    }
    return 0;
}
int main() {
    int a = spawn(worker, 0);
    int b = spawn(worker, 0);
    int c = spawn(worker, 0);
    int i = 0;
    while (i < )" +
           n + R"() {
        lock(m);
        counter = counter + 1;
        unlock(m);
        i = i + 1;
    }
    join(a);
    join(b);
    join(c);
    return 0;
}
)";
}

struct Cell
{
    uint64_t steps = 0;
    double seconds = 0;
    double stepsPerSec = 0;
    vm::Outcome outcome = vm::Outcome::Success;
};

Cell
measure(const ir::Module &m, vm::VmConfig cfg, unsigned runs,
        obs::FlightRecorder *rec = nullptr,
        bool recordSharedAccesses = false,
        obs::prof::PhaseProfiler *prof = nullptr)
{
    Cell best;
    for (unsigned r = 0; r < runs; ++r) {
        if (rec) {
            rec->clear();
            cfg.recorder = rec;
            cfg.recordSharedAccesses = recordSharedAccesses;
        }
        if (prof) {
            // Cleared per repetition: every run is identical, so the
            // profiler ends holding exactly one run's (deterministic)
            // phase attribution.
            prof->clear();
            cfg.profiler = prof;
        }
        auto t0 = std::chrono::steady_clock::now();
        vm::RunResult res = vm::runProgram(m, cfg);
        auto t1 = std::chrono::steady_clock::now();
        double sec = std::chrono::duration<double>(t1 - t0).count();
        if (sec <= 0)
            sec = 1e-9;
        double sps = double(res.stats.steps) / sec;
        if (sps > best.stepsPerSec) {
            best.steps = res.stats.steps;
            best.seconds = sec;
            best.stepsPerSec = sps;
            best.outcome = res.outcome;
        }
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned runs = argUnsigned(argc, argv, "--runs", 3);
    if (runs == 0)
        runs = 1;
    bool smoke = false, profileOn = false;
    std::string profilePath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        if (std::strcmp(argv[i], "--profile") == 0) {
            profileOn = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                profilePath = argv[i + 1];
        }
    }

    const unsigned scale = smoke ? 200 : 20000;
    std::vector<Workload> workloads = {
        {"spin-loop", srcSpin(scale), true},
        {"mem+calls", srcMemCalls(scale * 4), true},
        {"4-thread-locks", srcThreads(scale * 2), false},
    };

    // The baseline is the reference engine with every hot-path
    // optimisation off; "decoded" is the production default.
    vm::VmConfig base;
    base.seed = 1;
    base.maxSteps = 1ull << 40;

    vm::VmConfig ref = base;
    ref.engine = vm::ExecEngine::Reference;
    ref.schedFastPath = false;
    ref.memHandleCache = false;

    vm::VmConfig decoded = base;
    decoded.engine = vm::ExecEngine::Decoded;
    decoded.schedFastPath = true;
    decoded.memHandleCache = true;

    vm::VmConfig fused = decoded;
    fused.engine = vm::ExecEngine::Fused;

    std::printf("=== VM engine throughput: fused vs pre-decoded vs "
                "reference (wall clock) ===\n\n");

    Table t({"Workload", "Reference (steps/s)", "Decoded (steps/s)",
             "Speedup", "Fused (steps/s)", "Fused/Dec",
             "Decoded+trace (steps/s)", "Trace cost", "Diag cost",
             "Prof cost"});

    struct Row
    {
        std::string name;
        bool singleThread;
        Cell ref, dec, fus, traced, diag, prof;
    };
    std::vector<Row> rows;
    obs::prof::ProfileDoc profDoc;

    for (const Workload &w : workloads) {
        DiagEngine d;
        auto m = fe::compileMiniC(w.source, d);
        if (!m) {
            std::fprintf(stderr, "compile failed for %s:\n%s\n",
                         w.name.c_str(), d.str().c_str());
            return 1;
        }
        Row row;
        row.name = w.name;
        row.singleThread = w.singleThread;
        row.ref = measure(*m, ref, runs);
        row.dec = measure(*m, decoded, runs);
        row.fus = measure(*m, fused, runs);
        // The tracing-on row: same decoded config, flight recorder
        // attached.  Its distance from the plain decoded row is the
        // *enabled* cost; the decoded row itself carries the
        // disabled-mode branch, so regressions against the PR-1
        // baseline surface in decoded_steps_per_sec.
        obs::FlightRecorder recorder(4096);
        row.traced = measure(*m, decoded, runs, &recorder);
        // The diagnosis-mode row (recordSharedAccesses on): bounds the
        // cost of SharedLoad/SharedStore recording.  Like the trace
        // row, its *default-mode* counterpart (the plain decoded row)
        // must stay unchanged — the guard below checks step identity
        // across all four cells.
        obs::FlightRecorder diagRecorder(4096);
        row.diag = measure(*m, decoded, runs, &diagRecorder, true);
        // The profiler-on row: same decoded config, phase profiler
        // attached.  Its step identity against the bare rows is the
        // passivity check; its distance from the plain decoded row is
        // the enabled cost of profiling.
        obs::prof::PhaseProfiler profiler;
        row.prof = measure(*m, decoded, runs, nullptr, false,
                           &profiler);
        {
            obs::prof::ProfileAgg agg;
            agg.add(profiler);
            profDoc.phaseGroups.emplace_back(w.name, agg);
        }
        if (row.ref.outcome != vm::Outcome::Success ||
            row.dec.outcome != vm::Outcome::Success ||
            row.fus.outcome != vm::Outcome::Success ||
            row.ref.steps != row.dec.steps ||
            row.fus.steps != row.dec.steps ||
            row.traced.steps != row.dec.steps ||
            row.diag.steps != row.dec.steps ||
            row.prof.steps != row.dec.steps) {
            std::fprintf(stderr,
                         "engine divergence on %s: steps %llu vs %llu "
                         "(fused %llu, traced %llu, diag %llu, "
                         "profiled %llu)\n",
                         w.name.c_str(),
                         (unsigned long long)row.ref.steps,
                         (unsigned long long)row.dec.steps,
                         (unsigned long long)row.fus.steps,
                         (unsigned long long)row.traced.steps,
                         (unsigned long long)row.diag.steps,
                         (unsigned long long)row.prof.steps);
            return 1;
        }
        rows.push_back(row);
        double speedup = row.dec.stepsPerSec / row.ref.stepsPerSec;
        double fusedSpeedup = row.fus.stepsPerSec / row.dec.stepsPerSec;
        double traceCost =
            1.0 - row.traced.stepsPerSec / row.dec.stepsPerSec;
        double diagCost =
            1.0 - row.diag.stepsPerSec / row.dec.stepsPerSec;
        double profCost =
            1.0 - row.prof.stepsPerSec / row.dec.stepsPerSec;
        t.row({row.name, fmt("%.0f", row.ref.stepsPerSec),
               fmt("%.0f", row.dec.stepsPerSec),
               fmt("%.2fx", speedup),
               fmt("%.0f", row.fus.stepsPerSec),
               fmt("%.2fx", fusedSpeedup),
               fmt("%.0f", row.traced.stepsPerSec),
               fmt("%.1f%%", traceCost * 100),
               fmt("%.1f%%", diagCost * 100),
               fmt("%.1f%%", profCost * 100)});
    }
    t.print();

    if (profileOn) {
        std::printf("\n%s",
                    obs::prof::hotPhaseTable(profDoc).c_str());
        if (!profilePath.empty()) {
            std::ofstream pf(profilePath);
            if (!pf) {
                std::fprintf(stderr, "cannot write %s\n",
                             profilePath.c_str());
                return 1;
            }
            pf << obs::prof::speedscopeJson(profDoc, "vm_throughput")
               << "\n";
            pf.close();
            std::printf("wrote %s (speedscope JSON)\n",
                        profilePath.c_str());
            std::string folded = profilePath;
            size_t dot = folded.rfind('.');
            if (dot != std::string::npos &&
                folded.find('/', dot) == std::string::npos)
                folded.resize(dot);
            folded += ".folded";
            std::ofstream ff(folded);
            if (!ff) {
                std::fprintf(stderr, "cannot write %s\n",
                             folded.c_str());
                return 1;
            }
            ff << obs::prof::foldedStacks(profDoc);
            ff.close();
            std::printf("wrote %s (folded stacks)\n", folded.c_str());
        }
    }

    JsonWriter w(2);
    w.beginObject();
    w.key("bench").value("vm_throughput");
    w.key("mode").value(smoke ? "smoke" : "full");
    w.key("runs").value(runs);
    w.key("workloads").beginArray();
    for (const Row &r : rows) {
        w.beginObject();
        w.key("name").value(r.name);
        w.key("single_thread").value(r.singleThread);
        w.key("steps").value(r.ref.steps);
        w.key("reference_steps_per_sec")
            .value(r.ref.stepsPerSec, "%.0f");
        w.key("decoded_steps_per_sec").value(r.dec.stepsPerSec, "%.0f");
        w.key("speedup")
            .value(r.dec.stepsPerSec / r.ref.stepsPerSec, "%.3f");
        w.key("fused_steps_per_sec").value(r.fus.stepsPerSec, "%.0f");
        w.key("fused_speedup")
            .value(r.fus.stepsPerSec / r.dec.stepsPerSec, "%.3f");
        w.key("decoded_traced_steps_per_sec")
            .value(r.traced.stepsPerSec, "%.0f");
        w.key("trace_overhead")
            .value(1.0 - r.traced.stepsPerSec / r.dec.stepsPerSec,
                   "%.3f");
        w.key("decoded_diag_steps_per_sec")
            .value(r.diag.stepsPerSec, "%.0f");
        w.key("diag_overhead")
            .value(1.0 - r.diag.stepsPerSec / r.dec.stepsPerSec,
                   "%.3f");
        w.key("decoded_prof_steps_per_sec")
            .value(r.prof.stepsPerSec, "%.0f");
        w.key("prof_overhead")
            .value(1.0 - r.prof.stepsPerSec / r.dec.stepsPerSec,
                   "%.3f");
        w.endObject();
    }
    w.endArray();
    w.endObject();
    std::ofstream out("BENCH_vm.json");
    out << w.str() << "\n";
    out.close();
    std::printf("\nwrote BENCH_vm.json\n");

    // The decoded engine exists to be faster; hold the single-thread
    // dispatch workloads to the 2x floor, and the fused engine to a
    // further 1.5x over decoded (skipped in smoke mode, where runs are
    // too short to time meaningfully).
    if (!smoke) {
        for (const Row &r : rows) {
            if (!r.singleThread)
                continue;
            double speedup = r.dec.stepsPerSec / r.ref.stepsPerSec;
            if (speedup < 2.0) {
                std::fprintf(stderr,
                             "FAIL: %s speedup %.2fx below the 2x "
                             "floor\n",
                             r.name.c_str(), speedup);
                return 1;
            }
            double fusedSpeedup = r.fus.stepsPerSec / r.dec.stepsPerSec;
            if (fusedSpeedup < 1.5) {
                std::fprintf(stderr,
                             "FAIL: %s fused speedup %.2fx below the "
                             "1.5x floor\n",
                             r.name.c_str(), fusedSpeedup);
                return 1;
            }
        }
    }
    return 0;
}
