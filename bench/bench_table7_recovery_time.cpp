/**
 * @file
 * Reproduces paper Table 7: ConAir's failure-recovery latency and
 * retry counts versus whole-program restart, in (virtual-time)
 * microseconds on the same VM substrate.
 */
#include "bench/bench_util.h"

#include "baselines/baselines.h"

using namespace conair;
using namespace conair::apps;
using namespace conair::bench;

int
main(int argc, char **argv)
{
    unsigned runs = argUnsigned(argc, argv, "--runs", 50);

    std::printf("=== Table 7: failure recovery time (virtual-time "
                "microseconds) ===\n\n");

    Table t({"App", "ConAir time (us)", "# retries (max)",
             "Restart (us)", "Speedup"});
    for (const AppSpec &app : allApps()) {
        PreparedApp hardened = prepareApp(app, HardenOptions{});
        RecoveryTrial trial = runRecoveryTrial(hardened, runs);

        HardenOptions plain;
        plain.applyConAir = false;
        PreparedApp orig = prepareApp(app, plain);
        bl::RestartResult restart = bl::measureRestart(orig, 1);

        double speedup = trial.recoveryMicrosAvg > 0
                             ? restart.restartMicros /
                                   trial.recoveryMicrosAvg
                             : 0;
        t.row({app.name, fmt("%.1f", trial.recoveryMicrosAvg),
               fmt("%llu",
                   (unsigned long long)trial.totalRetriesMax),
               fmt("%.1f", restart.restartMicros),
               fmt("%.1fx", speedup)});
    }
    t.print();
    std::printf(
        "\nPaper shape: RAR atomicity violations recover fastest "
        "(MySQL2, ~1 retry); order violations wait for the delayed "
        "thread; restart always costs a full rerun.  The paper's "
        "speedups reach 8x-100,000x because its workloads run for "
        "seconds; the miniatures compress the gap (see "
        "EXPERIMENTS.md).\n");
    return 0;
}
