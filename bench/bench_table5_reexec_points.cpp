/**
 * @file
 * Reproduces paper Table 5: the number of reexecution points ConAir
 * inserts — static (conair.checkpoint instructions) and dynamic
 * (checkpoint executions during one failure-forcing run) — in survival
 * and fix mode.
 */
#include "bench/bench_util.h"

using namespace conair;
using namespace conair::apps;
using namespace conair::bench;

int
main()
{
    std::printf("=== Table 5: reexecution points inserted by "
                "ConAir ===\n\n");

    Table t({"App", "Survival static", "Survival dynamic", "Fix static",
             "Fix dynamic"});
    for (const AppSpec &app : allApps()) {
        HardenOptions survival;
        PreparedApp sp = prepareApp(app, survival);
        vm::RunResult sr = runBuggy(sp, 1);

        HardenOptions fix;
        fix.conair.mode = ca::Mode::Fix;
        fix.conair.fixTags = observedFailureTags(app);
        PreparedApp fp = prepareApp(app, fix);
        vm::RunResult fr = runBuggy(fp, 1);

        t.row({app.name, fmt("%u", sp.report.staticReexecPoints),
               fmt("%llu", (unsigned long long)
                               sr.stats.checkpointsExecuted),
               fmt("%u", fp.report.staticReexecPoints),
               fmt("%llu", (unsigned long long)
                               fr.stats.checkpointsExecuted)});
    }
    t.print();
    std::printf("\nPaper shape: fix mode needs only a handful of "
                "points; survival mode scales with program size yet "
                "each point is just a setjmp.\n");
    return 0;
}
