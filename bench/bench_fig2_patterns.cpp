/**
 * @file
 * Reproduces paper Fig 2 / §2.2: which atomicity-violation patterns
 * single-threaded idempotent reexecution can recover.  WAW and RAR
 * violations recover (the failing thread only re-reads); RAW and WAR
 * violations cannot (they would need the failing thread's own
 * shared-variable write re-executed, which idempotent regions exclude).
 */
#include "bench/bench_util.h"

#include "apps/patterns.h"
#include "conair/driver.h"
#include "frontend/compile.h"

using namespace conair;
using namespace conair::apps;
using namespace conair::bench;

int
main(int argc, char **argv)
{
    unsigned runs = argUnsigned(argc, argv, "--runs", 25);

    std::printf("=== Fig 2: recoverability of atomicity-violation "
                "patterns under idempotent reexecution ===\n\n");

    Table t({"Pattern", "Figure", "Original run", "Hardened runs",
             "Predicted", "Matches"});
    bool all_match = true;
    for (const PatternSpec &p : fig2Patterns()) {
        DiagEngine d;
        auto original = fe::compileMiniC(p.source, d);
        vm::VmConfig cfg = p.buggyConfig;
        cfg.seed = 1;
        vm::RunResult orig = vm::runProgram(*original, cfg);

        unsigned ok = 0;
        for (unsigned seed = 1; seed <= runs; ++seed) {
            DiagEngine d2;
            auto hardened = fe::compileMiniC(p.source, d2);
            ca::applyConAir(*hardened);
            vm::VmConfig hc = p.buggyConfig;
            hc.seed = seed;
            ok += vm::runProgram(*hardened, hc).outcome ==
                  vm::Outcome::Success;
        }
        bool recovered = ok == runs;
        bool matches = recovered == p.recoverableByConAir;
        all_match &= matches;
        t.row({p.name, p.figure, vm::outcomeName(orig.outcome),
               fmt("%u/%u ok", ok, runs),
               p.recoverableByConAir ? "recoverable" : "unrecoverable",
               matches ? "yes" : "NO"});
    }
    t.print();
    std::printf("\nPaper shape: WAW and RAR recover; RAW and WAR need "
                "shared-write reexecution and do not.  All predictions "
                "%s.\n", all_match ? "hold" : "DO NOT HOLD");
    return all_match ? 0 : 1;
}
