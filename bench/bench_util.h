/**
 * @file
 * Shared plumbing for the table/figure reproduction benches: argument
 * parsing and fixed-width table rendering.  Every bench prints the
 * rows the corresponding paper table reports (EXPERIMENTS.md maps the
 * outputs back to the paper).
 */
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/harness.h"

namespace conair::bench {

/** Parses "--runs N"-style flags; returns the default otherwise. */
inline unsigned
argUnsigned(int argc, char **argv, const char *flag, unsigned def)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return unsigned(std::strtoul(argv[i + 1], nullptr, 10));
    return def;
}

/** Simple fixed-width table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    void
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<size_t> width(headers_.size());
        for (size_t c = 0; c < headers_.size(); ++c)
            width[c] = headers_[c].size();
        for (const auto &r : rows_)
            for (size_t c = 0; c < r.size() && c < width.size(); ++c)
                width[c] = std::max(width[c], r[c].size());

        auto line = [&](const std::vector<std::string> &cells) {
            std::string out;
            for (size_t c = 0; c < width.size(); ++c) {
                std::string cell = c < cells.size() ? cells[c] : "";
                out += cell;
                out.append(width[c] - cell.size() + 2, ' ');
            }
            std::printf("%s\n", out.c_str());
        };
        line(headers_);
        std::string rule;
        for (size_t c = 0; c < width.size(); ++c)
            rule.append(width[c] + 2, '-');
        std::printf("%s\n", rule.c_str());
        for (const auto &r : rows_)
            line(r);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

inline std::string
fmt(const char *f, ...)
{
    va_list ap;
    va_start(ap, f);
    char buf[256];
    std::vsnprintf(buf, sizeof(buf), f, ap);
    va_end(ap);
    return buf;
}

} // namespace conair::bench
