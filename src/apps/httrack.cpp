/**
 * @file
 * HTTrack kernel (Table 2 row 3).
 *
 * A web-crawler core: main seeds a URL queue and spawns fetch workers,
 * but initialises the global options object *after* spawning — the
 * real HTTrack order violation.  A worker dereferencing the still-null
 * options pointer crashes.  ConAir's recovery region re-loads the
 * pointer, so the worker simply retries until main has initialised it.
 * The kernel carries HTTrack's signature: a large number of developer
 * assertions (the paper counts 657 assertion sites).
 */
#include "apps/app_spec.h"

namespace conair::apps {

namespace {

const char *source = R"MINIC(
// ---- HTTrack kernel: crawl queue + options ----------------------
int* opt;                    // global options, initialised LATE (bug)
int url_queue[64];           // pending url ids
int queue_len;
int next_slot;
mutex qlock;
int pages_fetched;
int bytes_total;
int robots_blocked;

void queue_push(int url) {
    lock(qlock);
    assert(queue_len < 64);
    url_queue[queue_len] = url;
    queue_len = queue_len + 1;
    unlock(qlock);
}

int queue_pop() {
    lock(qlock);
    int url = -1;
    if (next_slot < queue_len) {
        url = url_queue[next_slot];
        next_slot = next_slot + 1;
    }
    unlock(qlock);
    return url;
}

// Pure-register "parse": models the HTML scan of a fetched page.
int parse_page(int url, int size) {
    int links = 0;
    int h = url * 2654435761;
    for (int i = 0; i < size; i += 3) {
        h = (h * 31 + i) % 1000003;
        if (h % 11 == 0) { links = links + 1; }
    }
    return links;
}

// Simulated page fetch: size derived deterministically from the url.
int fetch_page(int url) {
    assert(url >= 0);
    int size = 200 + (url * 37) % 800;
    int depth_limit = opt[0];        // SEGFAULT site: opt may be null
    int robots = opt[1];
    assert(depth_limit > 0);
    if (robots && url % 7 == 0) {
        lock(qlock);
        robots_blocked = robots_blocked + 1;
        unlock(qlock);
        return 0;
    }
    int links = parse_page(url, size);
    assert(links >= 0);
    return size;
}

int worker(int n) {
    int fetched = 0;
    for (int i = 0; i < n; i++) {
        int url = queue_pop();
        if (url < 0) {
            yield();
        } else {
            int size = fetch_page(url);
            lock(qlock);
            pages_fetched = pages_fetched + 1;
            bytes_total = bytes_total + size;
            unlock(qlock);
            fetched = fetched + 1;
        }
    }
    assert(fetched <= n);
    return 0;
}

void init_options() {
    int* o = malloc(8);
    o[0] = 5;       // depth limit
    o[1] = 1;       // obey robots.txt
    o[2] = 4096;    // max page size
    opt = o;        // publication, unsynchronised
}

int main() {
    for (int i = 0; i < 32; i++) queue_push(i);
    int t1 = spawn(worker, 16);
    int t2 = spawn(worker, 16);
    hint(1);                 // bug window: options arrive late
    init_options();
    join(t1);
    join(t2);
    assert(pages_fetched <= 32);
    print("pages=", pages_fetched, " bytes=", bytes_total,
          " blocked=", robots_blocked, "\n");
    return 0;
}
)MINIC";

} // namespace

AppSpec
makeHtTrack()
{
    AppSpec app;
    app.name = "HTTrack";
    app.appType = "Web crawler";
    app.description = "workers dereference the global options pointer "
                      "before main initialises it (order violation)";
    app.rootCause = RootCause::OrderViolation;
    app.source = source;
    app.expectedFailure = vm::Outcome::Segfault;
    // 32 pages; urls {0,7,14,21,28} robots-blocked; sizes summed.
    app.expectedOutput = "pages=32 bytes=13962 blocked=5\n";
    app.expectedExit = 0;

    // Clean runs: main finishes initialisation inside its first long
    // round-robin quantum, before the workers fetch (the "usually
    // works" production timing).
    app.cleanConfig.quantum = 5'000;
    app.cleanConfig.policy = vm::SchedPolicy::RoundRobin;
    app.buggyConfig.quantum = 60;
    app.buggyConfig.delays = {{1, 10'000}};
    return app;
}

} // namespace conair::apps
