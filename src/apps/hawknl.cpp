/**
 * @file
 * HawkNL kernel (Table 2 row 2; Fig 11 bug).
 *
 * A small network library: a socket table guarded by two locks.
 * nlClose() takes nlock then slock; nlShutdown() takes slock then
 * nlock — the classic ABBA deadlock.  Per the paper's analysis,
 * nlClose's inner acquisition is unrecoverable (a driver call destroys
 * the region), but nlShutdown's region reaches back across its own
 * slock acquisition, so ConAir converts that site to a timed lock and
 * releases slock on rollback, letting nlClose finish.
 */
#include "apps/app_spec.h"

namespace conair::apps {

namespace {

const char *source = R"MINIC(
// ---- HawkNL kernel: socket bookkeeping under two locks ----------
mutex nlock;              // socket-table lock
mutex slock;              // shutdown/state lock
int n_sockets = 2;
int sock_state[8];        // 1 = open

void driver_close() {
    // Models the hardware-driver call in Fig 11 (idempotency
    // destroying: it writes device state).
    sock_state[0] = 0;
}

int nl_close(int unused) {
    lock(nlock);
    driver_close();
    hint(1);
    lock(slock);          // inner acquisition, unrecoverable side
    if (n_sockets > 0) {
        n_sockets = n_sockets - 1;
    }
    sock_state[2] = 0;
    unlock(slock);
    unlock(nlock);
    return 0;
}

int nl_shutdown(int unused) {
    hint(2);
    lock(slock);
    if (n_sockets) {
        int i = 0;
        if (sock_state[i] >= 0) {
            lock(nlock);  // recoverable side: slock is in the region
            n_sockets = 0;
            sock_state[1] = 0;
            unlock(nlock);
        }
    }
    unlock(slock);
    return 0;
}

// Pure-register packet checksum: the library's normal data path.
int packet_checksum(int seed, int len) {
    int h = seed;
    for (int i = 0; i < len; i++) {
        h = (h * 31 + i) % 65536;
        h = h ^ (i << 3);
    }
    return h;
}

int main() {
    for (int i = 0; i < 8; i++) sock_state[i] = 1;
    // Process a burst of packets (the steady-state workload).
    int acc = 0;
    for (int p = 0; p < 64; p++) {
        acc = acc + packet_checksum(p, 40);
    }
    assert(acc >= 0);
    int t1 = spawn(nl_close, 0);
    int t2 = spawn(nl_shutdown, 0);
    join(t1);
    join(t2);
    print("sockets=", n_sockets, "\n");
    return n_sockets;
}
)MINIC";

} // namespace

AppSpec
makeHawkNl()
{
    AppSpec app;
    app.name = "HawkNL";
    app.appType = "Network library";
    app.description = "ABBA deadlock between nlClose (nlock->slock) and "
                      "nlShutdown (slock->nlock)";
    app.rootCause = RootCause::Deadlock;
    app.source = source;
    app.expectedFailure = vm::Outcome::Hang;
    app.expectedOutput = "sockets=0\n";
    app.expectedExit = 0;

    // Clean runs: a long quantum keeps each critical section atomic in
    // practice, like the rarely-failing production timing.
    app.cleanConfig.quantum = 5'000;
    app.cleanConfig.policy = vm::SchedPolicy::RoundRobin;

    app.buggyConfig.quantum = 50;
    app.buggyConfig.hangTimeout = 200'000;
    // closer holds nlock and stalls before slock; shutdown grabs slock
    // in that window and blocks on nlock.
    app.buggyConfig.delays = {{1, 2'000}, {2, 300}};
    return app;
}

} // namespace conair::apps
