/**
 * @file
 * Mozilla JS engine kernel (Table 2 row 5).
 *
 * A SpiderMonkey-style runtime: a garbage-collector thread and a
 * script thread share a runtime lock (gc_lock) and a context lock
 * (cx_lock) and acquire them in opposite orders — the engine's
 * deadlock.  The script side's inner acquisition has the outer lock in
 * its region (recoverable); the GC side writes its mark-phase state
 * between the two acquisitions, so its region is too short (the §4.2
 * optimizer reverts it to a plain lock).
 */
#include "apps/app_spec.h"

namespace conair::apps {

namespace {

const char *source = R"MINIC(
// ---- JS engine kernel: GC vs script execution -------------------
mutex gc_lock;              // runtime/GC lock
mutex cx_lock;              // context lock
int heap_marks[32];
int gc_cycles;
int scripts_run;
int allocs;

void mark_roots() {
    for (int i = 0; i < 32; i++) {
        heap_marks[i] = 1;
    }
}

int gc_thread(int unused) {
    lock(gc_lock);
    mark_roots();           // writes mark bits: bounds the region
    hint(1);
    lock(cx_lock);          // inner acquisition, unrecoverable side
    gc_cycles = gc_cycles + 1;
    for (int i = 0; i < 32; i++) {
        heap_marks[i] = 0;  // sweep
    }
    unlock(cx_lock);
    unlock(gc_lock);
    return 0;
}

// Pure-register bytecode interpretation: the engine's real work.
int interpret(int script_id) {
    int acc = script_id;
    for (int pc = 0; pc < 120; pc++) {
        int op = (acc + pc) % 5;
        if (op == 0) { acc = acc + pc; }
        else if (op == 1) { acc = acc * 3 % 10007; }
        else if (op == 2) { acc = acc ^ pc; }
        else { acc = acc + 1; }
    }
    return acc;
}

int script_thread(int n) {
    for (int s = 0; s < n; s++) {
        int result = interpret(s);
        assert(result >= 0);
        hint(2);
        lock(cx_lock);
        lock(gc_lock);      // recoverable: cx_lock is in the region
        allocs = allocs + 3;
        scripts_run = scripts_run + 1;
        unlock(gc_lock);
        unlock(cx_lock);
    }
    return 0;
}

int main() {
    int g = spawn(gc_thread, 0);
    int s = spawn(script_thread, 6);
    join(g);
    join(s);
    assert(gc_cycles == 1);
    print("gc=", gc_cycles, " scripts=", scripts_run,
          " allocs=", allocs, "\n");
    return 0;
}
)MINIC";

} // namespace

AppSpec
makeMozillaJs()
{
    AppSpec app;
    app.name = "MozillaJS";
    app.appType = "JavaScript engine";
    app.description = "GC thread (gc_lock->cx_lock) deadlocks against "
                      "script thread (cx_lock->gc_lock)";
    app.rootCause = RootCause::Deadlock;
    app.source = source;
    app.expectedFailure = vm::Outcome::Hang;
    app.expectedOutput = "gc=1 scripts=6 allocs=18\n";
    app.expectedExit = 0;

    app.cleanConfig.quantum = 5'000;
    app.cleanConfig.policy = vm::SchedPolicy::RoundRobin;
    app.buggyConfig.quantum = 40;
    app.buggyConfig.hangTimeout = 200'000;
    // GC grabs gc_lock, marks, stalls; one script iteration grabs
    // cx_lock in the window and blocks on gc_lock.
    app.buggyConfig.delays = {{1, 3'000}, {2, 500}};
    return app;
}

} // namespace conair::apps
