/**
 * @file
 * The experiment harness: compiles an application, optionally hardens
 * it with ConAir, and runs it under clean or failure-forcing schedules.
 * The benches for Tables 3-7 are built on these primitives (§5 of the
 * paper describes the methodology they mirror).
 */
#pragma once

#include <memory>

#include "apps/app_spec.h"
#include "conair/driver.h"
#include "explore/campaign.h"
#include "ir/module.h"
#include "vm/interp.h"

namespace conair::apps {

/** How to prepare the program. */
struct HardenOptions
{
    bool applyConAir = true;
    ca::ConAirOptions conair;

    /** Strip the developer's oracle() annotations before compiling
     *  (models survival mode without output-correctness conditions). */
    bool stripOracles = false;
};

/** A compiled (and possibly hardened) application. */
struct PreparedApp
{
    const AppSpec *spec = nullptr;
    std::unique_ptr<ir::Module> module;
    ca::ConAirReport report; ///< empty when ConAir was not applied
    bool hardened = false;
};

/** Compiles @p app per @p opts; fatal() on compile errors (the bundled
 *  sources are expected to be valid). */
PreparedApp prepareApp(const AppSpec &app, const HardenOptions &opts);

/** Runs a clean (no forced interleaving) execution with @p seed. */
vm::RunResult runClean(const PreparedApp &p, uint64_t seed);

/** Runs one failure-forcing execution with @p seed. */
vm::RunResult runBuggy(const PreparedApp &p, uint64_t seed);

/** runBuggy with observability attached: @p rec / @p met / @p prof
 *  (any may be null) receive the run's flight-recorder events,
 *  metrics, and phase profile — the minicc --app/--trace/--metrics/
 *  --profile path for the ten kernels.  @p recordSharedAccesses
 *  additionally turns on diagnosis recording mode (SharedLoad/
 *  SharedStore events for the postmortem engine; requires @p rec). */
vm::RunResult runBuggy(const PreparedApp &p, uint64_t seed,
                       obs::FlightRecorder *rec,
                       obs::MetricsRegistry *met,
                       bool recordSharedAccesses = false,
                       obs::prof::PhaseProfiler *prof = nullptr);

/** Did this run behave correctly (outcome, output, exit code)? */
bool runIsCorrect(const AppSpec &app, const vm::RunResult &r);

/** Aggregated recovery trial (paper §5: repeated failure runs). */
struct RecoveryTrial
{
    unsigned runs = 0;
    unsigned correct = 0;          ///< fully correct executions
    unsigned failures = 0;         ///< runs ending in the app's failure
    unsigned wrongOutput = 0;      ///< silent wrong-output runs
    unsigned otherBad = 0;         ///< hangs/timeouts/unexpected traps
    uint64_t totalRollbacks = 0;
    uint64_t totalRetriesMax = 0;  ///< max retries in one recovery
    double recoveryMicrosAvg = 0;  ///< mean recovery latency
    double recoveryMicrosMax = 0;

    bool allCorrect() const { return runs > 0 && correct == runs; }
};

/** Runs @p n failure-forcing executions with seeds 1..n. */
RecoveryTrial runRecoveryTrial(const PreparedApp &p, unsigned n);

/**
 * Measures run-time overhead: mean clean-run instruction count of the
 * hardened program relative to the original, over @p runs seeds
 * (paper §5 uses 20).  Returns the overhead fraction (0.01 == 1 %).
 */
double measureOverhead(const AppSpec &app, const HardenOptions &opts,
                       unsigned runs);

/**
 * @name Campaign entry points (schedule exploration, src/explore/)
 *
 * A campaign needs the unhardened and the hardened build of one kernel
 * side by side, plus the correctness expectations and a calibrated
 * PCT horizon.  These helpers bridge the registry to the exploration
 * engine; bench_explore and the campaign tests are built on them.
 * @{
 */

/** The two builds of one kernel a campaign compares. */
struct CampaignApp
{
    const AppSpec *spec = nullptr;
    PreparedApp plain;    ///< unhardened build
    PreparedApp hardened; ///< survival-mode ConAir build
};

/** Compiles both campaign builds of @p app. */
CampaignApp prepareCampaignApp(const AppSpec &app);

/**
 * Converts a prepared kernel into an exploration target: wires both
 * modules, the expected output/exit, the mustRecover oracle (all ten
 * kernels recover under full survival hardening), and a PCT horizon
 * calibrated from a clean run.  The CampaignApp must outlive the
 * returned target (modules are borrowed).
 */
explore::Target campaignTarget(const CampaignApp &app);

/**
 * Runs @p p under an explicit scheduler configuration with the app's
 * hand-scripted trigger delays stripped — campaign schedules must
 * find the buggy interleavings themselves.
 */
vm::RunResult runUnderSchedule(const PreparedApp &p, vm::VmConfig cfg);

/** @} */

/**
 * The failure-site tags a developer would observe from one failing run
 * of the *original* program (an assert message, a crash location, the
 * locks a hung process blocks on) — exactly the input ConAir's fix
 * mode needs (§3.1.2).
 */
std::vector<std::string> observedFailureTags(const AppSpec &app);

} // namespace conair::apps
