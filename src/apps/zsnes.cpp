/**
 * @file
 * ZSNES kernel (Table 2 row 10).
 *
 * An emulator core: a CPU loop interpreting a fixed "ROM" and a sound
 * thread that asserts the audio ring buffer was initialised — but main
 * initialises audio *after* starting the sound thread (the order
 * violation).  The assert re-reads a global flag, so ConAir's
 * intra-procedural reexecution recovers it once main catches up.
 */
#include "apps/app_spec.h"

namespace conair::apps {

namespace {

const char *source = R"MINIC(
// ---- emulator kernel ----------------------------------------------
int sound_ready;            // set LATE by main (bug)
int audio_ring[32];
int rom[64];
int mix_table[32];
int regs_a;
int regs_x;
int cycles;
int samples_mixed;
int frames;
mutex apu_lock;

void load_rom() {
    for (int i = 0; i < 64; i++) {
        rom[i] = (i * 7 + 3) % 16;
    }
}

// A tiny 6502-ish dispatch loop: the emulator's real work.
int cpu_step(int pc) {
    int op = rom[pc % 64];
    // Effective-address computation (pure-register decode work).
    int ea = op;
    for (int m = 0; m < 16; m++) {
        ea = (ea * 2 + op + m) % 4096;
    }
    if (op < 4) {
        regs_a = regs_a + op + ea % 2;
    } else if (op < 8) {
        regs_x = regs_x + 1;
    } else if (op < 12) {
        regs_a = regs_a ^ regs_x;
    } else {
        regs_a = (regs_a + regs_x) % 256;
    }
    cycles = cycles + 2;
    return pc + 1;
}

int cpu_thread(int steps) {
    int pc = 0;
    for (int i = 0; i < steps; i++) {
        pc = cpu_step(pc);
    }
    assert(cycles >= steps);
    return 0;
}

int sound_thread(int frames_to_mix) {
    // Build the volume mixdown table (thread-startup work).  The
    // table stores keep the recovery region short: reexecution only
    // replays the flag re-read, not the table construction.
    int warm = 0;
    for (int v = 0; v < 600; v++) {
        warm = (warm * 5 + v) % 4096;
        mix_table[v % 32] = warm;
    }
    assert(sound_ready == 1 || warm < 0);  // fires when audio not ready
    for (int f = 0; f < frames_to_mix; f++) {
        lock(apu_lock);
        audio_ring[f % 32] = regs_a + f;
        samples_mixed = samples_mixed + 8;
        unlock(apu_lock);
    }
    frames = frames + frames_to_mix;
    return 0;
}

void audio_init() {
    for (int i = 0; i < 32; i++) {
        audio_ring[i] = 0;
    }
    sound_ready = 1;               // unsynchronised publication
}

int main() {
    load_rom();
    int s = spawn(sound_thread, 10);
    hint(1);                       // bug window: audio init is late
    audio_init();
    int c = spawn(cpu_thread, 500);
    join(s);
    join(c);
    assert(frames == 10);
    print("frames=", frames, " samples=", samples_mixed, "\n");
    return 0;
}
)MINIC";

} // namespace

AppSpec
makeZsnes()
{
    AppSpec app;
    app.name = "ZSNES";
    app.appType = "Game emulator";
    app.description = "sound thread asserts audio is initialised before "
                      "main's audio_init runs (order violation)";
    app.rootCause = RootCause::OrderViolation;
    app.source = source;
    app.expectedFailure = vm::Outcome::AssertFail;
    app.expectedOutput = "frames=10 samples=80\n";
    app.expectedExit = 0;

    app.cleanConfig.quantum = 5'000;
    app.cleanConfig.policy = vm::SchedPolicy::RoundRobin;
    app.buggyConfig.quantum = 60;
    app.buggyConfig.delays = {{1, 14'000}};
    return app;
}

} // namespace conair::apps
