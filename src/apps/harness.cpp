#include "apps/harness.h"

#include <algorithm>
#include <sstream>

#include "frontend/compile.h"
#include "support/diag.h"
#include "support/str.h"

namespace conair::apps {

namespace {

/** Removes lines containing oracle() annotations from MiniC source. */
std::string
stripOracleLines(const std::string &src)
{
    std::string out;
    std::istringstream in(src);
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("oracle(") == std::string::npos) {
            out += line;
            out += '\n';
        }
    }
    return out;
}

} // namespace

PreparedApp
prepareApp(const AppSpec &app, const HardenOptions &opts)
{
    PreparedApp p;
    p.spec = &app;
    std::string src =
        opts.stripOracles ? stripOracleLines(app.source) : app.source;
    DiagEngine diags;
    fe::CompileOptions copts;
    copts.moduleName = app.name;
    p.module = fe::compileMiniC(src, diags, copts);
    if (!p.module)
        fatal("bundled app '" + app.name + "' failed to compile:\n" +
              diags.str());
    if (opts.applyConAir) {
        p.report = ca::applyConAir(*p.module, opts.conair);
        p.hardened = true;
    }
    return p;
}

vm::RunResult
runClean(const PreparedApp &p, uint64_t seed)
{
    vm::VmConfig cfg = p.spec->cleanConfig;
    cfg.seed = seed;
    return vm::runProgram(*p.module, cfg);
}

vm::RunResult
runBuggy(const PreparedApp &p, uint64_t seed)
{
    vm::VmConfig cfg = p.spec->buggyConfig;
    cfg.seed = seed;
    return vm::runProgram(*p.module, cfg);
}

vm::RunResult
runBuggy(const PreparedApp &p, uint64_t seed, obs::FlightRecorder *rec,
         obs::MetricsRegistry *met, bool recordSharedAccesses,
         obs::prof::PhaseProfiler *prof)
{
    vm::VmConfig cfg = p.spec->buggyConfig;
    cfg.seed = seed;
    cfg.recorder = rec;
    cfg.metrics = met;
    cfg.recordSharedAccesses = recordSharedAccesses;
    cfg.profiler = prof;
    return vm::runProgram(*p.module, cfg);
}

bool
runIsCorrect(const AppSpec &app, const vm::RunResult &r)
{
    return r.outcome == vm::Outcome::Success &&
           r.exitCode == app.expectedExit &&
           r.output == app.expectedOutput;
}

RecoveryTrial
runRecoveryTrial(const PreparedApp &p, unsigned n)
{
    RecoveryTrial trial;
    double micros_sum = 0;
    unsigned micros_count = 0;
    for (unsigned seed = 1; seed <= n; ++seed) {
        vm::RunResult r = runBuggy(p, seed);
        ++trial.runs;
        if (runIsCorrect(*p.spec, r)) {
            ++trial.correct;
        } else if (r.outcome == vm::Outcome::Success) {
            ++trial.wrongOutput;
        } else if (r.outcome == p.spec->expectedFailure) {
            ++trial.failures;
        } else {
            ++trial.otherBad;
        }
        trial.totalRollbacks += r.stats.rollbacks;
        for (const vm::RecoveryEvent &ev : r.stats.recoveries) {
            micros_sum += ev.micros();
            ++micros_count;
            trial.recoveryMicrosMax =
                std::max(trial.recoveryMicrosMax, ev.micros());
            trial.totalRetriesMax =
                std::max(trial.totalRetriesMax, ev.retries);
        }
    }
    if (micros_count)
        trial.recoveryMicrosAvg = micros_sum / micros_count;
    return trial;
}

CampaignApp
prepareCampaignApp(const AppSpec &app)
{
    CampaignApp c;
    c.spec = &app;
    HardenOptions plain;
    plain.applyConAir = false;
    c.plain = prepareApp(app, plain);
    c.hardened = prepareApp(app, HardenOptions{});
    return c;
}

explore::Target
campaignTarget(const CampaignApp &app)
{
    explore::Target t;
    t.name = app.spec->name;
    t.plain = app.plain.module.get();
    t.hardened = app.hardened.module.get();
    t.expectedOutput = app.spec->expectedOutput;
    t.expectedExit = app.spec->expectedExit;
    t.checkOutput = true;
    t.mustRecover = true;
    // Sample change points across the program's natural length, and
    // keep the Random policy's jitter close to the forcing quantum the
    // kernel was tuned with.
    t.horizon = explore::calibrateHorizon(*app.plain.module, 50'000'000);
    t.quantum = std::max<uint64_t>(app.spec->buggyConfig.quantum, 1);
    return t;
}

vm::RunResult
runUnderSchedule(const PreparedApp &p, vm::VmConfig cfg)
{
    cfg.delays.clear();
    return vm::runProgram(*p.module, cfg);
}

std::vector<std::string>
observedFailureTags(const AppSpec &app)
{
    HardenOptions plain;
    plain.applyConAir = false;
    PreparedApp p = prepareApp(app, plain);
    vm::RunResult r = runBuggy(p, 1);
    std::vector<std::string> tags;
    std::string cur;
    for (char c : r.failureTag + ";") {
        if (c == ';') {
            if (!cur.empty())
                tags.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    return tags;
}

double
measureOverhead(const AppSpec &app, const HardenOptions &opts,
                unsigned runs)
{
    HardenOptions original = opts;
    original.applyConAir = false;
    PreparedApp base = prepareApp(app, original);
    PreparedApp hard = prepareApp(app, opts);

    uint64_t base_steps = 0, hard_steps = 0;
    for (unsigned seed = 1; seed <= runs; ++seed) {
        vm::RunResult rb = runClean(base, seed);
        vm::RunResult rh = runClean(hard, seed);
        if (rb.outcome != vm::Outcome::Success)
            fatal(strfmt("%s: clean baseline run failed (%s) seed %u",
                         app.name.c_str(),
                         vm::outcomeName(rb.outcome), seed));
        if (rh.outcome != vm::Outcome::Success)
            fatal(strfmt("%s: clean hardened run failed (%s) seed %u",
                         app.name.c_str(),
                         vm::outcomeName(rh.outcome), seed));
        base_steps += rb.stats.steps;
        hard_steps += rh.stats.steps;
    }
    if (base_steps == 0)
        return 0.0;
    return double(hard_steps) / double(base_steps) - 1.0;
}

} // namespace conair::apps
