#include "apps/app_spec.h"

namespace conair::apps {

const char *
rootCauseName(RootCause rc)
{
    switch (rc) {
      case RootCause::AtomicityViolation: return "A Vio.";
      case RootCause::OrderViolation: return "O Vio.";
      case RootCause::AtomicityOrOrder: return "A/O Vio.";
      case RootCause::Deadlock: return "deadlock";
    }
    return "?";
}

const std::vector<AppSpec> &
allApps()
{
    static const std::vector<AppSpec> apps = [] {
        std::vector<AppSpec> v;
        v.push_back(makeFft());
        v.push_back(makeHawkNl());
        v.push_back(makeHtTrack());
        v.push_back(makeMozillaXp());
        v.push_back(makeMozillaJs());
        v.push_back(makeMysql1());
        v.push_back(makeMysql2());
        v.push_back(makeTransmission());
        v.push_back(makeSqlite());
        v.push_back(makeZsnes());
        return v;
    }();
    return apps;
}

const std::vector<AppSpec> &
challengeApps()
{
    static const std::vector<AppSpec> apps = [] {
        std::vector<AppSpec> v;
        v.push_back(makeRelay3());
        return v;
    }();
    return apps;
}

const AppSpec *
findApp(const std::string &name)
{
    for (const AppSpec &app : allApps())
        if (app.name == name)
            return &app;
    for (const AppSpec &app : challengeApps())
        if (app.name == name)
            return &app;
    return nullptr;
}

} // namespace conair::apps
