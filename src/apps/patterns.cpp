#include "apps/patterns.h"

namespace conair::apps {

namespace {

// Fig 2a: WAW — the rotator writes CLOSED then OPEN unsynchronised;
// the reader observes the transient CLOSED.  Rolling the reader back
// re-reads the flag: recoverable.
const char *waw_src = R"MINIC(
int log_open = 1;
int rotator(int x) {
    log_open = 0;
    hint(1);
    log_open = 1;
    return 0;
}
int main() {
    int t = spawn(rotator, 0);
    hint(2);
    int st = log_open;
    oracle(st == 1);
    print("log=", st, "\n");
    join(t);
    return 0;
}
)MINIC";

// Fig 2b: RAW — the failing thread writes ptr itself, then reads it;
// the other thread nulls it in between.  Recovery would have to
// re-execute the failing thread's own shared write, which an
// idempotent region cannot contain: unrecoverable.
const char *raw_src = R"MINIC(
int* aptr;
int* ptr;
int nuller(int x) {
    hint(1);
    ptr = 0;
    return 0;
}
int main() {
    aptr = malloc(2);
    aptr[0] = 5;
    int t = spawn(nuller, 0);
    ptr = aptr;          // the thread's OWN shared write
    hint(2);
    int tmp = ptr[0];    // reads the nulled pointer
    print("v=", tmp, "\n");
    join(t);
    return 0;
}
)MINIC";

// Fig 2c: RAR — check-then-use of a shared pointer; the other thread
// nulls it between the two reads.  Reexecution re-reads the pointer
// and legally takes the null-guarded path: recoverable.
const char *rar_src = R"MINIC(
int* ptr;
int nuller(int x) {
    hint(1);
    ptr = 0;
    return 0;
}
int main() {
    int* buf = malloc(2);
    buf[0] = 7;
    ptr = buf;
    int t = spawn(nuller, 0);
    int v = -1;
    if (ptr) {
        hint(2);
        v = ptr[0];      // ptr nulled between check and use
    }
    print("v=", v, "\n");
    join(t);
    return 0;
}
)MINIC";

// Fig 2d: WAR — the failing thread updates the balance and then reads
// it back expecting atomicity; the other thread's deposit lands in
// between.  Recovery would need the thread's own write undone and
// re-done: unrecoverable.
const char *war_src = R"MINIC(
int cnt;
int other(int x) {
    hint(1);
    cnt = cnt + 100;
    return 0;
}
int main() {
    int t = spawn(other, 0);
    cnt = cnt + 5;       // the thread's OWN shared write
    hint(2);
    int balance = cnt;
    oracle(balance == 5);
    print("balance=", balance, "\n");
    join(t);
    return 0;
}
)MINIC";

PatternSpec
make(const char *name, const char *figure, const char *desc,
     const char *src, std::vector<vm::DelayRule> delays,
     vm::Outcome failure, bool recoverable)
{
    PatternSpec p;
    p.name = name;
    p.figure = figure;
    p.description = desc;
    p.source = src;
    p.buggyConfig.delays = std::move(delays);
    // Unrecoverable patterns retry until the budget runs out; keep it
    // small so benches terminate promptly.
    p.buggyConfig.maxRetries = 5'000;
    p.expectedFailure = failure;
    p.recoverableByConAir = recoverable;
    return p;
}

} // namespace

const std::vector<PatternSpec> &
fig2Patterns()
{
    static const std::vector<PatternSpec> patterns = {
        make("WAW", "Fig 2a",
             "reader observes a transient CLOSED between two writes",
             waw_src, {{1, 5'000}, {2, 300}}, vm::Outcome::OracleFail,
             true),
        make("RAW", "Fig 2b",
             "thread dereferences the pointer it wrote; peer nulls it",
             raw_src, {{1, 300}, {2, 900}}, vm::Outcome::Segfault,
             false),
        make("RAR", "Fig 2c",
             "pointer nulled between null-check and dereference",
             rar_src, {{1, 300}, {2, 900}}, vm::Outcome::Segfault,
             true),
        make("WAR", "Fig 2d",
             "peer deposit lands between the update and the read-back",
             war_src, {{1, 300}, {2, 900}}, vm::Outcome::OracleFail,
             false),
    };
    return patterns;
}

} // namespace conair::apps
