/**
 * @file
 * SQLite kernel (Table 2 row 9).
 *
 * An embedded-database core: connections share a database mutex and a
 * journal mutex.  The commit path locks db->mutex then the journal;
 * the checkpoint path locks the journal then db->mutex — SQLite's
 * deadlock.  The commit side performs journal writes between the two
 * acquisitions (unrecoverable region); the checkpointer's inner
 * acquisition still has the journal lock in its region and recovers.
 */
#include "apps/app_spec.h"

namespace conair::apps {

namespace {

const char *source = R"MINIC(
// ---- embedded db kernel ------------------------------------------
mutex db_mutex;
mutex journal_mutex;
int journal[16];
int journal_len;
int committed;
int checkpoints;
int pages_synced;

// Pure-register B-tree key comparison walk (the query data path).
int btree_probe(int key, int levels) {
    int node = key;
    for (int level = 0; level < levels; level++) {
        node = (node * 2 + 1) % 4093;
        if (node % 2 == 0) { node = node + key % 7; }
    }
    return node;
}

int commit_txn(int unused) {
    int probe = btree_probe(42, 200);
    assert(probe >= 0);
    lock(db_mutex);
    // Stage the transaction into the journal header (writes: these
    // bound the inner lock's region, making it unrecoverable).
    journal[0] = 1;
    journal[1] = 42;
    hint(1);
    lock(journal_mutex);
    journal_len = 2;
    committed = committed + 1;
    unlock(journal_mutex);
    unlock(db_mutex);
    return 0;
}

int checkpointer(int unused) {
    // The longer probe keeps the two threads' lock windows apart under
    // natural timing; only the forced stalls align them.
    int probe = btree_probe(7, 300);
    assert(probe >= 0);
    hint(2);
    lock(journal_mutex);
    if (journal_len >= 0) {
        lock(db_mutex);          // recoverable inner acquisition
        for (int i = 0; i < journal_len; i++) {
            pages_synced = pages_synced + 1;
        }
        checkpoints = checkpoints + 1;
        unlock(db_mutex);
    }
    unlock(journal_mutex);
    return 0;
}

int main() {
    int c = spawn(commit_txn, 0);
    int k = spawn(checkpointer, 0);
    join(c);
    join(k);
    assert(committed == 1);
    assert(checkpoints == 1);
    print("committed=", committed, " checkpoints=", checkpoints, "\n");
    return 0;
}
)MINIC";

} // namespace

AppSpec
makeSqlite()
{
    AppSpec app;
    app.name = "SQLite";
    app.appType = "Database engine";
    app.description = "commit (db->journal) deadlocks against "
                      "checkpoint (journal->db)";
    app.rootCause = RootCause::Deadlock;
    app.source = source;
    app.expectedFailure = vm::Outcome::Hang;
    app.expectedOutput = "committed=1 checkpoints=1\n";
    app.expectedExit = 0;

    app.cleanConfig.quantum = 5'000;
    app.cleanConfig.policy = vm::SchedPolicy::RoundRobin;
    app.buggyConfig.quantum = 40;
    app.buggyConfig.hangTimeout = 200'000;
    // The btree probes put both threads ~1300 instructions from their
    // first lock; the checkpointer's extra 2600-tick stall guarantees
    // commit holds db_mutex first in every schedule, and commit's
    // 6000-tick stall guarantees the checkpointer grabs the journal
    // inside the window.
    app.buggyConfig.delays = {{1, 9'000}, {2, 500}};
    return app;
}

} // namespace conair::apps
