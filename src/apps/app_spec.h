/**
 * @file
 * The benchmark-application registry (paper Table 2).
 *
 * Each application is a MiniC kernel reproducing one of the paper's ten
 * real-world concurrency bugs: the same root-cause interleaving
 * pattern, failure symptom, and code shape (including the
 * inter-procedural structure where the paper needed §4.3), embedded in
 * enough surrounding application logic that the static site counts are
 * meaningful.  DESIGN.md §2 documents the substitution.
 */
#pragma once

#include <string>
#include <vector>

#include "vm/config.h"
#include "vm/stats.h"

namespace conair::apps {

/** Root-cause categories from Table 2. */
enum class RootCause : uint8_t {
    AtomicityViolation,
    OrderViolation,
    AtomicityOrOrder, ///< FFT exhibits both
    Deadlock,
};

const char *rootCauseName(RootCause rc);

/** One benchmark application. */
struct AppSpec
{
    std::string name;        ///< Table 2 row ("MySQL1", ...)
    std::string appType;     ///< "Database server", ...
    std::string description; ///< one-line bug description
    RootCause rootCause;

    /** MiniC source of the kernel. */
    std::string source;

    /** Scheduler seed/quantum for clean (overhead) runs. */
    vm::VmConfig cleanConfig;

    /**
     * Delay rules (the stand-in for the paper's injected sleeps) that
     * force the failure-inducing interleaving near-deterministically.
     */
    vm::VmConfig buggyConfig;

    /** Failure symptom of the untransformed buggy run. */
    vm::Outcome expectedFailure;

    /** Expected output of a correct run (wrong-output detection). */
    std::string expectedOutput;

    /** Expected exit code of a correct run. */
    int64_t expectedExit = 0;

    /** Wrong-output app: recovery needs the oracle() annotation. */
    bool needsOracle = false;

    /** Recovery needs §4.3 inter-procedural reexecution. */
    bool needsInterproc = false;
};

/** All ten applications, in Table 2 order. */
const std::vector<AppSpec> &allApps();

/**
 * Challenge kernels: synthetic bugs built to stress the *explorer*
 * rather than reproduce a Table 2 row — deep interleavings that blind
 * schedule sampling essentially never reaches but coverage-guided
 * search does.  Kept out of allApps() so the Table 2 experiments and
 * their fixtures keep iterating exactly the paper's ten kernels;
 * bench_explore appends these in guided/full campaign modes.
 */
const std::vector<AppSpec> &challengeApps();

/** Looks an application up by name across allApps() and
 *  challengeApps(); nullptr when unknown. */
const AppSpec *findApp(const std::string &name);

/// @{ Individual app constructors (one translation unit each).
AppSpec makeFft();
AppSpec makeHawkNl();
AppSpec makeHtTrack();
AppSpec makeMozillaXp();
AppSpec makeMozillaJs();
AppSpec makeMysql1();
AppSpec makeMysql2();
AppSpec makeTransmission();
AppSpec makeSqlite();
AppSpec makeZsnes();
AppSpec makeRelay3(); ///< challenge kernel (not Table 2)
/// @}

} // namespace conair::apps
