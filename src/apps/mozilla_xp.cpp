/**
 * @file
 * Mozilla XPCOM kernel (Table 2 row 4; Fig 10 bug).
 *
 * A cross-platform component-object model core: a component registry
 * plus a thread-manager object.  GetState(thd) dereferences the thread
 * descriptor it receives as a *parameter*; the descriptor global mThd
 * is initialised by a second thread, so an early call crashes.  The
 * callee's region has no shared read on the slice (the pointer is an
 * argument), which is exactly the case ConAir's §4.3 inter-procedural
 * recovery exists for: the reexecution point moves into the caller,
 * whose region re-loads mThd.
 */
#include "apps/app_spec.h"

namespace conair::apps {

namespace {

const char *source = R"MINIC(
// ---- XPCOM kernel: component registry + thread manager ----------
int* m_thd;                 // thread descriptor, initialised LATE (bug)
int components[128];        // registered component ids
int component_count;
mutex reg_lock;
int lookups_ok;
int state_sum;

void register_component(int id) {
    lock(reg_lock);
    assert(component_count < 128);
    components[component_count] = id;
    component_count = component_count + 1;
    unlock(reg_lock);
}

int find_component(int id) {
    lock(reg_lock);
    int found = -1;
    for (int i = 0; i < component_count; i++) {
        if (components[i] == id) {
            found = i;
        }
    }
    unlock(reg_lock);
    return found;
}

// Fig 10: GetState dereferences its parameter.  Unrecoverable inside
// this function; §4.3 moves the reexecution point into get().
int get_state(int* thd) {
    return thd[0] & 3;
}

int get(int round) {
    int* local = m_thd;           // the shared read the caller re-runs
    int s = get_state(local);
    return s + round - round;
}

int init_thd(int unused) {
    hint(1);
    int* p = malloc(4);
    p[0] = 2;                     // THREAD_RUNNING | detached bit
    p[1] = 0;
    p[2] = 77;
    m_thd = p;                    // unsynchronised publication
    return 0;
}

// Pure-register interface-id hashing (QueryInterface work).
int iid_hash(int iid) {
    int h = iid * 40503;
    for (int i = 0; i < 64; i++) {
        h = (h * 31 + i) % 1000003;
    }
    return h;
}

int xpcom_client(int rounds) {
    for (int r = 0; r < rounds; r++) {
        int idx = find_component(r % 16);
        int h = iid_hash(r);
        if (idx >= 0 && h != -1) {
            lock(reg_lock);
            lookups_ok = lookups_ok + 1;
            unlock(reg_lock);
        }
    }
    return 0;
}

int main() {
    int t = spawn(init_thd, 0);
    // Registration keeps main busy long enough that, under ordinary
    // timing, init_thd wins the race (the production-lucky schedule).
    for (int i = 0; i < 32; i++) register_component(i);
    int c = spawn(xpcom_client, 96);

    int s = get(1);               // crashes when m_thd is still null
    state_sum = state_sum + s;

    join(t);
    join(c);
    assert(state_sum >= 0);
    print("state=", state_sum, " lookups=", lookups_ok, "\n");
    return 0;
}
)MINIC";

} // namespace

AppSpec
makeMozillaXp()
{
    AppSpec app;
    app.name = "MozillaXP";
    app.appType = "XPCOM component model";
    app.description = "GetState(mThd) dereferences the descriptor before "
                      "InitThd publishes it; needs inter-procedural "
                      "recovery (Fig 10)";
    app.rootCause = RootCause::OrderViolation;
    app.source = source;
    app.expectedFailure = vm::Outcome::Segfault;
    app.expectedOutput = "state=2 lookups=96\n";
    app.expectedExit = 0;
    app.needsInterproc = true;

    // A 100-instruction quantum forces a switch inside main's
    // registration loop, so init_thd publishes m_thd before get().
    app.cleanConfig.quantum = 100;
    app.cleanConfig.policy = vm::SchedPolicy::RoundRobin;
    app.buggyConfig.quantum = 50;
    app.buggyConfig.delays = {{1, 8'000}};
    return app;
}

} // namespace conair::apps
