/**
 * @file
 * FFT kernel (Table 2 row 1; Fig 9 bug).
 *
 * A two-thread scientific computation: the worker transforms the
 * imaginary plane while main transforms the real plane.  The original
 * SPLASH-2 bug: main reads a completion variable the worker publishes
 * without synchronisation, and prints results derived from data the
 * worker may not have written yet — an atomicity/order violation whose
 * symptom is a silently wrong output.  The developer-supplied oracle()
 * (the paper's Assert(e) before the output, Fig 5b) makes it
 * recoverable: the whole checksum loop is idempotent, so rolling back
 * re-reads the flag *and* recomputes the checksum from the finished
 * data.
 */
#include "apps/app_spec.h"

namespace conair::apps {

namespace {

const char *source = R"MINIC(
// ---- FFT kernel: split-plane butterfly transform ----------------
double re[64];
double im[64];
int worker_done;          // published by the worker WITHOUT a lock (bug)

void init_planes() {
    for (int i = 0; i < 64; i++) {
        re[i] = (i % 8) * 1.0;
        im[i] = (i % 4) * 0.5;
    }
}

// One in-place pass over a plane: a simplified radix-2 stage.
void stage_real(int stride) {
    for (int i = 0; i + stride < 64; i += 2 * stride) {
        double a = re[i];
        double b = re[i + stride];
        re[i] = a + b;
        re[i + stride] = a - b;
    }
}

void stage_imag(int stride) {
    for (int i = 0; i + stride < 64; i += 2 * stride) {
        double a = im[i];
        double b = im[i + stride];
        im[i] = a + b;
        im[i + stride] = a - b;
    }
}

double im_energy;         // worker's final result, written once

int worker(int unused) {
    stage_imag(1);
    stage_imag(2);
    stage_imag(4);
    stage_imag(8);
    stage_imag(16);
    stage_imag(32);
    hint(1);   // failure forcing: stall just before publishing, so the
               // recovery wait is the bug window, not the whole half
    // Reduce the plane to one energy value and publish it in a single
    // store (Fig 9: like 'End = time(NULL)', written unsynchronised).
    double acc = 0.0;
    for (int i = 0; i < 64; i++) {
        acc = acc + im[i] * im[i];
    }
    im_energy = acc + 1.0;         // always > 0 once written
    worker_done = 1;
    return 0;
}

int main() {
    init_planes();
    int t = spawn(worker, 0);

    // Main transforms the real plane (the longer half: extra passes).
    stage_real(1);
    stage_real(2);
    stage_real(4);
    stage_real(8);
    stage_real(16);
    stage_real(32);
    stage_real(1);
    stage_real(2);
    stage_real(4);
    stage_real(8);

    // Reduce main's own plane (no race: only main writes re[]).
    double sum = 0.0;
    for (int i = 0; i < 64; i++) {
        sum = sum + re[i];
    }
    hint(2);
    // Fig 9: read the worker's unsynchronised result and print a value
    // derived from it.  The oracle validates the printed datum itself;
    // the whole read+combine sequence is idempotent, so recovery
    // re-reads im_energy until the worker has published it.
    double tmp = im_energy;
    oracle(tmp > 0.0);             // output-correctness condition
    int checksum = sum + tmp;
    print("Stop 1, Checksum ", checksum, "\n");
    join(t);
    return 0;
}
)MINIC";

} // namespace

AppSpec
makeFft()
{
    AppSpec app;
    app.name = "FFT";
    app.appType = "Scientific computing";
    app.description = "worker publishes completion without sync; main "
                      "prints a checksum computed from unfinished data";
    app.rootCause = RootCause::AtomicityOrOrder;
    app.source = source;
    app.expectedFailure = vm::Outcome::OracleFail;
    // checksum of the finished computation (deterministic arithmetic).
    app.expectedOutput = "Stop 1, Checksum 3177\n";
    app.expectedExit = 0;
    app.needsOracle = true;

    app.cleanConfig.quantum = 200;
    app.cleanConfig.policy = vm::SchedPolicy::RoundRobin;
    app.buggyConfig.quantum = 200;
    // Stall the worker long enough that main reaches the output first.
    app.buggyConfig.delays = {{1, 10'000}, {2, 50}};
    return app;
}

} // namespace conair::apps
