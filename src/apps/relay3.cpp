/**
 * @file
 * Relay3 challenge kernel (not a Table 2 row — see challengeApps()).
 *
 * A three-stage pipeline handoff with a *two-window* order violation:
 * the producer publishes its stage flag in two steps (x = 1 ...work...
 * x = 2), the relay does the same with y when it catches the producer
 * mid-publication, and the checker asserts it never observes a
 * half-published stage (y == 1).  Failing therefore needs two
 * independent preemptions — one inside the producer's publication
 * window and one inside the relay's — plus the right thread order
 * after each.  A single-change-point schedule (blind pct:d2) can
 * never do that: without a preemption inside the producer's window
 * the relay reads x as 0 or 2 and publishes y atomically, so the
 * checker's window does not even exist.  The coverage-guided explorer
 * climbs the gradient instead: any schedule preempting the producer
 * mid-window makes the relay execute its never-before-seen slow path
 * (novel interleaving edges -> corpus energy), and point add/nudge
 * mutations of that schedule walk the second change point into the
 * relay's window.
 */
#include "apps/app_spec.h"

namespace conair::apps {

namespace {

const char *source = R"MINIC(
// ---- three-stage pipeline kernel ----------------------------------
int x;                      // stage-1 flag: 0 -> 1 (partial) -> 2
int y;                      // stage-2 flag: 0 -> 1 (partial) -> 2
int feed[32];               // producer's input batch
int stage_a[16];            // stage-1 payload (producer's window)
int stage_b[16];            // stage-2 payload (relay's window)
int scratch_b[16];          // relay's private warm-up
int scratch_c[16];          // checker's private warm-up
int checked;

int producer(int tag) {
    // Ingest the feed batch: tick noise that keeps the publication
    // window a small slice of the schedule.
    for (int i = 0; i < 48; i++) {
        feed[i % 32] = (i * 7 + 5) % 256;
    }
    x = 1;                  // stage 1 partially published (window opens)
    for (int i = 0; i < 7; i++) {
        stage_a[i] = feed[i] + i;
    }
    hint(1);                // bug window A: stage-1 payload in flight
    for (int i = 7; i < 14; i++) {
        stage_a[i] = feed[i] + i;
    }
    x = 2;                  // stage 1 fully published (window closes)
    return 0;
}

int relay(int rounds) {
    hint(3);                // (delay site: stagger after the producer)
    for (int i = 0; i < 24; i++) {
        scratch_b[i % 16] = (i * 11 + 3) % 512;
    }
    int seen = x;
    if (seen == 1) {
        // Caught the producer mid-publication: take over stage 2 the
        // same two-step way (the second half of the bug).
        y = 1;              // stage 2 partially published
        for (int i = 0; i < 7; i++) {
            stage_b[i] = stage_a[i] * 2 + rounds;
        }
        hint(2);            // bug window B: stage-2 payload in flight
        for (int i = 7; i < 14; i++) {
            stage_b[i] = i * 2 + rounds;
        }
        y = 2;              // stage 2 fully published
    } else {
        y = 2;              // producer was done (or idle): publish atomically
    }
    return 0;
}

int checker(int tag) {
    hint(4);                // (delay site: stagger after the relay)
    for (int i = 0; i < 24; i++) {
        scratch_c[i % 16] = (i * 13 + 1) % 512;
    }
    int v = y;
    assert(v != 1);         // a half-published stage must never be seen
    checked = checked + 1;
    return 0;
}

int main() {
    int a = spawn(producer, 0);
    int b = spawn(relay, 1);
    int c = spawn(checker, 0);
    join(a);
    join(b);
    join(c);
    assert(x == 2);
    assert(y == 2);
    print("stages=", x + y, " checked=", checked, "\n");
    return 0;
}
)MINIC";

} // namespace

AppSpec
makeRelay3()
{
    AppSpec app;
    app.name = "Relay3";
    app.appType = "Pipeline handoff (challenge)";
    app.description =
        "checker observes a half-published stage flag; needs "
        "preemptions inside two distinct publication windows "
        "(3-thread order violation)";
    app.rootCause = RootCause::OrderViolation;
    app.source = source;
    app.expectedFailure = vm::Outcome::AssertFail;
    app.expectedOutput = "stages=4 checked=1\n";
    app.expectedExit = 0;

    app.cleanConfig.quantum = 5'000;
    app.cleanConfig.policy = vm::SchedPolicy::RoundRobin;
    // The forcing delays stagger the three threads into the failing
    // order: the producer stalls inside window A until well after the
    // relay (held back briefly at its start) has read x == 1 and
    // stalled inside window B, which in turn outlasts the checker's
    // start delay — so the checker reads y mid-publication.
    app.buggyConfig.quantum = 60;
    app.buggyConfig.delays = {
        {1, 40'000}, // producer: hold window A open
        {2, 24'000}, // relay: hold window B open
        {3, 4'000},  // relay starts after the producer opened A
        {4, 12'000}, // checker reads y while B is still open
    };
    return app;
}

} // namespace conair::apps
