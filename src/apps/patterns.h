/**
 * @file
 * The four atomicity-violation patterns of paper Fig 2 as runnable
 * micro-kernels, used to demonstrate §2.2's boundary: single-threaded
 * *idempotent* reexecution recovers WAW and RAR violations, but not
 * RAW and WAR — those need the failing thread's own shared write
 * re-executed, which an idempotent region cannot contain.
 */
#pragma once

#include <string>
#include <vector>

#include "vm/config.h"
#include "vm/stats.h"

namespace conair::apps {

/** One Fig 2 pattern micro-kernel. */
struct PatternSpec
{
    std::string name;        ///< "WAW" / "RAW" / "RAR" / "WAR"
    std::string figure;      ///< "Fig 2a" ...
    std::string description;
    std::string source;      ///< MiniC
    vm::VmConfig buggyConfig;
    vm::Outcome expectedFailure;

    /** §2.2 prediction: does idempotent reexecution recover it? */
    bool recoverableByConAir;
};

/** The four patterns, in Fig 2 order (a-d). */
const std::vector<PatternSpec> &fig2Patterns();

} // namespace conair::apps
