/**
 * @file
 * MySQL kernel #2 (Table 2 row 7).
 *
 * A table-cache core with a RAR atomicity violation (Fig 2c shape):
 * the purge path checks a descriptor's in_use flag and then asserts on
 * it again while acting — two reads it assumes atomic.  A connection
 * thread toggles the flag between them, firing the assertion.  This is
 * the paper's fastest recovery (8 µs, one retry): re-reading both
 * values immediately eliminates the violation — the failing thread
 * never waits on anyone.
 */
#include "apps/app_spec.h"

namespace conair::apps {

namespace {

const char *source = R"MINIC(
// ---- mini table cache --------------------------------------------
int table_cache[96];         // 3 cells per entry: key, in_use, hits
int* dirty_list;             // per-purge scratch descriptors (heap)
int cache_entries;
mutex cache_lock;
int purged;
int touches;
int evictions;
int lookups;

void cache_init(int n) {
    dirty_list = malloc(16);
    for (int i = 0; i < n; i++) {
        table_cache[i * 3] = 100 + i;   // table id
        table_cache[i * 3 + 1] = 0;     // in_use
        table_cache[i * 3 + 2] = 0;     // hits
    }
    cache_entries = n;
}

int cache_find(int key) {
    for (int i = 0; i < cache_entries; i++) {
        if (table_cache[i * 3] == key) { return i; }
    }
    return -1;
}

// Pure-register statement parse/plan (per-touch query work).
int plan_statement(int stmt) {
    int cost = stmt * 17 + 3;
    for (int i = 0; i < 22; i++) {
        cost = (cost * 13 + i) % 32749;
    }
    return cost;
}

// A connection touches a table: briefly marks it in_use.
int connection(int rounds) {
    hint(3);
    for (int r = 0; r < rounds; r++) {
        int plan = plan_statement(r);
        int idx = cache_find(100 + r % 8);
        assert(idx >= 0 && plan >= 0);
        table_cache[idx * 3 + 1] = 1;     // mark busy
        hint(2);
        table_cache[idx * 3 + 2] = table_cache[idx * 3 + 2] + 1;
        table_cache[idx * 3 + 1] = 0;     // release
        touches = touches + 1;
    }
    return 0;
}

// The purge path: check-then-assert on in_use — the RAR atomicity
// violation.  The assert is MySQL's own sanity check.
int purge_entry(int idx) {
    int busy = table_cache[idx * 3 + 1];
    if (busy == 0) {
        hint(1);
        assert(table_cache[idx * 3 + 1] == 0);  // second unprotected read
        dirty_list[idx % 16] = table_cache[idx * 3 + 2];
        table_cache[idx * 3 + 2] = 0;
        purged = purged + 1;
        return 1;
    }
    return 0;
}

int purger(int unused) {
    for (int i = 0; i < 8; i++) {
        // A busy entry is retried later — skipping it is the legal
        // slow path the recovery may steer us onto.
        int done = 0;
        while (done == 0) {
            lock(cache_lock);
            done = purge_entry(i);
            unlock(cache_lock);
            if (done == 0) { yield(); }
        }
        evictions = evictions + 1;
    }
    return 0;
}

int stats_reader(int rounds) {
    int acc = 0;
    for (int r = 0; r < rounds; r++) {
        int plan = plan_statement(r + 100);
        int idx = cache_find(100 + r % 8);
        if (idx >= 0) {
            acc = acc + table_cache[idx * 3 + 2] + plan % 2;
        }
        lookups = lookups + 1;
    }
    assert(acc >= 0);
    return 0;
}

int main() {
    cache_init(8);
    int c = spawn(connection, 16);
    int p = spawn(purger, 0);
    int s = spawn(stats_reader, 16);
    join(c);
    join(p);
    join(s);
    assert(purged == 8);
    print("purged=", purged, " touches=", touches,
          " lookups=", lookups, "\n");
    return 0;
}
)MINIC";

} // namespace

AppSpec
makeMysql2()
{
    AppSpec app;
    app.name = "MySQL2";
    app.appType = "Database server";
    app.description = "purge path checks in_use and asserts on it again "
                      "(RAR atomicity violation); a connection toggles "
                      "the flag between the two reads";
    app.rootCause = RootCause::AtomicityViolation;
    app.source = source;
    app.expectedFailure = vm::Outcome::AssertFail;
    app.expectedOutput = "purged=8 touches=16 lookups=16\n";
    app.expectedExit = 0;

    app.cleanConfig.quantum = 5'000;
    app.cleanConfig.policy = vm::SchedPolicy::RoundRobin;
    app.buggyConfig.quantum = 80;
    // The purger reads in_use == 0 and stalls; the connection (itself
    // briefly delayed so the purger's first read wins) marks the entry
    // busy inside the window; the purger's second read fires the
    // assert.
    app.buggyConfig.delays = {{1, 1'500}, {2, 5'000}, {3, 300}};
    return app;
}

} // namespace conair::apps
