/**
 * @file
 * Transmission kernel (Table 2 row 8).
 *
 * A BitTorrent-client core: a session object with a bandwidth
 * allocator that main constructs *after* starting the peer workers —
 * the real Transmission order violation.  The allocator check lives in
 * a helper that receives the pointer as a parameter and asserts it is
 * non-null, so (like MozillaXP) intra-procedural reexecution is
 * useless and ConAir must hoist the reexecution point into the caller,
 * which re-reads the session global.
 */
#include "apps/app_spec.h"

namespace conair::apps {

namespace {

const char *source = R"MINIC(
// ---- torrent session kernel --------------------------------------
int* session_bandwidth;      // allocated LATE by main (bug)
int peers_connected;
int pieces_done;
int piece_bits[64];
mutex swarm_lock;
int choked;
int bytes_up;
int bytes_down;

// tr_bandwidthUsed-style helper: asserts the allocator exists, then
// charges the transfer against it.  The parameter-only assert is the
// §4.3 case: nothing in this function re-reads shared state.
int band_used(int* band, int bytes) {
    assert(band != 0);
    band[1] = band[1] + bytes;
    return band[0] - band[1];
}

int piece_size(int idx) {
    assert(idx >= 0);
    int size = 64 + (idx * 13) % 32;
    return size;
}

// Pure-register SHA-ish piece hash: the client's dominant work.
int piece_hash(int idx, int size) {
    int h = idx * 16777619;
    for (int round = 0; round < 2; round++) {
        for (int i = 0; i < size; i++) {
            h = (h * 31 + i) % 1000003;
            h = h ^ (i << 2);
        }
    }
    return h;
}

int peer(int npieces) {
    for (int i = 0; i < npieces; i++) {
        int size = piece_size(i);
        int hash = piece_hash(i, size);
        bytes_up = bytes_up + hash % 3;   // hash-dependent chatter
        int* band = session_bandwidth;
        int left = band_used(band, size);
        lock(swarm_lock);
        pieces_done = pieces_done + 1;
        piece_bits[i % 64] = 1;
        bytes_down = bytes_down + size;
        if (left < 0) {
            choked = choked + 1;
        }
        unlock(swarm_lock);
    }
    return 0;
}

int tracker(int rounds) {
    for (int r = 0; r < rounds; r++) {
        lock(swarm_lock);
        peers_connected = peers_connected + 1;
        unlock(swarm_lock);
        yield();
    }
    assert(peers_connected >= rounds);
    return 0;
}

void session_init() {
    int* b = malloc(4);
    b[0] = 100000;           // budget
    b[1] = 0;                // used
    session_bandwidth = b;   // unsynchronised publication
}

int main() {
    int p = spawn(peer, 12);
    int t = spawn(tracker, 6);
    hint(1);                 // bug window: allocator arrives late
    session_init();
    join(p);
    join(t);
    assert(pieces_done == 12);
    print("pieces=", pieces_done, " down=", bytes_down,
          " choked=", choked, "\n");
    return 0;
}
)MINIC";

} // namespace

AppSpec
makeTransmission()
{
    AppSpec app;
    app.name = "Transmission";
    app.appType = "BitTorrent client";
    app.description = "peers assert on the bandwidth allocator before "
                      "main constructs it (order violation); needs "
                      "inter-procedural recovery";
    app.rootCause = RootCause::OrderViolation;
    app.source = source;
    app.expectedFailure = vm::Outcome::AssertFail;
    // sizes: 64 + (13 i % 32) for i in 0..11 sum to 922.
    app.expectedOutput = "pieces=12 down=922 choked=0\n";
    app.expectedExit = 0;
    app.needsInterproc = true;

    app.cleanConfig.quantum = 5'000;
    app.cleanConfig.policy = vm::SchedPolicy::RoundRobin;
    app.buggyConfig.quantum = 60;
    app.buggyConfig.delays = {{1, 10'000}};
    return app;
}

} // namespace conair::apps
