/**
 * @file
 * MySQL kernel #1 (Table 2 row 6).
 *
 * A miniature storage engine with a binlog.  The bug is the paper's
 * WAW atomicity violation (Fig 2a): log rotation writes the state flag
 * CLOSED and then OPEN as two unsynchronised stores; a writer thread
 * observing the transient CLOSED silently drops a log record, so the
 * server produces wrong output.  The developer's oracle() (log must be
 * open when appending) makes the failure detectable and — because the
 * flag re-read is in the idempotent region — recoverable.
 *
 * The kernel deliberately carries a lot of surrounding machinery
 * (row heap, hash index, query execution, status output): MySQL is the
 * paper's largest benchmark and dominates the Table 4 site counts.
 */
#include "apps/app_spec.h"

namespace conair::apps {

namespace {

const char *source = R"MINIC(
// ---- mini storage engine ----------------------------------------
int* row_heap;              // malloc'd row storage: 4 cells per row
int row_count;
mutex table_lock;

int hash_index[64];         // key -> row slot + 1 (0 = empty)
int hash_keys[64];          // cached key per bucket (probe fast path)
int index_collisions;

// binlog ----------------------------------------------------------
int log_open = 1;           // 1 = OPEN, 0 = CLOSED (the racy flag)
int log_records;
int log_bytes;
mutex log_lock;

// statistics --------------------------------------------------------
int queries_done;
int rows_inserted;
int rotations;

int hash_key(int key) {
    int h = key * 31 + 7;
    h = h % 64;
    if (h < 0) { h = h + 64; }
    return h;
}

int index_insert(int key, int slot) {
    int h = hash_key(key);
    int probes = 0;
    while (hash_index[h] != 0 && probes < 64) {
        h = (h + 1) % 64;
        probes = probes + 1;
        index_collisions = index_collisions + 1;
    }
    assert(probes < 64);
    hash_index[h] = slot + 1;
    hash_keys[h] = key;
    return h;
}

int index_lookup(int key) {
    int h = hash_key(key);
    int probes = 0;
    while (probes < 64) {
        int v = hash_index[h];
        if (v == 0) { return -1; }
        if (hash_keys[h] == key) {
            int slot = v - 1;
            // Verify against the row itself (one heap access per hit).
            if (row_heap[slot * 4] == key) { return slot; }
            return -1;
        }
        h = (h + 1) % 64;
        probes = probes + 1;
    }
    return -1;
}

// Pure-register row checksum (storage-engine page verification).
int row_checksum(int key, int a, int b) {
    int h = key * 131 + 17;
    for (int i = 0; i < 96; i++) {
        h = (h * 33 + a) % 65536;
        h = (h ^ b) + i;
    }
    return h;
}

int insert_row(int key, int a, int b) {
    lock(table_lock);
    assert(row_count < 32);
    int slot = row_count;
    int crc = row_checksum(key, a, b);
    row_heap[slot * 4] = key;
    row_heap[slot * 4 + 1] = a;
    row_heap[slot * 4 + 2] = b;
    row_heap[slot * 4 + 3] = a + b + crc - crc;
    row_count = row_count + 1;
    index_insert(key, slot);
    rows_inserted = rows_inserted + 1;
    unlock(table_lock);
    return slot;
}

// Appends one record to the binlog.  The oracle is the paper's
// developer-specified output-correctness condition: the log must be
// open whenever a record is appended.
void binlog_append(int bytes) {
    lock(log_lock);
    int st = log_open;
    oracle(st == 1);
    if (st == 1) {
        log_records = log_records + 1;
        log_bytes = log_bytes + bytes;
    }
    // A closed log silently drops the record — the wrong-output bug.
    unlock(log_lock);
}

int run_query(int q) {
    int key = q % 32;
    int slot = index_lookup(key);
    int result = 0;
    if (slot >= 0) {
        result = row_heap[slot * 4 + 3];
        assert(result >= 0);
        // Re-derive the row checksum (expression evaluation work).
        int crc = row_checksum(key, result, slot);
        result = result + crc - crc;
    }
    queries_done = queries_done + 1;
    return result;
}

// Aggregate scan over the index (SELECT COUNT(*)-style work).
int table_scan() {
    int occupied = 0;
    int weight = 0;
    for (int h = 0; h < 64; h++) {
        if (hash_index[h] != 0) {
            occupied = occupied + 1;
            weight = (weight * 7 + hash_keys[h]) % 65536;
        }
    }
    return occupied + weight % 2;
}

// The writer thread: inserts rows and logs each insert.
int writer(int n) {
    for (int i = 0; i < n; i++) {
        int key = i % 32;
        insert_row(key, i, i * 2);
        hint(1);
        binlog_append(16 + i % 8);
    }
    return 0;
}

// The rotator thread: Fig 2a — closes then reopens the log as two
// separate stores (the WAW atomicity violation).
int rotator(int unused) {
    hint(2);
    log_open = 0;           // "log=CLOSE"
    hint(3);
    log_open = 1;           // "log=OPEN"
    rotations = rotations + 1;
    return 0;
}

int reader(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        acc = acc + run_query(i);
        acc = acc + table_scan();
    }
    assert(acc >= 0);
    return 0;
}

int main() {
    row_heap = malloc(128);
    int w = spawn(writer, 24);
    int r = spawn(reader, 24);
    int rot = spawn(rotator, 0);
    join(w);
    join(r);
    join(rot);
    print("rows=", rows_inserted, " log_records=", log_records, "\n");
    print("queries=", queries_done, " rotations=", rotations, "\n");
    return 0;
}
)MINIC";

} // namespace

AppSpec
makeMysql1()
{
    AppSpec app;
    app.name = "MySQL1";
    app.appType = "Database server";
    app.description = "binlog rotation writes CLOSED/OPEN non-atomically "
                      "(WAW atomicity violation, Fig 2a); a concurrent "
                      "append observes the transient CLOSED state";
    app.rootCause = RootCause::AtomicityViolation;
    app.source = source;
    app.expectedFailure = vm::Outcome::OracleFail;
    app.expectedOutput =
        "rows=24 log_records=24\nqueries=24 rotations=1\n";
    app.expectedExit = 0;
    app.needsOracle = true;

    // Clean runs: long quanta keep the two rotation stores adjacent in
    // time, so the one-instruction CLOSED window never hits.
    app.cleanConfig.quantum = 5'000;
    app.cleanConfig.policy = vm::SchedPolicy::RoundRobin;
    app.buggyConfig.quantum = 120;
    // The writer pauses just before appending; the rotator closes the
    // log inside the window and stalls before reopening it.
    app.buggyConfig.delays = {{1, 600}, {2, 800}, {3, 8'000}};
    return app;
}

} // namespace conair::apps
