/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything stochastic in this project (schedulers, back-off, property
 * tests) draws from this splitmix64/xorshift generator so that runs are
 * exactly reproducible from a seed.
 */
#pragma once

#include <cstdint>

namespace conair {

/** A small, fast, seedable PRNG (xorshift64* seeded via splitmix64). */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    void
    reseed(uint64_t seed)
    {
        // splitmix64 step avoids weak all-zero / tiny-seed states.
        uint64_t z = seed + 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        state_ = z ^ (z >> 31);
        if (state_ == 0)
            state_ = 0x2545f4914f6cdd1dull;
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /**
     * Uniform value in [0, bound); bound must be nonzero.
     *
     * Uses Lemire's multiply-shift rejection method (Lemire 2019,
     * "Fast Random Integer Generation in an Interval"): `next() %
     * bound` over-represents the low residues whenever 2^64 is not a
     * multiple of the bound, which skewed scheduler draws toward
     * low-numbered threads.  The widening multiply maps the raw draw
     * onto the interval and rejects only the sliver that would bias
     * it, so every value is exactly equally likely.
     */
    uint64_t
    range(uint64_t bound)
    {
        unsigned __int128 m = (unsigned __int128)next() * bound;
        uint64_t lo = uint64_t(m);
        if (lo < bound) {
            uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                m = (unsigned __int128)next() * bound;
                lo = uint64_t(m);
            }
        }
        return uint64_t(m >> 64);
    }

    /** Uniform value in [lo, hi] inclusive.  Computes the span in
     *  unsigned arithmetic so the full-range case (hi - lo spanning
     *  all of uint64) neither overflows nor passes range() a zero. */
    int64_t
    rangeInclusive(int64_t lo, int64_t hi)
    {
        uint64_t span = uint64_t(hi) - uint64_t(lo);
        if (span == UINT64_MAX)
            return int64_t(next());
        return int64_t(uint64_t(lo) + range(span + 1));
    }

    /** Bernoulli draw with probability num/den. */
    bool chance(uint64_t num, uint64_t den) { return range(den) < num; }

  private:
    uint64_t state_;
};

} // namespace conair
