#include "support/diag.h"

#include <execinfo.h>

#include <cstdio>
#include <cstdlib>

#include "support/str.h"

namespace conair {

std::string
SrcLoc::str() const
{
    if (!valid())
        return "<unknown>";
    return strfmt("%u:%u", line, col);
}

std::string
Diag::str() const
{
    const char *k = kind == DiagKind::Error     ? "error"
                    : kind == DiagKind::Warning ? "warning"
                                                : "note";
    if (loc.valid())
        return strfmt("%s: %s: %s", loc.str().c_str(), k, message.c_str());
    return strfmt("%s: %s", k, message.c_str());
}

void
DiagEngine::error(SrcLoc loc, std::string msg)
{
    diags_.push_back({DiagKind::Error, loc, std::move(msg)});
    ++numErrors_;
}

void
DiagEngine::warning(SrcLoc loc, std::string msg)
{
    diags_.push_back({DiagKind::Warning, loc, std::move(msg)});
}

void
DiagEngine::note(SrcLoc loc, std::string msg)
{
    diags_.push_back({DiagKind::Note, loc, std::move(msg)});
}

std::string
DiagEngine::str() const
{
    std::string out;
    for (const Diag &d : diags_) {
        out += d.str();
        out += '\n';
    }
    return out;
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "conair fatal: %s\n", msg.c_str());
    void *frames[32];
    int n = backtrace(frames, 32);
    backtrace_symbols_fd(frames, n, 2);
    std::abort();
}

} // namespace conair
