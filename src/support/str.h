/**
 * @file
 * Small string helpers shared across the project (printf-style formatting,
 * joining, numeric rendering).  Kept minimal: the project targets GCC 12,
 * whose libstdc++ does not ship std::format.
 */
#pragma once

#include <cstdarg>
#include <string>
#include <vector>

namespace conair {

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** va_list variant of strfmt(). */
std::string vstrfmt(const char *fmt, va_list ap);

/** Joins @p parts with @p sep between consecutive elements. */
std::string join(const std::vector<std::string> &parts, const std::string &sep);

/** Renders a double the way the IR printer expects (round-trippable). */
std::string fpToStr(double v);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Escapes a string for printing inside double quotes ("\n" etc.). */
std::string escape(const std::string &s);

/** Reverses escape(): interprets backslash escapes. */
std::string unescape(const std::string &s);

} // namespace conair
