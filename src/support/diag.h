/**
 * @file
 * Diagnostic reporting: source locations, error/warning sinks, and the
 * fatal() escape hatch for internal invariant violations.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace conair {

/** A (line, column) position in a source buffer; 1-based, 0 = unknown. */
struct SrcLoc
{
    uint32_t line = 0;
    uint32_t col = 0;

    bool valid() const { return line != 0; }
    std::string str() const;
};

/** Severity of a diagnostic message. */
enum class DiagKind { Error, Warning, Note };

/** A single diagnostic: severity, location, message text. */
struct Diag
{
    DiagKind kind = DiagKind::Error;
    SrcLoc loc;
    std::string message;

    std::string str() const;
};

/**
 * Collects diagnostics produced by a front-end or analysis phase.
 *
 * Phases report through this sink instead of printing, so that tests can
 * assert on exact diagnostics and tools can render them uniformly.
 */
class DiagEngine
{
  public:
    void error(SrcLoc loc, std::string msg);
    void warning(SrcLoc loc, std::string msg);
    void note(SrcLoc loc, std::string msg);

    bool hasErrors() const { return numErrors_ > 0; }
    size_t numErrors() const { return numErrors_; }
    const std::vector<Diag> &diags() const { return diags_; }

    /** All diagnostics rendered one per line (for tests and CLI output). */
    std::string str() const;

  private:
    std::vector<Diag> diags_;
    size_t numErrors_ = 0;
};

/**
 * Aborts the process with a message.  Reserved for internal invariant
 * violations (the moral equivalent of gem5's panic()); user-input errors
 * must go through DiagEngine instead.
 */
[[noreturn]] void fatal(const std::string &msg);

} // namespace conair
