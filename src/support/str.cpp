#include "support/str.h"

#include <cstdio>
#include <cstring>

namespace conair {

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out(n > 0 ? n : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), n + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vstrfmt(fmt, ap);
    va_end(ap);
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
fpToStr(double v)
{
    // %.17g round-trips IEEE doubles exactly.
    std::string s = strfmt("%.17g", v);
    // Ensure the token is recognizably floating point when parsed back.
    if (s.find_first_of(".eEni") == std::string::npos)
        s += ".0";
    return s;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           std::memcmp(s.data(), prefix.data(), prefix.size()) == 0;
}

std::string
escape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          default: out += c;
        }
    }
    return out;
}

std::string
unescape(const std::string &s)
{
    std::string out;
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 == s.size()) {
            out += s[i];
            continue;
        }
        ++i;
        switch (s[i]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case '\\': out += '\\'; break;
          case '"': out += '"'; break;
          default: out += s[i];
        }
    }
    return out;
}

} // namespace conair
