#include "support/json.h"

#include "support/diag.h"
#include "support/str.h"

namespace conair {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
            break;
        }
    }
    return out;
}

void
JsonWriter::preValue()
{
    if (keyPending_) {
        keyPending_ = false;
        return; // the key already positioned us
    }
    Ctx ctx = stack_.back();
    if (ctx == Ctx::Object)
        fatal("JsonWriter: value inside an object needs a key");
    if (hasItems_.back())
        out_ += ',';
    if (indent_ > 0 && ctx != Ctx::Top) {
        out_ += '\n';
        out_.append(size_t(indent_) * (stack_.size() - 1), ' ');
    }
    hasItems_.back() = true;
}

void
JsonWriter::open(Ctx c, char ch)
{
    preValue();
    out_ += ch;
    stack_.push_back(c);
    hasItems_.push_back(false);
}

void
JsonWriter::close(Ctx c, char ch)
{
    if (stack_.back() != c || keyPending_)
        fatal("JsonWriter: mismatched container close");
    bool had = hasItems_.back();
    stack_.pop_back();
    hasItems_.pop_back();
    if (indent_ > 0 && had) {
        out_ += '\n';
        out_.append(size_t(indent_) * (stack_.size() - 1), ' ');
    }
    out_ += ch;
}

JsonWriter &
JsonWriter::beginObject()
{
    open(Ctx::Object, '{');
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    close(Ctx::Object, '}');
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    open(Ctx::Array, '[');
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    close(Ctx::Array, ']');
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    if (stack_.back() != Ctx::Object || keyPending_)
        fatal("JsonWriter: key outside an object");
    if (hasItems_.back())
        out_ += ',';
    if (indent_ > 0) {
        out_ += '\n';
        out_.append(size_t(indent_) * (stack_.size() - 1), ' ');
    }
    hasItems_.back() = true;
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += indent_ > 0 ? "\": " : "\":";
    keyPending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &s)
{
    preValue();
    out_ += '"';
    out_ += jsonEscape(s);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    return value(std::string(s));
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    preValue();
    out_ += strfmt("%lld", (long long)v);
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    preValue();
    out_ += strfmt("%llu", (unsigned long long)v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    preValue();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(double v, const char *fmt)
{
    preValue();
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-nonliteral"
    out_ += strfmt(fmt, v);
#pragma GCC diagnostic pop
    return *this;
}

JsonWriter &
JsonWriter::rawValue(const std::string &json)
{
    preValue();
    out_ += json;
    return *this;
}

} // namespace conair
