/**
 * @file
 * A small streaming JSON writer shared by everything that emits JSON
 * (the BENCH_*.json bench reports, the Chrome trace exporter, the
 * metrics registry).  One implementation of escaping and comma/indent
 * bookkeeping instead of a hand-rolled emitter per bench.
 *
 * Output is deterministic: the writer adds no whitespace beyond the
 * indentation the caller configured, numbers are rendered with fixed
 * printf formats, and key order is whatever the caller emits (use
 * sorted containers for byte-stable artifacts — the golden trace test
 * pins exporter output byte for byte).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace conair {

/** Escapes @p s for inclusion inside a JSON double-quoted string
 *  (quotes, backslashes, and control characters; non-ASCII bytes are
 *  passed through, so UTF-8 input stays UTF-8). */
std::string jsonEscape(const std::string &s);

/**
 * Streaming JSON writer with automatic comma insertion.
 *
 *   JsonWriter w(2);                 // pretty-print, 2-space indent
 *   w.beginObject().key("bench").value("explore")
 *    .key("kernels").beginArray();
 *   ...
 *   w.endArray().endObject();
 *   write(w.str());
 *
 * An indent of 0 produces compact single-line output.  Misnesting
 * (value without key inside an object, endObject inside an array, ...)
 * trips fatal() — emitters are all test-covered, so this is a
 * programming error, not an input error.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(int indent = 0) : indent_(indent) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emits an object key; the next call must emit its value. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &s);
    JsonWriter &value(const char *s);
    JsonWriter &value(int64_t v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int v) { return value(int64_t(v)); }
    JsonWriter &value(unsigned v) { return value(uint64_t(v)); }
    JsonWriter &value(bool v);

    /** Renders @p v with printf format @p fmt ("%.3f", "%.17g", ...).
     *  Kept explicit so artifact precision is a caller decision and
     *  byte-stable across runs. */
    JsonWriter &value(double v, const char *fmt = "%.6g");

    /** Splices pre-rendered JSON (a number formatted elsewhere, or a
     *  nested document) as one value. */
    JsonWriter &rawValue(const std::string &json);

    /** The document so far (complete once every container is closed). */
    const std::string &str() const { return out_; }

  private:
    enum class Ctx : uint8_t { Top, Object, Array };

    void preValue(); ///< comma/newline/indent before a value or key
    void open(Ctx c, char ch);
    void close(Ctx c, char ch);

    std::string out_;
    std::vector<Ctx> stack_{Ctx::Top};
    std::vector<bool> hasItems_{false};
    bool keyPending_ = false;
    int indent_ = 0;
};

} // namespace conair
