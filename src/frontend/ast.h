/**
 * @file
 * The MiniC abstract syntax tree.
 *
 * Nodes are tagged structs rather than a class hierarchy: the language
 * is small and the two consumers (type-checking code generator, tests)
 * switch over kinds anyway.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/diag.h"

namespace conair::fe {

/** A MiniC static type: base type plus pointer depth. */
struct TypeRef
{
    enum class Base : uint8_t { Int, Double, Void };

    Base base = Base::Int;
    uint8_t ptr = 0; ///< pointer depth ("int**" -> 2)

    bool operator==(const TypeRef &o) const = default;

    bool isVoid() const { return base == Base::Void && ptr == 0; }
    bool isPointer() const { return ptr > 0; }
    bool isInt() const { return base == Base::Int && ptr == 0; }
    bool isDouble() const { return base == Base::Double && ptr == 0; }

    TypeRef
    pointee() const
    {
        TypeRef t = *this;
        if (t.ptr)
            --t.ptr;
        return t;
    }

    TypeRef
    pointerTo() const
    {
        TypeRef t = *this;
        ++t.ptr;
        return t;
    }

    std::string str() const;
};

/** Expression node kinds. */
enum class ExprKind : uint8_t {
    IntLit,   ///< ival
    FloatLit, ///< fval
    StrLit,   ///< text (only valid as a print()/assert-message argument)
    Ident,    ///< text = name
    Unary,    ///< op in text ("-", "!"), kids[0]
    Binary,   ///< op in text ("+", "==", "&&", ...), kids[0], kids[1]
    Assign,   ///< kids[0] = kids[1]; text is "=", "+=", or "-="
    Call,     ///< text = callee name, kids = arguments
    Index,    ///< kids[0] [ kids[1] ]
    Deref,    ///< * kids[0]
    AddrOf,   ///< & kids[0]
};

/** One expression node. */
struct Expr
{
    ExprKind kind;
    SrcLoc loc;
    int64_t ival = 0;
    double fval = 0.0;
    std::string text;
    std::vector<std::unique_ptr<Expr>> kids;

    /** Filled in by the code generator's type checker. */
    TypeRef type;
};

/** Statement node kinds. */
enum class StmtKind : uint8_t {
    Block,    ///< kids
    VarDecl,  ///< declType text[arraySize]; init = expr (optional)
    ExprStmt, ///< expr
    If,       ///< expr; kids[0] = then, kids[1] = else (optional)
    While,    ///< expr; kids[0] = body
    For,      ///< init/step in forInit/forStep; expr = cond; kids[0]=body
    Return,   ///< expr (optional)
    Break,
    Continue,
};

/** One statement node. */
struct Stmt
{
    StmtKind kind;
    SrcLoc loc;
    TypeRef declType;
    std::string text;      ///< VarDecl name
    int64_t arraySize = 0; ///< VarDecl: 0 = scalar, >0 = local array
    std::unique_ptr<Expr> expr;
    std::unique_ptr<Stmt> forInit;
    std::unique_ptr<Expr> forStep;
    std::vector<std::unique_ptr<Stmt>> kids;
};

/** A function parameter. */
struct Param
{
    TypeRef type;
    std::string name;
    SrcLoc loc;
};

/** A top-level function definition. */
struct FuncDecl
{
    TypeRef returnType;
    std::string name;
    std::vector<Param> params;
    std::unique_ptr<Stmt> body;
    SrcLoc loc;
};

/** A top-level variable (global) definition. */
struct GlobalDecl
{
    TypeRef type;
    std::string name;
    int64_t arraySize = 0; ///< 0 = scalar
    bool isMutex = false;
    std::vector<double> initFp;
    std::vector<int64_t> initInt;
    bool hasInit = false;
    SrcLoc loc;
};

/** A whole MiniC translation unit. */
struct Program
{
    std::vector<GlobalDecl> globals;
    std::vector<std::unique_ptr<FuncDecl>> functions;
};

} // namespace conair::fe
