/**
 * @file
 * The MiniC lexer.
 */
#pragma once

#include <string>
#include <vector>

#include "frontend/token.h"
#include "support/diag.h"

namespace conair::fe {

/**
 * Tokenises MiniC source.  Returns the token stream terminated by an
 * End token; lexical errors are reported through @p diags.
 */
std::vector<Token> lex(const std::string &source, DiagEngine &diags);

} // namespace conair::fe
