#include "frontend/parser.h"

#include "frontend/lexer.h"
#include "support/str.h"

namespace conair::fe {

std::string
TypeRef::str() const
{
    std::string s = base == Base::Int      ? "int"
                    : base == Base::Double ? "double"
                                           : "void";
    for (unsigned i = 0; i < ptr; ++i)
        s += '*';
    return s;
}

namespace {

class Parser
{
  public:
    Parser(std::vector<Token> toks, DiagEngine &diags)
        : toks_(std::move(toks)), diags_(diags)
    {}

    std::unique_ptr<Program>
    run()
    {
        auto prog = std::make_unique<Program>();
        while (cur().kind != Tk::End && !diags_.hasErrors())
            parseTopLevel(*prog);
        return diags_.hasErrors() ? nullptr : std::move(prog);
    }

  private:
    const Token &cur() const { return toks_[pos_]; }
    const Token &
    peek(size_t n = 1) const
    {
        return toks_[std::min(pos_ + n, toks_.size() - 1)];
    }
    void bump() { if (pos_ + 1 < toks_.size()) ++pos_; }

    void
    err(const std::string &msg)
    {
        diags_.error(cur().loc, msg);
    }

    bool
    expect(Tk kind)
    {
        if (cur().kind != kind) {
            err(strfmt("expected %s, found %s", tokenKindName(kind),
                       tokenKindName(cur().kind)));
            return false;
        }
        bump();
        return true;
    }

    bool
    isTypeStart(Tk kind) const
    {
        return kind == Tk::KwInt || kind == Tk::KwDouble ||
               kind == Tk::KwVoid;
    }

    TypeRef
    parseType()
    {
        TypeRef t;
        switch (cur().kind) {
          case Tk::KwInt: t.base = TypeRef::Base::Int; break;
          case Tk::KwDouble: t.base = TypeRef::Base::Double; break;
          case Tk::KwVoid: t.base = TypeRef::Base::Void; break;
          default:
            err("expected type name");
            return t;
        }
        bump();
        while (cur().kind == Tk::Star) {
            ++t.ptr;
            bump();
        }
        return t;
    }

    void
    parseTopLevel(Program &prog)
    {
        if (cur().kind == Tk::KwMutex) {
            GlobalDecl g;
            g.loc = cur().loc;
            g.isMutex = true;
            bump();
            if (cur().kind != Tk::Ident) {
                err("expected mutex name");
                return;
            }
            g.name = cur().text;
            bump();
            expect(Tk::Semi);
            prog.globals.push_back(std::move(g));
            return;
        }
        if (!isTypeStart(cur().kind)) {
            err("expected declaration");
            return;
        }
        TypeRef type = parseType();
        if (cur().kind != Tk::Ident) {
            err("expected declaration name");
            return;
        }
        std::string name = cur().text;
        SrcLoc loc = cur().loc;
        bump();
        if (cur().kind == Tk::LParen) {
            parseFunction(prog, type, std::move(name), loc);
            return;
        }
        // Global variable.
        GlobalDecl g;
        g.loc = loc;
        g.type = type;
        g.name = std::move(name);
        if (cur().kind == Tk::LBracket) {
            bump();
            if (cur().kind != Tk::IntLit) {
                err("expected array size");
                return;
            }
            g.arraySize = cur().ival;
            bump();
            expect(Tk::RBracket);
        }
        if (cur().kind == Tk::Assign) {
            bump();
            g.hasInit = true;
            auto one = [&]() -> bool {
                int64_t sign = 1;
                if (cur().kind == Tk::Minus) {
                    sign = -1;
                    bump();
                }
                if (cur().kind == Tk::IntLit) {
                    g.initInt.push_back(sign * cur().ival);
                    g.initFp.push_back(double(sign * cur().ival));
                    bump();
                    return true;
                }
                if (cur().kind == Tk::FloatLit) {
                    g.initFp.push_back(sign * cur().fval);
                    g.initInt.push_back(int64_t(sign * cur().fval));
                    bump();
                    return true;
                }
                err("global initialisers must be numeric literals");
                return false;
            };
            if (cur().kind == Tk::LBrace) {
                bump();
                while (cur().kind != Tk::RBrace && cur().kind != Tk::End) {
                    if (!one())
                        return;
                    if (cur().kind == Tk::Comma)
                        bump();
                }
                expect(Tk::RBrace);
            } else if (!one()) {
                return;
            }
        }
        expect(Tk::Semi);
        prog.globals.push_back(std::move(g));
    }

    void
    parseFunction(Program &prog, TypeRef ret, std::string name, SrcLoc loc)
    {
        auto fn = std::make_unique<FuncDecl>();
        fn->returnType = ret;
        fn->name = std::move(name);
        fn->loc = loc;
        expect(Tk::LParen);
        while (cur().kind != Tk::RParen && cur().kind != Tk::End) {
            Param p;
            p.loc = cur().loc;
            p.type = parseType();
            if (cur().kind != Tk::Ident) {
                err("expected parameter name");
                return;
            }
            p.name = cur().text;
            bump();
            fn->params.push_back(std::move(p));
            if (cur().kind == Tk::Comma)
                bump();
            else
                break;
        }
        expect(Tk::RParen);
        if (cur().kind != Tk::LBrace) {
            err("expected function body");
            return;
        }
        fn->body = parseBlock();
        prog.functions.push_back(std::move(fn));
    }

    std::unique_ptr<Stmt>
    makeStmt(StmtKind kind)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = kind;
        s->loc = cur().loc;
        return s;
    }

    std::unique_ptr<Stmt>
    parseBlock()
    {
        auto block = makeStmt(StmtKind::Block);
        expect(Tk::LBrace);
        while (cur().kind != Tk::RBrace && cur().kind != Tk::End &&
               !diags_.hasErrors()) {
            auto s = parseStmt();
            if (s)
                block->kids.push_back(std::move(s));
        }
        expect(Tk::RBrace);
        return block;
    }

    std::unique_ptr<Stmt>
    parseStmt()
    {
        switch (cur().kind) {
          case Tk::LBrace:
            return parseBlock();
          case Tk::KwIf: {
            auto s = makeStmt(StmtKind::If);
            bump();
            expect(Tk::LParen);
            s->expr = parseExpr();
            expect(Tk::RParen);
            s->kids.push_back(parseStmt());
            if (cur().kind == Tk::KwElse) {
                bump();
                s->kids.push_back(parseStmt());
            }
            return s;
          }
          case Tk::KwWhile: {
            auto s = makeStmt(StmtKind::While);
            bump();
            expect(Tk::LParen);
            s->expr = parseExpr();
            expect(Tk::RParen);
            s->kids.push_back(parseStmt());
            return s;
          }
          case Tk::KwFor: {
            auto s = makeStmt(StmtKind::For);
            bump();
            expect(Tk::LParen);
            if (cur().kind != Tk::Semi)
                s->forInit = parseSimpleStmt();
            expect(Tk::Semi);
            if (cur().kind != Tk::Semi)
                s->expr = parseExpr();
            expect(Tk::Semi);
            if (cur().kind != Tk::RParen)
                s->forStep = parseExpr();
            expect(Tk::RParen);
            s->kids.push_back(parseStmt());
            return s;
          }
          case Tk::KwReturn: {
            auto s = makeStmt(StmtKind::Return);
            bump();
            if (cur().kind != Tk::Semi)
                s->expr = parseExpr();
            expect(Tk::Semi);
            return s;
          }
          case Tk::KwBreak: {
            auto s = makeStmt(StmtKind::Break);
            bump();
            expect(Tk::Semi);
            return s;
          }
          case Tk::KwContinue: {
            auto s = makeStmt(StmtKind::Continue);
            bump();
            expect(Tk::Semi);
            return s;
          }
          default: {
            auto s = parseSimpleStmt();
            expect(Tk::Semi);
            return s;
          }
        }
    }

    /** A declaration or expression statement (no trailing ';'). */
    std::unique_ptr<Stmt>
    parseSimpleStmt()
    {
        if (isTypeStart(cur().kind)) {
            auto s = makeStmt(StmtKind::VarDecl);
            s->declType = parseType();
            if (cur().kind != Tk::Ident) {
                err("expected variable name");
                return s;
            }
            s->text = cur().text;
            bump();
            if (cur().kind == Tk::LBracket) {
                bump();
                if (cur().kind != Tk::IntLit) {
                    err("expected array size");
                    return s;
                }
                s->arraySize = cur().ival;
                bump();
                expect(Tk::RBracket);
            }
            if (cur().kind == Tk::Assign) {
                bump();
                s->expr = parseExpr();
            }
            return s;
        }
        auto s = makeStmt(StmtKind::ExprStmt);
        s->expr = parseExpr();
        return s;
    }

    //
    // Expressions (precedence climbing).
    //

    std::unique_ptr<Expr>
    makeExpr(ExprKind kind, SrcLoc loc)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->loc = loc;
        return e;
    }

    std::unique_ptr<Expr>
    parseExpr()
    {
        return parseAssign();
    }

    std::unique_ptr<Expr>
    parseAssign()
    {
        auto lhs = parseBinary(0);
        if (cur().kind == Tk::Assign || cur().kind == Tk::PlusAssign ||
            cur().kind == Tk::MinusAssign) {
            auto e = makeExpr(ExprKind::Assign, cur().loc);
            e->text = cur().kind == Tk::Assign        ? "="
                      : cur().kind == Tk::PlusAssign ? "+="
                                                      : "-=";
            bump();
            e->kids.push_back(std::move(lhs));
            e->kids.push_back(parseAssign()); // right associative
            return e;
        }
        return lhs;
    }

    struct OpInfo
    {
        const char *spelling;
        int prec;
    };

    bool
    binOp(Tk kind, OpInfo &out) const
    {
        switch (kind) {
          case Tk::PipePipe: out = {"||", 1}; return true;
          case Tk::AmpAmp: out = {"&&", 2}; return true;
          case Tk::Pipe: out = {"|", 3}; return true;
          case Tk::Caret: out = {"^", 4}; return true;
          case Tk::Amp: out = {"&", 5}; return true;
          case Tk::Eq: out = {"==", 6}; return true;
          case Tk::Ne: out = {"!=", 6}; return true;
          case Tk::Lt: out = {"<", 7}; return true;
          case Tk::Le: out = {"<=", 7}; return true;
          case Tk::Gt: out = {">", 7}; return true;
          case Tk::Ge: out = {">=", 7}; return true;
          case Tk::Shl: out = {"<<", 8}; return true;
          case Tk::Shr: out = {">>", 8}; return true;
          case Tk::Plus: out = {"+", 9}; return true;
          case Tk::Minus: out = {"-", 9}; return true;
          case Tk::Star: out = {"*", 10}; return true;
          case Tk::Slash: out = {"/", 10}; return true;
          case Tk::Percent: out = {"%", 10}; return true;
          default: return false;
        }
    }

    std::unique_ptr<Expr>
    parseBinary(int min_prec)
    {
        auto lhs = parseUnary();
        for (;;) {
            OpInfo info;
            if (!binOp(cur().kind, info) || info.prec < min_prec)
                return lhs;
            SrcLoc loc = cur().loc;
            bump();
            auto rhs = parseBinary(info.prec + 1);
            auto e = makeExpr(ExprKind::Binary, loc);
            e->text = info.spelling;
            e->kids.push_back(std::move(lhs));
            e->kids.push_back(std::move(rhs));
            lhs = std::move(e);
        }
    }

    std::unique_ptr<Expr>
    parseUnary()
    {
        switch (cur().kind) {
          case Tk::Minus: {
            auto e = makeExpr(ExprKind::Unary, cur().loc);
            e->text = "-";
            bump();
            e->kids.push_back(parseUnary());
            return e;
          }
          case Tk::Bang: {
            auto e = makeExpr(ExprKind::Unary, cur().loc);
            e->text = "!";
            bump();
            e->kids.push_back(parseUnary());
            return e;
          }
          case Tk::Star: {
            auto e = makeExpr(ExprKind::Deref, cur().loc);
            bump();
            e->kids.push_back(parseUnary());
            return e;
          }
          case Tk::Amp: {
            auto e = makeExpr(ExprKind::AddrOf, cur().loc);
            bump();
            e->kids.push_back(parseUnary());
            return e;
          }
          case Tk::PlusPlus:
          case Tk::MinusMinus: {
            // Prefix ++x / --x sugar: x += 1.
            auto e = makeExpr(ExprKind::Assign, cur().loc);
            e->text = cur().kind == Tk::PlusPlus ? "+=" : "-=";
            bump();
            e->kids.push_back(parseUnary());
            auto one = makeExpr(ExprKind::IntLit, e->loc);
            one->ival = 1;
            e->kids.push_back(std::move(one));
            return e;
          }
          default:
            return parsePostfix();
        }
    }

    std::unique_ptr<Expr>
    parsePostfix()
    {
        auto e = parsePrimary();
        for (;;) {
            if (cur().kind == Tk::LBracket) {
                auto idx = makeExpr(ExprKind::Index, cur().loc);
                bump();
                idx->kids.push_back(std::move(e));
                idx->kids.push_back(parseExpr());
                expect(Tk::RBracket);
                e = std::move(idx);
            } else if (cur().kind == Tk::PlusPlus ||
                       cur().kind == Tk::MinusMinus) {
                // Postfix x++ as a statement-level sugar: value ignored.
                auto a = makeExpr(ExprKind::Assign, cur().loc);
                a->text = cur().kind == Tk::PlusPlus ? "+=" : "-=";
                bump();
                a->kids.push_back(std::move(e));
                auto one = makeExpr(ExprKind::IntLit, a->loc);
                one->ival = 1;
                a->kids.push_back(std::move(one));
                e = std::move(a);
            } else {
                return e;
            }
        }
    }

    std::unique_ptr<Expr>
    parsePrimary()
    {
        switch (cur().kind) {
          case Tk::IntLit: {
            auto e = makeExpr(ExprKind::IntLit, cur().loc);
            e->ival = cur().ival;
            bump();
            return e;
          }
          case Tk::FloatLit: {
            auto e = makeExpr(ExprKind::FloatLit, cur().loc);
            e->fval = cur().fval;
            bump();
            return e;
          }
          case Tk::StrLit: {
            auto e = makeExpr(ExprKind::StrLit, cur().loc);
            e->text = cur().text;
            bump();
            return e;
          }
          case Tk::Ident: {
            std::string name = cur().text;
            SrcLoc loc = cur().loc;
            bump();
            if (cur().kind == Tk::LParen) {
                auto e = makeExpr(ExprKind::Call, loc);
                e->text = std::move(name);
                bump();
                while (cur().kind != Tk::RParen && cur().kind != Tk::End &&
                       !diags_.hasErrors()) {
                    e->kids.push_back(parseExpr());
                    if (cur().kind == Tk::Comma)
                        bump();
                    else
                        break;
                }
                expect(Tk::RParen);
                return e;
            }
            auto e = makeExpr(ExprKind::Ident, loc);
            e->text = std::move(name);
            return e;
          }
          case Tk::LParen: {
            bump();
            auto e = parseExpr();
            expect(Tk::RParen);
            return e;
          }
          default:
            err(strfmt("expected expression, found %s",
                       tokenKindName(cur().kind)));
            // Return a zero literal so parsing can continue.
            auto e = makeExpr(ExprKind::IntLit, cur().loc);
            bump();
            return e;
          }
    }

    std::vector<Token> toks_;
    DiagEngine &diags_;
    size_t pos_ = 0;
};

} // namespace

std::unique_ptr<Program>
parseProgram(const std::string &source, DiagEngine &diags)
{
    std::vector<Token> toks = lex(source, diags);
    if (diags.hasErrors())
        return nullptr;
    Parser p(std::move(toks), diags);
    return p.run();
}

} // namespace conair::fe
