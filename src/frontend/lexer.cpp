#include "frontend/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "support/str.h"

namespace conair::fe {

const char *
tokenKindName(Tk kind)
{
    switch (kind) {
      case Tk::End: return "end of input";
      case Tk::Ident: return "identifier";
      case Tk::IntLit: return "integer literal";
      case Tk::FloatLit: return "float literal";
      case Tk::StrLit: return "string literal";
      case Tk::KwInt: return "'int'";
      case Tk::KwDouble: return "'double'";
      case Tk::KwVoid: return "'void'";
      case Tk::KwMutex: return "'mutex'";
      case Tk::KwIf: return "'if'";
      case Tk::KwElse: return "'else'";
      case Tk::KwWhile: return "'while'";
      case Tk::KwFor: return "'for'";
      case Tk::KwReturn: return "'return'";
      case Tk::KwBreak: return "'break'";
      case Tk::KwContinue: return "'continue'";
      case Tk::LParen: return "'('";
      case Tk::RParen: return "')'";
      case Tk::LBrace: return "'{'";
      case Tk::RBrace: return "'}'";
      case Tk::LBracket: return "'['";
      case Tk::RBracket: return "']'";
      case Tk::Semi: return "';'";
      case Tk::Comma: return "','";
      case Tk::Assign: return "'='";
      case Tk::Plus: return "'+'";
      case Tk::Minus: return "'-'";
      case Tk::Star: return "'*'";
      case Tk::Slash: return "'/'";
      case Tk::Percent: return "'%'";
      case Tk::Amp: return "'&'";
      case Tk::Pipe: return "'|'";
      case Tk::Caret: return "'^'";
      case Tk::Shl: return "'<<'";
      case Tk::Shr: return "'>>'";
      case Tk::AmpAmp: return "'&&'";
      case Tk::PipePipe: return "'||'";
      case Tk::Bang: return "'!'";
      case Tk::Eq: return "'=='";
      case Tk::Ne: return "'!='";
      case Tk::Lt: return "'<'";
      case Tk::Le: return "'<='";
      case Tk::Gt: return "'>'";
      case Tk::Ge: return "'>='";
      case Tk::PlusAssign: return "'+='";
      case Tk::MinusAssign: return "'-='";
      case Tk::PlusPlus: return "'++'";
      case Tk::MinusMinus: return "'--'";
    }
    return "?";
}

namespace {

const std::unordered_map<std::string, Tk> keywords = {
    {"int", Tk::KwInt},       {"double", Tk::KwDouble},
    {"void", Tk::KwVoid},     {"mutex", Tk::KwMutex},
    {"if", Tk::KwIf},         {"else", Tk::KwElse},
    {"while", Tk::KwWhile},   {"for", Tk::KwFor},
    {"return", Tk::KwReturn}, {"break", Tk::KwBreak},
    {"continue", Tk::KwContinue},
};

} // namespace

std::vector<Token>
lex(const std::string &src, DiagEngine &diags)
{
    std::vector<Token> toks;
    size_t pos = 0;
    uint32_t line = 1, col = 1;

    auto advance = [&]() {
        if (pos < src.size() && src[pos] == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
        ++pos;
    };
    auto peek = [&](size_t n = 0) -> char {
        return pos + n < src.size() ? src[pos + n] : '\0';
    };
    auto make = [&](Tk kind) {
        Token t;
        t.kind = kind;
        t.loc = {line, col};
        return t;
    };
    auto push1 = [&](Tk kind) {
        toks.push_back(make(kind));
        advance();
    };
    auto push2 = [&](Tk kind) {
        toks.push_back(make(kind));
        advance();
        advance();
    };

    while (pos < src.size()) {
        char c = peek();
        if (std::isspace((unsigned char)c)) {
            advance();
            continue;
        }
        if (c == '/' && peek(1) == '/') {
            while (pos < src.size() && peek() != '\n')
                advance();
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            advance();
            advance();
            while (pos < src.size() && !(peek() == '*' && peek(1) == '/'))
                advance();
            advance();
            advance();
            continue;
        }
        if (std::isalpha((unsigned char)c) || c == '_') {
            Token t = make(Tk::Ident);
            std::string word;
            while (std::isalnum((unsigned char)peek()) || peek() == '_') {
                word += peek();
                advance();
            }
            auto kw = keywords.find(word);
            if (kw != keywords.end())
                t.kind = kw->second;
            t.text = std::move(word);
            toks.push_back(std::move(t));
            continue;
        }
        if (std::isdigit((unsigned char)c) ||
            (c == '.' && std::isdigit((unsigned char)peek(1)))) {
            Token t = make(Tk::IntLit);
            std::string num;
            bool is_float = false;
            while (std::isdigit((unsigned char)peek()) || peek() == '.' ||
                   peek() == 'e' || peek() == 'E' ||
                   ((peek() == '+' || peek() == '-') && !num.empty() &&
                    (num.back() == 'e' || num.back() == 'E'))) {
                if (peek() == '.' || peek() == 'e' || peek() == 'E')
                    is_float = true;
                num += peek();
                advance();
            }
            if (is_float) {
                t.kind = Tk::FloatLit;
                t.fval = std::strtod(num.c_str(), nullptr);
            } else {
                t.ival = std::strtoll(num.c_str(), nullptr, 10);
            }
            toks.push_back(std::move(t));
            continue;
        }
        if (c == '"') {
            Token t = make(Tk::StrLit);
            advance();
            std::string raw;
            while (pos < src.size() && peek() != '"') {
                if (peek() == '\\') {
                    raw += peek();
                    advance();
                    if (pos >= src.size())
                        break;
                }
                raw += peek();
                advance();
            }
            if (pos >= src.size()) {
                diags.error(t.loc, "unterminated string literal");
                break;
            }
            advance(); // closing quote
            t.text = unescape(raw);
            toks.push_back(std::move(t));
            continue;
        }
        switch (c) {
          case '(': push1(Tk::LParen); continue;
          case ')': push1(Tk::RParen); continue;
          case '{': push1(Tk::LBrace); continue;
          case '}': push1(Tk::RBrace); continue;
          case '[': push1(Tk::LBracket); continue;
          case ']': push1(Tk::RBracket); continue;
          case ';': push1(Tk::Semi); continue;
          case ',': push1(Tk::Comma); continue;
          case '^': push1(Tk::Caret); continue;
          case '+':
            if (peek(1) == '=') { push2(Tk::PlusAssign); continue; }
            if (peek(1) == '+') { push2(Tk::PlusPlus); continue; }
            push1(Tk::Plus);
            continue;
          case '-':
            if (peek(1) == '=') { push2(Tk::MinusAssign); continue; }
            if (peek(1) == '-') { push2(Tk::MinusMinus); continue; }
            push1(Tk::Minus);
            continue;
          case '*': push1(Tk::Star); continue;
          case '/': push1(Tk::Slash); continue;
          case '%': push1(Tk::Percent); continue;
          case '&':
            if (peek(1) == '&') { push2(Tk::AmpAmp); continue; }
            push1(Tk::Amp);
            continue;
          case '|':
            if (peek(1) == '|') { push2(Tk::PipePipe); continue; }
            push1(Tk::Pipe);
            continue;
          case '!':
            if (peek(1) == '=') { push2(Tk::Ne); continue; }
            push1(Tk::Bang);
            continue;
          case '=':
            if (peek(1) == '=') { push2(Tk::Eq); continue; }
            push1(Tk::Assign);
            continue;
          case '<':
            if (peek(1) == '=') { push2(Tk::Le); continue; }
            if (peek(1) == '<') { push2(Tk::Shl); continue; }
            push1(Tk::Lt);
            continue;
          case '>':
            if (peek(1) == '=') { push2(Tk::Ge); continue; }
            if (peek(1) == '>') { push2(Tk::Shr); continue; }
            push1(Tk::Gt);
            continue;
          default:
            diags.error({line, col}, strfmt("stray character '%c'", c));
            advance();
            continue;
        }
    }
    Token end;
    end.loc = {line, col};
    toks.push_back(end);
    return toks;
}

} // namespace conair::fe
