/**
 * @file
 * Recursive-descent parser for MiniC.
 */
#pragma once

#include <memory>
#include <string>

#include "frontend/ast.h"
#include "support/diag.h"

namespace conair::fe {

/**
 * Parses MiniC source into an AST.  Returns nullptr (with diagnostics in
 * @p diags) on error.
 */
std::unique_ptr<Program> parseProgram(const std::string &source,
                                      DiagEngine &diags);

} // namespace conair::fe
