/**
 * @file
 * One-call MiniC compilation pipeline.
 */
#pragma once

#include <memory>
#include <string>

#include "ir/module.h"
#include "support/diag.h"

namespace conair::fe {

/** Options controlling compileMiniC(). */
struct CompileOptions
{
    std::string moduleName = "program";

    /**
     * Promote locals to SSA virtual registers (mem2reg).  On by default:
     * ConAir's idempotence analysis assumes the promoted form.  Tests
     * disable it to inspect the raw alloca form.
     */
    bool promoteToSSA = true;

    /** Run the IR verifier on the result (fatal in case of pass bugs). */
    bool verify = true;
};

/**
 * Compiles MiniC source to a verified MiniIR module.  Returns nullptr
 * with diagnostics in @p diags when the source is invalid.
 */
std::unique_ptr<ir::Module> compileMiniC(const std::string &source,
                                         DiagEngine &diags,
                                         const CompileOptions &opts = {});

} // namespace conair::fe
