#include "frontend/compile.h"

#include "analysis/cfg_utils.h"
#include "analysis/mem2reg.h"
#include "frontend/codegen.h"
#include "frontend/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace conair::fe {

std::unique_ptr<ir::Module>
compileMiniC(const std::string &source, DiagEngine &diags,
             const CompileOptions &opts)
{
    std::unique_ptr<Program> prog = parseProgram(source, diags);
    if (!prog)
        return nullptr;
    std::unique_ptr<ir::Module> module =
        generateIR(*prog, diags, opts.moduleName);
    if (!module)
        return nullptr;

    analysis::removeUnreachableBlocks(*module);
    if (opts.promoteToSSA)
        analysis::promoteModuleToSSA(*module);

    if (opts.verify) {
        DiagEngine verify_diags;
        if (!ir::verifyModule(*module, verify_diags)) {
            // A verifier failure after a clean front-end run is a
            // compiler bug, not a user error.
            fatal("compileMiniC produced invalid IR:\n" +
                  verify_diags.str() + ir::printModule(*module));
        }
    }
    return module;
}

} // namespace conair::fe
