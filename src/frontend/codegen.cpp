#include "frontend/codegen.h"

#include <unordered_map>
#include <vector>

#include "ir/builder.h"
#include "support/str.h"

namespace conair::fe {

using ir::BasicBlock;
using ir::Builtin;
using ir::Function;
using ir::Global;
using ir::Instruction;
using ir::IRBuilder;
using ir::Opcode;
using ir::Value;

namespace {

/** A typed IR value as the expression generator hands them around. */
struct TypedValue
{
    Value *value = nullptr;
    TypeRef type;
};

/** Where a named variable lives. */
struct VarInfo
{
    TypeRef type;        ///< element type for arrays
    bool isArray = false;
    bool isGlobal = false;
    bool isMutex = false;
    Value *addr = nullptr; ///< alloca result or GlobalAddr constant
};

ir::Type
lowerType(const TypeRef &t)
{
    if (t.isPointer())
        return ir::Type::Ptr;
    switch (t.base) {
      case TypeRef::Base::Int: return ir::Type::I64;
      case TypeRef::Base::Double: return ir::Type::F64;
      case TypeRef::Base::Void: return ir::Type::Void;
    }
    return ir::Type::I64;
}

class Codegen
{
  public:
    Codegen(const Program &prog, DiagEngine &diags,
            const std::string &module_name)
        : prog_(prog), diags_(diags),
          module_(std::make_unique<ir::Module>(module_name)),
          builder_(module_.get())
    {}

    std::unique_ptr<ir::Module>
    run()
    {
        declareGlobals();
        declareFunctions();
        if (diags_.hasErrors())
            return nullptr;
        for (const auto &fn : prog_.functions)
            genFunction(*fn);
        if (diags_.hasErrors())
            return nullptr;
        return std::move(module_);
    }

  private:
    void
    err(SrcLoc loc, const std::string &msg)
    {
        diags_.error(loc, msg);
    }

    //
    // Declarations.
    //

    void
    declareGlobals()
    {
        for (const GlobalDecl &g : prog_.globals) {
            if (globals_.count(g.name)) {
                err(g.loc, "duplicate global '" + g.name + "'");
                continue;
            }
            if (g.isMutex) {
                Global *ir_g =
                    module_->addGlobal(g.name, ir::Type::I64, 1, true);
                globals_[g.name] = {TypeRef{}, false, true, true,
                                    module_->getGlobalAddr(ir_g)};
                continue;
            }
            int64_t size = g.arraySize > 0 ? g.arraySize : 1;
            ir::Type elem = lowerType(g.type);
            if (elem == ir::Type::Void) {
                err(g.loc, "global cannot have void type");
                continue;
            }
            Global *ir_g = module_->addGlobal(g.name, elem, size, false);
            if (g.hasInit) {
                if (elem == ir::Type::F64)
                    ir_g->setInitFp(g.initFp);
                else
                    ir_g->setInitInt(g.initInt);
            }
            globals_[g.name] = {g.type, g.arraySize > 0, true, false,
                                module_->getGlobalAddr(ir_g)};
        }
    }

    void
    declareFunctions()
    {
        for (const auto &fn : prog_.functions) {
            if (module_->findFunction(fn->name)) {
                err(fn->loc, "duplicate function '" + fn->name + "'");
                continue;
            }
            Function *f =
                module_->addFunction(fn->name, lowerType(fn->returnType));
            for (const Param &p : fn->params)
                f->addArg(lowerType(p.type), p.name);
        }
    }

    //
    // Function bodies.
    //

    void
    genFunction(const FuncDecl &fn)
    {
        curFn_ = module_->findFunction(fn.name);
        curDecl_ = &fn;
        BasicBlock *entry = curFn_->addBlock("entry");
        builder_.setInsertAtEnd(entry);
        scopes_.clear();
        scopes_.emplace_back();
        loops_.clear();

        for (unsigned i = 0; i < fn.params.size(); ++i) {
            const Param &p = fn.params[i];
            builder_.setLoc(p.loc);
            Instruction *slot = builder_.alloca_(1);
            builder_.store(curFn_->arg(i), slot);
            scopes_.back()[p.name] = {p.type, false, false, false, slot};
        }

        genStmt(*fn.body);

        // Implicit return at a fall-through function end.
        if (!builder_.insertBlock()->hasTerminator())
            emitDefaultReturn();
        curFn_ = nullptr;
        curDecl_ = nullptr;
    }

    void
    emitDefaultReturn()
    {
        switch (curFn_->returnType()) {
          case ir::Type::Void:
            builder_.ret();
            break;
          case ir::Type::F64:
            builder_.ret(module_->getFloat(0.0));
            break;
          case ir::Type::Ptr:
            builder_.ret(module_->getNull());
            break;
          default:
            builder_.ret(module_->getInt(0));
            break;
        }
    }

    VarInfo *
    lookup(const std::string &name)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return &found->second;
        }
        auto g = globals_.find(name);
        return g == globals_.end() ? nullptr : &g->second;
    }

    //
    // Statements.
    //

    void
    genStmt(const Stmt &s)
    {
        builder_.setLoc(s.loc);
        switch (s.kind) {
          case StmtKind::Block: {
            scopes_.emplace_back();
            for (const auto &kid : s.kids)
                genStmt(*kid);
            scopes_.pop_back();
            break;
          }
          case StmtKind::VarDecl:
            genVarDecl(s);
            break;
          case StmtKind::ExprStmt:
            genValue(*s.expr);
            break;
          case StmtKind::If:
            genIf(s);
            break;
          case StmtKind::While:
            genWhile(s);
            break;
          case StmtKind::For:
            genFor(s);
            break;
          case StmtKind::Return: {
            if (s.expr) {
                TypedValue v = genValue(*s.expr);
                TypeRef want = curDecl_->returnType;
                v = convert(v, want, s.loc);
                builder_.ret(v.value);
            } else {
                if (curFn_->returnType() != ir::Type::Void)
                    err(s.loc, "non-void function must return a value");
                builder_.ret();
            }
            startDeadBlock();
            break;
          }
          case StmtKind::Break: {
            if (loops_.empty()) {
                err(s.loc, "'break' outside a loop");
                break;
            }
            builder_.br(loops_.back().breakTarget);
            startDeadBlock();
            break;
          }
          case StmtKind::Continue: {
            if (loops_.empty()) {
                err(s.loc, "'continue' outside a loop");
                break;
            }
            builder_.br(loops_.back().continueTarget);
            startDeadBlock();
            break;
          }
        }
    }

    /** After a ret/break/continue: park codegen in an orphan block. */
    void
    startDeadBlock()
    {
        BasicBlock *dead = curFn_->addBlock("dead");
        builder_.setInsertAtEnd(dead);
    }

    void
    genVarDecl(const Stmt &s)
    {
        if (scopes_.back().count(s.text)) {
            err(s.loc, "redeclaration of '" + s.text + "'");
            return;
        }
        if (s.declType.isVoid()) {
            err(s.loc, "variable cannot have void type");
            return;
        }
        int64_t cells = s.arraySize > 0 ? s.arraySize : 1;
        Instruction *slot = builder_.alloca_(cells);
        VarInfo info{s.declType, s.arraySize > 0, false, false, slot};
        if (s.expr) {
            if (info.isArray) {
                err(s.loc, "array initialisers are not supported");
            } else {
                TypedValue v = genValue(*s.expr);
                v = convert(v, s.declType, s.loc);
                builder_.store(v.value, slot);
            }
        } else if (!info.isArray) {
            // Zero-initialise scalars: MiniC has no uninitialised reads.
            builder_.store(zeroOf(s.declType), slot);
        }
        scopes_.back()[s.text] = info;
    }

    Value *
    zeroOf(const TypeRef &t)
    {
        if (t.isPointer())
            return module_->getNull();
        if (t.isDouble())
            return module_->getFloat(0.0);
        return module_->getInt(0);
    }

    void
    genIf(const Stmt &s)
    {
        Value *cond = genCond(*s.expr);
        BasicBlock *then_bb = curFn_->addBlock("if.then");
        BasicBlock *merge = curFn_->addBlock("if.end");
        BasicBlock *else_bb =
            s.kids.size() > 1 ? curFn_->addBlock("if.else") : merge;
        builder_.condBr(cond, then_bb, else_bb);

        builder_.setInsertAtEnd(then_bb);
        genStmt(*s.kids[0]);
        if (!builder_.insertBlock()->hasTerminator())
            builder_.br(merge);

        if (s.kids.size() > 1) {
            builder_.setInsertAtEnd(else_bb);
            genStmt(*s.kids[1]);
            if (!builder_.insertBlock()->hasTerminator())
                builder_.br(merge);
        }
        builder_.setInsertAtEnd(merge);
    }

    void
    genWhile(const Stmt &s)
    {
        BasicBlock *head = curFn_->addBlock("while.head");
        BasicBlock *body = curFn_->addBlock("while.body");
        BasicBlock *exit = curFn_->addBlock("while.end");
        builder_.br(head);
        builder_.setInsertAtEnd(head);
        Value *cond = genCond(*s.expr);
        builder_.condBr(cond, body, exit);

        loops_.push_back({exit, head});
        builder_.setInsertAtEnd(body);
        genStmt(*s.kids[0]);
        if (!builder_.insertBlock()->hasTerminator())
            builder_.br(head);
        loops_.pop_back();
        builder_.setInsertAtEnd(exit);
    }

    void
    genFor(const Stmt &s)
    {
        scopes_.emplace_back();
        if (s.forInit)
            genStmt(*s.forInit);
        BasicBlock *head = curFn_->addBlock("for.head");
        BasicBlock *body = curFn_->addBlock("for.body");
        BasicBlock *step = curFn_->addBlock("for.step");
        BasicBlock *exit = curFn_->addBlock("for.end");
        builder_.br(head);
        builder_.setInsertAtEnd(head);
        if (s.expr) {
            Value *cond = genCond(*s.expr);
            builder_.condBr(cond, body, exit);
        } else {
            builder_.br(body);
        }

        loops_.push_back({exit, step});
        builder_.setInsertAtEnd(body);
        genStmt(*s.kids[0]);
        if (!builder_.insertBlock()->hasTerminator())
            builder_.br(step);
        loops_.pop_back();

        builder_.setInsertAtEnd(step);
        if (s.forStep)
            genValue(*s.forStep);
        builder_.br(head);
        builder_.setInsertAtEnd(exit);
        scopes_.pop_back();
    }

    //
    // Conversions.
    //

    TypedValue
    convert(TypedValue v, const TypeRef &want, SrcLoc loc)
    {
        if (v.type == want)
            return v;
        if (v.type.isInt() && want.isDouble())
            return {builder_.siToFp(v.value), want};
        if (v.type.isDouble() && want.isInt())
            return {builder_.fpToSi(v.value), want};
        if (v.type.isPointer() && want.isPointer())
            return {v.value, want}; // untyped-pointer compatibility
        if (v.type.isInt() && want.isPointer()) {
            // Only the literal 0 converts to a pointer (null).
            if (v.value->kind() == ir::ValueKind::ConstInt &&
                static_cast<ir::ConstInt *>(v.value)->value() == 0)
                return {module_->getNull(), want};
        }
        err(loc, strfmt("cannot convert %s to %s", v.type.str().c_str(),
                        want.str().c_str()));
        return {zeroOf(want), want};
    }

    //
    // Conditions (i1 results, short-circuit logic).
    //

    Value *
    genCond(const Expr &e)
    {
        builder_.setLoc(e.loc);
        if (e.kind == ExprKind::Unary && e.text == "!") {
            Value *inner = genCond(*e.kids[0]);
            return builder_.cmp(Opcode::ICmpEq, inner,
                                module_->getBool(false));
        }
        if (e.kind == ExprKind::Binary &&
            (e.text == "&&" || e.text == "||")) {
            // Short-circuit through a temporary slot; mem2reg turns the
            // loads/stores into a phi.
            Instruction *slot = builder_.alloca_(1);
            bool is_and = e.text == "&&";
            BasicBlock *rhs_bb = curFn_->addBlock("sc.rhs");
            BasicBlock *merge = curFn_->addBlock("sc.end");

            Value *lhs = genCond(*e.kids[0]);
            builder_.store(builder_.zext(lhs), slot);
            if (is_and)
                builder_.condBr(lhs, rhs_bb, merge);
            else
                builder_.condBr(lhs, merge, rhs_bb);

            builder_.setInsertAtEnd(rhs_bb);
            Value *rhs = genCond(*e.kids[1]);
            builder_.store(builder_.zext(rhs), slot);
            builder_.br(merge);

            builder_.setInsertAtEnd(merge);
            Value *merged = builder_.load(ir::Type::I64, slot);
            return builder_.cmp(Opcode::ICmpNe, merged, module_->getInt(0));
        }
        if (e.kind == ExprKind::Binary) {
            Opcode op;
            bool is_cmp = true;
            if (e.text == "==")
                op = Opcode::ICmpEq;
            else if (e.text == "!=")
                op = Opcode::ICmpNe;
            else if (e.text == "<")
                op = Opcode::ICmpSlt;
            else if (e.text == "<=")
                op = Opcode::ICmpSle;
            else if (e.text == ">")
                op = Opcode::ICmpSgt;
            else if (e.text == ">=")
                op = Opcode::ICmpSge;
            else
                is_cmp = false;
            if (is_cmp)
                return genComparison(e, op);
        }
        // Fallback: truthiness of the value.
        TypedValue v = genValue(e);
        builder_.setLoc(e.loc);
        if (v.type.isPointer())
            return builder_.cmp(Opcode::ICmpNe, v.value,
                                module_->getNull());
        if (v.type.isDouble())
            return builder_.cmp(Opcode::FCmpNe, v.value,
                                module_->getFloat(0.0));
        return builder_.cmp(Opcode::ICmpNe, v.value, module_->getInt(0));
    }

    Value *
    genComparison(const Expr &e, Opcode int_op)
    {
        TypedValue lhs = genValue(*e.kids[0]);
        TypedValue rhs = genValue(*e.kids[1]);
        builder_.setLoc(e.loc);
        if (lhs.type.isPointer() || rhs.type.isPointer()) {
            if (int_op != Opcode::ICmpEq && int_op != Opcode::ICmpNe) {
                err(e.loc, "pointers only support == and != comparison");
                return module_->getBool(false);
            }
            lhs = convert(lhs, lhs.type.isPointer() ? lhs.type : rhs.type,
                          e.loc);
            rhs = convert(rhs, lhs.type, e.loc);
            return builder_.cmp(int_op, lhs.value, rhs.value);
        }
        if (lhs.type.isDouble() || rhs.type.isDouble()) {
            TypeRef d{TypeRef::Base::Double, 0};
            lhs = convert(lhs, d, e.loc);
            rhs = convert(rhs, d, e.loc);
            Opcode fop;
            switch (int_op) {
              case Opcode::ICmpEq: fop = Opcode::FCmpEq; break;
              case Opcode::ICmpNe: fop = Opcode::FCmpNe; break;
              case Opcode::ICmpSlt: fop = Opcode::FCmpLt; break;
              case Opcode::ICmpSle: fop = Opcode::FCmpLe; break;
              case Opcode::ICmpSgt: fop = Opcode::FCmpGt; break;
              default: fop = Opcode::FCmpGe; break;
            }
            return builder_.cmp(fop, lhs.value, rhs.value);
        }
        return builder_.cmp(int_op, lhs.value, rhs.value);
    }

    //
    // L-values.
    //

    /** Generates the address of an assignable expression. */
    TypedValue
    genLValue(const Expr &e)
    {
        builder_.setLoc(e.loc);
        switch (e.kind) {
          case ExprKind::Ident: {
            VarInfo *var = lookup(e.text);
            if (!var) {
                err(e.loc, "unknown variable '" + e.text + "'");
                return {module_->getNull(), TypeRef{}};
            }
            if (var->isMutex) {
                err(e.loc, "a mutex cannot be assigned");
                return {module_->getNull(), TypeRef{}};
            }
            if (var->isArray) {
                err(e.loc, "an array cannot be assigned as a whole");
                return {module_->getNull(), TypeRef{}};
            }
            return {var->addr, var->type};
          }
          case ExprKind::Deref: {
            TypedValue p = genValue(*e.kids[0]);
            if (!p.type.isPointer()) {
                err(e.loc, "cannot dereference non-pointer");
                return {module_->getNull(), TypeRef{}};
            }
            return {p.value, p.type.pointee()};
          }
          case ExprKind::Index: {
            return genElementAddr(e);
          }
          default:
            err(e.loc, "expression is not assignable");
            return {module_->getNull(), TypeRef{}};
        }
    }

    /** Address of a[i]; also used for reading. */
    TypedValue
    genElementAddr(const Expr &e)
    {
        TypedValue base;
        const Expr &arr = *e.kids[0];
        if (arr.kind == ExprKind::Ident) {
            VarInfo *var = lookup(arr.text);
            if (!var) {
                err(arr.loc, "unknown variable '" + arr.text + "'");
                return {module_->getNull(), TypeRef{}};
            }
            if (var->isArray) {
                base = {var->addr, var->type}; // decayed element pointer
            } else {
                base = genValue(arr);
                if (!base.type.isPointer()) {
                    err(e.loc, "subscripted value is not array/pointer");
                    return {module_->getNull(), TypeRef{}};
                }
                base.type = base.type.pointee();
            }
        } else {
            base = genValue(arr);
            if (!base.type.isPointer()) {
                err(e.loc, "subscripted value is not array/pointer");
                return {module_->getNull(), TypeRef{}};
            }
            base.type = base.type.pointee();
        }
        TypedValue idx = genValue(*e.kids[1]);
        idx = convert(idx, TypeRef{TypeRef::Base::Int, 0}, e.loc);
        builder_.setLoc(e.loc);
        Instruction *addr = builder_.ptrAdd(base.value, idx.value);
        return {addr, base.type};
    }

    //
    // R-values.
    //

    TypedValue
    genValue(const Expr &e)
    {
        builder_.setLoc(e.loc);
        switch (e.kind) {
          case ExprKind::IntLit:
            return {module_->getInt(e.ival), TypeRef{TypeRef::Base::Int, 0}};
          case ExprKind::FloatLit:
            return {module_->getFloat(e.fval),
                    TypeRef{TypeRef::Base::Double, 0}};
          case ExprKind::StrLit:
            err(e.loc, "string literals are only allowed in print()");
            return {module_->getInt(0), TypeRef{TypeRef::Base::Int, 0}};
          case ExprKind::Ident: {
            VarInfo *var = lookup(e.text);
            if (!var) {
                err(e.loc, "unknown variable '" + e.text + "'");
                return {module_->getInt(0), TypeRef{TypeRef::Base::Int, 0}};
            }
            if (var->isMutex) {
                // A mutex name used as a value denotes its address.
                TypeRef t{TypeRef::Base::Int, 1};
                return {var->addr, t};
            }
            if (var->isArray) {
                // Array decays to a pointer to its first element.
                return {var->addr, var->type.pointerTo()};
            }
            Value *loaded =
                builder_.load(lowerType(var->type), var->addr);
            return {loaded, var->type};
          }
          case ExprKind::Deref: {
            TypedValue lv = genLValue(e);
            if (lv.type.isVoid())
                return {module_->getInt(0), TypeRef{TypeRef::Base::Int, 0}};
            Instruction *loaded =
                builder_.load(lowerType(lv.type), lv.value);
            loaded->setTag(derefTag(e.loc));
            return {loaded, lv.type};
          }
          case ExprKind::Index: {
            TypedValue lv = genElementAddr(e);
            Instruction *loaded =
                builder_.load(lowerType(lv.type), lv.value);
            loaded->setTag(derefTag(e.loc));
            return {loaded, lv.type};
          }
          case ExprKind::AddrOf: {
            TypedValue lv = genLValue(*e.kids[0]);
            return {lv.value, lv.type.pointerTo()};
          }
          case ExprKind::Unary:
            return genUnary(e);
          case ExprKind::Binary:
            return genBinary(e);
          case ExprKind::Assign:
            return genAssign(e);
          case ExprKind::Call:
            return genCall(e);
        }
        return {module_->getInt(0), TypeRef{TypeRef::Base::Int, 0}};
    }

    std::string
    derefTag(SrcLoc loc) const
    {
        return strfmt("deref.%s.%u", curDecl_->name.c_str(), loc.line);
    }

    TypedValue
    genUnary(const Expr &e)
    {
        if (e.text == "!") {
            Value *c = genCond(e);
            return {builder_.zext(c), TypeRef{TypeRef::Base::Int, 0}};
        }
        // Negation.
        TypedValue v = genValue(*e.kids[0]);
        builder_.setLoc(e.loc);
        if (v.type.isDouble())
            return {builder_.binop(Opcode::FSub, module_->getFloat(0.0),
                                   v.value),
                    v.type};
        if (!v.type.isInt()) {
            err(e.loc, "cannot negate this type");
            return v;
        }
        return {builder_.binop(Opcode::Sub, module_->getInt(0), v.value),
                v.type};
    }

    TypedValue
    genBinary(const Expr &e)
    {
        const std::string &op = e.text;
        if (op == "&&" || op == "||" || op == "==" || op == "!=" ||
            op == "<" || op == "<=" || op == ">" || op == ">=") {
            Value *c = genCond(e);
            return {builder_.zext(c), TypeRef{TypeRef::Base::Int, 0}};
        }

        TypedValue lhs = genValue(*e.kids[0]);
        TypedValue rhs = genValue(*e.kids[1]);
        builder_.setLoc(e.loc);

        // Pointer arithmetic: ptr +/- int.
        if (lhs.type.isPointer() || rhs.type.isPointer()) {
            if (op == "+" || op == "-") {
                TypedValue p = lhs.type.isPointer() ? lhs : rhs;
                TypedValue n = lhs.type.isPointer() ? rhs : lhs;
                if (n.type.isPointer()) {
                    err(e.loc, "cannot add two pointers");
                    return p;
                }
                n = convert(n, TypeRef{TypeRef::Base::Int, 0}, e.loc);
                Value *off = n.value;
                if (op == "-") {
                    if (!lhs.type.isPointer()) {
                        err(e.loc, "cannot subtract pointer from int");
                        return p;
                    }
                    off = builder_.binop(Opcode::Sub, module_->getInt(0),
                                         off);
                }
                return {builder_.ptrAdd(p.value, off), p.type};
            }
            err(e.loc, "invalid pointer arithmetic");
            return lhs;
        }

        bool fp = lhs.type.isDouble() || rhs.type.isDouble();
        if (fp) {
            TypeRef d{TypeRef::Base::Double, 0};
            lhs = convert(lhs, d, e.loc);
            rhs = convert(rhs, d, e.loc);
            Opcode fop;
            if (op == "+")
                fop = Opcode::FAdd;
            else if (op == "-")
                fop = Opcode::FSub;
            else if (op == "*")
                fop = Opcode::FMul;
            else if (op == "/")
                fop = Opcode::FDiv;
            else {
                err(e.loc, "operator '" + op + "' needs integer operands");
                return lhs;
            }
            return {builder_.binop(fop, lhs.value, rhs.value), lhs.type};
        }

        TypeRef i{TypeRef::Base::Int, 0};
        lhs = convert(lhs, i, e.loc);
        rhs = convert(rhs, i, e.loc);
        Opcode iop;
        if (op == "+")
            iop = Opcode::Add;
        else if (op == "-")
            iop = Opcode::Sub;
        else if (op == "*")
            iop = Opcode::Mul;
        else if (op == "/")
            iop = Opcode::SDiv;
        else if (op == "%")
            iop = Opcode::SRem;
        else if (op == "&")
            iop = Opcode::And;
        else if (op == "|")
            iop = Opcode::Or;
        else if (op == "^")
            iop = Opcode::Xor;
        else if (op == "<<")
            iop = Opcode::Shl;
        else if (op == ">>")
            iop = Opcode::Shr;
        else {
            err(e.loc, "unknown operator '" + op + "'");
            return lhs;
        }
        return {builder_.binop(iop, lhs.value, rhs.value), i};
    }

    TypedValue
    genAssign(const Expr &e)
    {
        TypedValue lv = genLValue(*e.kids[0]);
        if (e.text == "=") {
            TypedValue v = genValue(*e.kids[1]);
            v = convert(v, lv.type, e.loc);
            builder_.setLoc(e.loc);
            Instruction *st = builder_.store(v.value, lv.value);
            if (e.kids[0]->kind == ExprKind::Deref ||
                e.kids[0]->kind == ExprKind::Index)
                st->setTag(derefTag(e.loc));
            return v;
        }
        // Compound assignment: load, op, store.
        builder_.setLoc(e.loc);
        Value *old = builder_.load(lowerType(lv.type), lv.value);
        TypedValue oldv{old, lv.type};
        TypedValue rhs = genValue(*e.kids[1]);
        builder_.setLoc(e.loc);
        TypedValue result;
        if (lv.type.isPointer()) {
            rhs = convert(rhs, TypeRef{TypeRef::Base::Int, 0}, e.loc);
            Value *off = rhs.value;
            if (e.text == "-=")
                off = builder_.binop(Opcode::Sub, module_->getInt(0), off);
            result = {builder_.ptrAdd(old, off), lv.type};
        } else if (lv.type.isDouble()) {
            rhs = convert(rhs, lv.type, e.loc);
            result = {builder_.binop(e.text == "+=" ? Opcode::FAdd
                                                    : Opcode::FSub,
                                     old, rhs.value),
                      lv.type};
        } else {
            rhs = convert(rhs, lv.type, e.loc);
            result = {builder_.binop(e.text == "+=" ? Opcode::Add
                                                    : Opcode::Sub,
                                     old, rhs.value),
                      lv.type};
        }
        Instruction *st = builder_.store(result.value, lv.value);
        if (e.kids[0]->kind == ExprKind::Deref ||
            e.kids[0]->kind == ExprKind::Index)
            st->setTag(derefTag(e.loc));
        return result;
    }

    //
    // Calls (user functions and language builtins).
    //

    TypedValue
    genCall(const Expr &e)
    {
        const std::string &name = e.text;
        TypeRef int_t{TypeRef::Base::Int, 0};
        TypeRef void_t{TypeRef::Base::Void, 0};

        if (name == "assert" || name == "oracle")
            return genAssertLike(e, name == "oracle");
        if (name == "print")
            return genPrint(e);

        if (name == "spawn") {
            if (e.kids.size() != 2 ||
                e.kids[0]->kind != ExprKind::Ident) {
                err(e.loc, "spawn(function, int_arg) expected");
                return {module_->getInt(0), int_t};
            }
            Function *entry = module_->findFunction(e.kids[0]->text);
            if (!entry) {
                err(e.loc, "unknown thread function '" + e.kids[0]->text +
                               "'");
                return {module_->getInt(0), int_t};
            }
            if (entry->numArgs() != 1 ||
                entry->arg(0)->type() != ir::Type::I64)
                err(e.loc, "thread entry must take a single int argument");
            TypedValue arg = genValue(*e.kids[1]);
            arg = convert(arg, int_t, e.loc);
            builder_.setLoc(e.loc);
            Instruction *call = builder_.callBuiltin(
                Builtin::ThreadCreate,
                {module_->getFuncAddr(entry), arg.value});
            return {call, int_t};
        }
        if (name == "join") {
            return genSimpleBuiltin(e, Builtin::ThreadJoin, {int_t},
                                    void_t);
        }
        if (name == "lock" || name == "unlock") {
            if (e.kids.size() != 1) {
                err(e.loc, name + "(mutex) expected");
                return {module_->getInt(0), int_t};
            }
            TypedValue m = genValue(*e.kids[0]);
            if (!m.type.isPointer()) {
                err(e.loc, name + "() needs a mutex or mutex pointer");
                return {module_->getInt(0), int_t};
            }
            builder_.setLoc(e.loc);
            Instruction *call = builder_.callBuiltin(
                name == "lock" ? Builtin::MutexLock : Builtin::MutexUnlock,
                {m.value});
            call->setTag(strfmt("%s.%s.%u", name.c_str(),
                                curDecl_->name.c_str(), e.loc.line));
            return {call, void_t};
        }
        if (name == "timedlock") {
            if (e.kids.size() != 2) {
                err(e.loc, "timedlock(mutex, timeout) expected");
                return {module_->getInt(0), int_t};
            }
            TypedValue m = genValue(*e.kids[0]);
            TypedValue t = genValue(*e.kids[1]);
            t = convert(t, int_t, e.loc);
            builder_.setLoc(e.loc);
            Instruction *call = builder_.callBuiltin(
                Builtin::MutexTimedLock, {m.value, t.value});
            return {call, int_t};
        }
        if (name == "malloc") {
            if (e.kids.size() != 1) {
                err(e.loc, "malloc(cells) expected");
                return {module_->getNull(), int_t.pointerTo()};
            }
            TypedValue n = genValue(*e.kids[0]);
            n = convert(n, int_t, e.loc);
            builder_.setLoc(e.loc);
            Instruction *call =
                builder_.callBuiltin(Builtin::Malloc, {n.value});
            return {call, int_t.pointerTo()};
        }
        if (name == "free") {
            if (e.kids.size() != 1) {
                err(e.loc, "free(ptr) expected");
                return {module_->getInt(0), void_t};
            }
            TypedValue p = genValue(*e.kids[0]);
            if (!p.type.isPointer())
                err(e.loc, "free() needs a pointer");
            builder_.setLoc(e.loc);
            builder_.callBuiltin(Builtin::Free, {p.value});
            return {module_->getInt(0), void_t};
        }
        if (name == "time")
            return genSimpleBuiltin(e, Builtin::Time, {}, int_t);
        if (name == "yield")
            return genSimpleBuiltin(e, Builtin::Yield, {}, void_t);
        if (name == "sleep")
            return genSimpleBuiltin(e, Builtin::Sleep, {int_t}, void_t);
        if (name == "rand")
            return genSimpleBuiltin(e, Builtin::RandInt, {int_t}, int_t);
        if (name == "hint") {
            if (e.kids.size() != 1 ||
                e.kids[0]->kind != ExprKind::IntLit) {
                err(e.loc, "hint(id) takes an integer literal");
                return {module_->getInt(0), void_t};
            }
            builder_.setLoc(e.loc);
            builder_.schedHint(uint64_t(e.kids[0]->ival));
            return {module_->getInt(0), void_t};
        }

        // User function call.
        Function *callee = module_->findFunction(name);
        if (!callee) {
            err(e.loc, "unknown function '" + name + "'");
            return {module_->getInt(0), int_t};
        }
        const FuncDecl *decl = findDecl(name);
        if (e.kids.size() != callee->numArgs()) {
            err(e.loc, strfmt("'%s' expects %u arguments, got %zu",
                              name.c_str(), callee->numArgs(),
                              e.kids.size()));
            return {module_->getInt(0), int_t};
        }
        std::vector<Value *> args;
        for (unsigned i = 0; i < e.kids.size(); ++i) {
            TypedValue a = genValue(*e.kids[i]);
            a = convert(a, decl->params[i].type, e.kids[i]->loc);
            args.push_back(a.value);
        }
        builder_.setLoc(e.loc);
        Instruction *call = builder_.call(callee, args);
        return {call, decl->returnType};
    }

    const FuncDecl *
    findDecl(const std::string &name) const
    {
        for (const auto &fn : prog_.functions)
            if (fn->name == name)
                return fn.get();
        fatal("findDecl: missing declaration");
    }

    TypedValue
    genSimpleBuiltin(const Expr &e, Builtin b,
                     const std::vector<TypeRef> &params, TypeRef ret)
    {
        if (e.kids.size() != params.size()) {
            err(e.loc, strfmt("'%s' expects %zu arguments", e.text.c_str(),
                              params.size()));
            return {module_->getInt(0), ret};
        }
        std::vector<Value *> args;
        for (unsigned i = 0; i < params.size(); ++i) {
            TypedValue a = genValue(*e.kids[i]);
            a = convert(a, params[i], e.kids[i]->loc);
            args.push_back(a.value);
        }
        builder_.setLoc(e.loc);
        Instruction *call = builder_.callBuiltin(b, args);
        return {call, ret};
    }

    /** assert(e) / oracle(e): Fig 5a / 5b lowering. */
    TypedValue
    genAssertLike(const Expr &e, bool is_oracle)
    {
        TypeRef void_t{TypeRef::Base::Void, 0};
        if (e.kids.empty()) {
            err(e.loc, e.text + "(condition) expected");
            return {module_->getInt(0), void_t};
        }
        Value *cond = genCond(*e.kids[0]);
        BasicBlock *ok = curFn_->addBlock(is_oracle ? "oracle.ok"
                                                    : "assert.ok");
        BasicBlock *fail = curFn_->addBlock(is_oracle ? "oracle.fail"
                                                      : "assert.fail");
        builder_.setLoc(e.loc);
        builder_.condBr(cond, ok, fail);
        builder_.setInsertAtEnd(fail);
        std::string msg =
            strfmt("%s:%u: %s failed", curDecl_->name.c_str(), e.loc.line,
                   e.text.c_str());
        Instruction *call = builder_.callBuiltin(
            is_oracle ? Builtin::OracleFail : Builtin::AssertFail,
            {module_->getStr(msg)});
        call->setTag(strfmt("%s.%s.%u", e.text.c_str(),
                            curDecl_->name.c_str(), e.loc.line));
        builder_.unreachable();
        builder_.setInsertAtEnd(ok);
        return {module_->getInt(0), void_t};
    }

    TypedValue
    genPrint(const Expr &e)
    {
        TypeRef void_t{TypeRef::Base::Void, 0};
        for (const auto &arg : e.kids) {
            if (arg->kind == ExprKind::StrLit) {
                builder_.setLoc(arg->loc);
                Instruction *call = builder_.callBuiltin(
                    Builtin::PrintStr, {module_->getStr(arg->text)});
                tagOutput(call, arg->loc);
                continue;
            }
            TypedValue v = genValue(*arg);
            builder_.setLoc(arg->loc);
            Instruction *call;
            if (v.type.isDouble()) {
                call = builder_.callBuiltin(Builtin::PrintF64, {v.value});
            } else if (v.type.isInt()) {
                call = builder_.callBuiltin(Builtin::PrintI64, {v.value});
            } else {
                err(arg->loc, "cannot print a pointer");
                continue;
            }
            tagOutput(call, arg->loc);
        }
        return {module_->getInt(0), void_t};
    }

    void
    tagOutput(Instruction *call, SrcLoc loc)
    {
        call->setTag(strfmt("out.%s.%u", curDecl_->name.c_str(), loc.line));
    }

    struct LoopTargets
    {
        BasicBlock *breakTarget;
        BasicBlock *continueTarget;
    };

    const Program &prog_;
    DiagEngine &diags_;
    std::unique_ptr<ir::Module> module_;
    IRBuilder builder_;
    Function *curFn_ = nullptr;
    const FuncDecl *curDecl_ = nullptr;
    std::unordered_map<std::string, VarInfo> globals_;
    std::vector<std::unordered_map<std::string, VarInfo>> scopes_;
    std::vector<LoopTargets> loops_;
};

} // namespace

std::unique_ptr<ir::Module>
generateIR(const Program &prog, DiagEngine &diags,
           const std::string &module_name)
{
    Codegen cg(prog, diags, module_name);
    return cg.run();
}

} // namespace conair::fe
