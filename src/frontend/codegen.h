/**
 * @file
 * MiniC code generation: AST -> MiniIR.
 *
 * The generator type-checks while lowering.  All locals start as
 * allocas with explicit loads/stores (the Clang-at--O0 shape); run
 * analysis::promoteModuleToSSA afterwards to obtain the virtual-register
 * form ConAir's idempotence analysis expects.  frontend/compile.h wraps
 * both steps.
 */
#pragma once

#include <memory>

#include "frontend/ast.h"
#include "ir/module.h"
#include "support/diag.h"

namespace conair::fe {

/**
 * Lowers @p prog into a fresh MiniIR module.  Returns nullptr (with
 * diagnostics) when type checking fails.
 */
std::unique_ptr<ir::Module> generateIR(const Program &prog,
                                       DiagEngine &diags,
                                       const std::string &module_name);

} // namespace conair::fe
