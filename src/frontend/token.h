/**
 * @file
 * MiniC token definitions.
 */
#pragma once

#include <cstdint>
#include <string>

#include "support/diag.h"

namespace conair::fe {

/** All MiniC token kinds. */
enum class Tk : uint8_t {
    End,
    Ident,
    IntLit,
    FloatLit,
    StrLit,

    // Keywords.
    KwInt, KwDouble, KwVoid, KwMutex,
    KwIf, KwElse, KwWhile, KwFor, KwReturn, KwBreak, KwContinue,

    // Punctuation / operators.
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Semi, Comma,
    Assign,                    // =
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Shl, Shr,
    AmpAmp, PipePipe, Bang,
    Eq, Ne, Lt, Le, Gt, Ge,
    PlusAssign, MinusAssign,   // += -=
    PlusPlus, MinusMinus,      // ++ --
};

/** One MiniC token. */
struct Token
{
    Tk kind = Tk::End;
    std::string text; ///< identifier spelling or string literal payload
    int64_t ival = 0;
    double fval = 0.0;
    SrcLoc loc;
};

/** Printable token-kind name for diagnostics. */
const char *tokenKindName(Tk kind);

} // namespace conair::fe
