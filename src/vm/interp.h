/**
 * @file
 * The MiniVM interpreter: deterministic execution of multi-threaded
 * MiniIR programs with instruction-level interleaving control.
 *
 * The VM stands in for the paper's testbed (x86 + pthreads + Linux):
 *  - threads interleave at instruction granularity under a seeded,
 *    reproducible scheduler;
 *  - invalid dereferences trap precisely (segmentation faults);
 *  - locks support plain and timed acquisition (deadlock timeouts);
 *  - the ConAir runtime intrinsics (checkpoint / rollback /
 *    compensation / back-off) are implemented natively — the moral
 *    equivalent of the paper's setjmp/longjmp register-image library.
 *
 * Two execution engines share all of the VM's semantics (memory, locks,
 * scheduling, the ConAir runtime) and differ only in how a single
 * instruction is fetched and its operands resolved:
 *  - ExecEngine::Decoded (default) runs the pre-decoded flat arrays
 *    built at construction (see decode.h), with a per-thread last-block
 *    memory-handle cache and a single-runnable scheduler fast path;
 *  - ExecEngine::Reference walks the IR tree exactly like the original
 *    interpreter (hash per operand, pointer chasing per branch).
 * Both engines are deterministic and tick-for-tick identical; the
 * differential tests in tests/vm/decode_diff_test.cpp enforce it.
 */
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>
// (std::deque also backs the whole-program checkpoint stack)

#include "ir/module.h"
#include "support/rng.h"
#include "vm/config.h"
#include "vm/decode.h"
#include "vm/regmap.h"
#include "vm/stats.h"
#include "vm/value.h"

namespace conair::vm {

/** Executes one MiniIR module.  One Interp instance = one run. */
class Interp
{
  public:
    Interp(const ir::Module &m, VmConfig cfg);
    ~Interp();

    /** Runs main() to completion (or failure) and reports the result. */
    RunResult run();

  private:
    struct Frame
    {
        const ir::Function *fn;
        const RegMap *map; ///< reference engine only
        std::vector<RtValue> regs;
        // Reference engine position (IR tree walk).
        const ir::BasicBlock *block = nullptr;
        ir::BasicBlock::InstList::const_iterator pc;
        const ir::BasicBlock *prevBlock = nullptr;
        // Decoded engine position (flat indices).
        const DecodedFunction *dfn = nullptr;
        uint32_t dBlock = 0;
        uint32_t dPc = 0;
        uint32_t dPrevBlock = kNoBlock;
        std::vector<uint32_t> allocaSlots;
        uint32_t retReg = 0; ///< caller register receiving the result
        bool wantsRet = false;
    };

    /** The ConAir register-image checkpoint (one slot per thread, like
     *  the paper's thread-local jmp_buf). */
    struct Checkpoint
    {
        bool valid = false;
        size_t frameIndex = 0;
        std::vector<RtValue> regs;
        const ir::BasicBlock *block = nullptr;
        ir::BasicBlock::InstList::const_iterator pc;
        const ir::BasicBlock *prevBlock = nullptr;
        uint32_t dBlock = 0;
        uint32_t dPc = 0;
        uint32_t dPrevBlock = kNoBlock;

        /** RunStats::schedTicks when the checkpoint was taken — the
         *  flight recorder's checkpoint-to-failure distance axis.
         *  Observability only; never restored into VM state. */
        uint64_t schedTicksAt = 0;

        /** Fig 4 "local writes" design point: saved copies of the
         *  frame's alloca storage (empty for plain checkpoints). */
        std::vector<std::pair<uint32_t, std::vector<RtValue>>> locals;
    };

    struct CompensationEntry
    {
        CellKey key;     ///< lock cell, or {Heap, block, 0} for mallocs
        uint64_t epoch;
    };

    struct RecoveryEpisode
    {
        bool active = false;
        int64_t siteId = 0;
        std::string siteTag;
        uint64_t startClock = 0;
        uint64_t retries = 0;
    };

    enum class ThreadState : uint8_t {
        Runnable,
        Sleeping,
        BlockedLock,
        Joining,
        Done,
    };

    struct HeapBlock
    {
        std::vector<RtValue> cells;
        bool freed = false;
    };

    /**
     * Per-thread last-block memory-handle cache: repeated loads/stores
     * to the same heap/stack block skip the unordered_map find().
     * Valid because heap/stack ids are never reused and map nodes are
     * address-stable; the only wholesale map replacement (wpRestore)
     * clears every cache.  See docs/VM_ENGINE.md.
     */
    struct MemCache
    {
        uint32_t heapId = 0;
        HeapBlock *heap = nullptr;
        uint32_t stackId = 0;
        std::vector<RtValue> *stack = nullptr;
    };

    struct Thread
    {
        uint32_t id;
        ThreadState state = ThreadState::Runnable;
        std::vector<Frame> frames;
        uint64_t wakeAt = 0;       ///< Sleeping / timed lock deadline
        bool lockHasDeadline = false;
        CellKey lockKey{};         ///< BlockedLock
        uint32_t lockResultReg = 0;
        bool lockWantsResult = false;
        uint64_t blockStart = 0;
        uint32_t joinTarget = 0;
        int64_t exitValue = 0;
        const ir::Instruction *blockedAt = nullptr; ///< lock site

        MemCache mem;

        /**
         * Per-thread decision RNG, split off the run seed by thread id
         * (splitmix over seed ^ hash(tid)).  Thread-local stochastic
         * choices (the ConAir deadlock back-off) draw from this stream
         * so two threads' decision sequences are independent and no
         * thread's draws shift the shared scheduler stream.
         */
        Rng rng{0};

        /** PCT scheduling priority (higher runs first); assigned at
         *  creation from the priority stream, dropped into the low
         *  band at change points.  Unused by the other policies. */
        uint64_t priority = 0;

        // ConAir per-thread runtime state (paper §3.3, §4.1).
        Checkpoint ckpt;
        int64_t retryCount = 0;
        uint64_t epoch = 0;
        std::vector<CompensationEntry> allocLog;
        std::vector<CompensationEntry> lockLog;
        RecoveryEpisode episode;

        /** No idempotency-destroying instruction since the checkpoint
         *  (chaos mode may roll back only while this holds). */
        bool cleanSinceCkpt = false;

        /**
         * A malloc/lock acquisition has not been compensation-logged
         * yet (the note hook is the next instruction or two away).
         * Real rollbacks only fire at failure sites, which always lie
         * after the logging; chaos must not strike inside the gap.
         */
        bool pendingNote = false;
    };

    struct MutexState
    {
        int32_t owner = -1; ///< thread id, -1 = free
        std::deque<uint32_t> waiters;
    };

    //
    // Execution.
    //

    /** Fetches and executes one instruction of @p t, charging the
     *  clock/step accounting (shared by both engines and by the
     *  scheduler fast path). */
    void stepThread(Thread &t);

    // Reference engine (IR tree walk).
    void execInst(Thread &t, const ir::Instruction &inst);
    RtValue getValue(Frame &f, const ir::Value *v);
    void setReg(Frame &f, const ir::Instruction *inst, RtValue v);
    void jumpTo(Thread &t, const ir::BasicBlock *target);

    // Decoded engine (flat arrays).
    void execDecoded(Thread &t, const DecodedInst &di);
    void execCallDecoded(Thread &t, const DecodedInst &di);
    void jumpToDecoded(Thread &t, uint32_t target);
    void doLoadDecoded(Thread &t, const DecodedInst &di);
    void doStoreDecoded(Thread &t, const DecodedInst &di);

    // Shared call/builtin plumbing: operands are pre-fetched RtValues,
    // @p dstReg is the dense result slot (valid when the instruction
    // produces a value); @p inst supplies string/function constants,
    // tags, and diagnostics.
    void execCall(Thread &t, const ir::Instruction &inst);
    void execBuiltin(Thread &t, const ir::Instruction &inst,
                     const RtValue *vals, uint32_t dstReg);
    void execConAir(Thread &t, const ir::Instruction &inst,
                    const RtValue *vals, uint32_t dstReg);
    void pushFrame(Thread &t, const ir::Function *fn,
                   const RtValue *args, unsigned nArgs, bool wants_ret,
                   uint32_t ret_reg,
                   const DecodedFunction *dfn = nullptr);
    void popFrame(Thread &t, RtValue ret);
    void releaseFrameSlots(Frame &f);
    void finishLoad(Frame &f, uint32_t dstReg, ir::Type type,
                    const RtValue &cell, const ir::Instruction *site);

    //
    // Memory.
    //

    RtValue *cellAt(Ptr p, const char *what);
    /** cellAt with the per-thread block-handle cache (decoded engine). */
    RtValue *cellAtCached(Thread &t, Ptr p, const char *what);
    bool pointerValid(Ptr p) const;
    void doStore(Thread &t, const ir::Instruction &inst);
    void doLoad(Thread &t, const ir::Instruction &inst);

    //
    // Synchronisation.
    //

    MutexState &mutexAt(CellKey key);
    void lockMutex(Thread &t, Ptr p, bool timed, uint64_t timeout,
                   uint32_t dstReg, const ir::Instruction *site);
    void unlockMutex(Thread &t, Ptr p, bool compensation);
    void grantLock(MutexState &m);

    //
    // ConAir runtime.
    //

    void doCheckpoint(Thread &t, const ir::Instruction &inst);
    void doTryRollback(Thread &t, const ir::Instruction &inst,
                       int64_t site_id);
    void runCompensation(Thread &t);
    void restoreCheckpoint(Thread &t);
    void maybeChaosRollback(Thread &t);

    //
    // Failure / termination.
    //

    void fail(Outcome o, const std::string &msg,
              const ir::Instruction *site);
    void failHang(const std::string &msg);
    void finish(int64_t exit_code);

    //
    // Scheduling.
    //

    Thread *pickThread();
    /**
     * Replay-mode scheduling (cfg_.replay set): consumes the recorded
     * switch list instead of consulting a policy.  Keeps the current
     * thread until the next recorded switch step, then hands the CPU
     * to the recorded thread.  Strict mode treats any inapplicable
     * switch as divergence (replayDiverge); tolerant mode skips it and
     * falls back to the lowest runnable id.
     */
    Thread *pickThreadReplay();
    /** Ends a strict replay with Outcome::Trap and
     *  RunResult::replayDivergence = @p msg. */
    void replayDiverge(const std::string &msg);
    void wakeDue();
    bool advanceSleepers();
    uint64_t newQuantum();
    /** Allocates a thread with its split decision-RNG stream and (for
     *  PCT) a fresh high-band priority. */
    Thread *newThread();
    /** Fires the next due PCT priority-change / bounded-preemption
     *  point (no-op until the global step count crosses it). */
    void applySchedPoint(Thread &t);
    /** Earliest wake deadline of any sleeper / timed lock. */
    uint64_t nextWakeDeadline() const;
    /** Drains the rest of the current quantum without consulting the
     *  scheduler while @p t is the only runnable thread.  Preserves
     *  clock ticks, step counts, and RNG draws exactly. */
    void runBurst(Thread &t);
    /** The fused engine's burst: dispatches superinstruction records
     *  (fuse.h) under a precomputed step budget.  Charges identical
     *  per-instruction accounting to runBurst / stepwise execution. */
    void runBurstFused(Thread &t);

    /** How a fused fast-path memory attempt ended. */
    enum class FastMem : uint8_t {
        Done,       ///< completed; no further bookkeeping
        SharedDone, ///< completed non-stack store; schedTicks advanced
        Slow,       ///< not eligible: take the delegated path
    };
    /** Cache-hit cell resolution for the fused burst: returns the cell
     *  only when the per-thread handle cache (or the globals array)
     *  proves the access in bounds and live; nullptr means "delegate"
     *  (miss, fault, or cache disabled), never a diagnosed failure. */
    RtValue *fusedCellFast(Thread &t, Ptr p);
    FastMem fusedTryLoad(Thread &t, const DecodedInst &di, RtValue *regs,
                         const RtValue *consts);
    FastMem fusedTryStore(Thread &t, const DecodedInst &di,
                          RtValue *regs, const RtValue *consts);

    //
    // Whole-program checkpoint baseline (Rx/ASSURE stand-in).
    //

    /** Deep copy of every piece of mutable program state. */
    struct WpSnapshot
    {
        std::vector<std::vector<RtValue>> globals;
        std::unordered_map<uint32_t, HeapBlock> heap;
        std::unordered_map<uint32_t, std::vector<RtValue>> stackSlots;
        std::unordered_map<CellKey, MutexState, CellKeyHash> mutexes;
        std::vector<Thread> threads;
        uint32_t nextHeapId;
        uint32_t nextSlotId;
        uint32_t currentTid;
        uint64_t quantumLeft;
        size_t outputLen;
    };

    void wpTakeSnapshot();
    void wpRestore();
    size_t wpStateCells() const;

    /**
     * Checkpoint stack (newest last).  Consecutive failed recovery
     * attempts walk further back, like Rx: the newest snapshot may have
     * captured an already-doomed state (e.g. mid-race), so each retry
     * discards it and rolls back to the one before.  The oldest
     * (program start) snapshot is never discarded.
     */
    std::deque<std::unique_ptr<WpSnapshot>> wpSnapshots_;
    uint64_t wpNextSnapshotAt_ = 0;
    unsigned wpRecoveriesUsed_ = 0;
    bool wpPendingRestore_ = false;

    const ir::Module &module_;
    VmConfig cfg_;
    RegMapCache regMaps_;
    Rng schedRng_;
    Rng appRng_;
    Rng chaosRng_;
    Rng prioRng_; ///< PCT initial-priority stream (split from seed)

    /**
     * Sorted global step counts where the exploration policies act:
     * PCT priority-change points / PreemptBound forced switches.
     * nextSchedPointAt_ caches the next due point (UINT64_MAX when
     * exhausted or not an exploration policy) so the hot loop and the
     * burst fast path compare one integer.
     */
    std::vector<uint64_t> schedPoints_;
    size_t schedPointNext_ = 0;
    uint64_t nextSchedPointAt_ = UINT64_MAX;

    /**
     * Replay cursor (cfg_.replay set): index of the next unconsumed
     * recorded switch, and its step count (UINT64_MAX once the list is
     * exhausted).  Both burst paths stop at replayNextSwitchAt_ the
     * same way they stop at nextSchedPointAt_, so pickThreadReplay is
     * consulted exactly at every recorded decision step.
     */
    size_t replayNext_ = 0;
    uint64_t replayNextSwitchAt_ = UINT64_MAX;

    /** Configured delay rules, densely indexed; the hot path and the
     *  fire counters use the index, never a map (a SchedHint without a
     *  rule allocates nothing). */
    std::vector<DelayRule> delayRules_;
    std::unordered_map<uint64_t, uint32_t> delayIndexByHint_;
    /** Per-rule fire counts; deliberately NOT part of WpSnapshot. */
    std::vector<uint64_t> hintFires_;

    /** The pre-decoded module (built for the Decoded and Fused
     *  engines; the reference engine simply ignores it). */
    std::unique_ptr<DecodedModule> decoded_;
    bool engineDecoded_ = true;
    /** ExecEngine::Fused: decoded_ carries the fusion overlay and the
     *  burst path dispatches superinstructions. */
    bool engineFused_ = false;

    // Memory.
    std::vector<std::vector<RtValue>> globals_;
    std::unordered_map<uint32_t, HeapBlock> heap_;
    std::unordered_map<uint32_t, std::vector<RtValue>> stackSlots_;
    uint32_t nextHeapId_ = 1;
    uint32_t nextSlotId_ = 1;
    std::unordered_map<CellKey, MutexState, CellKeyHash> mutexes_;

    // Threads.
    std::vector<std::unique_ptr<Thread>> threads_;
    uint32_t currentTid_ = 0;
    uint64_t quantumLeft_ = 0;
    bool forceSwitch_ = false;
    /** Set whenever a thread becomes runnable outside the scheduler
     *  (lock grant, join wake, spawn); ends a fast-path burst. */
    bool schedEvent_ = false;
    uint32_t lastRunnableCount_ = 0;
    uint64_t hangCheckCountdown_ = 1024;
    std::vector<uint32_t> runnableScratch_; ///< pickThread, reused
    std::vector<RtValue> phiScratch_;       ///< phi parallel copies

    // Observability hooks (aliases of cfg_.recorder / cfg_.metrics;
    // nullptr = disabled, the common case).  Recording is passive:
    // no RNG draws, no clock ticks, no stats mutations.
    obs::FlightRecorder *rec_ = nullptr;
    obs::MetricsRegistry *met_ = nullptr;
    /** Diagnosis recording mode: rec_ set AND cfg_.recordSharedAccesses
     *  — shared loads/stores also emit SharedLoad/SharedStore events. */
    bool diag_ = false;
    /** Phase profiler (alias of cfg_.profiler; nullptr = disabled).
     *  Same passivity contract as rec_: all profiler state lives in
     *  the profiler object, never in the VM. */
    obs::prof::PhaseProfiler *prof_ = nullptr;

    /** Attributes one retired step about to execute (opcode already
     *  fetched): classifies the phase, redirecting plain work inside
     *  an open recovery episode to Phase::Reexec.  CaRecovered steps
     *  are refunded by execConAir and never reach attribution. */
    void profStep(const Thread &t, ir::Opcode op, ir::Builtin builtin);

    /** Attributes a deferred fused-burst segment: @p memSteps retired
     *  memory fast-path charges, the remainder plain dispatch (both
     *  redirected to Phase::Reexec inside an open episode).  Only
     *  called with prof_ set and steps > 0. */
    void profFusedSegment(const Thread &t, uint64_t steps,
                          uint64_t memSteps);

    /** Records a SharedLoad/SharedStore event for a successful
     *  non-stack access (diagnosis mode only). */
    void recordSharedAccess(const Thread &t, bool isStore, Ptr addr,
                            const RtValue &v, const std::string &tag);

    // Clock and result.
    uint64_t clock_ = 0;
    bool running_ = true;
    RunResult result_;

    /** RunResult::memDigest of the current memory image (end of run). */
    uint64_t computeMemDigest() const;
};

/** Convenience wrapper: one run of @p m under @p cfg. */
RunResult runProgram(const ir::Module &m, const VmConfig &cfg = {});

} // namespace conair::vm
