/**
 * @file
 * The MiniVM interpreter: deterministic execution of multi-threaded
 * MiniIR programs with instruction-level interleaving control.
 *
 * The VM stands in for the paper's testbed (x86 + pthreads + Linux):
 *  - threads interleave at instruction granularity under a seeded,
 *    reproducible scheduler;
 *  - invalid dereferences trap precisely (segmentation faults);
 *  - locks support plain and timed acquisition (deadlock timeouts);
 *  - the ConAir runtime intrinsics (checkpoint / rollback /
 *    compensation / back-off) are implemented natively — the moral
 *    equivalent of the paper's setjmp/longjmp register-image library.
 */
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>
// (std::deque also backs the whole-program checkpoint stack)

#include "ir/module.h"
#include "support/rng.h"
#include "vm/config.h"
#include "vm/regmap.h"
#include "vm/stats.h"
#include "vm/value.h"

namespace conair::vm {

/** Executes one MiniIR module.  One Interp instance = one run. */
class Interp
{
  public:
    Interp(const ir::Module &m, VmConfig cfg);
    ~Interp();

    /** Runs main() to completion (or failure) and reports the result. */
    RunResult run();

  private:
    struct Frame
    {
        const ir::Function *fn;
        const RegMap *map;
        std::vector<RtValue> regs;
        const ir::BasicBlock *block;
        ir::BasicBlock::InstList::const_iterator pc;
        const ir::BasicBlock *prevBlock = nullptr;
        std::vector<uint32_t> allocaSlots;
        uint32_t retReg = 0; ///< caller register receiving the result
        bool wantsRet = false;
    };

    /** The ConAir register-image checkpoint (one slot per thread, like
     *  the paper's thread-local jmp_buf). */
    struct Checkpoint
    {
        bool valid = false;
        size_t frameIndex = 0;
        std::vector<RtValue> regs;
        const ir::BasicBlock *block = nullptr;
        ir::BasicBlock::InstList::const_iterator pc;
        const ir::BasicBlock *prevBlock = nullptr;

        /** Fig 4 "local writes" design point: saved copies of the
         *  frame's alloca storage (empty for plain checkpoints). */
        std::vector<std::pair<uint32_t, std::vector<RtValue>>> locals;
    };

    struct CompensationEntry
    {
        CellKey key;     ///< lock cell, or {Heap, block, 0} for mallocs
        uint64_t epoch;
    };

    struct RecoveryEpisode
    {
        bool active = false;
        int64_t siteId = 0;
        std::string siteTag;
        uint64_t startClock = 0;
        uint64_t retries = 0;
    };

    enum class ThreadState : uint8_t {
        Runnable,
        Sleeping,
        BlockedLock,
        Joining,
        Done,
    };

    struct Thread
    {
        uint32_t id;
        ThreadState state = ThreadState::Runnable;
        std::vector<Frame> frames;
        uint64_t wakeAt = 0;       ///< Sleeping / timed lock deadline
        bool lockHasDeadline = false;
        CellKey lockKey{};         ///< BlockedLock
        uint32_t lockResultReg = 0;
        bool lockWantsResult = false;
        uint64_t blockStart = 0;
        uint32_t joinTarget = 0;
        int64_t exitValue = 0;
        const ir::Instruction *blockedAt = nullptr; ///< lock site

        // ConAir per-thread runtime state (paper §3.3, §4.1).
        Checkpoint ckpt;
        int64_t retryCount = 0;
        uint64_t epoch = 0;
        std::vector<CompensationEntry> allocLog;
        std::vector<CompensationEntry> lockLog;
        RecoveryEpisode episode;

        /** No idempotency-destroying instruction since the checkpoint
         *  (chaos mode may roll back only while this holds). */
        bool cleanSinceCkpt = false;

        /**
         * A malloc/lock acquisition has not been compensation-logged
         * yet (the note hook is the next instruction or two away).
         * Real rollbacks only fire at failure sites, which always lie
         * after the logging; chaos must not strike inside the gap.
         */
        bool pendingNote = false;
    };

    struct MutexState
    {
        int32_t owner = -1; ///< thread id, -1 = free
        std::deque<uint32_t> waiters;
    };

    struct HeapBlock
    {
        std::vector<RtValue> cells;
        bool freed = false;
    };

    //
    // Execution.
    //

    void execInst(Thread &t, const ir::Instruction &inst);
    void execCall(Thread &t, const ir::Instruction &inst);
    void execBuiltin(Thread &t, const ir::Instruction &inst);
    void execConAir(Thread &t, const ir::Instruction &inst);
    RtValue getValue(Frame &f, const ir::Value *v);
    void setReg(Frame &f, const ir::Instruction *inst, RtValue v);
    void jumpTo(Thread &t, const ir::BasicBlock *target);
    void pushFrame(Thread &t, const ir::Function *fn,
                   const std::vector<RtValue> &args, bool wants_ret,
                   uint32_t ret_reg);
    void popFrame(Thread &t, RtValue ret);
    void releaseFrameSlots(Frame &f);

    //
    // Memory.
    //

    RtValue *cellAt(Ptr p, const char *what);
    bool pointerValid(Ptr p) const;
    void doStore(Thread &t, const ir::Instruction &inst);
    void doLoad(Thread &t, const ir::Instruction &inst);

    //
    // Synchronisation.
    //

    MutexState &mutexAt(CellKey key);
    void lockMutex(Thread &t, Ptr p, bool timed, uint64_t timeout,
                   const ir::Instruction *inst);
    void unlockMutex(Thread &t, Ptr p, bool compensation);
    void grantLock(MutexState &m);

    //
    // ConAir runtime.
    //

    void doCheckpoint(Thread &t, const ir::Instruction &inst);
    void doTryRollback(Thread &t, const ir::Instruction &inst);
    void runCompensation(Thread &t);
    void restoreCheckpoint(Thread &t);
    void maybeChaosRollback(Thread &t, const ir::Instruction &inst);

    //
    // Failure / termination.
    //

    void fail(Outcome o, const std::string &msg,
              const ir::Instruction *site);
    void failHang(const std::string &msg);
    void finish(int64_t exit_code);

    //
    // Scheduling.
    //

    Thread *pickThread();
    void wakeDue();
    bool advanceSleepers();
    uint64_t newQuantum();

    //
    // Whole-program checkpoint baseline (Rx/ASSURE stand-in).
    //

    /** Deep copy of every piece of mutable program state. */
    struct WpSnapshot
    {
        std::vector<std::vector<RtValue>> globals;
        std::unordered_map<uint32_t, HeapBlock> heap;
        std::unordered_map<uint32_t, std::vector<RtValue>> stackSlots;
        std::unordered_map<CellKey, MutexState, CellKeyHash> mutexes;
        std::vector<Thread> threads;
        uint32_t nextHeapId;
        uint32_t nextSlotId;
        uint32_t currentTid;
        uint64_t quantumLeft;
        size_t outputLen;
    };

    void wpTakeSnapshot();
    void wpRestore();
    size_t wpStateCells() const;

    /**
     * Checkpoint stack (newest last).  Consecutive failed recovery
     * attempts walk further back, like Rx: the newest snapshot may have
     * captured an already-doomed state (e.g. mid-race), so each retry
     * discards it and rolls back to the one before.  The oldest
     * (program start) snapshot is never discarded.
     */
    std::deque<std::unique_ptr<WpSnapshot>> wpSnapshots_;
    uint64_t wpNextSnapshotAt_ = 0;
    unsigned wpRecoveriesUsed_ = 0;
    bool wpPendingRestore_ = false;

    const ir::Module &module_;
    VmConfig cfg_;
    RegMapCache regMaps_;
    Rng schedRng_;
    Rng appRng_;
    Rng chaosRng_;
    std::unordered_map<uint64_t, DelayRule> delayByHint_;
    /** Per-hint fire counts; deliberately NOT part of WpSnapshot. */
    std::unordered_map<uint64_t, uint64_t> hintFires_;

    // Memory.
    std::vector<std::vector<RtValue>> globals_;
    std::unordered_map<uint32_t, HeapBlock> heap_;
    std::unordered_map<uint32_t, std::vector<RtValue>> stackSlots_;
    uint32_t nextHeapId_ = 1;
    uint32_t nextSlotId_ = 1;
    std::unordered_map<CellKey, MutexState, CellKeyHash> mutexes_;

    // Threads.
    std::vector<std::unique_ptr<Thread>> threads_;
    uint32_t currentTid_ = 0;
    uint64_t quantumLeft_ = 0;
    bool forceSwitch_ = false;

    // Clock and result.
    uint64_t clock_ = 0;
    bool running_ = true;
    RunResult result_;
};

/** Convenience wrapper: one run of @p m under @p cfg. */
RunResult runProgram(const ir::Module &m, const VmConfig &cfg = {});

} // namespace conair::vm
