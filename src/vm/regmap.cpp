#include "vm/regmap.h"

#include "support/diag.h"

namespace conair::vm {

RegMap::RegMap(const ir::Function &f)
{
    size_t values = f.numArgs();
    for (const auto &bb : f.blocks())
        values += bb->insts().size();
    index_.reserve(values);
    // Arguments first — argument i IS register i, an invariant the
    // pre-decoded call path relies on to seed callee frames without
    // looking anything up (see Interp::pushFrame).
    for (unsigned i = 0; i < f.numArgs(); ++i)
        index_[f.arg(i)] = count_++;
    for (const auto &bb : f.blocks())
        for (const auto &inst : bb->insts())
            if (inst->producesValue())
                index_[inst.get()] = count_++;
}

uint32_t
RegMap::indexOf(const ir::Value *v) const
{
    auto it = index_.find(v);
    if (it == index_.end())
        fatal("RegMap: value not numbered in this function");
    return it->second;
}

const RegMap &
RegMapCache::of(const ir::Function *f)
{
    auto it = maps_.find(f);
    if (it == maps_.end())
        it = maps_.emplace(f, RegMap(*f)).first;
    return it->second;
}

} // namespace conair::vm
