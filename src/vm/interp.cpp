#include "vm/interp.h"

#include <algorithm>

#include "support/str.h"

namespace conair::vm {

using ir::Builtin;
using ir::Instruction;
using ir::Opcode;

namespace {
bool dirtiesWindow(const Instruction &inst);
} // namespace

const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Success: return "success";
      case Outcome::AssertFail: return "assert-fail";
      case Outcome::OracleFail: return "oracle-fail";
      case Outcome::Segfault: return "segfault";
      case Outcome::Hang: return "hang";
      case Outcome::Timeout: return "timeout";
      case Outcome::Trap: return "trap";
    }
    return "?";
}

Interp::Interp(const ir::Module &m, VmConfig cfg)
    : module_(m), cfg_(cfg), schedRng_(cfg.seed), appRng_(cfg.appSeed),
      chaosRng_(cfg.seed ^ 0x5bd1e995u)
{
    for (const DelayRule &r : cfg_.delays)
        delayByHint_[r.hintId] = r;

    // Materialise globals.
    for (const auto &g : m.globals()) {
        std::vector<RtValue> cells(g->size());
        if (g->elemType() == ir::Type::Ptr) {
            // Pointer globals start as null (MiniC offers no non-zero
            // pointer initialisers).
            for (auto &cell : cells)
                cell = RtValue::ofPtr(Ptr{});
        } else if (g->elemType() == ir::Type::F64) {
            for (size_t i = 0; i < g->initFp().size() &&
                               i < cells.size(); ++i)
                cells[i] = RtValue::ofFloat(g->initFp()[i]);
            for (size_t i = g->initFp().size(); i < cells.size(); ++i)
                cells[i] = RtValue::ofFloat(0.0);
        } else {
            for (size_t i = 0; i < g->initInt().size() &&
                               i < cells.size(); ++i)
                cells[i] = RtValue::ofInt(g->initInt()[i]);
            for (size_t i = g->initInt().size(); i < cells.size(); ++i)
                cells[i] = RtValue::ofInt(0);
        }
        globals_.push_back(std::move(cells));
    }
}

Interp::~Interp() = default;

//
// Public entry.
//

RunResult
Interp::run()
{
    const ir::Function *main_fn = module_.findFunction("main");
    if (!main_fn) {
        fail(Outcome::Trap, "no main() function", nullptr);
        return result_;
    }
    auto t0 = std::make_unique<Thread>();
    t0->id = 0;
    threads_.push_back(std::move(t0));
    pushFrame(*threads_[0], main_fn, {}, false, 0);
    quantumLeft_ = newQuantum();

    if (cfg_.wpCheckpointInterval > 0) {
        wpTakeSnapshot(); // initial checkpoint at program start
        wpNextSnapshotAt_ = cfg_.wpCheckpointInterval;
    }

    uint64_t hang_check_countdown = 1024;
    while (running_) {
        if (wpPendingRestore_) {
            wpRestore();
            continue;
        }
        if (cfg_.wpCheckpointInterval > 0 &&
            result_.stats.steps >= wpNextSnapshotAt_) {
            wpTakeSnapshot();
            wpNextSnapshotAt_ =
                result_.stats.steps + cfg_.wpCheckpointInterval;
        }
        wakeDue();
        Thread *t = pickThread();
        if (!t) {
            if (!advanceSleepers()) {
                failHang(
                    "all threads blocked (deadlock or lost wake-up)");
                if (wpPendingRestore_)
                    continue; // whole-program rollback instead
                break;
            }
            continue;
        }
        Frame &f = t->frames.back();
        const Instruction &inst = **f.pc;
        ++f.pc; // terminators re-aim it; calls rely on it pointing past
        ++clock_;
        ++result_.stats.steps;
        execInst(*t, inst);

        if (cfg_.chaosRollbackEveryN > 0 && running_) {
            if (dirtiesWindow(inst))
                t->cleanSinceCkpt = false;
            maybeChaosRollback(*t, inst);
        }

        if (result_.stats.steps >= cfg_.maxSteps && running_) {
            // The budget is final: no whole-program rollback can help.
            running_ = false;
            result_.outcome = Outcome::Timeout;
            result_.failureMsg = "instruction budget exhausted";
            break;
        }
        if (--hang_check_countdown == 0) {
            hang_check_countdown = 1024;
            for (const auto &th : threads_) {
                if (th->state == ThreadState::BlockedLock &&
                    !th->lockHasDeadline &&
                    clock_ - th->blockStart > cfg_.hangTimeout) {
                    failHang("thread blocked on a lock past the hang "
                             "timeout");
                    break; // inner loop; restore handled at loop top
                }
            }
        }
    }
    result_.clock = clock_;
    return result_;
}

//
// Frames.
//

void
Interp::pushFrame(Thread &t, const ir::Function *fn,
                  const std::vector<RtValue> &args, bool wants_ret,
                  uint32_t ret_reg)
{
    Frame f;
    f.fn = fn;
    f.map = &regMaps_.of(fn);
    f.regs.resize(f.map->count());
    for (unsigned i = 0; i < args.size(); ++i)
        f.regs[f.map->indexOf(fn->arg(i))] = args[i];
    f.block = fn->entry();
    f.pc = fn->entry()->insts().begin();
    f.wantsRet = wants_ret;
    f.retReg = ret_reg;
    t.frames.push_back(std::move(f));
}

void
Interp::releaseFrameSlots(Frame &f)
{
    for (uint32_t id : f.allocaSlots)
        stackSlots_.erase(id);
}

void
Interp::popFrame(Thread &t, RtValue ret)
{
    Frame done = std::move(t.frames.back());
    t.frames.pop_back();
    releaseFrameSlots(done);
    if (t.frames.empty()) {
        t.state = ThreadState::Done;
        t.exitValue = ret.kind == ir::Type::I64 ? ret.i : 0;
        // Wake joiners.
        for (auto &other : threads_) {
            if (other->state == ThreadState::Joining &&
                other->joinTarget == t.id)
                other->state = ThreadState::Runnable;
        }
        if (t.id == 0)
            finish(t.exitValue);
        return;
    }
    Frame &caller = t.frames.back();
    if (done.wantsRet)
        caller.regs[done.retReg] = ret;
}

//
// Value plumbing.
//

RtValue
Interp::getValue(Frame &f, const ir::Value *v)
{
    using ir::ValueKind;
    switch (v->kind()) {
      case ValueKind::ConstInt: {
        auto *c = static_cast<const ir::ConstInt *>(v);
        return RtValue::ofInt(c->value(), c->type());
      }
      case ValueKind::ConstFloat:
        return RtValue::ofFloat(
            static_cast<const ir::ConstFloat *>(v)->value());
      case ValueKind::ConstNull:
        return RtValue::ofPtr(Ptr{});
      case ValueKind::GlobalAddr: {
        auto *g = static_cast<const ir::GlobalAddr *>(v);
        return RtValue::ofPtr(
            Ptr{Ptr::Seg::Global, g->global()->id(), 0});
      }
      case ValueKind::Argument:
      case ValueKind::Instruction:
        return f.regs[f.map->indexOf(v)];
      case ValueKind::ConstStr:
      case ValueKind::FuncAddr:
        fatal("string/function constants are only valid as direct "
              "builtin operands");
    }
    fatal("getValue: unhandled value kind");
}

void
Interp::setReg(Frame &f, const Instruction *inst, RtValue v)
{
    f.regs[f.map->indexOf(inst)] = v;
}

void
Interp::jumpTo(Thread &t, const ir::BasicBlock *target)
{
    Frame &f = t.frames.back();
    f.prevBlock = f.block;
    f.block = target;
    f.pc = target->insts().begin();

    // Evaluate the leading phis as one parallel copy.
    std::vector<std::pair<const Instruction *, RtValue>> updates;
    for (auto it = target->insts().begin(); it != target->insts().end();
         ++it) {
        const Instruction *inst = it->get();
        if (inst->opcode() != Opcode::Phi)
            break;
        bool matched = false;
        for (unsigned i = 0; i < inst->numBlockOps(); ++i) {
            if (inst->incomingBlock(i) == f.prevBlock) {
                updates.push_back({inst, getValue(f, inst->operand(i))});
                matched = true;
                break;
            }
        }
        if (!matched) {
            fail(Outcome::Trap, "phi has no incoming edge for "
                                "predecessor",
                 inst);
            return;
        }
        ++f.pc;
        ++clock_;
        ++result_.stats.steps;
    }
    for (auto &[inst, v] : updates)
        setReg(f, inst, v);
}

//
// Memory.
//

bool
Interp::pointerValid(Ptr p) const
{
    switch (p.seg) {
      case Ptr::Seg::Null:
        return false;
      case Ptr::Seg::Global:
        return p.block < globals_.size() && p.offset >= 0 &&
               p.offset < int64_t(globals_[p.block].size());
      case Ptr::Seg::Heap: {
        auto it = heap_.find(p.block);
        return it != heap_.end() && !it->second.freed && p.offset >= 0 &&
               p.offset < int64_t(it->second.cells.size());
      }
      case Ptr::Seg::Stack: {
        auto it = stackSlots_.find(p.block);
        return it != stackSlots_.end() && p.offset >= 0 &&
               p.offset < int64_t(it->second.size());
      }
    }
    return false;
}

RtValue *
Interp::cellAt(Ptr p, const char *what)
{
    switch (p.seg) {
      case Ptr::Seg::Null:
        fail(Outcome::Segfault,
             strfmt("%s through null pointer", what), nullptr);
        return nullptr;
      case Ptr::Seg::Global: {
        if (p.block >= globals_.size() || p.offset < 0 ||
            p.offset >= int64_t(globals_[p.block].size())) {
            fail(Outcome::Segfault,
                 strfmt("%s out of global bounds", what), nullptr);
            return nullptr;
        }
        return &globals_[p.block][p.offset];
      }
      case Ptr::Seg::Heap: {
        auto it = heap_.find(p.block);
        if (it == heap_.end()) {
            fail(Outcome::Segfault, strfmt("%s of unknown heap block",
                                           what),
                 nullptr);
            return nullptr;
        }
        if (it->second.freed) {
            fail(Outcome::Segfault, strfmt("%s after free", what),
                 nullptr);
            return nullptr;
        }
        if (p.offset < 0 || p.offset >= int64_t(it->second.cells.size())) {
            fail(Outcome::Segfault,
                 strfmt("%s out of heap block bounds", what), nullptr);
            return nullptr;
        }
        return &it->second.cells[p.offset];
      }
      case Ptr::Seg::Stack: {
        auto it = stackSlots_.find(p.block);
        if (it == stackSlots_.end()) {
            fail(Outcome::Segfault,
                 strfmt("%s through dangling stack pointer", what),
                 nullptr);
            return nullptr;
        }
        if (p.offset < 0 || p.offset >= int64_t(it->second.size())) {
            fail(Outcome::Segfault,
                 strfmt("%s out of stack slot bounds", what), nullptr);
            return nullptr;
        }
        return &it->second[p.offset];
      }
    }
    return nullptr;
}

void
Interp::doLoad(Thread &t, const Instruction &inst)
{
    Frame &f = t.frames.back();
    RtValue addr = getValue(f, inst.operand(0));
    RtValue *cell = cellAt(addr.p, "load");
    if (!cell) {
        result_.failureTag = inst.tag();
        return;
    }
    if (cell->isUninit()) {
        // Reading a never-written cell yields the zero of the load type.
        switch (inst.type()) {
          case ir::Type::F64:
            setReg(f, &inst, RtValue::ofFloat(0.0));
            break;
          case ir::Type::Ptr:
            setReg(f, &inst, RtValue::ofPtr(Ptr{}));
            break;
          default:
            setReg(f, &inst, RtValue::ofInt(0, inst.type()));
            break;
        }
        return;
    }
    bool int_kinds = (cell->kind == ir::Type::I64 ||
                      cell->kind == ir::Type::I1) &&
                     (inst.type() == ir::Type::I64 ||
                      inst.type() == ir::Type::I1);
    if (cell->kind != inst.type() && !int_kinds) {
        fail(Outcome::Trap,
             strfmt("type-confused load: cell holds %s, load wants %s",
                    ir::typeName(cell->kind), ir::typeName(inst.type())),
             &inst);
        return;
    }
    RtValue v = *cell;
    v.kind = inst.type();
    setReg(f, &inst, v);
}

void
Interp::doStore(Thread &t, const Instruction &inst)
{
    Frame &f = t.frames.back();
    RtValue v = getValue(f, inst.operand(0));
    RtValue addr = getValue(f, inst.operand(1));
    RtValue *cell = cellAt(addr.p, "store");
    if (!cell) {
        result_.failureTag = inst.tag();
        return;
    }
    *cell = v;
}

//
// Synchronisation.
//

Interp::MutexState &
Interp::mutexAt(CellKey key)
{
    return mutexes_[key];
}

void
Interp::lockMutex(Thread &t, Ptr p, bool timed, uint64_t timeout,
                  const Instruction *inst)
{
    if (p.isNull()) {
        fail(Outcome::Segfault, "lock of null mutex", inst);
        return;
    }
    CellKey key{p.seg, p.block, p.offset};
    MutexState &m = mutexAt(key);
    if (m.owner == -1) {
        m.owner = int32_t(t.id);
        t.pendingNote = true;
        if (timed) {
            Frame &f = t.frames.back();
            setReg(f, inst, RtValue::ofInt(0));
        }
        return;
    }
    // Contended (or recursive, which deadlocks like a default pthread
    // mutex): block the thread.
    m.waiters.push_back(t.id);
    t.state = ThreadState::BlockedLock;
    t.lockKey = key;
    t.blockedAt = inst;
    t.blockStart = clock_;
    t.lockHasDeadline = timed;
    t.wakeAt = timed ? clock_ + timeout : 0;
    if (timed) {
        Frame &f = t.frames.back();
        t.lockResultReg = f.map->indexOf(inst);
        t.lockWantsResult = true;
    } else {
        t.lockWantsResult = false;
    }
    forceSwitch_ = true;
}

void
Interp::grantLock(MutexState &m)
{
    while (m.owner == -1 && !m.waiters.empty()) {
        uint32_t wid = m.waiters.front();
        m.waiters.pop_front();
        Thread &w = *threads_[wid];
        if (w.state != ThreadState::BlockedLock)
            continue; // stale entry (timed out earlier)
        m.owner = int32_t(wid);
        w.state = ThreadState::Runnable;
        w.pendingNote = true;
        if (w.lockWantsResult) {
            w.frames.back().regs[w.lockResultReg] = RtValue::ofInt(0);
            w.lockWantsResult = false;
        }
    }
}

void
Interp::unlockMutex(Thread &t, Ptr p, bool compensation)
{
    if (p.isNull()) {
        fail(Outcome::Segfault, "unlock of null mutex", nullptr);
        return;
    }
    CellKey key{p.seg, p.block, p.offset};
    MutexState &m = mutexAt(key);
    if (m.owner != int32_t(t.id)) {
        if (compensation)
            return; // tolerated: the lock may have timed out meanwhile
        fail(Outcome::Trap, "unlock of mutex not held by this thread",
             nullptr);
        return;
    }
    m.owner = -1;
    grantLock(m);
}

//
// Instruction dispatch.
//

void
Interp::execInst(Thread &t, const Instruction &inst)
{
    Frame &f = t.frames.back();
    auto val = [&](unsigned i) { return getValue(f, inst.operand(i)); };

    switch (inst.opcode()) {
      case Opcode::Alloca: {
        uint32_t id = nextSlotId_++;
        stackSlots_[id] = std::vector<RtValue>(inst.allocaSize());
        f.allocaSlots.push_back(id);
        setReg(f, &inst, RtValue::ofPtr(Ptr{Ptr::Seg::Stack, id, 0}));
        break;
      }
      case Opcode::Load:
        doLoad(t, inst);
        break;
      case Opcode::Store:
        doStore(t, inst);
        break;
      case Opcode::PtrAdd: {
        RtValue p = val(0);
        RtValue off = val(1);
        p.p.offset += off.i;
        setReg(f, &inst, p);
        break;
      }
      // Integer arithmetic wraps (two's complement), like hardware.
      case Opcode::Add:
        setReg(f, &inst,
               RtValue::ofInt(int64_t(uint64_t(val(0).i) +
                                      uint64_t(val(1).i))));
        break;
      case Opcode::Sub:
        setReg(f, &inst,
               RtValue::ofInt(int64_t(uint64_t(val(0).i) -
                                      uint64_t(val(1).i))));
        break;
      case Opcode::Mul:
        setReg(f, &inst,
               RtValue::ofInt(int64_t(uint64_t(val(0).i) *
                                      uint64_t(val(1).i))));
        break;
      case Opcode::SDiv: {
        int64_t d = val(1).i;
        if (d == 0) {
            fail(Outcome::Trap, "division by zero", &inst);
            break;
        }
        if (d == -1 && val(0).i == INT64_MIN) {
            setReg(f, &inst, RtValue::ofInt(INT64_MIN)); // wraps
            break;
        }
        setReg(f, &inst, RtValue::ofInt(val(0).i / d));
        break;
      }
      case Opcode::SRem: {
        int64_t d = val(1).i;
        if (d == 0) {
            fail(Outcome::Trap, "remainder by zero", &inst);
            break;
        }
        if (d == -1) {
            setReg(f, &inst, RtValue::ofInt(0));
            break;
        }
        setReg(f, &inst, RtValue::ofInt(val(0).i % d));
        break;
      }
      case Opcode::And:
        setReg(f, &inst, RtValue::ofInt(val(0).i & val(1).i));
        break;
      case Opcode::Or:
        setReg(f, &inst, RtValue::ofInt(val(0).i | val(1).i));
        break;
      case Opcode::Xor:
        setReg(f, &inst, RtValue::ofInt(val(0).i ^ val(1).i));
        break;
      case Opcode::Shl:
        setReg(f, &inst,
               RtValue::ofInt(int64_t(uint64_t(val(0).i)
                                      << (uint64_t(val(1).i) & 63))));
        break;
      case Opcode::Shr:
        setReg(f, &inst,
               RtValue::ofInt(val(0).i >> (uint64_t(val(1).i) & 63)));
        break;
      case Opcode::FAdd:
        setReg(f, &inst, RtValue::ofFloat(val(0).f + val(1).f));
        break;
      case Opcode::FSub:
        setReg(f, &inst, RtValue::ofFloat(val(0).f - val(1).f));
        break;
      case Opcode::FMul:
        setReg(f, &inst, RtValue::ofFloat(val(0).f * val(1).f));
        break;
      case Opcode::FDiv:
        setReg(f, &inst, RtValue::ofFloat(val(0).f / val(1).f));
        break;
      case Opcode::ICmpEq:
      case Opcode::ICmpNe: {
        RtValue a = val(0), b = val(1);
        bool eq;
        if (a.kind == ir::Type::Ptr || b.kind == ir::Type::Ptr)
            eq = a.p == b.p;
        else
            eq = a.i == b.i;
        bool r = inst.opcode() == Opcode::ICmpEq ? eq : !eq;
        setReg(f, &inst, RtValue::ofBool(r));
        break;
      }
      case Opcode::ICmpSlt:
        setReg(f, &inst, RtValue::ofBool(val(0).i < val(1).i));
        break;
      case Opcode::ICmpSle:
        setReg(f, &inst, RtValue::ofBool(val(0).i <= val(1).i));
        break;
      case Opcode::ICmpSgt:
        setReg(f, &inst, RtValue::ofBool(val(0).i > val(1).i));
        break;
      case Opcode::ICmpSge:
        setReg(f, &inst, RtValue::ofBool(val(0).i >= val(1).i));
        break;
      case Opcode::FCmpEq:
        setReg(f, &inst, RtValue::ofBool(val(0).f == val(1).f));
        break;
      case Opcode::FCmpNe:
        setReg(f, &inst, RtValue::ofBool(val(0).f != val(1).f));
        break;
      case Opcode::FCmpLt:
        setReg(f, &inst, RtValue::ofBool(val(0).f < val(1).f));
        break;
      case Opcode::FCmpLe:
        setReg(f, &inst, RtValue::ofBool(val(0).f <= val(1).f));
        break;
      case Opcode::FCmpGt:
        setReg(f, &inst, RtValue::ofBool(val(0).f > val(1).f));
        break;
      case Opcode::FCmpGe:
        setReg(f, &inst, RtValue::ofBool(val(0).f >= val(1).f));
        break;
      case Opcode::SiToFp:
        setReg(f, &inst, RtValue::ofFloat(double(val(0).i)));
        break;
      case Opcode::FpToSi:
        setReg(f, &inst, RtValue::ofInt(int64_t(val(0).f)));
        break;
      case Opcode::Zext:
        setReg(f, &inst, RtValue::ofInt(val(0).i != 0 ? 1 : 0));
        break;
      case Opcode::Phi:
        // Phis are consumed by jumpTo(); reaching one here means entry
        // into a block without a jump.
        fail(Outcome::Trap, "phi executed outside a block transfer",
             &inst);
        break;
      case Opcode::Br:
        jumpTo(t, inst.blockOp(0));
        break;
      case Opcode::CondBr: {
        bool c = val(0).i != 0;
        jumpTo(t, inst.blockOp(c ? 0 : 1));
        break;
      }
      case Opcode::Ret: {
        RtValue ret;
        if (inst.numOperands())
            ret = val(0);
        popFrame(t, ret);
        break;
      }
      case Opcode::Unreachable:
        fail(Outcome::Trap, "unreachable executed", &inst);
        break;
      case Opcode::SchedHint: {
        auto it = delayByHint_.find(inst.hintId());
        if (it != delayByHint_.end() && it->second.delayTicks > 0) {
            uint64_t &fired = hintFires_[inst.hintId()];
            if (it->second.maxFires == 0 ||
                fired < it->second.maxFires) {
                ++fired;
                t.state = ThreadState::Sleeping;
                t.wakeAt = clock_ + it->second.delayTicks;
                forceSwitch_ = true;
            }
        }
        break;
      }
      case Opcode::Call:
        execCall(t, inst);
        break;
      default:
        fail(Outcome::Trap, "unimplemented opcode", &inst);
        break;
    }
}

void
Interp::execCall(Thread &t, const Instruction &inst)
{
    if (inst.callee()) {
        Frame &f = t.frames.back();
        std::vector<RtValue> args;
        for (unsigned i = 0; i < inst.numOperands(); ++i)
            args.push_back(getValue(f, inst.operand(i)));
        bool wants = inst.producesValue();
        uint32_t ret_reg = wants ? f.map->indexOf(&inst) : 0;
        pushFrame(t, inst.callee(), args, wants, ret_reg);
        return;
    }
    if (ir::builtinIsConAir(inst.builtin())) {
        execConAir(t, inst);
        return;
    }
    execBuiltin(t, inst);
}

void
Interp::execBuiltin(Thread &t, const Instruction &inst)
{
    Frame &f = t.frames.back();
    auto val = [&](unsigned i) { return getValue(f, inst.operand(i)); };
    auto str_arg = [&](unsigned i) -> const std::string & {
        auto *s = static_cast<const ir::ConstStr *>(inst.operand(i));
        return module_.strAt(s->id());
    };

    switch (inst.builtin()) {
      case Builtin::ThreadCreate: {
        auto *fa = static_cast<const ir::FuncAddr *>(inst.operand(0));
        RtValue arg = val(1);
        auto nt = std::make_unique<Thread>();
        nt->id = threads_.size();
        uint32_t tid = nt->id;
        threads_.push_back(std::move(nt));
        pushFrame(*threads_[tid], fa->function(), {arg}, false, 0);
        ++result_.stats.threadsSpawned;
        setReg(f, &inst, RtValue::ofInt(tid));
        break;
      }
      case Builtin::ThreadJoin: {
        int64_t tid = val(0).i;
        if (tid < 0 || tid >= int64_t(threads_.size())) {
            fail(Outcome::Trap, "join of unknown thread", &inst);
            break;
        }
        if (threads_[tid]->state != ThreadState::Done) {
            t.state = ThreadState::Joining;
            t.joinTarget = uint32_t(tid);
            t.blockStart = clock_;
            forceSwitch_ = true;
        }
        break;
      }
      case Builtin::MutexLock:
        lockMutex(t, val(0).p, false, 0, &inst);
        break;
      case Builtin::MutexTimedLock:
        lockMutex(t, val(0).p, true, uint64_t(val(1).i), &inst);
        break;
      case Builtin::MutexUnlock:
        unlockMutex(t, val(0).p, false);
        break;
      case Builtin::Malloc: {
        int64_t n = std::max<int64_t>(val(0).i, 0);
        uint32_t id = nextHeapId_++;
        heap_[id] = HeapBlock{std::vector<RtValue>(n), false};
        t.pendingNote = true;
        setReg(f, &inst, RtValue::ofPtr(Ptr{Ptr::Seg::Heap, id, 0}));
        break;
      }
      case Builtin::Free: {
        Ptr p = val(0).p;
        if (p.isNull())
            break; // free(NULL) is a no-op
        if (p.seg != Ptr::Seg::Heap || p.offset != 0) {
            fail(Outcome::Trap, "free of non-heap or interior pointer",
                 &inst);
            break;
        }
        auto it = heap_.find(p.block);
        if (it == heap_.end() || it->second.freed) {
            fail(Outcome::Trap, "double or invalid free", &inst);
            break;
        }
        it->second.freed = true;
        break;
      }
      case Builtin::PrintI64:
        result_.output += strfmt("%lld", (long long)val(0).i);
        break;
      case Builtin::PrintF64:
        result_.output += strfmt("%g", val(0).f);
        break;
      case Builtin::PrintStr:
        result_.output += str_arg(0);
        break;
      case Builtin::AssertFail:
        fail(Outcome::AssertFail, str_arg(0), &inst);
        break;
      case Builtin::OracleFail:
        fail(Outcome::OracleFail, str_arg(0), &inst);
        break;
      case Builtin::Time:
        setReg(f, &inst, RtValue::ofInt(int64_t(clock_) + 1));
        break;
      case Builtin::Yield:
        forceSwitch_ = true;
        break;
      case Builtin::Sleep: {
        int64_t n = val(0).i;
        if (n > 0) {
            t.state = ThreadState::Sleeping;
            t.wakeAt = clock_ + uint64_t(n);
            forceSwitch_ = true;
        }
        break;
      }
      case Builtin::RandInt: {
        int64_t bound = val(0).i;
        setReg(f, &inst,
               RtValue::ofInt(bound > 0
                                  ? int64_t(appRng_.range(bound))
                                  : 0));
        break;
      }
      default:
        fail(Outcome::Trap, "unknown builtin", &inst);
        break;
    }
}

//
// ConAir runtime intrinsics.
//

void
Interp::doCheckpoint(Thread &t, const Instruction &inst)
{
    Frame &f = t.frames.back();
    t.ckpt.valid = true;
    t.ckpt.frameIndex = t.frames.size() - 1;
    t.ckpt.regs = f.regs;
    t.ckpt.block = f.block;
    t.ckpt.pc = f.pc; // already advanced: resumes right after setjmp
    t.ckpt.prevBlock = f.prevBlock;
    t.ckpt.locals.clear();
    if (inst.builtin() == Builtin::CaCheckpointLocals) {
        // The Fig 4 "regions with local-variable writes" point: the
        // frame's stack slots are part of the image, and copying them
        // costs time proportional to their size (unlike the plain
        // register-image setjmp).
        uint64_t cells = 0;
        for (uint32_t id : f.allocaSlots) {
            auto it = stackSlots_.find(id);
            if (it == stackSlots_.end())
                continue;
            t.ckpt.locals.push_back({id, it->second});
            cells += it->second.size();
        }
        uint64_t cost = cells / 4;
        clock_ += cost;
        result_.stats.steps += cost;
    }
    t.cleanSinceCkpt = true;
    ++t.epoch;
    ++result_.stats.checkpointsExecuted;
}

namespace {

/** Would executing @p inst end the current idempotent window?  The
 *  mirror of ca::destroysIdempotency, used by chaos injection. */
bool
dirtiesWindow(const Instruction &inst)
{
    switch (inst.opcode()) {
      case Opcode::Store:
        return true;
      case Opcode::Call: {
        if (inst.callee())
            return true;
        Builtin b = inst.builtin();
        if (ir::builtinIsConAir(b))
            return false;
        // The §4.1 allowlist: compensation makes these re-executable.
        return b != Builtin::Malloc && b != Builtin::MutexLock &&
               b != Builtin::MutexTimedLock;
      }
      default:
        return false;
    }
}

} // namespace

void
Interp::runCompensation(Thread &t)
{
    for (const CompensationEntry &e : t.allocLog) {
        if (e.epoch != t.epoch)
            continue;
        auto it = heap_.find(e.key.block);
        if (it != heap_.end() && !it->second.freed) {
            it->second.freed = true;
            ++result_.stats.compensationFrees;
        }
    }
    t.allocLog.clear();
    for (const CompensationEntry &e : t.lockLog) {
        if (e.epoch != t.epoch)
            continue;
        unlockMutex(t, Ptr{e.key.seg, e.key.block, e.key.offset}, true);
        ++result_.stats.compensationUnlocks;
    }
    t.lockLog.clear();
}

void
Interp::restoreCheckpoint(Thread &t)
{
    // longjmp: unwind to the checkpoint's frame and restore registers.
    while (t.frames.size() > t.ckpt.frameIndex + 1) {
        releaseFrameSlots(t.frames.back());
        t.frames.pop_back();
    }
    Frame &target = t.frames.back();
    target.regs = t.ckpt.regs;
    target.block = t.ckpt.block;
    target.pc = t.ckpt.pc;
    target.prevBlock = t.ckpt.prevBlock;
    for (const auto &[id, cells] : t.ckpt.locals) {
        auto it = stackSlots_.find(id);
        if (it != stackSlots_.end())
            it->second = cells;
    }
    t.cleanSinceCkpt = true; // back at the region start
    t.pendingNote = false;
}

void
Interp::doTryRollback(Thread &t, const Instruction &inst)
{
    Frame &f = t.frames.back();
    int64_t site_id = getValue(f, inst.operand(0)).i;
    if (!t.ckpt.valid || t.retryCount >= cfg_.maxRetries)
        return; // give up: fall through to the original failure

    ++t.retryCount;
    ++result_.stats.rollbacks;

    if (!t.episode.active || t.episode.siteId != site_id) {
        t.episode.active = true;
        t.episode.siteId = site_id;
        t.episode.siteTag = inst.tag();
        t.episode.startClock = clock_;
        t.episode.retries = 0;
    }
    ++t.episode.retries;

    runCompensation(t);
    restoreCheckpoint(t);
}

void
Interp::maybeChaosRollback(Thread &t, const Instruction &inst)
{
    (void)inst;
    if (t.state != ThreadState::Runnable)
        return; // never yank a thread parked in a waiter queue
    if (!t.ckpt.valid || !t.cleanSinceCkpt || t.pendingNote)
        return;
    if (t.frames.size() != t.ckpt.frameIndex + 1)
        return; // inside a callee frame: not this checkpoint's window
    if (result_.stats.chaosRollbacks >= cfg_.chaosMaxRollbacks)
        return;
    if (chaosRng_.range(cfg_.chaosRollbackEveryN) != 0)
        return;
    ++result_.stats.chaosRollbacks;
    runCompensation(t);
    restoreCheckpoint(t);
}

void
Interp::execConAir(Thread &t, const Instruction &inst)
{
    Frame &f = t.frames.back();
    auto val = [&](unsigned i) { return getValue(f, inst.operand(i)); };

    switch (inst.builtin()) {
      case Builtin::CaCheckpoint:
      case Builtin::CaCheckpointLocals:
        doCheckpoint(t, inst);
        break;
      case Builtin::CaTryRollback:
        doTryRollback(t, inst);
        break;
      case Builtin::CaBackoff: {
        uint64_t ticks = 1 + schedRng_.range(cfg_.backoffMax);
        t.state = ThreadState::Sleeping;
        t.wakeAt = clock_ + ticks;
        forceSwitch_ = true;
        ++result_.stats.backoffs;
        break;
      }
      case Builtin::CaNoteAlloc: {
        t.pendingNote = false;
        Ptr p = val(0).p;
        if (p.seg != Ptr::Seg::Heap)
            break;
        // Lazy clean (paper §4.1): entries from older epochs are stale.
        std::erase_if(t.allocLog, [&](const CompensationEntry &e) {
            return e.epoch != t.epoch;
        });
        t.allocLog.push_back({CellKey{p.seg, p.block, 0}, t.epoch});
        break;
      }
      case Builtin::CaNoteLock: {
        t.pendingNote = false;
        Ptr p = val(0).p;
        std::erase_if(t.lockLog, [&](const CompensationEntry &e) {
            return e.epoch != t.epoch;
        });
        t.lockLog.push_back(
            {CellKey{p.seg, p.block, p.offset}, t.epoch});
        break;
      }
      case Builtin::CaPtrCheck:
        setReg(f, &inst, RtValue::ofBool(pointerValid(val(0).p)));
        break;
      case Builtin::CaRecovered: {
        // Zero-cost measurement hook: refund the step accounting.
        --clock_;
        --result_.stats.steps;
        int64_t site_id = val(0).i;
        if (t.episode.active && t.episode.siteId == site_id) {
            RecoveryEvent ev;
            ev.siteTag = t.episode.siteTag;
            ev.retries = t.episode.retries;
            ev.startClock = t.episode.startClock;
            ev.endClock = clock_;
            result_.stats.recoveries.push_back(std::move(ev));
            t.episode.active = false;
        }
        break;
      }
      default:
        fail(Outcome::Trap, "unknown conair intrinsic", &inst);
        break;
    }
}

//
// Scheduling.
//

uint64_t
Interp::newQuantum()
{
    if (cfg_.policy == SchedPolicy::RoundRobin)
        return std::max<uint64_t>(cfg_.quantum, 1);
    return 1 + schedRng_.range(std::max<uint64_t>(2 * cfg_.quantum, 1));
}

Interp::Thread *
Interp::pickThread()
{
    std::vector<uint32_t> runnable;
    for (const auto &t : threads_)
        if (t->state == ThreadState::Runnable)
            runnable.push_back(t->id);
    if (runnable.empty())
        return nullptr;

    Thread *cur = currentTid_ < threads_.size()
                      ? threads_[currentTid_].get()
                      : nullptr;
    if (cur && cur->state == ThreadState::Runnable && quantumLeft_ > 0 &&
        !forceSwitch_) {
        --quantumLeft_;
        return cur;
    }
    forceSwitch_ = false;

    uint32_t chosen;
    if (cfg_.policy == SchedPolicy::RoundRobin) {
        chosen = runnable[0];
        for (uint32_t tid : runnable) {
            if (tid > currentTid_) {
                chosen = tid;
                break;
            }
        }
    } else {
        chosen = runnable[schedRng_.range(runnable.size())];
    }
    currentTid_ = chosen;
    quantumLeft_ = newQuantum() - 1;
    return threads_[chosen].get();
}

void
Interp::wakeDue()
{
    for (auto &t : threads_) {
        if (t->state == ThreadState::Sleeping && t->wakeAt <= clock_) {
            t->state = ThreadState::Runnable;
        } else if (t->state == ThreadState::BlockedLock &&
                   t->lockHasDeadline && t->wakeAt <= clock_) {
            // Timed lock expired: remove from the waiter queue and
            // deliver the timeout result.
            MutexState &m = mutexAt(t->lockKey);
            std::erase(m.waiters, t->id);
            t->state = ThreadState::Runnable;
            if (t->lockWantsResult) {
                t->frames.back().regs[t->lockResultReg] =
                    RtValue::ofInt(1);
                t->lockWantsResult = false;
            }
        }
    }
}

bool
Interp::advanceSleepers()
{
    uint64_t min_wake = UINT64_MAX;
    for (const auto &t : threads_) {
        if (t->state == ThreadState::Sleeping)
            min_wake = std::min(min_wake, t->wakeAt);
        else if (t->state == ThreadState::BlockedLock &&
                 t->lockHasDeadline)
            min_wake = std::min(min_wake, t->wakeAt);
    }
    if (min_wake == UINT64_MAX)
        return false;
    clock_ = std::max(clock_, min_wake);
    wakeDue();
    return true;
}

//
// Termination.
//

//
// Whole-program checkpoint baseline.
//

size_t
Interp::wpStateCells() const
{
    size_t cells = 0;
    for (const auto &g : globals_)
        cells += g.size();
    for (const auto &[id, block] : heap_)
        cells += block.cells.size();
    for (const auto &[id, slot] : stackSlots_)
        cells += slot.size();
    for (const auto &t : threads_)
        for (const Frame &f : t->frames)
            cells += f.regs.size();
    return cells;
}

void
Interp::wpTakeSnapshot()
{
    auto snap = std::make_unique<WpSnapshot>();
    snap->globals = globals_;
    snap->heap = heap_;
    snap->stackSlots = stackSlots_;
    snap->mutexes = mutexes_;
    for (const auto &t : threads_)
        snap->threads.push_back(*t);
    snap->nextHeapId = nextHeapId_;
    snap->nextSlotId = nextSlotId_;
    snap->currentTid = currentTid_;
    snap->quantumLeft = quantumLeft_;
    snap->outputLen = result_.output.size();
    wpSnapshots_.push_back(std::move(snap));
    if (wpSnapshots_.size() > 8)
        wpSnapshots_.erase(wpSnapshots_.begin() + 1); // keep the start

    // The cost traditional systems pay per checkpoint: proportional to
    // the memory state captured.
    uint64_t cost = uint64_t(double(wpStateCells()) *
                             cfg_.wpSnapshotCostPerCell) +
                    1;
    clock_ += cost;
    result_.stats.steps += cost;
    result_.stats.wpSnapshotCost += cost;
    ++result_.stats.wpSnapshots;
}

void
Interp::wpRestore()
{
    // Walk back one checkpoint per consecutive attempt: the newest may
    // capture a doomed state.  Always keep the program-start snapshot.
    if (wpSnapshots_.size() > 1)
        wpSnapshots_.pop_back();
    const WpSnapshot &snap = *wpSnapshots_.back();
    globals_ = snap.globals;
    heap_ = snap.heap;
    stackSlots_ = snap.stackSlots;
    mutexes_ = snap.mutexes;
    threads_.clear();
    for (const Thread &t : snap.threads)
        threads_.push_back(std::make_unique<Thread>(t));
    nextHeapId_ = snap.nextHeapId;
    nextSlotId_ = snap.nextSlotId;
    currentTid_ = snap.currentTid;
    quantumLeft_ = snap.quantumLeft;
    // Output produced after the snapshot is rolled back too (the
    // sandboxing traditional systems need OS support for).
    result_.output.resize(snap.outputLen);
    // Survive by nondeterminism: reexecute under a perturbed schedule.
    schedRng_.reseed(cfg_.seed + 7919 * (wpRecoveriesUsed_ + 1));
    ++wpRecoveriesUsed_;
    ++result_.stats.wpRecoveries;
    wpPendingRestore_ = false;
}

void
Interp::fail(Outcome o, const std::string &msg, const Instruction *site)
{
    if (!running_ || wpPendingRestore_)
        return;
    if (cfg_.wpCheckpointInterval > 0 && !wpSnapshots_.empty() &&
        wpRecoveriesUsed_ < cfg_.wpMaxRecoveries) {
        // Whole-program rollback instead of dying.  The restore is
        // deferred to the main loop: the failing instruction's frame
        // must not be touched while it is still on the C++ stack.
        wpPendingRestore_ = true;
        return;
    }
    running_ = false;
    result_.outcome = o;
    result_.failureMsg = msg;
    if (site)
        result_.failureTag = site->tag();
}

void
Interp::failHang(const std::string &msg)
{
    // Report the hang with the lock sites the blocked threads sit at:
    // the information a developer would feed fix mode (";"-separated).
    std::string tags;
    for (const auto &t : threads_) {
        if (t->state != ThreadState::BlockedLock || !t->blockedAt)
            continue;
        if (t->blockedAt->tag().empty())
            continue;
        if (!tags.empty())
            tags += ';';
        tags += t->blockedAt->tag();
    }
    fail(Outcome::Hang, msg, nullptr);
    if (!running_ && result_.outcome == Outcome::Hang)
        result_.failureTag = tags;
}

void
Interp::finish(int64_t exit_code)
{
    running_ = false;
    result_.outcome = Outcome::Success;
    result_.exitCode = exit_code;
}

RunResult
runProgram(const ir::Module &m, const VmConfig &cfg)
{
    Interp interp(m, cfg);
    return interp.run();
}

} // namespace conair::vm
