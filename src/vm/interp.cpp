#include "vm/interp.h"

#include <algorithm>
#include <cstring>
#include <ostream>

#include "obs/metrics.h"
#include "obs/profile/profile.h"
#include "obs/trace.h"
#include "support/str.h"

namespace conair::vm {

using ir::Builtin;
using ir::Instruction;
using ir::Opcode;

namespace {

bool dirtiesWindow(const Instruction &inst);

/** Resolves a pre-decoded operand reference: dense register slot or
 *  constant-pool entry (decode.h).  kRawRef operands have no runtime
 *  value; reaching one here is the same misuse the tree-walking
 *  getValue() diagnoses. */
inline const RtValue &
refVal(const std::vector<RtValue> &regs, const std::vector<RtValue> &consts,
       OpRef r)
{
    if (r < kConstRef)
        return regs[r];
    if (r == kRawRef)
        fatal("string/function constants are only valid as direct "
              "builtin operands");
    return consts[r & ~kConstRef];
}

} // namespace

const char *
schedPolicyName(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::RoundRobin: return "rr";
      case SchedPolicy::Random: return "random";
      case SchedPolicy::Pct: return "pct";
      case SchedPolicy::PreemptBound: return "pb";
    }
    return "?";
}

bool
schedPolicyFromName(const std::string &name, SchedPolicy &out)
{
    if (name == "rr")
        out = SchedPolicy::RoundRobin;
    else if (name == "random")
        out = SchedPolicy::Random;
    else if (name == "pct")
        out = SchedPolicy::Pct;
    else if (name == "pb")
        out = SchedPolicy::PreemptBound;
    else
        return false;
    return true;
}

const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Success: return "success";
      case Outcome::AssertFail: return "assert-fail";
      case Outcome::OracleFail: return "oracle-fail";
      case Outcome::Segfault: return "segfault";
      case Outcome::Hang: return "hang";
      case Outcome::Timeout: return "timeout";
      case Outcome::Trap: return "trap";
    }
    return "?";
}

std::ostream &
operator<<(std::ostream &os, Outcome o)
{
    return os << outcomeName(o);
}

Interp::Interp(const ir::Module &m, VmConfig cfg)
    : module_(m), cfg_(cfg), schedRng_(cfg.seed), appRng_(cfg.appSeed),
      chaosRng_(cfg.seed ^ 0x5bd1e995u),
      prioRng_(cfg.seed ^ 0xda942042e4dd58b5ull)
{
    engineDecoded_ = cfg_.engine != ExecEngine::Reference;
    engineFused_ = cfg_.engine == ExecEngine::Fused;
    rec_ = cfg_.recorder;
    met_ = cfg_.metrics;
    diag_ = rec_ != nullptr && cfg_.recordSharedAccesses;
    prof_ = cfg_.profiler;

    // Replay mode: the recorded switch list *is* the schedule, so the
    // exploration machinery stays dormant — no scheduling points are
    // sampled (nextSchedPointAt_ stays UINT64_MAX) and the cursor
    // starts at the first recorded switch.
    if (cfg_.replay) {
        if (!cfg_.replay->switches.empty())
            replayNextSwitchAt_ = cfg_.replay->switches[0].step;
    } else
    // Exploration policies: sample the priority-change / forced-
    // preemption points up front from a dedicated split stream, so the
    // schedule is a pure function of (seed, depth/bound, horizon).
    if (cfg_.policy == SchedPolicy::Pct ||
        cfg_.policy == SchedPolicy::PreemptBound) {
        if (!cfg_.schedPoints.empty()) {
            // Explicit override (coverage-guided exploration): the
            // caller pins the points; priorities and decision streams
            // still come from the seed, so (seed, points) is a full
            // schedule identity.
            schedPoints_ = cfg_.schedPoints;
        } else {
            Rng pointRng(cfg_.seed ^ 0x8f14f4e7c3a2c9b1ull);
            uint64_t n = cfg_.policy == SchedPolicy::Pct
                             ? (cfg_.pctDepth > 0 ? cfg_.pctDepth - 1 : 0)
                             : cfg_.preemptBound;
            uint64_t horizon = std::max<uint64_t>(cfg_.pctHorizon, 1);
            for (uint64_t i = 0; i < n; ++i)
                schedPoints_.push_back(1 + pointRng.range(horizon));
        }
        std::sort(schedPoints_.begin(), schedPoints_.end());
        if (!schedPoints_.empty())
            nextSchedPointAt_ = schedPoints_[0];
    }

    // Densify the delay rules: the hot path indexes delayRules_ /
    // hintFires_ by rule slot, never by hashing the hint id.  A later
    // rule for the same hint overrides an earlier one (matching the
    // map-overwrite semantics this replaces).
    for (const DelayRule &r : cfg_.delays) {
        auto it = delayIndexByHint_.find(r.hintId);
        if (it != delayIndexByHint_.end()) {
            delayRules_[it->second] = r;
        } else {
            delayIndexByHint_[r.hintId] = uint32_t(delayRules_.size());
            delayRules_.push_back(r);
        }
    }
    hintFires_.assign(delayRules_.size(), 0);

    // Materialise globals.
    for (const auto &g : m.globals()) {
        std::vector<RtValue> cells(g->size());
        if (g->elemType() == ir::Type::Ptr) {
            // Pointer globals start as null (MiniC offers no non-zero
            // pointer initialisers).
            for (auto &cell : cells)
                cell = RtValue::ofPtr(Ptr{});
        } else if (g->elemType() == ir::Type::F64) {
            for (size_t i = 0; i < g->initFp().size() &&
                               i < cells.size(); ++i)
                cells[i] = RtValue::ofFloat(g->initFp()[i]);
            for (size_t i = g->initFp().size(); i < cells.size(); ++i)
                cells[i] = RtValue::ofFloat(0.0);
        } else {
            for (size_t i = 0; i < g->initInt().size() &&
                               i < cells.size(); ++i)
                cells[i] = RtValue::ofInt(g->initInt()[i]);
            for (size_t i = g->initInt().size(); i < cells.size(); ++i)
                cells[i] = RtValue::ofInt(0);
        }
        globals_.push_back(std::move(cells));
    }

    // delayRules_ must be complete before decoding: SchedHint records
    // bake pointers into it.
    if (engineDecoded_) {
        decoded_ = std::make_unique<DecodedModule>(m, regMaps_, delayRules_,
                                                   delayIndexByHint_);
        if (engineFused_)
            decoded_->fuseAll();
    }
}

Interp::~Interp() = default;

//
// Public entry.
//

RunResult
Interp::run()
{
    result_.stats.decodedInsts = decoded_ ? decoded_->totalInsts() : 0;
    result_.stats.fusedInsts =
        engineFused_ && decoded_ ? decoded_->totalFusedInsts() : 0;
    result_.stats.hintRulesTracked = hintFires_.size();

    const ir::Function *main_fn = module_.findFunction("main");
    if (!main_fn) {
        fail(Outcome::Trap, "no main() function", nullptr);
        return result_;
    }
    Thread *t0 = newThread();
    pushFrame(*t0, main_fn, nullptr, 0, false, 0);
    quantumLeft_ = newQuantum();

    if (cfg_.wpCheckpointInterval > 0) {
        wpTakeSnapshot(); // initial checkpoint at program start
        wpNextSnapshotAt_ = cfg_.wpCheckpointInterval;
    }

    const bool canBurst =
        cfg_.schedFastPath && cfg_.chaosRollbackEveryN == 0;
    while (running_) {
        if (wpPendingRestore_) {
            wpRestore();
            continue;
        }
        if (cfg_.wpCheckpointInterval > 0 &&
            result_.stats.steps >= wpNextSnapshotAt_) {
            wpTakeSnapshot();
            wpNextSnapshotAt_ =
                result_.stats.steps + cfg_.wpCheckpointInterval;
        }
        wakeDue();
        Thread *t = pickThread();
        if (!t) {
            if (!advanceSleepers()) {
                failHang(
                    "all threads blocked (deadlock or lost wake-up)");
                if (wpPendingRestore_)
                    continue; // whole-program rollback instead
                break;
            }
            continue;
        }
        stepThread(*t);

        if (result_.stats.steps >= cfg_.maxSteps && running_) {
            // The budget is final: no whole-program rollback can help.
            running_ = false;
            result_.outcome = Outcome::Timeout;
            result_.failureMsg = "instruction budget exhausted";
            break;
        }
        if (--hangCheckCountdown_ == 0) {
            hangCheckCountdown_ = 1024;
            for (const auto &th : threads_) {
                if (th->state == ThreadState::BlockedLock &&
                    !th->lockHasDeadline &&
                    clock_ - th->blockStart > cfg_.hangTimeout) {
                    failHang("thread blocked on a lock past the hang "
                             "timeout");
                    break; // inner loop; restore handled at loop top
                }
            }
        }
        if (canBurst && running_ && !wpPendingRestore_ && !forceSwitch_ &&
            !schedEvent_ && quantumLeft_ > 0 &&
            t->state == ThreadState::Runnable &&
            result_.stats.schedTicks < nextSchedPointAt_ &&
            result_.stats.steps < replayNextSwitchAt_) {
            if (engineFused_)
                runBurstFused(*t);
            else
                runBurst(*t);
            if (result_.stats.steps >= cfg_.maxSteps && running_) {
                running_ = false;
                result_.outcome = Outcome::Timeout;
                result_.failureMsg = "instruction budget exhausted";
                break;
            }
        }
        // Exploration policies: fire the priority-change / forced-
        // preemption point the tick count just crossed.  The burst
        // loop never runs past one, so @p t executed the crossing
        // shared store / sync op and is the thread the point
        // deprioritizes — right at the edge of a racy window.
        if (result_.stats.schedTicks >= nextSchedPointAt_ && running_)
            applySchedPoint(*t);
    }
    result_.clock = clock_;
    result_.memDigest = computeMemDigest();
    return result_;
}

//
// Execution core.
//

void
Interp::profStep(const Thread &t, Opcode op, Builtin builtin)
{
    // CaRecovered is the zero-cost measurement hook: execConAir
    // refunds its clock tick and step, so it must not be attributed.
    if (op == Opcode::Call && builtin == Builtin::CaRecovered)
        return;
    obs::prof::Phase p = obs::prof::classifyPhase(op, builtin);
    // Inside an open recovery episode, ordinary work is re-execution
    // toward the resume point; the recovery machinery's own steps
    // (rollback, back-off, checkpoint) keep their class.
    if (t.episode.active &&
        (p == obs::prof::Phase::Dispatch ||
         p == obs::prof::Phase::Memory || p == obs::prof::Phase::Sync))
        p = obs::prof::Phase::Reexec;
    prof_->onStep(t.id, p);
}

void
Interp::profFusedSegment(const Thread &t, uint64_t steps,
                         uint64_t memSteps)
{
    using obs::prof::Phase;
    // Within one deferred segment the episode flag is constant: only
    // Solo-delegated instructions can open or close an episode, and
    // those settle the segment first.
    if (t.episode.active) {
        prof_->onSteps(t.id, Phase::Reexec, steps);
        return;
    }
    if (memSteps)
        prof_->onSteps(t.id, Phase::Memory, memSteps);
    if (steps > memSteps)
        prof_->onSteps(t.id, Phase::Dispatch, steps - memSteps);
}

void
Interp::stepThread(Thread &t)
{
    Frame &f = t.frames.back();
    ++clock_;
    ++result_.stats.steps;
    if (f.dfn) {
        const DecodedInst &di = f.dfn->insts[f.dPc];
        ++f.dPc; // terminators re-aim it; calls rely on it pointing past
        if (prof_)
            profStep(t, di.op, di.builtin);
        execDecoded(t, di);
        if (cfg_.chaosRollbackEveryN > 0 && running_) {
            if (di.dirties)
                t.cleanSinceCkpt = false;
            maybeChaosRollback(t);
        }
    } else {
        const Instruction &inst = **f.pc;
        ++f.pc;
        if (prof_)
            profStep(t, inst.opcode(), inst.builtin());
        execInst(t, inst);
        if (cfg_.chaosRollbackEveryN > 0 && running_) {
            if (dirtiesWindow(inst))
                t.cleanSinceCkpt = false;
            maybeChaosRollback(t);
        }
    }
}

void
Interp::runBurst(Thread &t)
{
    // While the current thread keeps its claim on the CPU, the
    // scheduler's per-step work is all provably no-op:
    //  - pickThread would take the early-continue (runnable, quantum
    //    left, no forced switch) and consume no RNG;
    //  - wakeDue is a no-op while clock_ < the earliest wake deadline,
    //    and nothing the bursting thread does can create an *earlier*
    //    deadline without also setting forceSwitch_ (sleep, back-off,
    //    timed block all park the thread itself);
    //  - snapshots, the step budget, and the hang-scan cadence are
    //    step-counted and bounded below.
    // So a burst retires instructions back-to-back with identical
    // clock ticks, step counts, and RNG draws as stepwise scheduling.
    const uint64_t next_wake = nextWakeDeadline();
    const bool wp = cfg_.wpCheckpointInterval > 0;
    while (quantumLeft_ > 0 && running_ && !forceSwitch_ &&
           !schedEvent_ && !wpPendingRestore_ &&
           t.state == ThreadState::Runnable && clock_ < next_wake &&
           result_.stats.steps < cfg_.maxSteps &&
           result_.stats.schedTicks < nextSchedPointAt_ &&
           result_.stats.steps < replayNextSwitchAt_ &&
           (!wp || result_.stats.steps < wpNextSnapshotAt_) &&
           hangCheckCountdown_ > 1) {
        --quantumLeft_;
        --hangCheckCountdown_;
        ++result_.stats.fastPathSteps;
        stepThread(t);
    }
}

//
// The fused engine's burst (see fuse.h and docs/VM_ENGINE.md).
//

namespace {

/** refVal without the kRawRef diagnostic: fusion only emits records
 *  whose operands are registers or pool constants. */
inline const RtValue &
fusedRef(const RtValue *regs, const RtValue *consts, OpRef r)
{
    return r < kConstRef ? regs[r] : consts[r & ~kConstRef];
}

/** The trap-free integer ALU kernel: replicates execDecoded's
 *  arithmetic bit for bit.  SDiv/SRem only reach here with an
 *  immediate divisor that is neither 0 nor -1 (classifyAlu). */
inline int64_t
aluCompute(uint8_t sub, int64_t a, int64_t b)
{
    switch (Opcode(sub)) {
      case Opcode::Add: return int64_t(uint64_t(a) + uint64_t(b));
      case Opcode::Sub: return int64_t(uint64_t(a) - uint64_t(b));
      case Opcode::Mul: return int64_t(uint64_t(a) * uint64_t(b));
      case Opcode::SDiv: return a / b;
      case Opcode::SRem: return a % b;
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Shl:
        return int64_t(uint64_t(a) << (uint64_t(b) & 63));
      case Opcode::Shr: return a >> (uint64_t(b) & 63);
      default: return 0; // unreachable: classifyAlu's opcode set
    }
}

/** The compare kernel, including the Eq/Ne runtime pointer-kind check
 *  the generic paths perform. */
inline bool
cmpCompute(uint8_t sub, const RtValue &a, const RtValue &b)
{
    switch (Opcode(sub)) {
      case Opcode::ICmpEq:
      case Opcode::ICmpNe: {
        bool eq = (a.kind == ir::Type::Ptr || b.kind == ir::Type::Ptr)
                      ? a.p == b.p
                      : a.i == b.i;
        return Opcode(sub) == Opcode::ICmpEq ? eq : !eq;
      }
      case Opcode::ICmpSlt: return a.i < b.i;
      case Opcode::ICmpSle: return a.i <= b.i;
      case Opcode::ICmpSgt: return a.i > b.i;
      case Opcode::ICmpSge: return a.i >= b.i;
      default: return false; // unreachable: classify's opcode set
    }
}

} // namespace

RtValue *
Interp::fusedCellFast(Thread &t, Ptr p)
{
    // Mirrors cellAtCached's hit paths without counter upkeep (the
    // memCache counters are engine-internal and excluded from the
    // differential comparison).  Misses and faults return nullptr so
    // the caller delegates — population, diagnostics, and failure
    // reporting stay on the generic path.
    switch (p.seg) {
      case Ptr::Seg::Stack:
        if (t.mem.stack && t.mem.stackId == p.block &&
            uint64_t(p.offset) < t.mem.stack->size())
            return &(*t.mem.stack)[p.offset];
        return nullptr;
      case Ptr::Seg::Heap:
        if (t.mem.heap && t.mem.heapId == p.block &&
            !t.mem.heap->freed &&
            uint64_t(p.offset) < t.mem.heap->cells.size())
            return &t.mem.heap->cells[p.offset];
        return nullptr;
      case Ptr::Seg::Global:
        if (p.block < globals_.size() &&
            uint64_t(p.offset) < globals_[p.block].size())
            return &globals_[p.block][p.offset];
        return nullptr;
      default:
        return nullptr;
    }
}

Interp::FastMem
Interp::fusedTryLoad(Thread &t, const DecodedInst &di, RtValue *regs,
                     const RtValue *consts)
{
    if (di.a == kRawRef)
        return FastMem::Slow;
    const Ptr p = fusedRef(regs, consts, di.a).p;
    const RtValue *cell = fusedCellFast(t, p);
    if (!cell)
        return FastMem::Slow;
    if (diag_ && p.seg != Ptr::Seg::Stack)
        return FastMem::Slow; // must record a SharedLoad event
    const RtValue &c = *cell;
    const bool intKinds = (c.kind == ir::Type::I64 ||
                           c.kind == ir::Type::I1) &&
                          (di.type == ir::Type::I64 ||
                           di.type == ir::Type::I1);
    if (c.isUninit() || (c.kind != di.type && !intKinds))
        return FastMem::Slow; // zero-fill / type-confusion diagnostics
    RtValue v = c;
    v.kind = di.type;
    regs[di.dst] = v;
    return FastMem::Done;
}

Interp::FastMem
Interp::fusedTryStore(Thread &t, const DecodedInst &di, RtValue *regs,
                      const RtValue *consts)
{
    if (di.a == kRawRef || di.b == kRawRef)
        return FastMem::Slow;
    const Ptr p = fusedRef(regs, consts, di.b).p;
    RtValue *cell = fusedCellFast(t, p);
    if (!cell)
        return FastMem::Slow;
    if (p.seg == Ptr::Seg::Stack) {
        *cell = fusedRef(regs, consts, di.a);
        return FastMem::Done;
    }
    if (diag_)
        return FastMem::Slow; // must record a SharedStore event
    *cell = fusedRef(regs, consts, di.a);
    ++result_.stats.schedTicks;
    return FastMem::SharedDone;
}

// Dense dispatch: computed goto on GCC/Clang (one indirect branch per
// handler, so the BTB learns per-superinstruction successors), dense
// switch elsewhere.  Both share the handler bodies via VM_CASE/VM_NEXT.
#if defined(__GNUC__) || defined(__clang__)
#define CONAIR_COMPUTED_GOTO 1
#endif

void
Interp::runBurstFused(Thread &t)
{
    // Same contract as runBurst: while this thread keeps its claim on
    // the CPU the scheduler's per-step work is provably no-op, so the
    // burst retires instructions back-to-back with identical clock
    // ticks, step counts, and RNG draws as stepwise scheduling.  The
    // per-step condition re-check is replaced by a precomputed *step
    // budget* (the minimum distance to any step-counted boundary); the
    // conditions that are not step-counted are re-checked exactly where
    // they can change (after stores, and on leaving the burst for any
    // frame/scheduler-affecting instruction).
    const uint64_t next_wake = nextWakeDeadline();
    const bool wp = cfg_.wpCheckpointInterval > 0;
    constexpr uint64_t kBudgetCap = uint64_t(1) << 30;

    // Shared across the dispatch labels; assigned, never initialised,
    // so the gotos cannot bypass an initialisation.
    const DecodedFunction *dfnp;
    const DecodedInst *insts;
    const FusedInst *recs;
    const RtValue *consts;
    RtValue *regs;
    Frame *frp;
    const FusedInst *fp;
    uint32_t idx;
    int64_t budget;

    // Deferred tick accounting: pure register-to-register components
    // (Alu, Cmp, PtrAdd, inline jumps) charge these locals instead of
    // the six member counters, and VM_FLUSH() settles them before
    // anything that can observe clock/steps (delegated handlers, trace
    // events, the resync gate).  comps counts full per-instruction
    // charges; phiTicks counts phi copies, which charge clock and
    // steps only.
    uint64_t comps = 0;
    uint64_t phiTicks = 0;
    // Deferred profiler attribution: memory fast-path charges retired
    // since the last flush (the rest of a segment is plain dispatch).
    // Only ever nonzero when prof_ is set.
    uint64_t profMem = 0;

// Settles the deferred charges into the member counters, in the same
// aggregate as stepwise execution: each component is one runBurst loop
// body plus stepThread, each phi tick one clock/step pair.
#define VM_FLUSH_ACCT()                                                \
    do {                                                               \
        quantumLeft_ -= comps;                                         \
        hangCheckCountdown_ -= comps;                                  \
        result_.stats.fastPathSteps += comps;                          \
        result_.stats.fusedSteps += comps;                             \
        clock_ += comps + phiTicks;                                    \
        result_.stats.steps += comps + phiTicks;                       \
        comps = 0;                                                     \
        phiTicks = 0;                                                  \
    } while (0)

// Attributes the deferred segment to the profiler, excluding the last
// @p excl charges (a delegated instruction the caller attributes by
// class through profStep instead).  Must run before VM_FLUSH_ACCT()
// zeroes the locals.
#define VM_PROF_SEG(excl)                                              \
    do {                                                               \
        if (prof_ && comps + phiTicks > (excl)) {                      \
            profFusedSegment(t, comps + phiTicks - (excl), profMem);   \
            profMem = 0;                                               \
        } else {                                                       \
            profMem = 0;                                               \
        }                                                              \
    } while (0)

// The common settle: attribute the whole segment, then account it.
#define VM_FLUSH()                                                     \
    do {                                                               \
        VM_PROF_SEG(0);                                                \
        VM_FLUSH_ACCT();                                               \
    } while (0)

// One retired component; settled by the next VM_FLUSH().
#define VM_CHARGE()                                                    \
    do {                                                               \
        ++comps;                                                       \
        --budget;                                                      \
    } while (0)

// Applies a fuse-time pre-resolved phi edge (FusedInst::inl0/inl1):
// the copy list is validated complete, in phi order, and trap-free, so
// the parallel copy runs without the generic edge scan.  Charges the
// same one-tick-per-phi accounting as jumpToDecoded (deferred).
#define VM_FUSED_JUMP(tgt, ebegin)                                     \
    do {                                                               \
        const DecodedBlock &db = dfnp->blocks[(tgt)];                  \
        frp->dPrevBlock = frp->dBlock;                                 \
        frp->dBlock = (tgt);                                           \
        frp->dPc = db.first;                                           \
        const uint32_t n = db.phiCount;                                \
        if (n) {                                                       \
            const PhiCopy *pc = dfnp->phiCopies.data() + (ebegin);     \
            RtValue tmp[kMaxInlinePhi];                                \
            for (uint32_t k = 0; k < n; ++k)                           \
                tmp[k] = fusedRef(regs, consts, pc[k].value);          \
            for (uint32_t k = 0; k < n; ++k)                           \
                regs[pc[k].dst] = tmp[k];                              \
            phiTicks += n;                                             \
            budget -= int64_t(n);                                      \
        }                                                              \
    } while (0)

resync:
    VM_FLUSH(); // pending local charges from a budget-exhausted burst
    // The exact per-step gate of runBurst.
    if (!(quantumLeft_ > 0 && running_ && !forceSwitch_ && !schedEvent_ &&
          !wpPendingRestore_ && t.state == ThreadState::Runnable &&
          clock_ < next_wake && result_.stats.steps < cfg_.maxSteps &&
          result_.stats.schedTicks < nextSchedPointAt_ &&
          result_.stats.steps < replayNextSwitchAt_ &&
          (!wp || result_.stats.steps < wpNextSnapshotAt_) &&
          hangCheckCountdown_ > 1))
        return;
    frp = &t.frames.back();
    dfnp = frp->dfn;
    if (!dfnp->fused) {
        runBurst(t); // defensive: overlay missing, burst stepwise
        return;
    }
    insts = dfnp->insts.data();
    recs = dfnp->fused->recs.data();
    consts = dfnp->consts.data();
    regs = frp->regs.data();
    {
        // Steps until the nearest step-counted boundary.  Every gate
        // term is > 0 here, so the budget is at least 1.  Phi copies
        // charge clock/steps without consuming quantum, so branch
        // handlers debit the budget by the target's phi count — a
        // conservative debit only ever ends the inner loop early, and
        // this resync point re-derives everything from exact state.
        uint64_t b = quantumLeft_;
        b = std::min(b, cfg_.maxSteps - result_.stats.steps);
        b = std::min(b, hangCheckCountdown_ - 1);
        if (next_wake != UINT64_MAX)
            b = std::min(b, next_wake - clock_);
        if (wp)
            b = std::min(b, wpNextSnapshotAt_ - result_.stats.steps);
        if (replayNextSwitchAt_ != UINT64_MAX)
            b = std::min(b, replayNextSwitchAt_ - result_.stats.steps);
        budget = int64_t(std::min(b, kBudgetCap));
    }

#ifdef CONAIR_COMPUTED_GOTO
    static const void *kJump[kNumFusedOps] = {
        &&L_Solo,   &&L_SoloCont, &&L_Alu,  &&L_Cmp,
        &&L_CmpBr,  &&L_CondBr,   &&L_Br,   &&L_PtrAdd,
        &&L_Load,   &&L_Store,    &&L_LoadThenAlu,
        &&L_AluThenStore,
    };
#define VM_NEXT()                                                      \
    do {                                                               \
        if (budget <= 0)                                               \
            goto resync;                                               \
        idx = frp->dPc;                                                \
        fp = recs + idx;                                               \
        goto *kJump[unsigned(fp->op)];                                 \
    } while (0)
#define VM_CASE(name) L_##name:
    VM_NEXT();
#else
#define VM_NEXT() continue
#define VM_CASE(name) case FusedOp::name:
    for (;;) {
        if (budget <= 0)
            goto resync;
        idx = frp->dPc;
        fp = recs + idx;
        switch (fp->op) {
#endif

    VM_CASE(Solo)
    {
        frp->dPc = idx + 1;
        VM_CHARGE();
        VM_PROF_SEG(1); // the solo step classifies by opcode below
        if (prof_)
            profStep(t, insts[idx].op, insts[idx].builtin);
        VM_FLUSH_ACCT();
        execDecoded(t, insts[idx]);
        goto resync; // may have changed frames, state, or scheduler
    }
    VM_CASE(SoloCont)
    {
        frp->dPc = idx + 1;
        VM_CHARGE();
        VM_PROF_SEG(1); // see Solo
        if (prof_)
            profStep(t, insts[idx].op, insts[idx].builtin);
        VM_FLUSH_ACCT();
        execDecoded(t, insts[idx]);
        if (!running_ || wpPendingRestore_)
            goto resync; // trapping SDiv/SRem and friends
        VM_NEXT();
    }
    VM_CASE(Alu)
    {
        frp->dPc = idx + 1;
        VM_CHARGE();
        int64_t bv = fp->rc ? fp->imm : regs[fp->b].i;
        regs[fp->d] =
            RtValue::ofInt(aluCompute(fp->sub, regs[fp->a].i, bv));
        VM_NEXT();
    }
    VM_CASE(Cmp)
    {
        frp->dPc = idx + 1;
        VM_CHARGE();
        regs[fp->d] = RtValue::ofBool(
            cmpCompute(fp->sub, fusedRef(regs, consts, fp->a),
                       fusedRef(regs, consts, fp->b)));
        VM_NEXT();
    }
    VM_CASE(CmpBr)
    {
        frp->dPc = idx + 1;
        VM_CHARGE();
        bool c = cmpCompute(fp->sub, fusedRef(regs, consts, fp->a),
                            fusedRef(regs, consts, fp->b));
        // The result is architecturally visible (phi copies on the
        // taken edge may read it), so write it before branching.
        regs[fp->d] = RtValue::ofBool(c);
        if (budget <= 0)
            VM_NEXT(); // out of budget mid-pair: the CondBr record at
                       // idx+1 picks up after the resync
        frp->dPc = idx + 2;
        VM_CHARGE();
        if (c ? fp->inl0 : fp->inl1) {
            VM_FUSED_JUMP(c ? fp->t0 : fp->t1, c ? fp->e0 : fp->e1);
            VM_NEXT();
        }
        VM_FLUSH();
        jumpToDecoded(t, c ? fp->t0 : fp->t1);
        if (!running_ || wpPendingRestore_)
            goto resync;
        budget -= int64_t(dfnp->blocks[frp->dBlock].phiCount);
        VM_NEXT();
    }
    VM_CASE(CondBr)
    {
        frp->dPc = idx + 1;
        VM_CHARGE();
        const bool c = fusedRef(regs, consts, fp->a).i != 0;
        if (c ? fp->inl0 : fp->inl1) {
            VM_FUSED_JUMP(c ? fp->t0 : fp->t1, c ? fp->e0 : fp->e1);
            VM_NEXT();
        }
        VM_FLUSH();
        jumpToDecoded(t, c ? fp->t0 : fp->t1);
        if (!running_ || wpPendingRestore_)
            goto resync;
        budget -= int64_t(dfnp->blocks[frp->dBlock].phiCount);
        VM_NEXT();
    }
    VM_CASE(Br)
    {
        frp->dPc = idx + 1;
        VM_CHARGE();
        if (fp->inl0) {
            VM_FUSED_JUMP(fp->t0, fp->e0);
            VM_NEXT();
        }
        VM_FLUSH();
        jumpToDecoded(t, fp->t0);
        if (!running_ || wpPendingRestore_)
            goto resync;
        budget -= int64_t(dfnp->blocks[frp->dBlock].phiCount);
        VM_NEXT();
    }
    VM_CASE(PtrAdd)
    {
        frp->dPc = idx + 1;
        VM_CHARGE();
        RtValue p = fusedRef(regs, consts, fp->a);
        p.p.offset += fusedRef(regs, consts, fp->b).i;
        regs[fp->d] = p;
        VM_NEXT();
    }
    VM_CASE(Load)
    {
        frp->dPc = idx + 1;
        VM_CHARGE();
        if (fusedTryLoad(t, insts[idx], regs, consts) == FastMem::Done) {
            if (prof_)
                ++profMem;
            VM_NEXT();
        }
        VM_PROF_SEG(1); // the load classifies by opcode below
        if (prof_)
            profStep(t, insts[idx].op, insts[idx].builtin);
        VM_FLUSH_ACCT();
        doLoadDecoded(t, insts[idx]);
        if (!running_ || wpPendingRestore_)
            goto resync;
        VM_NEXT();
    }
    VM_CASE(Store)
    {
        frp->dPc = idx + 1;
        VM_CHARGE();
        const FastMem fm = fusedTryStore(t, insts[idx], regs, consts);
        if (fm == FastMem::Done) {
            if (prof_)
                ++profMem;
            VM_NEXT();
        }
        if (fm == FastMem::SharedDone) {
            if (prof_)
                ++profMem;
            if (result_.stats.schedTicks >= nextSchedPointAt_)
                goto resync; // the store crossed a scheduling point
            VM_NEXT();
        }
        VM_PROF_SEG(1); // the store classifies by opcode below
        if (prof_)
            profStep(t, insts[idx].op, insts[idx].builtin);
        VM_FLUSH_ACCT();
        doStoreDecoded(t, insts[idx]);
        if (!running_ || wpPendingRestore_)
            goto resync;
        if (result_.stats.schedTicks >= nextSchedPointAt_)
            goto resync; // a shared store crossed a scheduling point
        VM_NEXT();
    }
    VM_CASE(LoadThenAlu)
    {
        frp->dPc = idx + 1;
        VM_CHARGE();
        if (fusedTryLoad(t, insts[idx], regs, consts) != FastMem::Done) {
            VM_PROF_SEG(1); // see Load
            if (prof_)
                profStep(t, insts[idx].op, insts[idx].builtin);
            VM_FLUSH_ACCT();
            doLoadDecoded(t, insts[idx]);
            if (!running_ || wpPendingRestore_)
                goto resync;
        } else if (prof_) {
            ++profMem;
        }
        if (budget <= 0)
            VM_NEXT(); // the Alu record at idx+1 resumes the pair
        frp->dPc = idx + 2;
        VM_CHARGE();
        int64_t bv = fp->rc2 ? fp->imm2 : regs[fp->b2].i;
        regs[fp->d2] =
            RtValue::ofInt(aluCompute(fp->sub2, regs[fp->a2].i, bv));
        VM_NEXT();
    }
    VM_CASE(AluThenStore)
    {
        frp->dPc = idx + 1;
        VM_CHARGE();
        int64_t bv = fp->rc ? fp->imm : regs[fp->b].i;
        regs[fp->d] =
            RtValue::ofInt(aluCompute(fp->sub, regs[fp->a].i, bv));
        if (budget <= 0)
            VM_NEXT(); // the Store record at idx+1 resumes the pair
        frp->dPc = idx + 2;
        VM_CHARGE();
        const FastMem fm =
            fusedTryStore(t, insts[idx + 1], regs, consts);
        if (fm == FastMem::Done) {
            if (prof_)
                ++profMem;
            VM_NEXT();
        }
        if (fm == FastMem::SharedDone) {
            if (prof_)
                ++profMem;
            if (result_.stats.schedTicks >= nextSchedPointAt_)
                goto resync;
            VM_NEXT();
        }
        VM_PROF_SEG(1); // see Store
        if (prof_)
            profStep(t, insts[idx + 1].op, insts[idx + 1].builtin);
        VM_FLUSH_ACCT();
        doStoreDecoded(t, insts[idx + 1]);
        if (!running_ || wpPendingRestore_)
            goto resync;
        if (result_.stats.schedTicks >= nextSchedPointAt_)
            goto resync;
        VM_NEXT();
    }

#ifndef CONAIR_COMPUTED_GOTO
        }
    }
#endif
#undef VM_CASE
#undef VM_NEXT
#undef VM_CHARGE
#undef VM_FUSED_JUMP
#undef VM_FLUSH
#undef VM_PROF_SEG
#undef VM_FLUSH_ACCT
}

//
// Frames.
//

void
Interp::pushFrame(Thread &t, const ir::Function *fn, const RtValue *args,
                  unsigned nArgs, bool wants_ret, uint32_t ret_reg,
                  const DecodedFunction *dfn)
{
    Frame f;
    f.fn = fn;
    f.wantsRet = wants_ret;
    f.retReg = ret_reg;
    if (engineDecoded_) {
        f.dfn = dfn ? dfn : decoded_->of(fn);
        f.map = nullptr;
        f.regs.resize(f.dfn->regCount);
        // RegMap numbers arguments first: argument i is register i.
        for (unsigned i = 0; i < nArgs; ++i)
            f.regs[i] = args[i];
        f.dBlock = 0;
        // Start at the entry block's phi records (normally none, so
        // this is its first executable instruction); entering an entry
        // block that has phis traps exactly like the reference path.
        f.dPc = f.dfn->blocks.empty() ? 0 : f.dfn->blocks[0].phiBegin;
        f.dPrevBlock = kNoBlock;
    } else {
        f.map = &regMaps_.of(fn);
        f.regs.resize(f.map->count());
        for (unsigned i = 0; i < nArgs; ++i)
            f.regs[f.map->indexOf(fn->arg(i))] = args[i];
        f.block = fn->entry();
        f.pc = fn->entry()->insts().begin();
    }
    t.frames.push_back(std::move(f));
}

void
Interp::releaseFrameSlots(Frame &f)
{
    for (uint32_t id : f.allocaSlots) {
        stackSlots_.erase(id);
        // Slot ids are never reused, but a thread may hold a cached
        // handle to the slot being destroyed; drop it so a later
        // dangling-pointer access misses the cache and faults.
        for (auto &th : threads_)
            if (th->mem.stack && th->mem.stackId == id)
                th->mem.stack = nullptr;
    }
}

void
Interp::popFrame(Thread &t, RtValue ret)
{
    Frame done = std::move(t.frames.back());
    t.frames.pop_back();
    releaseFrameSlots(done);
    if (t.frames.empty()) {
        t.state = ThreadState::Done;
        t.exitValue = ret.kind == ir::Type::I64 ? ret.i : 0;
        // Wake joiners.
        for (auto &other : threads_) {
            if (other->state == ThreadState::Joining &&
                other->joinTarget == t.id) {
                other->state = ThreadState::Runnable;
                schedEvent_ = true;
            }
        }
        if (t.id == 0)
            finish(t.exitValue);
        return;
    }
    Frame &caller = t.frames.back();
    if (done.wantsRet)
        caller.regs[done.retReg] = ret;
}

//
// Value plumbing (reference engine).
//

RtValue
Interp::getValue(Frame &f, const ir::Value *v)
{
    using ir::ValueKind;
    switch (v->kind()) {
      case ValueKind::ConstInt: {
        auto *c = static_cast<const ir::ConstInt *>(v);
        return RtValue::ofInt(c->value(), c->type());
      }
      case ValueKind::ConstFloat:
        return RtValue::ofFloat(
            static_cast<const ir::ConstFloat *>(v)->value());
      case ValueKind::ConstNull:
        return RtValue::ofPtr(Ptr{});
      case ValueKind::GlobalAddr: {
        auto *g = static_cast<const ir::GlobalAddr *>(v);
        return RtValue::ofPtr(
            Ptr{Ptr::Seg::Global, g->global()->id(), 0});
      }
      case ValueKind::Argument:
      case ValueKind::Instruction:
        return f.regs[f.map->indexOf(v)];
      case ValueKind::ConstStr:
      case ValueKind::FuncAddr:
        fatal("string/function constants are only valid as direct "
              "builtin operands");
    }
    fatal("getValue: unhandled value kind");
}

void
Interp::setReg(Frame &f, const Instruction *inst, RtValue v)
{
    f.regs[f.map->indexOf(inst)] = v;
}

void
Interp::jumpTo(Thread &t, const ir::BasicBlock *target)
{
    Frame &f = t.frames.back();
    f.prevBlock = f.block;
    f.block = target;
    f.pc = target->insts().begin();

    // Evaluate the leading phis as one parallel copy.
    std::vector<std::pair<const Instruction *, RtValue>> updates;
    for (auto it = target->insts().begin(); it != target->insts().end();
         ++it) {
        const Instruction *inst = it->get();
        if (inst->opcode() != Opcode::Phi)
            break;
        bool matched = false;
        for (unsigned i = 0; i < inst->numBlockOps(); ++i) {
            if (inst->incomingBlock(i) == f.prevBlock) {
                updates.push_back({inst, getValue(f, inst->operand(i))});
                matched = true;
                break;
            }
        }
        if (!matched) {
            fail(Outcome::Trap, "phi has no incoming edge for "
                                "predecessor",
                 inst);
            return;
        }
        ++f.pc;
        ++clock_;
        ++result_.stats.steps;
        if (prof_)
            profStep(t, Opcode::Phi, Builtin::None);
    }
    for (auto &[inst, v] : updates)
        setReg(f, inst, v);
}

void
Interp::jumpToDecoded(Thread &t, uint32_t target)
{
    Frame &f = t.frames.back();
    const DecodedFunction &dfn = *f.dfn;
    const DecodedBlock &db = dfn.blocks[target];
    const uint32_t pred = f.dBlock;
    f.dPrevBlock = pred;
    f.dBlock = target;
    f.dPc = db.first;
    if (db.phiCount == 0)
        return;

    const PhiEdge *edge = nullptr;
    for (uint32_t i = 0; i < db.edgeCount; ++i) {
        const PhiEdge &e = dfn.phiEdges[db.edgeBegin + i];
        if (e.pred == pred) {
            edge = &e;
            break;
        }
    }
    // Walk the phis in order, mirroring the reference path exactly:
    // every matched phi charges one tick; the first phi without an
    // edge from this predecessor traps before any copy is applied.
    // (Edge copy lists are emitted in phi order, so the k-th phi
    // matches the next unconsumed copy iff the dst slots agree.)
    phiScratch_.clear();
    uint32_t j = 0;
    for (uint32_t k = 0; k < db.phiCount; ++k) {
        const DecodedInst &ph = dfn.insts[db.phiBegin + k];
        const PhiCopy *copy = edge && j < edge->count
                                  ? &dfn.phiCopies[edge->begin + j]
                                  : nullptr;
        if (!copy || copy->dst != ph.dst) {
            fail(Outcome::Trap,
                 "phi has no incoming edge for predecessor", ph.src);
            return;
        }
        phiScratch_.push_back(refVal(f.regs, dfn.consts, copy->value));
        ++j;
        ++clock_;
        ++result_.stats.steps;
        if (prof_)
            profStep(t, Opcode::Phi, Builtin::None);
    }
    for (uint32_t k = 0; k < db.phiCount; ++k)
        f.regs[dfn.phiCopies[edge->begin + k].dst] = phiScratch_[k];
}

//
// Memory.
//

bool
Interp::pointerValid(Ptr p) const
{
    switch (p.seg) {
      case Ptr::Seg::Null:
        return false;
      case Ptr::Seg::Global:
        return p.block < globals_.size() && p.offset >= 0 &&
               p.offset < int64_t(globals_[p.block].size());
      case Ptr::Seg::Heap: {
        auto it = heap_.find(p.block);
        return it != heap_.end() && !it->second.freed && p.offset >= 0 &&
               p.offset < int64_t(it->second.cells.size());
      }
      case Ptr::Seg::Stack: {
        auto it = stackSlots_.find(p.block);
        return it != stackSlots_.end() && p.offset >= 0 &&
               p.offset < int64_t(it->second.size());
      }
    }
    return false;
}

RtValue *
Interp::cellAt(Ptr p, const char *what)
{
    switch (p.seg) {
      case Ptr::Seg::Null:
        fail(Outcome::Segfault,
             strfmt("%s through null pointer", what), nullptr);
        return nullptr;
      case Ptr::Seg::Global: {
        if (p.block >= globals_.size() || p.offset < 0 ||
            p.offset >= int64_t(globals_[p.block].size())) {
            fail(Outcome::Segfault,
                 strfmt("%s out of global bounds", what), nullptr);
            return nullptr;
        }
        return &globals_[p.block][p.offset];
      }
      case Ptr::Seg::Heap: {
        auto it = heap_.find(p.block);
        if (it == heap_.end()) {
            fail(Outcome::Segfault, strfmt("%s of unknown heap block",
                                           what),
                 nullptr);
            return nullptr;
        }
        if (it->second.freed) {
            fail(Outcome::Segfault, strfmt("%s after free", what),
                 nullptr);
            return nullptr;
        }
        if (p.offset < 0 || p.offset >= int64_t(it->second.cells.size())) {
            fail(Outcome::Segfault,
                 strfmt("%s out of heap block bounds", what), nullptr);
            return nullptr;
        }
        return &it->second.cells[p.offset];
      }
      case Ptr::Seg::Stack: {
        auto it = stackSlots_.find(p.block);
        if (it == stackSlots_.end()) {
            fail(Outcome::Segfault,
                 strfmt("%s through dangling stack pointer", what),
                 nullptr);
            return nullptr;
        }
        if (p.offset < 0 || p.offset >= int64_t(it->second.size())) {
            fail(Outcome::Segfault,
                 strfmt("%s out of stack slot bounds", what), nullptr);
            return nullptr;
        }
        return &it->second[p.offset];
      }
    }
    return nullptr;
}

RtValue *
Interp::cellAtCached(Thread &t, Ptr p, const char *what)
{
    if (!cfg_.memHandleCache)
        return cellAt(p, what);
    switch (p.seg) {
      case Ptr::Seg::Heap: {
        HeapBlock *hb;
        if (t.mem.heap && t.mem.heapId == p.block) {
            ++result_.stats.memCacheHits;
            hb = t.mem.heap;
        } else {
            auto it = heap_.find(p.block);
            if (it == heap_.end()) {
                fail(Outcome::Segfault,
                     strfmt("%s of unknown heap block", what), nullptr);
                return nullptr;
            }
            ++result_.stats.memCacheMisses;
            // Safe to cache: heap ids are never reused and node
            // addresses are stable; freed blocks keep their node (the
            // freed flag is re-checked on every hit).
            t.mem.heapId = p.block;
            t.mem.heap = &it->second;
            hb = &it->second;
        }
        if (hb->freed) {
            fail(Outcome::Segfault, strfmt("%s after free", what),
                 nullptr);
            return nullptr;
        }
        if (p.offset < 0 || p.offset >= int64_t(hb->cells.size())) {
            fail(Outcome::Segfault,
                 strfmt("%s out of heap block bounds", what), nullptr);
            return nullptr;
        }
        return &hb->cells[p.offset];
      }
      case Ptr::Seg::Stack: {
        std::vector<RtValue> *slot;
        if (t.mem.stack && t.mem.stackId == p.block) {
            ++result_.stats.memCacheHits;
            slot = t.mem.stack;
        } else {
            auto it = stackSlots_.find(p.block);
            if (it == stackSlots_.end()) {
                fail(Outcome::Segfault,
                     strfmt("%s through dangling stack pointer", what),
                     nullptr);
                return nullptr;
            }
            ++result_.stats.memCacheMisses;
            // Destroyed slots invalidate caches eagerly
            // (releaseFrameSlots), so a cached handle is always live.
            t.mem.stackId = p.block;
            t.mem.stack = &it->second;
            slot = &it->second;
        }
        if (p.offset < 0 || p.offset >= int64_t(slot->size())) {
            fail(Outcome::Segfault,
                 strfmt("%s out of stack slot bounds", what), nullptr);
            return nullptr;
        }
        return &(*slot)[p.offset];
      }
      default:
        // Null faults; globals are already a direct array index.
        return cellAt(p, what);
    }
}

void
Interp::finishLoad(Frame &f, uint32_t dstReg, ir::Type type,
                   const RtValue &cell, const Instruction *site)
{
    if (cell.isUninit()) {
        // Reading a never-written cell yields the zero of the load type.
        switch (type) {
          case ir::Type::F64:
            f.regs[dstReg] = RtValue::ofFloat(0.0);
            break;
          case ir::Type::Ptr:
            f.regs[dstReg] = RtValue::ofPtr(Ptr{});
            break;
          default:
            f.regs[dstReg] = RtValue::ofInt(0, type);
            break;
        }
        return;
    }
    bool int_kinds = (cell.kind == ir::Type::I64 ||
                      cell.kind == ir::Type::I1) &&
                     (type == ir::Type::I64 || type == ir::Type::I1);
    if (cell.kind != type && !int_kinds) {
        fail(Outcome::Trap,
             strfmt("type-confused load: cell holds %s, load wants %s",
                    ir::typeName(cell.kind), ir::typeName(type)),
             site);
        return;
    }
    RtValue v = cell;
    v.kind = type;
    f.regs[dstReg] = v;
}

namespace {

/** Raw payload bits of a runtime value for SharedLoad/SharedStore
 *  events: integers/bools as-is, doubles bit-cast, pointers packed
 *  like cell addresses, uninitialised cells as 0 (matching the
 *  zero-read semantics of finishLoad). */
uint64_t
valueBits(const RtValue &v)
{
    if (v.isUninit())
        return 0;
    switch (v.kind) {
      case ir::Type::F64: {
        uint64_t bits;
        std::memcpy(&bits, &v.f, sizeof bits);
        return bits;
      }
      case ir::Type::Ptr:
        return obs::packCellAddr(uint8_t(v.p.seg), v.p.block,
                                 v.p.offset);
      default:
        return uint64_t(v.i);
    }
}

} // namespace

void
Interp::recordSharedAccess(const Thread &t, bool isStore, Ptr addr,
                           const RtValue &v, const std::string &tag)
{
    rec_->record(t.id,
                 isStore ? obs::EventKind::SharedStore
                         : obs::EventKind::SharedLoad,
                 clock_, result_.stats.steps,
                 obs::packCellAddr(uint8_t(addr.seg), addr.block,
                                   addr.offset),
                 valueBits(v), tag);
}

void
Interp::doLoad(Thread &t, const Instruction &inst)
{
    Frame &f = t.frames.back();
    RtValue addr = getValue(f, inst.operand(0));
    RtValue *cell = cellAt(addr.p, "load");
    if (!cell) {
        result_.failureTag = inst.tag();
        return;
    }
    if (diag_ && addr.p.seg != Ptr::Seg::Stack)
        recordSharedAccess(t, false, addr.p, *cell, inst.tag());
    finishLoad(f, f.map->indexOf(&inst), inst.type(), *cell, &inst);
}

void
Interp::doStore(Thread &t, const Instruction &inst)
{
    Frame &f = t.frames.back();
    RtValue v = getValue(f, inst.operand(0));
    RtValue addr = getValue(f, inst.operand(1));
    RtValue *cell = cellAt(addr.p, "store");
    if (!cell) {
        result_.failureTag = inst.tag();
        return;
    }
    *cell = v;
    if (addr.p.seg != Ptr::Seg::Stack) {
        ++result_.stats.schedTicks;
        if (diag_)
            recordSharedAccess(t, true, addr.p, v, inst.tag());
    }
}

void
Interp::doLoadDecoded(Thread &t, const DecodedInst &di)
{
    Frame &f = t.frames.back();
    const RtValue &addr = refVal(f.regs, f.dfn->consts, di.a);
    RtValue *cell = cellAtCached(t, addr.p, "load");
    if (!cell) {
        result_.failureTag = di.src->tag();
        return;
    }
    if (diag_ && addr.p.seg != Ptr::Seg::Stack)
        recordSharedAccess(t, false, addr.p, *cell, di.src->tag());
    finishLoad(f, di.dst, di.type, *cell, di.src);
}

void
Interp::doStoreDecoded(Thread &t, const DecodedInst &di)
{
    Frame &f = t.frames.back();
    RtValue v = refVal(f.regs, f.dfn->consts, di.a);
    const RtValue &addr = refVal(f.regs, f.dfn->consts, di.b);
    RtValue *cell = cellAtCached(t, addr.p, "store");
    if (!cell) {
        result_.failureTag = di.src->tag();
        return;
    }
    *cell = v;
    if (addr.p.seg != Ptr::Seg::Stack) {
        ++result_.stats.schedTicks;
        if (diag_)
            recordSharedAccess(t, true, addr.p, v, di.src->tag());
    }
}

//
// Synchronisation.
//

Interp::MutexState &
Interp::mutexAt(CellKey key)
{
    return mutexes_[key];
}

void
Interp::lockMutex(Thread &t, Ptr p, bool timed, uint64_t timeout,
                  uint32_t dstReg, const Instruction *site)
{
    if (p.isNull()) {
        fail(Outcome::Segfault, "lock of null mutex", site);
        return;
    }
    CellKey key{p.seg, p.block, p.offset};
    MutexState &m = mutexAt(key);
    if (m.owner == -1) {
        m.owner = int32_t(t.id);
        t.pendingNote = true;
        if (rec_)
            rec_->record(t.id, obs::EventKind::LockAcquire, clock_,
                         result_.stats.steps, key.block, 0,
                         site ? site->tag() : std::string());
        if (timed)
            t.frames.back().regs[dstReg] = RtValue::ofInt(0);
        return;
    }
    if (timed && timeout == 0) {
        // Zero timeout is a try-lock: a contended acquisition reports
        // the timeout immediately instead of parking the thread on an
        // already-expired deadline for a scheduling round.
        if (rec_)
            rec_->record(t.id, obs::EventKind::LockTimeout, clock_,
                         result_.stats.steps, key.block, 1,
                         site ? site->tag() : std::string());
        t.frames.back().regs[dstReg] = RtValue::ofInt(1);
        return;
    }
    // Contended (or recursive, which deadlocks like a default pthread
    // mutex): block the thread.
    m.waiters.push_back(t.id);
    t.state = ThreadState::BlockedLock;
    t.lockKey = key;
    t.blockedAt = site;
    t.blockStart = clock_;
    t.lockHasDeadline = timed;
    if (timed) {
        // Saturate instead of wrapping: an enormous timeout must mean
        // "wait forever", not a deadline in the past.
        // Saturate instead of wrapping: an enormous timeout must mean
        // "wait forever", not a deadline in the past.
        uint64_t deadline = clock_ + timeout;
        t.wakeAt = deadline < clock_ ? UINT64_MAX : deadline;
        t.lockResultReg = dstReg;
        t.lockWantsResult = true;
    } else {
        t.wakeAt = 0;
        t.lockWantsResult = false;
    }
    if (rec_)
        rec_->record(t.id, obs::EventKind::LockBlock, clock_,
                     result_.stats.steps, key.block, timed ? 1 : 0,
                     site ? site->tag() : std::string());
    forceSwitch_ = true;
}

void
Interp::grantLock(MutexState &m)
{
    while (m.owner == -1 && !m.waiters.empty()) {
        uint32_t wid = m.waiters.front();
        m.waiters.pop_front();
        Thread &w = *threads_[wid];
        if (w.state != ThreadState::BlockedLock)
            continue; // stale entry (timed out earlier)
        m.owner = int32_t(wid);
        w.state = ThreadState::Runnable;
        w.pendingNote = true;
        schedEvent_ = true;
        if (rec_)
            rec_->record(wid, obs::EventKind::LockAcquire, clock_,
                         result_.stats.steps, w.lockKey.block, 1);
        if (prof_)
            prof_->onWait(obs::prof::Phase::LockWait,
                          clock_ - w.blockStart);
        if (w.lockWantsResult) {
            w.frames.back().regs[w.lockResultReg] = RtValue::ofInt(0);
            w.lockWantsResult = false;
        }
    }
}

void
Interp::unlockMutex(Thread &t, Ptr p, bool compensation)
{
    if (p.isNull()) {
        fail(Outcome::Segfault, "unlock of null mutex", nullptr);
        return;
    }
    CellKey key{p.seg, p.block, p.offset};
    MutexState &m = mutexAt(key);
    if (m.owner != int32_t(t.id)) {
        if (compensation)
            return; // tolerated: the lock may have timed out meanwhile
        fail(Outcome::Trap, "unlock of mutex not held by this thread",
             nullptr);
        return;
    }
    m.owner = -1;
    grantLock(m);
}

//
// Instruction dispatch (reference engine).
//

void
Interp::execInst(Thread &t, const Instruction &inst)
{
    Frame &f = t.frames.back();
    auto val = [&](unsigned i) { return getValue(f, inst.operand(i)); };

    switch (inst.opcode()) {
      case Opcode::Alloca: {
        uint32_t id = nextSlotId_++;
        stackSlots_[id] = std::vector<RtValue>(inst.allocaSize());
        f.allocaSlots.push_back(id);
        setReg(f, &inst, RtValue::ofPtr(Ptr{Ptr::Seg::Stack, id, 0}));
        break;
      }
      case Opcode::Load:
        doLoad(t, inst);
        break;
      case Opcode::Store:
        doStore(t, inst);
        break;
      case Opcode::PtrAdd: {
        RtValue p = val(0);
        RtValue off = val(1);
        p.p.offset += off.i;
        setReg(f, &inst, p);
        break;
      }
      // Integer arithmetic wraps (two's complement), like hardware.
      case Opcode::Add:
        setReg(f, &inst,
               RtValue::ofInt(int64_t(uint64_t(val(0).i) +
                                      uint64_t(val(1).i))));
        break;
      case Opcode::Sub:
        setReg(f, &inst,
               RtValue::ofInt(int64_t(uint64_t(val(0).i) -
                                      uint64_t(val(1).i))));
        break;
      case Opcode::Mul:
        setReg(f, &inst,
               RtValue::ofInt(int64_t(uint64_t(val(0).i) *
                                      uint64_t(val(1).i))));
        break;
      case Opcode::SDiv: {
        int64_t d = val(1).i;
        if (d == 0) {
            fail(Outcome::Trap, "division by zero", &inst);
            break;
        }
        if (d == -1 && val(0).i == INT64_MIN) {
            setReg(f, &inst, RtValue::ofInt(INT64_MIN)); // wraps
            break;
        }
        setReg(f, &inst, RtValue::ofInt(val(0).i / d));
        break;
      }
      case Opcode::SRem: {
        int64_t d = val(1).i;
        if (d == 0) {
            fail(Outcome::Trap, "remainder by zero", &inst);
            break;
        }
        if (d == -1) {
            setReg(f, &inst, RtValue::ofInt(0));
            break;
        }
        setReg(f, &inst, RtValue::ofInt(val(0).i % d));
        break;
      }
      case Opcode::And:
        setReg(f, &inst, RtValue::ofInt(val(0).i & val(1).i));
        break;
      case Opcode::Or:
        setReg(f, &inst, RtValue::ofInt(val(0).i | val(1).i));
        break;
      case Opcode::Xor:
        setReg(f, &inst, RtValue::ofInt(val(0).i ^ val(1).i));
        break;
      case Opcode::Shl:
        setReg(f, &inst,
               RtValue::ofInt(int64_t(uint64_t(val(0).i)
                                      << (uint64_t(val(1).i) & 63))));
        break;
      case Opcode::Shr:
        setReg(f, &inst,
               RtValue::ofInt(val(0).i >> (uint64_t(val(1).i) & 63)));
        break;
      case Opcode::FAdd:
        setReg(f, &inst, RtValue::ofFloat(val(0).f + val(1).f));
        break;
      case Opcode::FSub:
        setReg(f, &inst, RtValue::ofFloat(val(0).f - val(1).f));
        break;
      case Opcode::FMul:
        setReg(f, &inst, RtValue::ofFloat(val(0).f * val(1).f));
        break;
      case Opcode::FDiv:
        setReg(f, &inst, RtValue::ofFloat(val(0).f / val(1).f));
        break;
      case Opcode::ICmpEq:
      case Opcode::ICmpNe: {
        RtValue a = val(0), b = val(1);
        bool eq;
        if (a.kind == ir::Type::Ptr || b.kind == ir::Type::Ptr)
            eq = a.p == b.p;
        else
            eq = a.i == b.i;
        bool r = inst.opcode() == Opcode::ICmpEq ? eq : !eq;
        setReg(f, &inst, RtValue::ofBool(r));
        break;
      }
      case Opcode::ICmpSlt:
        setReg(f, &inst, RtValue::ofBool(val(0).i < val(1).i));
        break;
      case Opcode::ICmpSle:
        setReg(f, &inst, RtValue::ofBool(val(0).i <= val(1).i));
        break;
      case Opcode::ICmpSgt:
        setReg(f, &inst, RtValue::ofBool(val(0).i > val(1).i));
        break;
      case Opcode::ICmpSge:
        setReg(f, &inst, RtValue::ofBool(val(0).i >= val(1).i));
        break;
      case Opcode::FCmpEq:
        setReg(f, &inst, RtValue::ofBool(val(0).f == val(1).f));
        break;
      case Opcode::FCmpNe:
        setReg(f, &inst, RtValue::ofBool(val(0).f != val(1).f));
        break;
      case Opcode::FCmpLt:
        setReg(f, &inst, RtValue::ofBool(val(0).f < val(1).f));
        break;
      case Opcode::FCmpLe:
        setReg(f, &inst, RtValue::ofBool(val(0).f <= val(1).f));
        break;
      case Opcode::FCmpGt:
        setReg(f, &inst, RtValue::ofBool(val(0).f > val(1).f));
        break;
      case Opcode::FCmpGe:
        setReg(f, &inst, RtValue::ofBool(val(0).f >= val(1).f));
        break;
      case Opcode::SiToFp:
        setReg(f, &inst, RtValue::ofFloat(double(val(0).i)));
        break;
      case Opcode::FpToSi:
        setReg(f, &inst, RtValue::ofInt(int64_t(val(0).f)));
        break;
      case Opcode::Zext:
        setReg(f, &inst, RtValue::ofInt(val(0).i != 0 ? 1 : 0));
        break;
      case Opcode::Phi:
        // Phis are consumed by jumpTo(); reaching one here means entry
        // into a block without a jump.
        fail(Outcome::Trap, "phi executed outside a block transfer",
             &inst);
        break;
      case Opcode::Br:
        jumpTo(t, inst.blockOp(0));
        break;
      case Opcode::CondBr: {
        bool c = val(0).i != 0;
        jumpTo(t, inst.blockOp(c ? 0 : 1));
        break;
      }
      case Opcode::Ret: {
        RtValue ret;
        if (inst.numOperands())
            ret = val(0);
        popFrame(t, ret);
        break;
      }
      case Opcode::Unreachable:
        fail(Outcome::Trap, "unreachable executed", &inst);
        break;
      case Opcode::SchedHint: {
        auto it = delayIndexByHint_.find(inst.hintId());
        if (it != delayIndexByHint_.end()) {
            const DelayRule &r = delayRules_[it->second];
            if (r.delayTicks > 0) {
                uint64_t &fired = hintFires_[it->second];
                if (r.maxFires == 0 || fired < r.maxFires) {
                    ++fired;
                    t.state = ThreadState::Sleeping;
                    t.wakeAt = clock_ + r.delayTicks;
                    forceSwitch_ = true;
                }
            }
        }
        break;
      }
      case Opcode::Call:
        execCall(t, inst);
        break;
      default:
        fail(Outcome::Trap, "unimplemented opcode", &inst);
        break;
    }
}

void
Interp::execCall(Thread &t, const Instruction &inst)
{
    Frame &f = t.frames.back();
    if (inst.callee()) {
        RtValue argbuf[8];
        std::vector<RtValue> heap_args;
        RtValue *args = argbuf;
        unsigned n = inst.numOperands();
        if (n > 8) {
            heap_args.resize(n);
            args = heap_args.data();
        }
        for (unsigned i = 0; i < n; ++i)
            args[i] = getValue(f, inst.operand(i));
        bool wants = inst.producesValue();
        uint32_t ret_reg = wants ? f.map->indexOf(&inst) : 0;
        pushFrame(t, inst.callee(), args, n, wants, ret_reg);
        return;
    }
    // Builtin: pre-fetch the runtime-valued operands (string/function
    // constants have none; the handlers read those through the
    // instruction, exactly like the decoded engine).
    RtValue vals[4] = {};
    unsigned n = std::min(inst.numOperands(), 4u);
    for (unsigned i = 0; i < n; ++i) {
        ir::ValueKind k = inst.operand(i)->kind();
        if (k != ir::ValueKind::ConstStr && k != ir::ValueKind::FuncAddr)
            vals[i] = getValue(f, inst.operand(i));
    }
    uint32_t dst_reg = inst.producesValue() ? f.map->indexOf(&inst) : 0;
    if (ir::builtinIsConAir(inst.builtin()))
        execConAir(t, inst, vals, dst_reg);
    else
        execBuiltin(t, inst, vals, dst_reg);
}

//
// Instruction dispatch (decoded engine).
//

void
Interp::execDecoded(Thread &t, const DecodedInst &di)
{
    Frame &f = t.frames.back();
    const DecodedFunction &dfn = *f.dfn;
    auto val = [&](OpRef r) -> const RtValue & {
        return refVal(f.regs, dfn.consts, r);
    };

    switch (di.op) {
      case Opcode::Alloca: {
        uint32_t id = nextSlotId_++;
        stackSlots_[id] = std::vector<RtValue>(size_t(di.imm));
        f.allocaSlots.push_back(id);
        f.regs[di.dst] = RtValue::ofPtr(Ptr{Ptr::Seg::Stack, id, 0});
        break;
      }
      case Opcode::Load:
        doLoadDecoded(t, di);
        break;
      case Opcode::Store:
        doStoreDecoded(t, di);
        break;
      case Opcode::PtrAdd: {
        RtValue p = val(di.a);
        p.p.offset += val(di.b).i;
        f.regs[di.dst] = p;
        break;
      }
      case Opcode::Add:
        f.regs[di.dst] = RtValue::ofInt(
            int64_t(uint64_t(val(di.a).i) + uint64_t(val(di.b).i)));
        break;
      case Opcode::Sub:
        f.regs[di.dst] = RtValue::ofInt(
            int64_t(uint64_t(val(di.a).i) - uint64_t(val(di.b).i)));
        break;
      case Opcode::Mul:
        f.regs[di.dst] = RtValue::ofInt(
            int64_t(uint64_t(val(di.a).i) * uint64_t(val(di.b).i)));
        break;
      case Opcode::SDiv: {
        int64_t d = val(di.b).i;
        if (d == 0) {
            fail(Outcome::Trap, "division by zero", di.src);
            break;
        }
        int64_t a = val(di.a).i;
        if (d == -1 && a == INT64_MIN) {
            f.regs[di.dst] = RtValue::ofInt(INT64_MIN); // wraps
            break;
        }
        f.regs[di.dst] = RtValue::ofInt(a / d);
        break;
      }
      case Opcode::SRem: {
        int64_t d = val(di.b).i;
        if (d == 0) {
            fail(Outcome::Trap, "remainder by zero", di.src);
            break;
        }
        f.regs[di.dst] =
            RtValue::ofInt(d == -1 ? 0 : val(di.a).i % d);
        break;
      }
      case Opcode::And:
        f.regs[di.dst] = RtValue::ofInt(val(di.a).i & val(di.b).i);
        break;
      case Opcode::Or:
        f.regs[di.dst] = RtValue::ofInt(val(di.a).i | val(di.b).i);
        break;
      case Opcode::Xor:
        f.regs[di.dst] = RtValue::ofInt(val(di.a).i ^ val(di.b).i);
        break;
      case Opcode::Shl:
        f.regs[di.dst] = RtValue::ofInt(int64_t(
            uint64_t(val(di.a).i) << (uint64_t(val(di.b).i) & 63)));
        break;
      case Opcode::Shr:
        f.regs[di.dst] =
            RtValue::ofInt(val(di.a).i >> (uint64_t(val(di.b).i) & 63));
        break;
      case Opcode::FAdd:
        f.regs[di.dst] = RtValue::ofFloat(val(di.a).f + val(di.b).f);
        break;
      case Opcode::FSub:
        f.regs[di.dst] = RtValue::ofFloat(val(di.a).f - val(di.b).f);
        break;
      case Opcode::FMul:
        f.regs[di.dst] = RtValue::ofFloat(val(di.a).f * val(di.b).f);
        break;
      case Opcode::FDiv:
        f.regs[di.dst] = RtValue::ofFloat(val(di.a).f / val(di.b).f);
        break;
      case Opcode::ICmpEq:
      case Opcode::ICmpNe: {
        const RtValue &a = val(di.a);
        const RtValue &b = val(di.b);
        bool eq = (a.kind == ir::Type::Ptr || b.kind == ir::Type::Ptr)
                      ? a.p == b.p
                      : a.i == b.i;
        f.regs[di.dst] =
            RtValue::ofBool(di.op == Opcode::ICmpEq ? eq : !eq);
        break;
      }
      case Opcode::ICmpSlt:
        f.regs[di.dst] = RtValue::ofBool(val(di.a).i < val(di.b).i);
        break;
      case Opcode::ICmpSle:
        f.regs[di.dst] = RtValue::ofBool(val(di.a).i <= val(di.b).i);
        break;
      case Opcode::ICmpSgt:
        f.regs[di.dst] = RtValue::ofBool(val(di.a).i > val(di.b).i);
        break;
      case Opcode::ICmpSge:
        f.regs[di.dst] = RtValue::ofBool(val(di.a).i >= val(di.b).i);
        break;
      case Opcode::FCmpEq:
        f.regs[di.dst] = RtValue::ofBool(val(di.a).f == val(di.b).f);
        break;
      case Opcode::FCmpNe:
        f.regs[di.dst] = RtValue::ofBool(val(di.a).f != val(di.b).f);
        break;
      case Opcode::FCmpLt:
        f.regs[di.dst] = RtValue::ofBool(val(di.a).f < val(di.b).f);
        break;
      case Opcode::FCmpLe:
        f.regs[di.dst] = RtValue::ofBool(val(di.a).f <= val(di.b).f);
        break;
      case Opcode::FCmpGt:
        f.regs[di.dst] = RtValue::ofBool(val(di.a).f > val(di.b).f);
        break;
      case Opcode::FCmpGe:
        f.regs[di.dst] = RtValue::ofBool(val(di.a).f >= val(di.b).f);
        break;
      case Opcode::SiToFp:
        f.regs[di.dst] = RtValue::ofFloat(double(val(di.a).i));
        break;
      case Opcode::FpToSi:
        f.regs[di.dst] = RtValue::ofInt(int64_t(val(di.a).f));
        break;
      case Opcode::Zext:
        f.regs[di.dst] = RtValue::ofInt(val(di.a).i != 0 ? 1 : 0);
        break;
      case Opcode::Phi:
        // Phi records are consumed by jumpToDecoded(); reaching one
        // here means entry into a block without a jump.
        fail(Outcome::Trap, "phi executed outside a block transfer",
             di.src);
        break;
      case Opcode::Br:
        jumpToDecoded(t, di.t0);
        break;
      case Opcode::CondBr:
        jumpToDecoded(t, val(di.a).i != 0 ? di.t0 : di.t1);
        break;
      case Opcode::Ret: {
        RtValue ret;
        if (di.nOps)
            ret = val(di.a);
        popFrame(t, ret);
        break;
      }
      case Opcode::Unreachable:
        fail(Outcome::Trap, "unreachable executed", di.src);
        break;
      case Opcode::SchedHint:
        if (di.delay && di.delay->delayTicks > 0) {
            uint64_t &fired = hintFires_[di.delayIndex];
            if (di.delay->maxFires == 0 || fired < di.delay->maxFires) {
                ++fired;
                t.state = ThreadState::Sleeping;
                t.wakeAt = clock_ + di.delay->delayTicks;
                forceSwitch_ = true;
            }
        }
        break;
      case Opcode::Call:
        execCallDecoded(t, di);
        break;
      default:
        fail(Outcome::Trap, "unimplemented opcode", di.src);
        break;
    }
}

void
Interp::execCallDecoded(Thread &t, const DecodedInst &di)
{
    Frame &f = t.frames.back();
    const DecodedFunction &dfn = *f.dfn;
    auto ref = [&](unsigned i) -> OpRef {
        return i == 0   ? di.a
               : i == 1 ? di.b
                        : dfn.extraOps[di.extra + (i - 2)];
    };

    if (di.callee) {
        RtValue argbuf[8];
        std::vector<RtValue> heap_args;
        RtValue *args = argbuf;
        if (di.nOps > 8) {
            heap_args.resize(di.nOps);
            args = heap_args.data();
        }
        for (unsigned i = 0; i < di.nOps; ++i)
            args[i] = refVal(f.regs, dfn.consts, ref(i));
        pushFrame(t, di.callee, args, di.nOps, di.hasDst, di.dst,
                  di.calleeDfn);
        return;
    }
    RtValue vals[4] = {};
    unsigned n = std::min<unsigned>(di.nOps, 4);
    for (unsigned i = 0; i < n; ++i) {
        OpRef r = ref(i);
        if (r != kRawRef)
            vals[i] = refVal(f.regs, dfn.consts, r);
    }
    if (ir::builtinIsConAir(di.builtin))
        execConAir(t, *di.src, vals, di.dst);
    else
        execBuiltin(t, *di.src, vals, di.dst);
}

//
// Builtins (shared between the engines: operands arrive pre-fetched,
// the result slot is a dense register index).
//

void
Interp::execBuiltin(Thread &t, const Instruction &inst,
                    const RtValue *vals, uint32_t dstReg)
{
    auto str_arg = [&](unsigned i) -> const std::string & {
        auto *s = static_cast<const ir::ConstStr *>(inst.operand(i));
        return module_.strAt(s->id());
    };

    // Synchronisation operations are scheduling ticks (see
    // RunStats::schedTicks): the points a PCT change point can land on.
    switch (inst.builtin()) {
      case Builtin::ThreadCreate:
      case Builtin::ThreadJoin:
      case Builtin::MutexLock:
      case Builtin::MutexUnlock:
      case Builtin::MutexTimedLock:
      case Builtin::Yield:
      case Builtin::Sleep:
        ++result_.stats.schedTicks;
        break;
      default:
        break;
    }

    switch (inst.builtin()) {
      case Builtin::ThreadCreate: {
        auto *fa = static_cast<const ir::FuncAddr *>(inst.operand(0));
        RtValue arg = vals[1];
        Thread *nt = newThread();
        pushFrame(*nt, fa->function(), &arg, 1, false, 0);
        ++result_.stats.threadsSpawned;
        schedEvent_ = true;
        t.frames.back().regs[dstReg] = RtValue::ofInt(nt->id);
        break;
      }
      case Builtin::ThreadJoin: {
        int64_t tid = vals[0].i;
        if (tid < 0 || tid >= int64_t(threads_.size())) {
            fail(Outcome::Trap, "join of unknown thread", &inst);
            break;
        }
        if (threads_[tid]->state != ThreadState::Done) {
            t.state = ThreadState::Joining;
            t.joinTarget = uint32_t(tid);
            t.blockStart = clock_;
            forceSwitch_ = true;
        }
        break;
      }
      case Builtin::MutexLock:
        lockMutex(t, vals[0].p, false, 0, dstReg, &inst);
        break;
      case Builtin::MutexTimedLock:
        lockMutex(t, vals[0].p, true, uint64_t(vals[1].i), dstReg,
                  &inst);
        break;
      case Builtin::MutexUnlock:
        unlockMutex(t, vals[0].p, false);
        break;
      case Builtin::Malloc: {
        int64_t n = std::max<int64_t>(vals[0].i, 0);
        uint32_t id = nextHeapId_++;
        heap_[id] = HeapBlock{std::vector<RtValue>(n), false};
        t.pendingNote = true;
        t.frames.back().regs[dstReg] =
            RtValue::ofPtr(Ptr{Ptr::Seg::Heap, id, 0});
        break;
      }
      case Builtin::Free: {
        Ptr p = vals[0].p;
        if (p.isNull())
            break; // free(NULL) is a no-op
        if (p.seg != Ptr::Seg::Heap || p.offset != 0) {
            fail(Outcome::Trap, "free of non-heap or interior pointer",
                 &inst);
            break;
        }
        auto it = heap_.find(p.block);
        if (it == heap_.end() || it->second.freed) {
            fail(Outcome::Trap, "double or invalid free", &inst);
            break;
        }
        it->second.freed = true;
        break;
      }
      case Builtin::PrintI64:
        result_.output += strfmt("%lld", (long long)vals[0].i);
        break;
      case Builtin::PrintF64:
        result_.output += strfmt("%g", vals[0].f);
        break;
      case Builtin::PrintStr:
        result_.output += str_arg(0);
        break;
      case Builtin::AssertFail:
        fail(Outcome::AssertFail, str_arg(0), &inst);
        break;
      case Builtin::OracleFail:
        fail(Outcome::OracleFail, str_arg(0), &inst);
        break;
      case Builtin::Time:
        t.frames.back().regs[dstReg] =
            RtValue::ofInt(int64_t(clock_) + 1);
        break;
      case Builtin::Yield:
        forceSwitch_ = true;
        break;
      case Builtin::Sleep: {
        int64_t n = vals[0].i;
        if (n > 0) {
            t.state = ThreadState::Sleeping;
            t.wakeAt = clock_ + uint64_t(n);
            forceSwitch_ = true;
        }
        break;
      }
      case Builtin::RandInt: {
        int64_t bound = vals[0].i;
        t.frames.back().regs[dstReg] = RtValue::ofInt(
            bound > 0 ? int64_t(appRng_.range(bound)) : 0);
        break;
      }
      default:
        fail(Outcome::Trap, "unknown builtin", &inst);
        break;
    }
}

//
// ConAir runtime intrinsics.
//

void
Interp::doCheckpoint(Thread &t, const Instruction &inst)
{
    Frame &f = t.frames.back();
    t.ckpt.valid = true;
    t.ckpt.frameIndex = t.frames.size() - 1;
    t.ckpt.regs = f.regs;
    t.ckpt.block = f.block;
    t.ckpt.pc = f.pc; // already advanced: resumes right after setjmp
    t.ckpt.prevBlock = f.prevBlock;
    t.ckpt.dBlock = f.dBlock;
    t.ckpt.dPc = f.dPc;
    t.ckpt.dPrevBlock = f.dPrevBlock;
    t.ckpt.locals.clear();
    if (inst.builtin() == Builtin::CaCheckpointLocals) {
        // The Fig 4 "regions with local-variable writes" point: the
        // frame's stack slots are part of the image, and copying them
        // costs time proportional to their size (unlike the plain
        // register-image setjmp).
        uint64_t cells = 0;
        for (uint32_t id : f.allocaSlots) {
            auto it = stackSlots_.find(id);
            if (it == stackSlots_.end())
                continue;
            t.ckpt.locals.push_back({id, it->second});
            cells += it->second.size();
        }
        uint64_t cost = cells / 4;
        clock_ += cost;
        result_.stats.steps += cost;
        if (prof_ && cost)
            prof_->onSteps(t.id, obs::prof::Phase::CheckpointSave, cost);
    }
    t.ckpt.schedTicksAt = result_.stats.schedTicks;
    t.cleanSinceCkpt = true;
    ++t.epoch;
    ++result_.stats.checkpointsExecuted;
    if (prof_)
        prof_->onCheckpoint(t.id);
    if (rec_)
        rec_->record(t.id, obs::EventKind::Checkpoint, clock_,
                     result_.stats.steps,
                     inst.builtin() == Builtin::CaCheckpointLocals ? 1 : 0,
                     result_.stats.schedTicks);
    if (met_)
        met_->add("checkpoints");
}

namespace {

/** Would executing @p inst end the current idempotent window?  The
 *  mirror of ca::destroysIdempotency, used by chaos injection (the
 *  decoded engine bakes this into DecodedInst::dirties). */
bool
dirtiesWindow(const Instruction &inst)
{
    switch (inst.opcode()) {
      case Opcode::Store:
        return true;
      case Opcode::Call: {
        if (inst.callee())
            return true;
        Builtin b = inst.builtin();
        if (ir::builtinIsConAir(b))
            return false;
        // The §4.1 allowlist: compensation makes these re-executable.
        return b != Builtin::Malloc && b != Builtin::MutexLock &&
               b != Builtin::MutexTimedLock;
      }
      default:
        return false;
    }
}

} // namespace

void
Interp::runCompensation(Thread &t)
{
    for (const CompensationEntry &e : t.allocLog) {
        if (e.epoch != t.epoch)
            continue;
        auto it = heap_.find(e.key.block);
        if (it != heap_.end() && !it->second.freed) {
            it->second.freed = true;
            ++result_.stats.compensationFrees;
            if (rec_)
                rec_->record(t.id, obs::EventKind::CompensationFree,
                             clock_, result_.stats.steps, e.key.block);
            if (met_)
                met_->add("compensation_frees");
        }
    }
    t.allocLog.clear();
    for (const CompensationEntry &e : t.lockLog) {
        if (e.epoch != t.epoch)
            continue;
        unlockMutex(t, Ptr{e.key.seg, e.key.block, e.key.offset}, true);
        ++result_.stats.compensationUnlocks;
        if (rec_)
            rec_->record(t.id, obs::EventKind::CompensationUnlock,
                         clock_, result_.stats.steps, e.key.block,
                         e.key.offset);
        if (met_)
            met_->add("compensation_unlocks");
    }
    t.lockLog.clear();
}

void
Interp::restoreCheckpoint(Thread &t)
{
    // longjmp: unwind to the checkpoint's frame and restore registers.
    while (t.frames.size() > t.ckpt.frameIndex + 1) {
        releaseFrameSlots(t.frames.back());
        t.frames.pop_back();
    }
    Frame &target = t.frames.back();
    target.regs = t.ckpt.regs;
    target.block = t.ckpt.block;
    target.pc = t.ckpt.pc;
    target.prevBlock = t.ckpt.prevBlock;
    target.dBlock = t.ckpt.dBlock;
    target.dPc = t.ckpt.dPc;
    target.dPrevBlock = t.ckpt.dPrevBlock;
    for (const auto &[id, cells] : t.ckpt.locals) {
        auto it = stackSlots_.find(id);
        if (it != stackSlots_.end())
            it->second = cells;
    }
    t.cleanSinceCkpt = true; // back at the region start
    t.pendingNote = false;
}

void
Interp::doTryRollback(Thread &t, const Instruction &inst, int64_t site_id)
{
    if (!t.ckpt.valid || t.retryCount >= cfg_.maxRetries)
        return; // give up: fall through to the original failure

    ++t.retryCount;
    ++result_.stats.rollbacks;

    if (!t.episode.active || t.episode.siteId != site_id) {
        t.episode.active = true;
        t.episode.siteId = site_id;
        t.episode.siteTag = inst.tag();
        t.episode.startClock = clock_;
        t.episode.retries = 0;
    }
    ++t.episode.retries;

    if (rec_)
        rec_->record(t.id, obs::EventKind::Rollback, clock_,
                     result_.stats.steps, t.episode.retries,
                     result_.stats.schedTicks - t.ckpt.schedTicksAt,
                     inst.tag());
    if (met_) {
        met_->add("rollbacks");
        met_->observe("ckpt_to_failure_ticks",
                      result_.stats.schedTicks - t.ckpt.schedTicksAt,
                      obs::MetricsRegistry::tickDistanceBuckets());
    }
    if (prof_)
        prof_->onRollback(t.id, t.episode.siteTag,
                          result_.stats.schedTicks - t.ckpt.schedTicksAt);

    runCompensation(t);
    restoreCheckpoint(t);

    // A second failure of the same site means the first re-execution
    // changed nothing: the root cause lives in another thread that
    // still has to run (an order violation's missing definition, a
    // rotator that has not reopened the log).  On a multicore that
    // thread progresses in parallel with the retry loop; on this
    // single-stream VM a strict-priority policy (PCT) would starve it,
    // so model the paper's retry-loop usleep with a short randomized
    // back-off from the thread's own decision stream.
    if (t.episode.retries >= 2) {
        // Exponential: the waited-for thread may itself sit behind a
        // long-running higher-priority thread, so the total sleep over
        // the retry budget must be able to outlast whole threads.
        uint64_t shift = std::min<uint64_t>(t.episode.retries - 2, 12);
        uint64_t bound = std::min<uint64_t>(
            std::max<uint64_t>(cfg_.backoffMax, 1) << shift, 8192);
        t.state = ThreadState::Sleeping;
        t.wakeAt = clock_ + 1 + t.rng.range(bound);
        forceSwitch_ = true;
        ++result_.stats.backoffs;
        if (rec_)
            rec_->record(t.id, obs::EventKind::Backoff, clock_,
                         result_.stats.steps, t.wakeAt - clock_, 1);
        if (met_)
            met_->add("backoffs");
        if (prof_)
            prof_->onBackoff(t.id, t.wakeAt - clock_);
    }
}

void
Interp::maybeChaosRollback(Thread &t)
{
    if (t.state != ThreadState::Runnable)
        return; // never yank a thread parked in a waiter queue
    if (!t.ckpt.valid || !t.cleanSinceCkpt || t.pendingNote)
        return;
    if (t.frames.size() != t.ckpt.frameIndex + 1)
        return; // inside a callee frame: not this checkpoint's window
    if (result_.stats.chaosRollbacks >= cfg_.chaosMaxRollbacks)
        return;
    if (chaosRng_.range(cfg_.chaosRollbackEveryN) != 0)
        return;
    ++result_.stats.chaosRollbacks;
    result_.stats.chaosSites.push_back({result_.stats.steps, t.id});
    if (rec_)
        rec_->record(t.id, obs::EventKind::ChaosRollback, clock_,
                     result_.stats.steps, result_.stats.steps);
    if (met_)
        met_->add("chaos_rollbacks");
    runCompensation(t);
    restoreCheckpoint(t);
}

void
Interp::execConAir(Thread &t, const Instruction &inst,
                   const RtValue *vals, uint32_t dstReg)
{
    switch (inst.builtin()) {
      case Builtin::CaCheckpoint:
      case Builtin::CaCheckpointLocals:
        doCheckpoint(t, inst);
        break;
      case Builtin::CaTryRollback:
        doTryRollback(t, inst, vals[0].i);
        break;
      case Builtin::CaBackoff: {
        // Per-thread decision stream: concurrent back-offs must not be
        // correlated across threads, and a thread's draws must not
        // shift the shared scheduler stream (which would make the
        // interleaving depend on how often recovery fired).
        uint64_t ticks = 1 + t.rng.range(cfg_.backoffMax);
        t.state = ThreadState::Sleeping;
        t.wakeAt = clock_ + ticks;
        forceSwitch_ = true;
        ++result_.stats.backoffs;
        if (rec_)
            rec_->record(t.id, obs::EventKind::Backoff, clock_,
                         result_.stats.steps, ticks, 0);
        if (met_)
            met_->add("backoffs");
        if (prof_)
            prof_->onBackoff(t.id, ticks);
        break;
      }
      case Builtin::CaNoteAlloc: {
        t.pendingNote = false;
        Ptr p = vals[0].p;
        if (p.seg != Ptr::Seg::Heap)
            break;
        // Lazy clean (paper §4.1): entries from older epochs are stale.
        std::erase_if(t.allocLog, [&](const CompensationEntry &e) {
            return e.epoch != t.epoch;
        });
        t.allocLog.push_back({CellKey{p.seg, p.block, 0}, t.epoch});
        break;
      }
      case Builtin::CaNoteLock: {
        t.pendingNote = false;
        Ptr p = vals[0].p;
        std::erase_if(t.lockLog, [&](const CompensationEntry &e) {
            return e.epoch != t.epoch;
        });
        t.lockLog.push_back(
            {CellKey{p.seg, p.block, p.offset}, t.epoch});
        break;
      }
      case Builtin::CaPtrCheck:
        t.frames.back().regs[dstReg] =
            RtValue::ofBool(pointerValid(vals[0].p));
        break;
      case Builtin::CaRecovered: {
        // Zero-cost measurement hook: refund the step accounting.
        --clock_;
        --result_.stats.steps;
        int64_t site_id = vals[0].i;
        if (t.episode.active && t.episode.siteId == site_id) {
            RecoveryEvent ev;
            ev.siteTag = t.episode.siteTag;
            ev.retries = t.episode.retries;
            ev.startClock = t.episode.startClock;
            ev.endClock = clock_;
            if (rec_)
                rec_->record(t.id, obs::EventKind::RecoveryDone, clock_,
                             result_.stats.steps, ev.retries,
                             ev.startClock, ev.siteTag);
            if (met_) {
                met_->add("recoveries");
                met_->add("retries_by_site/" + ev.siteTag, ev.retries);
                met_->observe("recovery_latency_us",
                              uint64_t(ev.micros()),
                              obs::MetricsRegistry::latencyBucketsUs());
                met_->observe("recovery_retries", ev.retries,
                              obs::MetricsRegistry::retryBuckets());
            }
            if (prof_)
                prof_->onRecovered(t.id, ev.retries, ev.startClock,
                                   ev.endClock);
            result_.stats.recoveries.push_back(std::move(ev));
            t.episode.active = false;
        }
        break;
      }
      default:
        fail(Outcome::Trap, "unknown conair intrinsic", &inst);
        break;
    }
}

//
// Scheduling.
//

uint64_t
Interp::newQuantum()
{
    // Replay: the recorded switch list preempts, never the quantum —
    // and the scheduler RNG must not be drawn (Random would).
    if (cfg_.replay)
        return uint64_t(1) << 62;
    switch (cfg_.policy) {
      case SchedPolicy::RoundRobin:
        return std::max<uint64_t>(cfg_.quantum, 1);
      case SchedPolicy::Pct:
      case SchedPolicy::PreemptBound:
        // No quantum preemption: threads run until they block or a
        // scheduling point fires (the quantum only has to outlast
        // maxSteps).
        return uint64_t(1) << 62;
      case SchedPolicy::Random:
        break;
    }
    return 1 + schedRng_.range(std::max<uint64_t>(2 * cfg_.quantum, 1));
}

Interp::Thread *
Interp::newThread()
{
    auto t = std::make_unique<Thread>();
    t->id = uint32_t(threads_.size());
    // Split decision stream: golden-ratio multiples of (id + 1)
    // decorrelate the thread ids and reseed()'s splitmix finishes the
    // mix, so no two threads share draw sequences and thread N's
    // stream is independent of how many draws thread M made.
    t->rng.reseed(cfg_.seed ^ (0x9e3779b97f4a7c15ull * (t->id + 1)));
    if (cfg_.policy == SchedPolicy::Pct) {
        // High band: strictly above every change-point priority
        // (< pctDepth).  Creation order is deterministic under a fixed
        // schedule, so priorities are reproducible from the seed.
        t->priority = cfg_.pctDepth + (prioRng_.next() >> 32);
    }
    threads_.push_back(std::move(t));
    Thread *created = threads_.back().get();
    if (rec_)
        rec_->record(created->id, obs::EventKind::ThreadSpawn, clock_,
                     result_.stats.steps, created->priority);
    return created;
}

void
Interp::applySchedPoint(Thread &t)
{
    // Consume every point at or below the current tick count (points
    // can collide when the horizon is much smaller than the run).
    while (schedPointNext_ < schedPoints_.size() &&
           result_.stats.schedTicks >= schedPoints_[schedPointNext_]) {
        if (cfg_.policy == SchedPolicy::Pct) {
            // PCT change point i: the running thread drops to low-band
            // priority d-2-i, below every initial priority and every
            // earlier victim, forcing a switch exactly here.
            uint64_t i = schedPointNext_;
            t.priority =
                cfg_.pctDepth >= i + 2 ? cfg_.pctDepth - 2 - i : 0;
        }
        forceSwitch_ = true;
        if (rec_)
            rec_->record(t.id, obs::EventKind::SchedPoint, clock_,
                         result_.stats.steps, schedPointNext_,
                         t.priority);
        ++schedPointNext_;
    }
    nextSchedPointAt_ = schedPointNext_ < schedPoints_.size()
                            ? schedPoints_[schedPointNext_]
                            : UINT64_MAX;
}

Interp::Thread *
Interp::pickThread()
{
    if (cfg_.replay)
        return pickThreadReplay();
    const bool sched_event = schedEvent_;
    schedEvent_ = false;
    // Fast path: the current thread keeps the CPU (no RNG, no scan).
    // Under PCT a scheduling event (spawn, lock grant, wake) may have
    // made a higher-priority thread runnable, so it forces the scan.
    Thread *cur = currentTid_ < threads_.size()
                      ? threads_[currentTid_].get()
                      : nullptr;
    if (cur && cur->state == ThreadState::Runnable && quantumLeft_ > 0 &&
        !forceSwitch_ &&
        !(sched_event && cfg_.policy == SchedPolicy::Pct)) {
        --quantumLeft_;
        return cur;
    }

    runnableScratch_.clear();
    for (const auto &t : threads_)
        if (t->state == ThreadState::Runnable)
            runnableScratch_.push_back(t->id);
    if (runnableScratch_.empty())
        return nullptr;
    forceSwitch_ = false;

    uint32_t chosen;
    switch (cfg_.policy) {
      case SchedPolicy::RoundRobin:
      case SchedPolicy::PreemptBound: {
        // Cycle to the next runnable id (PreemptBound is cooperative
        // round-robin between its forced preemption points).
        chosen = runnableScratch_[0];
        for (uint32_t tid : runnableScratch_) {
            if (tid > currentTid_) {
                chosen = tid;
                break;
            }
        }
        break;
      }
      case SchedPolicy::Pct: {
        // Strict priorities: highest wins, ties break to the lower id
        // (ties are only possible in the low band).
        chosen = runnableScratch_[0];
        for (uint32_t tid : runnableScratch_)
            if (threads_[tid]->priority > threads_[chosen]->priority)
                chosen = tid;
        break;
      }
      case SchedPolicy::Random:
      default:
        chosen = runnableScratch_[schedRng_.range(runnableScratch_.size())];
        break;
    }
    if (rec_ && chosen != currentTid_)
        rec_->record(chosen, obs::EventKind::SchedSwitch, clock_,
                     result_.stats.steps, currentTid_,
                     runnableScratch_.size());
    currentTid_ = chosen;
    quantumLeft_ = newQuantum() - 1;
    return threads_[chosen].get();
}

void
Interp::replayDiverge(const std::string &msg)
{
    if (!running_)
        return;
    running_ = false;
    result_.outcome = Outcome::Trap;
    result_.failureMsg = "replay divergence: " + msg;
    result_.replayDivergence = msg;
}

Interp::Thread *
Interp::pickThreadReplay()
{
    // Scheduling events carry no information in replay mode: their
    // effect on the original run is already baked into the recorded
    // switch list.
    schedEvent_ = false;
    const bool tolerant = cfg_.replay->tolerant;
    const auto &sw = cfg_.replay->switches;

    while (replayNext_ < sw.size() &&
           result_.stats.steps >= sw[replayNext_].step) {
        const ReplaySchedule::Switch &s = sw[replayNext_];
        if (result_.stats.steps > s.step) {
            // The decision step was overrun: the execution no longer
            // matches the recording (both burst paths stop exactly at
            // replayNextSwitchAt_, so a faithful replay never lands
            // here).
            if (tolerant) {
                ++replayNext_;
                continue;
            }
            replayDiverge(strfmt(
                "switch #%zu (thread %u at step %llu) was overrun "
                "(now at step %llu)",
                replayNext_, s.tid, (unsigned long long)s.step,
                (unsigned long long)result_.stats.steps));
            return nullptr;
        }
        Thread *target =
            s.tid < threads_.size() ? threads_[s.tid].get() : nullptr;
        if (target && target->state == ThreadState::Runnable) {
            // Re-recording a replay (minimisation produces its exact
            // log this way) emits the same SchedSwitch stream the
            // original scheduler did: changes of thread only.
            if (rec_ && s.tid != currentTid_) {
                uint64_t runnable = 0;
                for (const auto &th : threads_)
                    runnable += th->state == ThreadState::Runnable;
                rec_->record(s.tid, obs::EventKind::SchedSwitch, clock_,
                             result_.stats.steps, currentTid_,
                             runnable);
            }
            currentTid_ = s.tid;
            quantumLeft_ = newQuantum() - 1;
            ++replayNext_;
            break;
        }
        // Due, but the thread cannot run.  When *nothing* is runnable
        // this is the sleeper-wake shape: the original scheduler took
        // this decision after the clock jumped to the next wake
        // deadline.  Leave the switch unconsumed and let the caller
        // advance sleepers; the retry consumes it.
        bool anyRunnable = false;
        for (const auto &th : threads_)
            anyRunnable |= th->state == ThreadState::Runnable;
        if (!anyRunnable) {
            replayNextSwitchAt_ = s.step;
            forceSwitch_ = false;
            return nullptr;
        }
        if (tolerant) {
            ++replayNext_;
            continue;
        }
        replayDiverge(strfmt(
            "switch #%zu: thread %u is not runnable at step %llu",
            replayNext_, s.tid,
            (unsigned long long)result_.stats.steps));
        return nullptr;
    }
    replayNextSwitchAt_ =
        replayNext_ < sw.size() ? sw[replayNext_].step : UINT64_MAX;
    forceSwitch_ = false;

    Thread *cur = currentTid_ < threads_.size()
                      ? threads_[currentTid_].get()
                      : nullptr;
    if (cur && cur->state == ThreadState::Runnable)
        return cur;

    // The current thread cannot continue and no switch is due.  In a
    // faithful replay nothing is runnable here — the recording would
    // contain a switch otherwise — so wait for sleepers (or report the
    // same hang the original run hit).
    Thread *lowest = nullptr;
    for (const auto &th : threads_)
        if (th->state == ThreadState::Runnable) {
            lowest = th.get();
            break;
        }
    if (!lowest)
        return nullptr;
    if (tolerant) {
        // Deterministic fallback for perturbed schedules: lowest
        // runnable id runs until the next applicable switch.
        if (rec_ && lowest->id != currentTid_) {
            uint64_t runnable = 0;
            for (const auto &th : threads_)
                runnable += th->state == ThreadState::Runnable;
            rec_->record(lowest->id, obs::EventKind::SchedSwitch,
                         clock_, result_.stats.steps, currentTid_,
                         runnable);
        }
        currentTid_ = lowest->id;
        quantumLeft_ = newQuantum() - 1;
        return lowest;
    }
    replayDiverge(strfmt(
        "thread %u cannot continue at step %llu and no switch is "
        "recorded (thread %u is runnable)",
        currentTid_, (unsigned long long)result_.stats.steps,
        lowest->id));
    return nullptr;
}

void
Interp::wakeDue()
{
    for (auto &t : threads_) {
        if (t->state == ThreadState::Sleeping && t->wakeAt <= clock_) {
            t->state = ThreadState::Runnable;
            schedEvent_ = true;
        } else if (t->state == ThreadState::BlockedLock &&
                   t->lockHasDeadline && t->wakeAt <= clock_) {
            // Timed lock expired: remove from the waiter queue and
            // deliver the timeout result.
            MutexState &m = mutexAt(t->lockKey);
            std::erase(m.waiters, t->id);
            t->state = ThreadState::Runnable;
            schedEvent_ = true;
            if (rec_)
                rec_->record(t->id, obs::EventKind::LockTimeout, clock_,
                             result_.stats.steps, t->lockKey.block, 0);
            if (t->lockWantsResult) {
                t->frames.back().regs[t->lockResultReg] =
                    RtValue::ofInt(1);
                t->lockWantsResult = false;
            }
        }
    }
}

uint64_t
Interp::nextWakeDeadline() const
{
    uint64_t min_wake = UINT64_MAX;
    for (const auto &t : threads_) {
        if (t->state == ThreadState::Sleeping ||
            (t->state == ThreadState::BlockedLock && t->lockHasDeadline))
            min_wake = std::min(min_wake, t->wakeAt);
    }
    return min_wake;
}

bool
Interp::advanceSleepers()
{
    uint64_t min_wake = nextWakeDeadline();
    if (min_wake == UINT64_MAX)
        return false;
    clock_ = std::max(clock_, min_wake);
    wakeDue();
    return true;
}

//
// Whole-program checkpoint baseline.
//

size_t
Interp::wpStateCells() const
{
    size_t cells = 0;
    for (const auto &g : globals_)
        cells += g.size();
    for (const auto &[id, block] : heap_)
        cells += block.cells.size();
    for (const auto &[id, slot] : stackSlots_)
        cells += slot.size();
    for (const auto &t : threads_)
        for (const Frame &f : t->frames)
            cells += f.regs.size();
    return cells;
}

void
Interp::wpTakeSnapshot()
{
    auto snap = std::make_unique<WpSnapshot>();
    snap->globals = globals_;
    snap->heap = heap_;
    snap->stackSlots = stackSlots_;
    snap->mutexes = mutexes_;
    for (const auto &t : threads_)
        snap->threads.push_back(*t);
    snap->nextHeapId = nextHeapId_;
    snap->nextSlotId = nextSlotId_;
    snap->currentTid = currentTid_;
    snap->quantumLeft = quantumLeft_;
    snap->outputLen = result_.output.size();
    wpSnapshots_.push_back(std::move(snap));
    if (wpSnapshots_.size() > 8)
        wpSnapshots_.erase(wpSnapshots_.begin() + 1); // keep the start

    // The cost traditional systems pay per checkpoint: proportional to
    // the memory state captured.
    uint64_t cost = uint64_t(double(wpStateCells()) *
                             cfg_.wpSnapshotCostPerCell) +
                    1;
    clock_ += cost;
    result_.stats.steps += cost;
    result_.stats.wpSnapshotCost += cost;
    ++result_.stats.wpSnapshots;
    // Whole-program snapshots are global (no owning thread): charge
    // the main thread, which always exists.
    if (prof_)
        prof_->onSteps(0, obs::prof::Phase::CheckpointSave, cost);
}

void
Interp::wpRestore()
{
    // Walk back one checkpoint per consecutive attempt: the newest may
    // capture a doomed state.  Always keep the program-start snapshot.
    if (wpSnapshots_.size() > 1)
        wpSnapshots_.pop_back();
    const WpSnapshot &snap = *wpSnapshots_.back();
    globals_ = snap.globals;
    heap_ = snap.heap;
    stackSlots_ = snap.stackSlots;
    mutexes_ = snap.mutexes;
    threads_.clear();
    for (const Thread &t : snap.threads)
        threads_.push_back(std::make_unique<Thread>(t));
    // The restore rewound nextSlotId_/nextHeapId_, so block ids CAN be
    // reused from here on and replaced the maps wholesale: every cached
    // memory handle is invalid.  This is the only place that needs a
    // wholesale cache flush.
    for (auto &t : threads_)
        t->mem = MemCache{};
    nextHeapId_ = snap.nextHeapId;
    nextSlotId_ = snap.nextSlotId;
    currentTid_ = snap.currentTid;
    quantumLeft_ = snap.quantumLeft;
    // Output produced after the snapshot is rolled back too (the
    // sandboxing traditional systems need OS support for).
    result_.output.resize(snap.outputLen);
    // Survive by nondeterminism: reexecute under a perturbed schedule.
    schedRng_.reseed(cfg_.seed + 7919 * (wpRecoveriesUsed_ + 1));
    ++wpRecoveriesUsed_;
    ++result_.stats.wpRecoveries;
    wpPendingRestore_ = false;
}

//
// Termination.
//

void
Interp::fail(Outcome o, const std::string &msg, const Instruction *site)
{
    if (!running_ || wpPendingRestore_)
        return;
    if (rec_)
        rec_->record(currentTid_, obs::EventKind::FailureSite, clock_,
                     result_.stats.steps, uint64_t(o), 0,
                     site ? site->tag() : std::string());
    if (cfg_.wpCheckpointInterval > 0 && !wpSnapshots_.empty() &&
        wpRecoveriesUsed_ < cfg_.wpMaxRecoveries) {
        // Whole-program rollback instead of dying.  The restore is
        // deferred to the main loop: the failing instruction's frame
        // must not be touched while it is still on the C++ stack.
        wpPendingRestore_ = true;
        return;
    }
    running_ = false;
    result_.outcome = o;
    result_.failureMsg = msg;
    if (site)
        result_.failureTag = site->tag();
}

void
Interp::failHang(const std::string &msg)
{
    // Report the hang with the lock sites the blocked threads sit at:
    // the information a developer would feed fix mode (";"-separated).
    std::string tags;
    for (const auto &t : threads_) {
        if (t->state != ThreadState::BlockedLock || !t->blockedAt)
            continue;
        if (t->blockedAt->tag().empty())
            continue;
        if (!tags.empty())
            tags += ';';
        tags += t->blockedAt->tag();
    }
    fail(Outcome::Hang, msg, nullptr);
    if (!running_ && result_.outcome == Outcome::Hang)
        result_.failureTag = tags;
}

void
Interp::finish(int64_t exit_code)
{
    running_ = false;
    result_.outcome = Outcome::Success;
    result_.exitCode = exit_code;
}

uint64_t
Interp::computeMemDigest() const
{
    // FNV-1a-style fold over the final memory image in a
    // representation-independent order: globals by index, then heap
    // blocks and stack slots by ascending id (ids are allocation-order
    // deterministic, so identical executions visit identical sequences
    // regardless of unordered_map layout).  Cells hash their kind plus
    // the kind-appropriate payload only, so an i64 cell with a stale
    // union-mate never diverges between engines.
    auto mix = [](uint64_t h, uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
        return h;
    };
    auto cell = [&](uint64_t h, const RtValue &v) {
        h = mix(h, uint64_t(v.kind));
        switch (v.kind) {
          case ir::Type::F64: {
            uint64_t bits;
            static_assert(sizeof bits == sizeof v.f);
            std::memcpy(&bits, &v.f, sizeof bits);
            return mix(h, bits);
          }
          case ir::Type::Ptr:
            h = mix(h, uint64_t(v.p.seg));
            h = mix(h, v.p.block);
            return mix(h, uint64_t(v.p.offset));
          default:
            return mix(h, uint64_t(v.i));
        }
    };
    uint64_t h = 0xcbf29ce484222325ull;
    for (const auto &g : globals_) {
        h = mix(h, g.size());
        for (const RtValue &v : g)
            h = cell(h, v);
    }
    std::vector<uint32_t> ids;
    ids.reserve(heap_.size());
    for (const auto &[id, blk] : heap_)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (uint32_t id : ids) {
        const HeapBlock &b = heap_.at(id);
        h = mix(h, id);
        h = mix(h, b.freed ? 1 : 0);
        h = mix(h, b.cells.size());
        for (const RtValue &v : b.cells)
            h = cell(h, v);
    }
    ids.clear();
    for (const auto &[id, cells] : stackSlots_)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (uint32_t id : ids) {
        const std::vector<RtValue> &cells = stackSlots_.at(id);
        h = mix(h, id);
        h = mix(h, cells.size());
        for (const RtValue &v : cells)
            h = cell(h, v);
    }
    return h;
}

RunResult
runProgram(const ir::Module &m, const VmConfig &cfg)
{
    Interp interp(m, cfg);
    return interp.run();
}

} // namespace conair::vm
