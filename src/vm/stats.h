/**
 * @file
 * Run outcomes and statistics reported by the MiniVM.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace conair::ir {
class Instruction;
}

namespace conair::vm {

/** How a run ended. */
enum class Outcome : uint8_t {
    Success,    ///< main returned
    AssertFail, ///< assert_fail executed (Fig 5a failure)
    OracleFail, ///< oracle_fail executed (wrong-output oracle, Fig 5b)
    Segfault,   ///< invalid memory access (Fig 5c failure)
    Hang,       ///< threads deadlocked / blocked past the hang timeout
    Timeout,    ///< maxSteps exhausted
    Trap,       ///< other runtime error (div by zero, bad free, ...)
};

const char *outcomeName(Outcome o);

/** Streams outcomeName(o) — so test failures print "Segfault", not 3. */
std::ostream &operator<<(std::ostream &os, Outcome o);

/** Virtual nanoseconds per executed instruction (for µs reporting).
 *  One VM step models a handful of machine instructions. */
constexpr double kNanosPerStep = 100.0;

/** One completed failure-recovery episode (ConAir runtime). */
struct RecoveryEvent
{
    std::string siteTag;   ///< tag of the failure site ("assert.f.12")
    uint64_t retries = 0;  ///< rollbacks performed
    uint64_t startClock = 0;
    uint64_t endClock = 0; ///< clock when the site finally passed

    double
    micros() const
    {
        return double(endClock - startClock) * kNanosPerStep / 1000.0;
    }
};

/** One chaos-injected rollback (site identity for the determinism
 *  regression test). */
struct ChaosRollbackSite
{
    uint64_t step = 0; ///< global instruction count at injection
    uint32_t tid = 0;  ///< thread that was rolled back

    bool operator==(const ChaosRollbackSite &) const = default;
};

/** Counters accumulated over one run. */
struct RunStats
{
    uint64_t steps = 0;            ///< instructions executed (all threads)
    uint64_t threadsSpawned = 0;
    uint64_t checkpointsExecuted = 0; ///< dynamic reexecution points
    uint64_t rollbacks = 0;
    uint64_t compensationFrees = 0;
    uint64_t compensationUnlocks = 0;
    uint64_t backoffs = 0;
    std::vector<RecoveryEvent> recoveries;

    /// @{ Whole-program checkpoint baseline counters.
    uint64_t wpSnapshots = 0;
    uint64_t wpRecoveries = 0;
    uint64_t wpSnapshotCost = 0; ///< total ticks spent snapshotting
    /// @}

    /** Rollbacks injected by the chaos mode (idempotency testing). */
    uint64_t chaosRollbacks = 0;

    /** Scheduling-relevant events retired: stores to shared memory
     *  (global/heap segments) plus synchronisation builtins (spawn,
     *  join, lock, unlock, yield, sleep).  PCT change points and
     *  PreemptBound preemptions are sampled on this axis — racy
     *  windows open at shared writes and lock acquisitions, so a
     *  horizon counted in these events is orders of magnitude denser
     *  than one counted in raw instructions. */
    uint64_t schedTicks = 0;

    /** Where each chaos rollback struck: (global step count, thread).
     *  Chaos injection is deterministic — same seed, same sites — and
     *  the regression test pins that down with this trace. */
    std::vector<ChaosRollbackSite> chaosSites;

    /// @{ Execution-engine counters (decode layer + hot-path caches).
    /// Engine-internal: excluded from the cross-engine differential
    /// comparison, which checks semantic state only.
    uint64_t decodedInsts = 0;   ///< instruction records decoded up front
    uint64_t fastPathSteps = 0;  ///< steps retired in single-runnable bursts
    uint64_t memCacheHits = 0;   ///< loads/stores served by the handle cache
    uint64_t memCacheMisses = 0;
    uint64_t hintRulesTracked = 0; ///< fire-count slots (== configured rules)
    uint64_t fusedInsts = 0;     ///< superinstructions formed at decode time
    uint64_t fusedSteps = 0;     ///< steps retired by the fused dispatcher
    /// @}
};

/** Everything a run returns. */
struct RunResult
{
    Outcome outcome = Outcome::Success;
    int64_t exitCode = 0;
    std::string output;       ///< captured print() stream
    std::string failureMsg;   ///< human-readable failure description
    std::string failureTag;   ///< tag of the faulting instruction, if any
    uint64_t clock = 0;       ///< final virtual time
    /** Deterministic hash of the final memory image (globals, then
     *  heap blocks and stack slots in id order), hashing each cell's
     *  kind plus its kind-appropriate payload.  Part of the semantic
     *  state the cross-engine differential oracle compares. */
    uint64_t memDigest = 0;
    RunStats stats;

    /**
     * Exact-replay divergence report (VmConfig::replay, non-tolerant):
     * non-empty when the run could not follow the recorded switch list
     * — a recorded thread was not runnable at its step, or a switch
     * step was overrun.  The run ends immediately with Outcome::Trap;
     * a faithful replay always leaves this empty.  Tolerant replay
     * (ddmin candidate evaluation) never sets it.
     */
    std::string replayDivergence;

    bool ok() const { return outcome == Outcome::Success; }
};

} // namespace conair::vm
