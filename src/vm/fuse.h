/**
 * @file
 * The superinstruction fusion layer: a decode-time peephole pass over
 * a DecodedFunction's flat instruction array that classifies every
 * instruction index into a FusedInst record the fused execution tier
 * (Interp::runBurstFused) dispatches through a dense jump table.
 *
 * Fusion never changes semantics — records either delegate to the
 * decoded handlers (Load/Store/Solo) or replicate them bit-for-bit
 * with the operand-resolution branches folded away (register indices
 * and immediates instead of OpRef tag checks).  Two-component records
 * (compare+branch, load+arith, arith+store) retire two DecodedInsts
 * per dispatch while charging the exact per-instruction tick, step,
 * and quantum accounting of stepwise execution; docs/VM_ENGINE.md
 * documents the rules and the tick-identity contract.
 *
 * Records are *per index and overlapping*: recs[i] is the best
 * superinstruction starting at instruction i, and the interior of a
 * two-component record (index i+1) still carries its own valid
 * single-component record.  Control may therefore land anywhere — a
 * branch target, a checkpoint resume, or a burst that ran out of
 * budget mid-pair — and continue correctly.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace conair::vm {

struct DecodedFunction;

/** Dispatch kinds of the fused tier (dense: the jump table indexes
 *  this enum directly). */
enum class FusedOp : uint8_t {
    Solo,     ///< execDecoded, then leave the burst (calls, builtins, ...)
    SoloCont, ///< execDecoded, stay in the burst (FP math, casts, alloca)
    Alu,      ///< d = a <sub> (rc ? imm : b): trap-free integer arith
    Cmp,      ///< d = bool(a <sub> b): integer/ptr compare
    CmpBr,    ///< Cmp immediately consumed by a CondBr (2 components)
    CondBr,   ///< branch on register a
    Br,       ///< unconditional branch to t0
    PtrAdd,   ///< d = a.ptr advanced by b cells
    Load,     ///< delegated doLoadDecoded (memory checks, diag events)
    Store,    ///< delegated doStoreDecoded (schedTicks, diag events)
    LoadThenAlu,  ///< Load, then a trap-free integer op (2 components)
    AluThenStore, ///< trap-free integer op, then a Store (2 components)
};

inline constexpr unsigned kNumFusedOps = 12;

/**
 * One fused record.  Field use by kind:
 *  - Alu / AluThenStore comp1: d, a, b are dense register slots; when
 *    rc is set the second operand is the inline immediate imm; sub is
 *    the ir::Opcode of the operation (uint8_t to keep the record flat).
 *  - Cmp / CmpBr: a, b are raw OpRefs (register or constant pool,
 *    resolved with one branch); d is the result slot; sub the compare
 *    opcode; CmpBr adds the branch targets t0/t1.
 *  - CondBr: a is a raw OpRef, targets t0/t1.
 *  - Br: target t0.
 *  - PtrAdd: a, b raw OpRefs, d the result slot.
 *  - LoadThenAlu comp2: sub2/rc2/d2/a2/b2/imm2, same encoding as Alu.
 *  - Solo / SoloCont / Load / Store: everything comes from the
 *    underlying DecodedInst at the same index.
 *
 * Branch records (Br / CondBr / CmpBr) additionally carry the
 * *pre-resolved phi edge* for each target: when inl0 (resp. inl1) is
 * set, the copy list for the edge (this block -> t0/t1) starts at
 * phiCopies[e0] (resp. e1), is exactly blocks[target].phiCount long,
 * aligns with the target's phi order, and contains no kRawRef values —
 * all validated at fuse time, so the executor applies the parallel
 * copy inline with no edge scan and no trap path.  Targets whose edge
 * fails validation (or has more than kMaxInlinePhi copies) keep the
 * flag clear and go through the generic jumpToDecoded.
 */
struct FusedInst
{
    FusedOp op = FusedOp::Solo;
    uint8_t sub = 0;   ///< comp1 ir::Opcode (arith / compare kind)
    uint8_t sub2 = 0;  ///< comp2 ir::Opcode (LoadThenAlu)
    bool rc = false;   ///< comp1 second operand is the immediate
    bool rc2 = false;  ///< comp2 second operand is the immediate
    bool inl0 = false; ///< t0's phi edge is pre-resolved at e0
    bool inl1 = false; ///< t1's phi edge is pre-resolved at e1
    uint32_t d = 0, a = 0, b = 0;
    uint32_t d2 = 0, a2 = 0, b2 = 0;
    int64_t imm = 0;
    int64_t imm2 = 0;
    uint32_t t0 = 0, t1 = 0;
    uint32_t e0 = 0, e1 = 0; ///< phiCopies begin per target edge
};

/** Largest phi-copy list applied inline by the fused branch handlers
 *  (the executor's scratch is a fixed array of this many RtValues). */
inline constexpr uint32_t kMaxInlinePhi = 8;

/** A function's fusion overlay: one record per DecodedInst index. */
struct FusedFunction
{
    std::vector<FusedInst> recs;

    /** Two-component superinstructions formed (CmpBr / LoadThenAlu /
     *  AluThenStore heads) — the RunStats::fusedInsts axis. */
    uint64_t fusedHeads = 0;
};

/** Builds @p dfn's fusion overlay (idempotent; replaces any previous
 *  overlay).  Called by DecodedModule::fuseAll for every function. */
void fuseFunction(DecodedFunction &dfn);

} // namespace conair::vm
