/**
 * @file
 * The pre-decoding layer: lowers MiniIR functions into flat,
 * fixed-layout instruction arrays at Interp construction time.
 *
 * The tree-walking interpretation path resolves every operand through a
 * `switch (v->kind())` plus pointer-keyed hash lookups (RegMap) and
 * re-derives branch targets, callee metadata, and delay rules on every
 * execution.  Decoding hoists all of that work to construction:
 *
 *  - operands become dense register slots or constant-pool indices,
 *    with immediates materialised as ready-to-use RtValues;
 *  - branch targets become block indices into a flat array;
 *  - leading phis become per-predecessor parallel-copy lists evaluated
 *    on block entry (no per-step phi scanning);
 *  - call / builtin metadata (callee's decoded body, register count,
 *    scheduler delay rules) is resolved once.
 *
 * The step loop then indexes arrays instead of chasing pointers and
 * hashing.  docs/VM_ENGINE.md documents the pipeline and the hot-path
 * invariants the executor relies on.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ir/module.h"
#include "vm/config.h"
#include "vm/fuse.h"
#include "vm/regmap.h"
#include "vm/value.h"

namespace conair::vm {

struct DecodedFunction;

/**
 * An operand reference.  Values below kConstRef are dense register
 * indices into the frame's register file; values with the top bit set
 * index the function's constant pool; kRawRef marks operands that have
 * no runtime value (string / function constants, legal only as direct
 * builtin operands and resolved through DecodedInst::src).
 */
using OpRef = uint32_t;
inline constexpr OpRef kConstRef = 0x8000'0000u;
inline constexpr OpRef kRawRef = 0xFFFF'FFFFu;
inline constexpr uint32_t kNoBlock = 0xFFFF'FFFFu;

/** One pre-decoded instruction: fixed layout, no pointer chasing. */
struct DecodedInst
{
    ir::Opcode op;
    ir::Builtin builtin = ir::Builtin::None;
    ir::Type type = ir::Type::Void; ///< result type (loads, casts, ...)
    bool hasDst = false;
    /** Executing this ends the thread's idempotent window (the decode-
     *  time image of the interpreter-local dirtiesWindow predicate). */
    bool dirties = false;
    uint16_t nOps = 0;
    uint32_t dst = 0;       ///< dense register slot when hasDst
    OpRef a = kRawRef;      ///< operand 0
    OpRef b = kRawRef;      ///< operand 1
    uint32_t extra = 0;     ///< operands 2.. live at extraOps[extra..]
    uint32_t t0 = 0, t1 = 0; ///< branch targets (block indices)
    int64_t imm = 0;        ///< alloca size / hint id
    const ir::Function *callee = nullptr;      ///< user call target
    const DecodedFunction *calleeDfn = nullptr; ///< its decoded body
    const DelayRule *delay = nullptr; ///< SchedHint: configured rule
    uint32_t delayIndex = 0;          ///< its fire-count slot
    const ir::Instruction *src = nullptr; ///< tags, diagnostics, strings
};

/** One phi assignment on a control-flow edge: dst <- value. */
struct PhiCopy
{
    uint32_t dst;
    OpRef value;
};

/** The parallel-copy list a specific predecessor's edge executes. */
struct PhiEdge
{
    uint32_t pred;  ///< predecessor block index
    uint32_t begin; ///< into DecodedFunction::phiCopies
    uint32_t count;
};

/** A basic block in the flat layout. */
struct DecodedBlock
{
    uint32_t phiBegin = 0; ///< flat index of the first (phi) record
    uint32_t first = 0;    ///< flat index of the first executable inst
    uint32_t phiCount = 0; ///< leading phis (clock ticks charged on entry)
    uint32_t edgeBegin = 0, edgeCount = 0; ///< into phiEdges
    const ir::Instruction *firstPhi = nullptr; ///< diagnostics
};

/** A function lowered to flat arrays; entry block is index 0. */
struct DecodedFunction
{
    const ir::Function *fn = nullptr;
    uint32_t regCount = 0;
    std::vector<DecodedInst> insts;
    std::vector<DecodedBlock> blocks;
    std::vector<PhiEdge> phiEdges;
    std::vector<PhiCopy> phiCopies;
    std::vector<OpRef> extraOps;
    std::vector<RtValue> consts;

    /** Superinstruction overlay (fuse.h); built only when the run uses
     *  ExecEngine::Fused (DecodedModule::fuseAll), null otherwise. */
    std::unique_ptr<FusedFunction> fused;
};

/**
 * All of a module's functions decoded once, up front.  Delay rules are
 * baked into SchedHint records so the hot path never consults a map;
 * @p delayRules must outlive the DecodedModule (the Interp owns both).
 */
class DecodedModule
{
  public:
    DecodedModule(const ir::Module &m, RegMapCache &maps,
                  const std::vector<DelayRule> &delayRules,
                  const std::unordered_map<uint64_t, uint32_t> &ruleIndex);

    /** The decoded body of @p fn (never null for module functions). */
    const DecodedFunction *of(const ir::Function *fn) const;

    /** Total decoded instruction records (stats reporting). */
    uint64_t totalInsts() const { return totalInsts_; }

    /** Builds the superinstruction overlay of every function (fused
     *  engine only; implemented in fuse.cpp). */
    void fuseAll();

    /** Total two-component superinstructions formed by fuseAll(). */
    uint64_t totalFusedInsts() const { return totalFused_; }

  private:
    std::unordered_map<const ir::Function *,
                       std::unique_ptr<DecodedFunction>> byFn_;
    uint64_t totalInsts_ = 0;
    uint64_t totalFused_ = 0;
};

} // namespace conair::vm
