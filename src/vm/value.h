/**
 * @file
 * Runtime values and fat pointers for the MiniVM.
 *
 * Memory is cell-addressed: one cell stores one typed value.  Pointers
 * are fat (segment + block + offset), which lets the VM detect every
 * invalid dereference precisely — the stand-in for a real process's
 * segmentation faults.
 */
#pragma once

#include <cstdint>
#include <functional>

#include "ir/type.h"

namespace conair::vm {

/** A fat pointer into VM memory. */
struct Ptr
{
    enum class Seg : uint8_t {
        Null,   ///< the null pointer
        Global, ///< block = Global::id()
        Heap,   ///< block = heap allocation id
        Stack,  ///< block = per-run alloca slot id
    };

    Seg seg = Seg::Null;
    uint32_t block = 0;
    int64_t offset = 0;

    bool isNull() const { return seg == Seg::Null; }
    bool operator==(const Ptr &o) const = default;
};

/** Identity of a memory cell; used as the mutex key (any cell can act
 *  as a lock object, mirroring pthread_mutex_t living anywhere). */
struct CellKey
{
    Ptr::Seg seg;
    uint32_t block;
    int64_t offset;

    bool operator==(const CellKey &o) const = default;
};

struct CellKeyHash
{
    size_t
    operator()(const CellKey &k) const
    {
        size_t h = size_t(k.seg);
        h = h * 1000003u ^ size_t(k.block);
        h = h * 1000003u ^ std::hash<int64_t>()(k.offset);
        return h;
    }
};

/** A runtime value: the dynamic counterpart of ir::Type.
 *  kind == Void marks an uninitialised memory cell. */
struct RtValue
{
    ir::Type kind = ir::Type::Void;
    int64_t i = 0; ///< I1 / I64 payload
    double f = 0;  ///< F64 payload
    Ptr p;         ///< Ptr payload

    static RtValue
    ofInt(int64_t v, ir::Type t = ir::Type::I64)
    {
        RtValue r;
        r.kind = t;
        r.i = v;
        return r;
    }

    static RtValue
    ofFloat(double v)
    {
        RtValue r;
        r.kind = ir::Type::F64;
        r.f = v;
        return r;
    }

    static RtValue
    ofPtr(Ptr p)
    {
        RtValue r;
        r.kind = ir::Type::Ptr;
        r.p = p;
        return r;
    }

    static RtValue
    ofBool(bool b)
    {
        return ofInt(b ? 1 : 0, ir::Type::I1);
    }

    bool isUninit() const { return kind == ir::Type::Void; }
};

} // namespace conair::vm
